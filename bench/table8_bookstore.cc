// Table 8: the online bookstore application (Figure 10) at the three
// optimization levels — elapsed time and number of log forces for the
// paper's scripted BookBuyer session.

#include "obs/bench_reporter.h"
#include "runtime/simulation.h"
#include "bench/bench_util.h"
#include "bookstore/setup.h"

namespace phoenix::bench {
namespace {

using bookstore::Deploy;
using bookstore::OptionsForLevel;
using bookstore::OptLevel;
using bookstore::RegisterBookstoreComponents;
using bookstore::RunBuyerSession;

struct LevelResult {
  double elapsed_ms = 0;
  uint64_t forces = 0;
};

LevelResult Run(obs::BenchVariant& variant, OptLevel level) {
  Simulation sim(OptionsForLevel(level));
  RegisterBookstoreComponents(sim.factories());
  sim.AddMachine("client");
  Machine& server = sim.AddMachine("server");
  auto deployment = Deploy(sim, server, /*num_stores=*/2, level);
  if (!deployment.ok()) return {};

  // The BookBuyer runs on one machine, all server components on the other
  // (§5.5.1). A warm-up session lets server types be learned.
  ExternalClient buyer(&sim, "client");
  RunBuyerSession(sim, *deployment, buyer, "warmup", "WA").value();

  double t0 = sim.clock().NowMs();
  uint64_t f0 = sim.TotalForces();
  RunBuyerSession(sim, *deployment, buyer, "alice", "WA").value();
  LevelResult result{sim.clock().NowMs() - t0, sim.TotalForces() - f0};
  sim.CaptureBench(variant);
  variant.SetMetric("session_ms", result.elapsed_ms);
  variant.SetMetric("session_forces", result.forces);
  return result;
}

void Main() {
  obs::BenchReporter reporter("table8_bookstore");
  LevelResult baseline =
      Run(reporter.AddVariant("baseline"), OptLevel::kBaseline);
  LevelResult optimized =
      Run(reporter.AddVariant("optimized_logging"), OptLevel::kOptimizedLogging);
  LevelResult specialized =
      Run(reporter.AddVariant("specialized"), OptLevel::kSpecialized);

  std::vector<PaperRow> time_rows = {
      {"Baseline", 589, baseline.elapsed_ms},
      {"Optimized logging for persistent components", 382,
       optimized.elapsed_ms},
      {"Specialized components and read-only methods", 296,
       specialized.elapsed_ms},
  };
  PrintTable("Table 8: online bookstore session — elapsed time (ms)", "(ms)",
             time_rows);

  std::vector<PaperRow> force_rows = {
      {"Baseline", 64, static_cast<double>(baseline.forces)},
      {"Optimized logging for persistent components", 46,
       static_cast<double>(optimized.forces)},
      {"Specialized components and read-only methods", 34,
       static_cast<double>(specialized.forces)},
  };
  PrintTable("Table 8: online bookstore session — number of log forces", "",
             force_rows);

  std::printf(
      "\nShape checks: optimized logging removes forces on receives and\n"
      "send-record writes; specialized kinds remove whole interactions from\n"
      "the log. Forces strictly decrease (paper: 64 -> 46 -> 34) and the\n"
      "response time roughly halves end to end (paper: 589 -> 296 ms).\n"
      "Ours: %.0f ms/%llu forces -> %.0f ms/%llu -> %.0f ms/%llu.\n",
      baseline.elapsed_ms, static_cast<unsigned long long>(baseline.forces),
      optimized.elapsed_ms, static_cast<unsigned long long>(optimized.forces),
      specialized.elapsed_ms,
      static_cast<unsigned long long>(specialized.forces));

  obs::AnnounceReport(reporter);
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  phoenix::obs::InitBenchMain(argc, argv);
  phoenix::bench::Main();
  return 0;
}
