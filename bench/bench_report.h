#ifndef PHOENIX_BENCH_BENCH_REPORT_H_
#define PHOENIX_BENCH_BENCH_REPORT_H_

// Glue between a finished Simulation and the machine-readable bench report
// (obs::BenchReporter). Lives on the bench side so src/obs stays independent
// of the runtime.

#include <cstdio>
#include <string>

#include "obs/bench_reporter.h"
#include "runtime/simulation.h"

namespace phoenix::bench {

// Copies the run's aggregate log counters and per-call latency distribution
// out of `sim` into `variant`. Call after the workload, before the
// Simulation dies.
inline void CaptureSimulation(obs::BenchVariant& variant, Simulation& sim) {
  variant.SetMetric("forces", sim.TotalForces());
  variant.SetMetric("appends", sim.TotalAppends());
  variant.SetMetric("bytes_forced", sim.TotalBytesForced());
  variant.SetMetric("sim_time_ms", sim.clock().NowMs());
  variant.SetMetric("calls_routed",
                    sim.metrics().CounterTotal("phoenix.call.routed"));
  variant.SetLatency(sim.metrics().MergedHistogram("phoenix.call.latency_ms"));
}

// Writes the report next to the binary and names the artifact on stdout so
// the human table and the JSON stay associated.
inline void WriteReport(const obs::BenchReporter& reporter) {
  Result<std::string> path = reporter.WriteFile();
  if (path.ok()) {
    std::printf("\nbench report: %s\n", path->c_str());
  } else {
    std::printf("\nbench report FAILED: %s\n",
                path.status().ToString().c_str());
  }
}

}  // namespace phoenix::bench

#endif  // PHOENIX_BENCH_BENCH_REPORT_H_
