// Table 5: the specialized component kinds of §3.2 and read-only methods.
// Log forces vanish, so round trips drop from ~17 ms to sub-2 ms; calls to
// a subordinate are plain local calls.

#include "bench/bench_components.h"
#include "bench/bench_util.h"

namespace phoenix::bench {
namespace {

RuntimeOptions Specialized() {
  RuntimeOptions o;
  o.logging_mode = LoggingMode::kOptimized;
  o.use_specialized_kinds = true;
  return o;
}

double Measure(ComponentKind client_kind, ComponentKind server_kind,
               const std::string& method, bool remote,
               bool subordinate = false) {
  MicroBenchConfig cfg;
  cfg.options = Specialized();
  cfg.client_kind = client_kind;
  cfg.server_kind = server_kind;
  cfg.server_method = method;
  cfg.remote = remote;
  cfg.subordinate_server = subordinate;
  // Subordinate calls cost tens of nanoseconds; a huge batch lifts the
  // signal above the rotational jitter of the driving call's forces.
  if (subordinate) cfg.batch = 400000;
  return RunMicroBench(cfg);
}

void Run() {
  constexpr auto kE = ComponentKind::kExternal;
  constexpr auto kP = ComponentKind::kPersistent;
  constexpr auto kF = ComponentKind::kFunctional;
  constexpr auto kRO = ComponentKind::kReadOnly;

  std::vector<PaperRow> rows;
  rows.push_back(
      {"External -> Read-only (local)", 0.689, Measure(kE, kRO, "Echo", false)});
  rows.push_back({"External -> Read-only (remote)", 0.887,
                  Measure(kE, kRO, "Echo", true)});
  rows.push_back({"External -> Functional (local)", 0.672,
                  Measure(kE, kF, "Echo", false)});
  rows.push_back({"External -> Functional (remote)", 0.875,
                  Measure(kE, kF, "Echo", true)});
  rows.push_back({"Persistent -> Read-only (local)", 1.351,
                  Measure(kP, kRO, "Echo", false)});
  rows.push_back({"Persistent -> Read-only (remote)", 1.495,
                  Measure(kP, kRO, "Echo", true)});
  rows.push_back({"Persistent -> Functional (local)", 1.194,
                  Measure(kP, kF, "Echo", false)});
  rows.push_back({"Persistent -> Functional (remote)", 1.414,
                  Measure(kP, kF, "Echo", true)});
  rows.push_back({"Persistent -> Subordinate (local call)", 3.44e-5,
                  Measure(kP, kP, "Add", false, /*subordinate=*/true)});
  rows.push_back({"Persistent -> Persistent, read-only method (local)", 1.407,
                  Measure(kP, kP, "Get", false)});
  rows.push_back({"Persistent -> Persistent, read-only method (remote)",
                  1.547, Measure(kP, kP, "Get", true)});
  rows.push_back({"Read-only -> Persistent (local)", 1.218,
                  Measure(kRO, kP, "Add", false)});
  rows.push_back({"Read-only -> Persistent (remote)", 1.404,
                  Measure(kRO, kP, "Add", true)});

  PrintTable(
      "Table 5: new component types and read-only methods (ms per round trip)",
      "(ms)", rows);

  std::printf(
      "\nShape checks:\n"
      "  every row is 10x+ faster than the forced-logging rows of Table 4;\n"
      "  Persistent -> Subordinate is a plain local call (~microseconds);\n"
      "  Persistent -> Read-only costs ~0.15-0.2 ms more than\n"
      "  Persistent -> Functional (the reply is logged, unforced);\n"
      "  External rows are cheaper than Persistent rows (externals attach\n"
      "  no sender-kind information).\n");
}

}  // namespace
}  // namespace phoenix::bench

int main() {
  phoenix::bench::Run();
  return 0;
}
