// Table 5: the specialized component kinds of §3.2 and read-only methods.
// Log forces vanish, so round trips drop from ~17 ms to sub-2 ms; calls to
// a subordinate are plain local calls.

#include "bench/bench_components.h"
#include "obs/bench_reporter.h"
#include "runtime/simulation.h"
#include "bench/bench_util.h"

namespace phoenix::bench {
namespace {

RuntimeOptions Specialized() {
  RuntimeOptions o;
  o.logging_mode = LoggingMode::kOptimized;
  o.use_specialized_kinds = true;
  return o;
}

obs::BenchReporter& Reporter() {
  static obs::BenchReporter reporter("table5_component_types");
  return reporter;
}

double Measure(const std::string& variant, ComponentKind client_kind,
               ComponentKind server_kind, const std::string& method,
               bool remote, bool subordinate = false) {
  MicroBenchConfig cfg;
  cfg.options = Specialized();
  cfg.client_kind = client_kind;
  cfg.server_kind = server_kind;
  cfg.server_method = method;
  cfg.remote = remote;
  cfg.subordinate_server = subordinate;
  // Subordinate calls cost tens of nanoseconds; a huge batch lifts the
  // signal above the rotational jitter of the driving call's forces.
  if (subordinate) cfg.batch = 400000;
  return RunMicroBench(cfg, &Reporter().AddVariant(variant));
}

void Run() {
  constexpr auto kE = ComponentKind::kExternal;
  constexpr auto kP = ComponentKind::kPersistent;
  constexpr auto kF = ComponentKind::kFunctional;
  constexpr auto kRO = ComponentKind::kReadOnly;

  std::vector<PaperRow> rows;
  rows.push_back({"External -> Read-only (local)", 0.689,
                  Measure("external_readonly_local", kE, kRO, "Echo", false)});
  rows.push_back({"External -> Read-only (remote)", 0.887,
                  Measure("external_readonly_remote", kE, kRO, "Echo", true)});
  rows.push_back(
      {"External -> Functional (local)", 0.672,
       Measure("external_functional_local", kE, kF, "Echo", false)});
  rows.push_back(
      {"External -> Functional (remote)", 0.875,
       Measure("external_functional_remote", kE, kF, "Echo", true)});
  rows.push_back(
      {"Persistent -> Read-only (local)", 1.351,
       Measure("persistent_readonly_local", kP, kRO, "Echo", false)});
  rows.push_back(
      {"Persistent -> Read-only (remote)", 1.495,
       Measure("persistent_readonly_remote", kP, kRO, "Echo", true)});
  rows.push_back(
      {"Persistent -> Functional (local)", 1.194,
       Measure("persistent_functional_local", kP, kF, "Echo", false)});
  rows.push_back(
      {"Persistent -> Functional (remote)", 1.414,
       Measure("persistent_functional_remote", kP, kF, "Echo", true)});
  rows.push_back({"Persistent -> Subordinate (local call)", 3.44e-5,
                  Measure("persistent_subordinate_local", kP, kP, "Add", false,
                          /*subordinate=*/true)});
  rows.push_back(
      {"Persistent -> Persistent, read-only method (local)", 1.407,
       Measure("persistent_persistent_romethod_local", kP, kP, "Get", false)});
  rows.push_back(
      {"Persistent -> Persistent, read-only method (remote)", 1.547,
       Measure("persistent_persistent_romethod_remote", kP, kP, "Get", true)});
  rows.push_back({"Read-only -> Persistent (local)", 1.218,
                  Measure("readonly_persistent_local", kRO, kP, "Add", false)});
  rows.push_back({"Read-only -> Persistent (remote)", 1.404,
                  Measure("readonly_persistent_remote", kRO, kP, "Add", true)});

  PrintTable(
      "Table 5: new component types and read-only methods (ms per round trip)",
      "(ms)", rows);

  std::printf(
      "\nShape checks:\n"
      "  every row is 10x+ faster than the forced-logging rows of Table 4;\n"
      "  Persistent -> Subordinate is a plain local call (~microseconds);\n"
      "  Persistent -> Read-only costs ~0.15-0.2 ms more than\n"
      "  Persistent -> Functional (the reply is logged, unforced);\n"
      "  External rows are cheaper than Persistent rows (externals attach\n"
      "  no sender-kind information).\n");

  obs::AnnounceReport(Reporter());
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  phoenix::obs::InitBenchMain(argc, argv);
  phoenix::bench::Run();
  return 0;
}
