// Figure 9: 1 KB unbuffered sequential disk writes in a loop with an
// inserted delay after each write. Elapsed time per iteration climbs in
// discrete full-rotation (8.33 ms) steps — unbuffered appends miss a whole
// rotation.

#include "obs/bench_reporter.h"
#include "runtime/simulation.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "sim/disk_model.h"
#include "sim/sim_clock.h"

namespace phoenix::bench {
namespace {

double ElapsedPerIteration(obs::BenchVariant& variant, double delay_ms) {
  DiskModel disk(DiskParams{}, /*seed=*/7);
  SimClock clock;
  obs::Histogram write_latency;
  const int kIterations = 300;
  double start = clock.NowMs();
  for (int i = 0; i < kIterations; ++i) {
    double latency = disk.WriteLatencyMs(clock.NowMs(), 1024);
    write_latency.Record(latency);
    clock.AdvanceMs(latency);
    clock.AdvanceMs(delay_ms);
  }
  double per_iteration = (clock.NowMs() - start) / kIterations;
  // This bench drives the DiskModel directly — there is no Simulation, so
  // the log counters are the write loop itself.
  variant.SetMetric("forces", static_cast<uint64_t>(kIterations));
  variant.SetMetric("appends", static_cast<uint64_t>(kIterations));
  variant.SetMetric("bytes_forced", static_cast<uint64_t>(kIterations) * 1024);
  variant.SetMetric("delay_ms", delay_ms);
  variant.SetMetric("per_iteration_ms", per_iteration);
  variant.SetMetric("rotational_wait_ms",
                    disk.total_breakdown().rotational_wait_ms);
  variant.SetLatency(write_latency);
  return per_iteration;
}

// Figure 9's curve, read off the plot: steps of one rotation.
double PaperFigure9(double delay_ms) {
  const double rotation = 60000.0 / 7200.0;
  double floor_time = 8.5;  // no-delay write time reported in §5.2.2
  int extra_steps = static_cast<int>((delay_ms + 0.2) / rotation);
  return floor_time + extra_steps * rotation + 0;
}

void Run() {
  obs::BenchReporter reporter("figure9_disk_writes");
  std::vector<SeriesPoint> points;
  for (double delay = 0; delay <= 36.0; delay += 2.0) {
    obs::BenchVariant& variant =
        reporter.AddVariant(StrCat("delay_", static_cast<int>(delay), "ms"));
    points.push_back(SeriesPoint{delay, PaperFigure9(delay),
                                 ElapsedPerIteration(variant, delay)});
  }
  PrintSeries(
      "Figure 9: unbuffered 1KB disk write performance "
      "(elapsed ms/iteration vs inserted delay)",
      "delay (ms)", "(ms)", points);

  std::printf(
      "\nShape checks: writes with no delay take a bit more than one full\n"
      "rotation (8.33 ms); elapsed time jumps in discrete rotation-sized\n"
      "steps as the delay grows.\n");

  obs::AnnounceReport(reporter);
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  phoenix::obs::InitBenchMain(argc, argv);
  phoenix::bench::Run();
  return 0;
}
