// Table 4: log optimizations for persistent components. Round-trip
// milliseconds per method call for the native substrate (no logging), the
// baseline system (Algorithm 1: force every message) and the optimized
// system (Algorithm 2/3), local and remote.

#include "bench/bench_components.h"
#include "obs/bench_reporter.h"
#include "runtime/simulation.h"
#include "bench/bench_util.h"
#include "sim/cost_model.h"
#include "sim/network_model.h"

namespace phoenix::bench {
namespace {

RuntimeOptions Baseline() {
  RuntimeOptions o;
  o.logging_mode = LoggingMode::kBaseline;
  o.use_specialized_kinds = false;
  return o;
}

RuntimeOptions Optimized() {
  RuntimeOptions o;
  o.logging_mode = LoggingMode::kOptimized;
  o.use_specialized_kinds = false;  // Table 4 is persistent-only
  return o;
}

double Measure(obs::BenchReporter& reporter, const std::string& variant_name,
               RuntimeOptions opts, ComponentKind client_kind, bool remote) {
  MicroBenchConfig cfg;
  cfg.options = opts;
  cfg.client_kind = client_kind;
  cfg.server_kind = ComponentKind::kPersistent;
  cfg.server_method = "Add";
  cfg.remote = remote;
  return RunMicroBench(cfg, &reporter.AddVariant(variant_name));
}

void Run() {
  obs::BenchReporter reporter("table4_log_optimizations");
  CostModel costs;
  NetworkModel net{NetworkParams{}};
  // The first four rows measure bare .NET remoting (no Phoenix logging);
  // they calibrate the software-path constants of the simulation.
  double rtt = 2 * net.TransferLatencyMs(220);
  double native_local = costs.marshal_roundtrip_local_ms;
  double native_remote = native_local + rtt;
  double intercepted_local = native_local + costs.interception_ms;
  double intercepted_remote = native_remote + costs.interception_ms;

  std::vector<PaperRow> rows;
  rows.push_back({"External -> MarshalByRefObject (local)", 0.593,
                  native_local});
  rows.push_back({"External -> MarshalByRefObject (remote)", 0.798,
                  native_remote});
  rows.push_back({"ContextBound -> ContextBound (local)", 0.585,
                  native_local});
  rows.push_back({"ContextBound -> ContextBound + interception (local)",
                  0.674, intercepted_local});
  rows.push_back({"ContextBound -> ContextBound + interception (remote)",
                  0.870, intercepted_remote});

  rows.push_back({"External -> Persistent, baseline (local)", 17.0,
                  Measure(reporter, "external_persistent_baseline_local",
                          Baseline(), ComponentKind::kExternal, false)});
  rows.push_back({"External -> Persistent, baseline (remote)", 17.3,
                  Measure(reporter, "external_persistent_baseline_remote",
                          Baseline(), ComponentKind::kExternal, true)});
  rows.push_back({"External -> Persistent, optimized (local)", 17.1,
                  Measure(reporter, "external_persistent_optimized_local",
                          Optimized(), ComponentKind::kExternal, false)});
  rows.push_back({"External -> Persistent, optimized (remote)", 17.0,
                  Measure(reporter, "external_persistent_optimized_remote",
                          Optimized(), ComponentKind::kExternal, true)});

  double base_pp_local =
      Measure(reporter, "persistent_persistent_baseline_local", Baseline(),
              ComponentKind::kPersistent, false);
  double base_pp_remote =
      Measure(reporter, "persistent_persistent_baseline_remote", Baseline(),
              ComponentKind::kPersistent, true);
  double opt_pp_local =
      Measure(reporter, "persistent_persistent_optimized_local", Optimized(),
              ComponentKind::kPersistent, false);
  double opt_pp_remote =
      Measure(reporter, "persistent_persistent_optimized_remote", Optimized(),
              ComponentKind::kPersistent, true);
  rows.push_back(
      {"Persistent -> Persistent, baseline (local)", 34.7, base_pp_local});
  rows.push_back(
      {"Persistent -> Persistent, baseline (remote)", 28.4, base_pp_remote});
  rows.push_back(
      {"Persistent -> Persistent, optimized (local)", 17.9, opt_pp_local});
  rows.push_back(
      {"Persistent -> Persistent, optimized (remote)", 10.8, opt_pp_remote});

  PrintTable("Table 4: log optimizations for persistent components "
             "(ms per round trip)",
             "(ms)", rows);

  std::printf(
      "\nShape checks:\n"
      "  optimized P->P beats baseline P->P by ~2x (local): %.1f -> %.1f\n"
      "  remote P->P is *cheaper* than local (interleaved disks see partial\n"
      "  rotations): baseline %.1f vs %.1f, optimized %.1f vs %.1f\n"
      "  External->Persistent is unchanged by the optimization (Algorithm 3\n"
      "  == baseline force discipline for externals).\n",
      base_pp_local, opt_pp_local, base_pp_remote, base_pp_local,
      opt_pp_remote, opt_pp_local);

  obs::AnnounceReport(reporter);
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  phoenix::obs::InitBenchMain(argc, argv);
  phoenix::bench::Run();
  return 0;
}
