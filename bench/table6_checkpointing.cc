// Table 6: runtime overhead of saving context state on every call, with the
// disk write cache disabled (media-rate forces) and enabled (controller
// acks). Saving state adds ~1 ms of software cost per call either way.

#include "bench/bench_components.h"
#include "obs/bench_reporter.h"
#include "runtime/simulation.h"
#include "bench/bench_util.h"

namespace phoenix::bench {
namespace {

double Measure(obs::BenchVariant& variant, bool save_state_on_call,
               bool write_cache) {
  RuntimeOptions opts;
  opts.logging_mode = LoggingMode::kOptimized;
  opts.use_specialized_kinds = false;
  opts.save_context_state_every = save_state_on_call ? 1 : 0;

  SimulationParams params;
  params.disk.write_cache_enabled = write_cache;

  Simulation sim(opts, params);
  RegisterBenchComponents(sim.factories());
  Machine& ma = sim.AddMachine("ma");
  Machine& mb = sim.AddMachine("mb");
  Process& server_proc = ma.CreateProcess();
  Process& client_proc = mb.CreateProcess();

  ExternalClient admin(&sim, "mb");
  auto server = admin.CreateComponent(server_proc, "CounterServer", "server",
                                      ComponentKind::kPersistent, {});
  auto caller = admin.CreateComponent(client_proc, "BatchCaller", "caller",
                                      ComponentKind::kPersistent,
                                      MakeArgs(*server, "Add"));
  admin.Call(*caller, "RunBatch", MakeArgs(int64_t{32}));  // warm-up
  const int kBatch = 400;
  double t0 = sim.clock().NowMs();
  admin.Call(*caller, "RunBatch", MakeArgs(int64_t{kBatch}));
  double per_call = (sim.clock().NowMs() - t0) / kBatch;
  sim.CaptureBench(variant);
  variant.SetMetric("per_call_ms", per_call);
  return per_call;
}

void Run() {
  obs::BenchReporter reporter("table6_checkpointing");
  std::vector<PaperRow> disabled;
  disabled.push_back({"Persistent -> Persistent (remote)", 10.8,
                      Measure(reporter.AddVariant("no_save_cache_disabled"),
                              /*save=*/false, /*cache=*/false)});
  disabled.push_back({"Persistent -> Persistent, save state on call", 11.8,
                      Measure(reporter.AddVariant("save_state_cache_disabled"),
                              /*save=*/true, /*cache=*/false)});
  PrintTable("Table 6a: checkpointing overhead, write cache DISABLED "
             "(ms per call)",
             "(ms)", disabled);

  std::vector<PaperRow> enabled;
  enabled.push_back({"Persistent -> Persistent (remote)", 2.62,
                     Measure(reporter.AddVariant("no_save_cache_enabled"),
                             /*save=*/false, /*cache=*/true)});
  enabled.push_back({"Persistent -> Persistent, save state on call", 3.82,
                     Measure(reporter.AddVariant("save_state_cache_enabled"),
                             /*save=*/true, /*cache=*/true)});
  PrintTable("Table 6b: checkpointing overhead, write cache ENABLED "
             "(ms per call)",
             "(ms)", enabled);

  std::printf(
      "\nShape checks: saving the (small) context state after every call\n"
      "adds ~1 ms regardless of the cache setting — modest next to the\n"
      "disk media cost, visible next to the cached-write cost.\n");

  obs::AnnounceReport(reporter);
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  phoenix::obs::InitBenchMain(argc, argv);
  phoenix::bench::Run();
  return 0;
}
