// Table 6: runtime overhead of saving context state on every call, with the
// disk write cache disabled (media-rate forces) and enabled (controller
// acks). Saving state adds ~1 ms of software cost per call either way.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_components.h"
#include "common/macros.h"
#include "common/strings.h"
#include "obs/bench_reporter.h"
#include "obs/profile.h"
#include "recovery/checkpoint_manager.h"
#include "recovery/recovery_service.h"
#include "runtime/simulation.h"
#include "bench/bench_util.h"

namespace phoenix::bench {
namespace {

double Measure(obs::BenchVariant& variant, bool save_state_on_call,
               bool write_cache) {
  RuntimeOptions opts;
  opts.logging_mode = LoggingMode::kOptimized;
  opts.use_specialized_kinds = false;
  opts.save_context_state_every = save_state_on_call ? 1 : 0;

  SimulationParams params;
  params.disk.write_cache_enabled = write_cache;

  Simulation sim(opts, params);
  RegisterBenchComponents(sim.factories());
  Machine& ma = sim.AddMachine("ma");
  Machine& mb = sim.AddMachine("mb");
  Process& server_proc = ma.CreateProcess();
  Process& client_proc = mb.CreateProcess();

  ExternalClient admin(&sim, "mb");
  auto server = admin.CreateComponent(server_proc, "CounterServer", "server",
                                      ComponentKind::kPersistent, {});
  auto caller = admin.CreateComponent(client_proc, "BatchCaller", "caller",
                                      ComponentKind::kPersistent,
                                      MakeArgs(*server, "Add"));
  admin.Call(*caller, "RunBatch", MakeArgs(int64_t{32}));  // warm-up
  const int kBatch = 400;
  double t0 = sim.clock().NowMs();
  admin.Call(*caller, "RunBatch", MakeArgs(int64_t{kBatch}));
  double per_call = (sim.clock().NowMs() - t0) / kBatch;
  sim.CaptureBench(variant);
  variant.SetMetric("per_call_ms", per_call);
  return per_call;
}

// --- Table 6c: asynchronous checkpointing ---------------------------------
//
// The same capture cadence, paid inline on the calling chain vs swept by the
// dedicated background checkpoint session (RuntimeOptions.async_checkpoint).
// Trace-profile attribution splits the "checkpoint" phase by chain: inline
// capture lands inside the foreground call chains, async capture lands on
// the background session (unchained in the profile), so the foreground
// checkpoint bucket goes to ~0 with async on.

struct AsyncResult {
  double per_call_ms = 0;
  double foreground_checkpoint_ms = 0;  // "checkpoint" self time in chains
  double background_checkpoint_ms = 0;  // unchained (background session)
  uint64_t state_saves = 0;
  uint64_t sweeps = 0;
  uint64_t publishes = 0;
  double publish_lag_mean_ms = 0;
};

constexpr int kAsyncSessions = 4;
constexpr int kAsyncCallsPerSession = 100;
constexpr uint32_t kAsyncCadence = 16;

AsyncResult MeasureAsync(obs::BenchVariant& variant, bool async) {
  RuntimeOptions opts;
  opts.logging_mode = LoggingMode::kOptimized;
  opts.use_specialized_kinds = false;
  // The background session interleaves at durability park points, so both
  // arms run under group commit for a like-for-like comparison.
  opts.group_commit = true;
  if (async) {
    opts.async_checkpoint = true;
    opts.async_checkpoint_interval = kAsyncCadence;
  } else {
    opts.save_context_state_every = kAsyncCadence;
    opts.process_checkpoint_every = kAsyncCadence;
  }

  SimulationParams params;
  params.trace_enabled = true;  // profile attribution needs spans

  Simulation sim(opts, params);
  RegisterBenchComponents(sim.factories());
  Machine& ma = sim.AddMachine("ma");
  Machine& mb = sim.AddMachine("mb");
  Process& server_proc = ma.CreateProcess();
  Process& client_proc = mb.CreateProcess();

  ExternalClient admin(&sim, "mb");
  std::vector<std::string> callers;
  for (int s = 0; s < kAsyncSessions; ++s) {
    auto server =
        admin.CreateComponent(server_proc, "CounterServer", StrCat("srv", s),
                              ComponentKind::kPersistent, {});
    PHX_CHECK(server.ok());
    auto caller = admin.CreateComponent(
        client_proc, "BatchCaller", StrCat("caller", s),
        ComponentKind::kPersistent, MakeArgs(*server, "Add"));
    PHX_CHECK(caller.ok());
    callers.push_back(*caller);
  }
  for (const std::string& caller : callers) {
    ExternalClient warm(&sim, "mb");
    PHX_CHECK(warm.Call(caller, "RunBatch", MakeArgs(int64_t{2})).ok());
  }

  double t0 = sim.clock().NowMs();
  std::vector<std::function<void()>> bodies;
  for (int s = 0; s < kAsyncSessions; ++s) {
    bodies.push_back([&sim, caller = callers[s]] {
      ExternalClient driver(&sim, "mb");
      PHX_CHECK(driver
                    .Call(caller, "RunBatch",
                          MakeArgs(int64_t{kAsyncCallsPerSession}))
                    .ok());
    });
  }
  sim.RunSessions(std::move(bodies));

  AsyncResult result;
  double calls = static_cast<double>(kAsyncSessions) * kAsyncCallsPerSession;
  result.per_call_ms = (sim.clock().NowMs() - t0) / calls;

  obs::ProfileReport profile = obs::BuildProfile(sim.tracer().events());
  auto chained = profile.total_phase_ms.find("checkpoint");
  if (chained != profile.total_phase_ms.end()) {
    result.foreground_checkpoint_ms = chained->second;
  }
  auto unchained = profile.unchained_phase_ms.find("checkpoint");
  if (unchained != profile.unchained_phase_ms.end()) {
    result.background_checkpoint_ms = unchained->second;
  }

  result.state_saves =
      sim.metrics().CounterTotal("phoenix.checkpoint.state_saves");
  result.sweeps = sim.metrics().CounterTotal("phoenix.checkpoint.async.sweeps");
  result.publishes =
      sim.metrics().CounterTotal("phoenix.checkpoint.async.publishes");
  obs::LatencySummary lag = obs::Summarize(
      sim.metrics().MergedHistogram("phoenix.checkpoint.async.lag_ms"));
  result.publish_lag_mean_ms = lag.mean;

  sim.CaptureBench(variant);
  variant.SetMetric("per_call_ms", result.per_call_ms);
  variant.SetMetric("foreground_checkpoint_ms", result.foreground_checkpoint_ms);
  variant.SetMetric("foreground_checkpoint_ms_per_call",
                    result.foreground_checkpoint_ms / calls);
  variant.SetMetric("background_checkpoint_ms", result.background_checkpoint_ms);
  variant.SetMetric("state_saves", result.state_saves);
  variant.SetMetric("async_sweeps", result.sweeps);
  variant.SetMetric("async_publishes", result.publishes);
  variant.SetMetric("async_publish_lag_mean_ms", result.publish_lag_mean_ms);
  variant.SetMetric("publish_skips",
                    sim.metrics().CounterTotal("phoenix.checkpoint.publish_skips"));
  return result;
}

// Recovery-equivalence sweep: the same seeded workload captured async vs
// inline, crashed after the run and recovered — the recovered server state
// must match exactly, every seed.
uint64_t AsyncRecoveryEquivalenceSweep(obs::BenchVariant& variant, int seeds) {
  auto run = [](uint64_t seed, bool async) -> std::vector<int64_t> {
    RuntimeOptions opts;
    opts.logging_mode = LoggingMode::kOptimized;
    opts.use_specialized_kinds = false;
    opts.group_commit = true;
    if (async) {
      opts.async_checkpoint = true;
      opts.async_checkpoint_interval = 8;
    } else {
      opts.save_context_state_every = 8;
      opts.process_checkpoint_every = 8;
    }
    SimulationParams params;
    params.seed = seed;
    Simulation sim(opts, params);
    RegisterBenchComponents(sim.factories());
    Machine& ma = sim.AddMachine("ma");
    Machine& mb = sim.AddMachine("mb");
    Process& server_proc = ma.CreateProcess();
    Process& client_proc = mb.CreateProcess();
    ExternalClient admin(&sim, "mb");
    std::vector<std::string> servers;
    std::vector<std::string> callers;
    for (int s = 0; s < 3; ++s) {
      auto server =
          admin.CreateComponent(server_proc, "CounterServer", StrCat("srv", s),
                                ComponentKind::kPersistent, {});
      PHX_CHECK(server.ok());
      servers.push_back(*server);
      auto caller = admin.CreateComponent(
          client_proc, "BatchCaller", StrCat("caller", s),
          ComponentKind::kPersistent, MakeArgs(*server, "Add"));
      PHX_CHECK(caller.ok());
      callers.push_back(*caller);
    }
    std::vector<std::function<void()>> bodies;
    for (const std::string& caller : callers) {
      bodies.push_back([&sim, caller] {
        ExternalClient driver(&sim, "mb");
        PHX_CHECK(driver.Call(caller, "RunBatch", MakeArgs(int64_t{12})).ok());
      });
    }
    sim.RunSessions(std::move(bodies));
    server_proc.Kill();
    PHX_CHECK(ma.recovery_service().EnsureProcessAlive(1).ok());
    std::vector<int64_t> values;
    ExternalClient probe(&sim, "ma");
    for (const std::string& server : servers) {
      auto got = probe.Call(server, "Get", {});
      PHX_CHECK(got.ok());
      values.push_back(got->AsInt());
    }
    return values;
  };

  uint64_t divergences = 0;
  for (int seed = 1; seed <= seeds; ++seed) {
    if (run(seed, /*async=*/true) != run(seed, /*async=*/false)) {
      ++divergences;
      std::printf("  seed %d: async recovery state diverged from inline!\n",
                  seed);
    }
  }
  variant.SetMetric("seeds", static_cast<uint64_t>(seeds));
  variant.SetMetric("divergences", divergences);
  return divergences;
}

void Run() {
  obs::BenchReporter reporter("table6_checkpointing");
  std::vector<PaperRow> disabled;
  disabled.push_back({"Persistent -> Persistent (remote)", 10.8,
                      Measure(reporter.AddVariant("no_save_cache_disabled"),
                              /*save=*/false, /*cache=*/false)});
  disabled.push_back({"Persistent -> Persistent, save state on call", 11.8,
                      Measure(reporter.AddVariant("save_state_cache_disabled"),
                              /*save=*/true, /*cache=*/false)});
  PrintTable("Table 6a: checkpointing overhead, write cache DISABLED "
             "(ms per call)",
             "(ms)", disabled);

  std::vector<PaperRow> enabled;
  enabled.push_back({"Persistent -> Persistent (remote)", 2.62,
                     Measure(reporter.AddVariant("no_save_cache_enabled"),
                             /*save=*/false, /*cache=*/true)});
  enabled.push_back({"Persistent -> Persistent, save state on call", 3.82,
                     Measure(reporter.AddVariant("save_state_cache_enabled"),
                             /*save=*/true, /*cache=*/true)});
  PrintTable("Table 6b: checkpointing overhead, write cache ENABLED "
             "(ms per call)",
             "(ms)", enabled);

  std::printf(
      "\nShape checks: saving the (small) context state after every call\n"
      "adds ~1 ms regardless of the cache setting — modest next to the\n"
      "disk media cost, visible next to the cached-write cost.\n");

  // Table 6c: the same cadence captured inline vs by the background
  // checkpoint session.
  AsyncResult inline_r = MeasureAsync(reporter.AddVariant("inline_cadence_s4"),
                                      /*async=*/false);
  AsyncResult async_r = MeasureAsync(reporter.AddVariant("async_sweep_s4"),
                                     /*async=*/true);
  double calls = static_cast<double>(kAsyncSessions) * kAsyncCallsPerSession;
  std::printf(
      "\nTable 6c: async checkpointing, %d sessions x %d calls, cadence %u\n"
      "%16s %12s %18s %18s %8s %10s\n",
      kAsyncSessions, kAsyncCallsPerSession, kAsyncCadence, "variant",
      "ms/call", "fg checkpoint ms", "bg checkpoint ms", "sweeps",
      "publishes");
  std::printf("%16s %12.3f %18.3f %18.3f %8llu %10llu\n", "inline",
              inline_r.per_call_ms, inline_r.foreground_checkpoint_ms,
              inline_r.background_checkpoint_ms,
              static_cast<unsigned long long>(inline_r.sweeps),
              static_cast<unsigned long long>(inline_r.publishes));
  std::printf("%16s %12.3f %18.3f %18.3f %8llu %10llu\n", "async",
              async_r.per_call_ms, async_r.foreground_checkpoint_ms,
              async_r.background_checkpoint_ms,
              static_cast<unsigned long long>(async_r.sweeps),
              static_cast<unsigned long long>(async_r.publishes));
  std::printf(
      "\nShape checks: inline capture charges the checkpoint phase to the\n"
      "foreground call chains (fg > 0, bg = 0); the async sweep moves it to\n"
      "the background session (fg ~ 0, bg > 0) — %.3f ms/call of foreground\n"
      "checkpoint work went to ~%.3f.\n",
      inline_r.foreground_checkpoint_ms / calls,
      async_r.foreground_checkpoint_ms / calls);

  // Async-vs-inline recovery equivalence across seeds.
  uint64_t divergences = AsyncRecoveryEquivalenceSweep(
      reporter.AddVariant("async_recovery_equivalence"), 100);
  std::printf(
      "\nRecovery equivalence: 100 seeded async runs crashed + recovered\n"
      "against inline twins; %llu divergence(s).\n",
      static_cast<unsigned long long>(divergences));

  obs::AnnounceReport(reporter);
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  phoenix::obs::InitBenchMain(argc, argv);
  phoenix::bench::Run();
  return 0;
}
