// Real-wall-clock microbenchmarks (google-benchmark) of the substrate the
// simulation runs on: checksums, serialization, log framing, the disk
// model, and whole simulated calls per real second. These are about the
// implementation's own efficiency, not the paper's simulated numbers.

#include <benchmark/benchmark.h>

#include "bench/bench_components.h"
#include "obs/bench_reporter.h"
#include "runtime/simulation.h"
#include "common/crc32c.h"
#include "common/strings.h"
#include "recovery/recovery_service.h"
#include "serde/codec.h"
#include "wal/log_writer.h"

namespace phoenix::bench {
namespace {

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> data(state.range(0), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EncodeValue(benchmark::State& state) {
  Value::List list;
  for (int i = 0; i < 16; ++i) {
    list.emplace_back(StrCat("field-", i));
    list.emplace_back(int64_t{i * 7919});
  }
  Value value(std::move(list));
  for (auto _ : state) {
    Encoder enc;
    enc.PutValue(value);
    benchmark::DoNotOptimize(enc.buffer());
  }
}
BENCHMARK(BM_EncodeValue);

void BM_DecodeValue(benchmark::State& state) {
  Value::List list;
  for (int i = 0; i < 16; ++i) list.emplace_back(int64_t{i});
  Encoder enc;
  enc.PutValue(Value(std::move(list)));
  for (auto _ : state) {
    Decoder dec(enc.buffer());
    benchmark::DoNotOptimize(dec.GetValue());
  }
}
BENCHMARK(BM_DecodeValue);

void BM_LogAppendForce(benchmark::State& state) {
  StableStorage storage;
  DiskModel disk(DiskParams{}, 1);
  SimClock clock;
  std::vector<uint8_t> payload(256, 0x42);
  LogWriter writer("m/p.log", &storage, &disk, &clock);
  for (auto _ : state) {
    writer.AppendPayload(payload);
    writer.Force();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogAppendForce);

void BM_DiskModelWrite(benchmark::State& state) {
  DiskModel disk(DiskParams{}, 1);
  double now = 0;
  for (auto _ : state) {
    now += disk.WriteLatencyMs(now, 1024);
    benchmark::DoNotOptimize(now);
  }
}
BENCHMARK(BM_DiskModelWrite);

void BM_SimulatedPersistentCall(benchmark::State& state) {
  Simulation sim;
  RegisterBenchComponents(sim.factories());
  Machine& ma = sim.AddMachine("ma");
  Process& proc = ma.CreateProcess();
  ExternalClient client(&sim, "ma");
  auto server = client.CreateComponent(proc, "CounterServer", "server",
                                       ComponentKind::kPersistent, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.Call(*server, "Add", MakeArgs(int64_t{1})));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["sim_ms_per_call"] =
      sim.clock().NowMs() / static_cast<double>(state.iterations());
}
BENCHMARK(BM_SimulatedPersistentCall);

void BM_CrashRecoveryCycle(benchmark::State& state) {
  Simulation sim;
  RegisterBenchComponents(sim.factories());
  Machine& ma = sim.AddMachine("ma");
  Process& proc = ma.CreateProcess();
  ExternalClient client(&sim, "ma");
  auto server = client.CreateComponent(proc, "CounterServer", "server",
                                       ComponentKind::kPersistent, {});
  for (int i = 0; i < 50; ++i) {
    client.Call(*server, "Add", MakeArgs(int64_t{1})).value();
  }
  for (auto _ : state) {
    proc.Kill();
    benchmark::DoNotOptimize(
        ma.recovery_service().EnsureProcessAlive(proc.pid()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CrashRecoveryCycle);

// The BENCH_*.json artifact must be byte-identical across runs, which
// wall-clock timings are not. So the report comes from a fixed simulated
// workload (same shape as BM_SimulatedPersistentCall / BM_CrashRecoveryCycle)
// whose numbers are all sim-time.
void WriteDeterministicReport() {
  obs::BenchReporter reporter("micro_substrate_bench");

  {
    obs::BenchVariant& variant = reporter.AddVariant("persistent_calls_400");
    Simulation sim;
    RegisterBenchComponents(sim.factories());
    Machine& ma = sim.AddMachine("ma");
    Process& proc = ma.CreateProcess();
    ExternalClient client(&sim, "ma");
    auto server = client.CreateComponent(proc, "CounterServer", "server",
                                         ComponentKind::kPersistent, {});
    for (int i = 0; i < 400; ++i) {
      client.Call(*server, "Add", MakeArgs(int64_t{1})).value();
    }
    sim.CaptureBench(variant);
  }

  {
    obs::BenchVariant& variant = reporter.AddVariant("crash_recovery_cycles_5");
    Simulation sim;
    RegisterBenchComponents(sim.factories());
    Machine& ma = sim.AddMachine("ma");
    Process& proc = ma.CreateProcess();
    ExternalClient client(&sim, "ma");
    auto server = client.CreateComponent(proc, "CounterServer", "server",
                                         ComponentKind::kPersistent, {});
    for (int i = 0; i < 50; ++i) {
      client.Call(*server, "Add", MakeArgs(int64_t{1})).value();
    }
    for (int i = 0; i < 5; ++i) {
      proc.Kill();
      (void)ma.recovery_service().EnsureProcessAlive(proc.pid());
    }
    sim.CaptureBench(variant);
    variant.SetMetric(
        "recoveries",
        sim.metrics().CounterTotal("phoenix.recovery.recoveries"));
  }

  obs::AnnounceReport(reporter);
}

}  // namespace
}  // namespace phoenix::bench

// Custom main instead of benchmark_main: run the wall-clock benchmarks, then
// emit the deterministic sim-time JSON report.
int main(int argc, char** argv) {
  phoenix::obs::InitBenchMain(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  phoenix::bench::WriteDeterministicReport();
  return 0;
}
