#ifndef PHOENIX_BENCH_BENCH_UTIL_H_
#define PHOENIX_BENCH_BENCH_UTIL_H_

// Table printing for the paper-reproduction benchmarks: every harness prints
// the same rows the paper reports, side by side with our measured values.

#include <cstdio>
#include <string>
#include <vector>

namespace phoenix::bench {

struct PaperRow {
  std::string label;
  double paper;     // the paper's number; < 0 means "not reported"
  double measured;  // ours
};

inline void PrintTable(const std::string& title, const std::string& unit,
                       const std::vector<PaperRow>& rows) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-55s %12s %12s %8s\n", "", ("paper " + unit).c_str(),
              ("ours " + unit).c_str(), "ratio");
  for (const PaperRow& row : rows) {
    if (row.paper >= 0) {
      std::printf("%-55s %12.3f %12.3f %8.2f\n", row.label.c_str(), row.paper,
                  row.measured, row.measured / row.paper);
    } else {
      std::printf("%-55s %12s %12.3f %8s\n", row.label.c_str(), "-",
                  row.measured, "-");
    }
  }
}

struct SeriesPoint {
  double x;
  double paper;  // < 0 means not reported
  double measured;
};

inline void PrintSeries(const std::string& title, const std::string& x_name,
                        const std::string& unit,
                        const std::vector<SeriesPoint>& points) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%12s %14s %14s\n", x_name.c_str(), ("paper " + unit).c_str(),
              ("ours " + unit).c_str());
  for (const SeriesPoint& p : points) {
    if (p.paper >= 0) {
      std::printf("%12.1f %14.3f %14.3f\n", p.x, p.paper, p.measured);
    } else {
      std::printf("%12.1f %14s %14.3f\n", p.x, "-", p.measured);
    }
  }
}

}  // namespace phoenix::bench

#endif  // PHOENIX_BENCH_BENCH_UTIL_H_
