// Table 7: recovery time vs number of method calls replayed, recovering
// from the creation record vs from a saved context state. Also derives the
// paper's engineering rule: checkpoints pay off once replay would exceed
// the ~60 ms cost of restoring a state record (~400+ calls).

#include "bench/bench_components.h"
#include "obs/bench_reporter.h"
#include "runtime/simulation.h"
#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/strings.h"
#include "recovery/checkpoint_manager.h"
#include "recovery/recovery_service.h"
#include "recovery/replay_plan.h"
#include "wal/log_reader.h"

namespace phoenix::bench {
namespace {

// Adds the recovery-phase counters this bench is about on top of the
// standard capture.
void CaptureRecovery(obs::BenchVariant& variant, Simulation& sim,
                     double recovery_ms) {
  sim.CaptureBench(variant);
  variant.SetMetric("recovery_ms", recovery_ms);
  variant.SetMetric(
      "records_scanned",
      sim.metrics().CounterTotal("phoenix.recovery.records_scanned"));
  variant.SetMetric(
      "calls_replayed",
      sim.metrics().CounterTotal("phoenix.recovery.calls_replayed"));
}

// Recovery time (simulated ms) after `calls` calls issued *after* the
// recovery origin (creation, or a state record + published checkpoint).
double MeasureRecovery(obs::BenchVariant& variant, int calls,
                       bool from_state) {
  Simulation sim;
  RegisterBenchComponents(sim.factories());
  Machine& ma = sim.AddMachine("ma");
  Process& proc = ma.CreateProcess();
  ExternalClient client(&sim, "ma");
  auto server = client.CreateComponent(proc, "CounterServer", "server",
                                       ComponentKind::kPersistent, {});

  if (from_state) {
    Context* ctx = proc.FindContextOfComponent("server");
    proc.checkpoints().SaveContextState(*ctx);
    proc.checkpoints().TakeProcessCheckpoint();
  }
  for (int i = 0; i < calls; ++i) {
    client.Call(*server, "Add", MakeArgs(int64_t{1}));
  }
  if (from_state && calls == 0) {
    // Nothing after the checkpoint flushed it; force by hand.
    proc.log().Force();
    proc.checkpoints().MaybePublishCheckpoint();
  }

  proc.Kill();
  double t0 = sim.clock().NowMs();
  Status s = ma.recovery_service().EnsureProcessAlive(proc.pid());
  if (!s.ok()) return -1;
  double recovery_ms = sim.clock().NowMs() - t0;
  CaptureRecovery(variant, sim, recovery_ms);
  return recovery_ms;
}

// --- Parallel replay: sequential vs plan-driven multi-session recovery ---

struct ParallelRecoveryRun {
  double recovery_ms = -1;
  uint64_t chains = 0;
  uint64_t edges = 0;
  uint64_t fallbacks = 0;
  uint64_t salvaged_parallel = 0;
  uint64_t chains_demoted = 0;
  uint64_t state_hash = 0;
};

// First LSN strictly inside a reply-bearing replay unit's extent, found by
// planning against the stable log the same way recovery does. Corrupting
// that record forces salvage while leaving every other chain's units
// intact, so the planner can keep the plan parallel and demote only the
// touched chain.
uint64_t FindInteriorLsn(Process& proc) {
  LogView view = proc.log().StableView();
  ReplayPlanInputs inputs;
  inputs.machine = proc.machine_name();
  inputs.process_id = proc.pid();
  inputs.origins = DeriveReplayOrigins(view, proc.log().head_base());
  uint64_t scan_start = kInvalidLsn;
  for (const auto& [context_id, origin] : inputs.origins) {
    if (origin != kInvalidLsn) scan_start = std::min(scan_start, origin);
  }
  if (scan_start == kInvalidLsn) scan_start = proc.log().head_base();
  ReplayPlan plan = BuildReplayPlan(view, scan_start, inputs);
  for (const ReplayChain& chain : plan.chains) {
    for (const PlannedUnit& unit : chain.units) {
      if (unit.extent_end_lsn <= unit.replay.start_lsn) continue;
      LogReader reader(view, proc.log().head_base());
      while (auto parsed = reader.Next()) {
        if (parsed->lsn > unit.replay.start_lsn &&
            parsed->lsn < unit.extent_end_lsn) {
          return parsed->lsn;
        }
      }
    }
  }
  return kInvalidLsn;
}

// Multi-context recovery workload: `pairs` BatchCaller -> CounterServer
// pairs all hosted by ONE process (2*pairs replay chains plus the
// activator's), driven round-robin so the contexts' call chains interleave
// in the log. Each caller's in-process calls to its server put
// cross-context call edges in the replay plan. After recovery the servers'
// counters are folded into an FNV-1a fingerprint — the state the
// sequential-vs-parallel divergence check compares.
ParallelRecoveryRun RunParallelRecovery(obs::BenchVariant* variant, int pairs,
                                        int rounds, int calls_per_round,
                                        bool parallel, uint32_t sessions,
                                        uint64_t seed,
                                        bool corrupt_interior = false,
                                        uint32_t wal_shards = 1) {
  RuntimeOptions options;
  options.parallel_replay = parallel;
  options.parallel_replay_sessions = sessions;
  options.wal_shards = wal_shards;
  SimulationParams params;
  params.seed = seed;
  Simulation sim(options, params);
  RegisterBenchComponents(sim.factories());
  Machine& ma = sim.AddMachine("ma");
  Process& proc = ma.CreateProcess();
  ExternalClient admin(&sim, "ma");

  std::vector<std::string> callers, servers;
  for (int i = 0; i < pairs; ++i) {
    auto server =
        admin.CreateComponent(proc, "CounterServer", StrCat("psrv", i),
                              ComponentKind::kPersistent, {});
    PHX_CHECK(server.ok());
    auto caller = admin.CreateComponent(
        proc, "BatchCaller", StrCat("pcaller", i), ComponentKind::kPersistent,
        MakeArgs(*server, "Add"));
    PHX_CHECK(caller.ok());
    servers.push_back(*server);
    callers.push_back(*caller);
  }
  Random workload(seed * 2957 + 11);
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < pairs; ++i) {
      int64_t n = 1 + static_cast<int64_t>(
                          workload.Uniform(
                              static_cast<uint64_t>(calls_per_round)));
      ExternalClient driver(&sim, "ma");
      PHX_CHECK(driver.Call(callers[i], "RunBatch", MakeArgs(n)).ok());
    }
  }

  proc.Kill();
  if (corrupt_interior) {
    // Bit-rot one record inside a reply-bearing unit's extent: the plan is
    // salvaged, but only the touched chain loses eligibility.
    uint64_t interior = FindInteriorLsn(proc);
    PHX_CHECK(interior != kInvalidLsn);
    // +8 lands in the payload, past the length/CRC header.
    sim.storage().CorruptLog(proc.log_name(), interior + 8, /*flip_count=*/2);
  }
  double t0 = sim.clock().NowMs();
  Status recovered = ma.recovery_service().EnsureProcessAlive(proc.pid());
  PHX_CHECK(recovered.ok());

  ParallelRecoveryRun run;
  run.recovery_ms = sim.clock().NowMs() - t0;
  run.chains = sim.metrics().CounterTotal("phoenix.recovery.replay.chains");
  run.edges = sim.metrics().CounterTotal("phoenix.recovery.replay.edges");
  run.fallbacks =
      sim.metrics().CounterTotal("phoenix.recovery.replay.fallbacks");
  run.salvaged_parallel = sim.metrics().CounterTotal(
      "phoenix.recovery.replay.salvaged_parallel");
  run.chains_demoted =
      sim.metrics().CounterTotal("phoenix.recovery.replay.chains_demoted");

  uint64_t h = 1469598103934665603ull;  // FNV-1a
  ExternalClient probe(&sim, "ma");
  for (int i = 0; i < pairs; ++i) {
    auto v = probe.Call(servers[i], "Get", {});
    PHX_CHECK(v.ok());
    auto x = static_cast<uint64_t>(v->AsInt());
    for (int b = 0; b < 8; ++b) {
      h = (h ^ ((x >> (8 * b)) & 0xff)) * 1099511628211ull;
    }
  }
  run.state_hash = h;

  if (variant != nullptr) {
    CaptureRecovery(*variant, sim, run.recovery_ms);
    variant->SetMetric("pairs", static_cast<uint64_t>(pairs));
    variant->SetMetric("replay_sessions",
                       static_cast<uint64_t>(parallel ? sessions : 0));
    variant->SetMetric("replay_chains", run.chains);
    variant->SetMetric("replay_edges", run.edges);
    variant->SetMetric("replay_fallbacks", run.fallbacks);
    variant->SetInfo("state_hash", StrCat(run.state_hash));
  }
  return run;
}

double MeasureEmptyLog(obs::BenchVariant& variant) {
  Simulation sim;
  RegisterBenchComponents(sim.factories());
  Machine& ma = sim.AddMachine("ma");
  Process& proc = ma.CreateProcess();
  proc.Kill();
  double t0 = sim.clock().NowMs();
  ma.recovery_service().EnsureProcessAlive(proc.pid());
  double recovery_ms = sim.clock().NowMs() - t0;
  CaptureRecovery(variant, sim, recovery_ms);
  return recovery_ms;
}

void Run() {
  obs::BenchReporter reporter("table7_recovery");
  std::vector<PaperRow> rows;
  rows.push_back(
      {"Empty log", 492, MeasureEmptyLog(reporter.AddVariant("empty_log"))});
  PrintTable("Table 7 (part 1): base recovery cost (ms)", "(ms)", rows);

  const double paper_creation[] = {575, 728, 868, 1007, 1100, 1199};
  const double paper_state[] = {638, 794, 875, 1162, 1252, 1507};
  std::vector<SeriesPoint> creation_series, state_series;
  for (int i = 0; i <= 5; ++i) {
    int calls = i * 1000;
    creation_series.push_back(
        SeriesPoint{static_cast<double>(calls), paper_creation[i],
                    MeasureRecovery(
                        reporter.AddVariant(StrCat("creation_", calls,
                                                   "_calls")),
                        calls, /*from_state=*/false)});
    state_series.push_back(
        SeriesPoint{static_cast<double>(calls), paper_state[i],
                    MeasureRecovery(
                        reporter.AddVariant(StrCat("state_", calls, "_calls")),
                        calls, true)});
  }
  PrintSeries("Table 7 (part 2): recovery from creation, vs #calls replayed",
              "#calls", "(ms)", creation_series);
  PrintSeries("Table 7 (part 3): recovery from state record, vs #calls "
              "replayed",
              "#calls", "(ms)", state_series);

  // Crossover: a state record helps once it skips more replay than its
  // restore cost. The paper estimates ~60 ms of restore == ~400 calls.
  double restore_extra =
      state_series[0].measured - creation_series[0].measured;
  double per_call = (creation_series[5].measured -
                     creation_series[0].measured) /
                    5000.0;
  std::printf(
      "\nDerived: restoring a state record costs %.0f ms extra; replaying a\n"
      "call costs %.3f ms; so context states should be saved every ~%.0f\n"
      "calls or more (the paper concludes ~400).\n",
      restore_extra, per_call, restore_extra / per_call);

  // Parallel replay ablation: the same multi-context log recovered
  // sequentially and then plan-driven at 1..32 replay sessions. Parallel
  // recovery is bounded by the critical-path chain, so ms falls with the
  // session count until the longest chain dominates; the recovered state
  // fingerprint must match the sequential one at every width.
  constexpr int kPairs = 8, kRounds = 10, kCallsPerRound = 40;
  constexpr uint64_t kParallelSeed = 424243;
  ParallelRecoveryRun seq = RunParallelRecovery(
      &reporter.AddVariant("parallel_seq_baseline"), kPairs, kRounds,
      kCallsPerRound, /*parallel=*/false, 0, kParallelSeed);
  std::printf(
      "\nTable 7 (part 4): parallel replay, %d caller/server pairs "
      "(sequential recovery %.1f ms)\n"
      "%10s %14s %10s %8s %8s %12s\n",
      kPairs, seq.recovery_ms, "sessions", "recovery_ms", "speedup",
      "chains", "edges", "state_match");
  const uint32_t kReplaySessions[] = {1, 2, 4, 8, 16, 32};
  uint64_t pinned_divergences = 0;
  ParallelRecoveryRun par8;
  for (uint32_t n : kReplaySessions) {
    obs::BenchVariant& v = reporter.AddVariant(StrCat("parallel_s", n));
    ParallelRecoveryRun par = RunParallelRecovery(
        &v, kPairs, kRounds, kCallsPerRound, /*parallel=*/true, n,
        kParallelSeed);
    if (n == 8) par8 = par;
    bool match = par.state_hash == seq.state_hash;
    if (!match) ++pinned_divergences;
    v.SetMetric("state_matches_sequential", match ? int64_t{1} : int64_t{0});
    v.SetMetric("speedup_vs_sequential", seq.recovery_ms / par.recovery_ms);
    std::printf("%10u %14.1f %9.2fx %8llu %8llu %12s\n", n, par.recovery_ms,
                seq.recovery_ms / par.recovery_ms,
                static_cast<unsigned long long>(par.chains),
                static_cast<unsigned long long>(par.edges),
                match ? "yes" : "DIVERGED");
  }

  // Salvaged-log recovery: the same workload with one bit-rotted record
  // inside a replay unit. The planner demotes only the touched chain, so
  // recovery still takes the parallel path — the torn log no longer
  // serializes replay — and the end state must match a sequential recovery
  // of the identical damaged log.
  ParallelRecoveryRun salv_seq = RunParallelRecovery(
      &reporter.AddVariant("salvaged_seq_baseline"), kPairs, kRounds,
      kCallsPerRound, /*parallel=*/false, 0, kParallelSeed,
      /*corrupt_interior=*/true);
  obs::BenchVariant& sv = reporter.AddVariant("salvaged_parallel_s8");
  ParallelRecoveryRun salv = RunParallelRecovery(
      &sv, kPairs, kRounds, kCallsPerRound, /*parallel=*/true, 8,
      kParallelSeed, /*corrupt_interior=*/true);
  bool salv_match = salv.state_hash == salv_seq.state_hash;
  double salv_ratio = salv.recovery_ms / par8.recovery_ms;
  sv.SetMetric("salvaged_parallel_replays", salv.salvaged_parallel);
  sv.SetMetric("replay_chains_demoted", salv.chains_demoted);
  sv.SetMetric("state_matches_sequential",
               salv_match ? int64_t{1} : int64_t{0});
  sv.SetMetric("ratio_vs_unsalvaged_parallel", salv_ratio);
  std::printf(
      "\nTable 7 (part 5): salvaged-log recovery, one bit-rotted record\n"
      "  sequential %.1f ms; parallel s8 %.1f ms (%.2fx of unsalvaged s8,\n"
      "  %llu chain(s) demoted, salvaged-parallel path taken %llu time(s),\n"
      "  state %s sequential)\n",
      salv_seq.recovery_ms, salv.recovery_ms, salv_ratio,
      static_cast<unsigned long long>(salv.chains_demoted),
      static_cast<unsigned long long>(salv.salvaged_parallel),
      salv_match ? "matches" : "DIVERGED from");
  PHX_CHECK(salv.salvaged_parallel >= 1);
  PHX_CHECK(salv.fallbacks == 0);

  // Sharded-WAL recovery: the identical workload and seed logged across
  // 2/4/8 shard logs, recovered through the gsn-ordered k-way merge (both
  // sequentially and plan-driven at 8 sessions). The recovered-state
  // fingerprint must equal the single-log sequential recovery's at every
  // shard count — the merge IS the single log's order.
  std::printf(
      "\nTable 7 (part 6): sharded-WAL recovery, %d caller/server pairs "
      "(single-log sequential %.1f ms)\n"
      "%10s %16s %16s %14s\n",
      kPairs, seq.recovery_ms, "shards", "seq recovery_ms", "par8 "
      "recovery_ms", "state_match");
  uint64_t shard_divergences = 0;
  for (uint32_t shards : {2u, 4u, 8u}) {
    obs::BenchVariant& vs =
        reporter.AddVariant(StrCat("sharded", shards, "_seq"));
    ParallelRecoveryRun shard_seq = RunParallelRecovery(
        &vs, kPairs, kRounds, kCallsPerRound, /*parallel=*/false, 0,
        kParallelSeed, /*corrupt_interior=*/false, shards);
    obs::BenchVariant& vp =
        reporter.AddVariant(StrCat("sharded", shards, "_par_s8"));
    ParallelRecoveryRun shard_par = RunParallelRecovery(
        &vp, kPairs, kRounds, kCallsPerRound, /*parallel=*/true, 8,
        kParallelSeed, /*corrupt_interior=*/false, shards);
    bool match = shard_seq.state_hash == seq.state_hash &&
                 shard_par.state_hash == seq.state_hash;
    if (!match) ++shard_divergences;
    vs.SetMetric("wal_shards", static_cast<uint64_t>(shards));
    vp.SetMetric("wal_shards", static_cast<uint64_t>(shards));
    vs.SetMetric("state_matches_single_log",
                 shard_seq.state_hash == seq.state_hash ? int64_t{1}
                                                        : int64_t{0});
    vp.SetMetric("state_matches_single_log",
                 shard_par.state_hash == seq.state_hash ? int64_t{1}
                                                        : int64_t{0});
    std::printf("%10u %16.1f %16.1f %14s\n", shards, shard_seq.recovery_ms,
                shard_par.recovery_ms, match ? "yes" : "DIVERGED");
  }
  PHX_CHECK(shard_divergences == 0);

  // Seeded divergence sweep: randomized workload shapes, each recovered
  // both ways; the recovered-state fingerprints must agree run by run.
  constexpr int kSweepRuns = 100;
  uint64_t sweep_divergences = 0;
  for (int run = 0; run < kSweepRuns; ++run) {
    uint64_t seed = 777000 + static_cast<uint64_t>(run);
    Random shape(seed);
    int pairs = 2 + static_cast<int>(shape.Uniform(7));
    int rounds = 1 + static_cast<int>(shape.Uniform(5));
    int cpr = 1 + static_cast<int>(shape.Uniform(8));
    ParallelRecoveryRun s =
        RunParallelRecovery(nullptr, pairs, rounds, cpr, false, 0, seed);
    ParallelRecoveryRun p =
        RunParallelRecovery(nullptr, pairs, rounds, cpr, true, 8, seed);
    if (s.state_hash != p.state_hash) ++sweep_divergences;
  }
  obs::BenchVariant& sweep = reporter.AddVariant("parallel_hash_sweep");
  sweep.SetMetric("runs", static_cast<uint64_t>(kSweepRuns));
  sweep.SetMetric("pinned_divergences", pinned_divergences);
  sweep.SetMetric("divergences", sweep_divergences);
  std::printf(
      "\nDivergence sweep: %d randomized workloads recovered sequentially\n"
      "and at 8 replay sessions: %llu state divergence(s).\n",
      kSweepRuns, static_cast<unsigned long long>(sweep_divergences));

  obs::AnnounceReport(reporter);
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  phoenix::obs::InitBenchMain(argc, argv);
  phoenix::bench::Run();
  return 0;
}
