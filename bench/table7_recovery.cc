// Table 7: recovery time vs number of method calls replayed, recovering
// from the creation record vs from a saved context state. Also derives the
// paper's engineering rule: checkpoints pay off once replay would exceed
// the ~60 ms cost of restoring a state record (~400+ calls).

#include "bench/bench_components.h"
#include "obs/bench_reporter.h"
#include "runtime/simulation.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "recovery/checkpoint_manager.h"
#include "recovery/recovery_service.h"

namespace phoenix::bench {
namespace {

// Adds the recovery-phase counters this bench is about on top of the
// standard capture.
void CaptureRecovery(obs::BenchVariant& variant, Simulation& sim,
                     double recovery_ms) {
  sim.CaptureBench(variant);
  variant.SetMetric("recovery_ms", recovery_ms);
  variant.SetMetric(
      "records_scanned",
      sim.metrics().CounterTotal("phoenix.recovery.records_scanned"));
  variant.SetMetric(
      "calls_replayed",
      sim.metrics().CounterTotal("phoenix.recovery.calls_replayed"));
}

// Recovery time (simulated ms) after `calls` calls issued *after* the
// recovery origin (creation, or a state record + published checkpoint).
double MeasureRecovery(obs::BenchVariant& variant, int calls,
                       bool from_state) {
  Simulation sim;
  RegisterBenchComponents(sim.factories());
  Machine& ma = sim.AddMachine("ma");
  Process& proc = ma.CreateProcess();
  ExternalClient client(&sim, "ma");
  auto server = client.CreateComponent(proc, "CounterServer", "server",
                                       ComponentKind::kPersistent, {});

  if (from_state) {
    Context* ctx = proc.FindContextOfComponent("server");
    proc.checkpoints().SaveContextState(*ctx);
    proc.checkpoints().TakeProcessCheckpoint();
  }
  for (int i = 0; i < calls; ++i) {
    client.Call(*server, "Add", MakeArgs(int64_t{1}));
  }
  if (from_state && calls == 0) {
    // Nothing after the checkpoint flushed it; force by hand.
    proc.log().Force();
    proc.checkpoints().MaybePublishCheckpoint();
  }

  proc.Kill();
  double t0 = sim.clock().NowMs();
  Status s = ma.recovery_service().EnsureProcessAlive(proc.pid());
  if (!s.ok()) return -1;
  double recovery_ms = sim.clock().NowMs() - t0;
  CaptureRecovery(variant, sim, recovery_ms);
  return recovery_ms;
}

double MeasureEmptyLog(obs::BenchVariant& variant) {
  Simulation sim;
  RegisterBenchComponents(sim.factories());
  Machine& ma = sim.AddMachine("ma");
  Process& proc = ma.CreateProcess();
  proc.Kill();
  double t0 = sim.clock().NowMs();
  ma.recovery_service().EnsureProcessAlive(proc.pid());
  double recovery_ms = sim.clock().NowMs() - t0;
  CaptureRecovery(variant, sim, recovery_ms);
  return recovery_ms;
}

void Run() {
  obs::BenchReporter reporter("table7_recovery");
  std::vector<PaperRow> rows;
  rows.push_back(
      {"Empty log", 492, MeasureEmptyLog(reporter.AddVariant("empty_log"))});
  PrintTable("Table 7 (part 1): base recovery cost (ms)", "(ms)", rows);

  const double paper_creation[] = {575, 728, 868, 1007, 1100, 1199};
  const double paper_state[] = {638, 794, 875, 1162, 1252, 1507};
  std::vector<SeriesPoint> creation_series, state_series;
  for (int i = 0; i <= 5; ++i) {
    int calls = i * 1000;
    creation_series.push_back(
        SeriesPoint{static_cast<double>(calls), paper_creation[i],
                    MeasureRecovery(
                        reporter.AddVariant(StrCat("creation_", calls,
                                                   "_calls")),
                        calls, /*from_state=*/false)});
    state_series.push_back(
        SeriesPoint{static_cast<double>(calls), paper_state[i],
                    MeasureRecovery(
                        reporter.AddVariant(StrCat("state_", calls, "_calls")),
                        calls, true)});
  }
  PrintSeries("Table 7 (part 2): recovery from creation, vs #calls replayed",
              "#calls", "(ms)", creation_series);
  PrintSeries("Table 7 (part 3): recovery from state record, vs #calls "
              "replayed",
              "#calls", "(ms)", state_series);

  // Crossover: a state record helps once it skips more replay than its
  // restore cost. The paper estimates ~60 ms of restore == ~400 calls.
  double restore_extra =
      state_series[0].measured - creation_series[0].measured;
  double per_call = (creation_series[5].measured -
                     creation_series[0].measured) /
                    5000.0;
  std::printf(
      "\nDerived: restoring a state record costs %.0f ms extra; replaying a\n"
      "call costs %.3f ms; so context states should be saved every ~%.0f\n"
      "calls or more (the paper concludes ~400).\n",
      restore_extra, per_call, restore_extra / per_call);

  obs::AnnounceReport(reporter);
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  phoenix::obs::InitBenchMain(argc, argv);
  phoenix::bench::Run();
  return 0;
}
