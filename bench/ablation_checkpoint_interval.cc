// Checkpoint-interval ablation (the design choice §5.4 ends on): sweep the
// context-state save interval and measure both the runtime overhead during
// normal execution and the recovery time after a crash at the end of the
// workload. The paper's rule: save every ~400 calls or more.

#include <cstdio>

#include "bench/bench_components.h"
#include "obs/bench_reporter.h"
#include "runtime/simulation.h"
#include "common/strings.h"
#include "recovery/checkpoint_manager.h"
#include "recovery/recovery_service.h"

namespace phoenix::bench {
namespace {

struct IntervalResult {
  double run_ms = 0;       // workload elapsed (simulated)
  double recovery_ms = 0;  // recovery elapsed after crash at the end
  uint64_t state_saves = 0;
};

IntervalResult Measure(obs::BenchVariant& variant, uint32_t interval,
                       int workload_calls) {
  RuntimeOptions opts;
  opts.save_context_state_every = interval;
  opts.process_checkpoint_every = interval > 0 ? interval * 2 : 0;
  Simulation sim(opts);
  RegisterBenchComponents(sim.factories());
  Machine& ma = sim.AddMachine("ma");
  Process& proc = ma.CreateProcess();
  ExternalClient client(&sim, "ma");
  auto server = client.CreateComponent(proc, "CounterServer", "server",
                                       ComponentKind::kPersistent, {});

  double t0 = sim.clock().NowMs();
  for (int i = 0; i < workload_calls; ++i) {
    client.Call(*server, "Add", MakeArgs(int64_t{1})).value();
  }
  IntervalResult out;
  out.run_ms = sim.clock().NowMs() - t0;
  out.state_saves = proc.checkpoints().state_saves();

  proc.Kill();
  double r0 = sim.clock().NowMs();
  ma.recovery_service().EnsureProcessAlive(proc.pid());
  out.recovery_ms = sim.clock().NowMs() - r0;
  sim.CaptureBench(variant);
  variant.SetMetric("interval", static_cast<uint64_t>(interval));
  variant.SetMetric("workload_ms", out.run_ms);
  variant.SetMetric("recovery_ms", out.recovery_ms);
  variant.SetMetric("state_saves", out.state_saves);
  return out;
}

void Run() {
  obs::BenchReporter reporter("ablation_checkpoint_interval");
  const int kCalls = 2000;
  std::printf("Checkpoint-interval ablation (%d-call workload, crash at the "
              "end)\n",
              kCalls);
  std::printf("%10s %12s %14s %14s %12s\n", "interval", "saves",
              "workload (ms)", "recovery (ms)", "overhead %%");
  IntervalResult base =
      Measure(reporter.AddVariant("interval_0"), 0, kCalls);
  for (uint32_t interval : {0u, 25u, 50u, 100u, 200u, 400u, 800u, 1600u}) {
    IntervalResult r =
        interval == 0
            ? base
            : Measure(reporter.AddVariant(StrCat("interval_", interval)),
                      interval, kCalls);
    std::printf("%10u %12llu %14.0f %14.0f %11.2f%%\n", interval,
                static_cast<unsigned long long>(r.state_saves), r.run_ms,
                r.recovery_ms, 100.0 * (r.run_ms - base.run_ms) / base.run_ms);
  }
  std::printf(
      "\nShape check: tighter intervals buy cheaper recovery (less replay)\n"
      "at growing runtime overhead; past ~400 calls the replay saved per\n"
      "state record exceeds the ~60 ms restore cost, matching §5.4.\n");

  obs::AnnounceReport(reporter);
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  phoenix::obs::InitBenchMain(argc, argv);
  phoenix::bench::Run();
  return 0;
}
