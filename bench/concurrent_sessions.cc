// Concurrent sessions: forces/call and sim-time ms/call as the number of
// overlapping client call chains grows from 1 to 32, per logging mode, with
// a group-commit on/off ablation.
//
// Each session drives its own BatchCaller (client process on machine mb)
// against its own CounterServer (server process on machine ma), so sessions
// never contend for a context — all sharing is at the two process logs.
// With group commit off, sessions serialize at each durability wait and the
// per-call force count matches the single-session tables exactly. With
// group commit on, sessions park at their durability waits and the commit
// pipeline harvests every parked waiter with one disk force, so forces/call
// falls as the session count grows (visible in the batch_size histogram).

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "obs/bench_reporter.h"
#include "runtime/simulation.h"
#include "bench/bench_components.h"
#include "common/macros.h"
#include "common/strings.h"

namespace phoenix::bench {
namespace {

struct SessionsResult {
  double forces_per_call = 0;
  double ms_per_call = 0;
  uint64_t group_flushes = 0;
  uint64_t group_coalesced = 0;
  double batch_mean = 0;
  double batch_max = 0;
  // Durability-wait attribution (phoenix.wal.park_ms /
  // phoenix.wal.own_force_wait_ms): where the waits went per mode — parked
  // behind a shared group flush vs dispatching the chain's own force.
  uint64_t park_waits = 0;
  double park_ms_total = 0;
  double own_force_ms_total = 0;
};

constexpr int kCallsPerSession = 24;

SessionsResult RunSessionsBench(obs::BenchVariant& variant, LoggingMode mode,
                                bool group_commit, int sessions,
                                double max_wait_ms = 0.0,
                                uint32_t max_batch = 0,
                                uint32_t wal_shards = 1) {
  RuntimeOptions options;
  options.logging_mode = mode;
  options.group_commit = group_commit;
  options.group_commit_max_wait_ms = max_wait_ms;
  options.group_commit_max_batch = max_batch;
  options.wal_shards = wal_shards;
  Simulation sim(options);
  RegisterBenchComponents(sim.factories());
  Machine& ma = sim.AddMachine("ma");
  Machine& mb = sim.AddMachine("mb");
  Process& server_proc = ma.CreateProcess();
  Process& client_proc = mb.CreateProcess();

  // One server + caller pair per session: sharing stops at the process logs.
  ExternalClient admin(&sim, "mb");
  std::vector<std::string> callers;
  for (int s = 0; s < sessions; ++s) {
    auto server =
        admin.CreateComponent(server_proc, "CounterServer", StrCat("srv", s),
                              ComponentKind::kPersistent, {});
    PHX_CHECK(server.ok());
    auto caller = admin.CreateComponent(
        client_proc, "BatchCaller", StrCat("caller", s),
        ComponentKind::kPersistent, MakeArgs(*server, "Add"));
    PHX_CHECK(caller.ok());
    callers.push_back(*caller);
  }
  // Warm-up outside the sessions so the remote type tables are learned and
  // the measured window holds only steady-state calls.
  for (const std::string& caller : callers) {
    ExternalClient warm(&sim, "mb");
    PHX_CHECK(warm.Call(caller, "RunBatch", MakeArgs(int64_t{2})).ok());
  }

  uint64_t forces_before = sim.TotalForces();
  double t0 = sim.clock().NowMs();
  std::vector<std::function<void()>> bodies;
  for (int s = 0; s < sessions; ++s) {
    bodies.push_back([&sim, caller = callers[s]] {
      ExternalClient driver(&sim, "mb");
      Result<Value> reply =
          driver.Call(caller, "RunBatch", MakeArgs(int64_t{kCallsPerSession}));
      PHX_CHECK(reply.ok());
    });
  }
  sim.RunSessions(std::move(bodies));

  SessionsResult result;
  double calls = static_cast<double>(sessions) * kCallsPerSession;
  result.forces_per_call = (sim.TotalForces() - forces_before) / calls;
  result.ms_per_call = (sim.clock().NowMs() - t0) / calls;
  result.group_flushes =
      sim.metrics().CounterTotal("phoenix.wal.group_commit.flushes");
  result.group_coalesced =
      sim.metrics().CounterTotal("phoenix.wal.group_commit.coalesced");
  obs::LatencySummary batches = obs::Summarize(
      sim.metrics().MergedHistogram("phoenix.wal.group_commit.batch_size"));
  result.batch_mean = batches.mean;
  result.batch_max = batches.max;
  obs::Histogram parks = sim.metrics().MergedHistogram("phoenix.wal.park_ms");
  result.park_waits = parks.count();
  result.park_ms_total = parks.sum();
  result.own_force_ms_total =
      sim.metrics().GaugeTotal("phoenix.wal.own_force_wait_ms");

  sim.CaptureBench(variant);
  variant.SetMetric("sessions", static_cast<uint64_t>(sessions));
  variant.SetMetric("calls", static_cast<uint64_t>(calls));
  variant.SetMetric("forces_per_call", result.forces_per_call);
  variant.SetMetric("ms_per_call", result.ms_per_call);
  variant.SetMetric("group_flushes", result.group_flushes);
  variant.SetMetric("group_coalesced", result.group_coalesced);
  variant.SetMetric("group_batch_mean", result.batch_mean);
  variant.SetMetric("group_batch_max", result.batch_max);
  variant.SetMetric("park_waits", result.park_waits);
  variant.SetMetric("park_ms_total", result.park_ms_total);
  variant.SetMetric("park_ms_per_call", result.park_ms_total / calls);
  variant.SetMetric("own_force_wait_ms_total", result.own_force_ms_total);
  variant.SetMetric("own_force_wait_ms_per_call",
                    result.own_force_ms_total / calls);
  return result;
}

void Run() {
  obs::BenchReporter reporter("concurrent_sessions");
  const std::vector<int> kSessionCounts = {1, 2, 4, 8, 16, 32};
  const struct {
    LoggingMode mode;
    const char* name;
  } kModes[] = {{LoggingMode::kBaseline, "baseline"},
                {LoggingMode::kOptimized, "optimized"}};

  for (const auto& mode : kModes) {
    std::printf(
        "\nConcurrent sessions, %s logging "
        "(batch = mean forces coalesced per group flush;\n"
        " park/own = durability wait ms per call spent parked in group "
        "commit vs forcing inline)\n",
        mode.name);
    std::printf("%10s %16s %16s %14s %14s %8s %10s %10s\n", "sessions",
                "forces/call off", "forces/call on", "ms/call off",
                "ms/call on", "batch", "park/call", "own/call");
    for (int n : kSessionCounts) {
      obs::BenchVariant& off = reporter.AddVariant(
          StrCat(mode.name, "_group_off_s", n));
      SessionsResult r_off = RunSessionsBench(off, mode.mode, false, n);
      obs::BenchVariant& on = reporter.AddVariant(
          StrCat(mode.name, "_group_on_s", n));
      SessionsResult r_on = RunSessionsBench(on, mode.mode, true, n);
      double calls = static_cast<double>(n) * kCallsPerSession;
      std::printf("%10d %16.3f %16.3f %14.3f %14.3f %8.2f %10.3f %10.3f\n",
                  n, r_off.forces_per_call, r_on.forces_per_call,
                  r_off.ms_per_call, r_on.ms_per_call, r_on.batch_mean,
                  r_on.park_ms_total / calls,
                  r_on.own_force_ms_total / calls);
    }
  }

  // Batching-policy sweep (optimized logging, group commit on, 16
  // sessions). max_batch flushes as soon as that many waits accumulate
  // instead of waiting for the whole wave to stall, trading batch depth for
  // latency; max_wait bounds how long the oldest parked waiter can sit
  // before the scheduler flushes its pipeline anyway.
  constexpr int kPolicySessions = 16;
  std::printf(
      "\nGroup-commit policy sweep, optimized logging, %d sessions\n"
      "%20s %14s %10s %8s %10s\n",
      kPolicySessions, "policy", "forces/call", "ms/call", "batch",
      "park/call");
  const struct {
    const char* name;
    double max_wait_ms;
    uint32_t max_batch;
  } kPolicies[] = {
      {"unbounded", 0.0, 0},   {"batch2", 0.0, 2},   {"batch4", 0.0, 4},
      {"batch8", 0.0, 8},      {"batch16", 0.0, 16}, {"wait0p05", 0.05, 0},
      {"wait0p2", 0.2, 0},     {"wait1", 1.0, 0},    {"wait0p2_batch8", 0.2, 8},
  };
  for (const auto& policy : kPolicies) {
    obs::BenchVariant& v = reporter.AddVariant(
        StrCat("policy_", policy.name, "_s", kPolicySessions));
    SessionsResult r =
        RunSessionsBench(v, LoggingMode::kOptimized, true, kPolicySessions,
                         policy.max_wait_ms, policy.max_batch);
    v.SetMetric("max_wait_ms", policy.max_wait_ms);
    v.SetMetric("max_batch", static_cast<uint64_t>(policy.max_batch));
    double calls = static_cast<double>(kPolicySessions) * kCallsPerSession;
    std::printf("%20s %14.3f %10.3f %8.2f %10.3f\n", policy.name,
                r.forces_per_call, r.ms_per_call, r.batch_mean,
                r.park_ms_total / calls);
  }

  // Sharded-WAL sweep (optimized logging, group commit on, 32 sessions).
  // Each session chain waits only on the shards its contexts touched, and
  // each shard runs its own commit pipeline, so independent chains stop
  // sharing one durability horizon as the shard count grows.
  constexpr int kShardSessions = 32;
  std::printf(
      "\nSharded-WAL sweep, optimized logging, group commit on, %d "
      "sessions\n%10s %14s %10s %8s %10s\n",
      kShardSessions, "shards", "forces/call", "ms/call", "batch",
      "park/call");
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    obs::BenchVariant& v = reporter.AddVariant(
        StrCat("optimized_shards", shards, "_s", kShardSessions));
    SessionsResult r =
        RunSessionsBench(v, LoggingMode::kOptimized, true, kShardSessions,
                         0.0, 0, shards);
    v.SetMetric("wal_shards", static_cast<uint64_t>(shards));
    double calls = static_cast<double>(kShardSessions) * kCallsPerSession;
    std::printf("%10u %14.3f %10.3f %8.2f %10.3f\n", shards,
                r.forces_per_call, r.ms_per_call, r.batch_mean,
                r.park_ms_total / calls);
  }

  std::printf(
      "\nShape checks: with group commit off, forces/call is flat in the\n"
      "session count (sessions serialize at each durability wait). With\n"
      "group commit on, forces/call falls as sessions grow: parked waiters\n"
      "are harvested by one flush, so the batch-size mean rises with the\n"
      "session count and 8+ sessions force measurably less than one.\n");

  obs::AnnounceReport(reporter);
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  phoenix::obs::InitBenchMain(argc, argv);
  phoenix::bench::Run();
  return 0;
}
