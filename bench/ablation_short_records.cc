// Algorithm 3's short-record design choice, ablated: for an external
// client's reply (message 2), the baseline forces the FULL reply content
// while the optimized system forces only the fact-of-send — replay can
// regenerate the content. With large replies the byte difference is big;
// the force count is identical.

#include "obs/bench_reporter.h"
#include "runtime/simulation.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "core/phoenix.h"

namespace phoenix::bench {
namespace {

// Returns a reply of the requested size.
class BlobServer : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Fetch", [this](const ArgList& a) -> Result<Value> {
      ++fetches_;
      return Value(std::string(static_cast<size_t>(a[0].AsInt()), 'x'));
    });
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterInt("fetches", &fetches_);
  }

 private:
  int64_t fetches_ = 0;
};

struct Cost {
  uint64_t bytes_forced = 0;
  double elapsed_ms = 0;
};

Cost Measure(obs::BenchVariant& variant, LoggingMode mode,
             int64_t reply_bytes) {
  RuntimeOptions opts;
  opts.logging_mode = mode;
  Simulation sim(opts);
  sim.factories().Register<BlobServer>("BlobServer");
  Machine& machine = sim.AddMachine("m");
  Process& proc = machine.CreateProcess();
  ExternalClient client(&sim, "m");
  auto uri = client.CreateComponent(proc, "BlobServer", "blob",
                                    ComponentKind::kPersistent, {});

  const int kCalls = 50;
  uint64_t b0 = proc.log().bytes_forced();
  double t0 = sim.clock().NowMs();
  for (int i = 0; i < kCalls; ++i) {
    client.Call(*uri, "Fetch", MakeArgs(reply_bytes)).value();
  }
  Cost cost{(proc.log().bytes_forced() - b0) / kCalls,
            (sim.clock().NowMs() - t0) / kCalls};
  sim.CaptureBench(variant);
  variant.SetMetric("reply_bytes", reply_bytes);
  variant.SetMetric("forced_bytes_per_call", cost.bytes_forced);
  variant.SetMetric("per_call_ms", cost.elapsed_ms);
  return cost;
}

void Run() {
  std::printf("Short vs long reply records for external clients "
              "(per call, 50-call average)\n");
  std::printf("%14s %22s %22s %12s\n", "reply bytes", "forced B (long/base)",
              "forced B (short/opt)", "saved");
  obs::BenchReporter reporter("ablation_short_records");
  for (int64_t size : {int64_t{64}, int64_t{512}, int64_t{4096},
                       int64_t{32768}}) {
    Cost baseline =
        Measure(reporter.AddVariant(StrCat("reply", size, "_baseline")),
                LoggingMode::kBaseline, size);
    Cost optimized =
        Measure(reporter.AddVariant(StrCat("reply", size, "_optimized")),
                LoggingMode::kOptimized, size);
    std::printf("%14lld %22llu %22llu %11.1f%%\n",
                static_cast<long long>(size),
                static_cast<unsigned long long>(baseline.bytes_forced),
                static_cast<unsigned long long>(optimized.bytes_forced),
                100.0 *
                    (1.0 - static_cast<double>(optimized.bytes_forced) /
                               static_cast<double>(baseline.bytes_forced)));
  }
  std::printf(
      "\nShape check (§3.1.2): the short message-2 record carries only the\n"
      "identity of the send; the forced bytes no longer scale with the\n"
      "reply size, because replay can regenerate the content.\n");

  obs::AnnounceReport(reporter);
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  phoenix::obs::InitBenchMain(argc, argv);
  phoenix::bench::Run();
  return 0;
}
