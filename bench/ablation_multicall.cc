// §3.5 / §5.5.2: the multi-call optimization. A persistent PriceGrabber
// querying N bookstores forces the log at every store reply without the
// optimization, and exactly once with it — regardless of N.

#include "obs/bench_reporter.h"
#include "runtime/simulation.h"
#include "bench/bench_util.h"
#include "bookstore/setup.h"
#include "common/strings.h"

namespace phoenix::bench {
namespace {

using bookstore::OptLevel;
using bookstore::OptionsForLevel;
using bookstore::RegisterBookstoreComponents;

struct SearchCost {
  uint64_t grabber_forces = 0;
  double elapsed_ms = 0;
};

SearchCost MeasureSearch(obs::BenchVariant& variant, int num_stores,
                         bool multicall) {
  // Table 8's "optimized logging" level: the PriceGrabber is persistent, so
  // each Bookstore call is a state-committing send.
  RuntimeOptions opts = OptionsForLevel(OptLevel::kOptimizedLogging);
  opts.multi_call_optimization = multicall;
  Simulation sim(opts);
  RegisterBookstoreComponents(sim.factories());
  Machine& server = sim.AddMachine("server");
  Process& stores_proc = server.CreateProcess();
  Process& grabber_proc = server.CreateProcess();  // own log for counting

  ExternalClient admin(&sim, "server");
  ArgList store_uris;
  for (int i = 1; i <= num_stores; ++i) {
    auto uri = admin.CreateComponent(stores_proc, "Bookstore",
                                     StrCat("store", i),
                                     ComponentKind::kPersistent,
                                     MakeArgs(StrCat("Store-", i)));
    store_uris.emplace_back(*uri);
  }
  auto grabber =
      admin.CreateComponent(grabber_proc, "PriceGrabber", "grabber",
                            ComponentKind::kPersistent, std::move(store_uris));

  // Warm-up so server types are learned, then the measured search.
  admin.Call(*grabber, "Search", MakeArgs(std::string("recovery"))).value();
  uint64_t f0 = grabber_proc.log().num_forces();
  double t0 = sim.clock().NowMs();
  admin.Call(*grabber, "Search", MakeArgs(std::string("recovery"))).value();
  SearchCost cost{grabber_proc.log().num_forces() - f0,
                  sim.clock().NowMs() - t0};
  sim.CaptureBench(variant);
  variant.SetMetric("grabber_forces", cost.grabber_forces);
  variant.SetMetric("search_ms", cost.elapsed_ms);
  variant.SetMetric("stores", static_cast<uint64_t>(num_stores));
  return cost;
}

void Run() {
  obs::BenchReporter reporter("ablation_multicall");
  std::printf(
      "Multi-call optimization ablation (PriceGrabber searching N stores)\n");
  std::printf("%8s %22s %22s %14s %14s\n", "stores", "forces (no opt)",
              "forces (multi-call)", "ms (no opt)", "ms (multi)");
  for (int n : {1, 2, 3, 4, 6, 8}) {
    SearchCost off = MeasureSearch(
        reporter.AddVariant(StrCat("stores", n, "_no_multicall")), n, false);
    SearchCost on = MeasureSearch(
        reporter.AddVariant(StrCat("stores", n, "_multicall")), n, true);
    std::printf("%8d %22llu %22llu %14.1f %14.1f\n", n,
                static_cast<unsigned long long>(off.grabber_forces),
                static_cast<unsigned long long>(on.grabber_forces),
                off.elapsed_ms, on.elapsed_ms);
  }
  std::printf(
      "\nShape check (§5.5.2): without the optimization the grabber's "
      "forces\ngrow with the number of stores; with it the grabber forces "
      "once\n(plus the message-1 and reply forces), independent of N.\n");

  obs::AnnounceReport(reporter);
}

}  // namespace
}  // namespace phoenix::bench

int main(int argc, char** argv) {
  phoenix::obs::InitBenchMain(argc, argv);
  phoenix::bench::Run();
  return 0;
}
