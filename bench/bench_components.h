#ifndef PHOENIX_BENCH_BENCH_COMPONENTS_H_
#define PHOENIX_BENCH_BENCH_COMPONENTS_H_

// Components for the §5.2/§5.3 micro-benchmarks: a batch caller that issues
// N calls to one server from inside its own method (the paper measures
// round trips "from inside the client object instance"), and minimal
// persistent / functional / read-only servers.

#include <string>

#include "obs/bench_reporter.h"
#include "runtime/simulation.h"
#include "core/phoenix.h"

namespace phoenix::bench {

// Persistent server with a mutating method and a read-only method.
class CounterServer : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Add", [this](const ArgList& a) -> Result<Value> {
      count_ += a[0].AsInt();
      return Value(count_);
    });
    methods.Register(
        "Get",
        [this](const ArgList&) -> Result<Value> { return Value(count_); },
        MethodTraits{.read_only = true});
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterInt("count", &count_);
  }

 private:
  int64_t count_ = 0;
};

// Stateless echo, deployable as functional or read-only.
class EchoServer : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Echo",
                     [](const ArgList& a) -> Result<Value> { return a[0]; });
  }
};

// The measuring client: RunBatch(n) calls `method` on the configured server
// n times from inside one method execution.
// Ctor args: [server_uri, method].
class BatchCaller : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("RunBatch", [this](const ArgList& a) -> Result<Value> {
      int64_t n = a[0].AsInt();
      for (int64_t i = 0; i < n; ++i) {
        PHX_RETURN_IF_ERROR(
            CallRef(server_, method_, MakeArgs(int64_t{1})).status());
      }
      return Value(n);
    });
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterComponentRef("server", &server_);
    fields.RegisterString("method", &method_);
  }
  Status Initialize(const ArgList& args) override {
    server_.uri = args[0].AsString();
    method_ = args[1].AsString();
    return Status::OK();
  }

 private:
  ComponentRefField server_;
  std::string method_;
};

// Batch caller whose server is its own subordinate (the P -> Subordinate
// row of Table 5: plain local calls).
class SubordinateBatchCaller : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("RunBatch", [this](const ArgList& a) -> Result<Value> {
      int64_t n = a[0].AsInt();
      for (int64_t i = 0; i < n; ++i) {
        PHX_RETURN_IF_ERROR(
            CallRef(sub_, "Add", MakeArgs(int64_t{1})).status());
      }
      return Value(n);
    });
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterComponentRef("sub", &sub_);
  }
  Status Initialize(const ArgList&) override {
    PHX_ASSIGN_OR_RETURN(
        sub_.uri, CreateSubordinate("CounterServer", name() + "_sub", {}));
    return Status::OK();
  }

 private:
  ComponentRefField sub_;
};

inline void RegisterBenchComponents(ComponentFactoryRegistry& factories) {
  factories.Register<CounterServer>("CounterServer");
  factories.Register<EchoServer>("EchoServer");
  factories.Register<BatchCaller>("BatchCaller");
  factories.Register<SubordinateBatchCaller>("SubordinateBatchCaller");
}

// One micro-benchmark round: per-call simulated milliseconds for a client of
// `client_kind` on `client_machine` calling `server_method` on a server of
// `server_kind`, `server_machine`. A warm-up batch lets the remote type
// table learn before measurement, like the paper's steady-state averages.
struct MicroBenchConfig {
  RuntimeOptions options;
  ComponentKind client_kind = ComponentKind::kExternal;  // or P/RO/subordinate
  ComponentKind server_kind = ComponentKind::kPersistent;
  std::string server_method = "Add";
  bool remote = false;          // client machine != server machine
  bool subordinate_server = false;
  int batch = 400;
};

// When `variant` is non-null, the run's aggregate counters and latency
// distribution are captured into it (Simulation::CaptureBench) before the
// is torn down; the per-call result is also stored as "per_call_ms".
inline double RunMicroBench(const MicroBenchConfig& cfg,
                            obs::BenchVariant* variant = nullptr) {
  Simulation sim(cfg.options);
  RegisterBenchComponents(sim.factories());
  Machine& ma = sim.AddMachine("ma");
  Machine& mb = sim.AddMachine("mb");
  Machine& client_machine = cfg.remote ? mb : ma;
  Process& server_proc = ma.CreateProcess();

  ExternalClient admin(&sim, client_machine.name());

  // The paper measures "from inside the client object instance": batch the
  // calls inside one method execution, then difference two batch sizes so
  // the cost of the driving call itself cancels out.
  auto measure_inside = [&](const std::string& caller_uri) {
    ExternalClient driver(&sim, client_machine.name());
    driver.Call(caller_uri, "RunBatch", MakeArgs(int64_t{32}));  // warm-up
    double t0 = sim.clock().NowMs();
    driver.Call(caller_uri, "RunBatch", MakeArgs(int64_t{64}));
    double t1 = sim.clock().NowMs();
    driver.Call(caller_uri, "RunBatch", MakeArgs(int64_t{64 + cfg.batch}));
    double t2 = sim.clock().NowMs();
    return ((t2 - t1) - (t1 - t0)) / cfg.batch;
  };

  auto run = [&]() -> double {
    if (cfg.subordinate_server) {
      Process& client_proc = client_machine.CreateProcess();
      auto caller = admin.CreateComponent(client_proc,
                                          "SubordinateBatchCaller", "caller",
                                          ComponentKind::kPersistent, {});
      if (!caller.ok()) return -1;
      return measure_inside(*caller);
    }

    std::string server_type =
        cfg.server_kind == ComponentKind::kPersistent ? "CounterServer"
                                                      : "EchoServer";
    auto server = admin.CreateComponent(server_proc, server_type, "server",
                                        cfg.server_kind, {});
    if (!server.ok()) return -1;

    if (cfg.client_kind == ComponentKind::kExternal) {
      ExternalClient client(&sim, client_machine.name());
      for (int i = 0; i < 32; ++i) {  // warm-up
        client.Call(*server, cfg.server_method, MakeArgs(int64_t{1}));
      }
      double t0 = sim.clock().NowMs();
      for (int i = 0; i < cfg.batch; ++i) {
        client.Call(*server, cfg.server_method, MakeArgs(int64_t{1}));
      }
      return (sim.clock().NowMs() - t0) / cfg.batch;
    }

    Process& client_proc = client_machine.CreateProcess();
    auto caller =
        admin.CreateComponent(client_proc, "BatchCaller", "caller",
                              cfg.client_kind,
                              MakeArgs(*server, cfg.server_method));
    if (!caller.ok()) return -1;
    return measure_inside(*caller);
  };

  double per_call = run();
  if (variant != nullptr) {
    sim.CaptureBench(*variant);
    variant->SetMetric("per_call_ms", per_call);
  }
  return per_call;
}

}  // namespace phoenix::bench

#endif  // PHOENIX_BENCH_BENCH_COMPONENTS_H_
