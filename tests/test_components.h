#ifndef PHOENIX_TESTS_TEST_COMPONENTS_H_
#define PHOENIX_TESTS_TEST_COMPONENTS_H_

// Small components shared by the runtime / recovery / exactly-once tests.

#include <map>
#include <string>

#include "core/phoenix.h"

namespace phoenix::testing {

// Global (non-recovered!) execution counter. Lets tests distinguish "the
// method body ran again" (replay, duplicate mis-detection) from "the state
// changed again" — exactly-once is a guarantee about state, replays do
// re-execute bodies.
class ExecutionLog {
 public:
  static std::map<std::string, int>& counts() {
    static auto& counts = *new std::map<std::string, int>();
    return counts;
  }
  static void Reset() { counts().clear(); }
  static void Bump(const std::string& key) { ++counts()[key]; }
  static int Of(const std::string& key) {
    auto it = counts().find(key);
    return it == counts().end() ? 0 : it->second;
  }
};

// Persistent counter. Add(n) -> new count; Get() read-only; Fail(code) ->
// an application error reply (tests reply-status plumbing).
class Counter : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Add", [this](const ArgList& a) -> Result<Value> {
      ExecutionLog::Bump(name() + ".Add");
      count_ += a[0].AsInt();
      return Value(count_);
    });
    methods.Register(
        "Get", [this](const ArgList&) -> Result<Value> { return Value(count_); },
        MethodTraits{.read_only = true});
    methods.Register("Fail", [](const ArgList&) -> Result<Value> {
      return Status::FailedPrecondition("requested failure");
    });
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterInt("count", &count_);
  }

 private:
  int64_t count_ = 0;
};

// Persistent middle tier: Bump(n) adds locally, then forwards n to the
// downstream component (exercises message 3/4 and the Figure 2 failure
// points). Ctor args: [downstream_uri, forward_method?]; downstream_uri may
// be "" for a leafless chain, forward_method defaults to "Add" so chains of
// Chains use "Bump".
class Chain : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Bump", [this](const ArgList& a) -> Result<Value> {
      ExecutionLog::Bump(name() + ".Bump");
      count_ += a[0].AsInt();
      if (!downstream_.empty()) {
        PHX_RETURN_IF_ERROR(
            CallRef(downstream_, forward_method_, {a[0]}).status());
      }
      return Value(count_);
    });
    methods.Register(
        "Get", [this](const ArgList&) -> Result<Value> { return Value(count_); },
        MethodTraits{.read_only = true});
    methods.Register("SetDownstream",
                     [this](const ArgList& a) -> Result<Value> {
                       downstream_.uri = a[0].AsString();
                       if (a.size() > 1) forward_method_ = a[1].AsString();
                       return Value(true);
                     });
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterInt("count", &count_);
    fields.RegisterComponentRef("downstream", &downstream_);
    fields.RegisterString("forward_method", &forward_method_);
  }
  Status Initialize(const ArgList& args) override {
    if (!args.empty()) downstream_.uri = args[0].AsString();
    if (args.size() > 1) forward_method_ = args[1].AsString();
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
  std::string forward_method_ = "Add";
  ComponentRefField downstream_;
};

// Functional: Square(n) -> n*n (pure).
class Squarer : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Square", [](const ArgList& a) -> Result<Value> {
      return Value(a[0].AsInt() * a[0].AsInt());
    });
  }
};

// Read-only: Probe(counter_uri) -> the counter's current value.
class Prober : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Probe", [this](const ArgList& a) -> Result<Value> {
      return Call(a[0].AsString(), "Get", {});
    });
  }
};

// Persistent parent owning a subordinate Counter. BumpSub(n) calls the
// subordinate's Add — a plain in-context local call (§3.2.1).
class ParentWithSub : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("BumpSub", [this](const ArgList& a) -> Result<Value> {
      return CallRef(sub_, "Add", {a[0]});
    });
    methods.Register(
        "GetSub", [this](const ArgList&) { return CallRef(sub_, "Get", {}); },
        MethodTraits{.read_only = true});
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterComponentRef("sub", &sub_);
  }
  Status Initialize(const ArgList&) override {
    PHX_ASSIGN_OR_RETURN(sub_.uri,
                         CreateSubordinate("Counter", name() + "_sub", {}));
    return Status::OK();
  }

 private:
  ComponentRefField sub_;
};

inline void RegisterTestComponents(ComponentFactoryRegistry& factories) {
  factories.Register<Counter>("Counter");
  factories.Register<Chain>("Chain");
  factories.Register<Squarer>("Squarer");
  factories.Register<Prober>("Prober");
  factories.Register<ParentWithSub>("ParentWithSub");
}

}  // namespace phoenix::testing

#endif  // PHOENIX_TESTS_TEST_COMPONENTS_H_
