#include "serde/value.h"

#include <gtest/gtest.h>

namespace phoenix {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(true).kind(), Value::Kind::kBool);
  EXPECT_TRUE(Value(true).AsBool());
  EXPECT_EQ(Value(int64_t{9}).AsInt(), 9);
  EXPECT_EQ(Value(5).AsInt(), 5);  // int promotes to int64
  EXPECT_DOUBLE_EQ(Value(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_EQ(Value(std::string("abc")).AsString(), "abc");
}

TEST(ValueTest, IntPromotesToDouble) {
  EXPECT_DOUBLE_EQ(Value(int64_t{4}).AsDouble(), 4.0);
}

TEST(ValueTest, ListAccess) {
  Value::List list;
  list.push_back(Value(1));
  list.push_back(Value("x"));
  Value v(std::move(list));
  ASSERT_EQ(v.AsList().size(), 2u);
  v.MutableList().push_back(Value(2.0));
  EXPECT_EQ(v.AsList().size(), 3u);
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(1), Value(1));
  EXPECT_FALSE(Value(1) == Value(2));
  EXPECT_FALSE(Value(1) == Value(1.0));  // int and double differ in kind
  EXPECT_EQ(Value(), Value());
  Value::List a;
  a.push_back(Value("k"));
  Value::List b;
  b.push_back(Value("k"));
  EXPECT_EQ(Value(std::move(a)), Value(std::move(b)));
}

TEST(ValueTest, ToStringRendersAllKinds) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "\"hi\"");
  Value::List list;
  list.push_back(Value(1));
  list.push_back(Value(2));
  EXPECT_EQ(Value(std::move(list)).ToString(), "[1, 2]");
}

TEST(ValueTest, EncodedSizeHintGrowsWithContent) {
  EXPECT_LT(Value(1).EncodedSizeHint(), Value("a longer string").EncodedSizeHint());
  Value::List list;
  for (int i = 0; i < 100; ++i) list.push_back(Value(i));
  EXPECT_GT(Value(std::move(list)).EncodedSizeHint(), 100u);
}

TEST(ValueTest, MakeArgsBuildsHeterogeneousList) {
  ArgList args = MakeArgs(1, "two", 3.5, false);
  ASSERT_EQ(args.size(), 4u);
  EXPECT_EQ(args[0].AsInt(), 1);
  EXPECT_EQ(args[1].AsString(), "two");
  EXPECT_DOUBLE_EQ(args[2].AsDouble(), 3.5);
  EXPECT_FALSE(args[3].AsBool());
}

TEST(ValueTest, BytesRoundtrip) {
  Value::Bytes b;
  b.data = {0, 1, 2};
  Value v(b);
  EXPECT_EQ(v.kind(), Value::Kind::kBytes);
  EXPECT_EQ(v.AsBytes().data.size(), 3u);
}

}  // namespace
}  // namespace phoenix
