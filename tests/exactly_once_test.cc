// The paper's core guarantee (§2.2): for persistent components calling
// persistent components, state changes after crashes are exactly the same
// as in a failure-free run — for every failure point of Figure 2, in every
// logging mode, with and without checkpoints.

#include <gtest/gtest.h>

#include <tuple>

#include "recovery/recovery_service.h"
#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

struct Scenario {
  LoggingMode mode;
  FailurePoint point;
  uint64_t fire_on_hit;
  uint32_t save_state_every;  // 0 = no checkpointing
};

std::string ScenarioName(const ::testing::TestParamInfo<Scenario>& info) {
  const Scenario& s = info.param;
  std::string name =
      s.mode == LoggingMode::kBaseline ? "baseline_" : "optimized_";
  name += FailurePointName(s.point);
  name += "_hit" + std::to_string(s.fire_on_hit);
  name += s.save_state_every > 0 ? "_ckpt" : "_nockpt";
  return name;
}

// Workload: an external program calls a persistent "driver" tier whose
// process never crashes; the driver forwards to a persistent "mid" tier on
// machine alpha, which forwards to a persistent "leaf" counter on machine
// beta. A crash is injected into mid's process at the parameterized
// point/occurrence. Invariant: final driver/mid/leaf states equal the
// failure-free run's — the crash is fully masked because mid's clients are
// persistent (the external edge never fails here; its window is tested in
// window_of_vulnerability_test.cc).
class ExactlyOnceTest : public ::testing::TestWithParam<Scenario> {
 protected:
  struct Outcome {
    int64_t driver = 0;
    int64_t mid = 0;
    int64_t leaf = 0;
    uint64_t crashes = 0;
  };

  Outcome Run(bool inject) {
    const Scenario& s = GetParam();
    RuntimeOptions opts;
    opts.logging_mode = s.mode;
    opts.save_context_state_every = s.save_state_every;
    Simulation sim(opts);
    RegisterTestComponents(sim.factories());
    Machine& alpha = sim.AddMachine("alpha");
    Machine& beta = sim.AddMachine("beta");
    Process& driver_proc = alpha.CreateProcess();
    Process& mid_proc = alpha.CreateProcess();
    Process& leaf_proc = beta.CreateProcess();

    ExternalClient admin(&sim, "alpha");
    auto leaf = admin.CreateComponent(leaf_proc, "Counter", "leaf",
                                      ComponentKind::kPersistent, {});
    EXPECT_TRUE(leaf.ok());
    auto mid = admin.CreateComponent(mid_proc, "Chain", "mid",
                                     ComponentKind::kPersistent,
                                     MakeArgs(*leaf));
    EXPECT_TRUE(mid.ok());
    auto driver = admin.CreateComponent(driver_proc, "Chain", "driver",
                                        ComponentKind::kPersistent,
                                        MakeArgs(*mid, "Bump"));
    EXPECT_TRUE(driver.ok());

    if (inject) {
      sim.injector().AddTrigger("alpha", mid_proc.pid(), s.point,
                                s.fire_on_hit);
    }

    ExternalClient program(&sim, "alpha");
    for (int i = 1; i <= 6; ++i) {
      auto r = program.Call(*driver, "Bump", MakeArgs(i));
      EXPECT_TRUE(r.ok()) << "call " << i << ": " << r.status().ToString();
    }

    Outcome out;
    out.crashes = sim.injector().crashes_fired();
    out.driver = program.Call(*driver, "Get", {})->AsInt();
    out.mid = program.Call(*mid, "Get", {})->AsInt();
    out.leaf = program.Call(*leaf, "Get", {})->AsInt();
    return out;
  }
};

TEST_P(ExactlyOnceTest, StateMatchesFailureFreeRun) {
  Outcome clean = Run(/*inject=*/false);
  EXPECT_EQ(clean.driver, 21);
  EXPECT_EQ(clean.mid, 21);
  EXPECT_EQ(clean.leaf, 21);

  Outcome crashed = Run(/*inject=*/true);
  EXPECT_EQ(crashed.crashes, 1u) << "the schedule must actually fire";
  EXPECT_EQ(crashed.driver, clean.driver);
  EXPECT_EQ(crashed.mid, clean.mid);
  EXPECT_EQ(crashed.leaf, clean.leaf);
}

std::vector<Scenario> AllScenarios() {
  std::vector<Scenario> scenarios;
  for (LoggingMode mode : {LoggingMode::kBaseline, LoggingMode::kOptimized}) {
    for (FailurePoint point :
         {FailurePoint::kBeforeIncomingLogged,
          FailurePoint::kAfterIncomingLogged,
          FailurePoint::kBeforeOutgoingSend, FailurePoint::kAfterOutgoingReply,
          FailurePoint::kBeforeReplySend, FailurePoint::kAfterReplySend}) {
      for (uint64_t hit : {uint64_t{1}, uint64_t{3}}) {
        for (uint32_t every : {uint32_t{0}, uint32_t{2}}) {
          scenarios.push_back(Scenario{mode, point, hit, every});
        }
      }
    }
  }
  return scenarios;
}

INSTANTIATE_TEST_SUITE_P(AllFailurePoints, ExactlyOnceTest,
                         ::testing::ValuesIn(AllScenarios()), ScenarioName);

// Crashing the *downstream* (leaf) process must also be masked: mid's
// interceptor retries with the same ID until the leaf answers.
class DownstreamCrashTest : public ::testing::TestWithParam<FailurePoint> {};

TEST_P(DownstreamCrashTest, LeafCrashMaskedFromDriver) {
  RuntimeOptions opts;
  Simulation sim(opts);
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  Machine& beta = sim.AddMachine("beta");
  Process& mid_proc = alpha.CreateProcess();
  Process& leaf_proc = beta.CreateProcess();

  ExternalClient admin(&sim, "alpha");
  auto leaf = admin.CreateComponent(leaf_proc, "Counter", "leaf",
                                    ComponentKind::kPersistent, {});
  auto mid = admin.CreateComponent(mid_proc, "Chain", "mid",
                                   ComponentKind::kPersistent, MakeArgs(*leaf));
  ASSERT_TRUE(mid.ok());

  sim.injector().AddTrigger("beta", leaf_proc.pid(), GetParam(), 2);

  ExternalClient driver(&sim, "alpha");
  for (int i = 1; i <= 4; ++i) {
    auto r = driver.Call(*mid, "Bump", MakeArgs(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(sim.injector().crashes_fired(), 1u);
  EXPECT_EQ(driver.Call(*leaf, "Get", {})->AsInt(), 10);
  EXPECT_EQ(driver.Call(*mid, "Get", {})->AsInt(), 10);
}

INSTANTIATE_TEST_SUITE_P(
    LeafPoints, DownstreamCrashTest,
    ::testing::Values(FailurePoint::kBeforeIncomingLogged,
                      FailurePoint::kAfterIncomingLogged,
                      FailurePoint::kBeforeReplySend,
                      FailurePoint::kAfterReplySend),
    [](const ::testing::TestParamInfo<FailurePoint>& info) {
      return FailurePointName(info.param);
    });

// Both the middle and leaf tiers crash at different times within one run;
// the never-crashing persistent driver masks everything from the program.
TEST(ExactlyOnceMultiCrashTest, IndependentCrashesInBothTiers) {
  RuntimeOptions opts;
  Simulation sim(opts);
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  Machine& beta = sim.AddMachine("beta");
  Process& driver_proc = alpha.CreateProcess();
  Process& mid_proc = alpha.CreateProcess();
  Process& leaf_proc = beta.CreateProcess();

  ExternalClient admin(&sim, "alpha");
  auto leaf = admin.CreateComponent(leaf_proc, "Counter", "leaf",
                                    ComponentKind::kPersistent, {});
  auto mid = admin.CreateComponent(mid_proc, "Chain", "mid",
                                   ComponentKind::kPersistent, MakeArgs(*leaf));
  auto driver = admin.CreateComponent(driver_proc, "Chain", "driver",
                                      ComponentKind::kPersistent,
                                      MakeArgs(*mid, "Bump"));
  ASSERT_TRUE(driver.ok());

  sim.injector().AddTrigger("alpha", mid_proc.pid(),
                            FailurePoint::kBeforeOutgoingSend, 2);
  sim.injector().AddTrigger("beta", leaf_proc.pid(),
                            FailurePoint::kBeforeReplySend, 4);
  sim.injector().AddTrigger("alpha", mid_proc.pid(),
                            FailurePoint::kAfterReplySend, 5);

  ExternalClient program(&sim, "alpha");
  for (int i = 1; i <= 6; ++i) {
    auto r = program.Call(*driver, "Bump", MakeArgs(i));
    ASSERT_TRUE(r.ok()) << "call " << i << ": " << r.status().ToString();
  }
  EXPECT_EQ(sim.injector().crashes_fired(), 3u);
  EXPECT_EQ(program.Call(*driver, "Get", {})->AsInt(), 21);
  EXPECT_EQ(program.Call(*mid, "Get", {})->AsInt(), 21);
  EXPECT_EQ(program.Call(*leaf, "Get", {})->AsInt(), 21);
}

}  // namespace
}  // namespace phoenix
