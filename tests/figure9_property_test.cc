// Parameterized property sweep over the disk model's Figure 9 behavior:
// for ANY inserted delay, elapsed time per iteration equals the delay
// rounded up to the next rotation boundary (plus transfer), and latency is
// always bounded by one rotation + seek + settle + transfer.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "sim/disk_model.h"
#include "sim/sim_clock.h"

namespace phoenix {
namespace {

class StaircaseTest : public ::testing::TestWithParam<double> {};

TEST_P(StaircaseTest, ElapsedRoundsUpToRotationBoundary) {
  const double delay = GetParam();
  DiskParams params;
  params.spindle_tolerance = 0;  // exact nominal period for the math below
  DiskModel disk(params, 11);
  SimClock clock;

  const int kIters = 120;
  double start = clock.NowMs();
  for (int i = 0; i < kIters; ++i) {
    clock.AdvanceMs(disk.WriteLatencyMs(clock.NowMs(), 1024));
    clock.AdvanceMs(delay);
  }
  double per_iter = (clock.NowMs() - start) / kIters;

  const double rotation = params.rotation_ms;
  // Distance from (delay + transfer/settle) to the nearest rotation
  // boundary: at a step edge the per-write jitter straddles the boundary
  // and the average legitimately lands mid-step (Figure 9's transitions
  // are steep, not instantaneous).
  double phase = std::fmod(delay + 0.2, rotation);
  double to_edge = std::min(phase, rotation - phase);
  if (to_edge > 0.6) {
    // Firmly inside a step: elapsed rounds up to the rotation boundary.
    double steps = std::ceil((per_iter - 0.75) / rotation);
    EXPECT_NEAR(per_iter, steps * rotation, 0.75) << "delay " << delay;
  }
  // Always: you can't finish faster than you wait, and never a whole extra
  // rotation beyond the ceiling.
  EXPECT_GE(per_iter, delay);
  EXPECT_LE(per_iter, (std::floor(delay / rotation) + 2) * rotation + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Delays, StaircaseTest,
                         ::testing::Values(0.0, 1.0, 3.0, 5.0, 7.0, 9.0, 12.0,
                                           15.5, 20.0, 24.9, 30.0, 36.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "delay_" +
                                  std::to_string(
                                      static_cast<int>(info.param * 10));
                         });

TEST(DiskBoundsTest, LatencyNeverExceedsOneRotationPlusOverheads) {
  DiskParams params;
  DiskModel disk(params, 3);
  Random gaps(77);
  double now = 0;
  for (int i = 0; i < 2000; ++i) {
    double latency = disk.WriteLatencyMs(now, 512);
    EXPECT_GE(latency, 0.0);
    EXPECT_LE(latency, params.rotation_ms * 1.02 +
                           params.track_to_track_seek_ms + 0.3 + 0.1);
    now += latency + gaps.NextDouble() * 20.0;
  }
}

TEST(DiskBoundsTest, SpindleToleranceBoundsThePeriod) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    DiskParams params;
    DiskModel disk(params, seed);
    EXPECT_GE(disk.period_ms(),
              params.rotation_ms * (1 - params.spindle_tolerance));
    EXPECT_LE(disk.period_ms(),
              params.rotation_ms * (1 + params.spindle_tolerance));
  }
}

TEST(DiskBoundsTest, TwoDisksDriftApart) {
  // The remote-case mechanism (§5.2.2): distinct spindles have distinct
  // periods, so their relative phase sweeps the whole circle over time.
  DiskParams params;
  DiskModel a(params, 1), b(params, 2);
  EXPECT_NE(a.period_ms(), b.period_ms());
}

}  // namespace
}  // namespace phoenix
