// Specialized kinds under crashes: functional and read-only components are
// stateless — recovery just re-creates them — while read-only *replies*
// consumed by persistent components must replay from the log (Algorithm 5's
// whole point: those replies are unrepeatable).

#include <gtest/gtest.h>

#include "recovery/recovery_service.h"
#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::ExecutionLog;
using phoenix::testing::RegisterTestComponents;

// Persistent component whose state change depends on an unrepeatable
// read-only reply: Mix(n) reads the counter (read-only method), then adds
// n + (read % 3). Replay MUST feed the logged read back, or the state
// diverges.
class Mixer : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Mix", [this](const ArgList& a) -> Result<Value> {
      PHX_ASSIGN_OR_RETURN(Value read, CallRef(counter_, "Get", {}));
      int64_t delta = a[0].AsInt() + read.AsInt() % 3;
      PHX_ASSIGN_OR_RETURN(Value result,
                           CallRef(counter_, "Add", MakeArgs(delta)));
      mixed_ += delta;
      return result;
    });
    methods.Register(
        "Mixed",
        [this](const ArgList&) -> Result<Value> { return Value(mixed_); },
        MethodTraits{.read_only = true});
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterComponentRef("counter", &counter_);
    fields.RegisterInt("mixed", &mixed_);
  }
  Status Initialize(const ArgList& args) override {
    counter_.uri = args[0].AsString();
    return Status::OK();
  }

 private:
  ComponentRefField counter_;
  int64_t mixed_ = 0;
};

class KindsFailureTest : public ::testing::Test {
 protected:
  void SetUpSim() {
    RuntimeOptions opts;  // optimized + specialized
    sim_ = std::make_unique<Simulation>(opts);
    RegisterTestComponents(sim_->factories());
    sim_->factories().Register<Mixer>("Mixer");
    alpha_ = &sim_->AddMachine("alpha");
    server_ = &alpha_->CreateProcess();
    ExecutionLog::Reset();
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Process* server_ = nullptr;
};

TEST_F(KindsFailureTest, StatelessComponentsRecreatedAfterCrash) {
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto fn = client.CreateComponent(*server_, "Squarer", "sq",
                                   ComponentKind::kFunctional, {});
  auto counter = client.CreateComponent(*server_, "Counter", "c",
                                        ComponentKind::kPersistent, {});
  auto probe = client.CreateComponent(*server_, "Prober", "probe",
                                      ComponentKind::kReadOnly, {});
  ASSERT_TRUE(client.Call(*counter, "Add", MakeArgs(9)).ok());

  server_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());

  EXPECT_EQ(client.Call(*fn, "Square", MakeArgs(4))->AsInt(), 16);
  EXPECT_EQ(client.Call(*probe, "Probe", MakeArgs(*counter))->AsInt(), 9);
  // Kinds survive the recovery.
  EXPECT_EQ(server_->FindComponent("sq")->instance->kind(),
            ComponentKind::kFunctional);
  EXPECT_EQ(server_->FindComponent("probe")->instance->kind(),
            ComponentKind::kReadOnly);
}

TEST_F(KindsFailureTest, ReadOnlyReplyFedBackDuringReplay) {
  SetUpSim();
  ExternalClient admin(sim_.get(), "alpha");
  Process& mixer_proc = alpha_->CreateProcess();
  Process& driver_proc = alpha_->CreateProcess();  // never crashed
  auto counter = admin.CreateComponent(*server_, "Counter", "c",
                                       ComponentKind::kPersistent, {});
  auto mixer_uri = admin.CreateComponent(mixer_proc, "Mixer", "mixer",
                                         ComponentKind::kPersistent,
                                         MakeArgs(*counter));
  ASSERT_TRUE(mixer_uri.ok());
  // Drive through a persistent tier so the crash is fully masked (the
  // external edge's window is tested elsewhere).
  auto mixer = admin.CreateComponent(driver_proc, "Chain", "driver",
                                     ComponentKind::kPersistent,
                                     MakeArgs(*mixer_uri, "Mix"));
  ASSERT_TRUE(mixer.ok());

  // Failure-free twin run for the expected values.
  auto expected_run = [&]() {
    int64_t counter_value = 0;
    int64_t mixed = 0;
    for (int i = 1; i <= 4; ++i) {
      int64_t delta = i + counter_value % 3;
      counter_value += delta;
      mixed += delta;
    }
    return std::pair<int64_t, int64_t>(counter_value, mixed);
  };

  for (int i = 1; i <= 2; ++i) {
    ASSERT_TRUE(admin.Call(*mixer, "Bump", MakeArgs(i)).ok());
  }
  // Crash the mixer's process after the Add of call 3 went out but before
  // its reply commits: the read-only reply of call 3 is on the unforced
  // log tail, flushed by the Add's send force — replay must feed it back.
  sim_->injector().AddTrigger("alpha", mixer_proc.pid(),
                              FailurePoint::kBeforeReplySend, 1);
  for (int i = 3; i <= 4; ++i) {
    auto r = admin.Call(*mixer, "Bump", MakeArgs(i));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(sim_->injector().crashes_fired(), 1u);

  auto [expected_counter, expected_mixed] = expected_run();
  EXPECT_EQ(admin.Call(*counter, "Get", {})->AsInt(), expected_counter);
  EXPECT_EQ(admin.Call(*mixer_uri, "Mixed", {})->AsInt(), expected_mixed);
}

TEST_F(KindsFailureTest, FunctionalHostCrashMaskedByPureRetry) {
  SetUpSim();
  ExternalClient admin(sim_.get(), "alpha");
  Process& driver_proc = alpha_->CreateProcess();
  auto fn = admin.CreateComponent(*server_, "Squarer", "sq",
                                  ComponentKind::kFunctional, {});
  auto driver = admin.CreateComponent(driver_proc, "Chain", "driver",
                                      ComponentKind::kPersistent,
                                      MakeArgs(*fn, "Square"));
  ASSERT_TRUE(driver.ok());
  ASSERT_TRUE(admin.Call(*driver, "Bump", MakeArgs(3)).ok());  // learn kind

  // Kill the functional host mid-call; the driver retries and purity makes
  // the re-execution indistinguishable (no IDs, no dedupe needed).
  sim_->injector().AddTrigger("alpha", server_->pid(),
                              FailurePoint::kBeforeReplySend, 1);
  auto r = admin.Call(*driver, "Bump", MakeArgs(4));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(sim_->injector().crashes_fired(), 1u);
  EXPECT_EQ(admin.Call(*driver, "Get", {})->AsInt(), 7);
}

TEST_F(KindsFailureTest, SubordinateStateExactAcrossCrashAndCheckpoint) {
  RuntimeOptions opts;
  opts.save_context_state_every = 3;
  sim_ = std::make_unique<Simulation>(opts);
  RegisterTestComponents(sim_->factories());
  alpha_ = &sim_->AddMachine("alpha");
  server_ = &alpha_->CreateProcess();

  ExternalClient client(sim_.get(), "alpha");
  auto parent = client.CreateComponent(*server_, "ParentWithSub", "p",
                                       ComponentKind::kPersistent, {});
  int64_t expected = 0;
  for (int round = 0; round < 3; ++round) {
    for (int i = 1; i <= 4; ++i) {
      ASSERT_TRUE(client.Call(*parent, "BumpSub", MakeArgs(i)).ok());
      expected += i;
    }
    server_->Kill();
    ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
    EXPECT_EQ(client.Call(*parent, "GetSub", {})->AsInt(), expected);
  }
}

}  // namespace
}  // namespace phoenix
