#include "sim/stable_storage.h"

#include <gtest/gtest.h>

namespace phoenix {
namespace {

TEST(StableStorageTest, AppendReturnsOffsets) {
  StableStorage storage;
  EXPECT_EQ(storage.AppendLog("log", {1, 2, 3}), 0u);
  EXPECT_EQ(storage.AppendLog("log", {4, 5}), 3u);
  EXPECT_EQ(storage.LogSize("log"), 5u);
  EXPECT_EQ(storage.ReadLog("log")[3], 4);
}

TEST(StableStorageTest, MissingLogIsEmpty) {
  StableStorage storage;
  EXPECT_EQ(storage.LogSize("nope"), 0u);
  EXPECT_TRUE(storage.ReadLog("nope").empty());
}

TEST(StableStorageTest, LogsAreIndependent) {
  StableStorage storage;
  storage.AppendLog("a", {1});
  storage.AppendLog("b", {2, 3});
  EXPECT_EQ(storage.LogSize("a"), 1u);
  EXPECT_EQ(storage.LogSize("b"), 2u);
}

TEST(StableStorageTest, DeleteLog) {
  StableStorage storage;
  storage.AppendLog("a", {1});
  storage.DeleteLog("a");
  EXPECT_EQ(storage.LogSize("a"), 0u);
}

TEST(StableStorageTest, TruncateSimulatesTornTail) {
  StableStorage storage;
  storage.AppendLog("log", {1, 2, 3, 4, 5});
  storage.TruncateLog("log", 2);
  EXPECT_EQ(storage.LogSize("log"), 2u);
  storage.TruncateLog("log", 10);  // growing is a no-op
  EXPECT_EQ(storage.LogSize("log"), 2u);
}

TEST(StableStorageTest, CorruptFlipsBits) {
  StableStorage storage;
  storage.AppendLog("log", std::vector<uint8_t>(64, 0));
  storage.CorruptLog("log", 8, 2);
  EXPECT_EQ(storage.ReadLog("log")[8], 0x55);
  EXPECT_EQ(storage.ReadLog("log")[15], 0x55);
  EXPECT_EQ(storage.ReadLog("log")[9], 0);
}

TEST(StableStorageTest, FilesAtomicReplace) {
  StableStorage storage;
  EXPECT_FALSE(storage.FileExists("wkf"));
  EXPECT_TRUE(storage.ReadFile("wkf").status().IsNotFound());
  storage.WriteFile("wkf", {9});
  ASSERT_TRUE(storage.FileExists("wkf"));
  EXPECT_EQ(storage.ReadFile("wkf").value()[0], 9);
  storage.WriteFile("wkf", {1, 2});
  EXPECT_EQ(storage.ReadFile("wkf").value().size(), 2u);
  storage.DeleteFile("wkf");
  EXPECT_FALSE(storage.FileExists("wkf"));
}

}  // namespace
}  // namespace phoenix
