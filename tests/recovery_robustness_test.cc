// Recovery under adversity: crashes *during* recovery, incomplete
// checkpoints, stale well-known files, corrupted tails — the recovery path
// must converge to the same exact state no matter what.

#include <gtest/gtest.h>

#include "recovery/checkpoint_manager.h"
#include "recovery/recovery_service.h"
#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

class RecoveryRobustnessTest : public ::testing::Test {
 protected:
  void SetUpSim(RuntimeOptions opts = {}) {
    sim_ = std::make_unique<Simulation>(opts);
    RegisterTestComponents(sim_->factories());
    alpha_ = &sim_->AddMachine("alpha");
    proc_ = &alpha_->CreateProcess();
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Process* proc_ = nullptr;
};

TEST_F(RecoveryRobustnessTest, CrashDuringRecoveryRestartsRecovery) {
  RuntimeOptions opts;
  opts.inject_failures_during_recovery = true;
  SetUpSim(opts);
  ExternalClient client(sim_.get(), "alpha");
  Process& driver_proc = alpha_->CreateProcess();
  Process& leaf_proc = alpha_->CreateProcess();
  auto leaf = client.CreateComponent(leaf_proc, "Counter", "leaf",
                                     ComponentKind::kPersistent, {});
  auto mid = client.CreateComponent(*proc_, "Chain", "mid",
                                    ComponentKind::kPersistent,
                                    MakeArgs(*leaf));
  auto driver = client.CreateComponent(driver_proc, "Chain", "driver",
                                       ComponentKind::kPersistent,
                                       MakeArgs(*mid, "Bump"));
  ASSERT_TRUE(driver.ok());
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(client.Call(*driver, "Bump", MakeArgs(i)).ok());
  }

  // Crash mid before its send to leaf; the replayed final call goes live at
  // the same hook during recovery and the SECOND trigger kills the
  // recovering process too. The service restarts recovery, which converges.
  sim_->injector().AddTrigger("alpha", proc_->pid(),
                              FailurePoint::kBeforeOutgoingSend, 1);
  sim_->injector().AddTrigger("alpha", proc_->pid(),
                              FailurePoint::kBeforeOutgoingSend, 2);
  auto r = client.Call(*driver, "Bump", MakeArgs(4));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(sim_->injector().crashes_fired(), 2u);  // original + in-recovery
  EXPECT_EQ(client.Call(*mid, "Get", {})->AsInt(), 10);
  EXPECT_EQ(client.Call(*leaf, "Get", {})->AsInt(), 10);
}

TEST_F(RecoveryRobustnessTest, RepeatedCrashesDuringRecoveryConverge) {
  RuntimeOptions opts;
  opts.inject_failures_during_recovery = true;
  SetUpSim(opts);
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(2)).ok());
  }
  proc_->Kill();
  // Round after round: recover, then crash again on the very next incoming
  // call. Every recovery must land on the identical state.
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  for (int round = 0; round < 3; ++round) {
    sim_->injector().AddTrigger("alpha", proc_->pid(),
                                FailurePoint::kBeforeIncomingLogged, 1);
    auto r = client.Call(*uri, "Get", {});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->AsInt(), 10);
  }
}

TEST_F(RecoveryRobustnessTest, IncompleteCheckpointIgnored) {
  // Crash after the begin-checkpoint record is stable but before the end
  // record: recovery must not treat the partial table dump as authoritative
  // (the well-known file still points at the previous checkpoint or
  // nothing).
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }
  // Take a checkpoint whose records reach the disk (flush by force) but
  // whose publish is suppressed by crashing before the next publish check.
  ASSERT_TRUE(proc_->checkpoints().TakeProcessCheckpoint().ok());
  proc_->log().Force();  // records stable, but not yet published
  EXPECT_TRUE(proc_->log().ReadWellKnownLsn().status().IsNotFound());
  proc_->Kill();

  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 4);
}

TEST_F(RecoveryRobustnessTest, StaleWellKnownFileStillCorrect) {
  // The well-known file may lag several checkpoints behind; recovery just
  // scans more log. Correctness must be unaffected.
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  Context* ctx = proc_->FindContextOfComponent("c");
  ASSERT_TRUE(proc_->checkpoints().SaveContextState(*ctx).ok());
  ASSERT_TRUE(proc_->checkpoints().TakeProcessCheckpoint().ok());
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());  // publish #1
  auto first_wkf = proc_->log().ReadWellKnownLsn();
  ASSERT_TRUE(first_wkf.ok());

  // More work + a second, newer state record that is never checkpointed.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }
  ASSERT_TRUE(proc_->checkpoints().SaveContextState(*ctx).ok());
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());  // flushes it

  proc_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  // Pass 1 found the newer state record beyond the stale checkpoint.
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 6);
}

TEST_F(RecoveryRobustnessTest, TornTailPlusRetryIsExactlyOnce) {
  // The last call's records are torn off the log AND the (persistent)
  // client retries: the retry re-executes — exactly once overall, because
  // the torn records were never part of committed state.
  SetUpSim();
  ExternalClient admin(sim_.get(), "alpha");
  Process& client_proc = alpha_->CreateProcess();
  auto counter = admin.CreateComponent(*proc_, "Counter", "c",
                                       ComponentKind::kPersistent, {});
  auto driver = admin.CreateComponent(client_proc, "Chain", "driver",
                                      ComponentKind::kPersistent,
                                      MakeArgs(*counter));
  ASSERT_TRUE(driver.ok());
  ASSERT_TRUE(admin.Call(*driver, "Bump", MakeArgs(3)).ok());

  // Tear the counter-side log mid-way into the last frames.
  std::string log_name = proc_->log_name();
  uint64_t size = sim_->storage().LogSize(log_name);
  proc_->Kill();
  sim_->storage().TruncateLog(log_name, size - 5);
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());

  // Retry the same logical call through the driver's dedupe machinery by
  // re-sending the same call id by hand.
  Context* driver_ctx = client_proc.FindContextOfComponent("driver");
  CallMessage dup;
  dup.target_uri = *counter;
  dup.method = "Add";
  dup.args = MakeArgs(3);
  dup.has_call_id = true;
  dup.call_id = CallId{ClientKey{"alpha", client_proc.pid(),
                                 driver_ctx->id()},
                       driver_ctx->last_outgoing_seq()};
  dup.has_sender_info = true;
  dup.sender_kind = ComponentKind::kPersistent;
  Result<ReplyMessage> reply = sim_->RouteCall("alpha", dup);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->value.AsInt(), 3);
  EXPECT_EQ(admin.Call(*counter, "Get", {})->AsInt(), 3);
}

// Scans the stable log and returns the LSN of the newest record matching
// `pred`, or kInvalidLsn.
template <typename Pred>
uint64_t FindNewestRecord(Process& proc, Pred pred) {
  LogView view = proc.log().StableView();
  LogReader reader(view, proc.log().head_base());
  reader.EnableSalvage();
  uint64_t found = kInvalidLsn;
  while (auto parsed = reader.Next()) {
    if (pred(parsed->record)) found = parsed->lsn;
  }
  return found;
}

TEST_F(RecoveryRobustnessTest, CorruptStateRecordFallsBackToOlderOrigin) {
  // A checkpoint references a context-state record that bit rot later makes
  // unreadable. Recovery must not fail: it falls back to an older state
  // record or the creation record and replays forward.
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }
  Context* ctx = proc_->FindContextOfComponent("c");
  ASSERT_TRUE(proc_->checkpoints().SaveContextState(*ctx).ok());
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  ASSERT_TRUE(proc_->checkpoints().TakeProcessCheckpoint().ok());
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());  // publishes

  uint64_t state_lsn = FindNewestRecord(*proc_, [](const LogRecord& r) {
    return std::holds_alternative<ContextStateRecord>(r);
  });
  ASSERT_NE(state_lsn, kInvalidLsn);
  proc_->Kill();
  sim_->storage().CorruptLog(proc_->log_name(), state_lsn + 8, 2);

  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 5);
  EXPECT_GE(sim_->metrics().CounterTotal(
                "phoenix.recovery.salvage.state_record_fallback"),
            1u);
}

TEST_F(RecoveryRobustnessTest, CorruptionInsideCheckpointBracketFullScan) {
  // Bit rot lands on a checkpoint table record above the published begin
  // LSN: the bracket can no longer be trusted, so recovery must widen to a
  // full scan of the retained log and still converge.
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }
  ASSERT_TRUE(proc_->checkpoints().TakeProcessCheckpoint().ok());
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());  // publishes
  ASSERT_TRUE(proc_->log().ReadWellKnownLsn().ok());

  uint64_t entry_lsn = FindNewestRecord(*proc_, [](const LogRecord& r) {
    return std::holds_alternative<CheckpointContextEntryRecord>(r) ||
           std::holds_alternative<CheckpointLastCallRecord>(r);
  });
  ASSERT_NE(entry_lsn, kInvalidLsn);
  proc_->Kill();
  sim_->storage().CorruptLog(proc_->log_name(), entry_lsn + 8, 2);

  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 5);
  EXPECT_GE(sim_->metrics().CounterTotal(
                "phoenix.recovery.salvage.full_scan_fallback"),
            1u);
}

TEST_F(RecoveryRobustnessTest, CorruptWellKnownFileFallsBackToFullScan) {
  // The well-known file itself rots: its LSN no longer lands on a readable
  // begin-checkpoint record, so recovery distrusts it and rescans.
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }
  ASSERT_TRUE(proc_->checkpoints().TakeProcessCheckpoint().ok());
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());  // publishes
  ASSERT_TRUE(proc_->log().ReadWellKnownLsn().ok());

  proc_->Kill();
  sim_->storage().CorruptFile(proc_->log_name() + ".wkf", 0, 2);

  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 5);
  EXPECT_GE(
      sim_->metrics().CounterTotal("phoenix.recovery.salvage.wkf_fallback"),
      1u);
}

TEST_F(RecoveryRobustnessTest, TornTailIsAmputatedAndSecondCrashIsClean) {
  // A crash tears the stable tail mid-frame. Recovery must truncate the
  // torn bytes (so later appends cannot be polluted by the partial frame),
  // surface the tear in metrics, and a second crash/recovery cycle must
  // land on the same state.
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }
  std::string log_name = proc_->log_name();
  uint64_t size = sim_->storage().LogSize(log_name);
  proc_->Kill();
  sim_->storage().TruncateLog(log_name, size - 3);

  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_GE(sim_->metrics().CounterTotal("phoenix.wal.torn_tails"), 1u);
  EXPECT_GT(sim_->metrics().CounterTotal(
                "phoenix.recovery.salvage.torn_tail_bytes"),
            0u);
  auto value = client.Call(*uri, "Get", {});
  ASSERT_TRUE(value.ok());
  int64_t recovered = value->AsInt();
  EXPECT_EQ(recovered, 5);  // every Add was acknowledged, none may be lost

  // The amputated log must append and recover cleanly from here on.
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  proc_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), recovered + 1);
}

TEST_F(RecoveryRobustnessTest, RestartAllDeadRevivesEveryProcess) {
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  Process& p2 = alpha_->CreateProcess();
  auto a = client.CreateComponent(*proc_, "Counter", "a",
                                  ComponentKind::kPersistent, {});
  auto b = client.CreateComponent(p2, "Counter", "b",
                                  ComponentKind::kPersistent, {});
  ASSERT_TRUE(client.Call(*a, "Add", MakeArgs(1)).ok());
  ASSERT_TRUE(client.Call(*b, "Add", MakeArgs(2)).ok());

  proc_->Kill();
  p2.Kill();
  EXPECT_EQ(alpha_->recovery_service().dead_count(), 2);
  ASSERT_TRUE(alpha_->recovery_service().RestartAllDead().ok());
  EXPECT_EQ(alpha_->recovery_service().dead_count(), 0);
  EXPECT_EQ(client.Call(*a, "Get", {})->AsInt(), 1);
  EXPECT_EQ(client.Call(*b, "Get", {})->AsInt(), 2);
}

}  // namespace
}  // namespace phoenix
