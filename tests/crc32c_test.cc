#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace phoenix {
namespace {

TEST(Crc32cTest, KnownVector) {
  // Canonical CRC-32C test vector: "123456789" -> 0xE3069283.
  const std::string s = "123456789";
  EXPECT_EQ(Crc32c(s.data(), s.size()), 0xE3069283u);
}

TEST(Crc32cTest, EmptyIsZero) { EXPECT_EQ(Crc32c(nullptr, 0), 0u); }

TEST(Crc32cTest, SensitiveToEveryByte) {
  std::string a = "phoenix recovery log";
  uint32_t base = Crc32c(a.data(), a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    std::string b = a;
    b[i] ^= 0x01;
    EXPECT_NE(Crc32c(b.data(), b.size()), base) << "byte " << i;
  }
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  std::string s = "split into pieces";
  uint32_t one_shot = Crc32c(s.data(), s.size());
  uint32_t crc = 0;
  crc = Crc32cExtend(crc, s.data(), 5);
  crc = Crc32cExtend(crc, s.data() + 5, s.size() - 5);
  EXPECT_EQ(crc, one_shot);
}

}  // namespace
}  // namespace phoenix
