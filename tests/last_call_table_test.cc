#include "runtime/last_call_table.h"

#include <gtest/gtest.h>

namespace phoenix {
namespace {

ClientKey Key(const std::string& m, uint32_t pid, uint64_t cid) {
  return ClientKey{m, pid, cid};
}

LastCallEntry Entry(uint64_t seq, uint64_t context_id,
                    const Value& reply = Value()) {
  LastCallEntry e;
  e.seq = seq;
  e.context_id = context_id;
  e.reply_in_memory = true;
  e.reply = reply;
  return e;
}

TEST(LastCallTableTest, LookupMissReturnsNull) {
  LastCallTable table;
  EXPECT_EQ(table.Lookup(Key("m", 1, 1), 1), nullptr);
}

TEST(LastCallTableTest, UpdateReplacesOlderEntry) {
  LastCallTable table;
  table.Update(Key("m", 1, 1), Entry(1, 7, Value("first")));
  table.Update(Key("m", 1, 1), Entry(2, 7, Value("second")));

  const LastCallEntry* found = table.Lookup(Key("m", 1, 1), 7);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->seq, 2u);
  EXPECT_EQ(found->reply, Value("second"));
  EXPECT_EQ(table.size(), 1u);  // only the last call is kept (§2.3)
}

TEST(LastCallTableTest, EntriesPerServingContext) {
  // One client calling two components in the same process keeps the last
  // call to EACH serving context — required for the §3.5 multi-call
  // optimization, where replies to several servers may be unforced at the
  // client and must all be recoverable from the servers.
  LastCallTable table;
  table.Update(Key("m", 1, 9), Entry(5, 1, Value("to ctx1")));
  table.Update(Key("m", 1, 9), Entry(6, 2, Value("to ctx2")));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.Lookup(Key("m", 1, 9), 1)->reply, Value("to ctx1"));
  EXPECT_EQ(table.Lookup(Key("m", 1, 9), 2)->reply, Value("to ctx2"));
  EXPECT_EQ(table.Lookup(Key("m", 1, 9), 3), nullptr);
}

TEST(LastCallTableTest, EntriesForContextFilters) {
  LastCallTable table;
  for (uint64_t client = 0; client < 6; ++client) {
    table.Update(Key("m", 1, client), Entry(1, client % 2));
  }
  EXPECT_EQ(table.EntriesForContext(0).size(), 3u);
  EXPECT_EQ(table.EntriesForContext(1).size(), 3u);
  EXPECT_EQ(table.EntriesForContext(7).size(), 0u);
}

TEST(LastCallTableTest, MutableLookupAllowsLsnFill) {
  LastCallTable table;
  table.Update(Key("m", 1, 1), Entry(1, 4));
  table.LookupMutable(Key("m", 1, 1), 4)->reply_lsn = 500;
  EXPECT_EQ(table.Lookup(Key("m", 1, 1), 4)->reply_lsn, 500u);
}

TEST(LastCallTableTest, ClearEmpties) {
  LastCallTable table;
  table.Update(Key("m", 1, 1), Entry(1, 1));
  table.Clear();
  EXPECT_EQ(table.size(), 0u);
}

}  // namespace
}  // namespace phoenix
