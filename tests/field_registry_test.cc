#include "runtime/field_registry.h"

#include <gtest/gtest.h>

namespace phoenix {
namespace {

struct Fields {
  bool flag = false;
  int64_t count = 0;
  double ratio = 0.0;
  std::string label;
  Value data{Value::List{}};
  ComponentRefField peer;

  void RegisterAll(FieldRegistry& reg) {
    reg.RegisterBool("flag", &flag);
    reg.RegisterInt("count", &count);
    reg.RegisterDouble("ratio", &ratio);
    reg.RegisterString("label", &label);
    reg.RegisterValue("data", &data);
    reg.RegisterComponentRef("peer", &peer);
  }
};

TEST(FieldRegistryTest, SnapshotCapturesValues) {
  Fields f;
  FieldRegistry reg;
  f.RegisterAll(reg);
  f.flag = true;
  f.count = 42;
  f.ratio = 0.5;
  f.label = "hello";
  f.data.MutableList().push_back(Value(9));
  f.peer.uri = "phx://m/1/other";

  auto snapshot = reg.Snapshot();
  ASSERT_EQ(snapshot.size(), 6u);
  EXPECT_EQ(snapshot[0].value, Value(true));
  EXPECT_EQ(snapshot[1].value, Value(int64_t{42}));
  EXPECT_EQ(snapshot[3].value, Value("hello"));
  EXPECT_TRUE(snapshot[5].is_component_ref);
  EXPECT_EQ(snapshot[5].value, Value("phx://m/1/other"));
}

TEST(FieldRegistryTest, RestoreOverwritesTarget) {
  Fields src, dst;
  FieldRegistry src_reg, dst_reg;
  src.RegisterAll(src_reg);
  dst.RegisterAll(dst_reg);
  src.count = 7;
  src.label = "from source";
  src.peer.uri = "phx://m/1/x";

  ASSERT_TRUE(dst_reg.Restore(src_reg.Snapshot()).ok());
  EXPECT_EQ(dst.count, 7);
  EXPECT_EQ(dst.label, "from source");
  EXPECT_EQ(dst.peer.uri, "phx://m/1/x");
}

TEST(FieldRegistryTest, UnknownFieldIsCorruption) {
  Fields f;
  FieldRegistry reg;
  f.RegisterAll(reg);
  std::vector<FieldSnapshot> snapshot = {
      {"no_such_field", Value(1), false}};
  EXPECT_TRUE(reg.Restore(snapshot).IsCorruption());
}

TEST(FieldRegistryTest, TypeMismatchIsCorruption) {
  Fields f;
  FieldRegistry reg;
  f.RegisterAll(reg);
  std::vector<FieldSnapshot> snapshot = {{"count", Value("not an int"), false}};
  EXPECT_TRUE(reg.Restore(snapshot).IsCorruption());
}

TEST(FieldRegistryTest, MissingFieldsKeepDefaults) {
  Fields f;
  FieldRegistry reg;
  f.RegisterAll(reg);
  f.count = 99;
  std::vector<FieldSnapshot> partial = {{"label", Value("only this"), false}};
  ASSERT_TRUE(reg.Restore(partial).ok());
  EXPECT_EQ(f.count, 99);  // untouched
  EXPECT_EQ(f.label, "only this");
}

TEST(FieldRegistryTest, IntAcceptedForDoubleField) {
  Fields f;
  FieldRegistry reg;
  f.RegisterAll(reg);
  std::vector<FieldSnapshot> snapshot = {{"ratio", Value(int64_t{3}), false}};
  ASSERT_TRUE(reg.Restore(snapshot).ok());
  EXPECT_DOUBLE_EQ(f.ratio, 3.0);
}

TEST(FieldRegistryTest, StateSizeHintGrows) {
  Fields f;
  FieldRegistry reg;
  f.RegisterAll(reg);
  size_t small = reg.StateSizeHint();
  f.label = std::string(1000, 'x');
  EXPECT_GT(reg.StateSizeHint(), small + 900);
}

}  // namespace
}  // namespace phoenix
