// Checks the decision tables directly against the paper's algorithm boxes.

#include "runtime/logging_policy.h"

#include <gtest/gtest.h>

#include "runtime/context.h"

namespace phoenix {
namespace {

RuntimeOptions Baseline() {
  RuntimeOptions o;
  o.logging_mode = LoggingMode::kBaseline;
  o.use_specialized_kinds = false;
  return o;
}

RuntimeOptions Optimized() {
  RuntimeOptions o;
  o.logging_mode = LoggingMode::kOptimized;
  o.use_specialized_kinds = true;
  return o;
}

constexpr auto kP = ComponentKind::kPersistent;
constexpr auto kE = ComponentKind::kExternal;
constexpr auto kF = ComponentKind::kFunctional;
constexpr auto kRO = ComponentKind::kReadOnly;

// --- Algorithm 1: baseline logs and forces everything ---

TEST(LoggingPolicyTest, BaselineForcesAllFourMessages) {
  RuntimeOptions o = Baseline();
  auto in = DecideIncoming(o, kP, kP, false);
  EXPECT_TRUE(in.write);
  EXPECT_TRUE(in.force);
  EXPECT_TRUE(in.dedupe);

  auto rep = DecideReplySend(o, kP, kP, false);
  EXPECT_TRUE(rep.write);
  EXPECT_TRUE(rep.force);
  EXPECT_TRUE(rep.long_form);

  auto out = DecideOutgoing(o, kP, false, kP, false, nullptr, "uri");
  EXPECT_TRUE(out.write);
  EXPECT_TRUE(out.force);
  EXPECT_TRUE(out.attach_call_id);

  auto rr = DecideReplyReceived(o, kP, kP, false);
  EXPECT_TRUE(rr.write);
  EXPECT_TRUE(rr.force);
}

// --- Algorithm 2: optimized persistent <-> persistent ---

TEST(LoggingPolicyTest, OptimizedLogsReceivesWithoutForce) {
  RuntimeOptions o = Optimized();
  // Message 1: log, no force.
  auto in = DecideIncoming(o, kP, kP, false);
  EXPECT_TRUE(in.write);
  EXPECT_FALSE(in.force);
  EXPECT_TRUE(in.dedupe);
  // Message 4: log, no force.
  auto rr = DecideReplyReceived(o, kP, kP, false);
  EXPECT_TRUE(rr.write);
  EXPECT_FALSE(rr.force);
}

TEST(LoggingPolicyTest, OptimizedSendsForceButAreNotWritten) {
  RuntimeOptions o = Optimized();
  // Message 2: force all previous, write nothing.
  auto rep = DecideReplySend(o, kP, kP, false);
  EXPECT_FALSE(rep.write);
  EXPECT_TRUE(rep.force);
  // Message 3: force all previous, write nothing.
  auto out = DecideOutgoing(o, kP, true, kP, false, nullptr, "uri");
  EXPECT_FALSE(out.write);
  EXPECT_TRUE(out.force);
  EXPECT_TRUE(out.attach_call_id);
}

// --- Algorithm 3: external client ---

TEST(LoggingPolicyTest, ExternalClientLongThenShortForced) {
  RuntimeOptions o = Optimized();
  auto in = DecideIncoming(o, kP, kE, false);
  EXPECT_TRUE(in.write);
  EXPECT_TRUE(in.force);
  EXPECT_FALSE(in.dedupe);  // no ID to dedupe on

  auto rep = DecideReplySend(o, kP, kE, false);
  EXPECT_TRUE(rep.write);
  EXPECT_TRUE(rep.force);
  EXPECT_FALSE(rep.long_form);  // short record: identity only
}

TEST(LoggingPolicyTest, BaselineExternalClientRepliesAreLong) {
  auto rep = DecideReplySend(Baseline(), kP, kE, false);
  EXPECT_TRUE(rep.write);
  EXPECT_TRUE(rep.long_form);
}

// --- Algorithm 4: functional components ---

TEST(LoggingPolicyTest, FunctionalServerNothingAnywhere) {
  RuntimeOptions o = Optimized();
  // At the functional component: nothing.
  EXPECT_FALSE(DecideIncoming(o, kF, kP, false).write);
  EXPECT_FALSE(DecideReplySend(o, kF, kP, false).write);
  // At the persistent caller of a known-functional server: nothing.
  auto out = DecideOutgoing(o, kP, true, kF, false, nullptr, "uri");
  EXPECT_FALSE(out.write);
  EXPECT_FALSE(out.force);
  EXPECT_FALSE(out.attach_call_id);
  EXPECT_FALSE(DecideReplyReceived(o, kP, kF, false).write);
}

TEST(LoggingPolicyTest, FunctionalClientLogsNothing) {
  RuntimeOptions o = Optimized();
  auto out = DecideOutgoing(o, kF, true, kF, false, nullptr, "uri");
  EXPECT_FALSE(out.write);
  EXPECT_FALSE(out.force);
  EXPECT_FALSE(DecideReplyReceived(o, kF, kF, false).write);
}

// --- Algorithm 5: read-only components and methods ---

TEST(LoggingPolicyTest, ReadOnlyClientNotLoggedAtServer) {
  RuntimeOptions o = Optimized();
  auto in = DecideIncoming(o, kP, kRO, false);
  EXPECT_FALSE(in.write);
  EXPECT_FALSE(in.dedupe);
  EXPECT_FALSE(DecideReplySend(o, kP, kRO, false).write);
  EXPECT_FALSE(DecideReplySend(o, kP, kRO, false).force);
}

TEST(LoggingPolicyTest, CallToReadOnlyServerNoForceButReplyLogged) {
  RuntimeOptions o = Optimized();
  auto out = DecideOutgoing(o, kP, true, kRO, false, nullptr, "uri");
  EXPECT_FALSE(out.write);
  EXPECT_FALSE(out.force);  // a read-only call commits nothing
  // Message 4 IS logged (unrepeatable reply), without force.
  auto rr = DecideReplyReceived(o, kP, kRO, false);
  EXPECT_TRUE(rr.write);
  EXPECT_FALSE(rr.force);
}

TEST(LoggingPolicyTest, ReadOnlyMethodTreatedLikeReadOnlyComponent) {
  RuntimeOptions o = Optimized();
  EXPECT_FALSE(DecideIncoming(o, kP, kP, /*method_read_only=*/true).write);
  EXPECT_FALSE(DecideReplySend(o, kP, kP, true).force);
  auto out = DecideOutgoing(o, kP, true, kP, /*method_read_only=*/true,
                            nullptr, "uri");
  EXPECT_FALSE(out.force);
}

TEST(LoggingPolicyTest, ReadOnlyIgnoredWhenSpecializedKindsOff) {
  RuntimeOptions o = Optimized();
  o.use_specialized_kinds = false;
  EXPECT_TRUE(DecideIncoming(o, kP, kP, /*method_read_only=*/true).write);
  EXPECT_TRUE(
      DecideOutgoing(o, kP, true, kRO, false, nullptr, "uri").force);
}

// --- Unknown servers use the most conservative algorithm (§3.4) ---

TEST(LoggingPolicyTest, UnknownServerIsConservative) {
  RuntimeOptions o = Optimized();
  auto out = DecideOutgoing(o, kP, /*server_known=*/false, kF,
                            /*method_read_only=*/true, nullptr, "uri");
  EXPECT_TRUE(out.force);
  EXPECT_TRUE(out.attach_call_id);
}

// --- §3.5 multi-call optimization ---

TEST(LoggingPolicyTest, MultiCallForcesOnceAcrossDistinctServers) {
  RuntimeOptions o = Optimized();
  o.multi_call_optimization = true;
  MultiCallTracker tracker;
  EXPECT_TRUE(
      DecideOutgoing(o, kP, true, kP, false, &tracker, "uri_a").force);
  EXPECT_FALSE(
      DecideOutgoing(o, kP, true, kP, false, &tracker, "uri_b").force);
  EXPECT_FALSE(
      DecideOutgoing(o, kP, true, kP, false, &tracker, "uri_c").force);
  // Second call to an already-seen server forces again.
  EXPECT_TRUE(
      DecideOutgoing(o, kP, true, kP, false, &tracker, "uri_b").force);
}

TEST(LoggingPolicyTest, MultiCallTrackerResetsPerExecution) {
  RuntimeOptions o = Optimized();
  o.multi_call_optimization = true;
  MultiCallTracker tracker;
  DecideOutgoing(o, kP, true, kP, false, &tracker, "uri_a");
  tracker.Reset();
  EXPECT_TRUE(
      DecideOutgoing(o, kP, true, kP, false, &tracker, "uri_b").force);
}

TEST(LoggingPolicyTest, MultiCallOffForcesEveryCall) {
  RuntimeOptions o = Optimized();
  MultiCallTracker tracker;
  EXPECT_TRUE(DecideOutgoing(o, kP, true, kP, false, &tracker, "a").force);
  EXPECT_TRUE(DecideOutgoing(o, kP, true, kP, false, &tracker, "b").force);
}

}  // namespace
}  // namespace phoenix
