#include "wal/commit_pipeline.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "runtime/session.h"
#include "wal/log_dump.h"
#include "wal/log_manager.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"

namespace phoenix {
namespace {

LogRecord CallRecord(uint64_t ctx, const std::string& method) {
  IncomingCallRecord rec;
  rec.context_id = ctx;
  rec.method = method;
  return LogRecord(rec);
}

class CommitPipelineTest : public ::testing::Test {
 protected:
  CommitPipelineTest()
      : disk_(DiskParams{}, 1),
        manager_("m/p1.log", &storage_, &disk_, &clock_, &costs_) {}

  StableStorage storage_;
  DiskModel disk_;
  SimClock clock_;
  CostModel costs_;
  LogManager manager_;
};

TEST_F(CommitPipelineTest, WaitDurableFlushesInline) {
  uint64_t lsn = manager_.Append(CallRecord(1, "Go"));
  uint64_t horizon = manager_.next_lsn();
  EXPECT_FALSE(manager_.IsStable(lsn));

  ASSERT_TRUE(manager_.WaitDurable(horizon, ForcePoint::kReplySend).ok());
  EXPECT_TRUE(manager_.IsStable(lsn));
  EXPECT_EQ(manager_.durable_lsn(), horizon);
  EXPECT_EQ(manager_.num_forces(), 1u);

  // A satisfied horizon is a free no-op, exactly like the old empty Force.
  double before = clock_.NowMs();
  ASSERT_TRUE(manager_.WaitDurable(horizon, ForcePoint::kReplySend).ok());
  EXPECT_EQ(clock_.NowMs(), before);
  EXPECT_EQ(manager_.num_forces(), 1u);
}

TEST_F(CommitPipelineTest, GroupFlagWithoutSchedulerStaysInline) {
  manager_.pipeline().SetGroupCommit(true);  // no scheduler installed
  manager_.Append(CallRecord(1, "Go"));
  uint64_t horizon = manager_.next_lsn();
  ASSERT_TRUE(manager_.WaitDurable(horizon, ForcePoint::kOutgoingSend).ok());
  EXPECT_GE(manager_.durable_lsn(), horizon);
  EXPECT_EQ(manager_.num_forces(), 1u);
}

// durable_lsn <= appended_lsn always, and both move monotonically, under a
// seeded random mix of appends and durability waits.
TEST_F(CommitPipelineTest, DurableTrailsAppendedMonotonically) {
  Random rng(42);
  uint64_t last_appended = 0;
  uint64_t last_durable = 0;
  for (int i = 0; i < 400; ++i) {
    if (rng.Bernoulli(0.7)) {
      manager_.Append(CallRecord(i, StrCat("m", i)));
    } else {
      ASSERT_TRUE(
          manager_.WaitDurable(manager_.next_lsn(), ForcePoint::kManual)
              .ok());
    }
    CommitPipeline& pipe = manager_.pipeline();
    EXPECT_LE(pipe.durable_lsn(), pipe.appended_lsn());
    EXPECT_GE(pipe.appended_lsn(), last_appended);
    EXPECT_GE(pipe.durable_lsn(), last_durable);
    last_appended = pipe.appended_lsn();
    last_durable = pipe.durable_lsn();
  }
}

// A crash loses exactly the unforced tail: the stable image holds every
// record below the durable horizon, nothing above it.
TEST_F(CommitPipelineTest, CrashDropsExactlyTheUnforcedTail) {
  manager_.Append(CallRecord(1, "a"));
  manager_.Append(CallRecord(1, "b"));
  ASSERT_TRUE(
      manager_.WaitDurable(manager_.next_lsn(), ForcePoint::kReplySend).ok());
  uint64_t durable = manager_.durable_lsn();
  uint64_t epoch = manager_.pipeline().abort_epoch();

  manager_.Append(CallRecord(1, "c"));
  manager_.Append(CallRecord(1, "d"));
  EXPECT_GT(manager_.next_lsn(), durable);

  manager_.DropBuffer();  // process crash
  EXPECT_EQ(manager_.durable_lsn(), durable);
  EXPECT_EQ(manager_.next_lsn(), durable);  // writer realigned
  EXPECT_EQ(manager_.pipeline().abort_epoch(), epoch + 1);

  std::vector<std::string> methods;
  LogReader reader(manager_.StableLog(), 0);
  while (auto parsed = reader.Next()) {
    methods.push_back(std::get<IncomingCallRecord>(parsed->record).method);
  }
  EXPECT_EQ(methods, (std::vector<std::string>{"a", "b"}));
}

// Every force is attributed: marks carry the ForcePoint, cover contiguous
// LSN ranges, and the log dump renders the durability boundaries.
TEST_F(CommitPipelineTest, ForceMarksAttributeEveryFlush) {
  manager_.Append(CallRecord(1, "a"));
  ASSERT_TRUE(
      manager_.WaitDurable(manager_.next_lsn(), ForcePoint::kIncomingLogged)
          .ok());
  manager_.Append(CallRecord(1, "b"));
  ASSERT_TRUE(
      manager_.WaitDurable(manager_.next_lsn(), ForcePoint::kCheckpoint)
          .ok());

  const std::vector<ForceMark>& marks = manager_.force_marks();
  ASSERT_EQ(marks.size(), 2u);
  EXPECT_EQ(marks[0].reason, ForcePoint::kIncomingLogged);
  EXPECT_EQ(marks[1].reason, ForcePoint::kCheckpoint);
  EXPECT_EQ(marks[0].start_lsn, 0u);
  EXPECT_EQ(marks[0].end_lsn, marks[1].start_lsn);
  EXPECT_EQ(marks[1].end_lsn, manager_.durable_lsn());

  std::string dump = DumpLog(manager_.StableView(), marks);
  EXPECT_NE(dump.find("forced up to lsn"), std::string::npos);
  EXPECT_NE(dump.find("incoming_logged"), std::string::npos);
  EXPECT_NE(dump.find("checkpoint"), std::string::npos);
}

// Property: under group commit with overlapping sessions, a waiter that
// wakes successfully always finds its horizon durable — a group flush never
// externalizes ("wakes") a wait below the batch it covered. And batching
// must actually coalesce: far fewer forces than waits.
TEST(CommitPipelineGroupTest, WakeImpliesWaiterHorizonDurable) {
  for (uint64_t seed : {1u, 7u, 12345u}) {
    StableStorage storage;
    DiskModel disk(DiskParams{}, 1);
    SimClock clock;
    CostModel costs;
    LogManager manager("m/p1.log", &storage, &disk, &clock, &costs);
    manager.pipeline().SetGroupCommit(true);
    SessionScheduler scheduler(seed);
    manager.pipeline().SetScheduler(&scheduler);

    const int kSessions = 8;
    const int kWaitsPerSession = 6;
    int violations = 0;
    std::vector<std::function<void()>> bodies;
    for (int s = 0; s < kSessions; ++s) {
      bodies.push_back([&, s] {
        for (int k = 0; k < kWaitsPerSession; ++k) {
          manager.Append(CallRecord(s, StrCat("m", s, "_", k)));
          uint64_t horizon = manager.next_lsn();
          Status status =
              manager.WaitDurable(horizon, ForcePoint::kOutgoingSend);
          if (!status.ok() || manager.durable_lsn() < horizon) ++violations;
        }
      });
    }
    scheduler.Run(std::move(bodies));
    manager.pipeline().SetScheduler(nullptr);

    EXPECT_EQ(violations, 0) << "seed " << seed;
    EXPECT_LE(manager.durable_lsn(), manager.next_lsn());
    // 48 waits must not mean 48 disk forces.
    EXPECT_LT(manager.num_forces(),
              static_cast<uint64_t>(kSessions * kWaitsPerSession))
        << "seed " << seed;
    for (const ForceMark& mark : manager.force_marks()) {
      EXPECT_EQ(mark.reason, ForcePoint::kGroupCommit);
    }
  }
}

// Same seed, same workload -> identical interleaving: force marks (the
// batching decisions) are byte-identical across runs.
TEST(CommitPipelineGroupTest, SchedulingIsDeterministic) {
  auto run = [](uint64_t seed) {
    StableStorage storage;
    DiskModel disk(DiskParams{}, 1);
    SimClock clock;
    CostModel costs;
    LogManager manager("m/p1.log", &storage, &disk, &clock, &costs);
    manager.pipeline().SetGroupCommit(true);
    SessionScheduler scheduler(seed);
    manager.pipeline().SetScheduler(&scheduler);
    std::vector<std::function<void()>> bodies;
    for (int s = 0; s < 6; ++s) {
      bodies.push_back([&, s] {
        for (int k = 0; k < 4; ++k) {
          manager.Append(CallRecord(s, StrCat("x", s, "_", k)));
          (void)manager.WaitDurable(manager.next_lsn(),
                                    ForcePoint::kReplySend);
        }
      });
    }
    scheduler.Run(std::move(bodies));
    std::vector<std::pair<uint64_t, uint64_t>> spans;
    for (const ForceMark& m : manager.force_marks()) {
      spans.emplace_back(m.start_lsn, m.end_lsn);
    }
    return spans;
  };
  EXPECT_EQ(run(99), run(99));
}

// Durability-wait attribution: an inline force charges the whole wait to
// phoenix.wal.own_force_wait_ms and records nothing in the park histogram —
// nobody parked, so there is no park time to report.
TEST_F(CommitPipelineTest, InlineWaitRecordsNoParkTime) {
  obs::MetricsRegistry metrics;
  manager_.BindObs(&metrics, nullptr, "m/p1");

  manager_.Append(CallRecord(1, "Go"));
  ASSERT_TRUE(
      manager_.WaitDurable(manager_.next_lsn(), ForcePoint::kReplySend).ok());

  obs::Histogram parks = metrics.MergedHistogram("phoenix.wal.park_ms");
  EXPECT_EQ(parks.count(), 0u);
  EXPECT_EQ(parks.sum(), 0.0);
  EXPECT_GT(metrics.GaugeTotal("phoenix.wal.own_force_wait_ms"), 0.0);
}

// Under group commit, coalesced waiters park: the park histogram gains one
// positive sample per harvested wait, and those waits charge nothing to the
// own-force gauge (the flush was someone else's dispatch).
TEST(CommitPipelineGroupTest, ParkedWaitsRecordPositiveParkTime) {
  StableStorage storage;
  DiskModel disk(DiskParams{}, 1);
  SimClock clock;
  CostModel costs;
  LogManager manager("m/p1.log", &storage, &disk, &clock, &costs);
  obs::MetricsRegistry metrics;
  manager.BindObs(&metrics, nullptr, "m/p1");
  manager.pipeline().SetGroupCommit(true);
  SessionScheduler scheduler(5);
  manager.pipeline().SetScheduler(&scheduler);

  const int kSessions = 4;
  std::vector<std::function<void()>> bodies;
  for (int s = 0; s < kSessions; ++s) {
    bodies.push_back([&, s] {
      manager.Append(CallRecord(s, StrCat("m", s)));
      ASSERT_TRUE(
          manager.WaitDurable(manager.next_lsn(), ForcePoint::kReplySend)
              .ok());
    });
  }
  scheduler.Run(std::move(bodies));
  manager.pipeline().SetScheduler(nullptr);

  obs::Histogram parks = metrics.MergedHistogram("phoenix.wal.park_ms");
  EXPECT_GT(parks.count(), 0u);
  EXPECT_GT(parks.sum(), 0.0);
  EXPECT_GT(parks.min(), 0.0);
  // Every wait either parked or forced inline — together they cover all
  // sessions, and the parked share is the coalesced majority.
  uint64_t waits = metrics.CounterTotal("phoenix.wal.waits");
  EXPECT_EQ(waits, static_cast<uint64_t>(kSessions));
  EXPECT_LT(manager.num_forces(), static_cast<uint64_t>(kSessions));
}

// A crash while sessions are parked wakes them with Crashed instead of
// leaving them stranded (the tail they were waiting on is gone).
TEST(CommitPipelineGroupTest, CrashWhileParkedReturnsCrashed) {
  StableStorage storage;
  DiskModel disk(DiskParams{}, 1);
  SimClock clock;
  CostModel costs;
  LogManager manager("m/p1.log", &storage, &disk, &clock, &costs);
  manager.pipeline().SetGroupCommit(true);
  SessionScheduler scheduler(17);
  manager.pipeline().SetScheduler(&scheduler);

  Status waiter_status = Status::OK();
  std::vector<std::function<void()>> bodies;
  bodies.push_back([&] {
    manager.Append(CallRecord(1, "doomed"));
    waiter_status =
        manager.WaitDurable(manager.next_lsn(), ForcePoint::kReplySend);
  });
  bodies.push_back([&] {
    // Wait until the other session has appended (so it is parked on the
    // tail), then crash the process out from under it.
    scheduler.ParkUntil([&] { return manager.next_lsn() > 0; });
    manager.DropBuffer();
  });
  scheduler.Run(std::move(bodies));

  EXPECT_TRUE(waiter_status.IsCrashed());
  EXPECT_EQ(manager.durable_lsn(), 0u);
  EXPECT_EQ(manager.num_forces(), 0u);  // nothing was externalized
}

}  // namespace
}  // namespace phoenix
