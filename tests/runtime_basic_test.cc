// End-to-end runtime behavior without failures: creation, calls across
// contexts/processes/machines, force accounting per logging mode, duplicate
// elimination, and the single-threaded-context guarantee.

#include <gtest/gtest.h>

#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::ExecutionLog;
using phoenix::testing::RegisterTestComponents;

class RuntimeBasicTest : public ::testing::Test {
 protected:
  void SetUpSim(RuntimeOptions opts) {
    sim_ = std::make_unique<Simulation>(opts);
    RegisterTestComponents(sim_->factories());
    alpha_ = &sim_->AddMachine("alpha");
    beta_ = &sim_->AddMachine("beta");
    server_ = &alpha_->CreateProcess();
    ExecutionLog::Reset();
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Machine* beta_ = nullptr;
  Process* server_ = nullptr;
};

TEST_F(RuntimeBasicTest, CreateAndCallCounter) {
  SetUpSim(RuntimeOptions{});
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*server_, "Counter", "c1",
                                    ComponentKind::kPersistent, {});
  ASSERT_TRUE(uri.ok()) << uri.status().ToString();
  EXPECT_EQ(*uri, "phx://alpha/1/c1");

  auto r1 = client.Call(*uri, "Add", MakeArgs(5));
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->AsInt(), 5);
  auto r2 = client.Call(*uri, "Add", MakeArgs(3));
  EXPECT_EQ(r2->AsInt(), 8);
  auto got = client.Call(*uri, "Get", {});
  EXPECT_EQ(got->AsInt(), 8);
}

TEST_F(RuntimeBasicTest, CreateIsIdempotentPerName) {
  SetUpSim(RuntimeOptions{});
  ExternalClient client(sim_.get(), "alpha");
  auto first = client.CreateComponent(*server_, "Counter", "c1",
                                      ComponentKind::kPersistent, {});
  auto second = client.CreateComponent(*server_, "Counter", "c1",
                                       ComponentKind::kPersistent, {});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
}

TEST_F(RuntimeBasicTest, UnknownTypeFailsCreation) {
  SetUpSim(RuntimeOptions{});
  ExternalClient client(sim_.get(), "alpha");
  auto r = client.CreateComponent(*server_, "NoSuchType", "x",
                                  ComponentKind::kPersistent, {});
  EXPECT_FALSE(r.ok());
}

TEST_F(RuntimeBasicTest, UnknownMethodIsAppError) {
  SetUpSim(RuntimeOptions{});
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*server_, "Counter", "c1",
                                    ComponentKind::kPersistent, {});
  auto r = client.Call(*uri, "NoSuchMethod", {});
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST_F(RuntimeBasicTest, AppErrorReplyPropagates) {
  SetUpSim(RuntimeOptions{});
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*server_, "Counter", "c1",
                                    ComponentKind::kPersistent, {});
  auto r = client.Call(*uri, "Fail", {});
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RuntimeBasicTest, CrossProcessPersistentChain) {
  SetUpSim(RuntimeOptions{});
  Process& downstream_proc = beta_->CreateProcess();
  ExternalClient client(sim_.get(), "alpha");
  auto counter = client.CreateComponent(downstream_proc, "Counter", "leaf",
                                        ComponentKind::kPersistent, {});
  ASSERT_TRUE(counter.ok());
  auto chain = client.CreateComponent(*server_, "Chain", "mid",
                                      ComponentKind::kPersistent,
                                      MakeArgs(*counter));
  ASSERT_TRUE(chain.ok());

  auto r = client.Call(*chain, "Bump", MakeArgs(4));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->AsInt(), 4);
  auto leaf = client.Call(*counter, "Get", {});
  EXPECT_EQ(leaf->AsInt(), 4);
}

TEST_F(RuntimeBasicTest, BaselineForcesSixAcrossDriverCall) {
  RuntimeOptions opts;
  opts.logging_mode = LoggingMode::kBaseline;
  opts.use_specialized_kinds = false;
  SetUpSim(opts);
  Process& client_proc = alpha_->CreateProcess();
  ExternalClient admin(sim_.get(), "alpha");
  auto counter = admin.CreateComponent(*server_, "Counter", "c",
                                       ComponentKind::kPersistent, {});
  auto chain = admin.CreateComponent(client_proc, "Chain", "driver",
                                     ComponentKind::kPersistent,
                                     MakeArgs(*counter));
  ASSERT_TRUE(chain.ok());

  // Each driver.Bump makes exactly one outgoing persistent->persistent
  // call; Algorithm 1 forces messages 3 and 4 at the client and messages 1
  // and 2 at the server. The external call into the driver adds 2 more at
  // the driver's process.
  uint64_t before = sim_->TotalForces();
  ASSERT_TRUE(admin.Call(*chain, "Bump", MakeArgs(1)).ok());
  EXPECT_EQ(sim_->TotalForces() - before, 6u);
}

TEST_F(RuntimeBasicTest, OptimizedCutsForcesToThreePerDriverCall) {
  RuntimeOptions opts;  // optimized by default
  SetUpSim(opts);
  Process& client_proc = alpha_->CreateProcess();
  ExternalClient admin(sim_.get(), "alpha");
  auto counter = admin.CreateComponent(*server_, "Counter", "c",
                                       ComponentKind::kPersistent, {});
  auto chain = admin.CreateComponent(client_proc, "Chain", "driver",
                                     ComponentKind::kPersistent,
                                     MakeArgs(*counter));
  ASSERT_TRUE(chain.ok());
  ASSERT_TRUE(admin.Call(*chain, "Bump", MakeArgs(1)).ok());  // warm types

  // Algorithm 2/3 accounting for external -> driver -> counter:
  //  driver: forced message-1 long record (Algorithm 3)            -> 1
  //  driver: message-3 force finds everything already stable       -> 0
  //  server: message-1 logged unforced; reply force flushes it     -> 1
  //  driver: message-4 logged unforced; the short message-2 record
  //          for the external client is forced, flushing it        -> 1
  uint64_t before = sim_->TotalForces();
  ASSERT_TRUE(admin.Call(*chain, "Bump", MakeArgs(1)).ok());
  EXPECT_EQ(sim_->TotalForces() - before, 3u);
}

TEST_F(RuntimeBasicTest, DuplicateCallAnsweredFromLastCallTable) {
  SetUpSim(RuntimeOptions{});
  ExternalClient admin(sim_.get(), "alpha");
  Process& client_proc = alpha_->CreateProcess();
  auto counter = admin.CreateComponent(*server_, "Counter", "c",
                                       ComponentKind::kPersistent, {});
  auto chain = admin.CreateComponent(client_proc, "Chain", "driver",
                                     ComponentKind::kPersistent,
                                     MakeArgs(*counter));
  ASSERT_TRUE(admin.Call(*chain, "Bump", MakeArgs(7)).ok());
  int executions = ExecutionLog::Of("c.Add");
  EXPECT_EQ(executions, 1);

  // Hand-craft a duplicate of the driver's outgoing call (same ID).
  Context* driver_ctx = client_proc.FindContextOfComponent("driver");
  ASSERT_NE(driver_ctx, nullptr);
  CallMessage dup;
  dup.target_uri = *counter;
  dup.method = "Add";
  dup.args = MakeArgs(7);
  dup.has_call_id = true;
  dup.call_id = CallId{ClientKey{"alpha", client_proc.pid(), driver_ctx->id()},
                       driver_ctx->last_outgoing_seq()};
  dup.has_sender_info = true;
  dup.sender_kind = ComponentKind::kPersistent;

  Result<ReplyMessage> reply = sim_->RouteCall("alpha", dup);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->value.AsInt(), 7);  // the stored reply
  EXPECT_EQ(ExecutionLog::Of("c.Add"), executions);  // NOT re-executed
}

TEST_F(RuntimeBasicTest, StaleCallIdRejected) {
  SetUpSim(RuntimeOptions{});
  ExternalClient admin(sim_.get(), "alpha");
  Process& client_proc = alpha_->CreateProcess();
  auto counter = admin.CreateComponent(*server_, "Counter", "c",
                                       ComponentKind::kPersistent, {});
  auto chain = admin.CreateComponent(client_proc, "Chain", "driver",
                                     ComponentKind::kPersistent,
                                     MakeArgs(*counter));
  ASSERT_TRUE(admin.Call(*chain, "Bump", MakeArgs(1)).ok());
  ASSERT_TRUE(admin.Call(*chain, "Bump", MakeArgs(1)).ok());

  Context* driver_ctx = client_proc.FindContextOfComponent("driver");
  CallMessage stale;
  stale.target_uri = *counter;
  stale.method = "Add";
  stale.args = MakeArgs(1);
  stale.has_call_id = true;
  stale.call_id =
      CallId{ClientKey{"alpha", client_proc.pid(), driver_ctx->id()}, 1};
  stale.has_sender_info = true;
  stale.sender_kind = ComponentKind::kPersistent;

  Result<ReplyMessage> reply = sim_->RouteCall("alpha", stale);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(RuntimeBasicTest, SubordinateCallsAreLocalAndUnlogged) {
  SetUpSim(RuntimeOptions{});
  ExternalClient admin(sim_.get(), "alpha");
  auto parent = admin.CreateComponent(*server_, "ParentWithSub", "parent",
                                      ComponentKind::kPersistent, {});
  ASSERT_TRUE(parent.ok()) << parent.status().ToString();

  uint64_t appends_before = sim_->TotalAppends();
  uint64_t forces_before = sim_->TotalForces();
  auto r = admin.Call(*parent, "BumpSub", MakeArgs(5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsInt(), 5);
  // Only the external->parent leg is logged (message 1 + short message 2);
  // the parent->subordinate call adds nothing.
  EXPECT_EQ(sim_->TotalAppends() - appends_before, 2u);
  EXPECT_EQ(sim_->TotalForces() - forces_before, 2u);
}

TEST_F(RuntimeBasicTest, SubordinateRejectsRemoteCallers) {
  SetUpSim(RuntimeOptions{});
  ExternalClient admin(sim_.get(), "alpha");
  auto parent = admin.CreateComponent(*server_, "ParentWithSub", "parent",
                                      ComponentKind::kPersistent, {});
  ASSERT_TRUE(parent.ok());
  auto direct = admin.Call("phx://alpha/1/parent_sub", "Add", MakeArgs(1));
  EXPECT_EQ(direct.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RuntimeBasicTest, RemoteTypeLearnedFromFirstReply) {
  SetUpSim(RuntimeOptions{});
  ExternalClient admin(sim_.get(), "alpha");
  Process& client_proc = alpha_->CreateProcess();
  auto counter = admin.CreateComponent(*server_, "Counter", "c",
                                       ComponentKind::kPersistent, {});
  auto chain = admin.CreateComponent(client_proc, "Chain", "driver",
                                     ComponentKind::kPersistent,
                                     MakeArgs(*counter));
  EXPECT_EQ(client_proc.remote_types().Lookup(*counter), nullptr);
  ASSERT_TRUE(admin.Call(*chain, "Bump", MakeArgs(1)).ok());
  const RemoteTypeInfo* info = client_proc.remote_types().Lookup(*counter);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->kind, ComponentKind::kPersistent);
  EXPECT_EQ(info->type_name, "Counter");
}

TEST_F(RuntimeBasicTest, SimulatedTimeAdvancesWithWork) {
  SetUpSim(RuntimeOptions{});
  ExternalClient admin(sim_.get(), "alpha");
  auto counter = admin.CreateComponent(*server_, "Counter", "c",
                                       ComponentKind::kPersistent, {});
  double before = sim_->clock().NowMs();
  ASSERT_TRUE(admin.Call(*counter, "Add", MakeArgs(1)).ok());
  double elapsed = sim_->clock().NowMs() - before;
  // External -> persistent costs about two forced writes (~17 ms in the
  // paper's Table 4).
  EXPECT_GT(elapsed, 5.0);
  EXPECT_LT(elapsed, 40.0);
}

}  // namespace
}  // namespace phoenix
