// Sharded WAL (RuntimeOptions.wal_shards > 1): the deterministic
// context->shard router, per-shard durability horizons, crash semantics of
// independent shard buffers, the gsn-ordered recovery merge, and per-shard
// torn-tail salvage.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "recovery/checkpoint_manager.h"
#include "recovery/recovery_service.h"
#include "tests/test_components.h"
#include "wal/force_point.h"
#include "wal/log_manager.h"
#include "wal/log_reader.h"
#include "wal/merged_log_reader.h"
#include "wal/shard_router.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

IncomingCallRecord Incoming(uint64_t context_id, const std::string& method) {
  IncomingCallRecord rec;
  rec.context_id = context_id;
  rec.method = method;
  return rec;
}

TEST(ShardRouterTest, DeterministicAcrossInstancesAndSeeds) {
  ShardRouter a(4, 42);
  ShardRouter b(4, 42);
  bool spread = false;
  for (uint64_t ctx = 0; ctx < 256; ++ctx) {
    EXPECT_EQ(a.ShardForContext(ctx), b.ShardForContext(ctx));
    EXPECT_LT(a.ShardForContext(ctx), 4u);
    if (a.ShardForContext(ctx) != a.ShardForContext(0)) spread = true;
  }
  EXPECT_TRUE(spread);  // the hash actually distributes

  // A different seed is a different (still deterministic) layout.
  ShardRouter c(4, 43);
  bool differs = false;
  for (uint64_t ctx = 0; ctx < 256 && !differs; ++ctx) {
    differs = a.ShardForContext(ctx) != c.ShardForContext(ctx);
  }
  EXPECT_TRUE(differs);
}

TEST(ShardRouterTest, CheckpointRecordsPinToMetaShard) {
  ShardRouter router(8, 7);
  EXPECT_EQ(router.ShardForRecord(LogRecord(BeginCheckpointRecord{})), 0u);
  EXPECT_EQ(router.ShardForRecord(LogRecord(EndCheckpointRecord{0})), 0u);
  CheckpointContextEntryRecord entry;
  entry.context_id = 12345;  // carries a context id, still meta
  EXPECT_EQ(router.ShardForRecord(LogRecord(entry)), 0u);
  CheckpointLastCallRecord last_call;
  last_call.context_id = 12345;
  EXPECT_EQ(router.ShardForRecord(LogRecord(last_call)), 0u);
  EXPECT_EQ(router.ShardForRecord(LogRecord(CheckpointRemoteTypeRecord{})),
            0u);
  // Context-keyed records follow the context hash.
  EXPECT_EQ(router.ShardForRecord(LogRecord(Incoming(12345, "Go"))),
            router.ShardForContext(12345));
}

class WalShardTest : public ::testing::Test {
 protected:
  WalShardTest()
      : disk_(DiskParams{}, 1),
        manager_("m/p1.log", &storage_, &disk_, &clock_, &costs_,
                 /*shard_count=*/4, /*shard_seed=*/42) {}

  // Appends one record per context 1..n and returns the composite LSNs.
  std::vector<uint64_t> AppendAcrossShards(int n, const std::string& tag) {
    std::vector<uint64_t> lsns;
    for (int i = 1; i <= n; ++i) {
      lsns.push_back(manager_.Append(
          LogRecord(Incoming(static_cast<uint64_t>(i), tag))));
    }
    return lsns;
  }

  StableStorage storage_;
  DiskModel disk_;
  SimClock clock_;
  CostModel costs_;
  LogManager manager_;
};

TEST_F(WalShardTest, ShardLocalDurableNeverExceedsAppended) {
  AppendAcrossShards(16, "a");
  for (uint32_t s = 0; s < manager_.shard_count(); ++s) {
    EXPECT_LE(manager_.shard_stable_end(s), manager_.shard_next_lsn(s))
        << "shard " << s;
  }
  manager_.Force();
  for (uint32_t s = 0; s < manager_.shard_count(); ++s) {
    EXPECT_EQ(manager_.shard_stable_end(s), manager_.shard_next_lsn(s))
        << "shard " << s;
  }
}

TEST_F(WalShardTest, CrashDropsExactlyEachShardsUnforcedTail) {
  AppendAcrossShards(12, "forced");
  manager_.Force();
  std::vector<uint64_t> stable_before(manager_.shard_count());
  for (uint32_t s = 0; s < manager_.shard_count(); ++s) {
    stable_before[s] = manager_.shard_stable_end(s);
  }

  AppendAcrossShards(12, "unforced");
  manager_.DropBuffer();  // the crash: every shard buffer dies at once

  for (uint32_t s = 0; s < manager_.shard_count(); ++s) {
    // The stable horizon did not move, and the stable bytes hold only
    // pre-crash records.
    EXPECT_EQ(manager_.shard_stable_end(s), stable_before[s]) << "shard " << s;
    LogReader reader(manager_.ShardStableView(s),
                     manager_.shard_head_base(s));
    reader.EnableGsnPrefix();
    while (auto parsed = reader.Next()) {
      EXPECT_EQ(std::get<IncomingCallRecord>(parsed->record).method, "forced");
    }
    EXPECT_FALSE(reader.tail_torn());
  }
}

TEST_F(WalShardTest, MergedScanEqualsSingleLogAppendOrder) {
  // The same append sequence goes to a 1-shard twin; the gsn-ordered k-way
  // merge must reproduce the twin's (single-log) record order exactly.
  LogManager single("m/p2.log", &storage_, &disk_, &clock_, &costs_);
  for (int i = 0; i < 32; ++i) {
    LogRecord rec(Incoming(static_cast<uint64_t>(i % 7),
                           std::string("m") + std::to_string(i)));
    manager_.Append(rec);
    single.Append(rec);
  }
  manager_.Force();
  single.Force();

  std::vector<std::string> single_order;
  LogReader reader(single.StableLog(), 0);
  while (auto parsed = reader.Next()) {
    single_order.push_back(
        std::get<IncomingCallRecord>(parsed->record).method);
  }
  ASSERT_EQ(single_order.size(), 32u);

  MergedLogScan merged = ScanShardedLog(manager_);
  ASSERT_EQ(merged.records.size(), 32u);
  EXPECT_FALSE(merged.any_salvage());
  EXPECT_EQ(merged.inversions, 0u);
  uint64_t prev_order = 0;
  for (size_t i = 0; i < merged.records.size(); ++i) {
    const OrderedRecord& rec = merged.records[i];
    EXPECT_EQ(std::get<IncomingCallRecord>(rec.record).method,
              single_order[i]);
    EXPECT_GT(rec.order, prev_order);  // gsns strictly increase
    prev_order = rec.order;
    EXPECT_EQ(rec.shard, ShardOfLsn(rec.lsn));
  }
}

TEST_F(WalShardTest, TornTailOnOneShardLeavesOthersUntouched) {
  AppendAcrossShards(16, "x");
  manager_.Force();
  std::vector<uint64_t> end_before(manager_.shard_count());
  for (uint32_t s = 0; s < manager_.shard_count(); ++s) {
    end_before[s] = manager_.shard_stable_end(s);
    ASSERT_GT(end_before[s], manager_.shard_head_base(s)) << "shard " << s;
  }

  // Tear 3 bytes off shard 2's file, mid-frame.
  storage_.TruncateLog(manager_.shard_log_name(2),
                       LocalOfLsn(end_before[2]) - 3);

  MergedLogScan merged = ScanShardedLog(manager_);
  ASSERT_TRUE(merged.any_salvage());
  ASSERT_EQ(merged.damage.size(), 1u);
  EXPECT_EQ(merged.damage[0].shard, 2u);
  EXPECT_TRUE(merged.damage[0].tail_torn);

  // Every shard still contributes every record its (possibly torn) file
  // holds; only shard 2 lost its final frame.
  std::vector<int> per_shard(manager_.shard_count(), 0);
  for (const OrderedRecord& rec : merged.records) ++per_shard[rec.shard];
  int total = 0;
  for (uint32_t s = 0; s < manager_.shard_count(); ++s) {
    LogReader probe(manager_.ShardStableView(s), manager_.shard_head_base(s));
    probe.EnableSalvage();
    probe.EnableGsnPrefix();
    int full_count = 0;
    while (probe.Next()) ++full_count;
    EXPECT_EQ(per_shard[s], full_count) << "shard " << s;
    EXPECT_EQ(probe.tail_torn(), s == 2) << "shard " << s;
    total += per_shard[s];
  }
  EXPECT_EQ(total, 15);  // 16 appended, one frame torn
}

class ShardedRecoveryTest : public ::testing::Test {
 protected:
  void SetUpSim(uint32_t shards) {
    RuntimeOptions opts;
    opts.wal_shards = shards;
    sim_ = std::make_unique<Simulation>(opts);
    RegisterTestComponents(sim_->factories());
    alpha_ = &sim_->AddMachine("alpha");
    proc_ = &alpha_->CreateProcess();
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Process* proc_ = nullptr;
};

TEST_F(ShardedRecoveryTest, StateSurvivesCrashViaMergedReplay) {
  SetUpSim(4);
  ASSERT_TRUE(proc_->log().sharded());
  ExternalClient client(sim_.get(), "alpha");
  std::vector<std::string> uris;
  for (int c = 0; c < 4; ++c) {
    auto uri = client.CreateComponent(*proc_, "Counter",
                                      "c" + std::to_string(c),
                                      ComponentKind::kPersistent, {});
    ASSERT_TRUE(uri.ok());
    uris.push_back(*uri);
  }
  for (int i = 1; i <= 3; ++i) {
    for (const std::string& uri : uris) {
      ASSERT_TRUE(client.Call(uri, "Add", MakeArgs(i)).ok());
    }
  }

  proc_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  for (const std::string& uri : uris) {
    auto got = client.Call(uri, "Get", {});
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->AsInt(), 6);
  }
}

TEST_F(ShardedRecoveryTest, ShardedRecoveryMatchesSingleLogTwin) {
  // Same workload, same crash, under 1 and 4 shards: the recovered states
  // must agree.
  auto run = [](uint32_t shards) -> std::vector<int64_t> {
    RuntimeOptions opts;
    opts.wal_shards = shards;
    Simulation sim(opts);
    RegisterTestComponents(sim.factories());
    Machine& alpha = sim.AddMachine("alpha");
    Process& proc = alpha.CreateProcess();
    ExternalClient client(&sim, "alpha");
    std::vector<std::string> uris;
    for (int c = 0; c < 3; ++c) {
      auto uri = client.CreateComponent(proc, "Counter",
                                        "c" + std::to_string(c),
                                        ComponentKind::kPersistent, {});
      EXPECT_TRUE(uri.ok());
      uris.push_back(*uri);
    }
    for (int i = 1; i <= 4; ++i) {
      for (const std::string& uri : uris) {
        EXPECT_TRUE(client.Call(uri, "Add", MakeArgs(i)).ok());
      }
    }
    proc.Kill();
    EXPECT_TRUE(alpha.recovery_service().EnsureProcessAlive(1).ok());
    std::vector<int64_t> values;
    for (const std::string& uri : uris) {
      auto got = client.Call(uri, "Get", {});
      EXPECT_TRUE(got.ok());
      values.push_back(got.ok() ? got->AsInt() : -1);
    }
    return values;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST_F(ShardedRecoveryTest, PublishGateReadsMetaShardHorizonOnly) {
  // Regression: the checkpoint bracket lives on the meta shard (shard 0),
  // so MaybePublishCheckpoint's durability gate must read *that* shard's
  // horizon. A chain that forces only its own shards must not be able to
  // flip the well-known file while the end record still sits in shard 0's
  // buffer.
  SetUpSim(4);
  ExternalClient client(sim_.get(), "alpha");
  std::vector<std::string> uris;
  for (int c = 0; c < 3; ++c) {
    auto uri = client.CreateComponent(*proc_, "Counter",
                                      "c" + std::to_string(c),
                                      ComponentKind::kPersistent, {});
    ASSERT_TRUE(uri.ok());
    uris.push_back(*uri);
  }
  for (const std::string& uri : uris) {
    ASSERT_TRUE(client.Call(uri, "Add", MakeArgs(2)).ok());
  }

  // Bracket appended, unforced: it sits in shard 0's buffer.
  ASSERT_TRUE(proc_->checkpoints().TakeProcessCheckpoint().ok());
  ASSERT_TRUE(proc_->log().ReadWellKnownLsn().status().IsNotFound());

  // Forcing every non-meta shard advances their horizons but not shard
  // 0's; the gate must stay shut.
  for (uint32_t s = 1; s < proc_->log().shard_count(); ++s) {
    ASSERT_TRUE(
        proc_->log().WaitDurableShard(s, ForcePoint::kManual, false).ok());
  }
  proc_->checkpoints().MaybePublishCheckpoint();
  EXPECT_TRUE(proc_->log().ReadWellKnownLsn().status().IsNotFound());

  // The meta shard's own horizon opens it.
  ASSERT_TRUE(
      proc_->log().WaitDurableShard(0, ForcePoint::kManual, false).ok());
  proc_->checkpoints().MaybePublishCheckpoint();
  EXPECT_TRUE(proc_->log().ReadWellKnownLsn().ok());
  EXPECT_EQ(proc_->checkpoints().checkpoints_published(), 1u);
}

TEST_F(ShardedRecoveryTest, TornShardSalvagesWithoutTouchingOthers) {
  SetUpSim(4);
  ExternalClient client(sim_.get(), "alpha");
  std::vector<std::string> uris;
  for (int c = 0; c < 4; ++c) {
    auto uri = client.CreateComponent(*proc_, "Counter",
                                      "c" + std::to_string(c),
                                      ComponentKind::kPersistent, {});
    ASSERT_TRUE(uri.ok());
    uris.push_back(*uri);
  }
  for (int i = 1; i <= 3; ++i) {
    for (const std::string& uri : uris) {
      ASSERT_TRUE(client.Call(uri, "Add", MakeArgs(i)).ok());
    }
  }

  // Pick the shard holding c0's chain; capture every OTHER shard's stable
  // bytes, then tear c0's shard mid-frame after the crash.
  Context* ctx = proc_->FindContextOfComponent("c0");
  ASSERT_NE(ctx, nullptr);
  uint32_t torn = proc_->log().router().ShardForContext(ctx->id());
  std::vector<std::vector<uint8_t>> before;
  for (uint32_t s = 0; s < proc_->log().shard_count(); ++s) {
    before.push_back(sim_->storage().ReadLog(proc_->log().shard_log_name(s)));
  }
  proc_->Kill();
  std::string torn_name = proc_->log().shard_log_name(torn);
  sim_->storage().TruncateLog(torn_name,
                              sim_->storage().LogSize(torn_name) - 3);

  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());

  // The salvage amputated exactly one shard...
  EXPECT_GT(sim_->metrics()
                .GetCounter("phoenix.recovery.salvage.torn_tail_bytes",
                            obs::LabelSet{{"process", "alpha/1"}})
                .value(),
            0u);
  // ...and every untouched shard kept its exact pre-crash bytes as a prefix
  // (recovery replay may append after them, never rewrite).
  for (uint32_t s = 0; s < proc_->log().shard_count(); ++s) {
    if (s == torn) continue;
    const std::vector<uint8_t>& now =
        sim_->storage().ReadLog(proc_->log().shard_log_name(s));
    ASSERT_GE(now.size(), before[s].size()) << "shard " << s;
    EXPECT_TRUE(std::equal(before[s].begin(), before[s].end(), now.begin()))
        << "shard " << s;
  }

  // Counters on untouched shards kept every committed add.
  for (int c = 1; c < 4; ++c) {
    Context* other = proc_->FindContextOfComponent("c" + std::to_string(c));
    ASSERT_NE(other, nullptr);
    if (proc_->log().router().ShardForContext(other->id()) == torn) continue;
    auto got = client.Call(uris[c], "Get", {});
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->AsInt(), 6);
  }
}

}  // namespace
}  // namespace phoenix
