// Lossy-network injection: dropped call legs, dropped reply legs and
// duplicated deliveries must all be masked by retry + duplicate elimination
// for persistent callers, the targeted drop triggers must fire on the Nth
// message, the retry budget must bound a caller facing a dead link, and a
// faulted run must be reproducible from its seed.

#include <gtest/gtest.h>

#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

class NetworkFaultsTest : public ::testing::Test {
 protected:
  // Two machines: a persistent Chain driver on ma forwards Bump amounts to
  // a persistent Counter on mb, so the ma<->mb link carries
  // persistent-to-persistent traffic whose masking we can assert exactly.
  void SetUpSim(RuntimeOptions opts = {}, uint64_t seed = 1) {
    SimulationParams params;
    params.seed = seed;
    sim_ = std::make_unique<Simulation>(opts, params);
    RegisterTestComponents(sim_->factories());
    ma_ = &sim_->AddMachine("ma");
    mb_ = &sim_->AddMachine("mb");
    driver_proc_ = &ma_->CreateProcess();
    counter_proc_ = &mb_->CreateProcess();
    admin_ = std::make_unique<ExternalClient>(sim_.get(), "ma");
    counter_ = *admin_->CreateComponent(*counter_proc_, "Counter", "c",
                                        ComponentKind::kPersistent, {});
    driver_ = *admin_->CreateComponent(*driver_proc_, "Chain", "driver",
                                       ComponentKind::kPersistent,
                                       MakeArgs(counter_));
  }

  uint64_t Dedupes() {
    return sim_->metrics().CounterTotal("phoenix.intercept.dedupe_hits");
  }

  std::unique_ptr<Simulation> sim_;
  Machine* ma_ = nullptr;
  Machine* mb_ = nullptr;
  Process* driver_proc_ = nullptr;
  Process* counter_proc_ = nullptr;
  std::unique_ptr<ExternalClient> admin_;
  std::string counter_;
  std::string driver_;
};

TEST_F(NetworkFaultsTest, DroppedCallLegIsRetriedExactlyOnce) {
  SetUpSim();
  sim_->network().fault_plan().AddDropTrigger("ma", "mb", "Add",
                                              NetLeg::kCall);
  uint64_t dedupes_before = Dedupes();
  ASSERT_TRUE(admin_->Call(driver_, "Bump", MakeArgs(5)).ok());
  EXPECT_EQ(admin_->Call(counter_, "Get", {})->AsInt(), 5);
  EXPECT_EQ(sim_->network().messages_dropped(), 1u);
  // The call never reached the server, so the retry is a first delivery.
  EXPECT_EQ(Dedupes(), dedupes_before);
  EXPECT_GE(sim_->metrics().CounterTotal("phoenix.intercept.retries"), 1u);
}

TEST_F(NetworkFaultsTest, DroppedReplyLegIsMaskedByDuplicateElimination) {
  SetUpSim();
  sim_->network().fault_plan().AddDropTrigger("mb", "ma", "Add",
                                              NetLeg::kReply);
  uint64_t dedupes_before = Dedupes();
  ASSERT_TRUE(admin_->Call(driver_, "Bump", MakeArgs(4)).ok());
  // The server executed before the reply was lost; the retry carries the
  // same call id and must hit the last-call table, not re-execute.
  EXPECT_EQ(admin_->Call(counter_, "Get", {})->AsInt(), 4);
  EXPECT_EQ(sim_->network().messages_dropped(), 1u);
  EXPECT_GE(Dedupes(), dedupes_before + 1);
}

TEST_F(NetworkFaultsTest, DuplicatedCallIsEliminated) {
  SetUpSim();
  LinkFaults faults;
  faults.dup_p = 1.0;  // every ma->mb call delivered twice
  sim_->network().fault_plan().SetLinkFaults("ma", "mb", faults);
  uint64_t dedupes_before = Dedupes();
  ASSERT_TRUE(admin_->Call(driver_, "Bump", MakeArgs(3)).ok());
  ASSERT_TRUE(admin_->Call(driver_, "Bump", MakeArgs(2)).ok());
  EXPECT_EQ(admin_->Call(counter_, "Get", {})->AsInt(), 5);
  EXPECT_GE(sim_->network().messages_duplicated(), 2u);
  EXPECT_GE(Dedupes(), dedupes_before + 2);
}

TEST_F(NetworkFaultsTest, DropTriggerFiresOnNthMessageOnly) {
  SetUpSim();
  sim_->network().fault_plan().AddDropTrigger("ma", "mb", "Add",
                                              NetLeg::kCall, /*nth=*/2);
  ASSERT_TRUE(admin_->Call(driver_, "Bump", MakeArgs(1)).ok());  // passes
  EXPECT_EQ(sim_->network().messages_dropped(), 0u);
  ASSERT_TRUE(admin_->Call(driver_, "Bump", MakeArgs(1)).ok());  // dropped
  EXPECT_EQ(sim_->network().messages_dropped(), 1u);
  ASSERT_TRUE(admin_->Call(driver_, "Bump", MakeArgs(1)).ok());  // passes
  EXPECT_EQ(sim_->network().messages_dropped(), 1u);
  EXPECT_EQ(admin_->Call(counter_, "Get", {})->AsInt(), 3);
}

TEST_F(NetworkFaultsTest, RetryBudgetBoundsCallerOnDeadLink) {
  RuntimeOptions opts;
  opts.call_retry_budget_ms = 100.0;
  SetUpSim(opts);
  LinkFaults dead;
  dead.drop_p = 1.0;
  sim_->network().fault_plan().SetLinkFaults("ma", "mb", dead);
  double before = sim_->clock().NowMs();
  auto r = admin_->Call(counter_, "Add", MakeArgs(1));
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
  // The capped-exponential schedule spends at most the per-call budget.
  EXPECT_LE(sim_->clock().NowMs() - before, 500.0);
}

TEST_F(NetworkFaultsTest, FaultFreeLinksConsumeNoFaultRandomness) {
  // Faults on an unrelated link must not perturb traffic elsewhere: a run
  // with faults pinned to mb->mc matches a fault-free run byte for byte.
  auto run = [](bool with_faults) {
    SimulationParams params;
    params.seed = 9;
    Simulation sim({}, params);
    RegisterTestComponents(sim.factories());
    Machine& ma = sim.AddMachine("ma");
    sim.AddMachine("mb");
    Process& proc = ma.CreateProcess();
    if (with_faults) {
      LinkFaults faults;
      faults.drop_p = 0.9;
      faults.delay_jitter_ms = 3.0;
      sim.network().fault_plan().SetLinkFaults("mb", "mc", faults);
    }
    ExternalClient client(&sim, "ma");
    auto uri = client.CreateComponent(proc, "Counter", "c",
                                      ComponentKind::kPersistent, {});
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
    }
    return sim.clock().NowMs();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST_F(NetworkFaultsTest, SameSeedSameFaultedRun) {
  auto run = [](uint64_t seed) {
    SimulationParams params;
    params.seed = seed;
    Simulation sim({}, params);
    RegisterTestComponents(sim.factories());
    Machine& ma = sim.AddMachine("ma");
    Machine& mb = sim.AddMachine("mb");
    Process& driver_proc = ma.CreateProcess();
    Process& counter_proc = mb.CreateProcess();
    ExternalClient admin(&sim, "ma");
    auto counter = admin.CreateComponent(counter_proc, "Counter", "c",
                                         ComponentKind::kPersistent, {});
    auto driver = admin.CreateComponent(driver_proc, "Chain", "driver",
                                        ComponentKind::kPersistent,
                                        MakeArgs(*counter));
    LinkFaults faults;
    faults.drop_p = 0.3;
    faults.dup_p = 0.2;
    faults.delay_jitter_ms = 1.5;
    sim.network().fault_plan().SetLinkFaults("ma", "mb", faults);
    sim.network().fault_plan().SetLinkFaults("mb", "ma", faults);
    int64_t total = 0;
    for (int i = 0; i < 6; ++i) {
      auto r = admin.Call(*driver, "Bump", MakeArgs(i + 1));
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      total += i + 1;
    }
    EXPECT_EQ(admin.Call(*counter, "Get", {})->AsInt(), total);
    return std::tuple(sim.clock().NowMs(), sim.network().messages_dropped(),
                      sim.network().messages_duplicated(),
                      sim.network().messages_delayed());
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));  // and the seed actually matters
}

}  // namespace
}  // namespace phoenix
