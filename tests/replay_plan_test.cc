// Replay planner properties: deterministic plans across same-seed runs,
// DAG shape (acyclicity, forward-only edges), cross-context edges at local
// call boundaries with replies feeding the open unit, sequential fallback
// on salvaged logs, and parallel end state identical to sequential replay.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/strings.h"
#include "recovery/replay_plan.h"
#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

// The workload every test plans against: two Chain->Counter edges plus an
// independent counter, all separate contexts of one process, so the log
// carries cross-context call boundaries AND an unrelated chain.
struct Workload {
  std::string leaf;
  std::string mid;
  std::string solo;
};

Workload BuildWorkload(Simulation* sim, Process* proc) {
  ExternalClient client(sim, "alpha");
  auto leaf = client.CreateComponent(*proc, "Counter", "leaf",
                                     ComponentKind::kPersistent, {});
  auto mid = client.CreateComponent(*proc, "Chain", "mid",
                                    ComponentKind::kPersistent,
                                    MakeArgs(*leaf, "Add"));
  auto solo = client.CreateComponent(*proc, "Counter", "solo",
                                     ComponentKind::kPersistent, {});
  EXPECT_TRUE(leaf.ok() && mid.ok() && solo.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(client.Call(*mid, "Bump", MakeArgs(i + 1)).ok());
  }
  EXPECT_TRUE(client.Call(*solo, "Add", MakeArgs(5)).ok());
  EXPECT_TRUE(client.Call(*solo, "Add", MakeArgs(7)).ok());
  return Workload{*leaf, *mid, *solo};
}

// The same plan construction the recovery manager and phoenix_trace --plan
// perform, from a process's stable log.
ReplayPlan PlanFor(Process& proc) {
  LogView view = proc.log().StableView();
  ReplayPlanInputs inputs;
  inputs.machine = proc.machine_name();
  inputs.process_id = proc.pid();
  inputs.origins = DeriveReplayOrigins(view, proc.log().head_base());
  uint64_t scan_start = kInvalidLsn;
  for (const auto& [context_id, origin] : inputs.origins) {
    if (origin != kInvalidLsn) scan_start = std::min(scan_start, origin);
  }
  if (scan_start == kInvalidLsn) scan_start = proc.log().head_base();
  return BuildReplayPlan(view, scan_start, inputs);
}

// Structural fingerprint: everything that determines parallel execution.
std::string Describe(const ReplayPlan& plan) {
  std::string out = StrCat("fallback=", PlanFallbackName(plan.fallback),
                           " cross_edges=", plan.cross_edges, "\n");
  for (const ReplayChain& chain : plan.chains) {
    out += StrCat("ctx ", chain.context_id, ":");
    for (const PlannedUnit& unit : chain.units) {
      out += StrCat(" [lsn ", unit.replay.start_lsn,
                    unit.replay.is_creation ? " create" : "",
                    " replies=", unit.replay.feed.replies.size());
      for (const UnitRef& dep : unit.deps) {
        out += StrCat(" <-", dep.chain, ".", dep.index);
      }
      out += "]";
    }
    out += "\n";
  }
  return out;
}

class ReplayPlanTest : public ::testing::Test {
 protected:
  ReplayPlanTest() {
    SimulationParams params;
    params.seed = 42;
    sim_ = std::make_unique<Simulation>(RuntimeOptions{}, params);
    RegisterTestComponents(sim_->factories());
    alpha_ = &sim_->AddMachine("alpha");
    proc_ = &alpha_->CreateProcess();
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Process* proc_ = nullptr;
};

TEST_F(ReplayPlanTest, SameSeedRunsProduceIdenticalPlans) {
  BuildWorkload(sim_.get(), proc_);
  std::string first = Describe(PlanFor(*proc_));

  SimulationParams params;
  params.seed = 42;
  Simulation rerun(RuntimeOptions{}, params);
  RegisterTestComponents(rerun.factories());
  Machine& alpha2 = rerun.AddMachine("alpha");
  Process& proc2 = alpha2.CreateProcess();
  BuildWorkload(&rerun, &proc2);
  std::string second = Describe(PlanFor(proc2));

  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("cross_edges="), std::string::npos);
}

TEST_F(ReplayPlanTest, PlanIsAnAcyclicForwardDag) {
  BuildWorkload(sim_.get(), proc_);
  ReplayPlan plan = PlanFor(*proc_);
  ASSERT_TRUE(plan.parallel_eligible());
  ASSERT_GE(plan.chains.size(), 3u);  // leaf, mid, solo (+ activator edges)
  EXPECT_GT(plan.cross_edges, 0u);

  // Every edge points from a smaller start LSN to a larger one.
  for (const ReplayChain& chain : plan.chains) {
    for (size_t u = 0; u < chain.units.size(); ++u) {
      const PlannedUnit& unit = chain.units[u];
      if (u > 0) {
        EXPECT_GT(unit.replay.start_lsn,
                  chain.units[u - 1].replay.start_lsn);
      }
      for (const UnitRef& dep : unit.deps) {
        EXPECT_LT(plan.unit(dep).replay.start_lsn, unit.replay.start_lsn);
      }
    }
  }

  // Kahn's algorithm over chain order + cross edges consumes every unit.
  std::map<std::pair<uint32_t, uint32_t>, size_t> indegree;
  std::vector<UnitRef> ready;
  size_t total = 0;
  for (uint32_t c = 0; c < plan.chains.size(); ++c) {
    for (uint32_t u = 0; u < plan.chains[c].units.size(); ++u) {
      size_t in = plan.chains[c].units[u].deps.size() + (u > 0 ? 1 : 0);
      indegree[{c, u}] = in;
      if (in == 0) ready.push_back(UnitRef{c, u});
      ++total;
    }
  }
  size_t popped = 0;
  while (!ready.empty()) {
    UnitRef ref = ready.back();
    ready.pop_back();
    ++popped;
    auto release = [&](UnitRef next) {
      if (--indegree[{next.chain, next.index}] == 0) ready.push_back(next);
    };
    if (ref.index + 1 < plan.chains[ref.chain].units.size()) {
      release(UnitRef{ref.chain, ref.index + 1});
    }
    for (const UnitRef& dependent : plan.unit(ref).dependents) {
      release(dependent);
    }
  }
  EXPECT_EQ(popped, total);
}

TEST_F(ReplayPlanTest, CrossContextCallsProduceEdgesAndReplyFeeds) {
  BuildWorkload(sim_.get(), proc_);
  ReplayPlan plan = PlanFor(*proc_);
  ASSERT_TRUE(plan.parallel_eligible());

  uint64_t mid_ctx = proc_->FindContextOfComponent("mid")->id();
  uint64_t leaf_ctx = proc_->FindContextOfComponent("leaf")->id();
  uint64_t solo_ctx = proc_->FindContextOfComponent("solo")->id();
  const ReplayChain* mid_chain = nullptr;
  const ReplayChain* leaf_chain = nullptr;
  const ReplayChain* solo_chain = nullptr;
  std::map<uint64_t, uint32_t> chain_of;
  for (uint32_t c = 0; c < plan.chains.size(); ++c) {
    chain_of[plan.chains[c].context_id] = c;
    if (plan.chains[c].context_id == mid_ctx) mid_chain = &plan.chains[c];
    if (plan.chains[c].context_id == leaf_ctx) leaf_chain = &plan.chains[c];
    if (plan.chains[c].context_id == solo_ctx) solo_chain = &plan.chains[c];
  }
  ASSERT_NE(mid_chain, nullptr);
  ASSERT_NE(leaf_chain, nullptr);
  ASSERT_NE(solo_chain, nullptr);

  // Each of leaf's three Add units depends on the mid unit whose Bump issued
  // the call — an edge at every cross-context call boundary.
  size_t leaf_deps_on_mid = 0;
  for (const PlannedUnit& unit : leaf_chain->units) {
    for (const UnitRef& dep : unit.deps) {
      if (plan.chains[dep.chain].context_id == mid_ctx) {
        ++leaf_deps_on_mid;
        EXPECT_FALSE(plan.unit(dep).replay.is_creation);
      }
    }
  }
  EXPECT_EQ(leaf_deps_on_mid, 3u);

  // The reply boundary: each Bump unit buffered exactly the one downstream
  // reply its execution consumed, keyed by outgoing seq.
  for (const PlannedUnit& unit : mid_chain->units) {
    if (unit.replay.is_creation) continue;
    EXPECT_EQ(unit.replay.feed.replies.size(), 1u);
  }

  // The independent counter never waits on another chain.
  for (const PlannedUnit& unit : solo_chain->units) {
    EXPECT_TRUE(unit.deps.empty());
  }
}

TEST_F(ReplayPlanTest, SalvagedLogFallsBackToSequential) {
  BuildWorkload(sim_.get(), proc_);
  LogView stable = proc_->log().StableView();
  ASSERT_GT(stable.bytes->size(), 128u);

  // Smash a mid-log region: the planner must refuse, not guess.
  std::vector<uint8_t> damaged = *stable.bytes;
  size_t middle = damaged.size() / 2;
  for (size_t i = 0; i < 64 && middle + i < damaged.size(); ++i) {
    damaged[middle + i] = 0xFF;
  }
  LogView corrupt{&damaged, stable.base};
  ReplayPlanInputs inputs;
  inputs.machine = proc_->machine_name();
  inputs.process_id = proc_->pid();
  inputs.origins = DeriveReplayOrigins(corrupt, proc_->log().head_base());
  ReplayPlan plan =
      BuildReplayPlan(corrupt, proc_->log().head_base(), inputs);
  EXPECT_EQ(plan.fallback, PlanFallback::kSalvagedLog);
  EXPECT_FALSE(plan.parallel_eligible());
}

TEST_F(ReplayPlanTest, TooFewChainsFallsBackToSequential) {
  // An empty log has nothing to overlap.
  ReplayPlan empty = PlanFor(*proc_);
  EXPECT_EQ(empty.fallback, PlanFallback::kTooFewChains);

  // One component is already two chains: the activator's Create calls form
  // a chain of their own (and its edge orders creation before first call).
  ExternalClient client(sim_.get(), "alpha");
  auto only = client.CreateComponent(*proc_, "Counter", "only",
                                     ComponentKind::kPersistent, {});
  ASSERT_TRUE(only.ok());
  ASSERT_TRUE(client.Call(*only, "Add", MakeArgs(1)).ok());
  ReplayPlan plan = PlanFor(*proc_);
  EXPECT_EQ(plan.fallback, PlanFallback::kNone);
  EXPECT_EQ(plan.chains.size(), 2u);
}

// End-to-end: recovering the same crashed workload with the parallel engine
// leaves exactly the state sequential replay leaves.
int64_t GetCount(Simulation* sim, const std::string& uri) {
  ExternalClient client(sim, "alpha");
  auto value = client.Call(uri, "Get", {});
  EXPECT_TRUE(value.ok());
  return value.ok() ? value->AsInt() : -1;
}

std::vector<int64_t> RunCrashRecover(bool parallel) {
  RuntimeOptions options;
  options.parallel_replay = parallel;
  options.parallel_replay_sessions = 4;
  SimulationParams params;
  params.seed = 42;
  Simulation sim(options, params);
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  Process& proc = alpha.CreateProcess();
  Workload w = BuildWorkload(&sim, &proc);

  proc.Kill();
  EXPECT_TRUE(alpha.recovery_service().EnsureProcessAlive(proc.pid()).ok());

  std::vector<int64_t> state{GetCount(&sim, w.leaf), GetCount(&sim, w.mid),
                             GetCount(&sim, w.solo)};
  // The parallel run must actually have taken the parallel path.
  uint64_t chains =
      sim.metrics().CounterTotal("phoenix.recovery.replay.chains");
  if (parallel) {
    EXPECT_GT(chains, 0u);
  } else {
    EXPECT_EQ(chains, 0u);
  }
  return state;
}

TEST(ParallelReplayTest, EndStateMatchesSequentialReplay) {
  std::vector<int64_t> sequential = RunCrashRecover(/*parallel=*/false);
  std::vector<int64_t> parallel = RunCrashRecover(/*parallel=*/true);
  EXPECT_EQ(sequential, parallel);
  // Sanity: the workload above adds 1+2+3 through mid into leaf, 5+7 solo.
  EXPECT_EQ(sequential, (std::vector<int64_t>{6, 6, 12}));
}

}  // namespace
}  // namespace phoenix
