// Replay planner properties: deterministic plans across same-seed runs,
// DAG shape (acyclicity, forward-only edges), cross-context edges at local
// call boundaries with replies feeding the open unit, salvage-aware
// eligibility (only chains whose record extents intersect a salvage gap are
// demoted; a torn tail demotes nothing), and parallel end state identical
// to sequential replay — including on salvaged logs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/strings.h"
#include "recovery/replay_plan.h"
#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

// The workload every test plans against: two Chain->Counter edges plus an
// independent counter, all separate contexts of one process, so the log
// carries cross-context call boundaries AND an unrelated chain.
struct Workload {
  std::string leaf;
  std::string mid;
  std::string solo;
};

Workload BuildWorkload(Simulation* sim, Process* proc) {
  ExternalClient client(sim, "alpha");
  auto leaf = client.CreateComponent(*proc, "Counter", "leaf",
                                     ComponentKind::kPersistent, {});
  auto mid = client.CreateComponent(*proc, "Chain", "mid",
                                    ComponentKind::kPersistent,
                                    MakeArgs(*leaf, "Add"));
  auto solo = client.CreateComponent(*proc, "Counter", "solo",
                                     ComponentKind::kPersistent, {});
  EXPECT_TRUE(leaf.ok() && mid.ok() && solo.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(client.Call(*mid, "Bump", MakeArgs(i + 1)).ok());
  }
  EXPECT_TRUE(client.Call(*solo, "Add", MakeArgs(5)).ok());
  EXPECT_TRUE(client.Call(*solo, "Add", MakeArgs(7)).ok());
  return Workload{*leaf, *mid, *solo};
}

// The same plan construction the recovery manager and phoenix_trace --plan
// perform, from a process's stable log.
ReplayPlan PlanFor(Process& proc) {
  LogView view = proc.log().StableView();
  ReplayPlanInputs inputs;
  inputs.machine = proc.machine_name();
  inputs.process_id = proc.pid();
  inputs.origins = DeriveReplayOrigins(view, proc.log().head_base());
  uint64_t scan_start = kInvalidLsn;
  for (const auto& [context_id, origin] : inputs.origins) {
    if (origin != kInvalidLsn) scan_start = std::min(scan_start, origin);
  }
  if (scan_start == kInvalidLsn) scan_start = proc.log().head_base();
  return BuildReplayPlan(view, scan_start, inputs);
}

// Structural fingerprint: everything that determines parallel execution.
std::string Describe(const ReplayPlan& plan) {
  std::string out = StrCat("fallback=", PlanFallbackName(plan.fallback),
                           " cross_edges=", plan.cross_edges, "\n");
  for (const ReplayChain& chain : plan.chains) {
    out += StrCat("ctx ", chain.context_id, ":");
    for (const PlannedUnit& unit : chain.units) {
      out += StrCat(" [lsn ", unit.replay.start_lsn,
                    unit.replay.is_creation ? " create" : "",
                    " replies=", unit.replay.feed.replies.size());
      for (const UnitRef& dep : unit.deps) {
        out += StrCat(" <-", dep.chain, ".", dep.index);
      }
      out += "]";
    }
    out += "\n";
  }
  return out;
}

class ReplayPlanTest : public ::testing::Test {
 protected:
  ReplayPlanTest() {
    SimulationParams params;
    params.seed = 42;
    sim_ = std::make_unique<Simulation>(RuntimeOptions{}, params);
    RegisterTestComponents(sim_->factories());
    alpha_ = &sim_->AddMachine("alpha");
    proc_ = &alpha_->CreateProcess();
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Process* proc_ = nullptr;
};

TEST_F(ReplayPlanTest, SameSeedRunsProduceIdenticalPlans) {
  BuildWorkload(sim_.get(), proc_);
  std::string first = Describe(PlanFor(*proc_));

  SimulationParams params;
  params.seed = 42;
  Simulation rerun(RuntimeOptions{}, params);
  RegisterTestComponents(rerun.factories());
  Machine& alpha2 = rerun.AddMachine("alpha");
  Process& proc2 = alpha2.CreateProcess();
  BuildWorkload(&rerun, &proc2);
  std::string second = Describe(PlanFor(proc2));

  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("cross_edges="), std::string::npos);
}

TEST_F(ReplayPlanTest, PlanIsAnAcyclicForwardDag) {
  BuildWorkload(sim_.get(), proc_);
  ReplayPlan plan = PlanFor(*proc_);
  ASSERT_TRUE(plan.parallel_eligible());
  ASSERT_GE(plan.chains.size(), 3u);  // leaf, mid, solo (+ activator edges)
  EXPECT_GT(plan.cross_edges, 0u);

  // Every edge points from a smaller start LSN to a larger one.
  for (const ReplayChain& chain : plan.chains) {
    for (size_t u = 0; u < chain.units.size(); ++u) {
      const PlannedUnit& unit = chain.units[u];
      if (u > 0) {
        EXPECT_GT(unit.replay.start_lsn,
                  chain.units[u - 1].replay.start_lsn);
      }
      for (const UnitRef& dep : unit.deps) {
        EXPECT_LT(plan.unit(dep).replay.start_lsn, unit.replay.start_lsn);
      }
    }
  }

  // Kahn's algorithm over chain order + cross edges consumes every unit.
  std::map<std::pair<uint32_t, uint32_t>, size_t> indegree;
  std::vector<UnitRef> ready;
  size_t total = 0;
  for (uint32_t c = 0; c < plan.chains.size(); ++c) {
    for (uint32_t u = 0; u < plan.chains[c].units.size(); ++u) {
      size_t in = plan.chains[c].units[u].deps.size() + (u > 0 ? 1 : 0);
      indegree[{c, u}] = in;
      if (in == 0) ready.push_back(UnitRef{c, u});
      ++total;
    }
  }
  size_t popped = 0;
  while (!ready.empty()) {
    UnitRef ref = ready.back();
    ready.pop_back();
    ++popped;
    auto release = [&](UnitRef next) {
      if (--indegree[{next.chain, next.index}] == 0) ready.push_back(next);
    };
    if (ref.index + 1 < plan.chains[ref.chain].units.size()) {
      release(UnitRef{ref.chain, ref.index + 1});
    }
    for (const UnitRef& dependent : plan.unit(ref).dependents) {
      release(dependent);
    }
  }
  EXPECT_EQ(popped, total);
}

TEST_F(ReplayPlanTest, CrossContextCallsProduceEdgesAndReplyFeeds) {
  BuildWorkload(sim_.get(), proc_);
  ReplayPlan plan = PlanFor(*proc_);
  ASSERT_TRUE(plan.parallel_eligible());

  uint64_t mid_ctx = proc_->FindContextOfComponent("mid")->id();
  uint64_t leaf_ctx = proc_->FindContextOfComponent("leaf")->id();
  uint64_t solo_ctx = proc_->FindContextOfComponent("solo")->id();
  const ReplayChain* mid_chain = nullptr;
  const ReplayChain* leaf_chain = nullptr;
  const ReplayChain* solo_chain = nullptr;
  std::map<uint64_t, uint32_t> chain_of;
  for (uint32_t c = 0; c < plan.chains.size(); ++c) {
    chain_of[plan.chains[c].context_id] = c;
    if (plan.chains[c].context_id == mid_ctx) mid_chain = &plan.chains[c];
    if (plan.chains[c].context_id == leaf_ctx) leaf_chain = &plan.chains[c];
    if (plan.chains[c].context_id == solo_ctx) solo_chain = &plan.chains[c];
  }
  ASSERT_NE(mid_chain, nullptr);
  ASSERT_NE(leaf_chain, nullptr);
  ASSERT_NE(solo_chain, nullptr);

  // Each of leaf's three Add units depends on the mid unit whose Bump issued
  // the call — an edge at every cross-context call boundary.
  size_t leaf_deps_on_mid = 0;
  for (const PlannedUnit& unit : leaf_chain->units) {
    for (const UnitRef& dep : unit.deps) {
      if (plan.chains[dep.chain].context_id == mid_ctx) {
        ++leaf_deps_on_mid;
        EXPECT_FALSE(plan.unit(dep).replay.is_creation);
      }
    }
  }
  EXPECT_EQ(leaf_deps_on_mid, 3u);

  // The reply boundary: each Bump unit buffered exactly the one downstream
  // reply its execution consumed, keyed by outgoing seq.
  for (const PlannedUnit& unit : mid_chain->units) {
    if (unit.replay.is_creation) continue;
    EXPECT_EQ(unit.replay.feed.replies.size(), 1u);
  }

  // The independent counter never waits on another chain.
  for (const PlannedUnit& unit : solo_chain->units) {
    EXPECT_TRUE(unit.deps.empty());
  }
}

ReplayPlan PlanForDamaged(Process& proc, const std::vector<uint8_t>& bytes,
                          uint64_t base) {
  LogView view{&bytes, base};
  ReplayPlanInputs inputs;
  inputs.machine = proc.machine_name();
  inputs.process_id = proc.pid();
  inputs.origins = DeriveReplayOrigins(view, proc.log().head_base());
  return BuildReplayPlan(view, proc.log().head_base(), inputs);
}

TEST_F(ReplayPlanTest, SalvagedInteriorGapDemotesOnlyTouchedChains) {
  BuildWorkload(sim_.get(), proc_);
  LogView stable = proc_->log().StableView();
  ASSERT_GT(stable.bytes->size(), 128u);

  // Smash a mid-log region. The planner must not guess inside the gap, but
  // chains whose record extents never cross it are still provably safe to
  // replay in parallel — only the touched chains serialize.
  std::vector<uint8_t> damaged = *stable.bytes;
  size_t middle = damaged.size() / 2;
  for (size_t i = 0; i < 64 && middle + i < damaged.size(); ++i) {
    damaged[middle + i] = 0xFF;
  }
  ReplayPlan plan = PlanForDamaged(*proc_, damaged, stable.base);
  EXPECT_TRUE(plan.salvaged);
  EXPECT_GE(plan.skipped_ranges, 1u);
  EXPECT_EQ(plan.fallback, PlanFallback::kNone);
  EXPECT_TRUE(plan.parallel_eligible());
  EXPECT_GE(plan.eligible_chains(), 2u);
  // The demotion count is exactly the chains the eligibility bit excludes.
  size_t ineligible = 0;
  for (const ReplayChain& chain : plan.chains) {
    if (!chain.parallel_eligible) ++ineligible;
  }
  EXPECT_EQ(plan.demoted_chains, ineligible);
}

TEST_F(ReplayPlanTest, SalvagedTornTailDemotesNothing) {
  BuildWorkload(sim_.get(), proc_);
  LogView stable = proc_->log().StableView();
  ASSERT_GT(stable.bytes->size(), 16u);

  // A torn tail is a gap past the last readable record: it intersects no
  // surviving unit's extent, so every chain stays parallel-eligible. The
  // ROADMAP case — a torn tail must no longer serialize the whole replay.
  std::vector<uint8_t> torn(*stable.bytes);
  torn.resize(torn.size() - 3);
  ReplayPlan plan = PlanForDamaged(*proc_, torn, stable.base);
  EXPECT_TRUE(plan.salvaged);
  EXPECT_EQ(plan.demoted_chains, 0u);
  EXPECT_EQ(plan.serialization_edges, 0u);
  EXPECT_EQ(plan.fallback, PlanFallback::kNone);
  EXPECT_TRUE(plan.parallel_eligible());
}

// First record LSN strictly inside (start, end) — some *other* record
// interleaved within a unit's extent, e.g. the callee's incoming record
// between a Bump's incoming record and its reply.
uint64_t FindRecordBetween(Process& proc, uint64_t start, uint64_t end) {
  LogView view = proc.log().StableView();
  LogReader reader(view, proc.log().head_base());
  while (auto parsed = reader.Next()) {
    if (parsed->lsn > start && parsed->lsn < end) return parsed->lsn;
  }
  return kInvalidLsn;
}

// First LSN strictly inside any reply-bearing unit's extent in the plan.
uint64_t FindAnyInteriorLsn(Process& proc, const ReplayPlan& plan) {
  for (const ReplayChain& chain : plan.chains) {
    for (const PlannedUnit& unit : chain.units) {
      if (unit.extent_end_lsn <= unit.replay.start_lsn) continue;
      uint64_t lsn = FindRecordBetween(proc, unit.replay.start_lsn,
                                       unit.extent_end_lsn);
      if (lsn != kInvalidLsn) return lsn;
    }
  }
  return kInvalidLsn;
}

TEST_F(ReplayPlanTest, DecimatedLogFallsBackToSequential) {
  BuildWorkload(sim_.get(), proc_);
  LogView stable = proc_->log().StableView();
  ASSERT_GT(stable.bytes->size(), 64u);

  // Smash everything but the first few records: fewer than two chains keep
  // eligible units, so nothing is left worth overlapping and the salvaged
  // plan falls back to sequential replay.
  std::vector<uint8_t> damaged = *stable.bytes;
  for (size_t i = 32; i < damaged.size(); ++i) {
    damaged[i] = 0xFF;
  }
  ReplayPlan plan = PlanForDamaged(*proc_, damaged, stable.base);
  EXPECT_TRUE(plan.salvaged);
  EXPECT_EQ(plan.fallback, PlanFallback::kSalvagedLog);
  EXPECT_FALSE(plan.parallel_eligible());
  EXPECT_LT(plan.eligible_chains(), 2u);
}

TEST_F(ReplayPlanTest, GapInsideUnitExtentDemotesTheChain) {
  BuildWorkload(sim_.get(), proc_);
  LogView stable = proc_->log().StableView();

  // Corrupt a record interleaved inside a reply-bearing unit's extent (the
  // callee's record between a Bump's incoming record and its buffered
  // reply): exactly the owning chain must demote, and with leaf/solo still
  // eligible the plan stays parallel with serialization edges over the
  // demoted units.
  ReplayPlan intact = PlanFor(*proc_);
  uint64_t interior = FindAnyInteriorLsn(*proc_, intact);
  ASSERT_NE(interior, kInvalidLsn);
  std::vector<uint8_t> damaged = *stable.bytes;
  // +8 lands in the payload, past the length/CRC header.
  damaged[interior - stable.base + 8] ^= 0xFF;
  ReplayPlan plan = PlanForDamaged(*proc_, damaged, stable.base);
  EXPECT_TRUE(plan.salvaged);
  EXPECT_GE(plan.demoted_chains, 1u);
  EXPECT_EQ(plan.fallback, PlanFallback::kNone);
  EXPECT_TRUE(plan.parallel_eligible());
  EXPECT_GE(plan.eligible_chains(), 2u);
}

TEST_F(ReplayPlanTest, TooFewChainsFallsBackToSequential) {
  // An empty log has nothing to overlap.
  ReplayPlan empty = PlanFor(*proc_);
  EXPECT_EQ(empty.fallback, PlanFallback::kTooFewChains);

  // One component is already two chains: the activator's Create calls form
  // a chain of their own (and its edge orders creation before first call).
  ExternalClient client(sim_.get(), "alpha");
  auto only = client.CreateComponent(*proc_, "Counter", "only",
                                     ComponentKind::kPersistent, {});
  ASSERT_TRUE(only.ok());
  ASSERT_TRUE(client.Call(*only, "Add", MakeArgs(1)).ok());
  ReplayPlan plan = PlanFor(*proc_);
  EXPECT_EQ(plan.fallback, PlanFallback::kNone);
  EXPECT_EQ(plan.chains.size(), 2u);
}

// End-to-end: recovering the same crashed workload with the parallel engine
// leaves exactly the state sequential replay leaves.
int64_t GetCount(Simulation* sim, const std::string& uri) {
  ExternalClient client(sim, "alpha");
  auto value = client.Call(uri, "Get", {});
  EXPECT_TRUE(value.ok());
  return value.ok() ? value->AsInt() : -1;
}

std::vector<int64_t> RunCrashRecover(bool parallel,
                                     bool corrupt_interior = false) {
  RuntimeOptions options;
  options.parallel_replay = parallel;
  options.parallel_replay_sessions = 4;
  SimulationParams params;
  params.seed = 42;
  Simulation sim(options, params);
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  Process& proc = alpha.CreateProcess();
  Workload w = BuildWorkload(&sim, &proc);

  proc.Kill();
  if (corrupt_interior) {
    // Bit-rot a record interleaved inside one of mid's Bump extents. The
    // gap demotes mid's chain while leaf/solo stay parallel-eligible; both
    // engines are identically blind to the lost record. (A torn tail would
    // be amputated by salvage assessment before planning ever sees it.)
    uint64_t interior = FindAnyInteriorLsn(proc, PlanFor(proc));
    EXPECT_NE(interior, kInvalidLsn);
    sim.storage().CorruptLog(proc.log_name(), interior + 8,
                             /*flip_count=*/2);
  }
  EXPECT_TRUE(alpha.recovery_service().EnsureProcessAlive(proc.pid()).ok());

  std::vector<int64_t> state{GetCount(&sim, w.leaf), GetCount(&sim, w.mid),
                             GetCount(&sim, w.solo)};
  // The parallel run must actually have taken the parallel path.
  uint64_t chains =
      sim.metrics().CounterTotal("phoenix.recovery.replay.chains");
  if (parallel) {
    EXPECT_GT(chains, 0u);
  } else {
    EXPECT_EQ(chains, 0u);
  }
  EXPECT_EQ(sim.metrics().CounterTotal(
                "phoenix.recovery.replay.salvaged_parallel"),
            parallel && corrupt_interior ? 1u : 0u);
  if (parallel && corrupt_interior) {
    EXPECT_GE(sim.metrics().CounterTotal(
                  "phoenix.recovery.replay.chains_demoted"),
              1u);
  }
  return state;
}

TEST(ParallelReplayTest, EndStateMatchesSequentialReplay) {
  std::vector<int64_t> sequential = RunCrashRecover(/*parallel=*/false);
  std::vector<int64_t> parallel = RunCrashRecover(/*parallel=*/true);
  EXPECT_EQ(sequential, parallel);
  // Sanity: the workload above adds 1+2+3 through mid into leaf, 5+7 solo.
  EXPECT_EQ(sequential, (std::vector<int64_t>{6, 6, 12}));
}

// The salvage-parallel equivalence argument end to end: with an interior
// gap both engines lose the same record, so the parallel path — which now
// stays engaged on salvaged logs, serializing only the demoted chain —
// must land on the sequential state.
TEST(ParallelReplayTest, SalvagedEndStateMatchesSequentialReplay) {
  std::vector<int64_t> sequential =
      RunCrashRecover(/*parallel=*/false, /*corrupt_interior=*/true);
  std::vector<int64_t> parallel =
      RunCrashRecover(/*parallel=*/true, /*corrupt_interior=*/true);
  EXPECT_EQ(sequential, parallel);
}

}  // namespace
}  // namespace phoenix
