// Property-based sweeps: seeded random workloads with seeded random crash
// schedules must end in exactly the state of a failure-free run of the same
// workload — across logging modes and checkpoint cadences.

#include <gtest/gtest.h>

#include "common/random.h"
#include "tests/test_components.h"
#include "wal/log_manager.h"
#include "wal/log_reader.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

struct PropertyConfig {
  uint64_t seed;
  LoggingMode mode;
  uint32_t save_state_every;
};

std::string ConfigName(const ::testing::TestParamInfo<PropertyConfig>& info) {
  const PropertyConfig& c = info.param;
  return std::string(c.mode == LoggingMode::kBaseline ? "baseline"
                                                      : "optimized") +
         "_seed" + std::to_string(c.seed) + "_ckpt" +
         std::to_string(c.save_state_every);
}

class RandomCrashPropertyTest
    : public ::testing::TestWithParam<PropertyConfig> {
 protected:
  struct FinalState {
    int64_t driver = 0;
    int64_t mid = 0;
    int64_t leaf = 0;
    int64_t sum_of_replies = 0;
  };

  FinalState Run(bool inject) {
    const PropertyConfig& cfg = GetParam();
    RuntimeOptions opts;
    opts.logging_mode = cfg.mode;
    opts.save_context_state_every = cfg.save_state_every;
    opts.process_checkpoint_every = cfg.save_state_every * 3;
    Simulation sim(opts);
    RegisterTestComponents(sim.factories());
    Machine& alpha = sim.AddMachine("alpha");
    Machine& beta = sim.AddMachine("beta");
    Process& driver_proc = alpha.CreateProcess();  // never crashed
    Process& mid_proc = alpha.CreateProcess();
    Process& leaf_proc = beta.CreateProcess();

    ExternalClient admin(&sim, "alpha");
    auto leaf = admin.CreateComponent(leaf_proc, "Counter", "leaf",
                                      ComponentKind::kPersistent, {});
    auto mid = admin.CreateComponent(mid_proc, "Chain", "mid",
                                     ComponentKind::kPersistent,
                                     MakeArgs(*leaf));
    auto driver = admin.CreateComponent(driver_proc, "Chain", "driver",
                                        ComponentKind::kPersistent,
                                        MakeArgs(*mid, "Bump"));
    EXPECT_TRUE(driver.ok());

    if (inject) {
      // Random crash schedule over the crashable processes and all hook
      // points, derived from the seed.
      Random schedule(cfg.seed * 977);
      int crashes = 1 + static_cast<int>(schedule.Uniform(4));
      for (int i = 0; i < crashes; ++i) {
        bool on_mid = schedule.Bernoulli(0.5);
        auto point = static_cast<FailurePoint>(schedule.Uniform(6));
        uint64_t hit = 1 + schedule.Uniform(20);
        sim.injector().AddTrigger(on_mid ? "alpha" : "beta",
                                  on_mid ? mid_proc.pid() : leaf_proc.pid(),
                                  point, hit);
      }
    }

    // Seeded workload, identical in both runs.
    Random workload(cfg.seed);
    FinalState out;
    for (int i = 0; i < 30; ++i) {
      int64_t n = workload.UniformRange(-5, 9);
      auto r = admin.Call(*driver, "Bump", MakeArgs(n));
      EXPECT_TRUE(r.ok()) << "op " << i << ": " << r.status().ToString();
      if (r.ok()) out.sum_of_replies += r->AsInt();
    }
    out.driver = admin.Call(*driver, "Get", {})->AsInt();
    out.mid = admin.Call(*mid, "Get", {})->AsInt();
    out.leaf = admin.Call(*leaf, "Get", {})->AsInt();
    return out;
  }
};

TEST_P(RandomCrashPropertyTest, CrashScheduleDoesNotChangeOutcome) {
  FinalState clean = Run(/*inject=*/false);
  EXPECT_EQ(clean.driver, clean.mid);
  EXPECT_EQ(clean.mid, clean.leaf);

  FinalState crashed = Run(/*inject=*/true);
  EXPECT_EQ(crashed.driver, clean.driver);
  EXPECT_EQ(crashed.mid, clean.mid);
  EXPECT_EQ(crashed.leaf, clean.leaf);
  // The replies the program observed are identical too: failures are
  // masked, not just repaired afterwards.
  EXPECT_EQ(crashed.sum_of_replies, clean.sum_of_replies);
}

std::vector<PropertyConfig> PropertyConfigs() {
  std::vector<PropertyConfig> configs;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    configs.push_back({seed, LoggingMode::kOptimized, 0});
    configs.push_back({seed, LoggingMode::kOptimized, 4});
    if (seed <= 5) {
      configs.push_back({seed, LoggingMode::kBaseline, 0});
      configs.push_back({seed, LoggingMode::kBaseline, 6});
    }
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCrashPropertyTest,
                         ::testing::ValuesIn(PropertyConfigs()), ConfigName);

// Log-level property: whatever the workload, LSNs handed out by the log
// manager strictly increase, and the stable prefix only ever grows.
TEST(LogPropertyTest, LsnsMonotoneAndStablePrefixGrows) {
  Random rng(4242);
  StableStorage storage;
  DiskModel disk(DiskParams{}, 1);
  SimClock clock;
  CostModel costs;
  LogManager log("m/p.log", &storage, &disk, &clock, &costs);

  uint64_t last_lsn = 0;
  uint64_t last_stable = 0;
  bool first = true;
  for (int i = 0; i < 500; ++i) {
    if (rng.Bernoulli(0.7)) {
      IncomingCallRecord rec;
      rec.context_id = rng.Uniform(5);
      rec.method = "m" + std::to_string(rng.Uniform(3));
      for (uint64_t k = 0; k < rng.Uniform(4); ++k) {
        rec.args.emplace_back(static_cast<int64_t>(rng.Next() % 1000));
      }
      uint64_t lsn = log.Append(rec);
      EXPECT_TRUE(first || lsn > last_lsn);
      last_lsn = lsn;
      first = false;
    } else {
      log.Force();
      uint64_t stable = log.StableLog().size();
      EXPECT_GE(stable, last_stable);
      last_stable = stable;
    }
  }
  log.Force();
  // Every record is readable back in order.
  LogReader reader(log.StableLog(), 0);
  uint64_t prev = 0;
  bool first_read = true;
  while (auto rec = reader.Next()) {
    EXPECT_TRUE(first_read || rec->lsn > prev);
    prev = rec->lsn;
    first_read = false;
  }
  EXPECT_FALSE(reader.tail_torn());
}

}  // namespace
}  // namespace phoenix
