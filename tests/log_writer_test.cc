#include "wal/log_writer.h"

#include <gtest/gtest.h>

#include "wal/log_reader.h"
#include "wal/log_record.h"

namespace phoenix {
namespace {

class LogWriterTest : public ::testing::Test {
 protected:
  LogWriterTest() : disk_(DiskParams{}, 1) {}

  StableStorage storage_;
  DiskModel disk_;
  SimClock clock_;
};

std::vector<uint8_t> Payload(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST_F(LogWriterTest, BufferedUntilForce) {
  LogWriter writer("m/p1.log", &storage_, &disk_, &clock_);
  uint64_t lsn = writer.AppendPayload(Payload("hello"));
  EXPECT_EQ(lsn, 0u);
  EXPECT_TRUE(writer.has_buffered());
  EXPECT_EQ(storage_.LogSize("m/p1.log"), 0u);  // nothing stable yet
  EXPECT_FALSE(writer.IsStable(lsn));

  writer.Force();
  EXPECT_FALSE(writer.has_buffered());
  EXPECT_EQ(storage_.LogSize("m/p1.log"), 5u + 8u);
  EXPECT_TRUE(writer.IsStable(lsn));
}

TEST_F(LogWriterTest, LsnsAreFrameOffsets) {
  LogWriter writer("m/p1.log", &storage_, &disk_, &clock_);
  uint64_t a = writer.AppendPayload(Payload("aa"));
  uint64_t b = writer.AppendPayload(Payload("bbbb"));
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 2u + 8u);
  EXPECT_EQ(writer.next_lsn(), b + 4 + 8);
}

TEST_F(LogWriterTest, ForceAdvancesClockByDiskLatency) {
  LogWriter writer("m/p1.log", &storage_, &disk_, &clock_);
  writer.AppendPayload(Payload("x"));
  double before = clock_.NowMs();
  writer.Force();
  EXPECT_GT(clock_.NowMs(), before);  // rotational wait happened
}

TEST_F(LogWriterTest, EmptyForceIsFreeAndUncounted) {
  LogWriter writer("m/p1.log", &storage_, &disk_, &clock_);
  double before = clock_.NowMs();
  EXPECT_EQ(writer.Force(), 0u);
  EXPECT_EQ(clock_.NowMs(), before);
  EXPECT_EQ(writer.num_forces(), 0u);
}

TEST_F(LogWriterTest, DropBufferLosesUnforcedRecords) {
  LogWriter writer("m/p1.log", &storage_, &disk_, &clock_);
  writer.AppendPayload(Payload("stable"));
  writer.Force();
  uint64_t lost = writer.AppendPayload(Payload("lost"));
  writer.DropBuffer();
  EXPECT_EQ(storage_.LogSize("m/p1.log"), 6u + 8u);
  EXPECT_FALSE(writer.IsStable(lost));
}

TEST_F(LogWriterTest, ReopenResumesAtStableSize) {
  {
    LogWriter writer("m/p1.log", &storage_, &disk_, &clock_);
    writer.AppendPayload(Payload("abc"));
    writer.Force();
  }
  LogWriter reopened("m/p1.log", &storage_, &disk_, &clock_);
  EXPECT_EQ(reopened.next_lsn(), 3u + 8u);
}

TEST_F(LogWriterTest, CapacityOverflowAutoForces) {
  LogWriter writer("m/p1.log", &storage_, &disk_, &clock_, /*capacity=*/64);
  writer.AppendPayload(std::vector<uint8_t>(40, 1));
  writer.AppendPayload(std::vector<uint8_t>(40, 2));  // would overflow
  EXPECT_EQ(writer.num_forces(), 1u);
  EXPECT_GT(storage_.LogSize("m/p1.log"), 0u);
}

TEST_F(LogWriterTest, StatsCount) {
  LogWriter writer("m/p1.log", &storage_, &disk_, &clock_);
  writer.AppendPayload(Payload("a"));
  writer.AppendPayload(Payload("b"));
  writer.Force();
  writer.AppendPayload(Payload("c"));
  writer.Force();
  EXPECT_EQ(writer.num_appends(), 3u);
  EXPECT_EQ(writer.num_forces(), 2u);
  EXPECT_EQ(writer.bytes_forced(), storage_.LogSize("m/p1.log"));
}

TEST_F(LogWriterTest, ReaderRoundTripThroughFrames) {
  LogWriter writer("m/p1.log", &storage_, &disk_, &clock_);
  IncomingCallRecord rec;
  rec.context_id = 1;
  rec.method = "M";
  Encoder enc;
  EncodeLogRecord(LogRecord(rec), enc);
  uint64_t lsn = writer.AppendPayload(enc.buffer());
  writer.Force();

  LogReader reader(storage_.ReadLog("m/p1.log"), 0);
  auto parsed = reader.Next();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->lsn, lsn);
  EXPECT_EQ(RecordTypeOf(parsed->record), LogRecordType::kIncomingCall);
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_FALSE(reader.tail_torn());
}

std::vector<uint8_t> EncodedRecord(const std::string& method) {
  IncomingCallRecord rec;
  rec.context_id = 1;
  rec.method = method;
  Encoder enc;
  EncodeLogRecord(LogRecord(rec), enc);
  return enc.Release();
}

TEST_F(LogWriterTest, TornTailDetected) {
  LogWriter writer("m/p1.log", &storage_, &disk_, &clock_);
  writer.AppendPayload(EncodedRecord("complete"));
  uint64_t second = writer.AppendPayload(EncodedRecord("torn"));
  writer.Force();
  // Chop mid-second-frame.
  storage_.TruncateLog("m/p1.log", second + 4);

  LogReader reader(storage_.ReadLog("m/p1.log"), 0);
  EXPECT_TRUE(reader.Next().has_value());
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_TRUE(reader.tail_torn());
}

TEST_F(LogWriterTest, CorruptedRecordStopsScan) {
  LogWriter writer("m/p1.log", &storage_, &disk_, &clock_);
  writer.AppendPayload(EncodedRecord("first"));
  uint64_t second = writer.AppendPayload(EncodedRecord("second"));
  writer.Force();
  storage_.CorruptLog("m/p1.log", second + 8, 1);  // flip payload byte

  LogReader reader(storage_.ReadLog("m/p1.log"), 0);
  EXPECT_TRUE(reader.Next().has_value());
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_TRUE(reader.tail_torn());
  EXPECT_EQ(reader.end_lsn(), second);
}

TEST_F(LogWriterTest, ReadRecordAtValidatesCrc) {
  LogWriter writer("m/p1.log", &storage_, &disk_, &clock_);
  CreationRecord rec;
  rec.context_id = 2;
  rec.type_name = "T";
  rec.name = "n";
  Encoder enc;
  EncodeLogRecord(LogRecord(rec), enc);
  uint64_t lsn = writer.AppendPayload(enc.buffer());
  writer.Force();

  Result<LogRecord> ok = ReadRecordAt(storage_.ReadLog("m/p1.log"), lsn);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(std::get<CreationRecord>(*ok).type_name, "T");

  EXPECT_TRUE(ReadRecordAt(storage_.ReadLog("m/p1.log"), lsn + 1)
                  .status()
                  .IsCorruption());
}

}  // namespace
}  // namespace phoenix
