// Finer-grained recovery-manager behavior: pass statistics, table
// restoration, id continuity, and the lost-creation-record path.

#include <gtest/gtest.h>

#include "recovery/checkpoint_manager.h"
#include "recovery/recovery_manager.h"
#include "recovery/recovery_service.h"
#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

class RecoveryManagerTest : public ::testing::Test {
 protected:
  RecoveryManagerTest() {
    sim_ = std::make_unique<Simulation>();
    RegisterTestComponents(sim_->factories());
    alpha_ = &sim_->AddMachine("alpha");
    proc_ = &alpha_->CreateProcess();
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Process* proc_ = nullptr;
};

TEST_F(RecoveryManagerTest, StatsReflectWork) {
  ExternalClient client(sim_.get(), "alpha");
  auto a = client.CreateComponent(*proc_, "Counter", "a",
                                  ComponentKind::kPersistent, {});
  auto b = client.CreateComponent(*proc_, "Counter", "b",
                                  ComponentKind::kPersistent, {});
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Call(*a, "Add", MakeArgs(1)).ok());
  }
  ASSERT_TRUE(client.Call(*b, "Add", MakeArgs(1)).ok());

  proc_->Kill();
  proc_->Start();
  proc_->set_recovering(true);
  RecoveryManager recovery(proc_);
  ASSERT_TRUE(recovery.Recover().ok());
  proc_->set_recovering(false);

  // Contexts on the log: a + b (the activator is implicit); replays: 2
  // activator Creates + 4 calls.
  EXPECT_EQ(recovery.stats().contexts_found, 2u);
  EXPECT_EQ(recovery.stats().contexts_restored_from_state, 0u);
  EXPECT_EQ(recovery.stats().calls_replayed, 6u);
  EXPECT_GT(recovery.stats().records_scanned, 6u);
}

TEST_F(RecoveryManagerTest, RemoteTypeTableRestoredFromCheckpoint) {
  ExternalClient client(sim_.get(), "alpha");
  Process& server_proc = alpha_->CreateProcess();
  auto fn = client.CreateComponent(server_proc, "Squarer", "sq",
                                   ComponentKind::kFunctional, {});
  auto chain = client.CreateComponent(*proc_, "Chain", "driver",
                                      ComponentKind::kPersistent,
                                      MakeArgs(*fn, "Square"));
  ASSERT_TRUE(chain.ok());
  ASSERT_TRUE(client.Call(*chain, "Bump", MakeArgs(2)).ok());
  ASSERT_NE(proc_->remote_types().Lookup(*fn), nullptr);

  proc_->checkpoints().TakeProcessCheckpoint();
  ASSERT_TRUE(client.Call(*chain, "Bump", MakeArgs(2)).ok());  // flush

  proc_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  const RemoteTypeInfo* info = proc_->remote_types().Lookup(*fn);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->kind, ComponentKind::kFunctional);
  EXPECT_EQ(info->type_name, "Squarer");
}

TEST_F(RecoveryManagerTest, NewComponentsAfterRecoveryGetFreshIds) {
  ExternalClient client(sim_.get(), "alpha");
  auto a = client.CreateComponent(*proc_, "Counter", "a",
                                  ComponentKind::kPersistent, {});
  ASSERT_TRUE(a.ok());
  uint64_t id_a = proc_->FindContextOfComponent("a")->id();

  proc_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());

  auto b = client.CreateComponent(*proc_, "Counter", "b",
                                  ComponentKind::kPersistent, {});
  ASSERT_TRUE(b.ok());
  EXPECT_GT(proc_->FindContextOfComponent("b")->id(), id_a);
}

TEST_F(RecoveryManagerTest, LostCreationRecordRecreatedByActivatorReplay) {
  // A component whose creation record never became stable is re-created by
  // the replayed activator call — with the same deterministic context id,
  // so its earlier outgoing calls still dedupe correctly downstream.
  ExternalClient client(sim_.get(), "alpha");
  Process& downstream_proc = alpha_->CreateProcess();
  auto leaf = client.CreateComponent(downstream_proc, "Counter", "leaf",
                                     ComponentKind::kPersistent, {});
  ASSERT_TRUE(leaf.ok());

  // Create mid through a PERSISTENT creator whose Create call gets logged
  // and forced at the activator: kill the process right after the creation
  // (before mid does anything that would force its creation record).
  auto mid = client.CreateComponent(*proc_, "Chain", "mid",
                                    ComponentKind::kPersistent,
                                    MakeArgs(*leaf));
  ASSERT_TRUE(mid.ok());
  uint64_t mid_ctx = proc_->FindContextOfComponent("mid")->id();
  // The external Create forced the activator's records (Algorithm 3) and
  // with them everything earlier — including mid's creation record. To get
  // a LOST creation record, append more and kill before any force: create
  // another component directly (bypassing forces).
  auto late = proc_->CreateComponent("Counter", "late",
                                     ComponentKind::kPersistent, {});
  ASSERT_TRUE(late.ok());
  proc_->Kill();  // "late"'s creation record dies in the buffer

  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  // mid survived (its creation was forced), late did not — and that's
  // correct: nothing committed referenced it.
  EXPECT_NE(proc_->FindComponent("mid"), nullptr);
  EXPECT_EQ(proc_->FindContextOfComponent("mid")->id(), mid_ctx);
  EXPECT_EQ(proc_->FindComponent("late"), nullptr);

  // Re-creating late reuses the id space without colliding.
  auto late2 = proc_->CreateComponent("Counter", "late",
                                      ComponentKind::kPersistent, {});
  ASSERT_TRUE(late2.ok());
  EXPECT_TRUE(client.Call(*late2, "Add", MakeArgs(1)).ok());
}

TEST_F(RecoveryManagerTest, RecoveryIsIdempotent) {
  ExternalClient client(sim_.get(), "alpha");
  auto a = client.CreateComponent(*proc_, "Counter", "a",
                                  ComponentKind::kPersistent, {});
  ASSERT_TRUE(client.Call(*a, "Add", MakeArgs(5)).ok());

  for (int round = 0; round < 3; ++round) {
    proc_->Kill();
    ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  }
  EXPECT_EQ(client.Call(*a, "Get", {})->AsInt(), 5);
}

TEST_F(RecoveryManagerTest, LiveCallDuringRecoveryFlushesPendingFirst) {
  // Two processes on one machine call each other; while A recovers, B's
  // retry arrives mid-pass and must see A's contexts recovered to their
  // last send. Exercised via the pending-flusher hook: kill A mid-call
  // from B, then B's retry drives A's recovery inline.
  ExternalClient client(sim_.get(), "alpha");
  Process& b_proc = alpha_->CreateProcess();
  auto target = client.CreateComponent(*proc_, "Counter", "target",
                                       ComponentKind::kPersistent, {});
  auto driver = client.CreateComponent(b_proc, "Chain", "driver",
                                       ComponentKind::kPersistent,
                                       MakeArgs(*target));
  ASSERT_TRUE(driver.ok());
  ASSERT_TRUE(client.Call(*driver, "Bump", MakeArgs(1)).ok());

  sim_->injector().AddTrigger("alpha", proc_->pid(),
                              FailurePoint::kBeforeReplySend, 1);
  auto r = client.Call(*driver, "Bump", MakeArgs(2));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(client.Call(*target, "Get", {})->AsInt(), 3);
}

}  // namespace
}  // namespace phoenix
