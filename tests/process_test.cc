// Process-level behavior: the activator, component tables, lifecycle, and
// call-delivery errors.

#include <gtest/gtest.h>

#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

class ProcessTest : public ::testing::Test {
 protected:
  ProcessTest() {
    sim_ = std::make_unique<Simulation>();
    RegisterTestComponents(sim_->factories());
    alpha_ = &sim_->AddMachine("alpha");
    proc_ = &alpha_->CreateProcess();
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Process* proc_ = nullptr;
};

TEST_F(ProcessTest, IdentityAndNames) {
  EXPECT_EQ(proc_->pid(), 1u);
  EXPECT_EQ(proc_->machine_name(), "alpha");
  EXPECT_EQ(proc_->log_name(), "alpha/proc1.log");
  EXPECT_EQ(proc_->ActivatorUri(), "phx://alpha/1/_activator");
  EXPECT_TRUE(proc_->alive());
}

TEST_F(ProcessTest, PidsAssignedSequentiallyByRecoveryService) {
  Process& p2 = alpha_->CreateProcess();
  Process& p3 = alpha_->CreateProcess();
  EXPECT_EQ(p2.pid(), 2u);
  EXPECT_EQ(p3.pid(), 3u);
  EXPECT_EQ(alpha_->GetProcess(2), &p2);
  EXPECT_EQ(alpha_->GetProcess(42), nullptr);
}

TEST_F(ProcessTest, ActivatorValidatesArguments) {
  ExternalClient client(sim_.get(), "alpha");
  auto bad = client.Call(proc_->ActivatorUri(), "Create", MakeArgs(1, 2));
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ProcessTest, CreateRejectsExternalAndSubordinateKinds) {
  auto ext = proc_->CreateComponent("Counter", "x", ComponentKind::kExternal,
                                    {});
  EXPECT_EQ(ext.status().code(), StatusCode::kInvalidArgument);
  auto sub = proc_->CreateComponent("Counter", "y",
                                    ComponentKind::kSubordinate, {});
  EXPECT_EQ(sub.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ProcessTest, CreateAssignsSequentialContextIds) {
  auto a = proc_->CreateComponent("Counter", "a", ComponentKind::kPersistent,
                                  {});
  auto b = proc_->CreateComponent("Counter", "b", ComponentKind::kPersistent,
                                  {});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(proc_->FindContextOfComponent("a")->id(), 1u);
  EXPECT_EQ(proc_->FindContextOfComponent("b")->id(), 2u);
  EXPECT_EQ(proc_->FindComponent("a")->instance->name(), "a");
  EXPECT_EQ(proc_->FindComponent("zzz"), nullptr);
}

TEST_F(ProcessTest, InitializeFailurePropagates) {
  // Chain's Initialize requires a string downstream when args are given.
  auto r = proc_->CreateComponent("Bad?", "b", ComponentKind::kPersistent, {});
  EXPECT_TRUE(r.status().IsNotFound());  // unknown factory
}

TEST_F(ProcessTest, DeliverToDeadProcessIsUnavailable) {
  auto uri = proc_->CreateComponent("Counter", "c",
                                    ComponentKind::kPersistent, {});
  proc_->Kill();
  CallMessage msg;
  msg.target_uri = *uri;
  msg.method = "Get";
  EXPECT_TRUE(proc_->DeliverCall(msg).status().IsUnavailable());
  EXPECT_FALSE(proc_->alive());
  EXPECT_EQ(proc_->crash_count(), 1u);
}

TEST_F(ProcessTest, KillIsIdempotent) {
  proc_->Kill();
  proc_->Kill();
  EXPECT_EQ(proc_->crash_count(), 1u);
}

TEST_F(ProcessTest, StartResetsVolatileState) {
  auto uri = proc_->CreateComponent("Counter", "c",
                                    ComponentKind::kPersistent, {});
  ASSERT_TRUE(uri.ok());
  proc_->Kill();
  proc_->Start();  // bare start, no recovery
  EXPECT_TRUE(proc_->alive());
  EXPECT_EQ(proc_->FindComponent("c"), nullptr);  // volatile tables empty
  EXPECT_NE(proc_->FindComponent(kActivatorName), nullptr);
}

TEST_F(ProcessTest, ActivatorIsCallableComponent) {
  ExternalClient client(sim_.get(), "alpha");
  auto created =
      client.Call(proc_->ActivatorUri(), "Create",
                  MakeArgs("Counter", "via_activator",
                           static_cast<int64_t>(ComponentKind::kPersistent),
                           Value::List{}));
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  EXPECT_EQ(created->AsString(), "phx://alpha/1/via_activator");
  EXPECT_TRUE(client.Call(created->AsString(), "Add", MakeArgs(1)).ok());
}

TEST_F(ProcessTest, ComponentUriRoundTrips) {
  auto uri = proc_->CreateComponent("Counter", "c",
                                    ComponentKind::kPersistent, {});
  ComponentSlot* slot = proc_->FindComponent("c");
  ASSERT_NE(slot, nullptr);
  EXPECT_EQ(slot->instance->uri(), *uri);
  EXPECT_EQ(slot->instance->kind(), ComponentKind::kPersistent);
  EXPECT_EQ(slot->instance->type_name(), "Counter");
}

TEST_F(ProcessTest, ComponentKindNamesAreStable) {
  EXPECT_STREQ(ComponentKindName(ComponentKind::kExternal), "external");
  EXPECT_STREQ(ComponentKindName(ComponentKind::kPersistent), "persistent");
  EXPECT_STREQ(ComponentKindName(ComponentKind::kSubordinate), "subordinate");
  EXPECT_STREQ(ComponentKindName(ComponentKind::kFunctional), "functional");
  EXPECT_STREQ(ComponentKindName(ComponentKind::kReadOnly), "read_only");
  EXPECT_TRUE(IsStatefulKind(ComponentKind::kSubordinate));
  EXPECT_FALSE(IsStatefulKind(ComponentKind::kFunctional));
  EXPECT_FALSE(IsPhoenixKind(ComponentKind::kExternal));
}

}  // namespace
}  // namespace phoenix
