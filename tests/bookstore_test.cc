// The §5.5 online bookstore under the three optimization levels: identical
// application results, strictly decreasing force counts (the Table 8
// ordering), and sensible component behavior.

#include <gtest/gtest.h>

#include "bookstore/setup.h"
#include "bookstore/tax_calculator.h"

namespace phoenix::bookstore {
namespace {

struct RunResult {
  SessionResult session;
  uint64_t forces = 0;
  double elapsed_ms = 0;
};

RunResult RunAtLevel(OptLevel level) {
  Simulation sim(OptionsForLevel(level));
  RegisterBookstoreComponents(sim.factories());
  Machine& client_machine = sim.AddMachine("client");
  Machine& server_machine = sim.AddMachine("server");
  (void)client_machine;
  auto deployment = Deploy(sim, server_machine, /*num_stores=*/2, level);
  EXPECT_TRUE(deployment.ok()) << deployment.status().ToString();

  ExternalClient buyer(&sim, "client");
  // Warm-up session (types get learned), then the measured session.
  EXPECT_TRUE(
      RunBuyerSession(sim, *deployment, buyer, "warmup", "WA").ok());
  uint64_t forces_before = sim.TotalForces();
  double clock_before = sim.clock().NowMs();
  auto session = RunBuyerSession(sim, *deployment, buyer, "alice", "WA");
  EXPECT_TRUE(session.ok()) << session.status().ToString();

  RunResult out;
  out.session = *session;
  out.forces = sim.TotalForces() - forces_before;
  out.elapsed_ms = sim.clock().NowMs() - clock_before;
  return out;
}

TEST(BookstoreTest, SessionFindsBooksAndComputesTax) {
  RunResult r = RunAtLevel(OptLevel::kSpecialized);
  // Each store's catalog has two "recovery" titles.
  EXPECT_EQ(r.session.search_hits, 4);
  EXPECT_EQ(r.session.items_in_basket, 2);
  EXPECT_EQ(r.session.items_removed, 2);
  EXPECT_GT(r.session.total_with_tax, 0.0);
}

TEST(BookstoreTest, ResultsIdenticalAcrossOptimizationLevels) {
  RunResult baseline = RunAtLevel(OptLevel::kBaseline);
  RunResult optimized = RunAtLevel(OptLevel::kOptimizedLogging);
  RunResult specialized = RunAtLevel(OptLevel::kSpecialized);
  EXPECT_EQ(baseline.session.search_hits, specialized.session.search_hits);
  EXPECT_EQ(baseline.session.items_in_basket,
            specialized.session.items_in_basket);
  EXPECT_DOUBLE_EQ(baseline.session.total_with_tax,
                   optimized.session.total_with_tax);
  EXPECT_DOUBLE_EQ(baseline.session.total_with_tax,
                   specialized.session.total_with_tax);
  EXPECT_EQ(baseline.session.items_removed, specialized.session.items_removed);
}

TEST(BookstoreTest, ForcesDropAcrossLevelsLikeTable8) {
  // Table 8's shape: 64 > 46 > 34 forces. Absolute counts depend on our
  // component graph; the strict ordering is the reproduced result.
  RunResult baseline = RunAtLevel(OptLevel::kBaseline);
  RunResult optimized = RunAtLevel(OptLevel::kOptimizedLogging);
  RunResult specialized = RunAtLevel(OptLevel::kSpecialized);
  EXPECT_GT(baseline.forces, optimized.forces);
  EXPECT_GT(optimized.forces, specialized.forces);
  EXPECT_GT(baseline.elapsed_ms, optimized.elapsed_ms);
  EXPECT_GT(optimized.elapsed_ms, specialized.elapsed_ms);
  // The paper cut response time roughly in half overall.
  EXPECT_LT(specialized.elapsed_ms, 0.7 * baseline.elapsed_ms);
}

TEST(BookstoreTest, CheckoutBuysFromStoresAndClearsBasket) {
  Simulation sim(OptionsForLevel(OptLevel::kSpecialized));
  RegisterBookstoreComponents(sim.factories());
  Machine& server = sim.AddMachine("server");
  auto deployment = Deploy(sim, server, 2, OptLevel::kSpecialized);
  ASSERT_TRUE(deployment.ok());
  ExternalClient buyer(&sim, "server");

  ASSERT_TRUE(buyer
                  .Call(deployment->seller_uri, "AddToBasket",
                        MakeArgs("bob", deployment->store_uris[0],
                                 int64_t{1}))
                  .ok());
  ASSERT_TRUE(buyer
                  .Call(deployment->seller_uri, "AddToBasket",
                        MakeArgs("bob", deployment->store_uris[1],
                                 int64_t{2}))
                  .ok());
  auto total = buyer.Call(deployment->seller_uri, "Checkout",
                          MakeArgs("bob", "WA"));
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  EXPECT_GT(total->AsDouble(), 0.0);

  // The basket is empty and each store sold one book.
  auto items =
      buyer.Call(deployment->seller_uri, "ShowBasket", MakeArgs("bob"));
  EXPECT_TRUE(items->AsList().empty());
  for (const std::string& store : deployment->store_uris) {
    EXPECT_EQ(buyer.Call(store, "TotalSold", {})->AsInt(), 1);
  }
}

TEST(BookstoreTest, BuyRespectsStock) {
  Simulation sim(OptionsForLevel(OptLevel::kSpecialized));
  RegisterBookstoreComponents(sim.factories());
  Machine& server = sim.AddMachine("server");
  auto deployment = Deploy(sim, server, 1, OptLevel::kSpecialized);
  ASSERT_TRUE(deployment.ok());
  ExternalClient buyer(&sim, "server");
  const std::string& store = deployment->store_uris[0];

  ASSERT_TRUE(buyer.Call(store, "Buy", MakeArgs(int64_t{1}, int64_t{25})).ok());
  auto sold_out = buyer.Call(store, "Buy", MakeArgs(int64_t{1}, int64_t{1}));
  EXPECT_EQ(sold_out.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(
      buyer.Call(store, "Restock", MakeArgs(int64_t{1}, int64_t{5})).ok());
  EXPECT_TRUE(buyer.Call(store, "Buy", MakeArgs(int64_t{1}, int64_t{1})).ok());
}

TEST(BookstoreTest, PriceGrabberBestPrice) {
  Simulation sim(OptionsForLevel(OptLevel::kSpecialized));
  RegisterBookstoreComponents(sim.factories());
  Machine& server = sim.AddMachine("server");
  auto deployment = Deploy(sim, server, 3, OptLevel::kSpecialized);
  ASSERT_TRUE(deployment.ok());
  ExternalClient buyer(&sim, "server");

  auto best = buyer.Call(deployment->grabber_uri, "BestPrice",
                         MakeArgs("recovery"));
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  auto all =
      buyer.Call(deployment->grabber_uri, "Search", MakeArgs("recovery"));
  double best_price = best->AsList()[3].AsDouble();
  for (const Value& row : all->AsList()) {
    EXPECT_LE(best_price, row.AsList()[3].AsDouble());
  }
}

TEST(TaxCalculatorTest, RatesArePureAndRegional) {
  EXPECT_DOUBLE_EQ(TaxCalculator::RateForRegion("OR"), 0.0);
  EXPECT_GT(TaxCalculator::RateForRegion("WA"), 0.09);
  EXPECT_EQ(TaxCalculator::RateForRegion("??"), 0.06);
}

}  // namespace
}  // namespace phoenix::bookstore
