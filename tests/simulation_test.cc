// Transport/topology-level behavior: routing, network accounting, aggregate
// statistics, and the execution-context stack.

#include <gtest/gtest.h>

#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

TEST(SimulationTest, AddAndGetMachines) {
  Simulation sim;
  Machine& alpha = sim.AddMachine("alpha");
  EXPECT_EQ(sim.GetMachine("alpha"), &alpha);
  EXPECT_EQ(sim.GetMachine("nope"), nullptr);
}

TEST(SimulationTest, ResolveProcess) {
  Simulation sim;
  Machine& alpha = sim.AddMachine("alpha");
  Process& proc = alpha.CreateProcess();
  EXPECT_EQ(sim.ResolveProcess(MakeComponentUri("alpha", proc.pid(), "x")),
            &proc);
  EXPECT_EQ(sim.ResolveProcess(MakeComponentUri("alpha", 99, "x")), nullptr);
  EXPECT_EQ(sim.ResolveProcess(MakeComponentUri("ghost", 1, "x")), nullptr);
  EXPECT_EQ(sim.ResolveProcess("not a uri"), nullptr);
}

TEST(SimulationTest, RouteToUnknownTargetFails) {
  Simulation sim;
  sim.AddMachine("alpha");
  CallMessage msg;
  msg.target_uri = "phx://nowhere/1/c";
  msg.method = "M";
  EXPECT_TRUE(sim.RouteCall("alpha", msg).status().IsNotFound());
}

TEST(SimulationTest, RouteToUnknownComponentFails) {
  Simulation sim;
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  Process& proc = alpha.CreateProcess();
  CallMessage msg;
  msg.target_uri = MakeComponentUri("alpha", proc.pid(), "missing");
  msg.method = "M";
  EXPECT_TRUE(sim.RouteCall("alpha", msg).status().IsNotFound());
}

TEST(SimulationTest, CrossMachineCallsCountNetworkMessages) {
  Simulation sim;
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  sim.AddMachine("beta");
  Process& proc = alpha.CreateProcess();
  ExternalClient local_client(&sim, "alpha");
  ExternalClient remote_client(&sim, "beta");
  auto uri = local_client.CreateComponent(proc, "Counter", "c",
                                          ComponentKind::kPersistent, {});

  uint64_t messages = sim.network().total_messages();
  ASSERT_TRUE(local_client.Call(*uri, "Add", MakeArgs(1)).ok());
  EXPECT_EQ(sim.network().total_messages(), messages);  // same machine

  ASSERT_TRUE(remote_client.Call(*uri, "Add", MakeArgs(1)).ok());
  EXPECT_EQ(sim.network().total_messages(), messages + 2);  // call + reply
}

TEST(SimulationTest, RemoteCallsCostMoreThanLocal) {
  Simulation sim;
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  sim.AddMachine("beta");
  Process& proc = alpha.CreateProcess();
  ExternalClient admin(&sim, "alpha");
  auto fn = admin.CreateComponent(proc, "Squarer", "sq",
                                  ComponentKind::kFunctional, {});

  ExternalClient local_client(&sim, "alpha");
  ExternalClient remote_client(&sim, "beta");
  double t0 = sim.clock().NowMs();
  ASSERT_TRUE(local_client.Call(*fn, "Square", MakeArgs(2)).ok());
  double local_cost = sim.clock().NowMs() - t0;
  t0 = sim.clock().NowMs();
  ASSERT_TRUE(remote_client.Call(*fn, "Square", MakeArgs(2)).ok());
  double remote_cost = sim.clock().NowMs() - t0;
  EXPECT_GT(remote_cost, local_cost);
}

TEST(SimulationTest, ContextStackTracksNesting) {
  Simulation sim;
  EXPECT_EQ(sim.current_context(), nullptr);
  // Pushing/popping is exercised implicitly by every dispatch; check the
  // empty-stack invariant after a full workload.
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  Process& proc = alpha.CreateProcess();
  ExternalClient client(&sim, "alpha");
  auto counter = client.CreateComponent(proc, "Counter", "c",
                                        ComponentKind::kPersistent, {});
  auto chain = client.CreateComponent(proc, "Chain", "m",
                                      ComponentKind::kPersistent,
                                      MakeArgs(*counter));
  ASSERT_TRUE(client.Call(*chain, "Bump", MakeArgs(1)).ok());
  EXPECT_EQ(sim.current_context(), nullptr);
}

TEST(SimulationTest, TotalStatsAggregateAcrossProcesses) {
  Simulation sim;
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  Process& p1 = alpha.CreateProcess();
  Process& p2 = alpha.CreateProcess();
  ExternalClient client(&sim, "alpha");
  auto c1 = client.CreateComponent(p1, "Counter", "c1",
                                   ComponentKind::kPersistent, {});
  auto c2 = client.CreateComponent(p2, "Counter", "c2",
                                   ComponentKind::kPersistent, {});
  ASSERT_TRUE(client.Call(*c1, "Add", MakeArgs(1)).ok());
  ASSERT_TRUE(client.Call(*c2, "Add", MakeArgs(1)).ok());
  EXPECT_EQ(sim.TotalForces(),
            p1.log().num_forces() + p2.log().num_forces());
  EXPECT_EQ(sim.TotalAppends(),
            p1.log().num_appends() + p2.log().num_appends());
}

TEST(SimulationTest, DuplicateMachineNameAborts) {
  Simulation sim;
  sim.AddMachine("alpha");
  EXPECT_DEATH(sim.AddMachine("alpha"), "PHX_CHECK");
}

TEST(SimulationTest, BusyContextRejectsReentrantCall) {
  // A cross-context call cycle back into a busy (single-threaded) context
  // is a programming error, reported — not deadlocked (PWD requirement).
  Simulation sim;
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  Process& proc = alpha.CreateProcess();
  ExternalClient client(&sim, "alpha");
  auto a = client.CreateComponent(proc, "Chain", "a",
                                  ComponentKind::kPersistent, {});
  auto b = client.CreateComponent(proc, "Chain", "b",
                                  ComponentKind::kPersistent,
                                  MakeArgs(*a, "Bump"));
  ASSERT_TRUE(b.ok());
  // Close the cycle: a -> b -> a.
  ASSERT_TRUE(
      client.Call(*a, "SetDownstream", MakeArgs(*b, "Bump")).ok());

  auto r = client.Call(*a, "Bump", MakeArgs(1));
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(sim.current_context(), nullptr);  // stack fully unwound
}

}  // namespace
}  // namespace phoenix
