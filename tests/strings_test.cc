#include "common/strings.h"

#include <gtest/gtest.h>

namespace phoenix {
namespace {

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat("solo"), "solo");
}

TEST(StringsTest, StrSplit) {
  auto parts = StrSplit("a/b/c", '/');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");

  EXPECT_EQ(StrSplit("", '/').size(), 1u);
  auto empties = StrSplit("//", '/');
  ASSERT_EQ(empties.size(), 3u);
  EXPECT_EQ(empties[1], "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("phx://x", "phx://"));
  EXPECT_FALSE(StartsWith("http://x", "phx://"));
  EXPECT_FALSE(StartsWith("ph", "phx"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace phoenix
