// Behavior of the specialized component kinds of §3.2 at runtime: functional
// and read-only components, read-only methods, and how much logging each
// interaction pattern produces.

#include <gtest/gtest.h>

#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

class RuntimeKindsTest : public ::testing::Test {
 protected:
  void SetUpSim(bool specialized) {
    RuntimeOptions opts;
    opts.use_specialized_kinds = specialized;
    sim_ = std::make_unique<Simulation>(opts);
    RegisterTestComponents(sim_->factories());
    alpha_ = &sim_->AddMachine("alpha");
    server_ = &alpha_->CreateProcess();
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Process* server_ = nullptr;
};

TEST_F(RuntimeKindsTest, FunctionalCallsLogNothingOnceKnown) {
  SetUpSim(/*specialized=*/true);
  ExternalClient admin(sim_.get(), "alpha");
  Process& client_proc = alpha_->CreateProcess();
  auto fn = admin.CreateComponent(*server_, "Squarer", "sq",
                                  ComponentKind::kFunctional, {});
  ASSERT_TRUE(fn.ok());
  auto chain = admin.CreateComponent(client_proc, "Chain", "driver",
                                     ComponentKind::kPersistent,
                                     MakeArgs(*fn));
  // The Chain's Bump forwards Add, but Squarer only has Square; use a
  // direct persistent caller instead: call Square twice via the driver's
  // context by a fresh Chain whose downstream is empty, then raw calls.
  ASSERT_TRUE(chain.ok());

  // First direct persistent->functional call: server type unknown ->
  // conservative (force). Make the call through a persistent component.
  Context* driver_ctx = client_proc.FindContextOfComponent("driver");
  ASSERT_NE(driver_ctx, nullptr);
  Component* driver = driver_ctx->parent();

  // Call through the driver component's context directly.
  auto first = driver_ctx->OutgoingCall(driver, *fn, "Square", MakeArgs(6));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->AsInt(), 36);

  // Type now learned: subsequent calls log nothing and force nothing.
  uint64_t appends = sim_->TotalAppends();
  uint64_t forces = sim_->TotalForces();
  auto second = driver_ctx->OutgoingCall(driver, *fn, "Square", MakeArgs(7));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->AsInt(), 49);
  EXPECT_EQ(sim_->TotalAppends(), appends);
  EXPECT_EQ(sim_->TotalForces(), forces);
}

TEST_F(RuntimeKindsTest, ReadOnlyComponentReplyLoggedUnforcedAtCaller) {
  SetUpSim(/*specialized=*/true);
  ExternalClient admin(sim_.get(), "alpha");
  Process& client_proc = alpha_->CreateProcess();
  auto counter = admin.CreateComponent(*server_, "Counter", "c",
                                       ComponentKind::kPersistent, {});
  auto prober = admin.CreateComponent(*server_, "Prober", "probe",
                                      ComponentKind::kReadOnly, {});
  auto chain = admin.CreateComponent(client_proc, "Chain", "driver",
                                     ComponentKind::kPersistent,
                                     MakeArgs(*prober));
  ASSERT_TRUE(chain.ok());
  ASSERT_TRUE(admin.Call(*counter, "Add", MakeArgs(10)).ok());

  Context* driver_ctx = client_proc.FindContextOfComponent("driver");
  Component* driver = driver_ctx->parent();

  // Warm up the remote-type table.
  auto first =
      driver_ctx->OutgoingCall(driver, *prober, "Probe", MakeArgs(*counter));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->AsInt(), 10);

  uint64_t client_appends = client_proc.log().num_appends();
  uint64_t client_forces = client_proc.log().num_forces();
  uint64_t server_appends = server_->log().num_appends();

  auto second =
      driver_ctx->OutgoingCall(driver, *prober, "Probe", MakeArgs(*counter));
  ASSERT_TRUE(second.ok());
  // Caller logs exactly the unrepeatable reply (message 4), no force.
  EXPECT_EQ(client_proc.log().num_appends(), client_appends + 1);
  EXPECT_EQ(client_proc.log().num_forces(), client_forces);
  // Nothing is logged at the read-only component, and nothing at the
  // persistent counter it reads (read-only client, Algorithm 5).
  EXPECT_EQ(server_->log().num_appends(), server_appends);
}

TEST_F(RuntimeKindsTest, ReadOnlyMethodSkipsServerLoggingAndClientForce) {
  SetUpSim(/*specialized=*/true);
  ExternalClient admin(sim_.get(), "alpha");
  Process& client_proc = alpha_->CreateProcess();
  auto counter = admin.CreateComponent(*server_, "Counter", "c",
                                       ComponentKind::kPersistent, {});
  auto chain = admin.CreateComponent(client_proc, "Chain", "driver",
                                     ComponentKind::kPersistent,
                                     MakeArgs(*counter));
  ASSERT_TRUE(chain.ok());
  ASSERT_TRUE(admin.Call(*chain, "Bump", MakeArgs(3)).ok());  // learn type

  Context* driver_ctx = client_proc.FindContextOfComponent("driver");
  Component* driver = driver_ctx->parent();

  uint64_t server_appends = server_->log().num_appends();
  uint64_t client_forces = client_proc.log().num_forces();
  uint64_t client_appends = client_proc.log().num_appends();

  // "Get" is declared read-only on Counter.
  auto got = driver_ctx->OutgoingCall(driver, *counter, "Get", {});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->AsInt(), 3);
  EXPECT_EQ(server_->log().num_appends(), server_appends);  // not logged
  EXPECT_EQ(client_proc.log().num_forces(), client_forces);  // no force
  EXPECT_EQ(client_proc.log().num_appends(), client_appends + 1);  // msg 4
}

TEST_F(RuntimeKindsTest, SpecializedKindsIgnoredWhenSwitchedOff) {
  SetUpSim(/*specialized=*/false);
  ExternalClient admin(sim_.get(), "alpha");
  Process& client_proc = alpha_->CreateProcess();
  auto fn = admin.CreateComponent(*server_, "Squarer", "sq",
                                  ComponentKind::kFunctional, {});
  auto chain = admin.CreateComponent(client_proc, "Chain", "driver",
                                     ComponentKind::kPersistent, MakeArgs(*fn));
  ASSERT_TRUE(chain.ok());

  Context* driver_ctx = client_proc.FindContextOfComponent("driver");
  Component* driver = driver_ctx->parent();
  ASSERT_TRUE(
      driver_ctx->OutgoingCall(driver, *fn, "Square", MakeArgs(2)).ok());

  uint64_t forces = sim_->TotalForces();
  ASSERT_TRUE(
      driver_ctx->OutgoingCall(driver, *fn, "Square", MakeArgs(3)).ok());
  // Treated as persistent: the send still forces.
  EXPECT_GT(sim_->TotalForces(), forces);
}

TEST_F(RuntimeKindsTest, FunctionalKindSurvivesInRemoteTable) {
  SetUpSim(/*specialized=*/true);
  ExternalClient admin(sim_.get(), "alpha");
  Process& client_proc = alpha_->CreateProcess();
  auto fn = admin.CreateComponent(*server_, "Squarer", "sq",
                                  ComponentKind::kFunctional, {});
  auto chain = admin.CreateComponent(client_proc, "Chain", "driver",
                                     ComponentKind::kPersistent, MakeArgs(*fn));
  ASSERT_TRUE(chain.ok());
  Context* driver_ctx = client_proc.FindContextOfComponent("driver");
  ASSERT_TRUE(driver_ctx
                  ->OutgoingCall(driver_ctx->parent(), *fn, "Square",
                                 MakeArgs(2))
                  .ok());
  const RemoteTypeInfo* info = client_proc.remote_types().Lookup(*fn);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->kind, ComponentKind::kFunctional);
}

}  // namespace
}  // namespace phoenix
