// Profile reconstruction: hand-built span trees attribute self time exactly,
// and a traced end-to-end simulation yields chains whose phase breakdowns
// sum to their measured latency. Also pins the report's determinism: same
// events in, byte-identical text and JSON out.

#include "obs/profile.h"

#include <gtest/gtest.h>

#include <cmath>

#include "obs/tracer.h"
#include "runtime/simulation.h"
#include "tests/test_components.h"

namespace phoenix::obs {
namespace {

double PhaseSum(const ChainProfile& chain) {
  double sum = 0;
  for (const auto& [phase, ms] : chain.phase_ms) sum += ms;
  return sum;
}

// A synthetic chain with exact timings: a 10 ms call span containing a 4 ms
// network span and a 3 ms wal wait that parked. Self times must partition
// the 10 ms: execution 3, network 4, durability.park 3.
TEST(ProfileTest, SelfTimePartitionsTheChainExactly) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.set_enabled(true);

  SpanLink root_link{tracer.NewTraceId(), 0};
  Tracer::Span call =
      tracer.StartSpan("call", "Buy", "ma/1", root_link,
                       {Arg("method", "Buy")});
  clock.AdvanceMs(1.0);
  {
    Tracer::Span net = tracer.StartSpan("net", "xfer", "ma/1", call.link());
    clock.AdvanceMs(4.0);
  }
  clock.AdvanceMs(1.0);
  {
    Tracer::Span wait = tracer.StartSpan("wal", "wait", "ma/1", call.link());
    clock.AdvanceMs(3.0);
    wait.AddArg(Arg("outcome", "parked"));
  }
  clock.AdvanceMs(1.0);
  call.End();

  ProfileReport report = BuildProfile(tracer.events());
  ASSERT_EQ(report.chains.size(), 1u);
  const ChainProfile& chain = report.chains[0];
  EXPECT_EQ(chain.method, "Buy");
  EXPECT_DOUBLE_EQ(chain.dur_ms, 10.0);
  EXPECT_EQ(chain.span_count, 3u);
  EXPECT_DOUBLE_EQ(chain.phase_ms.at("execution"), 3.0);
  EXPECT_DOUBLE_EQ(chain.phase_ms.at("network"), 4.0);
  EXPECT_DOUBLE_EQ(chain.phase_ms.at("durability.park"), 3.0);
  EXPECT_DOUBLE_EQ(PhaseSum(chain), chain.dur_ms);

  // Critical path: root, then the longest child (network, 4 ms).
  ASSERT_EQ(chain.critical_path.size(), 2u);
  EXPECT_EQ(report.nodes[chain.critical_path[0]].category, "call");
  EXPECT_EQ(report.nodes[chain.critical_path[1]].category, "net");
}

// A begin with no matching end (crash mid-span) still yields a node, marked
// truncated, closed at the trace's last timestamp.
TEST(ProfileTest, UnterminatedSpanIsTruncatedAtTraceEnd) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.set_enabled(true);

  SpanLink root_link{tracer.NewTraceId(), 0};
  Tracer::Span call = tracer.StartSpan("call", "Doomed", "ma/1", root_link);
  clock.AdvanceMs(2.0);
  tracer.Instant("process", "crash", "ma/1");
  // No call.End(): simulate the process dying mid-chain.
  std::vector<TraceEvent> events = tracer.events();
  call.End();  // keep the tracer's own invariants tidy; not in `events`

  ProfileReport report = BuildProfile(events);
  ASSERT_EQ(report.chains.size(), 1u);
  const ProfileNode& root = report.nodes[report.chains[0].root];
  EXPECT_TRUE(root.truncated);
  EXPECT_DOUBLE_EQ(root.dur_ms, 2.0);
}

// End-to-end: profile a real traced simulation. Every chain's phase
// breakdown must sum to its duration, and the forest must account for every
// span in the trace.
TEST(ProfileTest, SimulationChainsSumToEndToEndLatency) {
  SimulationParams params;
  params.trace_enabled = true;
  Simulation sim({}, params);
  phoenix::testing::RegisterTestComponents(sim.factories());
  Machine& ma = sim.AddMachine("ma");
  Machine& mb = sim.AddMachine("mb");
  Process& server_proc = ma.CreateProcess();
  (void)mb;
  ExternalClient client(&sim, "mb");
  auto counter = client.CreateComponent(server_proc, "Counter", "ctr",
                                        ComponentKind::kPersistent, {});
  ASSERT_TRUE(counter.ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client.Call(*counter, "Add", MakeArgs(int64_t{1})).ok());
  }

  ProfileReport report = BuildProfile(sim.tracer().events());
  ASSERT_FALSE(report.chains.empty());
  size_t chained_spans = 0;
  for (const ChainProfile& chain : report.chains) {
    EXPECT_NEAR(PhaseSum(chain), chain.dur_ms, 1e-6)
        << "chain " << chain.trace_id << " (" << chain.method << ")";
    EXPECT_GT(chain.span_count, 0u);
    chained_spans += chain.span_count;
    // Critical path is a real root-to-leaf walk.
    ASSERT_FALSE(chain.critical_path.empty());
    EXPECT_EQ(chain.critical_path[0], chain.root);
  }
  EXPECT_LE(chained_spans, report.span_count);

  // Totals are the per-chain sums.
  double total = 0;
  for (const auto& [phase, ms] : report.total_phase_ms) total += ms;
  double chains_total = 0;
  for (const ChainProfile& chain : report.chains) {
    chains_total += PhaseSum(chain);
  }
  EXPECT_NEAR(total, chains_total, 1e-6);
}

// Same events -> byte-identical text and JSON reports.
TEST(ProfileTest, ReportsAreDeterministic) {
  auto run = [] {
    SimulationParams params;
    params.trace_enabled = true;
    Simulation sim({}, params);
    phoenix::testing::RegisterTestComponents(sim.factories());
    Machine& ma = sim.AddMachine("ma");
    Process& proc = ma.CreateProcess();
    ExternalClient client(&sim, "ma");
    auto counter = client.CreateComponent(proc, "Counter", "ctr",
                                          ComponentKind::kPersistent, {});
    EXPECT_TRUE(counter.ok());
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(client.Call(*counter, "Add", MakeArgs(int64_t{1})).ok());
    }
    ProfileReport report = BuildProfile(sim.tracer().events());
    return std::make_pair(RenderProfileText(report, 3),
                          ProfileToJson(report));
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_NE(a.second.find("\"schema\": \"phoenix.prof.v1\""),
            std::string::npos);
}

}  // namespace
}  // namespace phoenix::obs
