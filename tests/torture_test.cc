// Long randomized end-to-end run: a persistent shopping agent drives many
// buyer sessions against the bookstore while the server process is crashed
// over and over at varied protocol points. Inventory accounting must come
// out exact — every reservation, sale and basket operation exactly once.

#include <gtest/gtest.h>

#include "bookstore/setup.h"
#include "common/random.h"
#include "tests/test_components.h"

namespace phoenix {
namespace {

// Persistent workflow tier: one Session call = add a book to the buyer's
// basket and check out. Being persistent, its retries carry stable call
// IDs, so server crashes anywhere inside the session are fully masked.
class ShoppingAgent : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Session", [this](const ArgList& a) -> Result<Value> {
      const std::string& buyer = a[0].AsString();
      const std::string& store = a[1].AsString();
      int64_t book = a[2].AsInt();
      PHX_RETURN_IF_ERROR(
          CallRef(seller_, "AddToBasket", MakeArgs(buyer, store, book))
              .status());
      PHX_ASSIGN_OR_RETURN(
          Value total,
          CallRef(seller_, "Checkout", MakeArgs(buyer, std::string("WA"))));
      ++sessions_done_;
      return total;
    });
    methods.Register(
        "SessionsDone",
        [this](const ArgList&) -> Result<Value> {
          return Value(sessions_done_);
        },
        MethodTraits{.read_only = true});
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterComponentRef("seller", &seller_);
    fields.RegisterInt("sessions_done", &sessions_done_);
  }
  Status Initialize(const ArgList& args) override {
    seller_.uri = args[0].AsString();
    return Status::OK();
  }

 private:
  ComponentRefField seller_;
  int64_t sessions_done_ = 0;
};

struct TortureConfig {
  uint64_t seed;
  bookstore::OptLevel level;
  uint32_t save_state_every;
};

class BookstoreTortureTest : public ::testing::TestWithParam<TortureConfig> {
};

TEST_P(BookstoreTortureTest, InventoryExactUnderCrashStorm) {
  const TortureConfig& cfg = GetParam();
  RuntimeOptions opts = bookstore::OptionsForLevel(cfg.level);
  opts.save_context_state_every = cfg.save_state_every;
  opts.process_checkpoint_every =
      cfg.save_state_every > 0 ? cfg.save_state_every * 2 : 0;
  Simulation sim(opts);
  bookstore::RegisterBookstoreComponents(sim.factories());
  sim.factories().Register<ShoppingAgent>("ShoppingAgent");
  Machine& server_machine = sim.AddMachine("server");
  Machine& agent_machine = sim.AddMachine("agent");
  auto deployment =
      bookstore::Deploy(sim, server_machine, 2, cfg.level).value();
  Process& agent_proc = agent_machine.CreateProcess();

  ExternalClient admin(&sim, "agent");
  auto agent = admin.CreateComponent(agent_proc, "ShoppingAgent", "agent",
                                     ComponentKind::kPersistent,
                                     MakeArgs(deployment.seller_uri));
  ASSERT_TRUE(agent.ok());

  // A random storm of crashes at the server, spread over the run.
  Random schedule(cfg.seed);
  int crashes = 6;
  for (int i = 0; i < crashes; ++i) {
    auto point = static_cast<FailurePoint>(schedule.Uniform(6));
    uint64_t hit = 1 + schedule.Uniform(120);
    sim.injector().AddTrigger("server", deployment.server_process->pid(),
                              point, hit);
  }

  const int kSessions = 40;
  int per_store[2] = {0, 0};
  int per_book[2][11] = {};
  Random workload(cfg.seed * 31);
  for (int i = 0; i < kSessions; ++i) {
    int store = static_cast<int>(workload.Uniform(2));
    int book = static_cast<int>(workload.Uniform(10)) + 1;
    auto r = admin.Call(*agent, "Session",
                        MakeArgs("buyer" + std::to_string(i),
                                 deployment.store_uris[store],
                                 int64_t{book}));
    ASSERT_TRUE(r.ok()) << "session " << i << ": " << r.status().ToString();
    ++per_store[store];
    ++per_book[store][book];
  }

  ExternalClient probe(&sim, "server");
  EXPECT_EQ(admin.Call(*agent, "SessionsDone", {})->AsInt(), kSessions);
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(
        probe.Call(deployment.store_uris[s], "TotalSold", {})->AsInt(),
        per_store[s])
        << "store " << s;
    for (int book = 1; book <= 10; ++book) {
      auto entry = probe.Call(deployment.store_uris[s], "GetBook",
                              MakeArgs(int64_t{book}));
      ASSERT_TRUE(entry.ok());
      EXPECT_EQ(entry->AsList()[3].AsInt(), 25 - per_book[s][book])
          << "store " << s << " book " << book;
    }
  }
}

std::vector<TortureConfig> TortureConfigs() {
  std::vector<TortureConfig> configs;
  for (uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    configs.push_back({seed, bookstore::OptLevel::kSpecialized, 0});
    configs.push_back({seed, bookstore::OptLevel::kSpecialized, 7});
    configs.push_back({seed, bookstore::OptLevel::kOptimizedLogging, 0});
    configs.push_back({seed, bookstore::OptLevel::kBaseline, 0});
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(
    Storms, BookstoreTortureTest, ::testing::ValuesIn(TortureConfigs()),
    [](const ::testing::TestParamInfo<TortureConfig>& info) {
      return std::string(bookstore::OptLevelName(info.param.level)) + "_seed" +
             std::to_string(info.param.seed) + "_ckpt" +
             std::to_string(info.param.save_state_every);
    });

}  // namespace
}  // namespace phoenix
