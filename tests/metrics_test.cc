// MetricsRegistry: counter/gauge identity, histogram bucket and percentile
// math, cross-label aggregation, and deterministic JSON snapshots.

#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace phoenix::obs {
namespace {

TEST(CounterTest, IncrementsAccumulate) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  g.Add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(HistogramTest, BucketAssignment) {
  // Bucket i counts samples in [bounds[i-1], bounds[i]); overflow is last.
  Histogram h({1.0, 2.0, 4.0});
  h.Record(0.5);   // bucket 0: (-inf, 1)
  h.Record(1.0);   // bucket 1 (lower bound is inclusive)
  h.Record(1.5);   // bucket 1: [1, 2)
  h.Record(3.0);   // bucket 2: [2, 4)
  h.Record(100.0); // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.sum(), 106.0);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, SingleSampleCollapsesPercentiles) {
  Histogram h;
  h.Record(3.25);
  // Clamping to the observed [min, max] makes every percentile exact here.
  EXPECT_DOUBLE_EQ(h.Percentile(0), 3.25);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 3.25);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 3.25);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 3.25);
}

TEST(HistogramTest, PercentilesAreMonotoneAndBounded) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(i * 0.01);  // 0.01 .. 10.0
  double prev = h.Percentile(0);
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
  // The median of a uniform 0.01..10 sweep lands near 5 (bucket resolution
  // limits precision; the default bounds have 8 buckets per decade).
  EXPECT_NEAR(h.Percentile(50), 5.0, 2.0);
}

TEST(HistogramTest, MergeAddsCountsAndExtremes) {
  Histogram a({1.0, 10.0});
  Histogram b({1.0, 10.0});
  a.Record(0.5);
  a.Record(5.0);
  b.Record(20.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 20.0);
  EXPECT_EQ(a.bucket_counts()[2], 1u);  // b's overflow sample arrived
}

TEST(SummarizeTest, FieldsMatchHistogram) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(1.0);
  LatencySummary s = Summarize(h);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
  EXPECT_DOUBLE_EQ(s.p50, 1.0);
  EXPECT_DOUBLE_EQ(s.p95, 1.0);
  EXPECT_DOUBLE_EQ(s.p99, 1.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
}

TEST(MetricsRegistryTest, LookupCreatesOnceAndIsStable) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("phoenix.log.forces", {{"process", "ma/1"}});
  a.Increment(3);
  Counter& b = reg.GetCounter("phoenix.log.forces", {{"process", "ma/1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  // A different label set is a different series.
  Counter& c = reg.GetCounter("phoenix.log.forces", {{"process", "ma/2"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistryTest, CounterTotalSumsAcrossLabels) {
  MetricsRegistry reg;
  reg.GetCounter("phoenix.log.forces", {{"process", "ma/1"}}).Increment(3);
  reg.GetCounter("phoenix.log.forces", {{"process", "mb/1"}}).Increment(4);
  reg.GetCounter("phoenix.log.appends", {{"process", "ma/1"}}).Increment(9);
  EXPECT_EQ(reg.CounterTotal("phoenix.log.forces"), 7u);
  EXPECT_EQ(reg.CounterTotal("phoenix.log.appends"), 9u);
  EXPECT_EQ(reg.CounterTotal("phoenix.absent"), 0u);
}

TEST(MetricsRegistryTest, MergedHistogramSpansLabels) {
  MetricsRegistry reg;
  reg.GetHistogram("phoenix.call.latency_ms", {{"process", "ma/1"}})
      .Record(1.0);
  reg.GetHistogram("phoenix.call.latency_ms", {{"process", "mb/1"}})
      .Record(3.0);
  Histogram merged = reg.MergedHistogram("phoenix.call.latency_ms");
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_DOUBLE_EQ(merged.min(), 1.0);
  EXPECT_DOUBLE_EQ(merged.max(), 3.0);
  EXPECT_EQ(reg.MergedHistogram("phoenix.absent").count(), 0u);
}

TEST(MetricsRegistryTest, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.FindCounter("x"), nullptr);
  reg.GetCounter("x").Increment();
  ASSERT_NE(reg.FindCounter("x"), nullptr);
  EXPECT_EQ(reg.FindCounter("x")->value(), 1u);
  EXPECT_EQ(reg.FindHistogram("y"), nullptr);
}

// Two registries populated identically — in different insertion orders —
// must serialize byte-identically: snapshots are part of the deterministic
// surface.
TEST(MetricsRegistryTest, JsonSnapshotIsDeterministic) {
  MetricsRegistry a;
  a.GetCounter("phoenix.log.forces", {{"process", "ma/1"}}).Increment(2);
  a.GetGauge("phoenix.disk.seek_ms", {{"process", "ma/1"}}).Add(1.25);
  a.GetHistogram("phoenix.call.latency_ms").Record(0.5);

  MetricsRegistry b;
  b.GetHistogram("phoenix.call.latency_ms").Record(0.5);
  b.GetGauge("phoenix.disk.seek_ms", {{"process", "ma/1"}}).Add(1.25);
  b.GetCounter("phoenix.log.forces", {{"process", "ma/1"}}).Increment(2);

  JsonWriter wa;
  a.WriteJson(wa);
  JsonWriter wb;
  b.WriteJson(wb);
  EXPECT_EQ(wa.str(), wb.str());

  // And the snapshot is valid JSON with the three sections.
  auto parsed = ParseJson(wa.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed->Find("counters"), nullptr);
  EXPECT_NE(parsed->Find("gauges"), nullptr);
  EXPECT_NE(parsed->Find("histograms"), nullptr);
}

TEST(MetricsRegistryTest, ClearEmptiesEverything) {
  MetricsRegistry reg;
  reg.GetCounter("x").Increment();
  reg.Clear();
  EXPECT_EQ(reg.FindCounter("x"), nullptr);
  EXPECT_EQ(reg.CounterTotal("x"), 0u);
}

}  // namespace
}  // namespace phoenix::obs
