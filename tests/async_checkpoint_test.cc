// Asynchronous checkpointing (RuntimeOptions.async_checkpoint): a dedicated
// background session per process performs the §4.2 state sweeps and §4.3
// process checkpoints off the foreground chains. These tests pin the crash
// interleavings the async path exposes: crashes inside a background sweep,
// a crash between the end-record append and the publish, recovery landing
// on the older published checkpoint, and end-state equivalence with the
// inline cadence on the same seed.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "recovery/checkpoint_manager.h"
#include "recovery/recovery_service.h"
#include "tests/test_components.h"
#include "wal/log_reader.h"

namespace phoenix {
namespace {

using phoenix::testing::ExecutionLog;
using phoenix::testing::RegisterTestComponents;

constexpr int kSessions = 3;
constexpr int kCallsPerSession = 16;

RuntimeOptions AsyncOptions(uint32_t interval = 10) {
  RuntimeOptions opts;
  opts.async_checkpoint = true;
  opts.async_checkpoint_interval = interval;
  // The background session interleaves at durability park points, so async
  // checkpointing runs under group commit (see DESIGN.md §9).
  opts.group_commit = true;
  return opts;
}

// Builds the standard two-machine topology: persistent Chain callers on the
// client process forward every Bump to a Counter on the server process, so
// crashes at the server exercise exactly-once through persistent callers
// (an external driver would legitimately observe duplicates).
struct Topology {
  Machine* server_machine = nullptr;
  Machine* client_machine = nullptr;
  Process* server = nullptr;
  Process* client = nullptr;
  std::vector<std::string> chains;
  std::vector<std::string> counters;
};

Topology Deploy(Simulation& sim, int sessions) {
  Topology topo;
  topo.server_machine = &sim.AddMachine("server");
  topo.client_machine = &sim.AddMachine("client");
  topo.server = &topo.server_machine->CreateProcess();
  topo.client = &topo.client_machine->CreateProcess();
  ExternalClient admin(&sim, "client");
  for (int s = 0; s < sessions; ++s) {
    auto counter = admin.CreateComponent(*topo.server, "Counter",
                                         "counter" + std::to_string(s),
                                         ComponentKind::kPersistent, {});
    EXPECT_TRUE(counter.ok());
    auto chain = admin.CreateComponent(*topo.client, "Chain",
                                       "chain" + std::to_string(s),
                                       ComponentKind::kPersistent,
                                       MakeArgs(*counter, "Add"));
    EXPECT_TRUE(chain.ok());
    topo.chains.push_back(*chain);
    topo.counters.push_back(*counter);
  }
  return topo;
}

// One session per chain, each driving kCallsPerSession Bump(1) calls.
void RunWorkload(Simulation& sim, const Topology& topo) {
  std::vector<std::function<void()>> bodies;
  for (const std::string& chain : topo.chains) {
    bodies.push_back([&sim, chain] {
      ExternalClient driver(&sim, "client");
      for (int i = 0; i < kCallsPerSession; ++i) {
        Result<Value> r = driver.Call(chain, "Bump", MakeArgs(1));
        EXPECT_TRUE(r.ok()) << chain << ": " << r.status().ToString();
      }
    });
  }
  sim.RunSessions(std::move(bodies));
}

int64_t CounterValue(Simulation& sim, const Topology& topo, int s) {
  ExternalClient probe(&sim, "server");
  auto value = probe.Call(topo.counters[s], "Get", {});
  EXPECT_TRUE(value.ok());
  return value.ok() ? value->AsInt() : -1;
}

TEST(AsyncCheckpointTest, SweepsCaptureAndPublishOffTheForegroundChain) {
  Simulation sim(AsyncOptions());
  RegisterTestComponents(sim.factories());
  Topology topo = Deploy(sim, kSessions);
  RunWorkload(sim, topo);

  // The background session swept and published while the workload ran.
  CheckpointManager& cp = topo.server->checkpoints();
  EXPECT_GE(cp.async_sweeps(), 1u);
  EXPECT_GE(cp.state_saves(), 1u);
  EXPECT_GE(cp.checkpoints_taken(), 1u);
  EXPECT_GE(cp.checkpoints_published(), 1u);
  EXPECT_TRUE(topo.server->log().ReadWellKnownLsn().ok());
  // The sweep's bracket force is attributed to the background chain's own
  // force point, never to a foreground interceptor site.
  EXPECT_GE(sim.metrics().CounterTotal("phoenix.checkpoint.async.sweeps"), 2u);
  EXPECT_GE(sim.metrics().CounterTotal("phoenix.checkpoint.async.publishes"),
            1u);

  for (int s = 0; s < kSessions; ++s) {
    EXPECT_EQ(CounterValue(sim, topo, s), kCallsPerSession) << "counter " << s;
  }

  // Recovery from the async-published checkpoint lands on the same state.
  topo.server->Kill();
  ASSERT_TRUE(
      topo.server_machine->recovery_service().EnsureProcessAlive(1).ok());
  for (int s = 0; s < kSessions; ++s) {
    EXPECT_EQ(CounterValue(sim, topo, s), kCallsPerSession) << "counter " << s;
  }
}

TEST(AsyncCheckpointTest, CrashMidSweepIsHarmless) {
  Simulation sim(AsyncOptions(6));
  RegisterTestComponents(sim.factories());
  Topology topo = Deploy(sim, kSessions);
  // Both crash points inside the background sweep: one during a context
  // state save, one inside the checkpoint bracket. The inline cadence is
  // inactive (async mode), so only the background session can trip these.
  sim.injector().AddTrigger("server", topo.server->pid(),
                            FailurePoint::kDuringStateSave, 1);
  sim.injector().AddTrigger("server", topo.server->pid(),
                            FailurePoint::kDuringCheckpoint, 1);
  RunWorkload(sim, topo);

  EXPECT_GE(topo.server->crash_count(), 1u);
  for (int s = 0; s < kSessions; ++s) {
    EXPECT_EQ(CounterValue(sim, topo, s), kCallsPerSession) << "counter " << s;
  }
  // And a final crash + recovery still lands on the exact state.
  topo.server->Kill();
  ASSERT_TRUE(
      topo.server_machine->recovery_service().EnsureProcessAlive(1).ok());
  for (int s = 0; s < kSessions; ++s) {
    EXPECT_EQ(CounterValue(sim, topo, s), kCallsPerSession) << "counter " << s;
  }
}

TEST(AsyncCheckpointTest, CrashBetweenEndAppendAndPublishLandsOnOlderCheckpoint) {
  // Publish ordering under the async split: a bracket whose end record was
  // appended but never became durable must be invisible after a crash —
  // recovery lands on the older *published* checkpoint.
  Simulation sim;  // inline driver calls; no sessions needed for this one
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  Process& server = alpha.CreateProcess();
  ExternalClient client(&sim, "alpha");
  auto uri = client.CreateComponent(server, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  ASSERT_TRUE(uri.ok());

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }
  Context* ctx = server.FindContextOfComponent("c");
  ASSERT_TRUE(server.checkpoints().SaveContextState(*ctx).ok());
  Result<uint64_t> first = server.checkpoints().TakeProcessCheckpoint();
  ASSERT_TRUE(first.ok());
  // This call's force publishes the first checkpoint.
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  Result<uint64_t> published = server.log().ReadWellKnownLsn();
  ASSERT_TRUE(published.ok());
  EXPECT_EQ(*published, *first);

  // Second checkpoint: end record appended, sitting in the buffer — the
  // crash eats it before any force, so the publish gate never opens.
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  Result<uint64_t> second = server.checkpoints().TakeProcessCheckpoint();
  ASSERT_TRUE(second.ok());
  server.Kill();
  ASSERT_TRUE(alpha.recovery_service().EnsureProcessAlive(1).ok());

  Result<uint64_t> after = server.log().ReadWellKnownLsn();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *first);  // still the older published checkpoint
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 6);
}

TEST(AsyncCheckpointTest, AsyncEndStateEqualsInlineOnSameSeed) {
  // The same seeded workload, captured asynchronously vs inline: final
  // component state — including after a crash + recovery — must match.
  auto run = [&](bool async) -> std::vector<int64_t> {
    RuntimeOptions opts = AsyncOptions(8);
    if (!async) {
      opts.async_checkpoint = false;
      opts.save_context_state_every = 8;
      opts.process_checkpoint_every = 8;
    }
    Simulation sim(opts);
    RegisterTestComponents(sim.factories());
    Topology topo = Deploy(sim, kSessions);
    RunWorkload(sim, topo);
    topo.server->Kill();
    EXPECT_TRUE(
        topo.server_machine->recovery_service().EnsureProcessAlive(1).ok());
    std::vector<int64_t> values;
    for (int s = 0; s < kSessions; ++s) {
      values.push_back(CounterValue(sim, topo, s));
    }
    return values;
  };
  std::vector<int64_t> with_async = run(true);
  std::vector<int64_t> inline_cadence = run(false);
  EXPECT_EQ(with_async, inline_cadence);
  for (int64_t v : with_async) EXPECT_EQ(v, kCallsPerSession);
}

TEST(AsyncCheckpointTest, PublishIsIdempotentPerCheckpoint) {
  // Satellite: MaybePublishCheckpoint is invoked from every force site; the
  // publish-once latch makes repeats no-ops and counts them.
  Simulation sim;
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  Process& server = alpha.CreateProcess();
  ExternalClient client(&sim, "alpha");
  auto uri = client.CreateComponent(server, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  ASSERT_TRUE(uri.ok());
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  ASSERT_TRUE(server.checkpoints().TakeProcessCheckpoint().ok());
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());  // publishes
  ASSERT_EQ(server.checkpoints().checkpoints_published(), 1u);
  Result<uint64_t> published = server.log().ReadWellKnownLsn();
  ASSERT_TRUE(published.ok());

  uint64_t skips_before = server.checkpoints().publish_skips();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }
  // Repeat force sites hit the latch: counted, nothing re-published.
  EXPECT_GT(server.checkpoints().publish_skips(), skips_before);
  EXPECT_EQ(server.checkpoints().checkpoints_published(), 1u);
  EXPECT_EQ(*server.log().ReadWellKnownLsn(), *published);
  EXPECT_EQ(sim.metrics().CounterTotal("phoenix.checkpoint.publish_skips"),
            server.checkpoints().publish_skips());
}

TEST(AsyncCheckpointTest, GcPinsCheckpointCapturedReferences) {
  // Satellite: once capture and publish are decoupled, the live context
  // tables can move past the LSNs a checkpoint's entries reference. GC must
  // pin the captured refs — published *and* pending — or auto-truncation
  // trims records recovery still needs.
  Simulation sim;
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  Process& server = alpha.CreateProcess();
  ExternalClient client(&sim, "alpha");
  auto uri = client.CreateComponent(server, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  ASSERT_TRUE(uri.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }
  Context* ctx = server.FindContextOfComponent("c");
  Result<uint64_t> captured_state = server.checkpoints().SaveContextState(*ctx);
  ASSERT_TRUE(captured_state.ok());
  // The checkpoint's context entry references captured_state.
  Result<uint64_t> begin = server.checkpoints().TakeProcessCheckpoint();
  ASSERT_TRUE(begin.ok());

  // The live table moves on: newer calls and a newer state record, all
  // *above* the captured one. The force publishes the pending checkpoint.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }
  ASSERT_TRUE(server.checkpoints().SaveContextState(*ctx).ok());
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  ASSERT_TRUE(server.log().ReadWellKnownLsn().ok());
  EXPECT_GT(ctx->recovery_lsn(), *captured_state);

  // GC must not trim past the published checkpoint's captured state record
  // even though every *live* pin now sits above it.
  server.checkpoints().GarbageCollect();
  EXPECT_LE(server.log().head_base(), *captured_state);

  // And recovery through that checkpoint still works end to end.
  server.Kill();
  ASSERT_TRUE(alpha.recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 14);
}

}  // namespace
}  // namespace phoenix
