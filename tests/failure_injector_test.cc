#include "sim/failure_injector.h"

#include <gtest/gtest.h>

namespace phoenix {
namespace {

TEST(FailureInjectorTest, TriggerFiresOnNthHit) {
  FailureInjector injector;
  injector.AddTrigger("m", 1, FailurePoint::kBeforeReplySend, 3);
  EXPECT_FALSE(injector.ShouldCrash("m", 1, FailurePoint::kBeforeReplySend));
  EXPECT_FALSE(injector.ShouldCrash("m", 1, FailurePoint::kBeforeReplySend));
  EXPECT_TRUE(injector.ShouldCrash("m", 1, FailurePoint::kBeforeReplySend));
  // One-shot: does not fire again.
  EXPECT_FALSE(injector.ShouldCrash("m", 1, FailurePoint::kBeforeReplySend));
  EXPECT_EQ(injector.crashes_fired(), 1u);
}

TEST(FailureInjectorTest, TriggersAreKeyedByProcessAndPoint) {
  FailureInjector injector;
  injector.AddTrigger("m", 1, FailurePoint::kBeforeOutgoingSend, 1);
  EXPECT_FALSE(injector.ShouldCrash("m", 2, FailurePoint::kBeforeOutgoingSend));
  EXPECT_FALSE(injector.ShouldCrash("m", 1, FailurePoint::kAfterReplySend));
  EXPECT_FALSE(injector.ShouldCrash("n", 1, FailurePoint::kBeforeOutgoingSend));
  EXPECT_TRUE(injector.ShouldCrash("m", 1, FailurePoint::kBeforeOutgoingSend));
}

TEST(FailureInjectorTest, MultipleTriggersSameKey) {
  FailureInjector injector;
  injector.AddTrigger("m", 1, FailurePoint::kAfterIncomingLogged, 1);
  injector.AddTrigger("m", 1, FailurePoint::kAfterIncomingLogged, 3);
  EXPECT_TRUE(injector.ShouldCrash("m", 1, FailurePoint::kAfterIncomingLogged));
  EXPECT_FALSE(injector.ShouldCrash("m", 1, FailurePoint::kAfterIncomingLogged));
  EXPECT_TRUE(injector.ShouldCrash("m", 1, FailurePoint::kAfterIncomingLogged));
  EXPECT_EQ(injector.crashes_fired(), 2u);
}

TEST(FailureInjectorTest, HitCountsPersistAcrossNonFiringHits) {
  FailureInjector injector;
  for (int i = 0; i < 5; ++i) {
    injector.ShouldCrash("m", 7, FailurePoint::kBeforeIncomingLogged);
  }
  EXPECT_EQ(injector.HitCount("m", 7, FailurePoint::kBeforeIncomingLogged), 5u);
  EXPECT_EQ(injector.HitCount("m", 7, FailurePoint::kAfterReplySend), 0u);
}

TEST(FailureInjectorTest, RandomCrashesAreSeededAndBounded) {
  FailureInjector a, b;
  a.EnableRandomCrashes(0.3, 12345);
  b.EnableRandomCrashes(0.3, 12345);
  int fired_a = 0, fired_b = 0;
  for (int i = 0; i < 300; ++i) {
    fired_a += a.ShouldCrash("m", 1, FailurePoint::kBeforeReplySend) ? 1 : 0;
    fired_b += b.ShouldCrash("m", 1, FailurePoint::kBeforeReplySend) ? 1 : 0;
  }
  EXPECT_EQ(fired_a, fired_b);  // reproducible
  EXPECT_GT(fired_a, 50);
  EXPECT_LT(fired_a, 150);
}

TEST(FailureInjectorTest, ClearResetsEverything) {
  FailureInjector injector;
  injector.AddTrigger("m", 1, FailurePoint::kBeforeReplySend, 1);
  injector.ShouldCrash("m", 1, FailurePoint::kBeforeReplySend);
  injector.Clear();
  EXPECT_EQ(injector.crashes_fired(), 0u);
  EXPECT_EQ(injector.HitCount("m", 1, FailurePoint::kBeforeReplySend), 0u);
  EXPECT_FALSE(injector.ShouldCrash("m", 1, FailurePoint::kBeforeReplySend));
}

TEST(FailureInjectorTest, TornTailsAreSeededAndBounded) {
  FailureInjector a, b;
  a.EnableTornTails(0.5, 99, /*max_tear_bytes=*/16);
  b.EnableTornTails(0.5, 99, /*max_tear_bytes=*/16);
  int fired = 0;
  for (int i = 0; i < 200; ++i) {
    uint64_t tear_a = a.MaybeTearBytes();
    EXPECT_EQ(tear_a, b.MaybeTearBytes());  // reproducible
    if (tear_a > 0) {
      ++fired;
      EXPECT_LE(tear_a, 16u);
    }
  }
  EXPECT_GT(fired, 50);
  EXPECT_LT(fired, 150);
  EXPECT_EQ(a.torn_tails_fired(), static_cast<uint64_t>(fired));
}

TEST(FailureInjectorTest, TornTailsOffByDefaultAndClearedByClear) {
  FailureInjector injector;
  EXPECT_EQ(injector.MaybeTearBytes(), 0u);
  injector.EnableTornTails(1.0, 7);
  EXPECT_GT(injector.MaybeTearBytes(), 0u);
  EXPECT_EQ(injector.torn_tails_fired(), 1u);
  injector.Clear();
  EXPECT_EQ(injector.MaybeTearBytes(), 0u);
  EXPECT_EQ(injector.torn_tails_fired(), 0u);
}

TEST(FailureInjectorTest, AllPointsHaveNames) {
  for (int p = 0; p < kNumFailurePoints; ++p) {
    EXPECT_STRNE(FailurePointName(static_cast<FailurePoint>(p)), "unknown");
  }
}

}  // namespace
}  // namespace phoenix
