// Crash/restart/replay mechanics (§2.5, §4.4): state reconstruction from the
// log, duplicate answers after recovery, torn tails, the recovery service's
// durable registration table.

#include <gtest/gtest.h>

#include "recovery/recovery_service.h"
#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::ExecutionLog;
using phoenix::testing::RegisterTestComponents;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUpSim(RuntimeOptions opts = {}) {
    sim_ = std::make_unique<Simulation>(opts);
    RegisterTestComponents(sim_->factories());
    alpha_ = &sim_->AddMachine("alpha");
    server_ = &alpha_->CreateProcess();
    ExecutionLog::Reset();
  }

  Result<std::string> MakeCounter(const std::string& name = "c") {
    ExternalClient admin(sim_.get(), "alpha");
    return admin.CreateComponent(*server_, "Counter", name,
                                 ComponentKind::kPersistent, {});
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Process* server_ = nullptr;
};

TEST_F(RecoveryTest, StateSurvivesCrashViaReplay) {
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = MakeCounter();
  ASSERT_TRUE(uri.ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(i)).ok());
  }

  server_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());

  auto got = client.Call(*uri, "Get", {});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->AsInt(), 1 + 2 + 3 + 4 + 5);
}

TEST_F(RecoveryTest, ReplayReexecutesLoggedCalls) {
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = MakeCounter();
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(2)).ok());
  int before = ExecutionLog::Of("c.Add");

  server_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  // Redo recovery re-ran the method bodies.
  EXPECT_EQ(ExecutionLog::Of("c.Add"), before + 2);
}

TEST_F(RecoveryTest, UnforcedTailIsLost) {
  // A call whose records never reached the disk is simply gone after a
  // crash — that's exactly why sends force.
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = MakeCounter();
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(10)).ok());

  // Hand-deliver a call and kill the process before any force: build a
  // message that looks like it comes from a persistent client (no forced
  // Algorithm 3 path).
  CallMessage msg;
  msg.target_uri = *uri;
  msg.method = "Add";
  msg.args = MakeArgs(100);
  msg.has_call_id = true;
  msg.call_id = CallId{ClientKey{"ghost", 9, 9}, 1};
  msg.has_sender_info = true;
  msg.sender_kind = ComponentKind::kPersistent;
  ASSERT_TRUE(sim_->RouteCall("alpha", msg).ok());
  // The +100 is only in the buffer (message 1 unforced; no send-forced
  // reply: the reply force happened... (optimized mode forces on reply to
  // persistent client)). So instead kill before that force could happen:
  // inject at kBeforeReplySend on the *next* call.
  sim_->injector().AddTrigger("alpha", 1, FailurePoint::kBeforeReplySend, 1);
  CallMessage msg2 = msg;
  msg2.call_id.seq = 2;
  msg2.args = MakeArgs(1000);
  Result<ReplyMessage> r = sim_->RouteCall("alpha", msg2);
  EXPECT_FALSE(r.ok());  // server crashed mid-call
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());

  auto got = client.Call(*uri, "Get", {});
  ASSERT_TRUE(got.ok());
  // +10 was committed (reply to external forced); +100 was committed by its
  // reply force; +1000 died in the buffer.
  EXPECT_EQ(got->AsInt(), 110);
}

TEST_F(RecoveryTest, DuplicateAfterRecoveryAnsweredFromLog) {
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = MakeCounter();

  CallMessage msg;
  msg.target_uri = *uri;
  msg.method = "Add";
  msg.args = MakeArgs(42);
  msg.has_call_id = true;
  msg.call_id = CallId{ClientKey{"ghost", 9, 9}, 7};
  msg.has_sender_info = true;
  msg.sender_kind = ComponentKind::kPersistent;
  ASSERT_TRUE(sim_->RouteCall("alpha", msg).ok());

  server_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  int executions = ExecutionLog::Of("c.Add");

  // The "client" retries with the same ID; the recovered last-call table
  // must answer without re-executing.
  Result<ReplyMessage> dup = sim_->RouteCall("alpha", msg);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->value.AsInt(), 42);
  EXPECT_EQ(ExecutionLog::Of("c.Add"), executions);

  auto got = client.Call(*uri, "Get", {});
  EXPECT_EQ(got->AsInt(), 42);  // applied exactly once
}

TEST_F(RecoveryTest, RecoveryRestoresOutgoingSequence) {
  // After recovery the context's outgoing counter continues where it left
  // off (condition 2: IDs deterministically derived).
  SetUpSim();
  ExternalClient admin(sim_.get(), "alpha");
  Process& downstream_proc = alpha_->CreateProcess();
  auto counter = admin.CreateComponent(downstream_proc, "Counter", "leaf",
                                       ComponentKind::kPersistent, {});
  auto chain = admin.CreateComponent(*server_, "Chain", "mid",
                                     ComponentKind::kPersistent,
                                     MakeArgs(*counter));
  ASSERT_TRUE(admin.Call(*chain, "Bump", MakeArgs(1)).ok());
  ASSERT_TRUE(admin.Call(*chain, "Bump", MakeArgs(2)).ok());
  uint64_t seq_before =
      server_->FindContextOfComponent("mid")->last_outgoing_seq();

  server_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(server_->FindContextOfComponent("mid")->last_outgoing_seq(),
            seq_before);

  // And the next call gets a fresh ID that the downstream accepts.
  ASSERT_TRUE(admin.Call(*chain, "Bump", MakeArgs(3)).ok());
  EXPECT_EQ(admin.Call(*counter, "Get", {})->AsInt(), 6);
}

TEST_F(RecoveryTest, SubordinatesRecreatedByReplay) {
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  ExternalClient admin(sim_.get(), "alpha");
  auto parent = admin.CreateComponent(*server_, "ParentWithSub", "p",
                                      ComponentKind::kPersistent, {});
  ASSERT_TRUE(parent.ok());
  ASSERT_TRUE(client.Call(*parent, "BumpSub", MakeArgs(4)).ok());
  ASSERT_TRUE(client.Call(*parent, "BumpSub", MakeArgs(5)).ok());

  server_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());

  auto got = client.Call(*parent, "GetSub", {});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->AsInt(), 9);
}

TEST_F(RecoveryTest, MultipleCrashesAccumulateCorrectly) {
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = MakeCounter();
  int64_t expected = 0;
  for (int round = 0; round < 4; ++round) {
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(i)).ok());
      expected += i;
    }
    server_->Kill();
    ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  }
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), expected);
}

TEST_F(RecoveryTest, RecoveryServiceTableIsDurable) {
  SetUpSim();
  alpha_->CreateProcess();
  auto table = alpha_->recovery_service().ReadDurableTable();
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->size(), 2u);
  EXPECT_EQ((*table)[1], "alpha/proc1.log");
  EXPECT_EQ((*table)[2], "alpha/proc2.log");
}

TEST_F(RecoveryTest, EnsureAliveIsNoOpForLiveProcess) {
  SetUpSim();
  uint64_t recoveries = alpha_->recovery_service().recoveries_performed();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(alpha_->recovery_service().recoveries_performed(), recoveries);
  EXPECT_TRUE(
      alpha_->recovery_service().EnsureProcessAlive(99).IsNotFound());
}

TEST_F(RecoveryTest, TornTailIgnoredDuringRecovery) {
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = MakeCounter();
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(5)).ok());

  // Simulate a torn final write: chop bytes off the stable log.
  std::string log_name = server_->log_name();
  uint64_t size = sim_->storage().LogSize(log_name);
  server_->Kill();
  sim_->storage().TruncateLog(log_name, size - 3);

  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  // The component still exists; the +5's reply record was torn, but the
  // incoming record survived, so replay still applies it (or the client
  // retries) — state is 5 either way here because message 1 was forced.
  auto got = client.Call(*uri, "Get", {});
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->AsInt(), 5);
}

TEST_F(RecoveryTest, ClientRetryDrivesServerRestart) {
  // The caller's interceptor retries with the same ID until it gets a
  // response (condition 4), restarting the dead server along the way.
  SetUpSim();
  ExternalClient admin(sim_.get(), "alpha");
  Process& client_proc = alpha_->CreateProcess();
  auto counter = admin.CreateComponent(*server_, "Counter", "c",
                                       ComponentKind::kPersistent, {});
  auto chain = admin.CreateComponent(client_proc, "Chain", "driver",
                                     ComponentKind::kPersistent,
                                     MakeArgs(*counter));
  ASSERT_TRUE(chain.ok());

  server_->Kill();
  // Calling through the persistent driver transparently revives the server.
  auto r = admin.Call(*chain, "Bump", MakeArgs(5));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(server_->alive());
  EXPECT_EQ(admin.Call(*counter, "Get", {})->AsInt(), 5);
}

}  // namespace
}  // namespace phoenix
