// Real durability: with a persistence directory, stable storage mirrors
// to the filesystem, so Phoenix components survive restarts of the hosting
// OS process — rebuild the topology, run recovery, continue.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "recovery/recovery_service.h"
#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("phoenix_persist_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  SimulationParams Params() {
    SimulationParams params;
    params.persistence_dir = dir_.string();
    return params;
  }

  std::filesystem::path dir_;
};

TEST_F(PersistenceTest, LogsMirrorToDisk) {
  Simulation sim({}, Params());
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  Process& proc = alpha.CreateProcess();
  ExternalClient client(&sim, "alpha");
  auto uri = client.CreateComponent(proc, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(5)).ok());

  EXPECT_TRUE(std::filesystem::exists(dir_ / "alpha~proc1.log.log"));
  EXPECT_TRUE(
      std::filesystem::exists(dir_ / "alpha~.recovery_service.file"));
}

TEST_F(PersistenceTest, StateSurvivesSimulationRestart) {
  std::string uri;
  {
    Simulation sim({}, Params());
    RegisterTestComponents(sim.factories());
    Machine& alpha = sim.AddMachine("alpha");
    Process& proc = alpha.CreateProcess();
    ExternalClient client(&sim, "alpha");
    uri = client.CreateComponent(proc, "Counter", "c",
                                 ComponentKind::kPersistent, {})
              .value();
    for (int i = 1; i <= 4; ++i) {
      ASSERT_TRUE(client.Call(uri, "Add", MakeArgs(i)).ok());
    }
  }  // the whole "machine" goes away

  // A fresh simulation over the same directory: rebuild the topology with
  // the same names (logical identity), then recover the process from its
  // persisted log.
  Simulation sim({}, Params());
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  Process& proc = alpha.CreateProcess();
  proc.Kill();  // discard the blank start; recover from the durable log
  ASSERT_TRUE(alpha.recovery_service().EnsureProcessAlive(proc.pid()).ok());

  ExternalClient client(&sim, "alpha");
  auto got = client.Call(uri, "Get", {});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->AsInt(), 10);
  // And it keeps working.
  EXPECT_EQ(client.Call(uri, "Add", MakeArgs(1))->AsInt(), 11);
}

TEST_F(PersistenceTest, CheckpointAndGcSurviveRestart) {
  std::string uri;
  {
    RuntimeOptions opts;
    opts.save_context_state_every = 5;
    opts.process_checkpoint_every = 10;
    opts.auto_truncate_log = true;
    Simulation sim(opts, Params());
    RegisterTestComponents(sim.factories());
    Machine& alpha = sim.AddMachine("alpha");
    Process& proc = alpha.CreateProcess();
    ExternalClient client(&sim, "alpha");
    uri = client.CreateComponent(proc, "Counter", "c",
                                 ComponentKind::kPersistent, {})
              .value();
    for (int i = 0; i < 30; ++i) {
      ASSERT_TRUE(client.Call(uri, "Add", MakeArgs(1)).ok());
    }
    EXPECT_GT(proc.log().head_base(), 0u);  // GC ran
  }

  Simulation sim({}, Params());
  RegisterTestComponents(sim.factories());
  Machine& alpha = sim.AddMachine("alpha");
  Process& proc = alpha.CreateProcess();
  EXPECT_GT(proc.log().head_base(), 0u);  // base survived
  proc.Kill();
  ASSERT_TRUE(alpha.recovery_service().EnsureProcessAlive(proc.pid()).ok());
  ExternalClient client(&sim, "alpha");
  EXPECT_EQ(client.Call(uri, "Get", {})->AsInt(), 30);
}

TEST_F(PersistenceTest, FilesAreReplacedAndDeletedOnDisk) {
  Simulation sim({}, Params());
  sim.storage().WriteFile("some/file", {1, 2, 3});
  EXPECT_TRUE(std::filesystem::exists(dir_ / "some~file.file"));
  sim.storage().WriteFile("some/file", {9});
  EXPECT_EQ(std::filesystem::file_size(dir_ / "some~file.file"), 1u);
  sim.storage().DeleteFile("some/file");
  EXPECT_FALSE(std::filesystem::exists(dir_ / "some~file.file"));
}

TEST_F(PersistenceTest, InMemoryByDefault) {
  Simulation sim;  // no persistence dir
  EXPECT_FALSE(sim.storage().persistent());
  sim.storage().WriteFile("x", {1});
  EXPECT_FALSE(std::filesystem::exists(dir_ / "x.file"));
}

}  // namespace
}  // namespace phoenix
