#include "wal/log_record.h"

#include <gtest/gtest.h>

namespace phoenix {
namespace {

template <typename T>
T RoundTrip(const T& record) {
  Encoder enc;
  EncodeLogRecord(LogRecord(record), enc);
  Result<LogRecord> decoded = DecodeLogRecord(enc.buffer().data(), enc.size());
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  const T* out = std::get_if<T>(&decoded.value());
  EXPECT_NE(out, nullptr);
  return *out;
}

CallId TestCallId() {
  return CallId{ClientKey{"machineA", 3, 17}, 42};
}

TEST(LogRecordTest, IncomingCallRoundTrip) {
  IncomingCallRecord rec;
  rec.context_id = 5;
  rec.call_id = TestCallId();
  rec.method = "Add";
  rec.args = MakeArgs(int64_t{7}, "x");
  rec.client_kind = ComponentKind::kPersistent;

  IncomingCallRecord out = RoundTrip(rec);
  EXPECT_EQ(out.context_id, 5u);
  EXPECT_EQ(out.call_id, rec.call_id);
  EXPECT_EQ(out.method, "Add");
  EXPECT_EQ(out.args, rec.args);
  EXPECT_EQ(out.client_kind, ComponentKind::kPersistent);
}

TEST(LogRecordTest, ReplySentLongAndShort) {
  ReplySentRecord long_rec;
  long_rec.context_id = 2;
  long_rec.call_id = TestCallId();
  long_rec.long_form = true;
  long_rec.reply = Value("answer");
  long_rec.status_code = 0;
  ReplySentRecord out = RoundTrip(long_rec);
  EXPECT_TRUE(out.long_form);
  EXPECT_EQ(out.reply, Value("answer"));

  ReplySentRecord short_rec;
  short_rec.context_id = 2;
  short_rec.call_id = TestCallId();
  short_rec.long_form = false;
  short_rec.status_code = 4;
  ReplySentRecord out2 = RoundTrip(short_rec);
  EXPECT_FALSE(out2.long_form);
  EXPECT_TRUE(out2.reply.is_null());  // short records carry no content
  EXPECT_EQ(out2.status_code, 4);

  // A short record is genuinely smaller than a long one.
  Encoder enc_long, enc_short;
  EncodeLogRecord(LogRecord(long_rec), enc_long);
  EncodeLogRecord(LogRecord(short_rec), enc_short);
  EXPECT_LT(enc_short.size(), enc_long.size());
}

TEST(LogRecordTest, OutgoingCallRoundTrip) {
  OutgoingCallRecord rec;
  rec.context_id = 1;
  rec.call_id = TestCallId();
  rec.server_uri = "phx://b/1/counter";
  rec.method = "Add";
  rec.args = MakeArgs(int64_t{1});
  OutgoingCallRecord out = RoundTrip(rec);
  EXPECT_EQ(out.server_uri, rec.server_uri);
  EXPECT_EQ(out.call_id.seq, 42u);
}

TEST(LogRecordTest, ReplyReceivedRoundTrip) {
  ReplyReceivedRecord rec;
  rec.context_id = 9;
  rec.seq = 1234;
  rec.reply = Value(3.5);
  rec.status_code = 0;
  rec.server_kind = ComponentKind::kReadOnly;
  ReplyReceivedRecord out = RoundTrip(rec);
  EXPECT_EQ(out.seq, 1234u);
  EXPECT_EQ(out.server_kind, ComponentKind::kReadOnly);
  EXPECT_EQ(out.reply, Value(3.5));
}

TEST(LogRecordTest, CreationRoundTrip) {
  CreationRecord rec;
  rec.context_id = 4;
  rec.type_name = "Bookstore";
  rec.name = "store1";
  rec.kind = ComponentKind::kPersistent;
  rec.ctor_args = MakeArgs("Store-1");
  CreationRecord out = RoundTrip(rec);
  EXPECT_EQ(out.type_name, "Bookstore");
  EXPECT_EQ(out.name, "store1");
  EXPECT_EQ(out.ctor_args, rec.ctor_args);
}

TEST(LogRecordTest, ContextStateRoundTrip) {
  ContextStateRecord rec;
  rec.context_id = 6;
  rec.last_outgoing_seq = 77;
  ComponentSnapshot snap;
  snap.component_id = 6;
  snap.type_name = "Counter";
  snap.name = "c";
  snap.kind = ComponentKind::kPersistent;
  snap.fields.push_back(FieldSnapshot{"count", Value(int64_t{10}), false});
  snap.fields.push_back(
      FieldSnapshot{"peer", Value("phx://a/1/other"), true});
  rec.components.push_back(snap);
  rec.last_call_refs.push_back(LastCallRef{TestCallId(), 9001});

  ContextStateRecord out = RoundTrip(rec);
  EXPECT_EQ(out.last_outgoing_seq, 77u);
  ASSERT_EQ(out.components.size(), 1u);
  EXPECT_EQ(out.components[0].fields.size(), 2u);
  EXPECT_TRUE(out.components[0].fields[1].is_component_ref);
  ASSERT_EQ(out.last_call_refs.size(), 1u);
  EXPECT_EQ(out.last_call_refs[0].reply_lsn, 9001u);
}

TEST(LogRecordTest, CheckpointRecordsRoundTrip) {
  EXPECT_EQ(RecordTypeOf(LogRecord(BeginCheckpointRecord{})),
            LogRecordType::kBeginCheckpoint);

  CheckpointContextEntryRecord ctx_entry;
  ctx_entry.context_id = 3;
  ctx_entry.recovery_lsn = 555;
  ctx_entry.last_outgoing_seq = 12;
  auto ctx_out = RoundTrip(ctx_entry);
  EXPECT_EQ(ctx_out.recovery_lsn, 555u);

  CheckpointLastCallRecord lc;
  lc.context_id = 3;
  lc.call_id = TestCallId();
  lc.reply_lsn = kInvalidLsn;
  auto lc_out = RoundTrip(lc);
  EXPECT_EQ(lc_out.reply_lsn, kInvalidLsn);

  CheckpointRemoteTypeRecord rt;
  rt.uri = "phx://b/2/tax";
  rt.kind = ComponentKind::kFunctional;
  rt.type_name = "TaxCalculator";
  auto rt_out = RoundTrip(rt);
  EXPECT_EQ(rt_out.kind, ComponentKind::kFunctional);
  EXPECT_EQ(rt_out.type_name, "TaxCalculator");

  EndCheckpointRecord end;
  end.begin_lsn = 100;
  EXPECT_EQ(RoundTrip(end).begin_lsn, 100u);
}

TEST(LogRecordTest, LastCallReplyRoundTrip) {
  LastCallReplyRecord rec;
  rec.context_id = 8;
  rec.call_id = TestCallId();
  rec.reply = Value(MakeArgs(1, 2, 3));
  rec.status_code = 0;
  auto out = RoundTrip(rec);
  EXPECT_EQ(out.reply, rec.reply);
}

TEST(LogRecordTest, DecodeRejectsGarbage) {
  std::vector<uint8_t> garbage = {200, 1, 2, 3};
  EXPECT_TRUE(
      DecodeLogRecord(garbage.data(), garbage.size()).status().IsCorruption());
  EXPECT_TRUE(DecodeLogRecord(nullptr, 0).status().IsCorruption());
}

TEST(LogRecordTest, RecordTypeOfMatchesEncoding) {
  IncomingCallRecord rec;
  EXPECT_EQ(RecordTypeOf(LogRecord(rec)), LogRecordType::kIncomingCall);
  Encoder enc;
  EncodeLogRecord(LogRecord(rec), enc);
  EXPECT_EQ(enc.buffer()[0],
            static_cast<uint8_t>(LogRecordType::kIncomingCall));
}

}  // namespace
}  // namespace phoenix
