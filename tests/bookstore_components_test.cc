// Unit-level behavior of the individual bookstore components.

#include <gtest/gtest.h>

#include "bookstore/setup.h"

namespace phoenix::bookstore {
namespace {

class BookstoreComponentsTest : public ::testing::Test {
 protected:
  BookstoreComponentsTest() {
    sim_ = std::make_unique<Simulation>(
        OptionsForLevel(OptLevel::kSpecialized));
    RegisterBookstoreComponents(sim_->factories());
    server_ = &sim_->AddMachine("server");
    deployment_ = Deploy(*sim_, *server_, 2, OptLevel::kSpecialized).value();
    client_ = std::make_unique<ExternalClient>(sim_.get(), "server");
  }

  std::unique_ptr<Simulation> sim_;
  Machine* server_ = nullptr;
  Deployment deployment_;
  std::unique_ptr<ExternalClient> client_;
};

TEST_F(BookstoreComponentsTest, CatalogIsDeterministicPerLabel) {
  auto a1 = client_->Call(deployment_.store_uris[0], "Search",
                          MakeArgs("book"));
  auto a2 = client_->Call(deployment_.store_uris[0], "Search",
                          MakeArgs("book"));
  ASSERT_TRUE(a1.ok());
  EXPECT_EQ(*a1, *a2);
  // Different stores carry differently-priced editions.
  auto b = client_->Call(deployment_.store_uris[1], "Search",
                         MakeArgs("book"));
  EXPECT_NE(*a1, *b);
}

TEST_F(BookstoreComponentsTest, SearchMatchesSubstrings) {
  auto hits = client_->Call(deployment_.store_uris[0], "Search",
                            MakeArgs("recovery"));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->AsList().size(), 2u);  // two recovery titles per catalog
  auto none = client_->Call(deployment_.store_uris[0], "Search",
                            MakeArgs("no such topic"));
  EXPECT_TRUE(none->AsList().empty());
}

TEST_F(BookstoreComponentsTest, GetBookErrors) {
  EXPECT_TRUE(client_->Call(deployment_.store_uris[0], "GetBook",
                            MakeArgs(int64_t{999}))
                  .status()
                  .IsNotFound());
  EXPECT_EQ(client_->Call(deployment_.store_uris[0], "GetBook",
                          MakeArgs("one"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BookstoreComponentsTest, ReserveReleaseRoundTrip) {
  const std::string& store = deployment_.store_uris[0];
  auto before = client_->Call(store, "GetBook", MakeArgs(int64_t{1}));
  int64_t stock = before->AsList()[3].AsInt();

  ASSERT_TRUE(
      client_->Call(store, "Reserve", MakeArgs(int64_t{1}, int64_t{3})).ok());
  EXPECT_EQ(client_->Call(store, "GetBook", MakeArgs(int64_t{1}))
                ->AsList()[3]
                .AsInt(),
            stock - 3);
  ASSERT_TRUE(
      client_->Call(store, "Release", MakeArgs(int64_t{1}, int64_t{3})).ok());
  EXPECT_EQ(client_->Call(store, "GetBook", MakeArgs(int64_t{1}))
                ->AsList()[3]
                .AsInt(),
            stock);
  // Confirming a sale counts it without touching stock again.
  ASSERT_TRUE(client_->Call(store, "Reserve", MakeArgs(int64_t{1}, int64_t{1}))
                  .ok());
  ASSERT_TRUE(
      client_->Call(store, "ConfirmSale", MakeArgs(int64_t{1}, int64_t{1}))
          .ok());
  EXPECT_EQ(client_->Call(store, "TotalSold", {})->AsInt(), 1);
}

TEST_F(BookstoreComponentsTest, ReserveRespectsStock) {
  const std::string& store = deployment_.store_uris[0];
  auto too_many =
      client_->Call(store, "Reserve", MakeArgs(int64_t{1}, int64_t{1000}));
  EXPECT_EQ(too_many.status().code(), StatusCode::kFailedPrecondition);
  auto nonpositive =
      client_->Call(store, "Reserve", MakeArgs(int64_t{1}, int64_t{0}));
  EXPECT_EQ(nonpositive.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BookstoreComponentsTest, PriceGrabberAggregatesAllStores) {
  auto hits = client_->Call(deployment_.grabber_uri, "Search",
                            MakeArgs("recovery"));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->AsList().size(), 4u);  // 2 per store x 2 stores
  // Rows carry the store URI first.
  for (const Value& row : hits->AsList()) {
    EXPECT_TRUE(ParseComponentUri(row.AsList()[0].AsString()).ok());
  }
  EXPECT_TRUE(client_->Call(deployment_.grabber_uri, "BestPrice",
                            MakeArgs("no such topic"))
                  .status()
                  .IsNotFound());
}

TEST_F(BookstoreComponentsTest, SellerHandlesUnknownBuyerGracefully) {
  EXPECT_TRUE(client_->Call(deployment_.seller_uri, "ShowBasket",
                            MakeArgs("nobody"))
                  ->AsList()
                  .empty());
  EXPECT_DOUBLE_EQ(client_->Call(deployment_.seller_uri, "BasketSubtotal",
                                 MakeArgs("nobody"))
                       ->AsDouble(),
                   0.0);
  EXPECT_EQ(client_->Call(deployment_.seller_uri, "ClearBasket",
                          MakeArgs("nobody"))
                ->AsInt(),
            0);
  EXPECT_EQ(client_->Call(deployment_.seller_uri, "Checkout",
                          MakeArgs("nobody", "WA"))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(BookstoreComponentsTest, ClearBasketReleasesReservations) {
  const std::string& store = deployment_.store_uris[0];
  int64_t stock_before = client_->Call(store, "GetBook", MakeArgs(int64_t{1}))
                             ->AsList()[3]
                             .AsInt();
  ASSERT_TRUE(client_->Call(deployment_.seller_uri, "AddToBasket",
                            MakeArgs("eve", store, int64_t{1}))
                  .ok());
  EXPECT_EQ(client_->Call(store, "GetBook", MakeArgs(int64_t{1}))
                ->AsList()[3]
                .AsInt(),
            stock_before - 1);
  ASSERT_TRUE(client_->Call(deployment_.seller_uri, "ClearBasket",
                            MakeArgs("eve"))
                  .ok());
  EXPECT_EQ(client_->Call(store, "GetBook", MakeArgs(int64_t{1}))
                ->AsList()[3]
                .AsInt(),
            stock_before);
}

TEST_F(BookstoreComponentsTest, BasketsAreIsolatedPerBuyer) {
  ASSERT_TRUE(client_->Call(deployment_.seller_uri, "AddToBasket",
                            MakeArgs("u1", deployment_.store_uris[0],
                                     int64_t{1}))
                  .ok());
  ASSERT_TRUE(client_->Call(deployment_.seller_uri, "AddToBasket",
                            MakeArgs("u2", deployment_.store_uris[1],
                                     int64_t{2}))
                  .ok());
  EXPECT_EQ(client_->Call(deployment_.seller_uri, "ShowBasket",
                          MakeArgs("u1"))
                ->AsList()
                .size(),
            1u);
  EXPECT_EQ(client_->Call(deployment_.seller_uri, "ShowBasket",
                          MakeArgs("u2"))
                ->AsList()
                .size(),
            1u);
}

TEST_F(BookstoreComponentsTest, DeploymentKindsMatchFigure10) {
  Process& proc = *deployment_.server_process;
  EXPECT_EQ(proc.FindComponent("grabber")->instance->kind(),
            ComponentKind::kReadOnly);
  EXPECT_EQ(proc.FindComponent("tax")->instance->kind(),
            ComponentKind::kFunctional);
  EXPECT_EQ(proc.FindComponent("seller")->instance->kind(),
            ComponentKind::kPersistent);
  EXPECT_EQ(proc.FindComponent("store1")->instance->kind(),
            ComponentKind::kPersistent);
}

TEST_F(BookstoreComponentsTest, OptLevelNamesAndOptions) {
  EXPECT_STREQ(OptLevelName(OptLevel::kBaseline), "baseline");
  EXPECT_STREQ(OptLevelName(OptLevel::kSpecialized), "specialized");
  EXPECT_EQ(OptionsForLevel(OptLevel::kBaseline).logging_mode,
            LoggingMode::kBaseline);
  EXPECT_FALSE(
      OptionsForLevel(OptLevel::kOptimizedLogging).use_specialized_kinds);
  EXPECT_TRUE(OptionsForLevel(OptLevel::kSpecialized).use_specialized_kinds);
}

}  // namespace
}  // namespace phoenix::bookstore
