// Tracer: event ordering and span RAII on a bare SimClock, JSONL/Chrome
// export round-trips, dump-mode filtering, and whole-simulation determinism
// (two same-seed runs emit byte-identical traces and metrics snapshots).

#include "obs/tracer.h"

#include <gtest/gtest.h>

#include "obs/json.h"
#include "runtime/simulation.h"
#include "tests/test_components.h"

namespace phoenix::obs {
namespace {

TEST(TracerTest, DisabledTracerRecordsNothing) {
  SimClock clock;
  Tracer tracer(&clock);
  ASSERT_FALSE(tracer.enabled());
  tracer.Instant("log", "append", "ma/1", {Arg("lsn", uint64_t{1})});
  {
    Tracer::Span span = tracer.StartSpan("log", "force", "ma/1");
    span.AddArg(Arg("bytes", uint64_t{512}));
  }
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.ExportJsonl(), "");
}

TEST(TracerTest, EventsCarryClockTimeInOrder) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.set_enabled(true);

  tracer.Instant("call", "route", "ma/1");
  clock.AdvanceMs(2.5);
  {
    Tracer::Span span = tracer.StartSpan("log", "force", "ma/1",
                                         {Arg("bytes", uint64_t{512})});
    clock.AdvanceMs(7.5);
    span.AddArg(Arg("latency_ms", 7.5));
  }

  const auto& events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, TracePhase::kInstant);
  EXPECT_DOUBLE_EQ(events[0].ts_ms, 0.0);
  EXPECT_EQ(events[1].phase, TracePhase::kBegin);
  EXPECT_DOUBLE_EQ(events[1].ts_ms, 2.5);
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].key, "bytes");
  EXPECT_EQ(events[2].phase, TracePhase::kEnd);
  EXPECT_DOUBLE_EQ(events[2].ts_ms, 10.0);
  ASSERT_EQ(events[2].args.size(), 1u);
  EXPECT_EQ(events[2].args[0].key, "latency_ms");
  // Sim time never goes backwards within a trace.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ms, events[i - 1].ts_ms);
  }
}

TEST(TracerTest, SpanEndIsIdempotentAndMoveSafe) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.set_enabled(true);
  Tracer::Span a = tracer.StartSpan("t", "x", "c");
  Tracer::Span b = std::move(a);
  b.End();
  b.End();  // no double end event
  a.End();  // moved-from handle is inert
  EXPECT_EQ(tracer.events().size(), 2u);
}

TEST(TracerTest, JsonlRoundTripsThroughParser) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.set_enabled(true);
  // Escaped strings, nested linked spans and a linked instant all have to
  // survive the export -> parse round trip, including the causal ids.
  tracer.Instant("log", "append", "ma/1",
                 {Arg("lsn", uint64_t{7}), Arg("note", "quote\"back\\slash"),
                  Arg("ctl", std::string("tab\there\nand\x01nul"))});
  clock.AdvanceMs(1.0);
  {
    uint64_t trace = tracer.NewTraceId();
    Tracer::Span outer =
        tracer.StartSpan("call", "Buy", "driver", SpanLink{trace, 0});
    clock.AdvanceMs(1.0);
    {
      Tracer::Span inner =
          tracer.StartSpan("recovery", "redo", "mb/2", outer.link());
      tracer.Instant("intercept", "retry", "mb/2", inner.link());
      clock.AdvanceMs(1.0);
    }
  }

  std::string jsonl = tracer.ExportJsonl();
  auto parsed = ParseTraceJsonl(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), tracer.events().size());
  for (size_t i = 0; i < parsed->size(); ++i) {
    const TraceEvent& in = tracer.events()[i];
    const TraceEvent& out = (*parsed)[i];
    EXPECT_DOUBLE_EQ(out.ts_ms, in.ts_ms);
    EXPECT_EQ(out.phase, in.phase);
    EXPECT_EQ(out.category, in.category);
    EXPECT_EQ(out.name, in.name);
    EXPECT_EQ(out.component, in.component);
    EXPECT_EQ(out.trace_id, in.trace_id);
    EXPECT_EQ(out.span_id, in.span_id);
    EXPECT_EQ(out.parent_span_id, in.parent_span_id);
    ASSERT_EQ(out.args.size(), in.args.size());
    for (size_t k = 0; k < out.args.size(); ++k) {
      EXPECT_EQ(out.args[k].key, in.args[k].key);
      EXPECT_EQ(out.args[k].value, in.args[k].value);
    }
  }
  // The nesting is reflected in the ids: inner.parent == outer.span, both on
  // the same trace, and the instant hangs off the inner span.
  const auto& events = *parsed;
  ASSERT_EQ(events.size(), 6u);
  const TraceEvent& outer_b = events[1];
  const TraceEvent& inner_b = events[2];
  const TraceEvent& retry = events[3];
  ASSERT_NE(outer_b.span_id, 0u);
  EXPECT_EQ(outer_b.parent_span_id, 0u);
  EXPECT_EQ(inner_b.trace_id, outer_b.trace_id);
  EXPECT_EQ(inner_b.parent_span_id, outer_b.span_id);
  EXPECT_EQ(retry.parent_span_id, inner_b.span_id);
  EXPECT_EQ(retry.span_id, 0u);
}

TEST(TracerTest, FilterTraceByComponentCategoryAndTime) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.set_enabled(true);
  tracer.Instant("a", "e0", "ma/1");
  clock.AdvanceMs(10);
  tracer.Instant("b", "e1", "mb/1");
  clock.AdvanceMs(10);
  tracer.Instant("a", "e2", "ma/1");

  auto by_component = FilterTrace(tracer.events(), "ma/", "", 0,
                                  std::numeric_limits<double>::infinity());
  ASSERT_EQ(by_component.size(), 2u);
  EXPECT_EQ(by_component[0].name, "e0");
  EXPECT_EQ(by_component[1].name, "e2");

  auto by_time = FilterTrace(tracer.events(), "", "", 5.0, 15.0);
  ASSERT_EQ(by_time.size(), 1u);
  EXPECT_EQ(by_time[0].name, "e1");

  // Category matches exactly (no substring semantics).
  auto by_category = FilterTrace(tracer.events(), "", "b", 0,
                                 std::numeric_limits<double>::infinity());
  ASSERT_EQ(by_category.size(), 1u);
  EXPECT_EQ(by_category[0].name, "e1");
  EXPECT_TRUE(FilterTrace(tracer.events(), "", "ab", 0,
                          std::numeric_limits<double>::infinity())
                  .empty());

  // Filters compose: category + component together.
  auto combined = FilterTrace(tracer.events(), "mb/", "a", 0,
                              std::numeric_limits<double>::infinity());
  EXPECT_TRUE(combined.empty());
}

TEST(TracerTest, FlightRecorderKeepsLastEventsPerComponent) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.EnableFlightRecorder(3);
  // The recorder alone turns instrumentation on, but the full in-memory
  // trace stays empty.
  EXPECT_TRUE(tracer.enabled());
  for (int i = 0; i < 10; ++i) {
    clock.AdvanceMs(1);
    tracer.Instant("log", "append", "ma/1", {Arg("i", int64_t{i})});
  }
  tracer.Instant("log", "append", "mb/1", {Arg("i", int64_t{99})});
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.ExportJsonl(), "");

  auto dumped = ParseTraceJsonl(tracer.ExportFlightRecorder());
  ASSERT_TRUE(dumped.ok()) << dumped.status().ToString();
  // ma/1 kept its last 3 of 10; mb/1 kept its only event.
  ASSERT_EQ(dumped->size(), 4u);
  size_t ma_count = 0;
  for (const TraceEvent& ev : *dumped) {
    if (ev.component == "ma/1") {
      ++ma_count;
      EXPECT_GE(ev.ts_ms, 8.0);  // events 0..6 were evicted
    }
  }
  EXPECT_EQ(ma_count, 3u);
  // Global record order survives the per-component rings.
  for (size_t i = 1; i < dumped->size(); ++i) {
    EXPECT_GE((*dumped)[i].ts_ms, (*dumped)[i - 1].ts_ms);
  }
}

TEST(TracerTest, ChromeTraceIsValidJson) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.set_enabled(true);
  tracer.Instant("log", "append", "ma/1", {Arg("lsn", uint64_t{1})});
  { Tracer::Span span = tracer.StartSpan("log", "force", "ma/1"); }

  auto parsed = ParseJson(tracer.ExportChromeTrace());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  // At least our three events (metadata rows are allowed on top).
  EXPECT_GE(events->AsArray().size(), 3u);
}

// Runs a small workload — calls, a crash, a recovery — on a traced
// Simulation and returns its observability surface.
struct TracedRun {
  std::string jsonl;
  std::string chrome;
  std::string metrics;
};

TracedRun RunTracedWorkload() {
  SimulationParams params;
  params.trace_enabled = true;
  Simulation sim({}, params);
  phoenix::testing::RegisterTestComponents(sim.factories());
  Machine& ma = sim.AddMachine("ma");
  Process& proc = ma.CreateProcess();
  ExternalClient client(&sim, "ma");
  auto counter = client.CreateComponent(proc, "Counter", "ctr",
                                        ComponentKind::kPersistent, {});
  EXPECT_TRUE(counter.ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(client.Call(*counter, "Add", MakeArgs(int64_t{1})).ok());
  }
  proc.Kill();
  EXPECT_TRUE(ma.recovery_service().EnsureProcessAlive(proc.pid()).ok());
  EXPECT_EQ(client.Call(*counter, "Get", {}).value().AsInt(), 20);

  TracedRun run;
  run.jsonl = sim.tracer().ExportJsonl();
  run.chrome = sim.tracer().ExportChromeTrace();
  JsonWriter w;
  sim.metrics().WriteJson(w);
  run.metrics = w.str();
  return run;
}

TEST(TracerDeterminismTest, SameSeedRunsAreByteIdentical) {
  TracedRun a = RunTracedWorkload();
  TracedRun b = RunTracedWorkload();
  EXPECT_FALSE(a.jsonl.empty());
  EXPECT_EQ(a.jsonl, b.jsonl);
  EXPECT_EQ(a.chrome, b.chrome);
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST(TracerDeterminismTest, WorkloadTraceCoversTheSubsystems) {
  TracedRun run = RunTracedWorkload();
  auto events = ParseTraceJsonl(run.jsonl);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  bool saw_log = false, saw_intercept = false, saw_recovery = false,
       saw_crash = false;
  for (const TraceEvent& ev : *events) {
    if (ev.category == "log") saw_log = true;
    if (ev.category == "intercept") saw_intercept = true;
    if (ev.category == "recovery") saw_recovery = true;
    if (ev.category == "process" && ev.name == "crash") saw_crash = true;
  }
  EXPECT_TRUE(saw_log);
  EXPECT_TRUE(saw_intercept);
  EXPECT_TRUE(saw_recovery);
  EXPECT_TRUE(saw_crash);
}

TEST(TracerDeterminismTest, FlightRecorderDumpIsByteIdentical) {
  auto run = []() {
    SimulationParams params;
    params.flight_recorder_events = 64;
    Simulation sim({}, params);
    phoenix::testing::RegisterTestComponents(sim.factories());
    Machine& ma = sim.AddMachine("ma");
    Process& proc = ma.CreateProcess();
    ExternalClient client(&sim, "ma");
    auto counter = client.CreateComponent(proc, "Counter", "ctr",
                                          ComponentKind::kPersistent, {});
    EXPECT_TRUE(counter.ok());
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(client.Call(*counter, "Add", MakeArgs(int64_t{1})).ok());
    }
    proc.Kill();
    return sim.tracer().ExportFlightRecorder();
  };
  std::string a = run();
  std::string b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // The ring captured the crash itself.
  EXPECT_NE(a.find("\"crash\""), std::string::npos);
}

// Instrumentation must not alter the simulation: same workload with the
// tracer off / fully on / flight-recorder-only, identical sim time and
// metrics.
TEST(TracerDeterminismTest, TracingDoesNotPerturbTheRun) {
  auto run = [](bool trace, size_t flight_events = 0) {
    SimulationParams params;
    params.trace_enabled = trace;
    params.flight_recorder_events = flight_events;
    Simulation sim({}, params);
    phoenix::testing::RegisterTestComponents(sim.factories());
    Machine& ma = sim.AddMachine("ma");
    Process& proc = ma.CreateProcess();
    ExternalClient client(&sim, "ma");
    auto counter = client.CreateComponent(proc, "Counter", "ctr",
                                          ComponentKind::kPersistent, {});
    EXPECT_TRUE(counter.ok());
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(client.Call(*counter, "Add", MakeArgs(int64_t{1})).ok());
    }
    JsonWriter w;
    sim.metrics().WriteJson(w);
    return std::make_pair(sim.clock().NowMs(), w.str());
  };
  auto traced = run(true);
  auto untraced = run(false);
  auto flight_only = run(false, 32);
  EXPECT_DOUBLE_EQ(traced.first, untraced.first);
  EXPECT_EQ(traced.second, untraced.second);
  EXPECT_DOUBLE_EQ(flight_only.first, untraced.first);
  EXPECT_EQ(flight_only.second, untraced.second);
}

}  // namespace
}  // namespace phoenix::obs
