// BenchReporter: the phoenix.bench.v1 schema round-trips through the JSON
// parser, variants keep insertion order, and WriteFile emits exactly ToJson.

#include "obs/bench_reporter.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace phoenix::obs {
namespace {

void Populate(BenchReporter& reporter) {
  BenchVariant& baseline = reporter.AddVariant("baseline");
  baseline.SetMetric("forces", uint64_t{928});
  baseline.SetMetric("appends", uint64_t{1392});
  baseline.SetMetric("bytes_forced", uint64_t{123456});
  baseline.SetMetric("per_call_ms", 36.5);
  Histogram h;
  for (int i = 0; i < 50; ++i) h.Record(2.0);
  baseline.SetLatency(h);

  BenchVariant& optimized = reporter.AddVariant("optimized");
  optimized.SetMetric("forces", uint64_t{464});
  optimized.SetLatency(LatencySummary{
      .count = 50, .mean = 1, .p50 = 1, .p95 = 1, .p99 = 1, .min = 1,
      .max = 1});
}

TEST(BenchReporterTest, SchemaRoundTrip) {
  BenchReporter reporter("unit_test_bench");
  Populate(reporter);
  auto parsed = ParseJson(reporter.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  const JsonValue* schema = parsed->Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->AsString(), kBenchSchema);
  const JsonValue* bench = parsed->Find("bench");
  ASSERT_NE(bench, nullptr);
  EXPECT_EQ(bench->AsString(), "unit_test_bench");

  const JsonValue* variants = parsed->Find("variants");
  ASSERT_NE(variants, nullptr);
  ASSERT_EQ(variants->AsArray().size(), 2u);

  // Insertion order is preserved.
  const JsonValue& v0 = variants->AsArray()[0];
  EXPECT_EQ(v0.Find("name")->AsString(), "baseline");
  const JsonValue* metrics = v0.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(metrics->Find("forces")->AsNumber(), 928);
  EXPECT_DOUBLE_EQ(metrics->Find("appends")->AsNumber(), 1392);
  EXPECT_DOUBLE_EQ(metrics->Find("bytes_forced")->AsNumber(), 123456);
  EXPECT_DOUBLE_EQ(metrics->Find("per_call_ms")->AsNumber(), 36.5);

  const JsonValue* latency = v0.Find("latency_ms");
  ASSERT_NE(latency, nullptr);
  EXPECT_DOUBLE_EQ(latency->Find("count")->AsNumber(), 50);
  EXPECT_DOUBLE_EQ(latency->Find("mean")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(latency->Find("p50")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(latency->Find("p95")->AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(latency->Find("p99")->AsNumber(), 2.0);

  const JsonValue& v1 = variants->AsArray()[1];
  EXPECT_EQ(v1.Find("name")->AsString(), "optimized");
  EXPECT_DOUBLE_EQ(v1.Find("metrics")->Find("forces")->AsNumber(), 464);
}

TEST(BenchReporterTest, ToJsonIsDeterministic) {
  BenchReporter a("unit_test_bench");
  Populate(a);
  BenchReporter b("unit_test_bench");
  Populate(b);
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

TEST(BenchReporterTest, WriteFileMatchesToJson) {
  BenchReporter reporter("unit_test_bench");
  Populate(reporter);
  std::string path =
      ::testing::TempDir() + "/BENCH_bench_reporter_test_roundtrip.json";
  auto written = reporter.WriteFile(path);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(*written, path);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), reporter.ToJson());
  std::remove(path.c_str());
}

TEST(BenchReporterTest, DefaultPathUsesBenchName) {
  BenchReporter reporter("naming_check");
  // Point the default at a writable spot by passing the path explicitly;
  // here we only check the naming contract of the empty-path overload by
  // writing into the current directory.
  auto written = reporter.WriteFile();
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(*written, "BENCH_naming_check.json");
  std::ifstream in(*written, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  auto parsed = ParseJson(content.str());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("bench")->AsString(), "naming_check");
  std::remove(written->c_str());
}

TEST(BenchVariantTest, MetricsSortedByName) {
  BenchReporter reporter("order");
  BenchVariant& v = reporter.AddVariant("v");
  v.SetMetric("zeta", uint64_t{1});
  v.SetMetric("alpha", uint64_t{2});
  auto parsed = ParseJson(reporter.ToJson());
  ASSERT_TRUE(parsed.ok());
  const JsonValue* metrics =
      parsed->Find("variants")->AsArray()[0].Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->AsObject().size(), 2u);
  EXPECT_EQ(metrics->AsObject()[0].first, "alpha");
  EXPECT_EQ(metrics->AsObject()[1].first, "zeta");
}

}  // namespace
}  // namespace phoenix::obs
