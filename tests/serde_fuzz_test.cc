// Property/fuzz sweeps over the codec and the log-record formats: random
// values round-trip exactly; random truncation and corruption are always
// reported as kCorruption, never crash or mis-decode silently past a CRC.

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/random.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"

namespace phoenix {
namespace {

Value RandomValue(Random& rng, int depth) {
  switch (rng.Uniform(depth > 2 ? 6 : 7)) {
    case 0:
      return Value();
    case 1:
      return Value(rng.Bernoulli(0.5));
    case 2:
      return Value(static_cast<int64_t>(rng.Next()));
    case 3:
      return Value(rng.NextDouble() * 1e6 - 5e5);
    case 4: {
      std::string s;
      for (uint64_t i = 0, n = rng.Uniform(20); i < n; ++i) {
        s.push_back(static_cast<char>('a' + rng.Uniform(26)));
      }
      return Value(std::move(s));
    }
    case 5: {
      Value::Bytes b;
      for (uint64_t i = 0, n = rng.Uniform(16); i < n; ++i) {
        b.data.push_back(static_cast<uint8_t>(rng.Next()));
      }
      return Value(std::move(b));
    }
    default: {
      Value::List list;
      for (uint64_t i = 0, n = rng.Uniform(5); i < n; ++i) {
        list.push_back(RandomValue(rng, depth + 1));
      }
      return Value(std::move(list));
    }
  }
}

class ValueFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValueFuzzTest, RandomValuesRoundTrip) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Value v = RandomValue(rng, 0);
    Encoder enc;
    enc.PutValue(v);
    Decoder dec(enc.buffer());
    Result<Value> out = dec.GetValue();
    ASSERT_TRUE(out.ok()) << v.ToString();
    EXPECT_EQ(*out, v);
    EXPECT_TRUE(dec.exhausted());
  }
}

TEST_P(ValueFuzzTest, TruncationNeverCrashes) {
  Random rng(GetParam() * 31 + 7);
  for (int i = 0; i < 100; ++i) {
    Value v = RandomValue(rng, 0);
    Encoder enc;
    enc.PutValue(v);
    for (size_t cut = 0; cut < enc.size(); cut += 1 + rng.Uniform(3)) {
      Decoder dec(enc.buffer().data(), cut);
      Result<Value> out = dec.GetValue();
      // Either a clean decode of a prefix-complete value (possible when the
      // cut lands exactly after a value) or corruption — never a crash.
      if (!out.ok()) {
        EXPECT_TRUE(out.status().IsCorruption());
      }
    }
  }
}

TEST_P(ValueFuzzTest, RandomRecordsRoundTripThroughFrames) {
  Random rng(GetParam() * 97 + 3);
  for (int i = 0; i < 60; ++i) {
    IncomingCallRecord rec;
    rec.context_id = rng.Uniform(1000);
    rec.call_id = CallId{
        ClientKey{"m" + std::to_string(rng.Uniform(3)),
                  static_cast<uint32_t>(rng.Uniform(9)), rng.Uniform(50)},
        rng.Next() % 100000};
    rec.method = "method" + std::to_string(rng.Uniform(10));
    for (uint64_t k = 0, n = rng.Uniform(6); k < n; ++k) {
      rec.args.push_back(RandomValue(rng, 1));
    }
    rec.client_kind = static_cast<ComponentKind>(rng.Uniform(5));

    Encoder enc;
    EncodeLogRecord(LogRecord(rec), enc);
    Result<LogRecord> out = DecodeLogRecord(enc.buffer().data(), enc.size());
    ASSERT_TRUE(out.ok());
    const auto* decoded = std::get_if<IncomingCallRecord>(&*out);
    ASSERT_NE(decoded, nullptr);
    EXPECT_EQ(decoded->call_id, rec.call_id);
    EXPECT_EQ(decoded->args, rec.args);
    EXPECT_EQ(decoded->client_kind, rec.client_kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(LogCorruptionFuzzTest, BitFlipsNeverPassTheCrc) {
  Random rng(4242);
  // Build a log of several frames, then flip one bit anywhere and verify
  // the reader stops at or before the flipped frame — never returns
  // corrupted payload bytes as a valid record.
  std::vector<uint8_t> log;
  std::vector<uint64_t> frame_starts;
  for (int i = 0; i < 10; ++i) {
    IncomingCallRecord rec;
    rec.context_id = i;
    rec.method = "m" + std::to_string(i);
    Encoder enc;
    EncodeLogRecord(LogRecord(rec), enc);
    frame_starts.push_back(log.size());
    uint32_t len = static_cast<uint32_t>(enc.size());
    uint32_t crc = Crc32c(enc.buffer().data(), enc.size());
    for (int b = 0; b < 4; ++b) log.push_back(static_cast<uint8_t>(len >> (8 * b)));
    for (int b = 0; b < 4; ++b) log.push_back(static_cast<uint8_t>(crc >> (8 * b)));
    log.insert(log.end(), enc.buffer().begin(), enc.buffer().end());
  }

  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> mutated = log;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
    // Which frame did the flip land in?
    size_t flipped_frame = 0;
    while (flipped_frame + 1 < frame_starts.size() &&
           frame_starts[flipped_frame + 1] <= pos) {
      ++flipped_frame;
    }

    LogReader reader(mutated, 0);
    size_t index = 0;
    while (auto rec = reader.Next()) {
      // Every record returned must be an intact original, in order.
      const auto* in = std::get_if<IncomingCallRecord>(&rec->record);
      ASSERT_NE(in, nullptr);
      ASSERT_EQ(in->context_id, index);
      ++index;
    }
    // The scan stops exactly at the flipped frame.
    EXPECT_EQ(index, flipped_frame) << "flip at byte " << pos;
    EXPECT_TRUE(reader.tail_torn());
  }
}

}  // namespace
}  // namespace phoenix
