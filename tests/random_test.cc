#include "common/random.h"

#include <gtest/gtest.h>

namespace phoenix {
namespace {

TEST(RandomTest, DeterministicForSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, UniformWithinBounds) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.Uniform(10), 10u);
}

TEST(RandomTest, UniformRangeInclusive) {
  Random r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = r.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(9);
  double sum = 0;
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.05);  // roughly uniform
}

TEST(RandomTest, BernoulliExtremes) {
  Random r(11);
  EXPECT_FALSE(r.Bernoulli(0.0));
  EXPECT_TRUE(r.Bernoulli(1.0));
  int heads = 0;
  for (int i = 0; i < 1000; ++i) heads += r.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(heads, 250, 60);
}

}  // namespace
}  // namespace phoenix
