#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace phoenix {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Crashed("x").code(), StatusCode::kCrashed);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, Predicates) {
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_TRUE(Status::Unavailable("").IsUnavailable());
  EXPECT_TRUE(Status::Crashed("").IsCrashed());
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_FALSE(Status().IsNotFound());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::Unavailable("server down").ToString(),
            "unavailable: server down");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  for (int c = 0; c <= 10; ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = []() -> Result<int> { return Status::Unavailable("nope"); };
  auto outer = [&]() -> Status {
    PHX_ASSIGN_OR_RETURN(int v, inner());
    (void)v;
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsUnavailable());
}

TEST(ResultTest, ReturnIfErrorMacro) {
  auto fn = [](Status in) -> Status {
    PHX_RETURN_IF_ERROR(in);
    return Status::Internal("reached end");
  };
  EXPECT_TRUE(fn(Status::NotFound("x")).IsNotFound());
  EXPECT_EQ(fn(Status::OK()).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace phoenix
