#include "sim/disk_model.h"

#include <gtest/gtest.h>

#include "sim/sim_clock.h"

namespace phoenix {
namespace {

constexpr double kRotation = 60000.0 / 7200.0;  // 8.333 ms

TEST(DiskModelTest, BackToBackWritesMissAFullRotation) {
  // Figure 9 / Section 5.2.2: sequential unbuffered writes issued
  // immediately after one another wait nearly a full rotation.
  DiskModel disk(DiskParams{}, 1);
  SimClock clock;
  double total = 0;
  const int kWrites = 200;
  for (int i = 0; i < kWrites; ++i) {
    double lat = disk.WriteLatencyMs(clock.NowMs(), 1024);
    clock.AdvanceMs(lat + 0.05);  // tiny CPU gap, like the paper's loop
    total += lat + 0.05;
  }
  double per_write = total / kWrites;
  EXPECT_GT(per_write, kRotation);        // misses the rotation
  EXPECT_LT(per_write, kRotation + 1.0);  // ~8.5 ms, not 2 rotations
}

TEST(DiskModelTest, StaircaseInRotationSteps) {
  // Inserting delay d after each write keeps elapsed-per-iteration at
  // ceil((d + write) / rotation) rotations — Figure 9's staircase.
  auto elapsed_for_delay = [](double delay) {
    DiskModel disk(DiskParams{}, 2);
    SimClock clock;
    double total = 0;
    for (int i = 0; i < 100; ++i) {
      double lat = disk.WriteLatencyMs(clock.NowMs(), 1024);
      clock.AdvanceMs(lat + delay);
      total += lat + delay;
    }
    return total / 100;
  };
  double e0 = elapsed_for_delay(0.0);
  double e4 = elapsed_for_delay(4.0);   // same step
  double e10 = elapsed_for_delay(10.0);  // one step up
  double e20 = elapsed_for_delay(20.0);  // two steps up
  EXPECT_NEAR(e0, e4, 1.0);
  EXPECT_NEAR(e10 - e0, kRotation, 1.2);
  EXPECT_NEAR(e20 - e0, 2 * kRotation, 1.2);
}

TEST(DiskModelTest, SpacedWritesSeeAverageHalfRotation) {
  // When writes arrive at uncorrelated times the rotational wait averages
  // about half a rotation (the paper's remote-case explanation: 4.17 ms +
  // small seeks).
  DiskModel disk(DiskParams{}, 3);
  Random jitter(99);
  SimClock clock;
  double total_latency = 0;
  const int kWrites = 500;
  for (int i = 0; i < kWrites; ++i) {
    clock.AdvanceMs(5.0 + jitter.NextDouble() * 13.7);  // uncorrelated gaps
    total_latency += disk.WriteLatencyMs(clock.NowMs(), 512);
  }
  double avg = total_latency / kWrites;
  EXPECT_GT(avg, 0.30 * kRotation);
  EXPECT_LT(avg, 0.75 * kRotation);
}

TEST(DiskModelTest, WriteCacheRemovesRotationalCost) {
  DiskParams params;
  params.write_cache_enabled = true;
  DiskModel disk(params, 4);
  SimClock clock;
  for (int i = 0; i < 10; ++i) {
    double lat = disk.WriteLatencyMs(clock.NowMs(), 1024);
    EXPECT_LT(lat, 1.0);  // controller ack, no media wait
    clock.AdvanceMs(lat);
  }
}

TEST(DiskModelTest, StatisticsAccumulate) {
  DiskModel disk(DiskParams{}, 5);
  SimClock clock;
  disk.WriteLatencyMs(0.0, 100);
  disk.WriteLatencyMs(10.0, 200);
  EXPECT_EQ(disk.total_writes(), 2u);
  EXPECT_EQ(disk.total_bytes(), 300u);
  EXPECT_GT(disk.total_media_time_ms(), 0.0);
}

TEST(DiskModelTest, TrackCrossingAddsSeek) {
  DiskParams params;
  params.track_capacity_bytes = 4096;
  DiskModel disk(params, 6);
  // Writing more than a track's worth forces at least one track-to-track
  // seek; just verify it doesn't blow up and time keeps accumulating.
  double now = 0;
  for (int i = 0; i < 10; ++i) {
    now += disk.WriteLatencyMs(now, 1024);
  }
  EXPECT_GT(disk.total_media_time_ms(), 0.0);
}

}  // namespace
}  // namespace phoenix
