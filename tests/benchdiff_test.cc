// benchdiff: direction-aware cross-run classification, tolerance bands,
// alignment of new/removed metrics and variants, SLO budgets, the history
// ledger, and byte-determinism of the phoenix.benchdiff.v1 report.

#include "obs/benchdiff.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/bench_reporter.h"

namespace phoenix::obs {
namespace {

ParsedReport MakeReport(const std::string& bench,
                        const std::vector<ParsedVariant>& variants) {
  ParsedReport report;
  report.bench = bench;
  report.schema = kBenchSchema;
  report.variants = variants;
  return report;
}

const MetricDelta* FindDelta(const BenchDiff& diff, const std::string& bench,
                             const std::string& variant,
                             const std::string& metric) {
  for (const BenchDiffEntry& b : diff.benches) {
    if (b.bench != bench) continue;
    for (const VariantDiff& v : b.variants) {
      if (v.name != variant) continue;
      for (const MetricDelta& d : v.metrics) {
        if (d.metric == metric) return &d;
      }
    }
  }
  return nullptr;
}

TEST(ClassifyDeltaTest, DirectionDecidesImprovementVsRegression) {
  ToleranceBand exact;
  // Lower-is-better (recovery_ms-like): shrinking is the win.
  EXPECT_EQ(ClassifyDelta(100, 90, MetricDirection::kLowerIsBetter, exact),
            DeltaClass::kImprovement);
  EXPECT_EQ(ClassifyDelta(100, 110, MetricDirection::kLowerIsBetter, exact),
            DeltaClass::kRegression);
  // Higher-is-better (speedup-like): the same deltas flip class.
  EXPECT_EQ(ClassifyDelta(100, 90, MetricDirection::kHigherIsBetter, exact),
            DeltaClass::kRegression);
  EXPECT_EQ(ClassifyDelta(100, 110, MetricDirection::kHigherIsBetter, exact),
            DeltaClass::kImprovement);
  // Informational never classifies.
  EXPECT_EQ(ClassifyDelta(100, 1e9, MetricDirection::kInformational, exact),
            DeltaClass::kNeutral);
  // Equal values are neutral even with a zero-width band.
  EXPECT_EQ(ClassifyDelta(100, 100, MetricDirection::kLowerIsBetter, exact),
            DeltaClass::kNeutral);
}

TEST(ClassifyDeltaTest, ToleranceBandEdges) {
  // Relative band: 5% of |baseline| = 5. Exactly at the edge is neutral,
  // one ulp-ish beyond classifies.
  ToleranceBand rel{.abs = 0, .rel = 0.05};
  EXPECT_EQ(ClassifyDelta(100, 105, MetricDirection::kLowerIsBetter, rel),
            DeltaClass::kNeutral);
  EXPECT_EQ(ClassifyDelta(100, 105.001, MetricDirection::kLowerIsBetter, rel),
            DeltaClass::kRegression);
  EXPECT_EQ(ClassifyDelta(100, 95, MetricDirection::kLowerIsBetter, rel),
            DeltaClass::kNeutral);
  EXPECT_EQ(ClassifyDelta(100, 94.999, MetricDirection::kLowerIsBetter, rel),
            DeltaClass::kImprovement);
  // Absolute band wins when wider than the relative one.
  ToleranceBand abs{.abs = 10, .rel = 0.01};
  EXPECT_EQ(ClassifyDelta(100, 110, MetricDirection::kLowerIsBetter, abs),
            DeltaClass::kNeutral);
  EXPECT_EQ(ClassifyDelta(100, 110.5, MetricDirection::kLowerIsBetter, abs),
            DeltaClass::kRegression);
  // Relative band around a negative baseline uses |baseline|.
  EXPECT_EQ(ClassifyDelta(-100, -95, MetricDirection::kLowerIsBetter, rel),
            DeltaClass::kNeutral);
  // Zero baseline: relative band collapses, any delta classifies.
  EXPECT_EQ(ClassifyDelta(0, 0.001, MetricDirection::kLowerIsBetter, rel),
            DeltaClass::kRegression);
}

TEST(BenchDiffTest, ClassifiesByMetaDirection) {
  ParsedVariant base{"v", {{"recovery_ms", 2000.0},
                           {"speedup_vs_sequential", 1.5},
                           {"sessions", 8.0}}};
  ParsedVariant cand{"v", {{"recovery_ms", 1800.0},
                           {"speedup_vs_sequential", 1.2},
                           {"sessions", 16.0}}};
  BenchDiff diff = DiffBenchReports({MakeReport("t7", {base})},
                                    {MakeReport("t7", {cand})}, DiffOptions{});
  EXPECT_EQ(FindDelta(diff, "t7", "v", "recovery_ms")->cls,
            DeltaClass::kImprovement);
  EXPECT_EQ(FindDelta(diff, "t7", "v", "speedup_vs_sequential")->cls,
            DeltaClass::kRegression);
  // Workload descriptor: doubling the session count is not a regression.
  EXPECT_EQ(FindDelta(diff, "t7", "v", "sessions")->cls, DeltaClass::kNeutral);
  EXPECT_EQ(diff.improvements, 1u);
  EXPECT_EQ(diff.regressions, 1u);
  EXPECT_EQ(diff.neutral, 1u);
  EXPECT_TRUE(diff.GateFails());
}

TEST(BenchDiffTest, ReportMetaOverridesBuiltInTable) {
  // A bench can declare a custom direction for a name the built-in table
  // also knows; the report meta wins.
  ParsedReport base = MakeReport("b", {{"v", {{"recovery_ms", 100.0}}}});
  ParsedReport cand = MakeReport("b", {{"v", {{"recovery_ms", 200.0}}}});
  cand.meta["recovery_ms"] =
      MetricMeta{"ms", MetricDirection::kHigherIsBetter};
  BenchDiff diff = DiffBenchReports({base}, {cand}, DiffOptions{});
  EXPECT_EQ(FindDelta(diff, "b", "v", "recovery_ms")->cls,
            DeltaClass::kImprovement);
}

TEST(BenchDiffTest, NewAndRemovedMetricsVariantsBenches) {
  ParsedReport base = MakeReport(
      "b", {{"kept", {{"forces", 10.0}, {"old_metric", 1.0}}},
            {"dropped", {{"forces", 5.0}}}});
  ParsedReport cand = MakeReport(
      "b", {{"kept", {{"forces", 10.0}, {"fresh_metric", 2.0}}},
            {"added", {{"forces", 7.0}}}});
  ParsedReport cand_only = MakeReport("new_bench", {{"v", {{"runs", 3.0}}}});
  BenchDiff diff =
      DiffBenchReports({base}, {cand, cand_only}, DiffOptions{});

  EXPECT_EQ(FindDelta(diff, "b", "kept", "old_metric")->cls,
            DeltaClass::kRemoved);
  EXPECT_EQ(FindDelta(diff, "b", "kept", "fresh_metric")->cls,
            DeltaClass::kNew);
  EXPECT_EQ(FindDelta(diff, "b", "kept", "forces")->cls, DeltaClass::kNeutral);
  // Whole variants and whole benches surface as new/removed too.
  const BenchDiffEntry* b = &diff.benches[0];
  ASSERT_EQ(b->bench, "b");
  bool saw_dropped = false, saw_added = false;
  for (const VariantDiff& v : b->variants) {
    if (v.name == "dropped") {
      saw_dropped = true;
      EXPECT_EQ(v.cls, DeltaClass::kRemoved);
    }
    if (v.name == "added") {
      saw_added = true;
      EXPECT_EQ(v.cls, DeltaClass::kNew);
    }
  }
  EXPECT_TRUE(saw_dropped);
  EXPECT_TRUE(saw_added);
  ASSERT_EQ(diff.benches.size(), 2u);
  EXPECT_EQ(diff.benches[1].bench, "new_bench");
  EXPECT_EQ(diff.benches[1].cls, DeltaClass::kNew);
  // new: fresh_metric + added/forces + new_bench/v/runs; removed:
  // old_metric + dropped/forces. Structure changes never fail the gate.
  EXPECT_EQ(diff.added, 3u);
  EXPECT_EQ(diff.removed, 2u);
  EXPECT_FALSE(diff.GateFails());
}

TEST(BenchDiffTest, MissingBaselineDirIsAnError) {
  auto missing = LoadBenchReportDir("/nonexistent/benchdiff_baselines");
  EXPECT_FALSE(missing.ok());
  // An existing but report-free dir also fails: a sentinel diffing against
  // nothing would pass every gate.
  std::string empty = ::testing::TempDir() + "/benchdiff_empty_dir";
  std::filesystem::create_directories(empty);
  auto no_reports = LoadBenchReportDir(empty);
  EXPECT_FALSE(no_reports.ok());
}

TEST(BenchDiffTest, LoadsRealReportsWrittenByBenchReporter) {
  std::string base_dir = ::testing::TempDir() + "/benchdiff_base";
  std::string cand_dir = ::testing::TempDir() + "/benchdiff_cand";
  std::filesystem::create_directories(base_dir);
  std::filesystem::create_directories(cand_dir);

  auto write = [](const std::string& dir, double recovery_ms) {
    BenchReporter reporter("mini_recovery");
    BenchVariant& v = reporter.AddVariant("pairs_8");
    v.SetMetric("recovery_ms", recovery_ms);
    v.SetMetric("sessions", uint64_t{8});
    ASSERT_TRUE(
        reporter.WriteFile(dir + "/BENCH_mini_recovery.json").ok());
  };
  write(base_dir, 2000.0);
  write(cand_dir, 1500.0);

  auto base = LoadBenchReportDir(base_dir);
  auto cand = LoadBenchReportDir(cand_dir);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_TRUE(cand.ok()) << cand.status().ToString();
  // The direction came through the report's own meta block.
  EXPECT_EQ((*cand)[0].meta.at("recovery_ms").direction,
            MetricDirection::kLowerIsBetter);

  BenchDiff diff = DiffBenchReports(*base, *cand, DiffOptions{});
  EXPECT_EQ(diff.improvements, 1u);
  EXPECT_EQ(diff.regressions, 0u);
  EXPECT_FALSE(diff.GateFails());
}

TEST(BenchDiffTest, SloBudgetsCheckAndMissingMetricViolates) {
  ParsedReport cand = MakeReport("t7", {{"pairs_8", {{"recovery_ms", 1800.0}}}});
  SloConfig config;
  config.budgets.push_back(Budget{"t7/pairs_8.recovery_ms", 2000});
  config.budgets.push_back(Budget{"t7/pairs_8.recovery_ms", 1500});
  config.budgets.push_back(Budget{"t7/gone.recovery_ms", 9000});
  BenchDiff diff = DiffBenchReports({cand}, {cand}, DiffOptions{});
  CheckSlo(config, {cand}, &diff);
  EXPECT_EQ(diff.slo_checked, 3u);
  EXPECT_EQ(diff.slo_violations, 2u);  // over budget + missing metric
  ASSERT_EQ(diff.slo.size(), 3u);
  EXPECT_FALSE(diff.slo[0].violated);
  EXPECT_TRUE(diff.slo[1].violated);
  EXPECT_FALSE(diff.slo[2].present);
  EXPECT_TRUE(diff.GateFails());
}

TEST(BenchDiffTest, SloConfigParses) {
  auto config = ParseSloConfig(R"({
    "schema": "phoenix.slo.v1",
    "budgets": [
      {"bench": "t7", "variant": "pairs_8", "metric": "recovery_ms",
       "max": 2000}
    ],
    "tolerances": {"ms_per_call": {"rel_pct": 0.5, "abs": 0.001}},
    "headlines": [
      {"bench": "t7", "variant": "pairs_8", "metric": "recovery_ms"}
    ]
  })");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  ASSERT_EQ(config->budgets.size(), 1u);
  EXPECT_EQ(config->budgets[0].key, "t7/pairs_8.recovery_ms");
  EXPECT_DOUBLE_EQ(config->budgets[0].max, 2000);
  EXPECT_DOUBLE_EQ(config->tolerances.at("ms_per_call").rel, 0.005);
  EXPECT_DOUBLE_EQ(config->tolerances.at("ms_per_call").abs, 0.001);
  ASSERT_EQ(config->headlines.size(), 1u);
  EXPECT_EQ(config->headlines[0], "t7/pairs_8.recovery_ms");
}

TEST(BenchDiffTest, CheckBudgetsSharedWithProfUsage) {
  // The phoenix_prof --budget-ms path: phase totals, absent phase passes.
  std::map<std::string, double> phases{{"execution", 12.0},
                                       {"durability.park", 55.0}};
  auto outcomes = CheckBudgets(
      phases, {Budget{"durability.park", 50}, Budget{"checkpoint", 10},
               Budget{"execution", 20}});
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].violated);
  EXPECT_FALSE(outcomes[1].present);
  EXPECT_FALSE(outcomes[1].violated);
  EXPECT_FALSE(outcomes[2].violated);
}

TEST(BenchDiffTest, JsonAndMarkdownAreByteDeterministic) {
  ParsedReport base = MakeReport(
      "b", {{"v", {{"recovery_ms", 2000.0}, {"forces", 10.0}}}});
  ParsedReport cand = MakeReport(
      "b", {{"v", {{"recovery_ms", 1900.5}, {"forces", 12.0}}}});
  SloConfig config;
  config.budgets.push_back(Budget{"b/v.recovery_ms", 2000});

  auto run = [&] {
    BenchDiff diff = DiffBenchReports({base}, {cand}, DiffOptions{});
    CheckSlo(config, {cand}, &diff);
    return BenchDiffToJson(diff, "base", "cand") + "\x1f" +
           BenchDiffToMarkdown(diff, "base", "cand");
  };
  std::string a = run();
  std::string b = run();
  EXPECT_EQ(a, b);
  // The report carries the phoenix.slo.{checked,violations} summary keys.
  EXPECT_NE(a.find("\"phoenix.slo.checked\": 1"), std::string::npos);
  EXPECT_NE(a.find("\"phoenix.slo.violations\": 0"), std::string::npos);
  EXPECT_NE(a.find("\"schema\": \"phoenix.benchdiff.v1\""),
            std::string::npos);
}

TEST(BenchDiffTest, HistoryAppendAndIdempotentReplace) {
  ParsedReport cand = MakeReport("t7", {{"pairs_8", {{"recovery_ms", 1800.0}}}});
  std::vector<std::string> headlines{"t7/pairs_8.recovery_ms",
                                     "t7/pairs_8.not_there"};
  auto first = UpdateHistory("", "pr9", headlines, {cand});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_NE(first->find("\"schema\": \"phoenix.history.v1\""),
            std::string::npos);
  EXPECT_NE(first->find("\"t7/pairs_8.recovery_ms\": 1800"),
            std::string::npos);
  // Replaying the same candidate replaces the row, not duplicates it.
  auto second = UpdateHistory(*first, "pr9", headlines, {cand});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  // A later PR appends while earlier rows survive byte-for-byte.
  ParsedReport faster =
      MakeReport("t7", {{"pairs_8", {{"recovery_ms", 1500.0}}}});
  auto third = UpdateHistory(*second, "pr10", headlines, {faster});
  ASSERT_TRUE(third.ok());
  EXPECT_NE(third->find("\"label\": \"pr9\""), std::string::npos);
  EXPECT_NE(third->find("\"label\": \"pr10\""), std::string::npos);
  EXPECT_NE(third->find("\"t7/pairs_8.recovery_ms\": 1500"),
            std::string::npos);
}

TEST(BenchReporterMetaTest, MetaBlockDescribesEveryEmittedMetric) {
  BenchReporter reporter("meta_check");
  BenchVariant& v = reporter.AddVariant("v");
  v.SetMetric("recovery_ms", 12.5);
  v.SetMetric("bench_local_thing", uint64_t{3});
  reporter.DescribeMetric("bench_local_thing", "count",
                          MetricDirection::kHigherIsBetter);
  auto parsed = ParseBenchReport(reporter.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->meta.at("recovery_ms").direction,
            MetricDirection::kLowerIsBetter);
  EXPECT_EQ(parsed->meta.at("recovery_ms").unit, "ms");
  EXPECT_EQ(parsed->meta.at("bench_local_thing").direction,
            MetricDirection::kHigherIsBetter);
}

}  // namespace
}  // namespace phoenix::obs
