// Context state saving and process checkpoints (Section 4): recovery from a
// state record must be equivalent to full replay, and checkpoints must cut
// the amount of log replayed.

#include <gtest/gtest.h>

#include "recovery/checkpoint_manager.h"
#include "recovery/recovery_service.h"
#include "tests/test_components.h"
#include "wal/log_reader.h"

namespace phoenix {
namespace {

using phoenix::testing::ExecutionLog;
using phoenix::testing::RegisterTestComponents;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUpSim(RuntimeOptions opts = {}) {
    sim_ = std::make_unique<Simulation>(opts);
    RegisterTestComponents(sim_->factories());
    alpha_ = &sim_->AddMachine("alpha");
    server_ = &alpha_->CreateProcess();
    ExecutionLog::Reset();
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Process* server_ = nullptr;
};

TEST_F(CheckpointTest, ExplicitStateSaveWritesRecord) {
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*server_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(5)).ok());

  Context* ctx = server_->FindContextOfComponent("c");
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->state_record_lsn(), kInvalidLsn);
  auto lsn = server_->checkpoints().SaveContextState(*ctx);
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(ctx->state_record_lsn(), *lsn);
  EXPECT_EQ(server_->checkpoints().state_saves(), 1u);
}

TEST_F(CheckpointTest, RecoveryFromStateSkipsOldCalls) {
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*server_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }
  Context* ctx = server_->FindContextOfComponent("c");
  ASSERT_TRUE(server_->checkpoints().SaveContextState(*ctx).ok());
  ASSERT_TRUE(server_->checkpoints().TakeProcessCheckpoint().ok());
  // Two more calls after the state record; their force also publishes the
  // checkpoint LSN to the well-known file.
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  ASSERT_TRUE(server_->log().ReadWellKnownLsn().ok());

  int executions_before = ExecutionLog::Of("c.Add");
  server_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  // Only the 2 post-state calls replayed, not all 12.
  EXPECT_EQ(ExecutionLog::Of("c.Add"), executions_before + 2);
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 12);
}

TEST_F(CheckpointTest, StateRestoreEqualsFullReplay) {
  // Run the same workload twice — once recovering via checkpoint, once via
  // full replay — final states must match.
  auto run = [&](bool with_checkpoint) -> int64_t {
    SetUpSim();
    ExternalClient client(sim_.get(), "alpha");
    auto uri = client.CreateComponent(*server_, "Counter", "c",
                                      ComponentKind::kPersistent, {});
    for (int i = 1; i <= 7; ++i) {
      EXPECT_TRUE(client.Call(*uri, "Add", MakeArgs(i)).ok());
      if (with_checkpoint && i == 4) {
        Context* ctx = server_->FindContextOfComponent("c");
        EXPECT_TRUE(server_->checkpoints().SaveContextState(*ctx).ok());
        EXPECT_TRUE(server_->checkpoints().TakeProcessCheckpoint().ok());
      }
    }
    server_->Kill();
    EXPECT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
    return client.Call(*uri, "Get", {})->AsInt();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST_F(CheckpointTest, PeriodicStateSavingByOption) {
  RuntimeOptions opts;
  opts.save_context_state_every = 3;
  SetUpSim(opts);
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*server_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }
  EXPECT_EQ(server_->checkpoints().state_saves(), 3u);  // at calls 3, 6, 9
}

TEST_F(CheckpointTest, PeriodicProcessCheckpointByOption) {
  RuntimeOptions opts;
  opts.process_checkpoint_every = 4;
  SetUpSim(opts);
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*server_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }
  EXPECT_GE(server_->checkpoints().checkpoints_taken(), 2u);
  EXPECT_GE(server_->checkpoints().checkpoints_published(), 1u);
  ASSERT_TRUE(server_->log().ReadWellKnownLsn().ok());
}

TEST_F(CheckpointTest, CheckpointNotPublishedUntilFlushed) {
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*server_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  ASSERT_TRUE(server_->checkpoints().TakeProcessCheckpoint().ok());
  // The checkpoint records sit in the buffer; no publish yet.
  EXPECT_TRUE(server_->log().ReadWellKnownLsn().status().IsNotFound());
  // The next send's force flushes them, and the well-known file appears.
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  EXPECT_TRUE(server_->log().ReadWellKnownLsn().ok());
}

TEST_F(CheckpointTest, UnflushedCheckpointIsInvisibleAfterCrash) {
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*server_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(3)).ok());
  ASSERT_TRUE(server_->checkpoints().TakeProcessCheckpoint().ok());
  server_->Kill();  // checkpoint records die in the buffer
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 3);
}

TEST_F(CheckpointTest, LastCallRepliesWrittenBeforeStateSave) {
  // §4.2: a state save must first put referenced replies on the log so
  // post-restore duplicates can be answered.
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*server_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  CallMessage msg;
  msg.target_uri = *uri;
  msg.method = "Add";
  msg.args = MakeArgs(11);
  msg.has_call_id = true;
  msg.call_id = CallId{ClientKey{"ghost", 3, 3}, 1};
  msg.has_sender_info = true;
  msg.sender_kind = ComponentKind::kPersistent;
  ASSERT_TRUE(sim_->RouteCall("alpha", msg).ok());

  Context* ctx = server_->FindContextOfComponent("c");
  ASSERT_TRUE(server_->checkpoints().SaveContextState(*ctx).ok());
  const LastCallEntry* entry =
      server_->last_calls().Lookup(ClientKey{"ghost", 3, 3}, ctx->id());
  ASSERT_NE(entry, nullptr);
  EXPECT_NE(entry->reply_lsn, kInvalidLsn);

  // Saving again does not duplicate the reply record (LSN already known).
  uint64_t appends = server_->log().num_appends();
  ASSERT_TRUE(server_->checkpoints().SaveContextState(*ctx).ok());
  EXPECT_EQ(server_->log().num_appends(), appends + 1);  // just the state rec

  // After a crash+restore, the duplicate is answered from that reply LSN.
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());  // flush + commit
  int executions = ExecutionLog::Of("c.Add");
  server_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  Result<ReplyMessage> dup = sim_->RouteCall("alpha", msg);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->value.AsInt(), 11);
  EXPECT_EQ(ExecutionLog::Of("c.Add"), executions + 1);  // only the +1 replay
}

TEST_F(CheckpointTest, SubordinateStateRidesInContextRecord) {
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto parent = client.CreateComponent(*server_, "ParentWithSub", "p",
                                       ComponentKind::kPersistent, {});
  ASSERT_TRUE(client.Call(*parent, "BumpSub", MakeArgs(8)).ok());
  Context* ctx = server_->FindContextOfComponent("p");
  auto lsn = server_->checkpoints().SaveContextState(*ctx);
  ASSERT_TRUE(lsn.ok());

  // The record holds two component snapshots: parent + subordinate.
  ASSERT_TRUE(client.Call(*parent, "BumpSub", MakeArgs(1)).ok());  // flush
  Result<LogRecord> rec = ReadRecordAt(server_->log().StableLog(), *lsn);
  ASSERT_TRUE(rec.ok());
  const auto* state = std::get_if<ContextStateRecord>(&*rec);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->components.size(), 2u);

  int executions = ExecutionLog::Of("p_sub.Add");
  server_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(client.Call(*parent, "GetSub", {})->AsInt(), 9);
  // Only the post-state call replayed.
  EXPECT_EQ(ExecutionLog::Of("p_sub.Add"), executions + 1);
}

TEST_F(CheckpointTest, CrashDuringCheckpointIsHarmless) {
  RuntimeOptions opts;
  opts.inject_failures_during_recovery = false;
  SetUpSim(opts);
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*server_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(5)).ok());
  sim_->injector().AddTrigger("alpha", 1, FailurePoint::kDuringCheckpoint, 1);
  EXPECT_TRUE(
      server_->checkpoints().TakeProcessCheckpoint().status().IsCrashed());
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 5);
}

}  // namespace
}  // namespace phoenix
