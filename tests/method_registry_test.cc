#include "runtime/method_registry.h"

#include <gtest/gtest.h>

namespace phoenix {
namespace {

TEST(MethodRegistryTest, RegisterAndDispatch) {
  MethodRegistry reg;
  reg.Register("Double", [](const ArgList& a) -> Result<Value> {
    return Value(a[0].AsInt() * 2);
  });
  const MethodEntry* entry = reg.Find("Double");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->handler(MakeArgs(21)).value(), Value(int64_t{42}));
  EXPECT_FALSE(entry->traits.read_only);
}

TEST(MethodRegistryTest, MissingMethodIsNull) {
  MethodRegistry reg;
  EXPECT_EQ(reg.Find("nope"), nullptr);
}

TEST(MethodRegistryTest, ReadOnlyTrait) {
  MethodRegistry reg;
  reg.Register(
      "Get", [](const ArgList&) -> Result<Value> { return Value(0); },
      MethodTraits{.read_only = true});
  EXPECT_TRUE(reg.Find("Get")->traits.read_only);
}

TEST(MethodRegistryTest, HandlerCanReturnError) {
  MethodRegistry reg;
  reg.Register("Boom", [](const ArgList&) -> Result<Value> {
    return Status::FailedPrecondition("boom");
  });
  EXPECT_EQ(reg.Find("Boom")->handler({}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(MethodRegistryTest, EntriesEnumerable) {
  MethodRegistry reg;
  reg.Register("A", [](const ArgList&) -> Result<Value> { return Value(); });
  reg.Register("B", [](const ArgList&) -> Result<Value> { return Value(); });
  EXPECT_EQ(reg.entries().size(), 2u);
}

}  // namespace
}  // namespace phoenix
