#include "serde/codec.h"

#include <gtest/gtest.h>

namespace phoenix {
namespace {

TEST(CodecTest, PrimitiveRoundTrip) {
  Encoder enc;
  enc.PutU8(7);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutVarint(300);
  enc.PutDouble(3.25);
  enc.PutString("phoenix");

  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetU8().value(), 7);
  EXPECT_EQ(dec.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(dec.GetU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.GetVarint().value(), 300u);
  EXPECT_EQ(dec.GetDouble().value(), 3.25);
  EXPECT_EQ(dec.GetString().value(), "phoenix");
  EXPECT_TRUE(dec.exhausted());
}

TEST(CodecTest, VarintBoundaries) {
  for (uint64_t v : {uint64_t{0}, uint64_t{127}, uint64_t{128},
                     uint64_t{16383}, uint64_t{16384}, ~uint64_t{0}}) {
    Encoder enc;
    enc.PutVarint(v);
    Decoder dec(enc.buffer());
    EXPECT_EQ(dec.GetVarint().value(), v);
  }
}

TEST(CodecTest, TruncatedInputsFailWithCorruption) {
  Encoder enc;
  enc.PutU64(42);
  Decoder dec(enc.buffer().data(), 3);
  EXPECT_TRUE(dec.GetU64().status().IsCorruption());

  Decoder empty(nullptr, 0);
  EXPECT_TRUE(empty.GetU8().status().IsCorruption());
  EXPECT_TRUE(empty.GetVarint().status().IsCorruption());
  EXPECT_TRUE(empty.GetString().status().IsCorruption());
}

TEST(CodecTest, TruncatedStringBody) {
  Encoder enc;
  enc.PutString("hello world");
  Decoder dec(enc.buffer().data(), 4);  // length varint + partial body
  EXPECT_TRUE(dec.GetString().status().IsCorruption());
}

TEST(CodecTest, ValueRoundTripAllKinds) {
  Value::List inner;
  inner.push_back(Value(int64_t{-5}));
  inner.push_back(Value("nested"));
  Value::Bytes bytes;
  bytes.data = {1, 2, 3, 255};

  std::vector<Value> values;
  values.push_back(Value());
  values.push_back(Value(true));
  values.push_back(Value(false));
  values.push_back(Value(int64_t{-1234567}));
  values.push_back(Value(2.71828));
  values.push_back(Value(std::string("strings work")));
  values.push_back(Value(bytes));
  values.push_back(Value(std::move(inner)));

  for (const Value& v : values) {
    Encoder enc;
    enc.PutValue(v);
    Decoder dec(enc.buffer());
    Result<Value> decoded = dec.GetValue();
    ASSERT_TRUE(decoded.ok()) << v.ToString();
    EXPECT_EQ(*decoded, v) << v.ToString();
    EXPECT_TRUE(dec.exhausted());
  }
}

TEST(CodecTest, ZigZagNegativeIntsStaySmall) {
  Encoder enc;
  enc.PutValue(Value(int64_t{-1}));
  EXPECT_LE(enc.size(), 3u);  // tag + 1-byte zigzag varint
}

TEST(CodecTest, ArgListRoundTrip) {
  ArgList args = MakeArgs(int64_t{1}, "two", 3.0, true);
  Encoder enc;
  enc.PutArgList(args);
  Decoder dec(enc.buffer());
  Result<ArgList> decoded = dec.GetArgList();
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    EXPECT_EQ((*decoded)[i], args[i]);
  }
}

TEST(CodecTest, BadValueTagIsCorruption) {
  std::vector<uint8_t> bad = {99};
  Decoder dec(bad);
  EXPECT_TRUE(dec.GetValue().status().IsCorruption());
}

TEST(CodecTest, DeeplyNestedLists) {
  Value v(int64_t{7});
  for (int i = 0; i < 20; ++i) {
    Value::List wrap;
    wrap.push_back(std::move(v));
    v = Value(std::move(wrap));
  }
  Encoder enc;
  enc.PutValue(v);
  Decoder dec(enc.buffer());
  Result<Value> decoded = dec.GetValue();
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, v);
}

}  // namespace
}  // namespace phoenix
