// The observability JSON layer: deterministic number formatting, escaping,
// the streaming writer, and the parser it round-trips through.

#include "obs/json.h"

#include <gtest/gtest.h>

namespace phoenix::obs {
namespace {

TEST(JsonEscapeTest, PlainAndSpecialCharacters) {
  EXPECT_EQ(JsonEscape("abc"), "\"abc\"");
  EXPECT_EQ(JsonEscape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonEscape("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(JsonEscape(std::string("a\x01z", 3)), "\"a\\u0001z\"");
}

TEST(JsonNumberTest, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(42.0), "42");
  EXPECT_EQ(JsonNumber(-3.0), "-3");
  EXPECT_EQ(JsonNumber(uint64_t{123456789}), "123456789");
  EXPECT_EQ(JsonNumber(int64_t{-7}), "-7");
}

TEST(JsonNumberTest, FractionsAndNonFinite) {
  EXPECT_EQ(JsonNumber(1.5), "1.5");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonWriterTest, CompactObject) {
  JsonWriter w;
  w.BeginObject()
      .Key("a")
      .Number(1)
      .Key("b")
      .String("x")
      .Key("c")
      .BeginArray()
      .Number(1.5)
      .Bool(true)
      .Null()
      .EndArray()
      .EndObject();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"x\",\"c\":[1.5,true,null]}");
}

TEST(JsonWriterTest, RoundTripsThroughParser) {
  JsonWriter w;
  w.BeginObject()
      .Key("name")
      .String("fo\"rce")
      .Key("values")
      .BeginArray()
      .Number(1)
      .Number(2.25)
      .EndArray()
      .EndObject();

  auto parsed = ParseJson(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* name = parsed->Find("name");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->AsString(), "fo\"rce");
  const JsonValue* values = parsed->Find("values");
  ASSERT_NE(values, nullptr);
  ASSERT_EQ(values->AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ(values->AsArray()[0].AsNumber(), 1.0);
  EXPECT_DOUBLE_EQ(values->AsArray()[1].AsNumber(), 2.25);
}

TEST(JsonParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("[1,2").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("").ok());
}

TEST(JsonParserTest, ObjectOrderPreserved) {
  auto parsed = ParseJson("{\"z\":1,\"a\":2}");
  ASSERT_TRUE(parsed.ok());
  const auto& members = parsed->AsObject();
  ASSERT_EQ(members.size(), 2u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
}

}  // namespace
}  // namespace phoenix::obs
