// Crash-tolerant recovery: crashes injected at every recovery-phase fault
// point (analysis scan, state reinstatement, between replay units, the
// end-of-log flush), nested re-crashes, storage attacks between attempts,
// the supervised degradation ladder (normal -> salvage-assessed -> cold
// start), its terminal give-up status, and the redundant registration-table
// force skip.

#include <gtest/gtest.h>

#include "recovery/recovery_service.h"
#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

class RecoveryCrashTest : public ::testing::Test {
 protected:
  void SetUpSim(RuntimeOptions opts = {}) {
    sim_ = std::make_unique<Simulation>(opts);
    RegisterTestComponents(sim_->factories());
    alpha_ = &sim_->AddMachine("alpha");
    proc_ = &alpha_->CreateProcess();
  }

  uint64_t Counter(const char* name) {
    return sim_->metrics().CounterTotal(name);
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Process* proc_ = nullptr;
};

// A Counter workload with context-state records in the log, so every
// recovery-phase fault point (including state reinstatement) has something
// to crash on. Five Adds of 2: converged value 10.
std::string BuildCounterWorkload(Simulation* sim, Process* proc) {
  ExternalClient client(sim, "alpha");
  auto uri = client.CreateComponent(*proc, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  EXPECT_TRUE(uri.ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(client.Call(*uri, "Add", MakeArgs(2)).ok());
  }
  return *uri;
}

TEST_F(RecoveryCrashTest, CrashAtEachRecoveryPointConverges) {
  const FailurePoint kPoints[] = {
      FailurePoint::kDuringRecoveryAnalysis,
      FailurePoint::kDuringRecoveryRestore,
      FailurePoint::kBetweenReplayUnits,
      FailurePoint::kDuringEndOfLogFlush,
  };
  for (FailurePoint point : kPoints) {
    RuntimeOptions opts;
    opts.inject_failures_during_recovery = true;
    opts.save_context_state_every = 3;
    SetUpSim(opts);
    std::string uri = BuildCounterWorkload(sim_.get(), proc_);

    proc_->Kill();
    sim_->injector().AddTrigger("alpha", proc_->pid(), point, /*hit=*/1);
    Status recovered = alpha_->recovery_service().EnsureProcessAlive(1);
    ASSERT_TRUE(recovered.ok())
        << FailurePointName(point) << ": " << recovered.ToString();
    EXPECT_EQ(sim_->injector().crashes_fired(), 1u)
        << FailurePointName(point);
    // Attempt 1 died at the fault point; attempt 2 converged — rung 0.
    EXPECT_EQ(Counter("phoenix.recovery.supervisor.attempts"), 2u)
        << FailurePointName(point);
    EXPECT_EQ(Counter("phoenix.recovery.supervisor.gave_up"), 0u);
    ExternalClient client(sim_.get(), "alpha");
    EXPECT_EQ(client.Call(uri, "Get", {})->AsInt(), 10)
        << FailurePointName(point);
  }
}

TEST_F(RecoveryCrashTest, NestedRecoveryCrashesDepth3Converge) {
  RuntimeOptions opts;
  opts.inject_failures_during_recovery = true;
  opts.save_context_state_every = 3;
  SetUpSim(opts);
  std::string uri = BuildCounterWorkload(sim_.get(), proc_);

  proc_->Kill();
  // Three nested failures: the recovery of the recovery of the recovery
  // crashes too. Hit counts persist across attempts, so consecutive
  // triggers kill consecutive attempts at the first scanned record.
  for (uint64_t hit = 1; hit <= 3; ++hit) {
    sim_->injector().AddTrigger("alpha", proc_->pid(),
                                FailurePoint::kDuringRecoveryAnalysis, hit);
  }
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(sim_->injector().crashes_fired(), 3u);
  EXPECT_EQ(Counter("phoenix.recovery.supervisor.attempts"), 4u);
  // Depth 3 still fits in rung 0's attempt budget: never degraded.
  EXPECT_EQ(Counter("phoenix.recovery.mode"), 0u);
  EXPECT_EQ(Counter("phoenix.recovery.supervisor.gave_up"), 0u);
  ExternalClient client(sim_.get(), "alpha");
  EXPECT_EQ(client.Call(uri, "Get", {})->AsInt(), 10);
}

TEST_F(RecoveryCrashTest, WkfAttackBetweenAttemptsSalvages) {
  RuntimeOptions opts;
  opts.inject_failures_during_recovery = true;
  opts.save_context_state_every = 2;
  opts.process_checkpoint_every = 2;
  SetUpSim(opts);
  std::string uri = BuildCounterWorkload(sim_.get(), proc_);
  ASSERT_TRUE(proc_->log().ReadWellKnownLsn().ok());

  proc_->Kill();
  sim_->injector().AddTrigger("alpha", proc_->pid(),
                              FailurePoint::kDuringRecoveryAnalysis, 1);
  // Storage keeps rotting *between* attempts: the well-known file is
  // corrupted after attempt 1 dies, so attempt 2 must detect the lie and
  // fall back to a full scan — still within the normal rung.
  sim_->injector().AddRecoveryAttack("alpha", proc_->pid(),
                                     /*before_attempt=*/2,
                                     RecoveryAttack::kCorruptWellKnownFile);
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(sim_->injector().recovery_attacks_fired(), 1u);
  EXPECT_EQ(Counter("phoenix.recovery.supervisor.storage_attacks"), 1u);
  EXPECT_GE(Counter("phoenix.recovery.salvage.wkf_fallback"), 1u);
  EXPECT_EQ(Counter("phoenix.recovery.mode"), 0u);
  ExternalClient client(sim_.get(), "alpha");
  EXPECT_EQ(client.Call(uri, "Get", {})->AsInt(), 10);
}

TEST_F(RecoveryCrashTest, LadderEscalatesToSalvageAssessed) {
  RuntimeOptions opts;
  opts.inject_failures_during_recovery = true;
  opts.save_context_state_every = 3;
  opts.recovery_supervisor_attempts_per_rung = 2;
  SetUpSim(opts);
  std::string uri = BuildCounterWorkload(sim_.get(), proc_);

  proc_->Kill();
  // Rung 0's entire budget (2 attempts) crashes; attempt 3 runs one rung
  // down the ladder in salvage-assessed mode and converges.
  sim_->injector().AddTrigger("alpha", proc_->pid(),
                              FailurePoint::kDuringRecoveryAnalysis, 1);
  sim_->injector().AddTrigger("alpha", proc_->pid(),
                              FailurePoint::kDuringRecoveryAnalysis, 2);
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  obs::LabelSet normal{{"process", "alpha/1"}, {"rung", "normal"}};
  obs::LabelSet degraded{{"process", "alpha/1"},
                         {"rung", "salvage_assessed"}};
  EXPECT_EQ(sim_->metrics()
                .GetCounter("phoenix.recovery.supervisor.attempts", normal)
                .value(),
            2u);
  EXPECT_EQ(sim_->metrics()
                .GetCounter("phoenix.recovery.supervisor.attempts", degraded)
                .value(),
            1u);
  EXPECT_EQ(Counter("phoenix.recovery.mode"), 1u);
  EXPECT_EQ(Counter("phoenix.recovery.supervisor.gave_up"), 0u);
  // Salvage-assessed recovery replays the full log: exact state.
  ExternalClient client(sim_.get(), "alpha");
  EXPECT_EQ(client.Call(uri, "Get", {})->AsInt(), 10);
}

TEST_F(RecoveryCrashTest, ColdStartRungRestoresLastSavedState) {
  RuntimeOptions opts;
  opts.inject_failures_during_recovery = true;
  opts.save_context_state_every = 3;
  opts.recovery_supervisor_attempts_per_rung = 1;
  SetUpSim(opts);
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  ASSERT_TRUE(uri.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }

  proc_->Kill();
  // One attempt per rung; normal and salvage-assessed both crash. The last
  // rung is the availability stopgap: reinstate saved state and creations,
  // replay no messages. Data-lossy by design — the counter rolls back to
  // its last saved state record.
  sim_->injector().AddTrigger("alpha", proc_->pid(),
                              FailurePoint::kDuringRecoveryAnalysis, 1);
  sim_->injector().AddTrigger("alpha", proc_->pid(),
                              FailurePoint::kDuringRecoveryAnalysis, 2);
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(Counter("phoenix.recovery.cold_starts"), 1u);
  EXPECT_EQ(Counter("phoenix.recovery.supervisor.attempts"), 3u);
  auto value = client.Call(*uri, "Get", {});
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->AsInt(), 3);  // saved after the 3rd Add; 2 records lost
  // The rung trades the tail for availability: the process serves again.
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 4);
}

TEST_F(RecoveryCrashTest, SupervisorGivesUpWithTerminalStatus) {
  RuntimeOptions opts;
  opts.inject_failures_during_recovery = true;
  opts.save_context_state_every = 3;
  opts.recovery_supervisor_attempts_per_rung = 1;
  SetUpSim(opts);
  std::string uri = BuildCounterWorkload(sim_.get(), proc_);

  proc_->Kill();
  // Every rung's single attempt crashes: the ladder is exhausted and the
  // supervisor reports a terminal status instead of retrying forever.
  for (uint64_t hit = 1; hit <= 3; ++hit) {
    sim_->injector().AddTrigger("alpha", proc_->pid(),
                                FailurePoint::kDuringRecoveryAnalysis, hit);
  }
  Status status = alpha_->recovery_service().EnsureProcessAlive(1);
  EXPECT_TRUE(status.IsUnavailable()) << status.ToString();
  EXPECT_FALSE(proc_->alive());
  EXPECT_EQ(Counter("phoenix.recovery.supervisor.gave_up"), 1u);
  EXPECT_EQ(Counter("phoenix.recovery.supervisor.attempts"), 3u);

  // Give-up is not forever: once the faults stop, the next request
  // recovers normally.
  sim_->injector().Clear();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  ExternalClient client(sim_.get(), "alpha");
  EXPECT_EQ(client.Call(uri, "Get", {})->AsInt(), 10);
}

TEST_F(RecoveryCrashTest, RedundantTablePersistSkipped) {
  SetUpSim();
  Process& other = alpha_->CreateProcess();
  (void)other;
  // One durable force per registration.
  obs::LabelSet machine{{"machine", "alpha"}};
  EXPECT_EQ(sim_->metrics()
                .GetCounter("phoenix.recovery.service.table_forces", machine)
                .value(),
            2u);

  std::string uri = BuildCounterWorkload(sim_.get(), proc_);
  proc_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  // A restart changes no registration: the redundant force is skipped (and
  // counted) instead of re-writing an identical table.
  EXPECT_EQ(sim_->metrics()
                .GetCounter("phoenix.recovery.service.table_forces", machine)
                .value(),
            2u);
  EXPECT_EQ(
      sim_->metrics()
          .GetCounter("phoenix.recovery.service.table_force_skips", machine)
          .value(),
      1u);
  ExternalClient client(sim_.get(), "alpha");
  EXPECT_EQ(client.Call(uri, "Get", {})->AsInt(), 10);
}

TEST_F(RecoveryCrashTest, CrashBetweenParallelReplayUnitsConverges) {
  RuntimeOptions opts;
  opts.inject_failures_during_recovery = true;
  opts.parallel_replay = true;
  opts.parallel_replay_sessions = 4;
  SetUpSim(opts);
  // Two chains plus an independent counter: enough parallelism for the
  // planner, so the crash fires inside the parallel replay engine itself.
  ExternalClient client(sim_.get(), "alpha");
  auto leaf = client.CreateComponent(*proc_, "Counter", "leaf",
                                     ComponentKind::kPersistent, {});
  auto mid = client.CreateComponent(*proc_, "Chain", "mid",
                                    ComponentKind::kPersistent,
                                    MakeArgs(*leaf, "Add"));
  auto solo = client.CreateComponent(*proc_, "Counter", "solo",
                                     ComponentKind::kPersistent, {});
  ASSERT_TRUE(leaf.ok() && mid.ok() && solo.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Call(*mid, "Bump", MakeArgs(i + 1)).ok());
  }
  ASSERT_TRUE(client.Call(*solo, "Add", MakeArgs(5)).ok());
  ASSERT_TRUE(client.Call(*solo, "Add", MakeArgs(7)).ok());

  proc_->Kill();
  sim_->injector().AddTrigger("alpha", proc_->pid(),
                              FailurePoint::kBetweenReplayUnits, /*hit=*/2);
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(sim_->injector().crashes_fired(), 1u);
  EXPECT_EQ(Counter("phoenix.recovery.supervisor.attempts"), 2u);
  EXPECT_GT(Counter("phoenix.recovery.replay.chains"), 0u);
  EXPECT_EQ(client.Call(*leaf, "Get", {})->AsInt(), 6);
  EXPECT_EQ(client.Call(*mid, "Get", {})->AsInt(), 6);
  EXPECT_EQ(client.Call(*solo, "Get", {})->AsInt(), 12);
}

}  // namespace
}  // namespace phoenix
