// LogReader salvage mode: resynchronizing past unreadable mid-log regions,
// reporting skipped ranges and the torn-tail offset, and the log dump's
// rendering of damaged logs.

#include <gtest/gtest.h>

#include "wal/log_dump.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"
#include "wal/log_writer.h"

namespace phoenix {
namespace {

class LogSalvageTest : public ::testing::Test {
 protected:
  LogSalvageTest() : disk_(DiskParams{}, 1) {}

  // Appends `n` distinct (decodable) creation records and forces them
  // stable. Returns each record's LSN.
  std::vector<uint64_t> WriteRecords(int n) {
    LogWriter writer(kLog, &storage_, &disk_, &clock_);
    std::vector<uint64_t> lsns;
    for (int i = 0; i < n; ++i) {
      CreationRecord rec;
      rec.context_id = static_cast<uint64_t>(i + 1);
      rec.type_name = "Counter";
      rec.name = "c" + std::to_string(i);
      Encoder enc;
      EncodeLogRecord(LogRecord{rec}, enc);
      lsns.push_back(writer.AppendPayload(enc.buffer()));
    }
    writer.Force();
    return lsns;
  }

  LogView View() { return LogView{&storage_.ReadLog(kLog), 0}; }

  static constexpr char kLog[] = "m/p1.log";
  StableStorage storage_;
  DiskModel disk_;
  SimClock clock_;
};

TEST_F(LogSalvageTest, WithoutSalvageMidLogCorruptionLooksLikeTornTail) {
  std::vector<uint64_t> lsns = WriteRecords(5);
  storage_.CorruptLog(kLog, lsns[2] + 8, 1);  // one payload byte of #2

  LogReader reader(View(), 0);
  int read = 0;
  while (reader.Next()) ++read;
  EXPECT_EQ(read, 2);
  EXPECT_TRUE(reader.tail_torn());
  EXPECT_EQ(reader.torn_offset(), lsns[2]);
}

TEST_F(LogSalvageTest, SalvageSkipsCorruptRecordAndResyncs) {
  std::vector<uint64_t> lsns = WriteRecords(5);
  storage_.CorruptLog(kLog, lsns[2] + 8, 1);

  LogReader reader(View(), 0);
  reader.EnableSalvage();
  std::vector<uint64_t> seen;
  while (auto parsed = reader.Next()) seen.push_back(parsed->lsn);
  EXPECT_FALSE(reader.tail_torn());
  ASSERT_EQ(seen.size(), 4u);  // all but the corrupt one
  EXPECT_EQ(seen, (std::vector<uint64_t>{lsns[0], lsns[1], lsns[3], lsns[4]}));
  ASSERT_EQ(reader.skipped_ranges().size(), 1u);
  EXPECT_EQ(reader.skipped_ranges()[0].from_lsn, lsns[2]);
  EXPECT_EQ(reader.skipped_ranges()[0].to_lsn, lsns[3]);
  EXPECT_EQ(reader.skipped_bytes(), lsns[3] - lsns[2]);
}

TEST_F(LogSalvageTest, CorruptFrameHeaderResyncsToo) {
  std::vector<uint64_t> lsns = WriteRecords(4);
  storage_.CorruptLog(kLog, lsns[1], 1);  // length field of #1's frame

  LogReader reader(View(), 0);
  reader.EnableSalvage();
  std::vector<uint64_t> seen;
  while (auto parsed = reader.Next()) seen.push_back(parsed->lsn);
  EXPECT_EQ(seen, (std::vector<uint64_t>{lsns[0], lsns[2], lsns[3]}));
  ASSERT_EQ(reader.skipped_ranges().size(), 1u);
  EXPECT_EQ(reader.skipped_ranges()[0].from_lsn, lsns[1]);
}

TEST_F(LogSalvageTest, ConsecutiveCorruptFramesMergeIntoOneRange) {
  std::vector<uint64_t> lsns = WriteRecords(5);
  storage_.CorruptLog(kLog, lsns[1] + 8, 1);
  storage_.CorruptLog(kLog, lsns[2] + 8, 1);

  LogReader reader(View(), 0);
  reader.EnableSalvage();
  std::vector<uint64_t> seen;
  while (auto parsed = reader.Next()) seen.push_back(parsed->lsn);
  EXPECT_EQ(seen, (std::vector<uint64_t>{lsns[0], lsns[3], lsns[4]}));
  ASSERT_EQ(reader.skipped_ranges().size(), 1u);
  EXPECT_EQ(reader.skipped_ranges()[0].from_lsn, lsns[1]);
  EXPECT_EQ(reader.skipped_ranges()[0].to_lsn, lsns[3]);
}

TEST_F(LogSalvageTest, TornTailReportsFirstUnreadableByte) {
  std::vector<uint64_t> lsns = WriteRecords(4);
  // Cut into the middle of the last frame.
  storage_.TruncateLog(kLog, lsns[3] + 3);

  LogReader reader(View(), 0);
  reader.EnableSalvage();
  int read = 0;
  while (reader.Next()) ++read;
  EXPECT_EQ(read, 3);
  EXPECT_TRUE(reader.tail_torn());
  EXPECT_EQ(reader.torn_offset(), lsns[3]);
}

TEST_F(LogSalvageTest, CleanLogHasNoSalvageArtifacts) {
  WriteRecords(3);
  LogReader reader(View(), 0);
  reader.EnableSalvage();
  int read = 0;
  while (reader.Next()) ++read;
  EXPECT_EQ(read, 3);
  EXPECT_FALSE(reader.tail_torn());
  EXPECT_TRUE(reader.skipped_ranges().empty());
  EXPECT_EQ(reader.skipped_bytes(), 0u);
}

TEST_F(LogSalvageTest, DumpLogPrintsSkipsAndTornOffset) {
  std::vector<uint64_t> lsns = WriteRecords(5);
  storage_.CorruptLog(kLog, lsns[1] + 8, 1);
  storage_.TruncateLog(kLog, lsns[4] + 2);

  std::string dump = DumpLog(View());
  EXPECT_NE(dump.find("unreadable"), std::string::npos) << dump;
  EXPECT_NE(dump.find("skipped at lsn " + std::to_string(lsns[1])),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("torn tail: first bad frame at lsn " +
                      std::to_string(lsns[4])),
            std::string::npos)
      << dump;
}

}  // namespace
}  // namespace phoenix
