// Interceptor edge cases: bad targets, retry exhaustion surfaces, message
// size accounting, disabled external retries, and checkpointing of every
// field type through a real component.

#include <gtest/gtest.h>

#include "recovery/checkpoint_manager.h"
#include "recovery/recovery_service.h"
#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

// A component with one field of every registrable type.
class Everything : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Set", [this](const ArgList& a) -> Result<Value> {
      flag_ = a[0].AsBool();
      count_ = a[1].AsInt();
      ratio_ = a[2].AsDouble();
      label_ = a[3].AsString();
      data_ = a[4];
      peer_.uri = a[5].AsString();
      return Value(true);
    });
    methods.Register(
        "Dump",
        [this](const ArgList&) -> Result<Value> {
          return Value(MakeArgs(flag_, count_, ratio_, label_, data_,
                                peer_.uri));
        },
        MethodTraits{.read_only = true});
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterBool("flag", &flag_);
    fields.RegisterInt("count", &count_);
    fields.RegisterDouble("ratio", &ratio_);
    fields.RegisterString("label", &label_);
    fields.RegisterValue("data", &data_);
    fields.RegisterComponentRef("peer", &peer_);
  }

 private:
  bool flag_ = false;
  int64_t count_ = 0;
  double ratio_ = 0.0;
  std::string label_;
  Value data_{Value::List{}};
  ComponentRefField peer_;
};

class InterceptorEdgeTest : public ::testing::Test {
 protected:
  InterceptorEdgeTest() {
    sim_ = std::make_unique<Simulation>();
    RegisterTestComponents(sim_->factories());
    sim_->factories().Register<Everything>("Everything");
    alpha_ = &sim_->AddMachine("alpha");
    proc_ = &alpha_->CreateProcess();
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Process* proc_ = nullptr;
};

TEST_F(InterceptorEdgeTest, OutgoingToMalformedUriFails) {
  ExternalClient client(sim_.get(), "alpha");
  auto chain = client.CreateComponent(*proc_, "Chain", "driver",
                                      ComponentKind::kPersistent,
                                      MakeArgs("not a uri"));
  ASSERT_TRUE(chain.ok());
  auto r = client.Call(*chain, "Bump", MakeArgs(1));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(InterceptorEdgeTest, OutgoingToUnknownMachineIsNotFound) {
  ExternalClient client(sim_.get(), "alpha");
  auto chain = client.CreateComponent(*proc_, "Chain", "driver",
                                      ComponentKind::kPersistent,
                                      MakeArgs("phx://ghost/1/x"));
  ASSERT_TRUE(chain.ok());
  EXPECT_TRUE(client.Call(*chain, "Bump", MakeArgs(1)).status().IsNotFound());
}

TEST_F(InterceptorEdgeTest, ExternalRetriesCanBeDisabled) {
  sim_->options().external_client_retries = false;
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  proc_->Kill();
  auto r = client.Call(*uri, "Get", {});
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_EQ(client.retries(), 0u);
  EXPECT_FALSE(proc_->alive());  // no retry, no restart either
}

TEST_F(InterceptorEdgeTest, MessageSizeHintsScaleWithPayload) {
  CallMessage small;
  small.target_uri = "phx://a/1/x";
  small.method = "M";
  CallMessage big = small;
  big.args = MakeArgs(std::string(10000, 'x'));
  EXPECT_GT(big.EncodedSizeHint(), small.EncodedSizeHint() + 9000);

  ReplyMessage tiny;
  ReplyMessage chunky;
  chunky.value = Value(std::string(5000, 'y'));
  EXPECT_GT(chunky.EncodedSizeHint(), tiny.EncodedSizeHint() + 4000);
}

TEST_F(InterceptorEdgeTest, BigRepliesCostMoreOverTheNetwork) {
  sim_->AddMachine("beta");
  ExternalClient remote(sim_.get(), "beta");
  auto uri = remote.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  // Warm-up, then compare a small-arg call against a big-arg call.
  remote.Call(*uri, "Get", {}).value();
  double t0 = sim_->clock().NowMs();
  remote.Call(*uri, "Get", {}).value();
  double small_cost = sim_->clock().NowMs() - t0;
  t0 = sim_->clock().NowMs();
  // "Fail" ignores its arguments; the 200 KB payload still crosses the wire.
  auto r = remote.Call(*uri, "Fail", MakeArgs(std::string(200000, 'x')));
  EXPECT_FALSE(r.ok());
  double big_cost = sim_->clock().NowMs() - t0;
  // The 200 KB argument takes ~16 ms on the 100 Mb/s link alone.
  EXPECT_GT(big_cost, small_cost + 10.0);
}

TEST_F(InterceptorEdgeTest, AllFieldTypesSurviveStateRestore) {
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Everything", "e",
                                    ComponentKind::kPersistent, {});
  Value::List nested;
  nested.push_back(Value(1));
  nested.push_back(Value("two"));
  ASSERT_TRUE(client
                  .Call(*uri, "Set",
                        MakeArgs(true, int64_t{-7}, 2.5, "hello",
                                 Value(std::move(nested)),
                                 std::string("phx://alpha/1/other")))
                  .ok());
  Value before = client.Call(*uri, "Dump", {}).value();

  Context* ctx = proc_->FindContextOfComponent("e");
  ASSERT_TRUE(proc_->checkpoints().SaveContextState(*ctx).ok());
  proc_->log().Force();
  proc_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());

  Value after = client.Call(*uri, "Dump", {}).value();
  EXPECT_EQ(after, before);
}

TEST_F(InterceptorEdgeTest, AddCallToOwnProcessViaActivatorWorks) {
  // A component creating another component in its OWN process mid-method —
  // the baseline bookstore's basket path — exercised directly.
  ExternalClient client(sim_.get(), "alpha");
  auto chain = client.CreateComponent(*proc_, "Chain", "driver",
                                      ComponentKind::kPersistent,
                                      MakeArgs(proc_->ActivatorUri(),
                                               "Create"));
  ASSERT_TRUE(chain.ok());
  // Chain.Bump forwards its single int arg to Create: wrong arity -> the
  // activator rejects it as an app error, which travels back cleanly.
  auto r = client.Call(*chain, "Bump", MakeArgs(1));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(InterceptorEdgeTest, WorkChargesSimulatedTime) {
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  ASSERT_TRUE(uri.ok());
  // Bookstore's Search uses Work(); here verify via the clock directly.
  double t0 = sim_->clock().NowMs();
  Context* ctx = proc_->FindContextOfComponent("c");
  (void)ctx;
  ASSERT_TRUE(client.Call(*uri, "Get", {}).ok());
  EXPECT_GT(sim_->clock().NowMs(), t0);
}

}  // namespace
}  // namespace phoenix
