// §4.4's "easier" case: a single context fails inside a healthy process.
// The surviving context table entry points straight at the state (or
// creation) record; the unforced log tail is NOT lost.

#include <gtest/gtest.h>

#include "recovery/checkpoint_manager.h"
#include "recovery/recovery_manager.h"
#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::ExecutionLog;
using phoenix::testing::RegisterTestComponents;

class ContextFailureTest : public ::testing::Test {
 protected:
  ContextFailureTest() {
    sim_ = std::make_unique<Simulation>();
    RegisterTestComponents(sim_->factories());
    alpha_ = &sim_->AddMachine("alpha");
    proc_ = &alpha_->CreateProcess();
    ExecutionLog::Reset();
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Process* proc_ = nullptr;
};

TEST_F(ContextFailureTest, RecoverFromCreation) {
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(i)).ok());
  }
  Context* ctx = proc_->FindContextOfComponent("c");
  uint64_t context_id = ctx->id();

  ctx->ClearMembers();
  ASSERT_TRUE(RecoverContextFailure(proc_, context_id).ok());
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 10);
  EXPECT_TRUE(proc_->alive());  // the process never died
}

TEST_F(ContextFailureTest, RecoverFromStateRecord) {
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }
  Context* ctx = proc_->FindContextOfComponent("c");
  ASSERT_TRUE(proc_->checkpoints().SaveContextState(*ctx).ok());
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());

  int executions = ExecutionLog::Of("c.Add");
  ctx->ClearMembers();
  ASSERT_TRUE(RecoverContextFailure(proc_, ctx->id()).ok());
  // Only the two post-state calls replayed.
  EXPECT_EQ(ExecutionLog::Of("c.Add"), executions + 2);
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 8);
}

TEST_F(ContextFailureTest, UnforcedTailSurvivesContextFailure) {
  // Unlike a process crash, a context failure keeps the log buffer — a
  // call whose records were never forced is still recovered.
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});

  // Run one call, then save the context state WITHOUT any force: the state
  // record exists only in the process's log buffer. Context recovery must
  // still find it there.
  CallMessage msg;
  msg.target_uri = *uri;
  msg.method = "Add";
  msg.args = MakeArgs(100);
  msg.has_call_id = true;
  msg.call_id = CallId{ClientKey{"ghost", 9, 9}, 1};
  msg.has_sender_info = true;
  msg.sender_kind = ComponentKind::kPersistent;
  ASSERT_TRUE(sim_->RouteCall("alpha", msg).ok());

  Context* ctx = proc_->FindContextOfComponent("c");
  ASSERT_TRUE(proc_->checkpoints().SaveContextState(*ctx).ok());
  ASSERT_FALSE(proc_->log().IsStable(ctx->state_record_lsn()));

  int executions = ExecutionLog::Of("c.Add");
  ctx->ClearMembers();
  ASSERT_TRUE(RecoverContextFailure(proc_, ctx->id()).ok());
  EXPECT_EQ(ExecutionLog::Of("c.Add"), executions);  // restored, no replay
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 100);
}

TEST_F(ContextFailureTest, OtherContextsUntouched) {
  ExternalClient client(sim_.get(), "alpha");
  auto a = client.CreateComponent(*proc_, "Counter", "a",
                                  ComponentKind::kPersistent, {});
  auto b = client.CreateComponent(*proc_, "Counter", "b",
                                  ComponentKind::kPersistent, {});
  ASSERT_TRUE(client.Call(*a, "Add", MakeArgs(1)).ok());
  ASSERT_TRUE(client.Call(*b, "Add", MakeArgs(2)).ok());

  Context* ctx_a = proc_->FindContextOfComponent("a");
  Component* b_instance = proc_->FindComponent("b")->instance.get();
  ctx_a->ClearMembers();
  ASSERT_TRUE(RecoverContextFailure(proc_, ctx_a->id()).ok());

  // b's component object is literally the same instance.
  EXPECT_EQ(proc_->FindComponent("b")->instance.get(), b_instance);
  EXPECT_EQ(client.Call(*a, "Get", {})->AsInt(), 1);
  EXPECT_EQ(client.Call(*b, "Get", {})->AsInt(), 2);
}

TEST_F(ContextFailureTest, SubordinatesComeBackWithParent) {
  ExternalClient client(sim_.get(), "alpha");
  auto parent = client.CreateComponent(*proc_, "ParentWithSub", "p",
                                       ComponentKind::kPersistent, {});
  ASSERT_TRUE(client.Call(*parent, "BumpSub", MakeArgs(7)).ok());
  Context* ctx = proc_->FindContextOfComponent("p");

  ctx->ClearMembers();
  ASSERT_TRUE(RecoverContextFailure(proc_, ctx->id()).ok());
  EXPECT_EQ(client.Call(*parent, "GetSub", {})->AsInt(), 7);
}

TEST_F(ContextFailureTest, UnknownContextIsNotFound) {
  EXPECT_TRUE(RecoverContextFailure(proc_, 999).IsNotFound());
}

TEST_F(ContextFailureTest, DuplicatesStillAnsweredAfterContextRecovery) {
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  CallMessage msg;
  msg.target_uri = *uri;
  msg.method = "Add";
  msg.args = MakeArgs(42);
  msg.has_call_id = true;
  msg.call_id = CallId{ClientKey{"ghost", 9, 9}, 7};
  msg.has_sender_info = true;
  msg.sender_kind = ComponentKind::kPersistent;
  ASSERT_TRUE(sim_->RouteCall("alpha", msg).ok());

  Context* ctx = proc_->FindContextOfComponent("c");
  ctx->ClearMembers();
  ASSERT_TRUE(RecoverContextFailure(proc_, ctx->id()).ok());

  int executions = ExecutionLog::Of("c.Add");
  Result<ReplyMessage> dup = sim_->RouteCall("alpha", msg);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->value.AsInt(), 42);
  EXPECT_EQ(ExecutionLog::Of("c.Add"), executions);  // deduped
}

}  // namespace
}  // namespace phoenix
