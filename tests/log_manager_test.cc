#include "wal/log_manager.h"

#include <gtest/gtest.h>

#include "wal/log_reader.h"

namespace phoenix {
namespace {

class LogManagerTest : public ::testing::Test {
 protected:
  LogManagerTest()
      : disk_(DiskParams{}, 1),
        manager_("m/p1.log", &storage_, &disk_, &clock_, &costs_) {}

  StableStorage storage_;
  DiskModel disk_;
  SimClock clock_;
  CostModel costs_;
  LogManager manager_;
};

TEST_F(LogManagerTest, AppendChargesCpuNotDisk) {
  double before = clock_.NowMs();
  manager_.Append(LogRecord(BeginCheckpointRecord{}));
  EXPECT_NEAR(clock_.NowMs() - before, costs_.log_append_ms, 1e-9);
}

TEST_F(LogManagerTest, AppendForceReadBack) {
  IncomingCallRecord rec;
  rec.context_id = 3;
  rec.method = "Go";
  uint64_t lsn = manager_.Append(LogRecord(rec));
  EXPECT_FALSE(manager_.IsStable(lsn));
  manager_.Force();
  EXPECT_TRUE(manager_.IsStable(lsn));

  LogReader reader(manager_.StableLog(), 0);
  auto parsed = reader.Next();
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(std::get<IncomingCallRecord>(parsed->record).method, "Go");
}

TEST_F(LogManagerTest, WellKnownFileRoundTrip) {
  EXPECT_TRUE(manager_.ReadWellKnownLsn().status().IsNotFound());
  manager_.WriteWellKnownLsn(4242);
  ASSERT_TRUE(manager_.ReadWellKnownLsn().ok());
  EXPECT_EQ(*manager_.ReadWellKnownLsn(), 4242u);
  manager_.WriteWellKnownLsn(5000);  // atomically replaced
  EXPECT_EQ(*manager_.ReadWellKnownLsn(), 5000u);
}

TEST_F(LogManagerTest, WellKnownWriteIsForced) {
  double before = clock_.NowMs();
  manager_.WriteWellKnownLsn(1);
  EXPECT_GT(clock_.NowMs(), before);  // paid a disk write
}

TEST_F(LogManagerTest, DropBufferOnCrash) {
  manager_.Append(LogRecord(BeginCheckpointRecord{}));
  manager_.DropBuffer();
  manager_.Force();  // nothing left to force
  EXPECT_EQ(manager_.num_forces(), 0u);
  EXPECT_TRUE(manager_.StableLog().empty());
}

TEST_F(LogManagerTest, StatsDelegate) {
  manager_.Append(LogRecord(BeginCheckpointRecord{}));
  manager_.Append(LogRecord(EndCheckpointRecord{0}));
  manager_.Force();
  EXPECT_EQ(manager_.num_appends(), 2u);
  EXPECT_EQ(manager_.num_forces(), 1u);
  EXPECT_GT(manager_.bytes_forced(), 0u);
}

}  // namespace
}  // namespace phoenix
