// Crash recovery of the full bookstore application: the server process dies
// at assorted points while buyers shop; inventory, baskets and per-store
// sales must recover exactly.

#include <gtest/gtest.h>

#include "bookstore/setup.h"
#include "recovery/recovery_service.h"

namespace phoenix::bookstore {
namespace {

class BookstoreFailureTest : public ::testing::TestWithParam<OptLevel> {};

TEST_P(BookstoreFailureTest, ServerCrashBetweenSessionsRecoversEverything) {
  Simulation sim(OptionsForLevel(GetParam()));
  RegisterBookstoreComponents(sim.factories());
  Machine& server_machine = sim.AddMachine("server");
  auto deployment = Deploy(sim, server_machine, 2, GetParam());
  ASSERT_TRUE(deployment.ok()) << deployment.status().ToString();
  ExternalClient buyer(&sim, "client");

  // alice fills a basket and checks out; bob fills one and leaves it.
  ASSERT_TRUE(buyer
                  .Call(deployment->seller_uri, "AddToBasket",
                        MakeArgs("alice", deployment->store_uris[0],
                                 int64_t{1}))
                  .ok());
  ASSERT_TRUE(buyer
                  .Call(deployment->seller_uri, "Checkout",
                        MakeArgs("alice", "WA"))
                  .ok());
  ASSERT_TRUE(buyer
                  .Call(deployment->seller_uri, "AddToBasket",
                        MakeArgs("bob", deployment->store_uris[1], int64_t{3}))
                  .ok());

  deployment->server_process->Kill();
  ASSERT_TRUE(server_machine.recovery_service()
                  .EnsureProcessAlive(deployment->server_process->pid())
                  .ok());

  // alice's purchase persisted; bob's basket persisted.
  EXPECT_EQ(
      buyer.Call(deployment->store_uris[0], "TotalSold", {})->AsInt(), 1);
  auto bob_items =
      buyer.Call(deployment->seller_uri, "ShowBasket", MakeArgs("bob"));
  ASSERT_TRUE(bob_items.ok()) << bob_items.status().ToString();
  ASSERT_EQ(bob_items->AsList().size(), 1u);
  EXPECT_EQ(bob_items->AsList()[0].AsList()[1].AsInt(), 3);

  // And the recovered system still works end to end.
  auto total = buyer.Call(deployment->seller_uri, "Checkout",
                          MakeArgs("bob", "OR"));
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  EXPECT_EQ(
      buyer.Call(deployment->store_uris[1], "TotalSold", {})->AsInt(), 1);
}

INSTANTIATE_TEST_SUITE_P(AllLevels, BookstoreFailureTest,
                         ::testing::Values(OptLevel::kBaseline,
                                           OptLevel::kOptimizedLogging,
                                           OptLevel::kSpecialized),
                         [](const ::testing::TestParamInfo<OptLevel>& info) {
                           return OptLevelName(info.param);
                         });

TEST(BookstoreCheckpointTest, StateSavesSpeedUpBookstoreRecovery) {
  // The workload must exceed the paper's ~400-call crossover (§5.4) for
  // state records to win.
  const int kCalls = 1000;
  auto recover_after = [&](uint32_t save_every) {
    RuntimeOptions opts = OptionsForLevel(OptLevel::kSpecialized);
    opts.save_context_state_every = save_every;
    opts.process_checkpoint_every = save_every > 0 ? save_every * 2 : 0;
    Simulation sim(opts);
    RegisterBookstoreComponents(sim.factories());
    Machine& server_machine = sim.AddMachine("server");
    auto deployment =
        Deploy(sim, server_machine, 2, OptLevel::kSpecialized).value();
    ExternalClient buyer(&sim, "client");
    // Deep stock so a thousand reservations can't oversell.
    for (const std::string& store : deployment.store_uris) {
      for (int64_t book = 1; book <= 10; ++book) {
        EXPECT_TRUE(
            buyer.Call(store, "Restock", MakeArgs(book, int64_t{10000})).ok());
      }
    }
    for (int i = 0; i < kCalls; ++i) {
      EXPECT_TRUE(buyer
                      .Call(deployment.seller_uri, "AddToBasket",
                            MakeArgs("carol", deployment.store_uris[i % 2],
                                     int64_t{i % 10 + 1}))
                      .ok());
    }
    deployment.server_process->Kill();
    double before = sim.clock().NowMs();
    EXPECT_TRUE(server_machine.recovery_service()
                    .EnsureProcessAlive(deployment.server_process->pid())
                    .ok());
    double recovery_ms = sim.clock().NowMs() - before;
    // Whatever the path, state must be right.
    auto items =
        buyer.Call(deployment.seller_uri, "ShowBasket", MakeArgs("carol"));
    EXPECT_EQ(items->AsList().size(), static_cast<size_t>(kCalls));
    return recovery_ms;
  };
  double without = recover_after(0);
  double with = recover_after(100);
  // With frequent state saves, recovery replays only a short suffix.
  EXPECT_LT(with, without);
}

TEST(BookstoreCrashMidSessionTest, BuyerRetryAfterMidSessionCrash) {
  RuntimeOptions opts = OptionsForLevel(OptLevel::kSpecialized);
  Simulation sim(opts);
  RegisterBookstoreComponents(sim.factories());
  Machine& server_machine = sim.AddMachine("server");
  auto deployment =
      Deploy(sim, server_machine, 2, OptLevel::kSpecialized).value();

  // Crash the seller's process mid AddToBasket (before the reply). The
  // external buyer retries; with no duplicate elimination for externals the
  // item may legitimately appear twice — the §3.1.2 window. Assert the
  // recovered system is *consistent*: basket size matches what Checkout
  // sees, and checkout still succeeds.
  sim.injector().AddTrigger("server", deployment.server_process->pid(),
                            FailurePoint::kBeforeReplySend, 2);
  ExternalClient buyer(&sim, "client");
  ASSERT_TRUE(buyer
                  .Call(deployment.seller_uri, "AddToBasket",
                        MakeArgs("dave", deployment.store_uris[0], int64_t{2}))
                  .ok());
  auto add2 = buyer.Call(deployment.seller_uri, "AddToBasket",
                         MakeArgs("dave", deployment.store_uris[1],
                                  int64_t{4}));
  ASSERT_TRUE(add2.ok()) << add2.status().ToString();

  auto items =
      buyer.Call(deployment.seller_uri, "ShowBasket", MakeArgs("dave"));
  ASSERT_TRUE(items.ok());
  size_t n = items->AsList().size();
  EXPECT_GE(n, 2u);
  EXPECT_LE(n, 3u);  // the retried add may have applied twice
  auto total =
      buyer.Call(deployment.seller_uri, "Checkout", MakeArgs("dave", "WA"));
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  auto after =
      buyer.Call(deployment.seller_uri, "ShowBasket", MakeArgs("dave"));
  EXPECT_TRUE(after->AsList().empty());
}

}  // namespace
}  // namespace phoenix::bookstore
