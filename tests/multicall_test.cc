// §3.5 multi-call optimization, end to end: a persistent component calling
// N distinct servers in one method execution forces once instead of N
// times, stays correct under crashes, and forces again on repeat calls to
// the same server.

#include <gtest/gtest.h>

#include "recovery/recovery_service.h"
#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

// Fans one incoming call out to all its downstream counters.
class FanOut : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("FanOut", [this](const ArgList& a) -> Result<Value> {
      for (const Value& uri : targets_.AsList()) {
        PHX_RETURN_IF_ERROR(
            Call(uri.AsString(), "Add", {a[0]}).status());
      }
      return Value(static_cast<int64_t>(targets_.AsList().size()));
    });
    methods.Register("FanOutTwice", [this](const ArgList& a) -> Result<Value> {
      for (int round = 0; round < 2; ++round) {
        for (const Value& uri : targets_.AsList()) {
          PHX_RETURN_IF_ERROR(
              Call(uri.AsString(), "Add", {a[0]}).status());
        }
      }
      return Value(int64_t{2});
    });
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterValue("targets", &targets_);
  }
  Status Initialize(const ArgList& args) override {
    Value::List uris;
    for (const Value& v : args) uris.push_back(v);
    targets_ = Value(std::move(uris));
    return Status::OK();
  }

 private:
  Value targets_{Value::List{}};
};

class MultiCallTest : public ::testing::Test {
 protected:
  void SetUpSim(bool multicall, int num_targets) {
    RuntimeOptions opts;
    opts.multi_call_optimization = multicall;
    sim_ = std::make_unique<Simulation>(opts);
    RegisterTestComponents(sim_->factories());
    sim_->factories().Register<FanOut>("FanOut");
    alpha_ = &sim_->AddMachine("alpha");
    beta_ = &sim_->AddMachine("beta");
    fan_proc_ = &alpha_->CreateProcess();
    target_proc_ = &beta_->CreateProcess();

    ExternalClient admin(sim_.get(), "alpha");
    ArgList uris;
    for (int i = 0; i < num_targets; ++i) {
      auto uri = admin.CreateComponent(*target_proc_, "Counter",
                                       "t" + std::to_string(i),
                                       ComponentKind::kPersistent, {});
      ASSERT_TRUE(uri.ok());
      targets_.push_back(*uri);
      uris.emplace_back(*uri);
    }
    auto fan = admin.CreateComponent(*fan_proc_, "FanOut", "fan",
                                     ComponentKind::kPersistent,
                                     std::move(uris));
    ASSERT_TRUE(fan.ok());
    fan_uri_ = *fan;
    // Warm the remote-type table so the measured call is steady-state.
    ASSERT_TRUE(admin.Call(fan_uri_, "FanOut", MakeArgs(0)).ok());
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Machine* beta_ = nullptr;
  Process* fan_proc_ = nullptr;
  Process* target_proc_ = nullptr;
  std::vector<std::string> targets_;
  std::string fan_uri_;
};

TEST_F(MultiCallTest, WithoutOptimizationForcesPerServer) {
  SetUpSim(/*multicall=*/false, 5);
  ExternalClient client(sim_.get(), "alpha");
  uint64_t before = fan_proc_->log().num_forces();
  ASSERT_TRUE(client.Call(fan_uri_, "FanOut", MakeArgs(1)).ok());
  // Message-1 force (external client) + 5 outgoing-call forces... of which
  // only those with something buffered hit the disk: msg-1 force covers the
  // incoming record, the first outgoing force is a no-op (nothing new),
  // and each subsequent one flushes the previous reply record. Plus the
  // final reply force (short record). Total real forces: 1 + 4 + 1.
  EXPECT_EQ(fan_proc_->log().num_forces() - before, 6u);
}

TEST_F(MultiCallTest, WithOptimizationForcesOnce) {
  SetUpSim(/*multicall=*/true, 5);
  ExternalClient client(sim_.get(), "alpha");
  uint64_t before = fan_proc_->log().num_forces();
  ASSERT_TRUE(client.Call(fan_uri_, "FanOut", MakeArgs(1)).ok());
  // Message-1 force + the final reply force (which flushes all buffered
  // reply records). The 5 outgoing calls force nothing new.
  EXPECT_EQ(fan_proc_->log().num_forces() - before, 2u);
}

TEST_F(MultiCallTest, RepeatCallToSameServerForcesAgain) {
  SetUpSim(/*multicall=*/true, 3);
  ExternalClient client(sim_.get(), "alpha");
  uint64_t before = fan_proc_->log().num_forces();
  ASSERT_TRUE(client.Call(fan_uri_, "FanOutTwice", MakeArgs(1)).ok());
  // Round 2 revisits all 3 servers: each repeat call must force (3 real
  // flushes of the pending reply records), on top of the message-1 force
  // and the reply force.
  EXPECT_EQ(fan_proc_->log().num_forces() - before, 5u);
}

TEST_F(MultiCallTest, CrashAfterUnforcedCallsStillExactlyOnce) {
  // The optimization's safety argument (§3.5): the servers' last-call
  // tables capture the nondeterminism, so recovery re-obtains the replies
  // by re-sending with the same IDs.
  SetUpSim(/*multicall=*/true, 4);
  sim_->injector().AddTrigger("alpha", fan_proc_->pid(),
                              FailurePoint::kBeforeReplySend, 1);
  // Drive through a persistent client so the crash is fully masked.
  ExternalClient admin(sim_.get(), "alpha");
  Process& driver_proc = alpha_->CreateProcess();
  auto driver = admin.CreateComponent(driver_proc, "Chain", "driver",
                                      ComponentKind::kPersistent,
                                      MakeArgs(fan_uri_, "FanOut"));
  ASSERT_TRUE(driver.ok());

  auto r = admin.Call(*driver, "Bump", MakeArgs(7));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(sim_->injector().crashes_fired(), 1u);

  for (const std::string& t : targets_) {
    // 0 from warm-up + 7 exactly once.
    EXPECT_EQ(admin.Call(t, "Get", {})->AsInt(), 7) << t;
  }
}

TEST_F(MultiCallTest, CrashMidFanOutRedeliversWithSameIds) {
  SetUpSim(/*multicall=*/true, 4);
  // Crash after the 3rd outgoing reply of the measured call (triggers count
  // from registration, so the warm-up's hits don't shift the schedule).
  sim_->injector().AddTrigger("alpha", fan_proc_->pid(),
                              FailurePoint::kAfterOutgoingReply, 3);
  ExternalClient admin(sim_.get(), "alpha");
  Process& driver_proc = alpha_->CreateProcess();
  auto driver = admin.CreateComponent(driver_proc, "Chain", "driver",
                                      ComponentKind::kPersistent,
                                      MakeArgs(fan_uri_, "FanOut"));
  ASSERT_TRUE(driver.ok());
  auto r = admin.Call(*driver, "Bump", MakeArgs(3));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(sim_->injector().crashes_fired(), 1u);
  for (const std::string& t : targets_) {
    EXPECT_EQ(admin.Call(t, "Get", {})->AsInt(), 3) << t;
  }
}

}  // namespace
}  // namespace phoenix
