// Log-head garbage collection: checkpoints bound how much log recovery can
// ever read, so everything older is reclaimable — and recovery from a
// truncated log must behave identically.

#include <gtest/gtest.h>

#include "recovery/checkpoint_manager.h"
#include "recovery/recovery_service.h"
#include "tests/test_components.h"
#include "wal/log_reader.h"

namespace phoenix {
namespace {

using phoenix::testing::RegisterTestComponents;

class LogTruncationTest : public ::testing::Test {
 protected:
  void SetUpSim(RuntimeOptions opts = {}) {
    sim_ = std::make_unique<Simulation>(opts);
    RegisterTestComponents(sim_->factories());
    alpha_ = &sim_->AddMachine("alpha");
    proc_ = &alpha_->CreateProcess();
  }

  // Creates a counter, runs `calls` adds, saves state + checkpoint, runs
  // two more adds (whose force publishes the checkpoint).
  Result<std::string> BuildWorkload(int calls) {
    ExternalClient client(sim_.get(), "alpha");
    PHX_ASSIGN_OR_RETURN(std::string uri,
                         client.CreateComponent(*proc_, "Counter", "c",
                                                ComponentKind::kPersistent,
                                                {}));
    for (int i = 0; i < calls; ++i) {
      PHX_RETURN_IF_ERROR(client.Call(uri, "Add", MakeArgs(1)).status());
    }
    Context* ctx = proc_->FindContextOfComponent("c");
    PHX_RETURN_IF_ERROR(
        proc_->checkpoints().SaveContextState(*ctx).status());
    PHX_RETURN_IF_ERROR(
        proc_->checkpoints().TakeProcessCheckpoint().status());
    PHX_RETURN_IF_ERROR(client.Call(uri, "Add", MakeArgs(1)).status());
    PHX_RETURN_IF_ERROR(client.Call(uri, "Add", MakeArgs(1)).status());
    return uri;
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Process* proc_ = nullptr;
};

TEST_F(LogTruncationTest, NothingReclaimableBeforeFirstCheckpoint) {
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  EXPECT_EQ(proc_->checkpoints().GarbageCollect(), 0u);
  EXPECT_EQ(proc_->log().head_base(), 0u);
}

TEST_F(LogTruncationTest, GcReclaimsPreCheckpointRecords) {
  SetUpSim();
  ASSERT_TRUE(BuildWorkload(20).ok());
  uint64_t size_before = proc_->log().StableLog().size();
  uint64_t next_before = proc_->log().next_lsn();
  uint64_t reclaimed = proc_->checkpoints().GarbageCollect();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(proc_->log().head_base(), reclaimed);
  EXPECT_LT(proc_->log().StableLog().size(), size_before);
  // LSNs are logical: truncation does not move them.
  EXPECT_EQ(proc_->log().next_lsn(), next_before);
}

TEST_F(LogTruncationTest, RecoveryAfterGcIsExact) {
  SetUpSim();
  auto uri = BuildWorkload(15);
  ASSERT_TRUE(uri.ok());
  ASSERT_GT(proc_->checkpoints().GarbageCollect(), 0u);

  proc_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  ExternalClient client(sim_.get(), "alpha");
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 17);
}

TEST_F(LogTruncationTest, GcKeepsLiveLastCallReplies) {
  // A persistent client's last-call reply record written before the state
  // save must survive GC: a duplicate may still need it after recovery.
  SetUpSim();
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  CallMessage msg;
  msg.target_uri = *uri;
  msg.method = "Add";
  msg.args = MakeArgs(42);
  msg.has_call_id = true;
  msg.call_id = CallId{ClientKey{"ghost", 9, 9}, 7};
  msg.has_sender_info = true;
  msg.sender_kind = ComponentKind::kPersistent;
  ASSERT_TRUE(sim_->RouteCall("alpha", msg).ok());

  Context* ctx = proc_->FindContextOfComponent("c");
  ASSERT_TRUE(proc_->checkpoints().SaveContextState(*ctx).ok());
  ASSERT_TRUE(proc_->checkpoints().TakeProcessCheckpoint().ok());
  ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());  // publish

  uint64_t reply_lsn =
      proc_->last_calls().Lookup(ClientKey{"ghost", 9, 9}, ctx->id())
          ->reply_lsn;
  ASSERT_NE(reply_lsn, kInvalidLsn);
  proc_->checkpoints().GarbageCollect();
  EXPECT_LE(proc_->log().head_base(), reply_lsn);  // kept

  proc_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  Result<ReplyMessage> dup = sim_->RouteCall("alpha", msg);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup->value.AsInt(), 42);
}

TEST_F(LogTruncationTest, AutoTruncateOnPublish) {
  RuntimeOptions opts;
  opts.auto_truncate_log = true;
  opts.save_context_state_every = 10;
  opts.process_checkpoint_every = 20;
  SetUpSim(opts);
  ExternalClient client(sim_.get(), "alpha");
  auto uri = client.CreateComponent(*proc_, "Counter", "c",
                                    ComponentKind::kPersistent, {});
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(client.Call(*uri, "Add", MakeArgs(1)).ok());
  }
  EXPECT_GT(proc_->log().head_base(), 0u);  // GC happened along the way

  proc_->Kill();
  ASSERT_TRUE(alpha_->recovery_service().EnsureProcessAlive(1).ok());
  EXPECT_EQ(client.Call(*uri, "Get", {})->AsInt(), 60);
}

TEST_F(LogTruncationTest, ReadBelowBaseIsCorruption) {
  SetUpSim();
  ASSERT_TRUE(BuildWorkload(10).ok());
  ASSERT_GT(proc_->checkpoints().GarbageCollect(), 0u);
  EXPECT_TRUE(
      ReadRecordAt(proc_->log().StableView(), 0).status().IsCorruption());
}

TEST_F(LogTruncationTest, TrimIsMonotoneAndIdempotent) {
  SetUpSim();
  ASSERT_TRUE(BuildWorkload(10).ok());
  uint64_t first = proc_->checkpoints().GarbageCollect();
  ASSERT_GT(first, 0u);
  // Second run with no new checkpoint reclaims nothing further.
  EXPECT_EQ(proc_->checkpoints().GarbageCollect(), 0u);
  // Trimming backwards is a no-op.
  proc_->log().TrimHead(0);
  EXPECT_EQ(proc_->log().head_base(), first);
}

}  // namespace
}  // namespace phoenix
