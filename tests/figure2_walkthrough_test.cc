// Section 2.2's recovery analysis, as executable specification. Figure 2's
// three failure situations for a persistent component serving a persistent
// client and calling a persistent server:
//
//   point 1: failure before message 3 (the outgoing call) is sent
//   point 2: failure after message 3 but before message 2 (the reply)
//   point 3: failure after message 2 is sent
//
// Each test replays the paper's own argument for why the state recovers
// exactly, checking the intermediate claims, not just the end state.

#include <gtest/gtest.h>

#include "recovery/recovery_service.h"
#include "tests/test_components.h"

namespace phoenix {
namespace {

using phoenix::testing::ExecutionLog;
using phoenix::testing::RegisterTestComponents;

class Figure2Test : public ::testing::Test {
 protected:
  Figure2Test() {
    sim_ = std::make_unique<Simulation>();
    RegisterTestComponents(sim_->factories());
    alpha_ = &sim_->AddMachine("alpha");
    beta_ = &sim_->AddMachine("beta");
    client_proc_ = &alpha_->CreateProcess();  // persistent client, no crashes
    component_proc_ = &alpha_->CreateProcess();  // "the persistent component"
    server_proc_ = &beta_->CreateProcess();      // persistent server

    ExternalClient admin(sim_.get(), "alpha");
    server_uri_ = admin.CreateComponent(*server_proc_, "Counter", "server",
                                        ComponentKind::kPersistent, {})
                      .value();
    component_uri_ =
        admin.CreateComponent(*component_proc_, "Chain", "component",
                              ComponentKind::kPersistent,
                              MakeArgs(server_uri_))
            .value();
    client_uri_ = admin.CreateComponent(*client_proc_, "Chain", "client",
                                        ComponentKind::kPersistent,
                                        MakeArgs(component_uri_, "Bump"))
                      .value();
    ExecutionLog::Reset();
  }

  // Drives one incoming call (message 1) into the component through the
  // persistent client tier and returns its observed reply.
  Result<Value> DriveOnce(int64_t n) {
    ExternalClient program(sim_.get(), "alpha");
    return program.Call(client_uri_, "Bump", MakeArgs(n));
  }

  std::unique_ptr<Simulation> sim_;
  Machine* alpha_ = nullptr;
  Machine* beta_ = nullptr;
  Process* client_proc_ = nullptr;
  Process* component_proc_ = nullptr;
  Process* server_proc_ = nullptr;
  std::string client_uri_, component_uri_, server_uri_;
};

TEST_F(Figure2Test, Point1_FailureBeforeMessage3) {
  // "If the component has remembered message 1, it performs the method
  //  call. By condition 4, the client resends message 1 in case the
  //  component has not remembered the message. Duplicates are eliminated
  //  by condition 3."
  sim_->injector().AddTrigger("alpha", component_proc_->pid(),
                              FailurePoint::kBeforeOutgoingSend, 1);
  auto reply = DriveOnce(5);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->AsInt(), 5);

  EXPECT_EQ(sim_->injector().crashes_fired(), 1u);
  // Exactly-once at every tier, even though the method body may have run
  // more than once (the second run's duplicate send was eliminated).
  ExternalClient probe(sim_.get(), "alpha");
  EXPECT_EQ(probe.Call(component_uri_, "Get", {})->AsInt(), 5);
  EXPECT_EQ(probe.Call(server_uri_, "Get", {})->AsInt(), 5);
}

TEST_F(Figure2Test, Point2_FailureAfterMessage3BeforeMessage2) {
  // "By condition 1, the component recovers message 3 and its state at the
  //  send of message 3. By condition 4, it resends message 3 ... The ID is
  //  the same by condition 2. The server eliminates duplicates by
  //  condition 3, returning the same message 4."
  sim_->injector().AddTrigger("alpha", component_proc_->pid(),
                              FailurePoint::kAfterOutgoingReply, 1);
  int server_adds_before = ExecutionLog::Of("server.Add");

  auto reply = DriveOnce(7);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->AsInt(), 7);

  // The server's method ran exactly once: the replayed component either
  // found message 4 on its log or re-sent message 3 with the same ID and
  // was answered from the server's last-call table without re-execution.
  EXPECT_EQ(ExecutionLog::Of("server.Add"), server_adds_before + 1);
  ExternalClient probe(sim_.get(), "alpha");
  EXPECT_EQ(probe.Call(server_uri_, "Get", {})->AsInt(), 7);
  EXPECT_EQ(probe.Call(component_uri_, "Get", {})->AsInt(), 7);
}

TEST_F(Figure2Test, Point3_FailureAfterMessage2) {
  // "By condition 5, the component does not resend message 2 ... If the
  //  client has not received message 2, it retries the method call by
  //  condition 4. The component detects the duplicate ... and returns
  //  message 2."
  //
  // Crash the component right after it sends the reply; the client DID
  // receive it, so nothing retries, and the next call finds the component
  // dead and revives it with state intact.
  sim_->injector().AddTrigger("alpha", component_proc_->pid(),
                              FailurePoint::kAfterReplySend, 1);
  auto reply = DriveOnce(9);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->AsInt(), 9);
  EXPECT_FALSE(component_proc_->alive());

  auto again = DriveOnce(1);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->AsInt(), 10);
  EXPECT_TRUE(component_proc_->alive());

  // Variant: the component crashes before the reply reaches the client —
  // "if the client has not received message 2, it retries the method call
  // by condition 4. The component detects the duplicate message by checking
  // its globally unique ID and returns message 2 to the client."
  sim_->injector().AddTrigger("alpha", component_proc_->pid(),
                              FailurePoint::kBeforeReplySend, 1);
  int component_bumps = ExecutionLog::Of("component.Bump");
  int server_adds = ExecutionLog::Of("server.Add");
  auto third = DriveOnce(4);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(third->AsInt(), 14);
  // The component's body re-ran under redo recovery (original execution
  // plus the replay of every logged call since creation — no checkpoints
  // here), but the client's retried message was answered from the
  // last-call table, and the server applied the inner call exactly once
  // (duplicate eliminated).
  EXPECT_GE(ExecutionLog::Of("component.Bump"), component_bumps + 2);
  EXPECT_EQ(ExecutionLog::Of("server.Add"), server_adds + 1);
  ExternalClient probe2(sim_.get(), "alpha");
  EXPECT_EQ(probe2.Call(server_uri_, "Get", {})->AsInt(), 14);
}

TEST_F(Figure2Test, BoundariesComeFromTheLog) {
  // "In all cases, the boundaries of the failure situations are defined by
  //  the interactions that the recovering component finds on the log."
  // A crash before anything of the call reached the component's log is
  // indistinguishable from the call never arriving: the persistent client
  // re-sends it whole.
  sim_->injector().AddTrigger("alpha", component_proc_->pid(),
                              FailurePoint::kBeforeIncomingLogged, 1);
  auto reply = DriveOnce(3);
  ASSERT_TRUE(reply.ok());
  ExternalClient probe(sim_.get(), "alpha");
  EXPECT_EQ(probe.Call(component_uri_, "Get", {})->AsInt(), 3);
  EXPECT_EQ(probe.Call(server_uri_, "Get", {})->AsInt(), 3);
}

}  // namespace
}  // namespace phoenix
