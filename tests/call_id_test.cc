#include "runtime/call_id.h"

#include <gtest/gtest.h>

namespace phoenix {
namespace {

TEST(ClientKeyTest, OrderingAndEquality) {
  ClientKey a{"m1", 1, 5};
  ClientKey b{"m1", 1, 5};
  ClientKey c{"m1", 2, 5};
  ClientKey d{"m2", 1, 5};
  EXPECT_EQ(a, b);
  EXPECT_LT(a, c);
  EXPECT_LT(a, d);
}

TEST(ClientKeyTest, EncodeDecode) {
  ClientKey key{"machineB", 7, 123456};
  Encoder enc;
  key.EncodeTo(enc);
  Decoder dec(enc.buffer());
  Result<ClientKey> out = ClientKey::DecodeFrom(dec);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, key);
}

TEST(CallIdTest, EncodeDecodeAndToString) {
  CallId id{ClientKey{"m", 2, 9}, 77};
  Encoder enc;
  id.EncodeTo(enc);
  Decoder dec(enc.buffer());
  Result<CallId> out = CallId::DecodeFrom(dec);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, id);
  EXPECT_EQ(id.ToString(), "m/2/9#77");
}

TEST(UriTest, MakeAndParse) {
  std::string uri = MakeComponentUri("alpha", 3, "store1");
  EXPECT_EQ(uri, "phx://alpha/3/store1");
  Result<ParsedUri> parsed = ParseComponentUri(uri);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->machine, "alpha");
  EXPECT_EQ(parsed->process_id, 3u);
  EXPECT_EQ(parsed->component_name, "store1");
}

TEST(UriTest, RejectsMalformed) {
  EXPECT_FALSE(ParseComponentUri("http://alpha/3/x").ok());
  EXPECT_FALSE(ParseComponentUri("phx://alpha/3").ok());
  EXPECT_FALSE(ParseComponentUri("phx://alpha/notanumber/x").ok());
  EXPECT_FALSE(ParseComponentUri("phx:///3/x").ok());
  EXPECT_FALSE(ParseComponentUri("phx://alpha/3/").ok());
  EXPECT_FALSE(ParseComponentUri("").ok());
}

TEST(UriTest, RoundTripsComponentNamesWithUnderscores) {
  std::string uri = MakeComponentUri("m", 1, "seller_basket_buyer42");
  Result<ParsedUri> parsed = ParseComponentUri(uri);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->component_name, "seller_basket_buyer42");
}

}  // namespace
}  // namespace phoenix
