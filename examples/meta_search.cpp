// The paper's motivating examples for read-only components (§3.2.3): a
// meta-search engine and a statistics collector. Both are stateless but
// read persistent components, so their replies are unrepeatable — exactly
// the case Algorithm 5 optimizes: no logging at the read-only component, no
// forcing at its callers, but callers log the unrepeatable reply.
//
//   $ ./build/examples/meta_search

#include <cstdio>

#include "common/strings.h"
#include "core/phoenix.h"
#include "recovery/recovery_service.h"

namespace {

using namespace phoenix;  // NOLINT: example brevity

// Persistent index shard: term -> hit count, mutated by Publish.
class IndexShard : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Publish", [this](const ArgList& a) -> Result<Value> {
      // args: term, hits to add
      Value::List& rows = index_.MutableList();
      for (Value& row : rows) {
        if (row.AsList()[0].AsString() == a[0].AsString()) {
          row.MutableList()[1] =
              Value(row.AsList()[1].AsInt() + a[1].AsInt());
          return row;
        }
      }
      Value::List fresh;
      fresh.push_back(a[0]);
      fresh.push_back(a[1]);
      rows.push_back(Value(fresh));
      return Value(std::move(fresh));
    });
    methods.Register(
        "Lookup",
        [this](const ArgList& a) -> Result<Value> {
          for (const Value& row : index_.AsList()) {
            if (row.AsList()[0].AsString() == a[0].AsString()) {
              return row.AsList()[1];
            }
          }
          return Value(int64_t{0});
        },
        MethodTraits{.read_only = true});
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterValue("index", &index_);
  }

 private:
  Value index_{Value::List{}};
};

// Read-only meta-search: fans a query out to every shard and sums the hits.
// Stateless — nothing to recover, nothing logged at this component.
class MetaSearch : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Query", [this](const ArgList& a) -> Result<Value> {
      int64_t total = 0;
      for (const Value& shard : shards_.AsList()) {
        PHX_ASSIGN_OR_RETURN(Value hits,
                             Call(shard.AsString(), "Lookup", {a[0]}));
        total += hits.AsInt();
      }
      return Value(total);
    });
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterValue("shards", &shards_);
  }
  Status Initialize(const ArgList& args) override {
    Value::List shards;
    for (const Value& uri : args) shards.push_back(uri);
    shards_ = Value(std::move(shards));
    return Status::OK();
  }

 private:
  Value shards_{Value::List{}};
};

}  // namespace

int main() {
  Simulation sim;
  sim.factories().Register<IndexShard>("IndexShard");
  sim.factories().Register<MetaSearch>("MetaSearch");
  Machine& machine = sim.AddMachine("search");
  Process& proc = machine.CreateProcess();
  ExternalClient client(&sim, "search");

  ArgList shard_uris;
  for (int i = 1; i <= 3; ++i) {
    auto uri = client.CreateComponent(proc, "IndexShard",
                                      StrCat("shard", i),
                                      ComponentKind::kPersistent, {});
    if (!uri.ok()) return 1;
    shard_uris.emplace_back(*uri);
    client.Call(*uri, "Publish", MakeArgs("recovery", int64_t{10 * i}))
        .value();
    client.Call(*uri, "Publish", MakeArgs("logging", int64_t{i})).value();
  }
  auto meta = client.CreateComponent(proc, "MetaSearch", "meta",
                                     ComponentKind::kReadOnly,
                                     std::move(shard_uris));
  if (!meta.ok()) return 1;

  uint64_t appends_before = sim.TotalAppends();
  auto recovery_hits = client.Call(*meta, "Query", MakeArgs("recovery"));
  auto logging_hits = client.Call(*meta, "Query", MakeArgs("logging"));
  std::printf("recovery: %lld hits, logging: %lld hits\n",
              static_cast<long long>(recovery_hits->AsInt()),
              static_cast<long long>(logging_hits->AsInt()));
  std::printf("log records written by the two meta-queries: %llu "
              "(read-only end to end — Algorithm 5)\n",
              static_cast<unsigned long long>(sim.TotalAppends() -
                                              appends_before));

  std::printf("\nkilling the search process; shards recover, meta-search "
              "needs no recovery at all...\n");
  proc.Kill();
  auto after = client.Call(*meta, "Query", MakeArgs("recovery"));
  std::printf("recovery: %lld hits after crash+recovery (expected %lld)\n",
              static_cast<long long>(after->AsInt()),
              static_cast<long long>(recovery_hits->AsInt()));
  return after->AsInt() == recovery_hits->AsInt() ? 0 : 1;
}
