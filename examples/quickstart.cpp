// Quickstart: declare a persistent component, call it, kill its process,
// and watch Phoenix recover its state transparently.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/phoenix.h"
#include "recovery/recovery_service.h"

namespace {

using namespace phoenix;  // NOLINT: example brevity

// A persistent bank-account-ish counter. Everything a component needs:
//  1. methods registered by name (the dispatch table the interceptors use),
//  2. fields registered for checkpointing (the reflection substitute),
//  3. nothing else — logging and recovery are the runtime's job.
class Counter : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Add", [this](const ArgList& args) -> Result<Value> {
      count_ += args[0].AsInt();
      return Value(count_);
    });
    methods.Register(
        "Get",
        [this](const ArgList&) -> Result<Value> { return Value(count_); },
        MethodTraits{.read_only = true});
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterInt("count", &count_);
  }

 private:
  int64_t count_ = 0;
};

}  // namespace

int main() {
  // The simulation is the "world": machines, disks, network, clock.
  Simulation sim;
  sim.factories().Register<Counter>("Counter");
  Machine& machine = sim.AddMachine("alpha");
  Process& process = machine.CreateProcess();

  // An external client (a plain program, outside Phoenix's guarantees).
  ExternalClient client(&sim, "alpha");

  auto uri = client.CreateComponent(process, "Counter", "tally",
                                    ComponentKind::kPersistent, {});
  if (!uri.ok()) {
    std::fprintf(stderr, "create failed: %s\n", uri.status().ToString().c_str());
    return 1;
  }
  std::printf("created %s\n", uri->c_str());

  for (int i = 1; i <= 5; ++i) {
    auto reply = client.Call(*uri, "Add", MakeArgs(i));
    std::printf("Add(%d) -> %s\n", i, reply->ToString().c_str());
  }

  uint64_t forces_before_crash = sim.TotalForces();
  std::printf("\n*** killing the process (unforced state dies with it) ***\n");
  process.Kill();

  std::printf("*** recovery service restarts it; redo recovery replays the "
              "log ***\n");
  Status recovered = machine.recovery_service().EnsureProcessAlive(1);
  std::printf("recovery: %s\n", recovered.ToString().c_str());

  auto after = client.Call(*uri, "Get", {});
  std::printf("state after crash + recovery: %s (expected 15)\n",
              after->ToString().c_str());
  std::printf("simulated time elapsed: %.2f ms, log forces before crash: %llu\n",
              sim.clock().NowMs(),
              static_cast<unsigned long long>(forces_before_crash));
  return after->AsInt() == 15 ? 0 : 1;
}
