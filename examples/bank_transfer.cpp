// A two-machine funds-transfer service built on Phoenix/App: a persistent
// TransferCoordinator moves money between persistent Account components on
// another machine. Crashes are injected at the worst possible moments —
// after the debit, before the credit — and the exactly-once guarantee keeps
// money conserved without any application-level recovery code.
//
//   $ ./build/examples/bank_transfer

#include <cstdio>

#include "core/phoenix.h"
#include "recovery/recovery_service.h"

namespace {

using namespace phoenix;  // NOLINT: example brevity

class Account : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Deposit", [this](const ArgList& a) -> Result<Value> {
      balance_ += a[0].AsInt();
      return Value(balance_);
    });
    methods.Register("Withdraw", [this](const ArgList& a) -> Result<Value> {
      if (balance_ < a[0].AsInt()) {
        return Status::FailedPrecondition("insufficient funds");
      }
      balance_ -= a[0].AsInt();
      return Value(balance_);
    });
    methods.Register(
        "Balance",
        [this](const ArgList&) -> Result<Value> { return Value(balance_); },
        MethodTraits{.read_only = true});
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterInt("balance", &balance_);
  }
  Status Initialize(const ArgList& args) override {
    if (!args.empty()) balance_ = args[0].AsInt();
    return Status::OK();
  }

 private:
  int64_t balance_ = 0;
};

// Persistent middle tier: one Transfer call = Withdraw at the source +
// Deposit at the destination. The paper's machinery (forced sends, call-ID
// dedupe, replay) is what makes the two legs exactly-once even when this
// component's process dies between them.
class TransferCoordinator : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Transfer", [this](const ArgList& a) -> Result<Value> {
      const std::string& from = a[0].AsString();
      const std::string& to = a[1].AsString();
      int64_t amount = a[2].AsInt();
      PHX_RETURN_IF_ERROR(Call(from, "Withdraw", MakeArgs(amount)).status());
      PHX_RETURN_IF_ERROR(Call(to, "Deposit", MakeArgs(amount)).status());
      completed_ += 1;
      return Value(completed_);
    });
    methods.Register(
        "Completed",
        [this](const ArgList&) -> Result<Value> { return Value(completed_); },
        MethodTraits{.read_only = true});
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterInt("completed", &completed_);
  }

 private:
  int64_t completed_ = 0;
};

}  // namespace

int main() {
  Simulation sim;
  sim.factories().Register<Account>("Account");
  sim.factories().Register<TransferCoordinator>("TransferCoordinator");
  Machine& bank = sim.AddMachine("bank");
  Machine& front = sim.AddMachine("front");
  Process& accounts_proc = bank.CreateProcess();
  Process& coord_proc = front.CreateProcess();

  ExternalClient teller(&sim, "front");
  auto alice = teller.CreateComponent(accounts_proc, "Account", "alice",
                                      ComponentKind::kPersistent,
                                      MakeArgs(int64_t{1000}));
  auto bob = teller.CreateComponent(accounts_proc, "Account", "bob",
                                    ComponentKind::kPersistent,
                                    MakeArgs(int64_t{1000}));
  auto coord = teller.CreateComponent(coord_proc, "TransferCoordinator",
                                      "coordinator",
                                      ComponentKind::kPersistent, {});
  if (!alice.ok() || !bob.ok() || !coord.ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  // Crash the accounts process right before acknowledging transfer #5's
  // withdraw (the coordinator, a persistent client, retries with the same
  // call ID and the duplicate is eliminated), and the coordinator right
  // after it finishes transfer #3 (recovered on the next call).
  sim.injector().AddTrigger("bank", accounts_proc.pid(),
                            FailurePoint::kBeforeReplySend, 9);
  sim.injector().AddTrigger("front", coord_proc.pid(),
                            FailurePoint::kAfterReplySend, 3);

  for (int i = 1; i <= 6; ++i) {
    auto r = teller.Call(*coord, "Transfer",
                         MakeArgs(*alice, *bob, int64_t{100}));
    std::printf("transfer %d: %s\n", i,
                r.ok() ? "ok" : r.status().ToString().c_str());
  }

  int64_t a = teller.Call(*alice, "Balance", {})->AsInt();
  int64_t b = teller.Call(*bob, "Balance", {})->AsInt();
  int64_t done = teller.Call(*coord, "Completed", {})->AsInt();
  std::printf("\nalice=%lld bob=%lld total=%lld transfers=%lld crashes=%llu\n",
              static_cast<long long>(a), static_cast<long long>(b),
              static_cast<long long>(a + b), static_cast<long long>(done),
              static_cast<unsigned long long>(sim.injector().crashes_fired()));

  if (a + b != 2000 || a != 400 || done != 6) {
    std::printf("EXACTLY-ONCE VIOLATED (expected alice=400, bob=1600, 6 "
                "transfers)\n");
    return 1;
  }
  std::printf("money conserved, every transfer applied exactly once, across "
              "%llu injected crashes.\n",
              static_cast<unsigned long long>(sim.injector().crashes_fired()));
  return 0;
}
