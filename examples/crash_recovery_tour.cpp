// A guided tour of the recovery machinery: what is on the log, what a
// context state record contains, what the two recovery passes do, and how
// checkpoints move the replay origin. Prints a narrated trace.
//
//   $ ./build/examples/crash_recovery_tour

#include <cstdio>

#include "core/phoenix.h"
#include "recovery/checkpoint_manager.h"
#include "recovery/recovery_service.h"
#include "wal/log_reader.h"

namespace {

using namespace phoenix;  // NOLINT: example brevity

class Ledger : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Append", [this](const ArgList& a) -> Result<Value> {
      entries_.MutableList().push_back(a[0]);
      total_ += a[0].AsInt();
      return Value(total_);
    });
    methods.Register(
        "Total",
        [this](const ArgList&) -> Result<Value> { return Value(total_); },
        MethodTraits{.read_only = true});
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterValue("entries", &entries_);
    fields.RegisterInt("total", &total_);
  }

 private:
  Value entries_{Value::List{}};
  int64_t total_ = 0;
};

const char* TypeName(LogRecordType type) {
  switch (type) {
    case LogRecordType::kIncomingCall:
      return "IncomingCall";
    case LogRecordType::kReplySent:
      return "ReplySent";
    case LogRecordType::kOutgoingCall:
      return "OutgoingCall";
    case LogRecordType::kReplyReceived:
      return "ReplyReceived";
    case LogRecordType::kCreation:
      return "Creation";
    case LogRecordType::kLastCallReply:
      return "LastCallReply";
    case LogRecordType::kContextState:
      return "ContextState";
    case LogRecordType::kBeginCheckpoint:
      return "BeginCheckpoint";
    case LogRecordType::kCheckpointContextEntry:
      return "CkptContextEntry";
    case LogRecordType::kCheckpointLastCall:
      return "CkptLastCall";
    case LogRecordType::kCheckpointRemoteType:
      return "CkptRemoteType";
    case LogRecordType::kEndCheckpoint:
      return "EndCheckpoint";
  }
  return "?";
}

void DumpLog(Process& process) {
  std::printf("  stable log of %s:\n", process.log_name().c_str());
  LogReader reader(process.log().StableLog(), 0);
  while (auto rec = reader.Next()) {
    std::printf("    lsn %6llu  %s\n",
                static_cast<unsigned long long>(rec->lsn),
                TypeName(RecordTypeOf(rec->record)));
  }
  auto wkf = process.log().ReadWellKnownLsn();
  if (wkf.ok()) {
    std::printf("    well-known file -> begin-checkpoint at lsn %llu\n",
                static_cast<unsigned long long>(*wkf));
  } else {
    std::printf("    well-known file: (none yet)\n");
  }
}

}  // namespace

int main() {
  Simulation sim;
  sim.factories().Register<Ledger>("Ledger");
  Machine& machine = sim.AddMachine("alpha");
  Process& process = machine.CreateProcess();
  ExternalClient client(&sim, "alpha");

  std::printf("== 1. create a persistent Ledger and append three entries ==\n");
  auto uri = client.CreateComponent(process, "Ledger", "ledger",
                                    ComponentKind::kPersistent, {});
  for (int i = 1; i <= 3; ++i) {
    client.Call(*uri, "Append", MakeArgs(i * 10));
  }
  DumpLog(process);

  std::printf("\n== 2. save the context state (application checkpoint) ==\n");
  Context* ctx = process.FindContextOfComponent("ledger");
  auto state_lsn = process.checkpoints().SaveContextState(*ctx);
  std::printf("  state record at lsn %llu holds the serialized fields\n",
              static_cast<unsigned long long>(*state_lsn));

  std::printf("\n== 3. take a process checkpoint (tables + recovery LSNs) ==\n");
  process.checkpoints().TakeProcessCheckpoint();
  client.Call(*uri, "Append", MakeArgs(40));  // the force publishes it
  DumpLog(process);

  std::printf("\n== 4. crash ==\n");
  process.Kill();
  std::printf("  volatile state gone; stable log and well-known file "
              "survive\n");

  std::printf("\n== 5. recover: pass 1 finds the contexts, restores the\n"
              "      state record; pass 2 replays only the suffix ==\n");
  double t0 = sim.clock().NowMs();
  Status s = machine.recovery_service().EnsureProcessAlive(process.pid());
  std::printf("  recovery: %s in %.1f simulated ms\n", s.ToString().c_str(),
              sim.clock().NowMs() - t0);

  auto total = client.Call(*uri, "Total", {});
  std::printf("  ledger total after recovery: %s (expected 100)\n",
              total->ToString().c_str());
  return total->AsInt() == 100 ? 0 : 1;
}
