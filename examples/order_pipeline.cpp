// The paper's introduction motivates Phoenix/App against the classic TP
// "string of beads" style, where stateless components must read their state
// from recoverable queues and write it back after every step. Here is the
// alternative it enables: a natural, stateful three-tier order pipeline —
// intake, payment, shipping, on three machines — with NO queues, NO
// distributed commits and NO application recovery code, surviving crashes
// of every tier mid-pipeline.
//
//   $ ./build/examples/order_pipeline

#include <cstdio>

#include "common/strings.h"
#include "core/phoenix.h"
#include "recovery/recovery_service.h"

namespace {

using namespace phoenix;  // NOLINT: example brevity

// Tier 3: shipping. Keeps the manifest of shipped orders.
class Shipping : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Ship", [this](const ArgList& a) -> Result<Value> {
      manifest_.MutableList().push_back(a[0]);  // order id
      return Value(static_cast<int64_t>(manifest_.AsList().size()));
    });
    methods.Register(
        "Shipped",
        [this](const ArgList&) -> Result<Value> {
          return Value(static_cast<int64_t>(manifest_.AsList().size()));
        },
        MethodTraits{.read_only = true});
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterValue("manifest", &manifest_);
  }

 private:
  Value manifest_{Value::List{}};
};

// Tier 2: payments. Charges and remembers the running total.
class Payments : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Charge", [this](const ArgList& a) -> Result<Value> {
      if (a[1].AsInt() <= 0) {
        return Status::InvalidArgument("amount must be positive");
      }
      charged_ += a[1].AsInt();
      ++charges_;
      return Value(charged_);
    });
    methods.Register(
        "Totals",
        [this](const ArgList&) -> Result<Value> {
          return Value(MakeArgs(charges_, charged_));
        },
        MethodTraits{.read_only = true});
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterInt("charged", &charged_);
    fields.RegisterInt("charges", &charges_);
  }

 private:
  int64_t charged_ = 0;
  int64_t charges_ = 0;
};

// Tier 1: intake. One PlaceOrder call = charge + ship + record — ordinary
// sequential code holding its state in fields; the runtime makes every step
// exactly-once across crashes of any tier.
class OrderIntake : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("PlaceOrder", [this](const ArgList& a) -> Result<Value> {
      int64_t order_id = ++orders_taken_;
      PHX_RETURN_IF_ERROR(
          CallRef(payments_, "Charge", MakeArgs(order_id, a[0].AsInt()))
              .status());
      PHX_RETURN_IF_ERROR(
          CallRef(shipping_, "Ship", MakeArgs(order_id)).status());
      return Value(order_id);
    });
    methods.Register(
        "OrdersTaken",
        [this](const ArgList&) -> Result<Value> {
          return Value(orders_taken_);
        },
        MethodTraits{.read_only = true});
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterInt("orders_taken", &orders_taken_);
    fields.RegisterComponentRef("payments", &payments_);
    fields.RegisterComponentRef("shipping", &shipping_);
  }
  Status Initialize(const ArgList& args) override {
    payments_.uri = args[0].AsString();
    shipping_.uri = args[1].AsString();
    return Status::OK();
  }

 private:
  int64_t orders_taken_ = 0;
  ComponentRefField payments_;
  ComponentRefField shipping_;
};

}  // namespace

int main() {
  Simulation sim;
  sim.factories().Register<OrderIntake>("OrderIntake");
  sim.factories().Register<Payments>("Payments");
  sim.factories().Register<Shipping>("Shipping");
  Machine& front = sim.AddMachine("front");
  Machine& pay_machine = sim.AddMachine("payments");
  Machine& ship_machine = sim.AddMachine("shipping");
  Process& intake_proc = front.CreateProcess();
  Process& pay_proc = pay_machine.CreateProcess();
  Process& ship_proc = ship_machine.CreateProcess();

  ExternalClient web(&sim, "front");
  auto payments = web.CreateComponent(pay_proc, "Payments", "payments",
                                      ComponentKind::kPersistent, {});
  auto shipping = web.CreateComponent(ship_proc, "Shipping", "shipping",
                                      ComponentKind::kPersistent, {});
  auto intake = web.CreateComponent(
      intake_proc, "OrderIntake", "intake", ComponentKind::kPersistent,
      MakeArgs(*payments, *shipping));
  if (!intake.ok()) return 1;

  // Crash every tier at an awkward moment: payments right before it
  // acknowledges order 3's charge; shipping right after logging order 5's
  // Ship call; intake right after it answers order 7. (Intake's clients
  // are external web requests, so it is only crashed *between* requests —
  // mid-request crashes of the downstream tiers are fully masked by
  // intake's persistent retries; see docs/PROTOCOL.md on the external
  // window.)
  sim.injector().AddTrigger("payments", pay_proc.pid(),
                            FailurePoint::kBeforeReplySend, 3);
  sim.injector().AddTrigger("shipping", ship_proc.pid(),
                            FailurePoint::kAfterIncomingLogged, 5);
  sim.injector().AddTrigger("front", intake_proc.pid(),
                            FailurePoint::kAfterReplySend, 7);

  const int kOrders = 8;
  for (int i = 1; i <= kOrders; ++i) {
    auto r = web.Call(*intake, "PlaceOrder", MakeArgs(int64_t{10 * i}));
    std::printf("order %d -> %s\n", i,
                r.ok() ? StrCat("id ", r->AsInt()).c_str()
                       : r.status().ToString().c_str());
  }

  auto totals = web.Call(*payments, "Totals", {});
  auto shipped = web.Call(*shipping, "Shipped", {});
  auto taken = web.Call(*intake, "OrdersTaken", {});
  std::printf("\ntaken=%lld charges=%lld charged=$%lld shipped=%lld "
              "(crashes injected: %llu)\n",
              static_cast<long long>(taken->AsInt()),
              static_cast<long long>(totals->AsList()[0].AsInt()),
              static_cast<long long>(totals->AsList()[1].AsInt()),
              static_cast<long long>(shipped->AsInt()),
              static_cast<unsigned long long>(
                  sim.injector().crashes_fired()));

  // The single invariant the string-of-beads model needs queues and
  // distributed commits to get: every order charged once AND shipped once.
  bool exact = taken->AsInt() == kOrders &&
               totals->AsList()[0].AsInt() == kOrders &&
               totals->AsList()[1].AsInt() == 10 * (kOrders * (kOrders + 1)) / 2 &&
               shipped->AsInt() == kOrders;
  std::printf(exact ? "pipeline exactly-once: OK\n"
                    : "PIPELINE INVARIANT VIOLATED\n");
  return exact ? 0 : 1;
}
