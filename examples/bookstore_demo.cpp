// The paper's §5.5 online bookstore (Figure 10), driven through the console
// BookBuyer. Shows the same shopping session executed at all three
// optimization levels, with elapsed simulated time and log-force counts —
// a miniature interactive version of Table 8.
//
//   $ ./build/examples/bookstore_demo

#include <cstdio>

#include "bookstore/book_buyer.h"
#include "bookstore/setup.h"

namespace {

using namespace phoenix;            // NOLINT: example brevity
using namespace phoenix::bookstore;  // NOLINT

void Say(const Result<std::string>& line) {
  if (line.ok()) {
    std::printf("%s\n", line->c_str());
  } else {
    std::printf("ERROR: %s\n", line.status().ToString().c_str());
  }
}

void RunLevel(OptLevel level) {
  std::printf("\n==== %s ====\n", OptLevelName(level));
  Simulation sim(OptionsForLevel(level));
  RegisterBookstoreComponents(sim.factories());
  sim.AddMachine("client");
  Machine& server = sim.AddMachine("server");
  auto deployment = Deploy(sim, server, /*num_stores=*/2, level);
  if (!deployment.ok()) {
    std::printf("deploy failed: %s\n", deployment.status().ToString().c_str());
    return;
  }

  BookBuyer buyer(&sim, &*deployment, "alice", "WA", "client");
  double t0 = sim.clock().NowMs();
  uint64_t f0 = sim.TotalForces();

  Say(buyer.SearchBooks("recovery"));
  Say(buyer.AddFirstHitFromEachStore("recovery"));
  Say(buyer.ShowBasket());
  Say(buyer.TotalWithTax());
  Say(buyer.EmptyBasket());

  std::printf("-- session: %.1f ms simulated, %llu log forces\n",
              sim.clock().NowMs() - t0,
              static_cast<unsigned long long>(sim.TotalForces() - f0));

  // Bonus: a checkout with a crash in the middle, fully recovered.
  Say(buyer.AddFirstHitFromEachStore("transaction"));
  deployment->server_process->Kill();
  std::printf("-- server process killed; next call revives it --\n");
  Say(buyer.Checkout());
}

}  // namespace

int main() {
  RunLevel(OptLevel::kBaseline);
  RunLevel(OptLevel::kOptimizedLogging);
  RunLevel(OptLevel::kSpecialized);
  return 0;
}
