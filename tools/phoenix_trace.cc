// phoenix_trace — scenario runner and log inspector.
//
// Runs the Figure 10 bookstore under a chosen optimization level, optionally
// injecting crashes, then prints run statistics and (on request) the
// recovery log and the runtime tables of Table 1. A debugging/teaching tool:
// every record the interceptors write is visible here.
//
// Usage:
//   phoenix_trace [--level=baseline|optimized|specialized]
//                 [--sessions=N] [--stores=N] [--wal-shards=N]
//                 [--crash=<point>:<hit>]...    (point: see --list-points)
//                 [--net-drop=P] [--net-dup=P] [--torn-tail=P]
//                 [--save-every=N] [--checkpoint-every=N] [--gc]
//                 [--multicall] [--dump-log] [--plan] [--dump-tables]
//                 [--trace-jsonl=FILE] [--trace-chrome=FILE]
//                 [--metrics-json=FILE]
//                 [--flight-events=N] [--flight-jsonl=FILE]
//                 [--list-points]
//   phoenix_trace --dump-trace=FILE [--component=SUBSTR] [--cat=CATEGORY]
//                 [--from-ms=T0] [--to-ms=T1]
//
// Examples:
//   phoenix_trace --level=specialized --sessions=2 --dump-log
//   phoenix_trace --crash=before_reply_send:3 --dump-tables
//   phoenix_trace --trace-jsonl=run.jsonl --trace-chrome=run.trace.json
//   phoenix_trace --crash=during_checkpoint:1 --flight-jsonl=crash.jsonl
//   phoenix_trace --dump-trace=run.jsonl --component=server/1 --cat=log

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bookstore/setup.h"
#include "common/strings.h"
#include "obs/json.h"
#include "obs/tracer.h"
#include "recovery/checkpoint_manager.h"
#include "recovery/replay_plan.h"
#include "wal/log_dump.h"
#include "wal/merged_log_reader.h"
#include "wal/shard_router.h"

namespace phoenix::tools {
namespace {

// Ring depth when --flight-jsonl is given without --flight-events.
constexpr size_t kDefaultFlightEvents = 256;

struct Options {
  bookstore::OptLevel level = bookstore::OptLevel::kSpecialized;
  int sessions = 1;
  int stores = 2;
  uint32_t wal_shards = 1;  // >1 shards the server's WAL (--wal-shards)
  std::vector<std::pair<FailurePoint, uint64_t>> crashes;
  uint32_t save_every = 0;
  uint32_t checkpoint_every = 0;
  // Hostile-environment injection (see docs/FAULTS.md).
  double net_drop = 0.0;   // per-message drop probability on every link
  double net_dup = 0.0;    // per-call duplicate probability on every link
  double torn_tail = 0.0;  // probability a crash tears the stable tail
  bool gc = false;
  bool multicall = false;
  bool dump_log = false;
  bool plan = false;  // annotate --dump-log with the replay planner's view
  bool dump_tables = false;
  // Trace recording (scenario mode).
  std::string trace_jsonl;   // write the run's trace as JSONL here
  std::string trace_chrome;  // write the run's Chrome trace_event JSON here
  std::string metrics_json;  // write the run's metrics snapshot here
  // Flight recorder: bounded last-N-events-per-component ring; dumped to
  // flight_jsonl on every crash (and at exit if no crash fired).
  size_t flight_events = 0;
  std::string flight_jsonl;
  // Trace dump mode: read a previously written JSONL trace instead of
  // running a scenario.
  std::string dump_trace;
  std::string component;  // substring filter on the component label
  std::string category;   // exact-match filter on the event category
  double from_ms = 0;
  double to_ms = std::numeric_limits<double>::infinity();
};

bool ParsePoint(const std::string& name, FailurePoint* out) {
  for (int p = 0; p < kNumFailurePoints; ++p) {
    auto point = static_cast<FailurePoint>(p);
    if (name == FailurePointName(point)) {
      *out = point;
      return true;
    }
  }
  return false;
}

void ListPoints() {
  std::printf("failure points:\n");
  for (int p = 0; p < kNumFailurePoints; ++p) {
    std::printf("  %s\n", FailurePointName(static_cast<FailurePoint>(p)));
  }
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--level=...] [--sessions=N] [--stores=N] "
               "[--wal-shards=N] "
               "[--crash=point:hit] [--net-drop=P] [--net-dup=P] "
               "[--torn-tail=P] [--save-every=N] [--checkpoint-every=N] "
               "[--gc] [--multicall] [--dump-log] [--plan] [--dump-tables] "
               "[--trace-jsonl=F] [--trace-chrome=F] [--metrics-json=F] "
               "[--flight-events=N] [--flight-jsonl=F] "
               "[--list-points]\n"
               "       %s --dump-trace=F [--component=S] [--cat=C] "
               "[--from-ms=T] [--to-ms=T]\n",
               argv0, argv0);
  return 2;
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  std::string prefix = "--" + name + "=";
  if (!StartsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    std::fprintf(stderr, "short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

// Reads a JSONL trace written by --trace-jsonl (or a Simulation) and prints
// the events that survive the component/time-range filter.
int DumpTrace(const Options& opts) {
  std::FILE* f = std::fopen(opts.dump_trace.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", opts.dump_trace.c_str());
    return 1;
  }
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);

  auto events = obs::ParseTraceJsonl(content);
  if (!events.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 events.status().ToString().c_str());
    return 1;
  }
  std::vector<obs::TraceEvent> filtered = obs::FilterTrace(
      *events, opts.component, opts.category, opts.from_ms, opts.to_ms);
  std::printf("%zu of %zu event(s) match\n", filtered.size(), events->size());
  for (const obs::TraceEvent& ev : filtered) {
    std::string ids;
    if (ev.trace_id != 0) ids += StrCat(" trace=", ev.trace_id);
    if (ev.span_id != 0) ids += StrCat(" span=", ev.span_id);
    if (ev.parent_span_id != 0) ids += StrCat(" parent=", ev.parent_span_id);
    std::string args;
    for (const obs::TraceArg& a : ev.args) {
      args += StrCat(" ", a.key, "=", a.value);
    }
    std::printf("%12.3f ms  %s %-10s %-24s %-18s%s%s\n", ev.ts_ms,
                obs::TracePhaseName(ev.phase), ev.category.c_str(),
                ev.name.c_str(), ev.component.c_str(), ids.c_str(),
                args.c_str());
  }
  return 0;
}

void DumpTables(Process& proc) {
  std::printf("\ncontext table of %s:\n", proc.log_name().c_str());
  for (const auto& [context_id, ctx] : proc.contexts()) {
    Component* parent = ctx->parent();
    std::printf(
        "  ctx %llu  parent %s (%s %s)  out-seq %llu  state-lsn %s  "
        "creation-lsn %s\n",
        static_cast<unsigned long long>(context_id),
        parent != nullptr ? parent->name().c_str() : "?",
        parent != nullptr ? ComponentKindName(parent->kind()) : "?",
        parent != nullptr ? parent->type_name().c_str() : "?",
        static_cast<unsigned long long>(ctx->last_outgoing_seq()),
        ctx->state_record_lsn() == kInvalidLsn
            ? "-"
            : StrCat(ctx->state_record_lsn()).c_str(),
        ctx->creation_lsn() == kInvalidLsn
            ? "-"
            : StrCat(ctx->creation_lsn()).c_str());
  }

  std::printf("last call table (%zu entries):\n", proc.last_calls().size());
  for (const auto& [key, entry] : proc.last_calls().entries()) {
    std::printf("  client %s -> ctx %llu  seq %llu  reply %s  lsn %s\n",
                key.first.ToString().c_str(),
                static_cast<unsigned long long>(entry.context_id),
                static_cast<unsigned long long>(entry.seq),
                entry.reply_in_memory ? "in-memory" : "on-log",
                entry.reply_lsn == kInvalidLsn
                    ? "-"
                    : StrCat(entry.reply_lsn).c_str());
  }

  std::printf("remote component table (%zu entries):\n",
              proc.remote_types().entries().size());
  for (const auto& [uri, info] : proc.remote_types().entries()) {
    std::printf("  %s is %s %s\n", uri.c_str(), ComponentKindName(info.kind),
                info.type_name.c_str());
  }
}

int Run(const Options& opts) {
  RuntimeOptions runtime = bookstore::OptionsForLevel(opts.level);
  runtime.save_context_state_every = opts.save_every;
  runtime.process_checkpoint_every = opts.checkpoint_every;
  runtime.auto_truncate_log = opts.gc;
  runtime.multi_call_optimization = opts.multicall;
  if (opts.wal_shards > 1) runtime.wal_shards = opts.wal_shards;

  SimulationParams params;
  params.trace_enabled =
      !opts.trace_jsonl.empty() || !opts.trace_chrome.empty();
  params.flight_recorder_events =
      opts.flight_events > 0
          ? opts.flight_events
          : (opts.flight_jsonl.empty() ? 0 : kDefaultFlightEvents);
  params.flight_dump_path = opts.flight_jsonl;
  Simulation sim(runtime, params);
  bookstore::RegisterBookstoreComponents(sim.factories());
  sim.AddMachine("client");
  Machine& server = sim.AddMachine("server");
  auto deployment = bookstore::Deploy(sim, server, opts.stores, opts.level);
  if (!deployment.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }
  Process& proc = *deployment->server_process;

  for (const auto& [point, hit] : opts.crashes) {
    sim.injector().AddTrigger("server", proc.pid(), point, hit);
  }
  if (opts.net_drop > 0.0 || opts.net_dup > 0.0) {
    LinkFaults faults;
    faults.drop_p = opts.net_drop;
    faults.dup_p = opts.net_dup;
    sim.network().fault_plan().SetDefaultFaults(faults);
  }
  if (opts.torn_tail > 0.0) {
    sim.injector().EnableTornTails(opts.torn_tail, params.seed * 131 + 7);
  }

  ExternalClient buyer(&sim, "client");
  double t0 = sim.clock().NowMs();
  for (int i = 0; i < opts.sessions; ++i) {
    auto session = bookstore::RunBuyerSession(
        sim, *deployment, buyer, "buyer" + std::to_string(i), "WA");
    if (!session.ok()) {
      std::printf("session %d FAILED: %s\n", i,
                  session.status().ToString().c_str());
    } else {
      std::printf("session %d: %lld hits, %lld in basket, total $%s, "
                  "%lld removed\n",
                  i, static_cast<long long>(session->search_hits),
                  static_cast<long long>(session->items_in_basket),
                  FormatDouble(session->total_with_tax, 2).c_str(),
                  static_cast<long long>(session->items_removed));
    }
  }

  std::printf(
      "\n%s, %d session(s): %.1f simulated ms, %llu forces, %llu appends, "
      "%llu crash(es), %llu recover(ies), log %llu bytes (head at %llu)\n",
      bookstore::OptLevelName(opts.level), opts.sessions,
      sim.clock().NowMs() - t0,
      static_cast<unsigned long long>(sim.TotalForces()),
      static_cast<unsigned long long>(sim.TotalAppends()),
      static_cast<unsigned long long>(sim.injector().crashes_fired()),
      static_cast<unsigned long long>(
          server.recovery_service().recoveries_performed()),
      static_cast<unsigned long long>(proc.log().StableLog().size()),
      static_cast<unsigned long long>(proc.log().head_base()));

  if (opts.dump_log) {
    LogAnnotations annotations;
    const bool sharded = proc.log().sharded();
    if (opts.plan) {
      // Build the same plan the parallel replayer would build for a crash
      // right now, and pin its chain/edge view to the records that open
      // replay units. Sharded logs plan over the gsn-merged record stream,
      // so the annotations key on composite LSNs and land on the matching
      // per-shard lines.
      ReplayPlanInputs inputs;
      inputs.machine = proc.machine_name();
      inputs.process_id = proc.pid();
      ReplayPlan plan;
      if (sharded) {
        MergedLogScan merged = ScanShardedLog(proc.log());
        DeriveReplayOriginsFromRecords(merged.records, &inputs.origins,
                                       &inputs.origin_orders);
        uint64_t scan_start = kInvalidLsn;
        for (const auto& [context_id, order] : inputs.origin_orders) {
          if (order != kInvalidLsn) scan_start = std::min(scan_start, order);
        }
        if (scan_start == kInvalidLsn) scan_start = 0;
        std::vector<SkippedRange> gaps;
        for (const ShardDamage& damage : merged.damage) {
          for (const SkippedRange& range : damage.skipped) {
            gaps.push_back(range);
          }
          if (damage.tail_torn) {
            gaps.push_back(SkippedRange{
                damage.torn_offset,
                MakeShardLsn(damage.shard,
                             proc.log().shard_stable_end(damage.shard))});
          }
        }
        plan =
            BuildReplayPlanFromRecords(merged.records, gaps, scan_start,
                                       inputs);
      } else {
        LogView view = proc.log().StableView();
        inputs.origins = DeriveReplayOrigins(view, proc.log().head_base());
        uint64_t scan_start = kInvalidLsn;
        for (const auto& [context_id, origin] : inputs.origins) {
          if (origin != kInvalidLsn) scan_start = std::min(scan_start, origin);
        }
        if (scan_start == kInvalidLsn) scan_start = proc.log().head_base();
        plan = BuildReplayPlan(view, scan_start, inputs);
      }
      for (uint32_t c = 0; c < plan.chains.size(); ++c) {
        const ReplayChain& chain = plan.chains[c];
        for (uint32_t u = 0; u < chain.units.size(); ++u) {
          const PlannedUnit& unit = chain.units[u];
          std::string note = StrCat("[plan: chain ", c, " unit ", u);
          for (const UnitRef& dep : unit.deps) {
            note += StrCat("  <- chain ", dep.chain, " unit ", dep.index);
          }
          note += "]";
          annotations[unit.replay.start_lsn] = std::move(note);
        }
      }
      std::string fallback_note =
          plan.fallback == PlanFallback::kNone
              ? std::string()
              : StrCat("  (sequential fallback: ",
                       PlanFallbackName(plan.fallback), ")");
      std::printf(
          "\nreplay plan: %zu chain(s), %llu cross edge(s), "
          "critical path %.2f ms of %.2f ms total%s\n",
          plan.chains.size(),
          static_cast<unsigned long long>(plan.cross_edges),
          plan.critical_path_ms, plan.total_replay_ms,
          fallback_note.c_str());
    }
    if (sharded) {
      std::vector<ShardDumpInput> shards;
      for (uint32_t s = 0; s < proc.log().shard_count(); ++s) {
        ShardDumpInput input;
        input.shard = s;
        input.log_name = proc.log().shard_log_name(s);
        input.view = LogView{&proc.log().ShardStableLog(s),
                             proc.log().shard_head_base(s)};
        input.marks = &proc.log().shard_force_marks(s);
        shards.push_back(input);
      }
      std::printf("\nsharded recovery log of %s (%u shard(s)):\n%s",
                  proc.log_name().c_str(), proc.log().shard_count(),
                  phoenix::DumpShardedLogs(shards, annotations).c_str());
    } else {
      std::printf("\nrecovery log of %s:\n%s", proc.log_name().c_str(),
                  phoenix::DumpLog(proc.log().StableView(),
                                   proc.log().force_marks(), annotations)
                      .c_str());
    }
  }
  if (opts.dump_tables) DumpTables(proc);

  bool io_ok = true;
  if (!opts.trace_jsonl.empty()) {
    io_ok &= WriteTextFile(opts.trace_jsonl, sim.tracer().ExportJsonl());
    if (io_ok) {
      std::printf("trace: %zu event(s) -> %s\n", sim.tracer().events().size(),
                  opts.trace_jsonl.c_str());
    }
  }
  if (!opts.trace_chrome.empty()) {
    io_ok &= WriteTextFile(opts.trace_chrome, sim.tracer().ExportChromeTrace());
    if (io_ok) {
      std::printf("chrome trace: %s (load in chrome://tracing)\n",
                  opts.trace_chrome.c_str());
    }
  }
  if (!opts.metrics_json.empty()) {
    obs::JsonWriter w(2);
    sim.metrics().WriteJson(w);
    io_ok &= WriteTextFile(opts.metrics_json, w.str() + "\n");
    if (io_ok) {
      std::printf("metrics: %s\n", opts.metrics_json.c_str());
    }
  }
  if (!opts.flight_jsonl.empty()) {
    // Crashes already rewrote the file from Process::Kill; without one,
    // write the final ring contents so the flag always yields a file.
    if (sim.injector().crashes_fired() == 0) {
      io_ok &=
          WriteTextFile(opts.flight_jsonl, sim.tracer().ExportFlightRecorder());
    }
    std::printf("flight recorder: last %zu event(s)/component -> %s\n",
                sim.tracer().flight_recorder_capacity(),
                opts.flight_jsonl.c_str());
  }
  return io_ok ? 0 : 1;
}

int Main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--list-points") {
      ListPoints();
      return 0;
    } else if (ParseFlag(arg, "level", &value)) {
      if (value == "baseline") {
        opts.level = bookstore::OptLevel::kBaseline;
      } else if (value == "optimized") {
        opts.level = bookstore::OptLevel::kOptimizedLogging;
      } else if (value == "specialized") {
        opts.level = bookstore::OptLevel::kSpecialized;
      } else {
        return Usage(argv[0]);
      }
    } else if (ParseFlag(arg, "sessions", &value)) {
      opts.sessions = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "stores", &value)) {
      opts.stores = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "wal-shards", &value)) {
      opts.wal_shards = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "save-every", &value)) {
      opts.save_every = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "checkpoint-every", &value)) {
      opts.checkpoint_every = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "net-drop", &value)) {
      opts.net_drop = std::atof(value.c_str());
    } else if (ParseFlag(arg, "net-dup", &value)) {
      opts.net_dup = std::atof(value.c_str());
    } else if (ParseFlag(arg, "torn-tail", &value)) {
      opts.torn_tail = std::atof(value.c_str());
    } else if (arg == "--gc") {
      opts.gc = true;
    } else if (arg == "--multicall") {
      opts.multicall = true;
    } else if (arg == "--dump-log") {
      opts.dump_log = true;
    } else if (arg == "--plan") {
      opts.plan = true;
      opts.dump_log = true;  // the annotations live on the dump's lines
    } else if (arg == "--dump-tables") {
      opts.dump_tables = true;
    } else if (ParseFlag(arg, "trace-jsonl", &value)) {
      opts.trace_jsonl = value;
    } else if (ParseFlag(arg, "trace-chrome", &value)) {
      opts.trace_chrome = value;
    } else if (ParseFlag(arg, "metrics-json", &value)) {
      opts.metrics_json = value;
    } else if (ParseFlag(arg, "flight-events", &value)) {
      opts.flight_events = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "flight-jsonl", &value)) {
      opts.flight_jsonl = value;
    } else if (ParseFlag(arg, "dump-trace", &value)) {
      opts.dump_trace = value;
    } else if (ParseFlag(arg, "component", &value)) {
      opts.component = value;
    } else if (ParseFlag(arg, "cat", &value)) {
      opts.category = value;
    } else if (ParseFlag(arg, "from-ms", &value)) {
      opts.from_ms = std::atof(value.c_str());
    } else if (ParseFlag(arg, "to-ms", &value)) {
      opts.to_ms = std::atof(value.c_str());
    } else if (ParseFlag(arg, "crash", &value)) {
      size_t colon = value.find(':');
      std::string point_name =
          colon == std::string::npos ? value : value.substr(0, colon);
      uint64_t hit = colon == std::string::npos
                         ? 1
                         : std::strtoull(value.c_str() + colon + 1, nullptr,
                                         10);
      FailurePoint point;
      if (!ParsePoint(point_name, &point)) {
        std::fprintf(stderr, "unknown failure point '%s'\n",
                     point_name.c_str());
        ListPoints();
        return 2;
      }
      opts.crashes.emplace_back(point, hit);
    } else {
      return Usage(argv[0]);
    }
  }
  if (!opts.dump_trace.empty()) return DumpTrace(opts);
  return Run(opts);
}

}  // namespace
}  // namespace phoenix::tools

int main(int argc, char** argv) { return phoenix::tools::Main(argc, argv); }
