// phoenix_prof — causal call-tree profiler over recorded traces.
//
// Reads a JSONL trace written by phoenix_trace --trace-jsonl (or any
// Simulation export), reconstructs the cross-process call tree from the
// trace/span/parent identity the runtime threads through every message, and
// attributes each chain's end-to-end latency to phases: execution, network
// transfer, disk (seek / rotational wait / transfer), and durability wait
// split into own-force dispatch vs time parked in group commit. Per-chain
// phase breakdowns sum to the chain's wall-clock latency.
//
// Usage:
//   phoenix_prof --trace=FILE [--top=N] [--json=FILE]
//               [--budget-ms=PHASE=MS]...
//
// --budget-ms checks a per-phase latency budget against the trace-wide phase
// totals (the same bucket names the breakdown table prints: "execution",
// "network", "disk.seek", "durability.park", "recovery.replay", ...), using
// the SLO machinery the bench sentinel uses. Any exceeded budget makes the
// exit code non-zero, so chaos/prof smoke runs can gate on attribution.
//
// Examples:
//   phoenix_trace --sessions=2 --trace-jsonl=run.jsonl
//   phoenix_prof --trace=run.jsonl --top=5
//   phoenix_prof --trace=run.jsonl --json=run.prof.json   # phoenix.prof.v1
//   phoenix_prof --trace=run.jsonl --budget-ms=durability.park=50

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.h"
#include "obs/benchdiff.h"
#include "obs/profile.h"
#include "obs/tracer.h"

namespace phoenix::tools {
namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --trace=FILE [--top=N] [--json=FILE]\n"
               "          [--budget-ms=PHASE=MS]...\n",
               argv0);
  return 2;
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  std::string prefix = "--" + name + "=";
  if (!StartsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ReadTextFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return written == content.size();
}

int Main(int argc, char** argv) {
  std::string trace_path;
  std::string json_path;
  std::vector<obs::Budget> budgets;
  size_t top_n = 3;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "trace", &value)) {
      trace_path = value;
    } else if (ParseFlag(arg, "json", &value)) {
      json_path = value;
    } else if (ParseFlag(arg, "top", &value)) {
      top_n = static_cast<size_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "budget-ms", &value)) {
      size_t eq = value.find('=');
      if (eq == std::string::npos) return Usage(argv[0]);
      budgets.push_back(obs::Budget{value.substr(0, eq),
                                    std::atof(value.c_str() + eq + 1)});
    } else {
      return Usage(argv[0]);
    }
  }
  if (trace_path.empty()) return Usage(argv[0]);

  std::string content;
  if (!ReadTextFile(trace_path, &content)) {
    std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
    return 1;
  }
  auto events = obs::ParseTraceJsonl(content);
  if (!events.ok()) {
    std::fprintf(stderr, "parse error in %s: %s\n", trace_path.c_str(),
                 events.status().ToString().c_str());
    return 1;
  }

  obs::ProfileReport report = obs::BuildProfile(*events);
  std::fputs(obs::RenderProfileText(report, top_n).c_str(), stdout);

  if (!json_path.empty()) {
    if (!WriteTextFile(json_path, obs::ProfileToJson(report) + "\n")) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("\nprofile json: %s\n", json_path.c_str());
  }

  if (budgets.empty()) return 0;
  // Per-phase latency budgets against the trace-wide totals. An absent
  // phase spent 0 ms and passes; only measured overruns fail the run.
  bool violated = false;
  std::printf("\nphase budgets:\n");
  for (const obs::BudgetOutcome& outcome :
       obs::CheckBudgets(report.total_phase_ms, budgets)) {
    std::printf("  %-24s <= %10.3f ms: %10.3f ms %s\n",
                outcome.budget.key.c_str(), outcome.budget.max,
                outcome.present ? outcome.value : 0.0,
                outcome.violated ? "VIOLATION" : "ok");
    violated = violated || outcome.violated;
  }
  if (violated) {
    std::printf("phase budgets: VIOLATED\n");
    return 1;
  }
  std::printf("phase budgets: ok\n");
  return 0;
}

}  // namespace
}  // namespace phoenix::tools

int main(int argc, char** argv) { return phoenix::tools::Main(argc, argv); }
