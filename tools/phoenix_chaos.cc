// phoenix_chaos — seeded hostile-environment campaign driver.
//
// Sweeps randomized combinations of crash points, lossy-network faults
// (drop/duplicate/jitter), faulty-storage injections (torn tails, targeted
// bit-rot on state records and the well-known file), optimization levels
// and client topologies against the bookstore, checking the torture-test
// exactly-once oracle after every run: every session's reservations and
// sales must be accounted for exactly once.
//
// Persistent topologies (a persistent ShoppingAgent driving the seller)
// must come out exact under every fault mix — any drift is a violation and
// the campaign exits non-zero. The external-direct topology exercises the
// paper's §3.1.2 window of vulnerability: an external client that loses a
// reply reissues under a NEW call id, so duplicate executions are expected
// there; the campaign counts them (wov_duplicate_executions) rather than
// masking them, and only undercounts or inconsistent inventory are
// violations.
//
// With --overlap=N > 1 the campaign also sweeps *concurrent* shopping
// sessions: a seeded subset of runs executes its sessions in overlapping
// waves (Simulation::RunSessions) of 2..N chains, half of them with group
// commit enabled, so exactly-once is checked while durability waits park,
// coalesce, and abort across crashes. The oracle is unchanged — concurrency
// must never change what got sold.
//
// Every decision flows from --seed through split Random streams, so a rerun
// with the same flags emits a byte-identical phoenix.chaos.v1 report.
//
// With --wal-shards=N > 1 the driver runs the sharded-WAL campaign
// instead: every run executes the same seeded workload twice — once on an
// N-shard WAL under crash/storage attacks that target a single shard file
// (one shard's torn tail, bit-rot on the shard holding the newest state
// record, well-known-file rot on the meta shard), and once as a fault-free
// single-log twin — and the exactly-once oracle plus an FNV-1a state-hash
// diff against the twin must both come out clean.
//
// With --async-checkpoint the driver runs the async-checkpoint campaign:
// concurrent workloads with the inline save/checkpoint cadence off and the
// background checkpoint sweeper on, seeded crashes fired *inside* the
// background sweeps (state capture, checkpoint bracket, group flush) with
// optional crash-time torn tails, hash-diffed against a fault-free async
// twin of the same workload.
//
// Usage:
//   phoenix_chaos [--runs=N] [--seed=S] [--sessions=N] [--overlap=N]
//                 [--wal-shards=N] [--async-checkpoint]
//                 [--out=FILE] [--verbose]

#include <cstdio>
#include <cstring>
#include <string>
#include <variant>
#include <vector>

#include "bookstore/setup.h"
#include "common/random.h"
#include "common/strings.h"
#include "obs/bench_reporter.h"
#include "wal/log_reader.h"

namespace phoenix::tools {
namespace {

inline constexpr char kChaosSchema[] = "phoenix.chaos.v1";

struct CampaignOptions {
  int runs = 500;
  uint64_t seed = 42;
  int sessions = 8;
  // Maximum overlapping sessions per wave. 1 = every session sequential
  // (the pre-session-scheduler harness, byte-identical draws); > 1 lets a
  // seeded subset of runs overlap their sessions and flip group commit on.
  // The default sweeps past the old cap of 4 so wide waves (deep group
  // batches, more parked chains per flush) are exercised routinely.
  int overlap = 8;
  std::string out;  // empty: BenchReporter default (BENCH_<name>.json)
  bool verbose = false;
  // Run the crash-during-recovery campaign instead of the classic one:
  // seeded crashes at recovery-phase fault points (nested up to depth 3)
  // plus between-attempt storage attacks, with a fault-free twin-run
  // state-hash oracle.
  bool crash_during_recovery = false;
  // > 1 runs the sharded-WAL campaign: N-shard faulted runs with
  // single-shard storage attacks, hash-diffed against a fault-free
  // single-log twin.
  uint32_t wal_shards = 1;
  // Run the async-checkpoint campaign: concurrent workloads with the
  // background checkpoint sweeper on and inline cadence off, seeded
  // crashes fired inside the sweeps, hash-diffed against a fault-free
  // async twin.
  bool async_checkpoint = false;
};

enum class Topology {
  kRemoteAgent,     // persistent agent on its own machine
  kColocatedAgent,  // persistent agent in a second process on the server
  kExternalDirect,  // external client drives the seller directly (WoV)
};

const char* TopologyName(Topology t) {
  switch (t) {
    case Topology::kRemoteAgent:
      return "remote_agent";
    case Topology::kColocatedAgent:
      return "colocated_agent";
    case Topology::kExternalDirect:
      return "external_direct";
  }
  return "?";
}

// Persistent workflow tier (same shape as the torture test's agent): one
// Session call adds a book to the buyer's basket and checks out. Its
// retries carry stable call IDs, so crashes and lost replies anywhere
// inside the session are fully masked by duplicate elimination.
class ShoppingAgent : public Component {
 public:
  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Session", [this](const ArgList& a) -> Result<Value> {
      const std::string& buyer = a[0].AsString();
      const std::string& store = a[1].AsString();
      int64_t book = a[2].AsInt();
      PHX_RETURN_IF_ERROR(
          CallRef(seller_, "AddToBasket", MakeArgs(buyer, store, book))
              .status());
      PHX_ASSIGN_OR_RETURN(
          Value total,
          CallRef(seller_, "Checkout", MakeArgs(buyer, std::string("WA"))));
      ++sessions_done_;
      return total;
    });
    methods.Register(
        "SessionsDone",
        [this](const ArgList&) -> Result<Value> {
          return Value(sessions_done_);
        },
        MethodTraits{.read_only = true});
  }
  void RegisterFields(FieldRegistry& fields) override {
    fields.RegisterComponentRef("seller", &seller_);
    fields.RegisterInt("sessions_done", &sessions_done_);
  }
  Status Initialize(const ArgList& args) override {
    seller_.uri = args[0].AsString();
    return Status::OK();
  }

 private:
  ComponentRefField seller_;
  int64_t sessions_done_ = 0;
};

// One randomized run configuration, fully derived from the campaign seed.
struct RunConfig {
  uint64_t sim_seed = 1;
  bookstore::OptLevel level = bookstore::OptLevel::kSpecialized;
  uint32_t save_every = 0;
  uint32_t checkpoint_every = 0;
  Topology topology = Topology::kRemoteAgent;
  int stores = 2;
  std::vector<std::pair<FailurePoint, uint64_t>> crashes;
  LinkFaults faults;        // default faults on every link
  bool targeted_drop = false;  // drop the first Checkout reply
  double torn_p = 0.0;      // torn-tail probability per crash
  bool bitrot_state = false;  // mid-run bit-rot on the newest state record
  bool bitrot_wkf = false;    // mid-run bit-rot on the well-known file
  int overlap = 1;          // sessions per concurrent wave (1 = sequential)
  bool group_commit = false;  // coalesce durability waits across the wave
  bool attack_agent = false;  // storage attack hits the agent process
  bool parallel_replay = false;  // recover with the parallel replay engine
};

RunConfig MakeRunConfig(const CampaignOptions& campaign, int run) {
  Random rng(campaign.seed * 1000003ull + static_cast<uint64_t>(run));
  RunConfig cfg;
  cfg.sim_seed = campaign.seed * 7919ull + static_cast<uint64_t>(run) + 1;
  switch (rng.Uniform(3)) {
    case 0:
      cfg.level = bookstore::OptLevel::kBaseline;
      break;
    case 1:
      cfg.level = bookstore::OptLevel::kOptimizedLogging;
      break;
    default:
      cfg.level = bookstore::OptLevel::kSpecialized;
      break;
  }
  const uint32_t kSaveChoices[] = {0, 3, 7};
  cfg.save_every = kSaveChoices[rng.Uniform(3)];
  cfg.checkpoint_every = cfg.save_every > 0 ? cfg.save_every * 2 : 0;
  cfg.topology = static_cast<Topology>(rng.Uniform(3));
  cfg.stores = 1 + static_cast<int>(rng.Uniform(2));

  uint64_t crash_count = rng.Uniform(5);  // 0..4 crash triggers
  for (uint64_t i = 0; i < crash_count; ++i) {
    // Index 6 maps to the group-flush hook: a crash that fires *inside* a
    // group commit, taking the whole parked batch's unforced tail at once.
    // It only trips on runs where group commit actually flushes, and those
    // flushes are far rarer than protocol hooks, so it gets a short fuse.
    uint64_t draw = rng.Uniform(7);
    FailurePoint point = draw < 6 ? static_cast<FailurePoint>(draw)
                                  : FailurePoint::kDuringGroupFlush;
    uint64_t hit = point == FailurePoint::kDuringGroupFlush
                       ? 1 + rng.Uniform(6)
                       : 1 + rng.Uniform(100);
    cfg.crashes.emplace_back(point, hit);
  }

  if (rng.Bernoulli(0.7)) {  // lossy network
    cfg.faults.drop_p = rng.NextDouble() * 0.08;
    cfg.faults.dup_p = rng.NextDouble() * 0.05;
    cfg.faults.delay_jitter_ms = rng.NextDouble() * 2.0;
  }
  cfg.targeted_drop = rng.Bernoulli(0.25);
  if (rng.Bernoulli(0.5)) {  // faulty storage
    cfg.torn_p = 0.1 + rng.NextDouble() * 0.5;
  }
  cfg.bitrot_state = rng.Bernoulli(0.25);
  cfg.bitrot_wkf = rng.Bernoulli(0.15);
  // Half the storage attacks go after the *agent* process instead of the
  // seller — the persistent tier whose replay masks everything else. Only
  // meaningful in agent topologies; external_direct has no agent.
  cfg.attack_agent = rng.Bernoulli(0.5);
  // Recover a seeded subset of runs with the parallel replay planner, so
  // the exactly-once oracle also polices plan-driven recovery (and its
  // sequential fallbacks on salvaged logs) under every fault mix.
  cfg.parallel_replay = rng.Bernoulli(0.4);
  // Draws gated on the flag so --overlap=1 replays the sequential
  // harness's exact decision stream.
  if (campaign.overlap > 1 && rng.Bernoulli(0.6)) {
    cfg.overlap =
        2 + static_cast<int>(rng.Uniform(
                static_cast<uint64_t>(campaign.overlap - 1)));
    cfg.group_commit = rng.Bernoulli(0.5);
  }
  return cfg;
}

// Campaign-wide tallies, aggregated across runs before each sim dies.
struct CampaignStats {
  uint64_t runs = 0;
  uint64_t violations = 0;
  uint64_t wov_duplicate_executions = 0;
  uint64_t sessions_total = 0;
  uint64_t crashes_fired = 0;
  uint64_t recoveries = 0;
  uint64_t net_dropped = 0;
  uint64_t net_duplicated = 0;
  uint64_t torn_tails_injected = 0;
  uint64_t torn_tails_salvaged = 0;
  uint64_t salvage_wkf_fallback = 0;
  uint64_t salvage_full_scan = 0;
  uint64_t salvage_ranges_skipped = 0;
  uint64_t salvage_state_fallback = 0;
  uint64_t dedupe_hits = 0;
  uint64_t retries = 0;
  // Concurrent-session sweep.
  uint64_t concurrent_runs = 0;
  uint64_t group_commit_runs = 0;
  uint64_t group_flushes = 0;
  uint64_t group_coalesced = 0;
  // Parallel-replay sweep.
  uint64_t parallel_replay_runs = 0;
  uint64_t replay_chains = 0;
  uint64_t replay_edges = 0;
  uint64_t replay_fallbacks = 0;
  // Per-topology breakdown.
  uint64_t topo_runs[3] = {0, 0, 0};
  uint64_t topo_violations[3] = {0, 0, 0};
  uint64_t topo_wov[3] = {0, 0, 0};
};

// Crashes the target process mid-run (the seller's, or the agent's when
// the run drew attack_agent) and flips bits in the places salvage must
// tolerate: the newest context-state record's payload and/or the
// well-known file; tear_shard additionally tears one log's (on sharded
// WALs: one shard file's) un-externalized stable tail. Recovery runs
// immediately via the recovery service. On a sharded log the state-record
// bit-rot targets exactly the shard file holding the gsn-newest state
// record — the other shard files are untouched.
Status ApplyStorageAttack(bool bitrot_state, bool bitrot_wkf, bool tear_shard,
                          Simulation& sim, Machine& target_machine,
                          Process& target_proc) {
  target_proc.Kill();
  const std::string log_name = target_proc.log_name();
  if (bitrot_state) {
    const LogManager& log = target_proc.log();
    if (log.sharded()) {
      // Find the gsn-newest readable state record across all shard files.
      uint32_t state_shard = 0;
      uint64_t state_local = kInvalidLsn;
      uint64_t best_order = 0;
      bool found = false;
      for (uint32_t s = 0; s < log.shard_count(); ++s) {
        LogView view = log.ShardStableView(s);
        LogReader reader(view, log.shard_head_base(s));
        reader.EnableSalvage();
        reader.EnableGsnPrefix();
        while (auto parsed = reader.Next()) {
          if (std::holds_alternative<ContextStateRecord>(parsed->record) &&
              (!found || parsed->order > best_order)) {
            found = true;
            best_order = parsed->order;
            state_shard = s;
            state_local = parsed->lsn;
          }
        }
      }
      if (found) {
        sim.storage().CorruptLog(log.shard_log_name(state_shard),
                                 state_local + 8, /*flip_count=*/2);
      }
    } else {
      // Find the newest readable context-state record in the stable image.
      LogView view = log.StableView();
      LogReader reader(view, log.head_base());
      reader.EnableSalvage();
      uint64_t state_lsn = kInvalidLsn;
      while (auto parsed = reader.Next()) {
        if (std::holds_alternative<ContextStateRecord>(parsed->record)) {
          state_lsn = parsed->lsn;
        }
      }
      if (state_lsn != kInvalidLsn) {
        // +8 lands inside the payload, past the length/CRC header.
        sim.storage().CorruptLog(log_name, state_lsn + 8, /*flip_count=*/2);
      }
    }
  }
  if (bitrot_wkf) {
    sim.storage().CorruptFile(log_name + ".wkf", 0, /*flip_count=*/2);
  }
  // Tears only un-externalized stable bytes (one shard file on sharded
  // logs), so retries must mask it — same contract as crash-time tears.
  if (tear_shard) target_proc.InjectTornTail(24);
  return target_machine.recovery_service().EnsureProcessAlive(
      target_proc.pid());
}

// Flight-recorder ring depth for every campaign run: cheap enough to keep
// always-on, deep enough to show the last few calls before a violation.
constexpr size_t kFlightEvents = 256;

// Runs one configuration and checks the oracle. Returns a description of
// the violation, or "" when the run came out exact. On a violation the
// flight recorder's rings are dumped to *flight_file (resolved against the
// bench out dir) before the sim dies, so the post-mortem context survives.
std::string RunOne(const RunConfig& cfg, int run, int sessions,
                   CampaignStats& stats, std::string* flight_file) {
  RuntimeOptions runtime = bookstore::OptionsForLevel(cfg.level);
  runtime.save_context_state_every = cfg.save_every;
  runtime.process_checkpoint_every = cfg.checkpoint_every;
  // Condition 4 (retry until a response arrives) is what the exactly-once
  // oracle assumes; the per-call budget is an availability knob, so the
  // campaign runs unbounded.
  runtime.call_retry_budget_ms = 0.0;
  runtime.group_commit = cfg.group_commit;
  runtime.parallel_replay = cfg.parallel_replay;

  SimulationParams params;
  params.seed = cfg.sim_seed;
  params.flight_recorder_events = kFlightEvents;
  Simulation sim(runtime, params);
  bookstore::RegisterBookstoreComponents(sim.factories());
  sim.factories().Register<ShoppingAgent>("ShoppingAgent");
  Machine& server_machine = sim.AddMachine("server");
  Machine& client_machine = sim.AddMachine("client");
  auto deployment =
      bookstore::Deploy(sim, server_machine, cfg.stores, cfg.level);
  if (!deployment.ok()) {
    return "deploy failed: " + deployment.status().ToString();
  }
  Process& server_proc = *deployment->server_process;

  for (const auto& [point, hit] : cfg.crashes) {
    sim.injector().AddTrigger("server", server_proc.pid(), point, hit);
  }
  // Fault the links that carry the traffic under test. In agent topologies
  // that is the persistent agent <-> seller path; the admin driver edge is
  // left reliable because an external client losing a reply reissues under
  // a fresh call id (the WoV), which would confound the exactly-once
  // oracle for the persistent tier. external_direct faults the driver edge
  // on purpose — there the WoV is the measured subject.
  if (cfg.faults.any()) {
    NetworkFaultPlan& plan = sim.network().fault_plan();
    switch (cfg.topology) {
      case Topology::kRemoteAgent:
      case Topology::kExternalDirect:
        plan.SetLinkFaults("client", "server", cfg.faults);
        plan.SetLinkFaults("server", "client", cfg.faults);
        break;
      case Topology::kColocatedAgent:
        plan.SetLinkFaults("server", "server", cfg.faults);
        break;
    }
  }
  if (cfg.torn_p > 0.0) {
    sim.injector().EnableTornTails(cfg.torn_p, cfg.sim_seed * 131 + 7);
  }
  if (cfg.targeted_drop) {
    // Drop the first Checkout reply on the seller's outbound link; the
    // caller must mask it (or, for an external client, it opens the WoV).
    const char* caller_machine =
        cfg.topology == Topology::kColocatedAgent ? "server" : "client";
    sim.network().fault_plan().AddDropTrigger("server", caller_machine,
                                              "Checkout", NetLeg::kReply,
                                              /*nth=*/1);
  }

  ExternalClient admin(&sim, "client");
  // One agent per wave slot (just one when sequential): overlapping chains
  // each own an agent context, so they serialize only at the seller and
  // their force-on-send waits can coalesce on the agent process's log.
  std::vector<std::string> agent_uris;
  Process* agent_proc_ptr = nullptr;
  Machine* agent_machine = nullptr;
  if (cfg.topology != Topology::kExternalDirect) {
    agent_machine = cfg.topology == Topology::kRemoteAgent ? &client_machine
                                                           : &server_machine;
    Process& agent_proc = agent_machine->CreateProcess();
    agent_proc_ptr = &agent_proc;
    for (int a = 0; a < cfg.overlap; ++a) {
      auto agent = admin.CreateComponent(
          agent_proc, "ShoppingAgent", StrCat("agent", a),
          ComponentKind::kPersistent, MakeArgs(deployment->seller_uri));
      if (!agent.ok()) {
        return "agent creation failed: " + agent.status().ToString();
      }
      agent_uris.push_back(*agent);
    }
  }

  std::vector<int> expected_store(cfg.stores, 0);
  std::vector<std::vector<int>> expected_book(cfg.stores,
                                              std::vector<int>(11, 0));
  Random workload(cfg.sim_seed * 31 + 1);
  std::string failure;

  // One shopping session's call chain. Each chain drives its own external
  // client so overlapping waves never share driver state.
  auto run_session = [&](int i, int store, int book) -> Status {
    std::string buyer = "buyer" + std::to_string(i);
    ExternalClient driver(&sim, "client");
    if (cfg.topology == Topology::kExternalDirect) {
      auto add = driver.Call(deployment->seller_uri, "AddToBasket",
                             MakeArgs(buyer, deployment->store_uris[store],
                                      int64_t{book}));
      if (!add.ok()) return add.status();
      return driver
          .Call(deployment->seller_uri, "Checkout",
                MakeArgs(buyer, std::string("WA")))
          .status();
    }
    return driver
        .Call(agent_uris[i % agent_uris.size()], "Session",
              MakeArgs(buyer, deployment->store_uris[store], int64_t{book}))
        .status();
  };
  auto account = [&](int i, int store, int book, const Status& status) {
    if (!status.ok()) {
      if (failure.empty()) {
        failure = StrCat("session ", i, " failed: ", status.ToString());
      }
      return;
    }
    ++expected_store[store];
    ++expected_book[store][book];
    ++stats.sessions_total;
  };

  // The storage attack fires once, halfway through — between waves when
  // sessions overlap, so no chain is parked inside the process it kills.
  int attack_at = (cfg.bitrot_state || cfg.bitrot_wkf) && sessions >= 2
                      ? sessions / 2
                      : sessions;
  int next = 0;
  while (next < sessions && failure.empty()) {
    int segment_end = next < attack_at ? attack_at : sessions;
    if (cfg.overlap <= 1) {
      int i = next++;
      int store = static_cast<int>(workload.Uniform(cfg.stores));
      int book = static_cast<int>(workload.Uniform(10)) + 1;
      account(i, store, book, run_session(i, store, book));
    } else {
      int wave_end = std::min(next + cfg.overlap, segment_end);
      struct Plan {
        int i;
        int store;
        int book;
        Status status = Status::OK();
      };
      std::vector<Plan> wave;
      for (int i = next; i < wave_end; ++i) {
        // Drawn before the wave runs, so what the oracle expects never
        // depends on how the chains interleave.
        wave.push_back({i, static_cast<int>(workload.Uniform(cfg.stores)),
                        static_cast<int>(workload.Uniform(10)) + 1});
      }
      std::vector<std::function<void()>> bodies;
      for (Plan& plan : wave) {
        bodies.push_back([&run_session, p = &plan] {
          p->status = run_session(p->i, p->store, p->book);
        });
      }
      sim.RunSessions(std::move(bodies));
      for (const Plan& plan : wave) {
        account(plan.i, plan.store, plan.book, plan.status);
      }
      next = wave_end;
    }
    if (next == attack_at && attack_at < sessions && failure.empty()) {
      // Half the attacks target the agent process instead of the seller's —
      // the persistent tier whose own log and state records salvage must
      // also survive losing.
      bool hit_agent = cfg.attack_agent && agent_proc_ptr != nullptr;
      Status attack =
          hit_agent ? ApplyStorageAttack(cfg.bitrot_state, cfg.bitrot_wkf,
                                         /*tear_shard=*/false, sim,
                                         *agent_machine, *agent_proc_ptr)
                    : ApplyStorageAttack(cfg.bitrot_state, cfg.bitrot_wkf,
                                         /*tear_shard=*/false, sim,
                                         server_machine, server_proc);
      if (!attack.ok()) {
        failure = "recovery after bit-rot failed: " + attack.ToString();
      }
    }
  }

  // Oracle: with a persistent agent every count must be exact; an external
  // client may legitimately overcount (window of vulnerability), but never
  // undercount, and inventory must stay consistent with TotalSold.
  if (failure.empty()) {
    bool external = cfg.topology == Topology::kExternalDirect;
    if (!external) {
      int64_t done_total = 0;
      for (const std::string& agent_uri : agent_uris) {
        auto done = admin.Call(agent_uri, "SessionsDone", {});
        if (!done.ok()) {
          failure = "SessionsDone failed: " + done.status().ToString();
          break;
        }
        done_total += done->AsInt();
      }
      if (failure.empty() && done_total != sessions) {
        failure = StrCat("SessionsDone=", done_total, " want ", sessions);
      }
    }
    ExternalClient probe(&sim, "client");
    for (int s = 0; s < cfg.stores && failure.empty(); ++s) {
      auto sold = probe.Call(deployment->store_uris[s], "TotalSold", {});
      if (!sold.ok()) {
        failure = "TotalSold failed: " + sold.status().ToString();
        break;
      }
      int64_t sold_count = sold->AsInt();
      int64_t book_sold_sum = 0;
      for (int book = 1; book <= 10 && failure.empty(); ++book) {
        auto entry = probe.Call(deployment->store_uris[s], "GetBook",
                                MakeArgs(int64_t{book}));
        if (!entry.ok()) {
          failure = "GetBook failed: " + entry.status().ToString();
          break;
        }
        int64_t book_sold = 25 - entry->AsList()[3].AsInt();
        book_sold_sum += book_sold;
        int64_t want = expected_book[s][book];
        if (!external && book_sold != want) {
          failure = StrCat("store ", s, " book ", book, " sold ", book_sold,
                           " want ", want);
        } else if (external && book_sold < want) {
          failure = StrCat("store ", s, " book ", book, " UNDERSOLD ",
                           book_sold, " want >= ", want);
        }
      }
      if (!failure.empty()) break;
      if (book_sold_sum != sold_count) {
        failure = StrCat("store ", s, " inventory says ", book_sold_sum,
                         " sold but TotalSold=", sold_count);
      } else if (!external && sold_count != expected_store[s]) {
        failure = StrCat("store ", s, " TotalSold=", sold_count, " want ",
                         expected_store[s]);
      } else if (external && sold_count < expected_store[s]) {
        failure = StrCat("store ", s, " TotalSold=", sold_count,
                         " want >= ", expected_store[s]);
      } else if (external) {
        stats.wov_duplicate_executions +=
            static_cast<uint64_t>(sold_count - expected_store[s]);
        stats.topo_wov[static_cast<int>(cfg.topology)] +=
            static_cast<uint64_t>(sold_count - expected_store[s]);
      }
    }
  }

  // Harvest per-run counters before the sim dies.
  stats.crashes_fired += sim.injector().crashes_fired();
  stats.recoveries += server_machine.recovery_service().recoveries_performed();
  stats.net_dropped += sim.network().messages_dropped();
  stats.net_duplicated += sim.network().messages_duplicated();
  stats.torn_tails_injected += sim.injector().torn_tails_fired();
  stats.torn_tails_salvaged +=
      sim.metrics().CounterTotal("phoenix.wal.torn_tails");
  stats.salvage_wkf_fallback +=
      sim.metrics().CounterTotal("phoenix.recovery.salvage.wkf_fallback");
  stats.salvage_full_scan +=
      sim.metrics().CounterTotal("phoenix.recovery.salvage.full_scan_fallback");
  stats.salvage_ranges_skipped +=
      sim.metrics().CounterTotal("phoenix.recovery.salvage.ranges_skipped");
  stats.salvage_state_fallback += sim.metrics().CounterTotal(
      "phoenix.recovery.salvage.state_record_fallback");
  stats.dedupe_hits +=
      sim.metrics().CounterTotal("phoenix.intercept.dedupe_hits");
  stats.retries += sim.metrics().CounterTotal("phoenix.intercept.retries");
  stats.group_flushes +=
      sim.metrics().CounterTotal("phoenix.wal.group_commit.flushes");
  stats.group_coalesced +=
      sim.metrics().CounterTotal("phoenix.wal.group_commit.coalesced");
  stats.replay_chains +=
      sim.metrics().CounterTotal("phoenix.recovery.replay.chains");
  stats.replay_edges +=
      sim.metrics().CounterTotal("phoenix.recovery.replay.edges");
  stats.replay_fallbacks +=
      sim.metrics().CounterTotal("phoenix.recovery.replay.fallbacks");

  if (!failure.empty()) {
    std::string path =
        obs::ResolveBenchPath(StrCat("chaos_flight_run", run, ".jsonl"));
    std::string dump = sim.tracer().ExportFlightRecorder();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f != nullptr) {
      std::fwrite(dump.data(), 1, dump.size(), f);
      std::fclose(f);
      *flight_file = path;
    }
  }
  return failure;
}

// --- crash-during-recovery campaign ---------------------------------------
//
// --crash-during-recovery treats recovery itself as the fault domain: the
// server is killed mid-campaign, and the *recovery* that follows is crashed
// again at seeded recovery-phase fault points (analysis scan, state
// reinstatement, between replay units, end-of-log flush), nested up to
// depth 3 — a crash during the re-recovery of a crashed recovery — with
// optional storage attacks on the well-known file, the newest state record
// or the stable tail between attempts. The oracle is exactly-once plus a
// state-hash comparison against a fault-free twin run of the identical
// workload: however many times recovery is interrupted, the supervisor must
// converge to the very same final state without ever reaching the cold-
// start rung or giving up.

// One randomized recovery-crash configuration.
struct RecoveryCrashConfig {
  uint64_t sim_seed = 1;
  bookstore::OptLevel level = bookstore::OptLevel::kSpecialized;
  uint32_t save_every = 0;
  uint32_t checkpoint_every = 0;
  Topology topology = Topology::kRemoteAgent;  // persistent tiers only
  int stores = 2;
  bool parallel_replay = false;
  int depth = 1;  // nested recovery crashes (1..3)
  // (point, cumulative hit count) triggers: attempt n's hits continue
  // attempt n-1's counter, so consecutive entries on one point crash
  // consecutive recovery attempts.
  std::vector<std::pair<FailurePoint, uint64_t>> recovery_crashes;
  bool attack_wkf = false;    // corrupt the well-known file before attempt 2
  bool attack_state = false;  // corrupt the newest state record, attempt 2
  bool attack_tear = false;   // tear the stable tail before attempt 3
};

RecoveryCrashConfig MakeRecoveryCrashConfig(const CampaignOptions& campaign,
                                            int run) {
  Random rng(campaign.seed * 2000003ull + static_cast<uint64_t>(run));
  RecoveryCrashConfig cfg;
  cfg.sim_seed = campaign.seed * 7919ull + static_cast<uint64_t>(run) + 1;
  switch (rng.Uniform(3)) {
    case 0:
      cfg.level = bookstore::OptLevel::kBaseline;
      break;
    case 1:
      cfg.level = bookstore::OptLevel::kOptimizedLogging;
      break;
    default:
      cfg.level = bookstore::OptLevel::kSpecialized;
      break;
  }
  const uint32_t kSaveChoices[] = {0, 3, 7};
  cfg.save_every = kSaveChoices[rng.Uniform(3)];
  cfg.checkpoint_every = cfg.save_every > 0 ? cfg.save_every * 2 : 0;
  cfg.topology = rng.Bernoulli(0.5) ? Topology::kRemoteAgent
                                    : Topology::kColocatedAgent;
  cfg.stores = 1 + static_cast<int>(rng.Uniform(2));
  cfg.parallel_replay = rng.Bernoulli(0.5);

  static const FailurePoint kRecoveryPoints[] = {
      FailurePoint::kDuringRecoveryAnalysis,
      FailurePoint::kDuringRecoveryRestore,
      FailurePoint::kBetweenReplayUnits,
      FailurePoint::kDuringEndOfLogFlush,
  };
  cfg.depth = 1 + static_cast<int>(rng.Uniform(3));
  uint64_t cumulative[kNumFailurePoints] = {};
  for (int d = 0; d < cfg.depth; ++d) {
    FailurePoint point = kRecoveryPoints[rng.Uniform(4)];
    cumulative[static_cast<int>(point)] += 1 + rng.Uniform(2);
    cfg.recovery_crashes.emplace_back(point,
                                      cumulative[static_cast<int>(point)]);
  }
  cfg.attack_wkf = rng.Bernoulli(0.3);
  cfg.attack_state = rng.Bernoulli(0.3);
  cfg.attack_tear = rng.Bernoulli(0.2);
  return cfg;
}

struct RecoveryCrashStats {
  uint64_t runs = 0;
  uint64_t violations = 0;
  uint64_t hash_divergences = 0;
  uint64_t sessions_total = 0;
  uint64_t recovery_crashes_fired = 0;
  uint64_t supervisor_attempts = 0;
  uint64_t supervisor_gave_up = 0;
  uint64_t storage_attacks = 0;
  uint64_t degraded_mode_attempts = 0;
  uint64_t cold_starts = 0;
  uint64_t salvaged_parallel = 0;
  uint64_t chains_demoted = 0;
  uint64_t parallel_runs = 0;
  uint64_t depth_runs[3] = {0, 0, 0};
  uint64_t point_crashes[4] = {0, 0, 0, 0};  // per recovery-phase point
};

// Runs one configuration — faulted (inject=true) or as the fault-free twin
// — and checks the exactly-once oracle. Fills *state_hash with an FNV-1a
// digest of the final observable state (per-store sales and stock, agent
// session count); twin and faulted runs must produce the same digest.
std::string RunRecoveryCrashOne(const RecoveryCrashConfig& cfg, int run,
                                int sessions, bool inject,
                                RecoveryCrashStats& stats,
                                uint64_t* state_hash,
                                std::string* flight_file) {
  RuntimeOptions runtime = bookstore::OptionsForLevel(cfg.level);
  runtime.save_context_state_every = cfg.save_every;
  runtime.process_checkpoint_every = cfg.checkpoint_every;
  runtime.call_retry_budget_ms = 0.0;
  runtime.parallel_replay = cfg.parallel_replay;
  runtime.inject_failures_during_recovery = inject;

  SimulationParams params;
  params.seed = cfg.sim_seed;
  params.flight_recorder_events = kFlightEvents;
  Simulation sim(runtime, params);
  bookstore::RegisterBookstoreComponents(sim.factories());
  sim.factories().Register<ShoppingAgent>("ShoppingAgent");
  Machine& server_machine = sim.AddMachine("server");
  Machine& client_machine = sim.AddMachine("client");
  auto deployment =
      bookstore::Deploy(sim, server_machine, cfg.stores, cfg.level);
  if (!deployment.ok()) {
    return "deploy failed: " + deployment.status().ToString();
  }
  Process& server_proc = *deployment->server_process;

  ExternalClient admin(&sim, "client");
  Machine& agent_machine = cfg.topology == Topology::kRemoteAgent
                               ? client_machine
                               : server_machine;
  Process& agent_proc = agent_machine.CreateProcess();
  auto agent =
      admin.CreateComponent(agent_proc, "ShoppingAgent", "agent0",
                            ComponentKind::kPersistent,
                            MakeArgs(deployment->seller_uri));
  if (!agent.ok()) {
    return "agent creation failed: " + agent.status().ToString();
  }

  std::vector<int> expected_store(cfg.stores, 0);
  std::vector<std::vector<int>> expected_book(cfg.stores,
                                              std::vector<int>(11, 0));
  Random workload(cfg.sim_seed * 31 + 1);
  std::string failure;

  int kill_at = std::max(1, sessions / 2);
  for (int i = 0; i < sessions && failure.empty(); ++i) {
    if (i == kill_at) {
      // The fault under test: the server dies between sessions, and its
      // *recovery* is crashed again and again at the seeded points while
      // the storage rots between attempts. The fault-free twin takes the
      // same kill with a clean one-attempt recovery.
      server_proc.Kill();
      if (inject) {
        for (const auto& [point, hit] : cfg.recovery_crashes) {
          sim.injector().AddTrigger("server", server_proc.pid(), point, hit);
        }
        if (cfg.attack_wkf) {
          sim.injector().AddRecoveryAttack(
              "server", server_proc.pid(), /*before_attempt=*/2,
              RecoveryAttack::kCorruptWellKnownFile);
        }
        if (cfg.attack_state) {
          sim.injector().AddRecoveryAttack(
              "server", server_proc.pid(), /*before_attempt=*/2,
              RecoveryAttack::kCorruptNewestStateRecord);
        }
        if (cfg.attack_tear) {
          sim.injector().AddRecoveryAttack("server", server_proc.pid(),
                                           /*before_attempt=*/3,
                                           RecoveryAttack::kTearStableTail);
        }
      }
      Status recovered =
          server_machine.recovery_service().EnsureProcessAlive(
              server_proc.pid());
      if (!recovered.ok()) {
        failure = "supervised recovery failed: " + recovered.ToString();
        break;
      }
    }
    int store = static_cast<int>(workload.Uniform(cfg.stores));
    int book = static_cast<int>(workload.Uniform(10)) + 1;
    std::string buyer = "buyer" + std::to_string(i);
    ExternalClient driver(&sim, "client");
    Status status =
        driver
            .Call(*agent, "Session",
                  MakeArgs(buyer, deployment->store_uris[store],
                           int64_t{book}))
            .status();
    if (!status.ok()) {
      failure = StrCat("session ", i, " failed: ", status.ToString());
      break;
    }
    ++expected_store[store];
    ++expected_book[store][book];
    if (inject) ++stats.sessions_total;
  }

  // Exactly-once oracle (persistent topology: every count exact) plus the
  // state digest for the twin comparison.
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  };
  if (failure.empty()) {
    auto done = admin.Call(*agent, "SessionsDone", {});
    if (!done.ok()) {
      failure = "SessionsDone failed: " + done.status().ToString();
    } else if (done->AsInt() != sessions) {
      failure = StrCat("SessionsDone=", done->AsInt(), " want ", sessions);
    } else {
      mix(static_cast<uint64_t>(done->AsInt()));
    }
    ExternalClient probe(&sim, "client");
    for (int s = 0; s < cfg.stores && failure.empty(); ++s) {
      auto sold = probe.Call(deployment->store_uris[s], "TotalSold", {});
      if (!sold.ok()) {
        failure = "TotalSold failed: " + sold.status().ToString();
        break;
      }
      if (sold->AsInt() != expected_store[s]) {
        failure = StrCat("store ", s, " TotalSold=", sold->AsInt(), " want ",
                         expected_store[s]);
        break;
      }
      mix(static_cast<uint64_t>(sold->AsInt()));
      for (int book = 1; book <= 10 && failure.empty(); ++book) {
        auto entry = probe.Call(deployment->store_uris[s], "GetBook",
                                MakeArgs(int64_t{book}));
        if (!entry.ok()) {
          failure = "GetBook failed: " + entry.status().ToString();
          break;
        }
        int64_t stock = entry->AsList()[3].AsInt();
        if (25 - stock != expected_book[s][book]) {
          failure = StrCat("store ", s, " book ", book, " sold ", 25 - stock,
                           " want ", expected_book[s][book]);
          break;
        }
        mix(static_cast<uint64_t>(stock));
      }
    }
  }
  *state_hash = hash;

  if (inject) {
    stats.recovery_crashes_fired += sim.injector().crashes_fired();
    stats.supervisor_attempts +=
        sim.metrics().CounterTotal("phoenix.recovery.supervisor.attempts");
    stats.supervisor_gave_up +=
        sim.metrics().CounterTotal("phoenix.recovery.supervisor.gave_up");
    stats.storage_attacks += sim.injector().recovery_attacks_fired();
    stats.degraded_mode_attempts +=
        sim.metrics().CounterTotal("phoenix.recovery.mode");
    stats.cold_starts +=
        sim.metrics().CounterTotal("phoenix.recovery.cold_starts");
    stats.salvaged_parallel += sim.metrics().CounterTotal(
        "phoenix.recovery.replay.salvaged_parallel");
    stats.chains_demoted +=
        sim.metrics().CounterTotal("phoenix.recovery.replay.chains_demoted");
    static const FailurePoint kRecoveryPoints[] = {
        FailurePoint::kDuringRecoveryAnalysis,
        FailurePoint::kDuringRecoveryRestore,
        FailurePoint::kBetweenReplayUnits,
        FailurePoint::kDuringEndOfLogFlush,
    };
    for (int p = 0; p < 4; ++p) {
      for (const auto& [point, hit] : cfg.recovery_crashes) {
        if (point == kRecoveryPoints[p]) ++stats.point_crashes[p];
      }
    }
  }

  if (!failure.empty() && inject) {
    std::string path = obs::ResolveBenchPath(
        StrCat("chaos_recovery_flight_run", run, ".jsonl"));
    std::string dump = sim.tracer().ExportFlightRecorder();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f != nullptr) {
      std::fwrite(dump.data(), 1, dump.size(), f);
      std::fclose(f);
      *flight_file = path;
    }
  }
  return failure;
}

int RunRecoveryCrashCampaign(const CampaignOptions& campaign) {
  RecoveryCrashStats stats;
  struct ViolationRecord {
    int run;
    std::string description;
    std::string flight_file;
  };
  std::vector<ViolationRecord> violations;
  for (int run = 0; run < campaign.runs; ++run) {
    RecoveryCrashConfig cfg = MakeRecoveryCrashConfig(campaign, run);
    uint64_t twin_hash = 0;
    uint64_t fault_hash = 0;
    std::string flight_file;
    std::string twin_failure = RunRecoveryCrashOne(
        cfg, run, campaign.sessions, /*inject=*/false, stats, &twin_hash,
        &flight_file);
    std::string violation = RunRecoveryCrashOne(
        cfg, run, campaign.sessions, /*inject=*/true, stats, &fault_hash,
        &flight_file);
    ++stats.runs;
    ++stats.depth_runs[cfg.depth - 1];
    if (cfg.parallel_replay) ++stats.parallel_runs;
    if (violation.empty() && !twin_failure.empty()) {
      violation = "fault-free twin failed: " + twin_failure;
    }
    if (violation.empty() && fault_hash != twin_hash) {
      ++stats.hash_divergences;
      violation = StrCat("state hash diverged from fault-free twin: ",
                         fault_hash, " != ", twin_hash);
    }
    if (!violation.empty()) {
      ++stats.violations;
      violations.push_back({run, violation, flight_file});
      std::fprintf(stderr,
                   "VIOLATION run %d (%s, %s, save=%u, depth=%d): %s\n",
                   run, TopologyName(cfg.topology),
                   bookstore::OptLevelName(cfg.level), cfg.save_every,
                   cfg.depth, violation.c_str());
    } else if (campaign.verbose) {
      std::printf("run %d ok (%s, save=%u, depth=%d, parallel=%d, "
                  "attacks=%d%d%d)\n",
                  run, bookstore::OptLevelName(cfg.level), cfg.save_every,
                  cfg.depth, cfg.parallel_replay ? 1 : 0,
                  cfg.attack_wkf ? 1 : 0, cfg.attack_state ? 1 : 0,
                  cfg.attack_tear ? 1 : 0);
    }
  }

  obs::BenchReporter reporter("chaos_recovery_crash", kChaosSchema);
  obs::BenchVariant& campaign_v = reporter.AddVariant("campaign");
  campaign_v.SetMetric("runs", stats.runs)
      .SetMetric("seed", campaign.seed)
      .SetMetric("sessions_per_run", static_cast<uint64_t>(campaign.sessions))
      .SetMetric("violations", stats.violations)
      .SetMetric("state_hash_divergences", stats.hash_divergences)
      .SetMetric("sessions_total", stats.sessions_total)
      .SetMetric("recovery_crashes_fired", stats.recovery_crashes_fired)
      .SetMetric("supervisor_attempts", stats.supervisor_attempts)
      .SetMetric("supervisor_gave_up", stats.supervisor_gave_up)
      .SetMetric("storage_attacks_applied", stats.storage_attacks)
      .SetMetric("degraded_mode_attempts", stats.degraded_mode_attempts)
      .SetMetric("cold_starts", stats.cold_starts)
      .SetMetric("salvaged_parallel_replays", stats.salvaged_parallel)
      .SetMetric("replay_chains_demoted", stats.chains_demoted)
      .SetMetric("parallel_replay_runs", stats.parallel_runs)
      .SetMetric("depth1_runs", stats.depth_runs[0])
      .SetMetric("depth2_runs", stats.depth_runs[1])
      .SetMetric("depth3_runs", stats.depth_runs[2])
      .SetMetric("crashes_at_analysis", stats.point_crashes[0])
      .SetMetric("crashes_at_restore", stats.point_crashes[1])
      .SetMetric("crashes_between_units", stats.point_crashes[2])
      .SetMetric("crashes_at_endlog_flush", stats.point_crashes[3]);
  for (const ViolationRecord& rec : violations) {
    obs::BenchVariant& v =
        reporter.AddVariant(StrCat("violation_run", rec.run));
    v.SetMetric("run", static_cast<uint64_t>(rec.run));
    v.SetInfo("violation", rec.description);
    if (!rec.flight_file.empty()) {
      v.SetInfo("flight_recorder", rec.flight_file);
    }
  }
  auto written = reporter.WriteFile(campaign.out);
  if (!written.ok()) {
    std::fprintf(stderr, "report write failed: %s\n",
                 written.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "crash-during-recovery campaign: %llu run(s), %llu violation(s), "
      "%llu state-hash divergence(s)\n"
      "  injected: %llu recovery crash(es) "
      "(analysis=%llu restore=%llu between-units=%llu endlog=%llu), "
      "%llu storage attack(s), depth 1/2/3 = %llu/%llu/%llu\n"
      "  supervisor: %llu attempt(s), %llu degraded-mode attempt(s), "
      "%llu cold start(s), %llu gave up\n"
      "  salvage-parallel: %llu parallel run(s), %llu salvaged-parallel "
      "replay(s), %llu chain(s) demoted\n"
      "report: %s\n",
      static_cast<unsigned long long>(stats.runs),
      static_cast<unsigned long long>(stats.violations),
      static_cast<unsigned long long>(stats.hash_divergences),
      static_cast<unsigned long long>(stats.recovery_crashes_fired),
      static_cast<unsigned long long>(stats.point_crashes[0]),
      static_cast<unsigned long long>(stats.point_crashes[1]),
      static_cast<unsigned long long>(stats.point_crashes[2]),
      static_cast<unsigned long long>(stats.point_crashes[3]),
      static_cast<unsigned long long>(stats.storage_attacks),
      static_cast<unsigned long long>(stats.depth_runs[0]),
      static_cast<unsigned long long>(stats.depth_runs[1]),
      static_cast<unsigned long long>(stats.depth_runs[2]),
      static_cast<unsigned long long>(stats.supervisor_attempts),
      static_cast<unsigned long long>(stats.degraded_mode_attempts),
      static_cast<unsigned long long>(stats.cold_starts),
      static_cast<unsigned long long>(stats.supervisor_gave_up),
      static_cast<unsigned long long>(stats.parallel_runs),
      static_cast<unsigned long long>(stats.salvaged_parallel),
      static_cast<unsigned long long>(stats.chains_demoted),
      written->c_str());
  return stats.violations > 0 ? 1 : 0;
}

// --- async-checkpoint campaign ---------------------------------------------
//
// --async-checkpoint treats the background checkpoint session as the fault
// domain: every run executes a concurrent bookstore workload with the
// inline save/checkpoint cadence OFF and the async sweeper ON (group
// commit on, per the pipeline's parking contract), while seeded crashes
// fire *inside* the background sweeps — mid context-state capture
// (kDuringStateSave), inside the checkpoint bracket (kDuringCheckpoint)
// and in the group flush the sweep's force joins (kDuringGroupFlush) —
// with optional crash-time torn tails eating the unpublished bracket. The
// oracle is exactly-once plus an FNV-1a state-hash diff against a
// fault-free async twin of the identical workload: a crash in the
// background sweeper must never change what got sold, and a torn
// unpublished bracket must fall back to the older published checkpoint
// without observable drift.

// One randomized async-checkpoint configuration. Persistent topologies
// only: the twin-hash oracle needs every count exact.
struct AsyncCheckpointConfig {
  uint64_t sim_seed = 1;
  bookstore::OptLevel level = bookstore::OptLevel::kSpecialized;
  uint32_t interval = 8;  // async_checkpoint_interval under test
  Topology topology = Topology::kRemoteAgent;
  int stores = 2;
  int overlap = 2;  // sessions per concurrent wave (always >= 2)
  bool parallel_replay = false;
  double torn_p = 0.0;  // crash-time torn tails
  std::vector<std::pair<FailurePoint, uint64_t>> crashes;
};

AsyncCheckpointConfig MakeAsyncCheckpointConfig(
    const CampaignOptions& campaign, int run) {
  Random rng(campaign.seed * 3000017ull + static_cast<uint64_t>(run));
  AsyncCheckpointConfig cfg;
  cfg.sim_seed = campaign.seed * 7919ull + static_cast<uint64_t>(run) + 1;
  switch (rng.Uniform(3)) {
    case 0:
      cfg.level = bookstore::OptLevel::kBaseline;
      break;
    case 1:
      cfg.level = bookstore::OptLevel::kOptimizedLogging;
      break;
    default:
      cfg.level = bookstore::OptLevel::kSpecialized;
      break;
  }
  const uint32_t kIntervals[] = {4, 8, 16};
  cfg.interval = kIntervals[rng.Uniform(3)];
  cfg.topology = rng.Bernoulli(0.5) ? Topology::kRemoteAgent
                                    : Topology::kColocatedAgent;
  cfg.stores = 1 + static_cast<int>(rng.Uniform(2));
  // Always concurrent: the background session only interleaves mid-wave,
  // so a sequential run would never crash inside a sweep.
  int span = campaign.overlap > 2 ? campaign.overlap - 1 : 1;
  cfg.overlap = 2 + static_cast<int>(rng.Uniform(
                        static_cast<uint64_t>(span)));
  cfg.parallel_replay = rng.Bernoulli(0.4);
  // 1..3 crash triggers aimed at the points only the background sweeper
  // reaches on these runs (the inline cadence is off, so kDuringStateSave
  // and kDuringCheckpoint can't fire from a foreground chain). Sweeps are
  // rare relative to protocol hooks, so the fuses are short; a trigger
  // whose count outruns the run's sweeps simply never fires. Triggers only
  // target the seller's process: the persistent agent in front masks every
  // seller crash, whereas killing the *agent* mid-wave would interrupt its
  // external driver's in-flight call and open the §3.1.2 window of
  // vulnerability — expected duplicates, not a checkpointing defect.
  static const FailurePoint kSweepPoints[] = {
      FailurePoint::kDuringStateSave,
      FailurePoint::kDuringCheckpoint,
      FailurePoint::kDuringGroupFlush,
  };
  uint64_t cumulative[kNumFailurePoints] = {};
  uint64_t crash_count = 1 + rng.Uniform(3);
  for (uint64_t i = 0; i < crash_count; ++i) {
    FailurePoint point = kSweepPoints[rng.Uniform(3)];
    cumulative[static_cast<int>(point)] += 1 + rng.Uniform(3);
    cfg.crashes.emplace_back(point, cumulative[static_cast<int>(point)]);
  }
  if (rng.Bernoulli(0.5)) cfg.torn_p = 0.1 + rng.NextDouble() * 0.5;
  return cfg;
}

struct AsyncCheckpointStats {
  uint64_t runs = 0;
  uint64_t violations = 0;
  uint64_t hash_divergences = 0;
  uint64_t sessions_total = 0;
  uint64_t crashes_fired = 0;
  uint64_t recoveries = 0;
  uint64_t torn_tails_injected = 0;
  uint64_t async_sweeps = 0;
  uint64_t async_publishes = 0;
  uint64_t async_deferrals = 0;
  uint64_t publish_skips = 0;
  uint64_t group_flushes = 0;
  uint64_t parallel_replay_runs = 0;
  uint64_t point_crashes[3] = {0, 0, 0};  // state_save / checkpoint / flush
};

// Runs one configuration — faulted (inject=true) or as the fault-free
// async twin — in concurrent waves, checks exactly-once, and fills
// *state_hash with the FNV-1a digest of the final observable state.
std::string RunAsyncCheckpointOne(const AsyncCheckpointConfig& cfg, int run,
                                  int sessions, bool inject,
                                  AsyncCheckpointStats& stats,
                                  uint64_t* state_hash,
                                  std::string* flight_file) {
  RuntimeOptions runtime = bookstore::OptionsForLevel(cfg.level);
  // Inline cadence off, async sweeper on: every capture and publish runs
  // on the background session. Group commit must be on for the scheduler
  // to rotate into that session mid-wave (the pipeline only parks under
  // group commit).
  runtime.save_context_state_every = 0;
  runtime.process_checkpoint_every = 0;
  runtime.async_checkpoint = true;
  runtime.async_checkpoint_interval = cfg.interval;
  runtime.group_commit = true;
  runtime.call_retry_budget_ms = 0.0;
  runtime.parallel_replay = cfg.parallel_replay;

  SimulationParams params;
  params.seed = cfg.sim_seed;
  params.flight_recorder_events = kFlightEvents;
  Simulation sim(runtime, params);
  bookstore::RegisterBookstoreComponents(sim.factories());
  sim.factories().Register<ShoppingAgent>("ShoppingAgent");
  Machine& server_machine = sim.AddMachine("server");
  Machine& client_machine = sim.AddMachine("client");
  auto deployment =
      bookstore::Deploy(sim, server_machine, cfg.stores, cfg.level);
  if (!deployment.ok()) {
    return "deploy failed: " + deployment.status().ToString();
  }
  Process& server_proc = *deployment->server_process;

  ExternalClient admin(&sim, "client");
  Machine& agent_machine = cfg.topology == Topology::kRemoteAgent
                               ? client_machine
                               : server_machine;
  Process& agent_proc = agent_machine.CreateProcess();
  std::vector<std::string> agent_uris;
  for (int a = 0; a < cfg.overlap; ++a) {
    auto agent = admin.CreateComponent(
        agent_proc, "ShoppingAgent", StrCat("agent", a),
        ComponentKind::kPersistent, MakeArgs(deployment->seller_uri));
    if (!agent.ok()) {
      return "agent creation failed: " + agent.status().ToString();
    }
    agent_uris.push_back(*agent);
  }

  if (inject) {
    for (const auto& [point, hit] : cfg.crashes) {
      sim.injector().AddTrigger("server", server_proc.pid(), point, hit);
    }
    if (cfg.torn_p > 0.0) {
      sim.injector().EnableTornTails(cfg.torn_p, cfg.sim_seed * 131 + 7);
    }
  }

  std::vector<int> expected_store(cfg.stores, 0);
  std::vector<std::vector<int>> expected_book(cfg.stores,
                                              std::vector<int>(11, 0));
  Random workload(cfg.sim_seed * 31 + 1);
  std::string failure;

  // Concurrent waves, RunOne-style: plans drawn before the wave runs so
  // the oracle's expectations never depend on chain interleaving. Crashes
  // fired inside background sweeps recover lazily — the next retry that
  // finds the process dead triggers the supervised recovery path.
  int next = 0;
  while (next < sessions && failure.empty()) {
    int wave_end = std::min(next + cfg.overlap, sessions);
    struct Plan {
      int i;
      int store;
      int book;
      Status status = Status::OK();
    };
    std::vector<Plan> wave;
    for (int i = next; i < wave_end; ++i) {
      wave.push_back({i, static_cast<int>(workload.Uniform(cfg.stores)),
                      static_cast<int>(workload.Uniform(10)) + 1});
    }
    std::vector<std::function<void()>> bodies;
    for (Plan& plan : wave) {
      bodies.push_back([&sim, &deployment, &agent_uris, p = &plan] {
        std::string buyer = "buyer" + std::to_string(p->i);
        ExternalClient driver(&sim, "client");
        p->status =
            driver
                .Call(agent_uris[static_cast<size_t>(p->i) %
                                 agent_uris.size()],
                      "Session",
                      MakeArgs(buyer, deployment->store_uris[p->store],
                               int64_t{p->book}))
                .status();
      });
    }
    sim.RunSessions(std::move(bodies));
    for (const Plan& plan : wave) {
      if (!plan.status.ok()) {
        if (failure.empty()) {
          failure = StrCat("session ", plan.i,
                           " failed: ", plan.status.ToString());
        }
        continue;
      }
      ++expected_store[plan.store];
      ++expected_book[plan.store][plan.book];
      if (inject) ++stats.sessions_total;
    }
    next = wave_end;
  }

  // Exactly-once oracle plus the state digest for the twin comparison.
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  };
  if (failure.empty()) {
    int64_t done_total = 0;
    for (const std::string& agent_uri : agent_uris) {
      auto done = admin.Call(agent_uri, "SessionsDone", {});
      if (!done.ok()) {
        failure = "SessionsDone failed: " + done.status().ToString();
        break;
      }
      done_total += done->AsInt();
      mix(static_cast<uint64_t>(done->AsInt()));
    }
    if (failure.empty() && done_total != sessions) {
      failure = StrCat("SessionsDone=", done_total, " want ", sessions);
    }
    ExternalClient probe(&sim, "client");
    for (int s = 0; s < cfg.stores && failure.empty(); ++s) {
      auto sold = probe.Call(deployment->store_uris[s], "TotalSold", {});
      if (!sold.ok()) {
        failure = "TotalSold failed: " + sold.status().ToString();
        break;
      }
      if (sold->AsInt() != expected_store[s]) {
        failure = StrCat("store ", s, " TotalSold=", sold->AsInt(), " want ",
                         expected_store[s]);
        break;
      }
      mix(static_cast<uint64_t>(sold->AsInt()));
      for (int book = 1; book <= 10 && failure.empty(); ++book) {
        auto entry = probe.Call(deployment->store_uris[s], "GetBook",
                                MakeArgs(int64_t{book}));
        if (!entry.ok()) {
          failure = "GetBook failed: " + entry.status().ToString();
          break;
        }
        int64_t stock = entry->AsList()[3].AsInt();
        if (25 - stock != expected_book[s][book]) {
          failure = StrCat("store ", s, " book ", book, " sold ", 25 - stock,
                           " want ", expected_book[s][book]);
          break;
        }
        mix(static_cast<uint64_t>(stock));
      }
    }
  }
  *state_hash = hash;

  if (inject) {
    stats.crashes_fired += sim.injector().crashes_fired();
    stats.recoveries +=
        server_machine.recovery_service().recoveries_performed() +
        (&agent_machine == &server_machine
             ? 0
             : agent_machine.recovery_service().recoveries_performed());
    stats.torn_tails_injected += sim.injector().torn_tails_fired();
    stats.async_sweeps +=
        sim.metrics().CounterTotal("phoenix.checkpoint.async.sweeps");
    stats.async_publishes +=
        sim.metrics().CounterTotal("phoenix.checkpoint.async.publishes");
    stats.async_deferrals +=
        sim.metrics().CounterTotal("phoenix.checkpoint.async.deferred");
    stats.publish_skips +=
        sim.metrics().CounterTotal("phoenix.checkpoint.publish_skips");
    stats.group_flushes +=
        sim.metrics().CounterTotal("phoenix.wal.group_commit.flushes");
    static const FailurePoint kSweepPoints[] = {
        FailurePoint::kDuringStateSave,
        FailurePoint::kDuringCheckpoint,
        FailurePoint::kDuringGroupFlush,
    };
    for (int p = 0; p < 3; ++p) {
      for (const auto& [point, hit] : cfg.crashes) {
        if (point == kSweepPoints[p]) ++stats.point_crashes[p];
      }
    }
  }

  if (!failure.empty() && inject) {
    std::string path = obs::ResolveBenchPath(
        StrCat("chaos_async_flight_run", run, ".jsonl"));
    std::string dump = sim.tracer().ExportFlightRecorder();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f != nullptr) {
      std::fwrite(dump.data(), 1, dump.size(), f);
      std::fclose(f);
      *flight_file = path;
    }
  }
  return failure;
}

int RunAsyncCheckpointCampaign(const CampaignOptions& campaign) {
  AsyncCheckpointStats stats;
  struct ViolationRecord {
    int run;
    std::string description;
    std::string flight_file;
  };
  std::vector<ViolationRecord> violations;
  for (int run = 0; run < campaign.runs; ++run) {
    AsyncCheckpointConfig cfg = MakeAsyncCheckpointConfig(campaign, run);
    uint64_t twin_hash = 0;
    uint64_t fault_hash = 0;
    std::string flight_file;
    std::string twin_failure = RunAsyncCheckpointOne(
        cfg, run, campaign.sessions, /*inject=*/false, stats, &twin_hash,
        &flight_file);
    std::string violation = RunAsyncCheckpointOne(
        cfg, run, campaign.sessions, /*inject=*/true, stats, &fault_hash,
        &flight_file);
    ++stats.runs;
    if (cfg.parallel_replay) ++stats.parallel_replay_runs;
    if (violation.empty() && !twin_failure.empty()) {
      violation = "fault-free twin failed: " + twin_failure;
    }
    if (violation.empty() && fault_hash != twin_hash) {
      ++stats.hash_divergences;
      violation = StrCat("state hash diverged from fault-free twin: ",
                         fault_hash, " != ", twin_hash);
    }
    if (!violation.empty()) {
      ++stats.violations;
      violations.push_back({run, violation, flight_file});
      std::fprintf(stderr,
                   "VIOLATION run %d (%s, %s, interval=%u, overlap=%d): %s\n",
                   run, TopologyName(cfg.topology),
                   bookstore::OptLevelName(cfg.level), cfg.interval,
                   cfg.overlap, violation.c_str());
    } else if (campaign.verbose) {
      std::printf("run %d ok (%s, interval=%u, overlap=%d, crashes=%zu, "
                  "torn=%.2f)\n",
                  run, bookstore::OptLevelName(cfg.level), cfg.interval,
                  cfg.overlap, cfg.crashes.size(), cfg.torn_p);
    }
  }

  obs::BenchReporter reporter("chaos_async_checkpoint", kChaosSchema);
  obs::BenchVariant& campaign_v = reporter.AddVariant("campaign");
  campaign_v.SetMetric("runs", stats.runs)
      .SetMetric("seed", campaign.seed)
      .SetMetric("sessions_per_run", static_cast<uint64_t>(campaign.sessions))
      .SetMetric("violations", stats.violations)
      .SetMetric("state_hash_divergences", stats.hash_divergences)
      .SetMetric("sessions_total", stats.sessions_total)
      .SetMetric("crashes_fired", stats.crashes_fired)
      .SetMetric("recoveries", stats.recoveries)
      .SetMetric("torn_tails_injected", stats.torn_tails_injected)
      .SetMetric("async_sweeps", stats.async_sweeps)
      .SetMetric("async_publishes", stats.async_publishes)
      .SetMetric("async_deferrals", stats.async_deferrals)
      .SetMetric("publish_skips", stats.publish_skips)
      .SetMetric("group_flushes", stats.group_flushes)
      .SetMetric("parallel_replay_runs", stats.parallel_replay_runs)
      .SetMetric("crashes_at_state_save", stats.point_crashes[0])
      .SetMetric("crashes_at_checkpoint", stats.point_crashes[1])
      .SetMetric("crashes_at_group_flush", stats.point_crashes[2]);
  for (const ViolationRecord& rec : violations) {
    obs::BenchVariant& v =
        reporter.AddVariant(StrCat("violation_run", rec.run));
    v.SetMetric("run", static_cast<uint64_t>(rec.run));
    v.SetInfo("violation", rec.description);
    if (!rec.flight_file.empty()) {
      v.SetInfo("flight_recorder", rec.flight_file);
    }
  }
  auto written = reporter.WriteFile(campaign.out);
  if (!written.ok()) {
    std::fprintf(stderr, "report write failed: %s\n",
                 written.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "async-checkpoint campaign: %llu run(s), %llu violation(s), "
      "%llu state-hash divergence(s)\n"
      "  injected: %llu crash(es) fired "
      "(triggers: state_save=%llu checkpoint=%llu group_flush=%llu), "
      "%llu torn tail(s)\n"
      "  background: %llu sweep(s), %llu publish(es), %llu deferral(s), "
      "%llu publish skip(s), %llu group flush(es)\n"
      "  recoveries: %llu, parallel-replay runs: %llu\n"
      "report: %s\n",
      static_cast<unsigned long long>(stats.runs),
      static_cast<unsigned long long>(stats.violations),
      static_cast<unsigned long long>(stats.hash_divergences),
      static_cast<unsigned long long>(stats.crashes_fired),
      static_cast<unsigned long long>(stats.point_crashes[0]),
      static_cast<unsigned long long>(stats.point_crashes[1]),
      static_cast<unsigned long long>(stats.point_crashes[2]),
      static_cast<unsigned long long>(stats.torn_tails_injected),
      static_cast<unsigned long long>(stats.async_sweeps),
      static_cast<unsigned long long>(stats.async_publishes),
      static_cast<unsigned long long>(stats.async_deferrals),
      static_cast<unsigned long long>(stats.publish_skips),
      static_cast<unsigned long long>(stats.group_flushes),
      static_cast<unsigned long long>(stats.recoveries),
      static_cast<unsigned long long>(stats.parallel_replay_runs),
      written->c_str());
  return stats.violations > 0 ? 1 : 0;
}

// --- sharded-WAL campaign --------------------------------------------------
//
// --wal-shards=N treats the shard layout itself as the fault domain: the
// same seeded workload runs once on an N-shard WAL under protocol crashes,
// crash-time torn tails and mid-run storage attacks aimed at a *single*
// shard file, and once as a fault-free single-log twin. Exactly-once must
// hold on the faulted sharded run, and its final observable state (per-
// store sales and stock, agent session count) must hash identically to the
// twin's — however the shards were damaged, the gsn merge must reassemble
// the very same history.

// One randomized sharded-run configuration.
struct ShardChaosConfig {
  uint64_t sim_seed = 1;
  bookstore::OptLevel level = bookstore::OptLevel::kSpecialized;
  uint32_t save_every = 0;
  uint32_t checkpoint_every = 0;
  Topology topology = Topology::kRemoteAgent;  // persistent tiers only
  int stores = 2;
  std::vector<std::pair<FailurePoint, uint64_t>> crashes;
  double torn_p = 0.0;        // crash-time single-shard torn tails
  bool bitrot_state = false;  // rot the shard holding the newest state record
  bool bitrot_wkf = false;    // rot the meta shard's well-known file
  bool tear_shard = false;    // tear one shard's un-externalized tail
  bool attack_agent = false;  // storage attack hits the agent process
  bool parallel_replay = false;
};

ShardChaosConfig MakeShardChaosConfig(const CampaignOptions& campaign,
                                      int run) {
  Random rng(campaign.seed * 4000037ull + static_cast<uint64_t>(run));
  ShardChaosConfig cfg;
  cfg.sim_seed = campaign.seed * 7919ull + static_cast<uint64_t>(run) + 1;
  switch (rng.Uniform(3)) {
    case 0:
      cfg.level = bookstore::OptLevel::kBaseline;
      break;
    case 1:
      cfg.level = bookstore::OptLevel::kOptimizedLogging;
      break;
    default:
      cfg.level = bookstore::OptLevel::kSpecialized;
      break;
  }
  const uint32_t kSaveChoices[] = {0, 3, 7};
  cfg.save_every = kSaveChoices[rng.Uniform(3)];
  cfg.checkpoint_every = cfg.save_every > 0 ? cfg.save_every * 2 : 0;
  cfg.topology = rng.Bernoulli(0.5) ? Topology::kRemoteAgent
                                    : Topology::kColocatedAgent;
  cfg.stores = 1 + static_cast<int>(rng.Uniform(2));
  uint64_t crash_count = rng.Uniform(4);  // 0..3 protocol crash triggers
  for (uint64_t i = 0; i < crash_count; ++i) {
    auto point = static_cast<FailurePoint>(rng.Uniform(6));
    cfg.crashes.emplace_back(point, 1 + rng.Uniform(100));
  }
  if (rng.Bernoulli(0.6)) {
    cfg.torn_p = 0.1 + rng.NextDouble() * 0.5;
  }
  cfg.bitrot_state = rng.Bernoulli(0.35);
  cfg.bitrot_wkf = rng.Bernoulli(0.2);
  cfg.tear_shard = rng.Bernoulli(0.3);
  cfg.attack_agent = rng.Bernoulli(0.3);
  cfg.parallel_replay = rng.Bernoulli(0.5);
  return cfg;
}

struct ShardChaosStats {
  uint64_t runs = 0;
  uint64_t violations = 0;
  uint64_t hash_divergences = 0;
  uint64_t sessions_total = 0;
  uint64_t crashes_fired = 0;
  uint64_t recoveries = 0;
  uint64_t torn_tails_injected = 0;
  uint64_t torn_tails_salvaged = 0;
  uint64_t storage_attack_runs = 0;
  uint64_t merge_records = 0;
  uint64_t merge_inversions = 0;
  uint64_t salvage_wkf_fallback = 0;
  uint64_t salvage_full_scan = 0;
  uint64_t salvage_ranges_skipped = 0;
  uint64_t salvage_state_fallback = 0;
  uint64_t dedupe_hits = 0;
  uint64_t retries = 0;
  uint64_t parallel_replay_runs = 0;
};

// Runs one configuration on `shards` WAL shards — faulted when inject is
// true, the fault-free twin otherwise — checks the exactly-once oracle and
// fills *state_hash with the FNV-1a digest of the final observable state.
std::string RunShardChaosOne(const ShardChaosConfig& cfg, int run,
                             int sessions, uint32_t shards, bool inject,
                             ShardChaosStats& stats, uint64_t* state_hash,
                             std::string* flight_file) {
  RuntimeOptions runtime = bookstore::OptionsForLevel(cfg.level);
  runtime.save_context_state_every = cfg.save_every;
  runtime.process_checkpoint_every = cfg.checkpoint_every;
  runtime.call_retry_budget_ms = 0.0;
  runtime.parallel_replay = cfg.parallel_replay;
  runtime.wal_shards = shards;

  SimulationParams params;
  params.seed = cfg.sim_seed;
  params.flight_recorder_events = kFlightEvents;
  Simulation sim(runtime, params);
  bookstore::RegisterBookstoreComponents(sim.factories());
  sim.factories().Register<ShoppingAgent>("ShoppingAgent");
  Machine& server_machine = sim.AddMachine("server");
  Machine& client_machine = sim.AddMachine("client");
  auto deployment =
      bookstore::Deploy(sim, server_machine, cfg.stores, cfg.level);
  if (!deployment.ok()) {
    return "deploy failed: " + deployment.status().ToString();
  }
  Process& server_proc = *deployment->server_process;

  if (inject) {
    for (const auto& [point, hit] : cfg.crashes) {
      sim.injector().AddTrigger("server", server_proc.pid(), point, hit);
    }
    if (cfg.torn_p > 0.0) {
      sim.injector().EnableTornTails(cfg.torn_p, cfg.sim_seed * 131 + 7);
    }
  }

  ExternalClient admin(&sim, "client");
  Machine& agent_machine = cfg.topology == Topology::kRemoteAgent
                               ? client_machine
                               : server_machine;
  Process& agent_proc = agent_machine.CreateProcess();
  auto agent =
      admin.CreateComponent(agent_proc, "ShoppingAgent", "agent0",
                            ComponentKind::kPersistent,
                            MakeArgs(deployment->seller_uri));
  if (!agent.ok()) {
    return "agent creation failed: " + agent.status().ToString();
  }

  std::vector<int> expected_store(cfg.stores, 0);
  std::vector<std::vector<int>> expected_book(cfg.stores,
                                              std::vector<int>(11, 0));
  Random workload(cfg.sim_seed * 31 + 1);
  std::string failure;

  bool attacks = cfg.bitrot_state || cfg.bitrot_wkf || cfg.tear_shard;
  int attack_at = attacks && sessions >= 2 ? sessions / 2 : sessions;
  for (int i = 0; i < sessions && failure.empty(); ++i) {
    if (inject && i == attack_at && i < sessions) {
      bool hit_agent = cfg.attack_agent;
      Status attack =
          hit_agent ? ApplyStorageAttack(cfg.bitrot_state, cfg.bitrot_wkf,
                                         cfg.tear_shard, sim, agent_machine,
                                         agent_proc)
                    : ApplyStorageAttack(cfg.bitrot_state, cfg.bitrot_wkf,
                                         cfg.tear_shard, sim, server_machine,
                                         server_proc);
      if (!attack.ok()) {
        failure = "recovery after storage attack failed: " + attack.ToString();
        break;
      }
    }
    int store = static_cast<int>(workload.Uniform(cfg.stores));
    int book = static_cast<int>(workload.Uniform(10)) + 1;
    std::string buyer = "buyer" + std::to_string(i);
    ExternalClient driver(&sim, "client");
    Status status =
        driver
            .Call(*agent, "Session",
                  MakeArgs(buyer, deployment->store_uris[store],
                           int64_t{book}))
            .status();
    if (!status.ok()) {
      failure = StrCat("session ", i, " failed: ", status.ToString());
      break;
    }
    ++expected_store[store];
    ++expected_book[store][book];
    if (inject) ++stats.sessions_total;
  }

  // Exactly-once oracle (persistent topology: every count exact) plus the
  // state digest for the single-log twin comparison.
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  };
  if (failure.empty()) {
    auto done = admin.Call(*agent, "SessionsDone", {});
    if (!done.ok()) {
      failure = "SessionsDone failed: " + done.status().ToString();
    } else if (done->AsInt() != sessions) {
      failure = StrCat("SessionsDone=", done->AsInt(), " want ", sessions);
    } else {
      mix(static_cast<uint64_t>(done->AsInt()));
    }
    ExternalClient probe(&sim, "client");
    for (int s = 0; s < cfg.stores && failure.empty(); ++s) {
      auto sold = probe.Call(deployment->store_uris[s], "TotalSold", {});
      if (!sold.ok()) {
        failure = "TotalSold failed: " + sold.status().ToString();
        break;
      }
      if (sold->AsInt() != expected_store[s]) {
        failure = StrCat("store ", s, " TotalSold=", sold->AsInt(), " want ",
                         expected_store[s]);
        break;
      }
      mix(static_cast<uint64_t>(sold->AsInt()));
      for (int book = 1; book <= 10 && failure.empty(); ++book) {
        auto entry = probe.Call(deployment->store_uris[s], "GetBook",
                                MakeArgs(int64_t{book}));
        if (!entry.ok()) {
          failure = "GetBook failed: " + entry.status().ToString();
          break;
        }
        int64_t stock = entry->AsList()[3].AsInt();
        if (25 - stock != expected_book[s][book]) {
          failure = StrCat("store ", s, " book ", book, " sold ", 25 - stock,
                           " want ", expected_book[s][book]);
          break;
        }
        mix(static_cast<uint64_t>(stock));
      }
    }
  }
  *state_hash = hash;

  if (inject) {
    stats.crashes_fired += sim.injector().crashes_fired();
    stats.recoveries +=
        server_machine.recovery_service().recoveries_performed() +
        agent_machine.recovery_service().recoveries_performed();
    stats.torn_tails_injected += sim.injector().torn_tails_fired();
    stats.torn_tails_salvaged +=
        sim.metrics().CounterTotal("phoenix.wal.torn_tails");
    stats.merge_records +=
        sim.metrics().CounterTotal("phoenix.recovery.merge.records");
    stats.merge_inversions +=
        sim.metrics().CounterTotal("phoenix.recovery.merge.inversions");
    stats.salvage_wkf_fallback +=
        sim.metrics().CounterTotal("phoenix.recovery.salvage.wkf_fallback");
    stats.salvage_full_scan += sim.metrics().CounterTotal(
        "phoenix.recovery.salvage.full_scan_fallback");
    stats.salvage_ranges_skipped +=
        sim.metrics().CounterTotal("phoenix.recovery.salvage.ranges_skipped");
    stats.salvage_state_fallback += sim.metrics().CounterTotal(
        "phoenix.recovery.salvage.state_record_fallback");
    stats.dedupe_hits +=
        sim.metrics().CounterTotal("phoenix.intercept.dedupe_hits");
    stats.retries += sim.metrics().CounterTotal("phoenix.intercept.retries");
  }

  if (!failure.empty() && inject) {
    std::string path = obs::ResolveBenchPath(
        StrCat("chaos_shard_flight_run", run, ".jsonl"));
    std::string dump = sim.tracer().ExportFlightRecorder();
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f != nullptr) {
      std::fwrite(dump.data(), 1, dump.size(), f);
      std::fclose(f);
      *flight_file = path;
    }
  }
  return failure;
}

int RunShardCampaign(const CampaignOptions& campaign) {
  ShardChaosStats stats;
  struct ViolationRecord {
    int run;
    std::string description;
    std::string flight_file;
  };
  std::vector<ViolationRecord> violations;
  for (int run = 0; run < campaign.runs; ++run) {
    ShardChaosConfig cfg = MakeShardChaosConfig(campaign, run);
    uint64_t twin_hash = 0;
    uint64_t fault_hash = 0;
    std::string flight_file;
    std::string twin_failure = RunShardChaosOne(
        cfg, run, campaign.sessions, /*shards=*/1, /*inject=*/false, stats,
        &twin_hash, &flight_file);
    std::string violation = RunShardChaosOne(
        cfg, run, campaign.sessions, campaign.wal_shards, /*inject=*/true,
        stats, &fault_hash, &flight_file);
    ++stats.runs;
    if (cfg.parallel_replay) ++stats.parallel_replay_runs;
    if (cfg.bitrot_state || cfg.bitrot_wkf || cfg.tear_shard) {
      ++stats.storage_attack_runs;
    }
    if (violation.empty() && !twin_failure.empty()) {
      violation = "fault-free single-log twin failed: " + twin_failure;
    }
    if (violation.empty() && fault_hash != twin_hash) {
      ++stats.hash_divergences;
      violation = StrCat("state hash diverged from single-log twin: ",
                         fault_hash, " != ", twin_hash);
    }
    if (!violation.empty()) {
      ++stats.violations;
      violations.push_back({run, violation, flight_file});
      std::fprintf(stderr,
                   "VIOLATION run %d (%s, %s, save=%u, attacks=%d%d%d): %s\n",
                   run, TopologyName(cfg.topology),
                   bookstore::OptLevelName(cfg.level), cfg.save_every,
                   cfg.bitrot_state ? 1 : 0, cfg.bitrot_wkf ? 1 : 0,
                   cfg.tear_shard ? 1 : 0, violation.c_str());
    } else if (campaign.verbose) {
      std::printf("run %d ok (%s, %s, save=%u, crashes=%zu, torn=%.2f, "
                  "attacks=%d%d%d)\n",
                  run, TopologyName(cfg.topology),
                  bookstore::OptLevelName(cfg.level), cfg.save_every,
                  cfg.crashes.size(), cfg.torn_p, cfg.bitrot_state ? 1 : 0,
                  cfg.bitrot_wkf ? 1 : 0, cfg.tear_shard ? 1 : 0);
    }
  }

  obs::BenchReporter reporter("chaos_wal_shards", kChaosSchema);
  obs::BenchVariant& campaign_v = reporter.AddVariant("campaign");
  campaign_v.SetMetric("runs", stats.runs)
      .SetMetric("seed", campaign.seed)
      .SetMetric("wal_shards", static_cast<uint64_t>(campaign.wal_shards))
      .SetMetric("sessions_per_run", static_cast<uint64_t>(campaign.sessions))
      .SetMetric("violations", stats.violations)
      .SetMetric("state_hash_divergences", stats.hash_divergences)
      .SetMetric("sessions_total", stats.sessions_total)
      .SetMetric("crashes_fired", stats.crashes_fired)
      .SetMetric("recoveries", stats.recoveries)
      .SetMetric("storage_attack_runs", stats.storage_attack_runs)
      .SetMetric("torn_tails_injected", stats.torn_tails_injected)
      .SetMetric("torn_tails_salvaged", stats.torn_tails_salvaged)
      .SetMetric("merge_records", stats.merge_records)
      .SetMetric("merge_inversions", stats.merge_inversions)
      .SetMetric("salvage_wkf_fallbacks", stats.salvage_wkf_fallback)
      .SetMetric("salvage_full_scan_fallbacks", stats.salvage_full_scan)
      .SetMetric("salvage_ranges_skipped", stats.salvage_ranges_skipped)
      .SetMetric("salvage_state_record_fallbacks",
                 stats.salvage_state_fallback)
      .SetMetric("dedupe_hits", stats.dedupe_hits)
      .SetMetric("interceptor_retries", stats.retries)
      .SetMetric("parallel_replay_runs", stats.parallel_replay_runs);
  for (const ViolationRecord& rec : violations) {
    obs::BenchVariant& v =
        reporter.AddVariant(StrCat("violation_run", rec.run));
    v.SetMetric("run", static_cast<uint64_t>(rec.run));
    v.SetInfo("violation", rec.description);
    if (!rec.flight_file.empty()) {
      v.SetInfo("flight_recorder", rec.flight_file);
    }
  }
  auto written = reporter.WriteFile(campaign.out);
  if (!written.ok()) {
    std::fprintf(stderr, "report write failed: %s\n",
                 written.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "sharded-WAL campaign (%u shard(s)): %llu run(s), %llu violation(s), "
      "%llu state-hash divergence(s)\n"
      "  faults: %llu crash(es), %llu recover(ies), %llu storage-attack "
      "run(s), %llu torn tail(s) injected, %llu salvaged\n"
      "  merge: %llu record(s) merged, %llu inversion(s)\n"
      "  salvage: %llu wkf fallback(s), %llu full-scan fallback(s), "
      "%llu range(s) skipped, %llu state-record fallback(s)\n"
      "  masking: %llu dedupe hit(s), %llu retry(ies), "
      "%llu parallel-replay run(s)\n"
      "report: %s\n",
      campaign.wal_shards, static_cast<unsigned long long>(stats.runs),
      static_cast<unsigned long long>(stats.violations),
      static_cast<unsigned long long>(stats.hash_divergences),
      static_cast<unsigned long long>(stats.crashes_fired),
      static_cast<unsigned long long>(stats.recoveries),
      static_cast<unsigned long long>(stats.storage_attack_runs),
      static_cast<unsigned long long>(stats.torn_tails_injected),
      static_cast<unsigned long long>(stats.torn_tails_salvaged),
      static_cast<unsigned long long>(stats.merge_records),
      static_cast<unsigned long long>(stats.merge_inversions),
      static_cast<unsigned long long>(stats.salvage_wkf_fallback),
      static_cast<unsigned long long>(stats.salvage_full_scan),
      static_cast<unsigned long long>(stats.salvage_ranges_skipped),
      static_cast<unsigned long long>(stats.salvage_state_fallback),
      static_cast<unsigned long long>(stats.dedupe_hits),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.parallel_replay_runs),
      written->c_str());
  return stats.violations > 0 ? 1 : 0;
}

int RunCampaign(const CampaignOptions& campaign) {
  CampaignStats stats;
  struct ViolationRecord {
    int run;
    std::string description;
    std::string flight_file;
  };
  std::vector<ViolationRecord> violations;
  for (int run = 0; run < campaign.runs; ++run) {
    RunConfig cfg = MakeRunConfig(campaign, run);
    std::string flight_file;
    std::string violation =
        RunOne(cfg, run, campaign.sessions, stats, &flight_file);
    ++stats.runs;
    if (cfg.overlap > 1) ++stats.concurrent_runs;
    if (cfg.group_commit) ++stats.group_commit_runs;
    if (cfg.parallel_replay) ++stats.parallel_replay_runs;
    int topo = static_cast<int>(cfg.topology);
    ++stats.topo_runs[topo];
    if (!violation.empty()) {
      ++stats.violations;
      ++stats.topo_violations[topo];
      violations.push_back({run, violation, flight_file});
      std::fprintf(stderr,
                   "VIOLATION run %d (%s, %s, save=%u, %d store(s)): %s\n"
                   "  flight recorder: %s\n",
                   run, TopologyName(cfg.topology),
                   bookstore::OptLevelName(cfg.level), cfg.save_every,
                   cfg.stores, violation.c_str(),
                   flight_file.empty() ? "(write failed)"
                                       : flight_file.c_str());
    } else if (campaign.verbose) {
      std::printf("run %d ok (%s, %s, save=%u, crashes=%zu, drop=%.3f, "
                  "torn=%.2f)\n",
                  run, TopologyName(cfg.topology),
                  bookstore::OptLevelName(cfg.level), cfg.save_every,
                  cfg.crashes.size(), cfg.faults.drop_p, cfg.torn_p);
    }
  }

  obs::BenchReporter reporter("chaos_campaign", kChaosSchema);
  obs::BenchVariant& campaign_v = reporter.AddVariant("campaign");
  campaign_v.SetMetric("runs", stats.runs)
      .SetMetric("seed", campaign.seed)
      .SetMetric("sessions_per_run", static_cast<uint64_t>(campaign.sessions))
      .SetMetric("violations", stats.violations)
      .SetMetric("wov_duplicate_executions", stats.wov_duplicate_executions)
      .SetMetric("sessions_total", stats.sessions_total)
      .SetMetric("crashes_fired", stats.crashes_fired)
      .SetMetric("recoveries", stats.recoveries)
      .SetMetric("net_messages_dropped", stats.net_dropped)
      .SetMetric("net_messages_duplicated", stats.net_duplicated)
      .SetMetric("torn_tails_injected", stats.torn_tails_injected)
      .SetMetric("torn_tails_salvaged", stats.torn_tails_salvaged)
      .SetMetric("salvage_wkf_fallbacks", stats.salvage_wkf_fallback)
      .SetMetric("salvage_full_scan_fallbacks", stats.salvage_full_scan)
      .SetMetric("salvage_ranges_skipped", stats.salvage_ranges_skipped)
      .SetMetric("salvage_state_record_fallbacks",
                 stats.salvage_state_fallback)
      .SetMetric("dedupe_hits", stats.dedupe_hits)
      .SetMetric("interceptor_retries", stats.retries)
      .SetMetric("max_overlap", static_cast<uint64_t>(campaign.overlap))
      .SetMetric("concurrent_runs", stats.concurrent_runs)
      .SetMetric("group_commit_runs", stats.group_commit_runs)
      .SetMetric("group_commit_flushes", stats.group_flushes)
      .SetMetric("group_commit_coalesced", stats.group_coalesced)
      .SetMetric("parallel_replay_runs", stats.parallel_replay_runs)
      .SetMetric("replay_chains", stats.replay_chains)
      .SetMetric("replay_edges", stats.replay_edges)
      .SetMetric("replay_fallbacks", stats.replay_fallbacks);
  for (int t = 0; t < 3; ++t) {
    obs::BenchVariant& v =
        reporter.AddVariant(TopologyName(static_cast<Topology>(t)));
    v.SetMetric("runs", stats.topo_runs[t])
        .SetMetric("violations", stats.topo_violations[t])
        .SetMetric("wov_duplicate_executions", stats.topo_wov[t]);
  }
  // Every violating run carries its post-mortem: the oracle failure and the
  // flight-recorder dump showing what each process did right before it.
  for (const ViolationRecord& rec : violations) {
    obs::BenchVariant& v =
        reporter.AddVariant(StrCat("violation_run", rec.run));
    v.SetMetric("run", static_cast<uint64_t>(rec.run));
    v.SetInfo("violation", rec.description);
    if (!rec.flight_file.empty()) {
      v.SetInfo("flight_recorder", rec.flight_file);
    }
  }
  auto written = reporter.WriteFile(campaign.out);
  if (!written.ok()) {
    std::fprintf(stderr, "report write failed: %s\n",
                 written.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "chaos campaign: %llu run(s), %llu violation(s), %llu WoV duplicate "
      "execution(s)\n"
      "  faults: %llu crash(es), %llu recover(ies), %llu dropped, "
      "%llu duplicated, %llu torn tail(s)\n"
      "  salvage: %llu torn-tail truncation(s), %llu wkf fallback(s), "
      "%llu full-scan fallback(s), %llu range(s) skipped, "
      "%llu state-record fallback(s)\n"
      "  masking: %llu dedupe hit(s), %llu retry(ies)\n"
      "  overlap: %llu concurrent run(s), %llu with group commit, "
      "%llu group flush(es) coalescing %llu wait(s)\n"
      "  replay: %llu parallel-replay run(s), %llu chain(s), %llu edge(s), "
      "%llu fallback(s)\n"
      "report: %s\n",
      static_cast<unsigned long long>(stats.runs),
      static_cast<unsigned long long>(stats.violations),
      static_cast<unsigned long long>(stats.wov_duplicate_executions),
      static_cast<unsigned long long>(stats.crashes_fired),
      static_cast<unsigned long long>(stats.recoveries),
      static_cast<unsigned long long>(stats.net_dropped),
      static_cast<unsigned long long>(stats.net_duplicated),
      static_cast<unsigned long long>(stats.torn_tails_injected),
      static_cast<unsigned long long>(stats.torn_tails_salvaged),
      static_cast<unsigned long long>(stats.salvage_wkf_fallback),
      static_cast<unsigned long long>(stats.salvage_full_scan),
      static_cast<unsigned long long>(stats.salvage_ranges_skipped),
      static_cast<unsigned long long>(stats.salvage_state_fallback),
      static_cast<unsigned long long>(stats.dedupe_hits),
      static_cast<unsigned long long>(stats.retries),
      static_cast<unsigned long long>(stats.concurrent_runs),
      static_cast<unsigned long long>(stats.group_commit_runs),
      static_cast<unsigned long long>(stats.group_flushes),
      static_cast<unsigned long long>(stats.group_coalesced),
      static_cast<unsigned long long>(stats.parallel_replay_runs),
      static_cast<unsigned long long>(stats.replay_chains),
      static_cast<unsigned long long>(stats.replay_edges),
      static_cast<unsigned long long>(stats.replay_fallbacks),
      written->c_str());
  return stats.violations > 0 ? 1 : 0;
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  std::string prefix = "--" + name + "=";
  if (!StartsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

int Main(int argc, char** argv) {
  CampaignOptions campaign;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "runs", &value)) {
      campaign.runs = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "seed", &value)) {
      campaign.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "sessions", &value)) {
      campaign.sessions = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "overlap", &value)) {
      campaign.overlap = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "out", &value)) {
      campaign.out = value;
    } else if (arg == "--verbose") {
      campaign.verbose = true;
    } else if (arg == "--crash-during-recovery") {
      campaign.crash_during_recovery = true;
    } else if (arg == "--async-checkpoint") {
      campaign.async_checkpoint = true;
    } else if (ParseFlag(arg, "wal-shards", &value)) {
      campaign.wal_shards = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--runs=N] [--seed=S] [--sessions=N] "
                   "[--overlap=N] [--wal-shards=N] [--out=FILE] [--verbose] "
                   "[--crash-during-recovery] [--async-checkpoint]\n",
                   argv[0]);
      return 2;
    }
  }
  if (campaign.runs <= 0 || campaign.sessions <= 0 || campaign.overlap <= 0) {
    std::fprintf(stderr,
                 "--runs, --sessions and --overlap must be positive\n");
    return 2;
  }
  if (campaign.wal_shards > 1) {
    return RunShardCampaign(campaign);
  }
  if (campaign.async_checkpoint) {
    return RunAsyncCheckpointCampaign(campaign);
  }
  if (campaign.crash_during_recovery) {
    return RunRecoveryCrashCampaign(campaign);
  }
  return RunCampaign(campaign);
}

}  // namespace
}  // namespace phoenix::tools

int main(int argc, char** argv) { return phoenix::tools::Main(argc, argv); }
