#!/usr/bin/env python3
"""Diff single-session bench force counts against checked-in goldens.

The commit-pipeline refactor must keep fault-free single-session runs
byte-identical to the pre-refactor numbers: same forces, same appends, same
simulated time. This script pins that property in CI. It reads one or more
BENCH_*.json reports (phoenix.bench.v1) and compares every metric listed in
tools/bench_goldens.json exactly — these are deterministic simulations, so
even the floating-point timings must match to the last digit.

When values differ, each mismatch is classified with the report's direction
metadata (the "meta" block phoenix.bench.v1 reports carry): a lower value on
a lower_is_better metric prints as "improved", the opposite as "REGRESSED",
and direction-free metrics as "changed". That makes a re-pin reviewable at a
glance, and the exit code distinguishes the cases:

    0  every pinned value matches
    1  at least one regression, direction-free change, or structural
       mismatch (missing bench/variant)
    2  usage error
    3  values differ but every mismatch is an improvement — still a failure
       (the goldens must be re-pinned), but a reviewable one

Usage:
    check_bench_goldens.py [--goldens=tools/bench_goldens.json] BENCH_x.json...

To regenerate the goldens after an intentional change:
    check_bench_goldens.py --update --goldens=tools/bench_goldens.json \
        BENCH_x.json...
(then review the diff like any other source change).
"""

import json
import sys

# Metrics pinned per variant. Timings and counters only; latency summaries
# are derived from the same data. The recovery/replay group pins the
# parallel-replay contract: sequential-mode numbers stay put, every parallel
# width reproduces the sequential end state (state_matches_sequential == 1)
# and the seeded divergence sweep stays at zero.
PINNED = ("forces", "appends", "bytes_forced", "sim_time_ms", "calls_routed",
          "per_call_ms", "per_iteration_ms", "forces_per_call", "ms_per_call",
          "recovery_ms", "records_scanned", "calls_replayed", "replay_chains",
          "replay_edges", "replay_fallbacks", "state_matches_sequential",
          "runs", "divergences", "pinned_divergences",
          "salvaged_parallel_replays", "replay_chains_demoted",
          "ratio_vs_unsalvaged_parallel",
          # Sharded-WAL contract: shards=1 keeps every pre-sharding value
          # above byte-identical, and the sharded bench variants must
          # reproduce the single-log recovery end state exactly.
          "wal_shards", "state_matches_single_log")


def load_report(path):
    with open(path) as f:
        report = json.load(f)
    variants = {}
    for variant in report.get("variants", []):
        metrics = variant.get("metrics", {})
        variants[variant["name"]] = {
            k: metrics[k] for k in PINNED if k in metrics
        }
    directions = {
        metric: entry.get("direction", "informational")
        for metric, entry in report.get("meta", {}).get("metrics", {}).items()
    }
    return report["bench"], variants, directions


def classify(direction, got, want):
    """One of "improved", "REGRESSED", "changed" for a got != want pair."""
    if not isinstance(got, (int, float)) or isinstance(got, bool):
        return "changed"
    delta = got - want
    better = {"lower_is_better": delta < 0,
              "higher_is_better": delta > 0}.get(direction)
    if better is None:
        return "changed"
    return "improved" if better else "REGRESSED"


def main(argv):
    goldens_path = "tools/bench_goldens.json"
    update = False
    reports = []
    for arg in argv[1:]:
        if arg.startswith("--goldens="):
            goldens_path = arg.split("=", 1)[1]
        elif arg == "--update":
            update = True
        else:
            reports.append(arg)
    if not reports:
        print(__doc__, file=sys.stderr)
        return 2

    observed = {}
    observed_directions = {}
    for path in reports:
        bench, variants, directions = load_report(path)
        observed[bench] = variants
        observed_directions[bench] = directions

    if update:
        with open(goldens_path, "w") as f:
            json.dump(observed, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {goldens_path}: "
              f"{sum(len(v) for v in observed.values())} variant(s) across "
              f"{len(observed)} bench(es)")
        return 0

    with open(goldens_path) as f:
        goldens = json.load(f)

    failures = []       # structural problems: always exit 1
    mismatches = []     # (message, classification) value diffs
    checked = 0
    for bench, variants in observed.items():
        golden_bench = goldens.get(bench)
        if golden_bench is None:
            failures.append(f"{bench}: no golden recorded")
            continue
        directions = observed_directions.get(bench, {})
        for name, golden in golden_bench.items():
            ours = variants.get(name)
            if ours is None:
                failures.append(f"{bench}/{name}: variant missing from report")
                continue
            for metric, want in golden.items():
                got = ours.get(metric)
                checked += 1
                if got == want:
                    continue
                direction = directions.get(metric, "informational")
                verdict = classify(direction, got, want)
                mismatches.append(
                    (f"{bench}/{name}/{metric}: got {got!r}, want {want!r} "
                     f"[{verdict}: {direction}]", verdict))

    if failures or mismatches:
        print(f"bench goldens: {len(failures) + len(mismatches)} mismatch(es) "
              f"({checked} value(s) checked)", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        for message, _ in mismatches:
            print(f"  {message}", file=sys.stderr)
        if not failures and all(v == "improved" for _, v in mismatches):
            print("bench goldens: every mismatch is an improvement — "
                  "re-pin with --update and review the direction calls",
                  file=sys.stderr)
            return 3
        return 1
    print(f"bench goldens OK: {checked} value(s) match exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
