// phoenix_benchdiff — cross-run performance sentinel.
//
// Diffs a candidate tree of phoenix.bench.v1 reports against a committed
// baseline tree, classifies every metric delta as improvement / regression /
// neutral / new / removed using the reports' direction metadata, checks the
// declarative SLO budgets, and (optionally) appends the candidate's headline
// metrics to the bench history ledger. Prints the markdown report to stdout.
//
// Usage:
//   phoenix_benchdiff --baseline=DIR --candidate=DIR
//       [--slo=bench/slo.json] [--json=FILE] [--md=FILE]
//       [--history=bench/history.json --history-label=pr9]
//       [--tolerance=METRIC=REL_PCT]... [--default-tolerance=REL_PCT]
//
// Exit codes: 0 gate passes (improvements are fine), 1 any out-of-band
// regression or SLO violation, 2 usage / unreadable inputs.
//
// Example (the CI sentinel):
//   bench/table7_recovery --out-dir=sentinel_out && ... all benches ...
//   phoenix_benchdiff --baseline=../bench/baselines --candidate=sentinel_out \
//       --slo=../bench/slo.json --md=benchdiff.md --json=benchdiff.json

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.h"
#include "obs/benchdiff.h"

namespace phoenix::tools {
namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --baseline=DIR --candidate=DIR [--slo=FILE] [--json=FILE]\n"
      "          [--md=FILE] [--history=FILE --history-label=LABEL]\n"
      "          [--tolerance=METRIC=REL_PCT] [--default-tolerance=REL_PCT]\n",
      argv0);
  return 2;
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* value) {
  std::string prefix = "--" + name + "=";
  if (!StartsWith(arg, prefix)) return false;
  *value = arg.substr(prefix.size());
  return true;
}

bool ReadTextFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return written == content.size();
}

int Main(int argc, char** argv) {
  std::string baseline_dir, candidate_dir, slo_path, json_path, md_path;
  std::string history_path, history_label;
  obs::DiffOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "baseline", &value)) {
      baseline_dir = value;
    } else if (ParseFlag(arg, "candidate", &value)) {
      candidate_dir = value;
    } else if (ParseFlag(arg, "slo", &value)) {
      slo_path = value;
    } else if (ParseFlag(arg, "json", &value)) {
      json_path = value;
    } else if (ParseFlag(arg, "md", &value)) {
      md_path = value;
    } else if (ParseFlag(arg, "history", &value)) {
      history_path = value;
    } else if (ParseFlag(arg, "history-label", &value)) {
      history_label = value;
    } else if (ParseFlag(arg, "default-tolerance", &value)) {
      options.default_band.rel = std::atof(value.c_str()) / 100.0;
    } else if (ParseFlag(arg, "tolerance", &value)) {
      size_t eq = value.find('=');
      if (eq == std::string::npos) return Usage(argv[0]);
      options.metric_band[value.substr(0, eq)].rel =
          std::atof(value.c_str() + eq + 1) / 100.0;
    } else {
      return Usage(argv[0]);
    }
  }
  if (baseline_dir.empty() || candidate_dir.empty()) return Usage(argv[0]);
  if (history_path.empty() != history_label.empty()) {
    std::fprintf(stderr, "--history and --history-label go together\n");
    return 2;
  }

  auto baseline = obs::LoadBenchReportDir(baseline_dir);
  if (!baseline.ok()) {
    std::fprintf(stderr, "baseline: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }
  auto candidate = obs::LoadBenchReportDir(candidate_dir);
  if (!candidate.ok()) {
    std::fprintf(stderr, "candidate: %s\n",
                 candidate.status().ToString().c_str());
    return 2;
  }

  obs::SloConfig slo;
  if (!slo_path.empty()) {
    std::string text;
    if (!ReadTextFile(slo_path, &text)) {
      std::fprintf(stderr, "cannot open %s\n", slo_path.c_str());
      return 2;
    }
    auto parsed = obs::ParseSloConfig(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", slo_path.c_str(),
                   parsed.status().ToString().c_str());
      return 2;
    }
    slo = *std::move(parsed);
    for (const auto& [metric, band] : slo.tolerances) {
      // Config tolerances lose to explicit --tolerance flags.
      options.metric_band.emplace(metric, band);
    }
  }

  obs::BenchDiff diff =
      obs::DiffBenchReports(*baseline, *candidate, options);
  if (!slo_path.empty()) obs::CheckSlo(slo, *candidate, &diff);

  std::string markdown =
      obs::BenchDiffToMarkdown(diff, baseline_dir, candidate_dir);
  std::fputs(markdown.c_str(), stdout);
  if (!md_path.empty() && !WriteTextFile(md_path, markdown)) {
    std::fprintf(stderr, "cannot write %s\n", md_path.c_str());
    return 2;
  }
  if (!json_path.empty() &&
      !WriteTextFile(json_path,
                     obs::BenchDiffToJson(diff, baseline_dir,
                                          candidate_dir))) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 2;
  }

  if (!history_path.empty()) {
    std::string text;
    ReadTextFile(history_path, &text);  // missing file starts a new ledger
    auto updated = obs::UpdateHistory(text, history_label, slo.headlines,
                                      *candidate);
    if (!updated.ok()) {
      std::fprintf(stderr, "%s: %s\n", history_path.c_str(),
                   updated.status().ToString().c_str());
      return 2;
    }
    if (!WriteTextFile(history_path, *updated)) {
      std::fprintf(stderr, "cannot write %s\n", history_path.c_str());
      return 2;
    }
    std::printf("\nhistory: %s row \"%s\" (%zu headline metric(s))\n",
                history_path.c_str(), history_label.c_str(),
                slo.headlines.size());
  }

  return diff.GateFails() ? 1 : 0;
}

}  // namespace
}  // namespace phoenix::tools

int main(int argc, char** argv) { return phoenix::tools::Main(argc, argv); }
