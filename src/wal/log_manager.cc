#include "wal/log_manager.h"

namespace phoenix {

LogManager::LogManager(std::string log_name, StableStorage* storage,
                       DiskModel* disk, SimClock* clock,
                       const CostModel* costs)
    : storage_(storage),
      disk_(disk),
      clock_(clock),
      costs_(costs),
      writer_(log_name, storage, disk, clock),
      pipeline_(&writer_, clock, costs),
      well_known_name_(log_name + ".wkf") {}

uint64_t LogManager::Append(const LogRecord& record) {
  Encoder enc;
  EncodeLogRecord(record, enc);
  clock_->AdvanceMs(costs_->log_append_ms);
  return writer_.AppendPayload(enc.buffer());
}

void LogManager::Force(ForcePoint reason) {
  if (!writer_.has_buffered()) return;
  clock_->AdvanceMs(costs_->force_dispatch_ms);
  writer_.Force(reason);
}

const std::vector<uint8_t>& LogManager::StableLog() const {
  return storage_->ReadLog(writer_.log_name());
}

LogView LogManager::StableView() const {
  return LogView{&StableLog(), storage_->LogBase(writer_.log_name())};
}

std::vector<uint8_t> LogManager::FullLog() const {
  std::vector<uint8_t> image = StableLog();
  const std::vector<uint8_t>& buffered = writer_.buffer();
  image.insert(image.end(), buffered.begin(), buffered.end());
  return image;
}

uint64_t LogManager::head_base() const {
  return storage_->LogBase(writer_.log_name());
}

void LogManager::TrimHead(uint64_t lsn) {
  storage_->TrimLogHead(writer_.log_name(), lsn);
}

void LogManager::TruncateStableTail(uint64_t end_lsn) {
  uint64_t old_end = storage_->LogSize(writer_.log_name());
  storage_->TruncateLog(writer_.log_name(), end_lsn);
  writer_.ResetStableEnd(storage_->LogSize(writer_.log_name()));
  uint64_t discarded = old_end > end_lsn ? old_end - end_lsn : 0;
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("phoenix.wal.torn_tails",
                     obs::LabelSet{{"process", component_}})
        .Increment();
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("log", "torn_tail", component_,
                     {obs::Arg("torn_at_lsn", end_lsn),
                      obs::Arg("bytes_discarded", discarded)});
  }
}

void LogManager::WriteWellKnownLsn(uint64_t lsn) {
  Encoder enc;
  enc.PutU64(lsn);
  storage_->WriteFile(well_known_name_, enc.buffer());
  clock_->AdvanceMs(disk_->WriteLatencyMs(clock_->NowMs(), enc.size()));
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("phoenix.log.wkf_writes",
                     obs::LabelSet{{"process", component_}})
        .Increment();
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("log", "wkf_write", component_, {obs::Arg("lsn", lsn)});
  }
}

void LogManager::BindObs(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
                         std::string component) {
  metrics_ = metrics;
  tracer_ = tracer;
  component_ = component;
  pipeline_.BindObs(metrics, tracer, component);
  writer_.BindObs(metrics, tracer, std::move(component));
}

Result<uint64_t> LogManager::ReadWellKnownLsn() const {
  PHX_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                       storage_->ReadFile(well_known_name_));
  Decoder dec(data);
  return dec.GetU64();
}

}  // namespace phoenix
