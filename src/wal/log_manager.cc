#include "wal/log_manager.h"

#include "common/macros.h"
#include "common/strings.h"

namespace phoenix {

LogManager::LogManager(std::string log_name, StableStorage* storage,
                       DiskModel* disk, SimClock* clock,
                       const CostModel* costs, uint32_t shard_count,
                       uint64_t shard_seed)
    : storage_(storage),
      disk_(disk),
      clock_(clock),
      costs_(costs),
      shard_count_(shard_count == 0 ? 1 : shard_count),
      router_(shard_count_, shard_seed),
      writer_(log_name, storage, disk, clock),
      pipeline_(&writer_, clock, costs),
      well_known_name_(log_name + ".wkf") {
  for (uint32_t s = 1; s < shard_count_; ++s) {
    extra_shards_.push_back(std::make_unique<ExtraShard>(
        StrCat(log_name, ".s", s), storage, disk, clock, costs));
  }
  if (sharded()) RecoverNextGsn();
}

std::string LogManager::shard_log_name(uint32_t shard) const {
  return shard == 0 ? writer_.log_name()
                    : extra_shards_[shard - 1]->writer.log_name();
}

void LogManager::RecoverNextGsn() {
  uint64_t max_gsn = 0;
  for (uint32_t s = 0; s < shard_count_; ++s) {
    LogReader reader(ShardStableView(s), shard_head_base(s));
    reader.EnableSalvage();
    reader.EnableGsnPrefix();
    while (auto parsed = reader.Next()) {
      if (parsed->order > max_gsn) max_gsn = parsed->order;
    }
  }
  next_gsn_ = max_gsn + 1;
}

uint64_t LogManager::Append(const LogRecord& record) {
  if (!sharded()) {
    Encoder enc;
    EncodeLogRecord(record, enc);
    clock_->AdvanceMs(costs_->log_append_ms);
    return writer_.AppendPayload(enc.buffer());
  }
  uint32_t shard = router_.ShardForRecord(record);
  Encoder enc;
  enc.PutU64(next_gsn_++);  // gsn prefix, inside the frame CRC
  EncodeLogRecord(record, enc);
  clock_->AdvanceMs(costs_->log_append_ms);
  uint64_t local = shard_writer(shard).AppendPayload(enc.buffer());
  if (append_observer_) append_observer_(shard);
  return MakeShardLsn(shard, local);
}

Status LogManager::WaitDurableShard(uint32_t shard, ForcePoint reason,
                                    bool allow_park) {
  return pipeline(shard).WaitDurable(shard_writer(shard).next_lsn(), reason,
                                     allow_park);
}

void LogManager::Force(ForcePoint reason) {
  for (uint32_t s = 0; s < shard_count_; ++s) {
    LogWriter& writer = shard_writer(s);
    if (!writer.has_buffered()) continue;
    clock_->AdvanceMs(costs_->force_dispatch_ms);
    writer.Force(reason);
  }
}

bool LogManager::IsStable(uint64_t lsn) const {
  if (!sharded()) return writer_.IsStable(lsn);
  if (lsn == kInvalidLsn) return false;
  return shard_writer(ShardOfLsn(lsn)).IsStable(LocalOfLsn(lsn));
}

void LogManager::DropBuffer() {
  for (uint32_t s = 0; s < shard_count_; ++s) {
    shard_writer(s).DropBuffer();
    pipeline(s).OnCrash();
  }
}

const std::vector<uint8_t>& LogManager::StableLog() const {
  return storage_->ReadLog(writer_.log_name());
}

LogView LogManager::StableView() const {
  return LogView{&StableLog(), storage_->LogBase(writer_.log_name())};
}

const std::vector<uint8_t>& LogManager::ShardStableLog(uint32_t shard) const {
  return storage_->ReadLog(shard_writer(shard).log_name());
}

LogView LogManager::ShardStableView(uint32_t shard) const {
  return LogView{&ShardStableLog(shard),
                 storage_->LogBase(shard_writer(shard).log_name())};
}

std::vector<uint8_t> LogManager::FullLog() const {
  std::vector<uint8_t> image = StableLog();
  const std::vector<uint8_t>& buffered = writer_.buffer();
  image.insert(image.end(), buffered.begin(), buffered.end());
  return image;
}

std::vector<uint8_t> LogManager::ShardFullLog(uint32_t shard) const {
  std::vector<uint8_t> image = ShardStableLog(shard);
  const std::vector<uint8_t>& buffered = shard_writer(shard).buffer();
  image.insert(image.end(), buffered.begin(), buffered.end());
  return image;
}

uint64_t LogManager::head_base() const {
  return storage_->LogBase(writer_.log_name());
}

uint64_t LogManager::shard_head_base(uint32_t shard) const {
  return storage_->LogBase(shard_writer(shard).log_name());
}

void LogManager::TrimHead(uint64_t lsn) {
  storage_->TrimLogHead(writer_.log_name(), lsn);
}

void LogManager::TrimShardHead(uint32_t shard, uint64_t local_lsn) {
  storage_->TrimLogHead(shard_writer(shard).log_name(), local_lsn);
}

void LogManager::TruncateStableTail(uint64_t end_lsn) {
  uint32_t shard = sharded() ? ShardOfLsn(end_lsn) : 0;
  uint64_t local = sharded() ? LocalOfLsn(end_lsn) : end_lsn;
  LogWriter& writer = shard_writer(shard);
  uint64_t old_end = storage_->LogSize(writer.log_name());
  storage_->TruncateLog(writer.log_name(), local);
  writer.ResetStableEnd(storage_->LogSize(writer.log_name()));
  uint64_t discarded = old_end > local ? old_end - local : 0;
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("phoenix.wal.torn_tails",
                     obs::LabelSet{{"process", component_}})
        .Increment();
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("log", "torn_tail", component_,
                     {obs::Arg("torn_at_lsn", end_lsn),
                      obs::Arg("bytes_discarded", discarded)});
  }
}

Result<LogRecord> LogManager::ReadRecordAtLsn(uint64_t lsn) const {
  if (!sharded()) return ReadRecordAt(StableView(), lsn);
  if (lsn == kInvalidLsn) return Status::Corruption("invalid lsn");
  uint32_t shard = ShardOfLsn(lsn);
  if (shard >= shard_count_) return Status::Corruption("lsn shard out of range");
  return ReadPrefixedRecordAt(ShardStableView(shard), LocalOfLsn(lsn));
}

Result<uint64_t> LogManager::OrderOfRecordAt(uint64_t lsn) const {
  if (!sharded()) return lsn;  // single log: position is the order
  if (lsn == kInvalidLsn) return Status::Corruption("invalid lsn");
  uint32_t shard = ShardOfLsn(lsn);
  if (shard >= shard_count_) return Status::Corruption("lsn shard out of range");
  uint64_t order = 0;
  PHX_ASSIGN_OR_RETURN(
      LogRecord record,
      ReadPrefixedRecordAt(ShardStableView(shard), LocalOfLsn(lsn), &order));
  (void)record;
  return order;
}

void LogManager::WriteWellKnownLsn(uint64_t lsn) {
  Encoder enc;
  enc.PutU64(lsn);
  storage_->WriteFile(well_known_name_, enc.buffer());
  clock_->AdvanceMs(disk_->WriteLatencyMs(clock_->NowMs(), enc.size()));
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("phoenix.log.wkf_writes",
                     obs::LabelSet{{"process", component_}})
        .Increment();
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("log", "wkf_write", component_, {obs::Arg("lsn", lsn)});
  }
}

void LogManager::BindObs(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
                         std::string component) {
  metrics_ = metrics;
  tracer_ = tracer;
  component_ = component;
  pipeline_.BindObs(metrics, tracer, component);
  writer_.BindObs(metrics, tracer, component);
  if (sharded()) {
    // Per-shard series (phoenix.wal.shard.*) exist only in sharded mode so
    // single-log metric output is untouched.
    writer_.SetShardObs(0);
    pipeline_.set_shard_id(0);
    pipeline_.SetShardObs(true);
    for (uint32_t s = 1; s < shard_count_; ++s) {
      ExtraShard& shard = *extra_shards_[s - 1];
      shard.writer.BindObs(metrics, tracer, component);
      shard.writer.SetShardObs(s);
      shard.pipeline.BindObs(metrics, tracer, component);
      shard.pipeline.set_shard_id(s);
      shard.pipeline.SetShardObs(true);
    }
  }
}

void LogManager::SetTraceScope(obs::TraceScope* scope) {
  writer_.SetTraceScope(scope);
  pipeline_.SetTraceScope(scope);
  for (auto& shard : extra_shards_) {
    shard->writer.SetTraceScope(scope);
    shard->pipeline.SetTraceScope(scope);
  }
}

uint64_t LogManager::num_appends() const {
  uint64_t total = writer_.num_appends();
  for (const auto& shard : extra_shards_) total += shard->writer.num_appends();
  return total;
}

uint64_t LogManager::num_forces() const {
  uint64_t total = writer_.num_forces();
  for (const auto& shard : extra_shards_) total += shard->writer.num_forces();
  return total;
}

uint64_t LogManager::bytes_forced() const {
  uint64_t total = writer_.bytes_forced();
  for (const auto& shard : extra_shards_) total += shard->writer.bytes_forced();
  return total;
}

Result<uint64_t> LogManager::ReadWellKnownLsn() const {
  PHX_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                       storage_->ReadFile(well_known_name_));
  Decoder dec(data);
  return dec.GetU64();
}

}  // namespace phoenix
