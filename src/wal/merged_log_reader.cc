#include "wal/merged_log_reader.h"

#include <algorithm>

#include "wal/shard_router.h"

namespace phoenix {

MergedLogScan ScanShardedLog(const LogManager& log) {
  MergedLogScan scan;
  std::vector<std::vector<OrderedRecord>> per_shard(log.shard_count());
  for (uint32_t s = 0; s < log.shard_count(); ++s) {
    LogReader reader(log.ShardStableView(s), log.shard_head_base(s));
    reader.EnableSalvage();
    reader.EnableGsnPrefix();
    uint64_t prev_order = 0;
    while (auto parsed = reader.Next()) {
      if (!per_shard[s].empty() && parsed->order <= prev_order) {
        ++scan.inversions;
      }
      prev_order = parsed->order;
      per_shard[s].push_back(OrderedRecord{MakeShardLsn(s, parsed->lsn),
                                           parsed->order, s,
                                           std::move(parsed->record)});
    }
    if (reader.tail_torn() || !reader.skipped_ranges().empty()) {
      ShardDamage damage;
      damage.shard = s;
      damage.tail_torn = reader.tail_torn();
      damage.torn_offset = MakeShardLsn(s, reader.torn_offset());
      for (const SkippedRange& range : reader.skipped_ranges()) {
        damage.skipped.push_back(SkippedRange{MakeShardLsn(s, range.from_lsn),
                                              MakeShardLsn(s, range.to_lsn)});
      }
      scan.damage.push_back(std::move(damage));
    }
  }

  // K-way merge by gsn. Per-shard streams are already ascending (modulo
  // the inversions counted above), so repeatedly taking the smallest head
  // is a true merge; ties (impossible for healthy logs — gsns are unique)
  // break toward the lower shard id for determinism.
  size_t total = 0;
  for (const auto& shard_records : per_shard) total += shard_records.size();
  scan.records.reserve(total);
  std::vector<size_t> next(per_shard.size(), 0);
  for (size_t emitted = 0; emitted < total; ++emitted) {
    uint32_t best = 0;
    bool have_best = false;
    for (uint32_t s = 0; s < per_shard.size(); ++s) {
      if (next[s] >= per_shard[s].size()) continue;
      if (!have_best ||
          per_shard[s][next[s]].order < per_shard[best][next[best]].order) {
        best = s;
        have_best = true;
      }
    }
    scan.records.push_back(std::move(per_shard[best][next[best]]));
    ++next[best];
  }
  return scan;
}

}  // namespace phoenix
