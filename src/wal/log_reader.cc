#include "wal/log_reader.h"

#include "common/crc32c.h"
#include "common/macros.h"

namespace phoenix {
namespace {

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

// Size of the global-sequence-number prefix inside sharded frame payloads.
constexpr size_t kGsnPrefixBytes = 8;

}  // namespace

LogReader::LogReader(const std::vector<uint8_t>& log, uint64_t start_lsn)
    : log_(log), base_(0), pos_(start_lsn) {}

LogReader::LogReader(const LogView& view, uint64_t start_lsn)
    : log_(*view.bytes), base_(view.base), pos_(start_lsn) {
  PHX_CHECK(start_lsn >= view.base);
}

bool LogReader::ValidFrameAt(uint64_t lsn, ParsedRecord* out) const {
  uint64_t end = base_ + log_.size();
  if (lsn + 8 > end) return false;
  uint64_t rel = lsn - base_;
  uint32_t len = LoadU32(&log_[rel]);
  uint32_t crc = LoadU32(&log_[rel + 4]);
  if (lsn + 8 + len > end) return false;
  const uint8_t* payload = &log_[rel + 8];
  if (Crc32c(payload, len) != crc) return false;
  uint64_t order = 0;
  if (gsn_prefix_) {
    if (len < kGsnPrefixBytes) return false;
    order = LoadU64(payload);
    payload += kGsnPrefixBytes;
    len -= kGsnPrefixBytes;
  }
  Result<LogRecord> record = DecodeLogRecord(payload, len);
  if (!record.ok()) return false;
  out->lsn = lsn;
  out->order = order;
  out->record = std::move(record).value();
  return true;
}

std::optional<ParsedRecord> LogReader::Next() {
  if (tail_torn_) return std::nullopt;
  uint64_t end = base_ + log_.size();
  for (;;) {
    if (pos_ == end) return std::nullopt;  // clean end
    ParsedRecord out;
    if (ValidFrameAt(pos_, &out)) {
      uint64_t rel = pos_ - base_;
      uint32_t len = LoadU32(&log_[rel]);
      pos_ += 8 + len;
      ++records_read_;
      return out;
    }
    if (salvage_) {
      // Resync: the first later offset where a whole frame validates is
      // where parsing resumes; everything in between is unreadable.
      bool resynced = false;
      for (uint64_t cand = pos_ + 1; cand + 8 <= end; ++cand) {
        ParsedRecord probe;
        if (ValidFrameAt(cand, &probe)) {
          skipped_ranges_.push_back(SkippedRange{pos_, cand});
          skipped_bytes_ += cand - pos_;
          pos_ = cand;
          resynced = true;
          break;
        }
      }
      if (resynced) continue;  // parse the frame at the new position
    }
    torn_offset_ = pos_;
    tail_torn_ = true;
    return std::nullopt;
  }
}

Result<LogRecord> ReadRecordAt(const LogView& view, uint64_t lsn) {
  const std::vector<uint8_t>& log = *view.bytes;
  if (lsn < view.base) {
    return Status::Corruption("lsn before truncated log head");
  }
  uint64_t rel = lsn - view.base;
  if (rel + 8 > log.size()) return Status::Corruption("lsn out of range");
  uint32_t len = LoadU32(&log[rel]);
  uint32_t crc = LoadU32(&log[rel + 4]);
  if (rel + 8 + len > log.size()) {
    return Status::Corruption("record extends past end of log");
  }
  const uint8_t* payload = &log[rel + 8];
  if (Crc32c(payload, len) != crc) {
    return Status::Corruption("record crc mismatch");
  }
  return DecodeLogRecord(payload, len);
}

Result<LogRecord> ReadRecordAt(const std::vector<uint8_t>& log, uint64_t lsn) {
  return ReadRecordAt(LogView{&log, 0}, lsn);
}

Result<LogRecord> ReadPrefixedRecordAt(const LogView& view, uint64_t lsn,
                                       uint64_t* order_out) {
  const std::vector<uint8_t>& log = *view.bytes;
  if (lsn < view.base) {
    return Status::Corruption("lsn before truncated log head");
  }
  uint64_t rel = lsn - view.base;
  if (rel + 8 > log.size()) return Status::Corruption("lsn out of range");
  uint32_t len = LoadU32(&log[rel]);
  uint32_t crc = LoadU32(&log[rel + 4]);
  if (rel + 8 + len > log.size()) {
    return Status::Corruption("record extends past end of log");
  }
  const uint8_t* payload = &log[rel + 8];
  if (Crc32c(payload, len) != crc) {
    return Status::Corruption("record crc mismatch");
  }
  if (len < kGsnPrefixBytes) {
    return Status::Corruption("sharded frame too short for gsn prefix");
  }
  if (order_out != nullptr) *order_out = LoadU64(payload);
  return DecodeLogRecord(payload + kGsnPrefixBytes, len - kGsnPrefixBytes);
}

}  // namespace phoenix
