#include "wal/log_reader.h"

#include "common/crc32c.h"
#include "common/macros.h"

namespace phoenix {
namespace {

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

LogReader::LogReader(const std::vector<uint8_t>& log, uint64_t start_lsn)
    : log_(log), base_(0), pos_(start_lsn) {}

LogReader::LogReader(const LogView& view, uint64_t start_lsn)
    : log_(*view.bytes), base_(view.base), pos_(start_lsn) {
  PHX_CHECK(start_lsn >= view.base);
}

std::optional<ParsedRecord> LogReader::Next() {
  if (tail_torn_) return std::nullopt;
  uint64_t end = base_ + log_.size();
  if (pos_ == end) return std::nullopt;  // clean end
  if (pos_ + 8 > end) {
    tail_torn_ = true;
    return std::nullopt;
  }
  uint64_t rel = pos_ - base_;
  uint32_t len = LoadU32(&log_[rel]);
  uint32_t crc = LoadU32(&log_[rel + 4]);
  if (pos_ + 8 + len > end) {
    tail_torn_ = true;
    return std::nullopt;
  }
  const uint8_t* payload = &log_[rel + 8];
  if (Crc32c(payload, len) != crc) {
    tail_torn_ = true;
    return std::nullopt;
  }
  Result<LogRecord> record = DecodeLogRecord(payload, len);
  if (!record.ok()) {
    tail_torn_ = true;
    return std::nullopt;
  }
  ParsedRecord out{pos_, std::move(record).value()};
  pos_ += 8 + len;
  ++records_read_;
  return out;
}

Result<LogRecord> ReadRecordAt(const LogView& view, uint64_t lsn) {
  const std::vector<uint8_t>& log = *view.bytes;
  if (lsn < view.base) {
    return Status::Corruption("lsn before truncated log head");
  }
  uint64_t rel = lsn - view.base;
  if (rel + 8 > log.size()) return Status::Corruption("lsn out of range");
  uint32_t len = LoadU32(&log[rel]);
  uint32_t crc = LoadU32(&log[rel + 4]);
  if (rel + 8 + len > log.size()) {
    return Status::Corruption("record extends past end of log");
  }
  const uint8_t* payload = &log[rel + 8];
  if (Crc32c(payload, len) != crc) {
    return Status::Corruption("record crc mismatch");
  }
  return DecodeLogRecord(payload, len);
}

Result<LogRecord> ReadRecordAt(const std::vector<uint8_t>& log, uint64_t lsn) {
  return ReadRecordAt(LogView{&log, 0}, lsn);
}

}  // namespace phoenix
