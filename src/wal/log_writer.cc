#include "wal/log_writer.h"

#include "common/crc32c.h"

namespace phoenix {

LogWriter::LogWriter(std::string log_name, StableStorage* storage,
                     DiskModel* disk, SimClock* clock, size_t buffer_capacity)
    : log_name_(std::move(log_name)),
      storage_(storage),
      disk_(disk),
      clock_(clock),
      buffer_capacity_(buffer_capacity),
      stable_bytes_(storage->LogSize(log_name_)) {}

uint64_t LogWriter::AppendPayload(const std::vector<uint8_t>& payload) {
  if (buffer_.size() + payload.size() + 8 > buffer_capacity_ &&
      !buffer_.empty()) {
    Force();
  }
  uint64_t lsn = next_lsn();
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32c(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
  ++num_appends_;
  return lsn;
}

size_t LogWriter::Force() {
  if (buffer_.empty()) return 0;
  size_t bytes = buffer_.size();
  storage_->AppendLog(log_name_, buffer_);
  stable_bytes_ += bytes;
  buffer_.clear();
  clock_->AdvanceMs(disk_->WriteLatencyMs(clock_->NowMs(), bytes));
  ++num_forces_;
  bytes_forced_ += bytes;
  return bytes;
}

}  // namespace phoenix
