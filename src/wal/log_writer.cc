#include "wal/log_writer.h"

#include "common/crc32c.h"
#include "common/strings.h"

namespace phoenix {

LogWriter::LogWriter(std::string log_name, StableStorage* storage,
                     DiskModel* disk, SimClock* clock, size_t buffer_capacity)
    : log_name_(std::move(log_name)),
      storage_(storage),
      disk_(disk),
      clock_(clock),
      buffer_capacity_(buffer_capacity),
      stable_bytes_(storage->LogSize(log_name_)) {}

void LogWriter::BindObs(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
                        std::string component) {
  metrics_ = metrics;
  tracer_ = tracer;
  component_ = std::move(component);
  labels_ = obs::LabelSet{{"process", component_}};
}

uint64_t LogWriter::AppendPayload(const std::vector<uint8_t>& payload) {
  if (buffer_.size() + payload.size() + 8 > buffer_capacity_ &&
      !buffer_.empty()) {
    Force(ForcePoint::kBufferFull);
  }
  uint64_t lsn = next_lsn();
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32c(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(len >> (8 * i)));
  }
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(crc >> (8 * i)));
  }
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
  ++num_appends_;
  if (metrics_ != nullptr) {
    metrics_->GetCounter("phoenix.log.appends", labels_).Increment();
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("log", "append", component_,
                     scope_ != nullptr ? scope_->Current() : obs::SpanLink{},
                     {obs::Arg("lsn", lsn),
                      obs::Arg("bytes", static_cast<uint64_t>(payload.size()))});
  }
  return lsn;
}

size_t LogWriter::Force(ForcePoint reason) {
  if (buffer_.empty()) return 0;
  size_t bytes = buffer_.size();
  obs::Tracer::Span span;
  if (tracer_ != nullptr && tracer_->enabled()) {
    span = tracer_->StartSpan("log", "force", component_,
                              scope_ != nullptr ? scope_->Current()
                                                : obs::SpanLink{},
                              {obs::Arg("bytes", static_cast<uint64_t>(bytes)),
                               obs::Arg("reason", ForcePointName(reason))});
  }
  storage_->AppendLog(log_name_, buffer_);
  force_marks_.push_back(ForceMark{stable_bytes_, stable_bytes_ + bytes,
                                   reason});
  stable_bytes_ += bytes;
  buffer_.clear();
  double latency = disk_->WriteLatencyMs(clock_->NowMs(), bytes);
  clock_->AdvanceMs(latency);
  ++num_forces_;
  bytes_forced_ += bytes;
  const DiskModel::WriteBreakdown& bd = disk_->last_breakdown();
  if (metrics_ != nullptr) {
    obs::LabelSet force_labels = labels_;
    force_labels.emplace_back("reason", ForcePointName(reason));
    metrics_->GetCounter("phoenix.log.forces", force_labels).Increment();
    metrics_->GetCounter("phoenix.log.bytes_forced", labels_)
        .Increment(static_cast<uint64_t>(bytes));
    metrics_->GetHistogram("phoenix.log.force_latency_ms", labels_)
        .Record(latency);
    // Where the force's milliseconds went (§5.2.2's rotational analysis).
    metrics_->GetGauge("phoenix.disk.seek_ms", labels_).Add(bd.seek_ms +
                                                            bd.settle_ms);
    metrics_->GetGauge("phoenix.disk.rotational_wait_ms", labels_)
        .Add(bd.rotational_wait_ms);
    metrics_->GetGauge("phoenix.disk.transfer_ms", labels_).Add(bd.transfer_ms);
    if (shard_obs_) {
      obs::LabelSet shard_labels = labels_;
      shard_labels.emplace_back("shard", StrCat(shard_id_));
      metrics_->GetCounter("phoenix.wal.shard.forces", shard_labels)
          .Increment();
    }
  }
  span.AddArg(obs::Arg("latency_ms", latency));
  span.AddArg(obs::Arg("seek_ms", bd.seek_ms + bd.settle_ms));
  span.AddArg(obs::Arg("rotational_wait_ms", bd.rotational_wait_ms));
  span.AddArg(obs::Arg("transfer_ms", bd.transfer_ms));
  return bytes;
}

}  // namespace phoenix
