#include "wal/log_dump.h"

#include <algorithm>

#include "common/strings.h"
#include "runtime/kinds.h"
#include "wal/shard_router.h"

namespace phoenix {
namespace {

// Bounded preview of an argument list.
std::string PreviewArgs(const ArgList& args) {
  std::string out = "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    std::string piece = args[i].ToString();
    if (piece.size() > 32) piece = piece.substr(0, 29) + "...";
    out += piece;
    if (out.size() > 100) {
      out += ", ...";
      break;
    }
  }
  out += ")";
  return out;
}

std::string PreviewValue(const Value& value) {
  std::string piece = value.ToString();
  if (piece.size() > 48) piece = piece.substr(0, 45) + "...";
  return piece;
}

struct DescribeVisitor {
  std::string operator()(const IncomingCallRecord& r) {
    return StrCat("IncomingCall     ctx ", r.context_id, "  from ",
                  ComponentKindName(r.client_kind), " ",
                  r.call_id.ToString(), "  ", r.method,
                  PreviewArgs(r.args));
  }
  std::string operator()(const ReplySentRecord& r) {
    return StrCat("ReplySent        ctx ", r.context_id, "  to ",
                  r.call_id.ToString(), r.long_form ? "  long " : "  short",
                  r.long_form ? PreviewValue(r.reply) : "");
  }
  std::string operator()(const OutgoingCallRecord& r) {
    return StrCat("OutgoingCall     ctx ", r.context_id, "  ",
                  r.call_id.ToString(), " -> ", r.server_uri, "  ", r.method,
                  PreviewArgs(r.args));
  }
  std::string operator()(const ReplyReceivedRecord& r) {
    return StrCat("ReplyReceived    ctx ", r.context_id, "  seq ", r.seq,
                  "  from ", ComponentKindName(r.server_kind), "  ",
                  PreviewValue(r.reply));
  }
  std::string operator()(const CreationRecord& r) {
    return StrCat("Creation         ctx ", r.context_id, "  ",
                  ComponentKindName(r.kind), " ", r.type_name, " \"", r.name,
                  "\" ", PreviewArgs(r.ctor_args));
  }
  std::string operator()(const LastCallReplyRecord& r) {
    return StrCat("LastCallReply    ctx ", r.context_id, "  for ",
                  r.call_id.ToString(), "  ", PreviewValue(r.reply));
  }
  std::string operator()(const ContextStateRecord& r) {
    size_t fields = 0;
    for (const ComponentSnapshot& snap : r.components) {
      fields += snap.fields.size();
    }
    return StrCat("ContextState     ctx ", r.context_id, "  ",
                  r.components.size(), " component(s), ", fields,
                  " field(s), out-seq ", r.last_outgoing_seq, ", ",
                  r.last_call_refs.size(), " last-call ref(s)");
  }
  std::string operator()(const BeginCheckpointRecord&) {
    return "BeginCheckpoint";
  }
  std::string operator()(const CheckpointContextEntryRecord& r) {
    return StrCat("CkptContextEntry ctx ", r.context_id, "  recovery-lsn ",
                  r.recovery_lsn == kInvalidLsn
                      ? std::string("-")
                      : StrCat(r.recovery_lsn),
                  "  out-seq ", r.last_outgoing_seq);
  }
  std::string operator()(const CheckpointLastCallRecord& r) {
    return StrCat("CkptLastCall     ctx ", r.context_id, "  ",
                  r.call_id.ToString(), "  reply-lsn ",
                  r.reply_lsn == kInvalidLsn ? std::string("-")
                                             : StrCat(r.reply_lsn));
  }
  std::string operator()(const CheckpointRemoteTypeRecord& r) {
    return StrCat("CkptRemoteType   ", r.uri, " is ",
                  ComponentKindName(r.kind), " ", r.type_name);
  }
  std::string operator()(const EndCheckpointRecord& r) {
    return StrCat("EndCheckpoint    begin-lsn ", r.begin_lsn);
  }
};

}  // namespace

const char* LogRecordTypeName(LogRecordType type) {
  switch (type) {
    case LogRecordType::kIncomingCall:
      return "IncomingCall";
    case LogRecordType::kReplySent:
      return "ReplySent";
    case LogRecordType::kOutgoingCall:
      return "OutgoingCall";
    case LogRecordType::kReplyReceived:
      return "ReplyReceived";
    case LogRecordType::kCreation:
      return "Creation";
    case LogRecordType::kLastCallReply:
      return "LastCallReply";
    case LogRecordType::kContextState:
      return "ContextState";
    case LogRecordType::kBeginCheckpoint:
      return "BeginCheckpoint";
    case LogRecordType::kCheckpointContextEntry:
      return "CkptContextEntry";
    case LogRecordType::kCheckpointLastCall:
      return "CkptLastCall";
    case LogRecordType::kCheckpointRemoteType:
      return "CkptRemoteType";
    case LogRecordType::kEndCheckpoint:
      return "EndCheckpoint";
  }
  return "?";
}

std::string DescribeRecord(const LogRecord& record) {
  return std::visit(DescribeVisitor{}, record);
}

namespace {

std::string DumpLogImpl(const LogView& view,
                        const std::vector<ForceMark>* marks,
                        const LogAnnotations* annotations) {
  std::string out;
  if (view.base > 0) {
    out += StrCat("  (head truncated below lsn ", view.base, ")\n");
  }
  LogReader reader(view, view.base);
  reader.EnableSalvage();
  size_t printed_skips = 0;
  size_t next_mark = 0;
  // Durability boundaries at or below `lsn` print before the record there.
  auto emit_marks_below = [&](uint64_t lsn) {
    if (marks == nullptr) return;
    while (next_mark < marks->size() && (*marks)[next_mark].end_lsn <= lsn) {
      const ForceMark& mark = (*marks)[next_mark++];
      if (mark.end_lsn < view.base) continue;  // pre-truncation history
      out += StrCat("  (forced up to lsn ", mark.end_lsn, ": ",
                    ForcePointName(mark.reason), ")\n");
    }
  };
  while (auto parsed = reader.Next()) {
    // Interleave any unreadable region the reader just skipped over.
    while (printed_skips < reader.skipped_ranges().size()) {
      const SkippedRange& range = reader.skipped_ranges()[printed_skips++];
      out += StrCat("  (unreadable: ", range.to_lsn - range.from_lsn,
                    " byte(s) skipped at lsn ", range.from_lsn, ")\n");
    }
    emit_marks_below(parsed->lsn);
    out += StrCat("  lsn ", parsed->lsn, "  ",
                  DescribeRecord(parsed->record));
    if (annotations != nullptr) {
      if (auto it = annotations->find(parsed->lsn); it != annotations->end()) {
        out += StrCat("  ", it->second);
      }
    }
    out += "\n";
  }
  while (printed_skips < reader.skipped_ranges().size()) {
    const SkippedRange& range = reader.skipped_ranges()[printed_skips++];
    out += StrCat("  (unreadable: ", range.to_lsn - range.from_lsn,
                  " byte(s) skipped at lsn ", range.from_lsn, ")\n");
  }
  emit_marks_below(view.base + view.bytes->size());
  if (reader.tail_torn()) {
    uint64_t log_end = view.base + view.bytes->size();
    out += StrCat("  (torn tail: first bad frame at lsn ",
                  reader.torn_offset(), ", ",
                  log_end - reader.torn_offset(), " byte(s) unreadable)\n");
  }
  return out;
}

}  // namespace

std::string DumpLog(const LogView& view) {
  return DumpLogImpl(view, nullptr, nullptr);
}

std::string DumpLog(const LogView& view,
                    const std::vector<ForceMark>& marks) {
  return DumpLogImpl(view, &marks, nullptr);
}

std::string DumpLog(const LogView& view, const std::vector<ForceMark>& marks,
                    const LogAnnotations& annotations) {
  return DumpLogImpl(view, &marks, &annotations);
}

std::string DumpShardedLogs(const std::vector<ShardDumpInput>& shards,
                            const LogAnnotations& annotations) {
  std::string out;
  struct MergeEntry {
    uint64_t order;
    uint32_t shard;
    uint64_t composite_lsn;
    std::string description;
  };
  std::vector<MergeEntry> merged;

  for (const ShardDumpInput& input : shards) {
    out += StrCat("--- shard ", input.shard, ": ", input.log_name, " ---\n");
    if (input.view.base > 0) {
      out += StrCat("  (head truncated below lsn ", input.view.base, ")\n");
    }
    LogReader reader(input.view, input.view.base);
    reader.EnableSalvage();
    reader.EnableGsnPrefix();
    size_t printed_skips = 0;
    size_t next_mark = 0;
    auto emit_marks_below = [&](uint64_t lsn) {
      if (input.marks == nullptr) return;
      while (next_mark < input.marks->size() &&
             (*input.marks)[next_mark].end_lsn <= lsn) {
        const ForceMark& mark = (*input.marks)[next_mark++];
        if (mark.end_lsn < input.view.base) continue;  // pre-truncation
        out += StrCat("  (shard ", input.shard, " forced up to lsn ",
                      mark.end_lsn, ": ", ForcePointName(mark.reason), ")\n");
      }
    };
    while (auto parsed = reader.Next()) {
      while (printed_skips < reader.skipped_ranges().size()) {
        const SkippedRange& range = reader.skipped_ranges()[printed_skips++];
        out += StrCat("  (unreadable: ", range.to_lsn - range.from_lsn,
                      " byte(s) skipped at lsn ", range.from_lsn, ")\n");
      }
      emit_marks_below(parsed->lsn);
      std::string description = DescribeRecord(parsed->record);
      uint64_t composite = MakeShardLsn(input.shard, parsed->lsn);
      out += StrCat("  lsn ", parsed->lsn, "  gsn ", parsed->order, "  ",
                    description);
      if (auto it = annotations.find(composite); it != annotations.end()) {
        out += StrCat("  ", it->second);
      }
      out += "\n";
      merged.push_back(MergeEntry{parsed->order, input.shard, composite,
                                  std::move(description)});
    }
    while (printed_skips < reader.skipped_ranges().size()) {
      const SkippedRange& range = reader.skipped_ranges()[printed_skips++];
      out += StrCat("  (unreadable: ", range.to_lsn - range.from_lsn,
                    " byte(s) skipped at lsn ", range.from_lsn, ")\n");
    }
    emit_marks_below(input.view.base + input.view.bytes->size());
    if (reader.tail_torn()) {
      uint64_t log_end = input.view.base + input.view.bytes->size();
      out += StrCat("  (torn tail: first bad frame at lsn ",
                    reader.torn_offset(), ", ",
                    log_end - reader.torn_offset(), " byte(s) unreadable)\n");
    }
  }

  std::sort(merged.begin(), merged.end(),
            [](const MergeEntry& a, const MergeEntry& b) {
              return a.order != b.order ? a.order < b.order
                                        : a.shard < b.shard;
            });
  out += "--- merge view (by gsn) ---\n";
  for (const MergeEntry& entry : merged) {
    out += StrCat("  gsn ", entry.order, "  shard ", entry.shard, "  lsn ",
                  LocalOfLsn(entry.composite_lsn), "  ", entry.description);
    if (auto it = annotations.find(entry.composite_lsn);
        it != annotations.end()) {
      out += StrCat("  ", it->second);
    }
    out += "\n";
  }
  return out;
}

}  // namespace phoenix
