#ifndef PHOENIX_WAL_COMMIT_PIPELINE_H_
#define PHOENIX_WAL_COMMIT_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/result.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/cost_model.h"
#include "sim/sim_clock.h"
#include "wal/force_point.h"
#include "wal/log_writer.h"

namespace phoenix {

// The durability half of the log: "append" puts bytes in the writer's
// buffer, the commit pipeline decides when those bytes spin the disk.
// Callers never force directly any more — they declare *what must be
// durable* (an LSN) and *why* (a ForcePoint), via WaitDurable.
//
// Two modes:
//  - Inline (default): WaitDurable behaves exactly like the old
//    LogManager::Force() — a no-op when the horizon is already durable,
//    otherwise one dispatch charge plus one sequential disk write. This
//    keeps every single-session benchmark byte-identical.
//  - Group commit (RuntimeOptions.group_commit + an installed Scheduler):
//    WaitDurable parks the calling session; when the scheduler runs out of
//    runnable sessions it flushes the pipeline with the most parked
//    waiters, satisfying the whole batch with one disk write
//    (GroupFlush). Batch sizes land in the
//    phoenix.wal.group_commit.batch_size histogram.
//
// The durable horizon is exclusive: WaitDurable(lsn) returns once every
// byte *below* `lsn` is stable, so callers pass `next_lsn()` to mean
// "everything appended so far".
class CommitPipeline {
 public:
  // A cooperative session runtime that can suspend the calling chain.
  // Implemented by runtime/session.h; the pipeline only knows the
  // interface so wal/ stays below runtime/ in the layering.
  class Scheduler {
   public:
    virtual ~Scheduler() = default;
    // Parks the current chain until pipeline->durable_lsn() >= lsn or the
    // pipeline aborts (process crash). Returns false when the caller is
    // not running on a parkable chain (main thread, recovery), in which
    // case WaitDurable falls back to an inline flush.
    virtual bool ParkUntilDurable(CommitPipeline* pipeline, uint64_t lsn) = 0;
    // Sessions currently parked on `pipeline`'s durability (the batch a
    // flush right now would satisfy, excluding the caller).
    virtual size_t ParkedWaiters(const CommitPipeline* pipeline) const {
      return 0;
    }
  };

  CommitPipeline(LogWriter* writer, SimClock* clock, const CostModel* costs)
      : writer_(writer), clock_(clock), costs_(costs) {}

  CommitPipeline(const CommitPipeline&) = delete;
  CommitPipeline& operator=(const CommitPipeline&) = delete;

  void SetGroupCommit(bool enabled) { group_commit_ = enabled; }
  bool group_commit() const { return group_commit_; }
  void SetScheduler(Scheduler* scheduler) { scheduler_ = scheduler; }
  Scheduler* scheduler() const { return scheduler_; }

  // Batching policy (RuntimeOptions.group_commit_max_*, both 0 =
  // unbounded): `max_batch` flushes as soon as that many waits have
  // accumulated instead of parking the last one; `max_wait_ms` lets the
  // scheduler flush a pipeline whose oldest parked waiter has sat that
  // long, even though runnable sessions remain.
  void SetGroupCommitPolicy(double max_wait_ms, uint32_t max_batch) {
    max_wait_ms_ = max_wait_ms;
    max_batch_ = max_batch;
  }
  double group_commit_max_wait_ms() const { return max_wait_ms_; }
  uint32_t group_commit_max_batch() const { return max_batch_; }
  double NowMs() const;

  // Failure-injection hook consulted at the top of GroupFlush (the
  // kDuringGroupFlush point): returns true when the process died, in which
  // case the flush never happens and the parked batch wakes into the new
  // abort epoch. Installed by Process; wal/ stays below runtime/.
  void SetCrashHook(std::function<bool()> hook) {
    crash_hook_ = std::move(hook);
  }

  // Blocks (cooperatively, or inline) until everything below `up_to_lsn`
  // is on stable storage. `reason` attributes the wait in metrics.
  // `allow_park` is false on chains that must not yield (recovery,
  // manual/test forces). Returns Crashed when the process died and took
  // the unforced tail with it before the wait was satisfied.
  Status WaitDurable(uint64_t up_to_lsn, ForcePoint reason,
                     bool allow_park = true);

  // One dispatch charge + one disk write covering every parked waiter of
  // this pipeline; `batch_size` is how many waits the write satisfies.
  // Called by the scheduler, never by client chains.
  void GroupFlush(size_t batch_size);

  // First LSN not yet durable (exclusive horizon).
  uint64_t durable_lsn() const { return writer_->stable_bytes(); }
  // LSN the next append will receive; durable_lsn() <= appended_lsn().
  uint64_t appended_lsn() const { return writer_->next_lsn(); }

  // Crash notification: the unforced tail is gone, so parked waiters can
  // never be satisfied — they wake, observe the epoch change, and their
  // WaitDurable returns Crashed.
  void OnCrash() { ++abort_epoch_; }
  uint64_t abort_epoch() const { return abort_epoch_; }

  void BindObs(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
               std::string component);

  // The calling chain's causal span stack (implemented by Simulation).
  // When set, every actual wait becomes a "wal"/"wait" span under the
  // chain's current frame, and the inline flush's force span nests inside
  // it — so latency attribution can split durability time into own-force
  // vs parked-in-group-commit.
  void SetTraceScope(obs::TraceScope* scope) { scope_ = scope; }

  // Which shard of its process's sharded WAL this pipeline serves (0 on
  // the single-log path). The scheduler's idle group-flush selection uses
  // it to break "most parked waiters" ties deterministically, and — when
  // SetShardObs is also called — waits and batch sizes land in the
  // per-shard phoenix.wal.shard.* series.
  void set_shard_id(uint32_t shard_id) { shard_id_ = shard_id; }
  uint32_t shard_id() const { return shard_id_; }
  void SetShardObs(bool emit) { shard_obs_ = emit; }

 private:
  // The old LogManager::Force() body, verbatim in behavior: no-op when
  // nothing is buffered, else dispatch charge + writer force.
  void FlushNow(ForcePoint reason);

  LogWriter* writer_;
  SimClock* clock_;
  const CostModel* costs_;
  bool group_commit_ = false;
  Scheduler* scheduler_ = nullptr;
  uint64_t abort_epoch_ = 0;
  double max_wait_ms_ = 0.0;
  uint32_t max_batch_ = 0;
  uint32_t shard_id_ = 0;
  bool shard_obs_ = false;
  std::function<bool()> crash_hook_;

  // Observability sinks (unowned; null until BindObs).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::TraceScope* scope_ = nullptr;
  std::string component_;
};

}  // namespace phoenix

#endif  // PHOENIX_WAL_COMMIT_PIPELINE_H_
