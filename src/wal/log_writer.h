#ifndef PHOENIX_WAL_LOG_WRITER_H_
#define PHOENIX_WAL_LOG_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sim/disk_model.h"
#include "sim/sim_clock.h"
#include "sim/stable_storage.h"
#include "wal/force_point.h"

namespace phoenix {

// One physical force: which byte range it made stable and why it was
// issued. log_dump interleaves these with the records so a dump shows
// where the durability boundaries fell.
struct ForceMark {
  uint64_t start_lsn;  // first byte made stable by this force
  uint64_t end_lsn;    // one past the last byte made stable
  ForcePoint reason;
};

// Buffered, forced, append-only log writer (one per process). Records
// accumulate in an in-memory buffer and reach stable storage only at a
// force (or when the buffer fills) — exactly the paper's §5 setup. A crash
// drops the buffer: unforced records are gone, which is what the logging
// disciplines of Section 3 are designed around.
//
// Frame format: [u32 payload_len][u32 crc32c(payload)][payload]. The LSN of
// a record is the byte offset of its frame in the log.
class LogWriter {
 public:
  LogWriter(std::string log_name, StableStorage* storage, DiskModel* disk,
            SimClock* clock, size_t buffer_capacity = 64 * 1024);

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  // Frames `payload` into the buffer; returns its LSN. Forces first if the
  // buffer would overflow.
  uint64_t AppendPayload(const std::vector<uint8_t>& payload);

  // Writes all buffered frames to stable storage as one sequential disk
  // write, advancing the simulated clock by the disk latency. No-op (and
  // not counted) when nothing is buffered. Returns bytes made stable.
  // `reason` attributes the force in metrics and force_marks().
  size_t Force(ForcePoint reason = ForcePoint::kManual);

  // LSN the next append will receive.
  uint64_t next_lsn() const { return stable_bytes_ + buffer_.size(); }

  // True if `lsn` is already on stable storage.
  bool IsStable(uint64_t lsn) const { return lsn < stable_bytes_; }

  bool has_buffered() const { return !buffer_.empty(); }
  uint64_t stable_bytes() const { return stable_bytes_; }
  // The unforced tail (survives context failures, dies with the process).
  const std::vector<uint8_t>& buffer() const { return buffer_; }

  // Crash: unforced records are lost.
  void DropBuffer() { buffer_.clear(); }

  // Mid-recovery salvage: the stable log was physically truncated under
  // this writer (torn tail amputation); realign its notion of the stable
  // end so new appends land right after the last valid frame. Only valid
  // with an empty buffer.
  void ResetStableEnd(uint64_t end_lsn) { stable_bytes_ = end_lsn; }

  const std::string& log_name() const { return log_name_; }

  // Connects this writer to the simulation-wide observability sinks.
  // `component` labels every metric/event (e.g. "ma/1"). Stats below keep
  // working unbound; the registry-backed series additionally survive the
  // process restarts that recreate this writer.
  void BindObs(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
               std::string component);

  // The calling chain's causal span stack (implemented by Simulation).
  // When set, appends and force spans attach under the chain that caused
  // them, so phoenix_prof can charge disk time to the right call tree.
  void SetTraceScope(obs::TraceScope* scope) { scope_ = scope; }

  // Sharded-WAL observability: when enabled, every force additionally
  // increments phoenix.wal.shard.forces{process, shard}. Never enabled on
  // the single-log path, so shards=1 metric output stays byte-identical.
  void SetShardObs(uint32_t shard_id) {
    shard_obs_ = true;
    shard_id_ = shard_id;
  }

  // --- statistics (benchmarks read deltas of these) ---
  uint64_t num_appends() const { return num_appends_; }
  uint64_t num_forces() const { return num_forces_; }
  uint64_t bytes_forced() const { return bytes_forced_; }

  // Every force this writer issued, in order, with its attribution.
  const std::vector<ForceMark>& force_marks() const { return force_marks_; }

 private:
  std::string log_name_;
  StableStorage* storage_;
  DiskModel* disk_;
  SimClock* clock_;
  size_t buffer_capacity_;
  std::vector<uint8_t> buffer_;
  uint64_t stable_bytes_;

  uint64_t num_appends_ = 0;
  uint64_t num_forces_ = 0;
  uint64_t bytes_forced_ = 0;
  std::vector<ForceMark> force_marks_;
  bool shard_obs_ = false;
  uint32_t shard_id_ = 0;

  // Observability sinks (unowned; null until BindObs).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::TraceScope* scope_ = nullptr;
  std::string component_;
  obs::LabelSet labels_;
};

}  // namespace phoenix

#endif  // PHOENIX_WAL_LOG_WRITER_H_
