#include "wal/commit_pipeline.h"

#include "common/strings.h"

namespace phoenix {
namespace {

// Batch sizes are small integers; log-spaced decade buckets would smear
// every interesting batch into one bucket.
const std::vector<double>& BatchBounds() {
  static const std::vector<double> bounds = {1,  2,  3,  4,  6,  8,
                                             12, 16, 24, 32, 48, 64};
  return bounds;
}

}  // namespace

void CommitPipeline::BindObs(obs::MetricsRegistry* metrics,
                             obs::Tracer* tracer, std::string component) {
  metrics_ = metrics;
  tracer_ = tracer;
  component_ = std::move(component);
}

Status CommitPipeline::WaitDurable(uint64_t up_to_lsn, ForcePoint reason,
                                   bool allow_park) {
  if (durable_lsn() >= up_to_lsn) return Status::OK();
  obs::LabelSet wait_labels{{"process", component_},
                            {"reason", ForcePointName(reason)}};
  if (metrics_ != nullptr) {
    metrics_->GetCounter("phoenix.wal.waits", wait_labels).Increment();
    if (shard_obs_) {
      metrics_
          ->GetCounter("phoenix.wal.shard.waits",
                       obs::LabelSet{{"process", component_},
                                     {"shard", StrCat(shard_id_)}})
          .Increment();
    }
  }

  // Attribution: everything from here until the horizon is durable is
  // durability-wait time on this chain — either its own inline force or
  // time parked while group commit coalesces it into a shared flush.
  double t0 = clock_->NowMs();
  bool traced = tracer_ != nullptr && tracer_->enabled();
  obs::Tracer::Span wait_span;
  if (traced) {
    wait_span = tracer_->StartSpan(
        "wal", "wait", component_,
        scope_ != nullptr ? scope_->Current() : obs::SpanLink{},
        {obs::Arg("reason", ForcePointName(reason)),
         obs::Arg("up_to_lsn", up_to_lsn)});
    if (scope_ != nullptr) scope_->Push(wait_span.link());
  }
  // Every return below must pop the frame pushed above (before the span's
  // end event fires is fine — popping records nothing).
  struct FramePop {
    obs::TraceScope* scope = nullptr;
    ~FramePop() {
      if (scope != nullptr) scope->Pop();
    }
  } frame_pop{traced && scope_ != nullptr ? scope_ : nullptr};

  if (group_commit_ && scheduler_ != nullptr && allow_park) {
    // Max-batch policy: when this wait completes a full batch, flush now
    // instead of parking — the parked waiters wake at the advanced horizon
    // and the batch never waits for the remaining sessions to stall.
    if (max_batch_ > 0 &&
        scheduler_->ParkedWaiters(this) + 1 >= max_batch_) {
      GroupFlush(scheduler_->ParkedWaiters(this) + 1);
      if (durable_lsn() >= up_to_lsn) {
        double flush_ms = clock_->NowMs() - t0;
        if (metrics_ != nullptr) {
          metrics_->GetGauge("phoenix.wal.own_force_wait_ms", wait_labels)
              .Add(flush_ms);
        }
        if (traced) {
          wait_span.AddArg(obs::Arg("outcome", "batch_full"));
          wait_span.AddArg(obs::Arg("own_force_ms", flush_ms));
        }
        return Status::OK();
      }
      if (traced) wait_span.AddArg(obs::Arg("outcome", "crashed"));
      return Status::Crashed("process crashed during group flush");
    }
    if (scheduler_->ParkUntilDurable(this, up_to_lsn)) {
      double park_ms = clock_->NowMs() - t0;
      if (metrics_ != nullptr) {
        metrics_->GetHistogram("phoenix.wal.park_ms", wait_labels)
            .Record(park_ms);
      }
      if (traced) wait_span.AddArg(obs::Arg("park_ms", park_ms));
      if (durable_lsn() >= up_to_lsn) {
        if (traced) wait_span.AddArg(obs::Arg("outcome", "parked"));
        return Status::OK();
      }
      // Woken by OnCrash: the tail we were waiting on no longer exists.
      if (traced) wait_span.AddArg(obs::Arg("outcome", "crashed"));
      return Status::Crashed("process crashed before durability wait");
    }
    // Not on a parkable chain — flush inline like the non-group path.
  }
  FlushNow(reason);
  double own_force_ms = clock_->NowMs() - t0;
  if (metrics_ != nullptr) {
    metrics_->GetGauge("phoenix.wal.own_force_wait_ms", wait_labels)
        .Add(own_force_ms);
  }
  if (traced) {
    wait_span.AddArg(obs::Arg("outcome", "inline"));
    wait_span.AddArg(obs::Arg("own_force_ms", own_force_ms));
  }
  PHX_CHECK(durable_lsn() >= up_to_lsn);
  return Status::OK();
}

void CommitPipeline::FlushNow(ForcePoint reason) {
  if (!writer_->has_buffered()) return;
  clock_->AdvanceMs(costs_->force_dispatch_ms);
  writer_->Force(reason);
}

double CommitPipeline::NowMs() const { return clock_->NowMs(); }

void CommitPipeline::GroupFlush(size_t batch_size) {
  if (crash_hook_ && crash_hook_()) {
    // Crash mid-flush (kDuringGroupFlush): the whole parked batch loses
    // its unforced tail at once; waiters wake into the new abort epoch.
    return;
  }
  uint64_t flushed_up_to = appended_lsn();
  double t0 = clock_->NowMs();
  FlushNow(ForcePoint::kGroupCommit);
  double flush_ms = clock_->NowMs() - t0;
  if (metrics_ != nullptr) {
    obs::LabelSet labels{{"process", component_}};
    metrics_
        ->GetHistogram("phoenix.wal.group_commit.batch_size", labels,
                       BatchBounds())
        .Record(static_cast<double>(batch_size));
    metrics_->GetCounter("phoenix.wal.group_commit.flushes", labels)
        .Increment();
    if (batch_size > 1) {
      // Forces that would have been issued separately without batching.
      metrics_->GetCounter("phoenix.wal.group_commit.coalesced", labels)
          .Increment(static_cast<uint64_t>(batch_size - 1));
    }
    if (shard_obs_) {
      metrics_
          ->GetHistogram("phoenix.wal.shard.batch_size",
                         obs::LabelSet{{"process", component_},
                                       {"shard", StrCat(shard_id_)}},
                         BatchBounds())
          .Record(static_cast<double>(batch_size));
    }
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("log", "group_flush", component_,
                     {obs::Arg("batch", static_cast<uint64_t>(batch_size)),
                      obs::Arg("durable_lsn", flushed_up_to),
                      obs::Arg("flush_ms", flush_ms)});
  }
}

}  // namespace phoenix
