#include "wal/commit_pipeline.h"

namespace phoenix {
namespace {

// Batch sizes are small integers; log-spaced decade buckets would smear
// every interesting batch into one bucket.
const std::vector<double>& BatchBounds() {
  static const std::vector<double> bounds = {1,  2,  3,  4,  6,  8,
                                             12, 16, 24, 32, 48, 64};
  return bounds;
}

}  // namespace

void CommitPipeline::BindObs(obs::MetricsRegistry* metrics,
                             obs::Tracer* tracer, std::string component) {
  metrics_ = metrics;
  tracer_ = tracer;
  component_ = std::move(component);
}

Status CommitPipeline::WaitDurable(uint64_t up_to_lsn, ForcePoint reason,
                                   bool allow_park) {
  if (durable_lsn() >= up_to_lsn) return Status::OK();
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("phoenix.wal.waits",
                     obs::LabelSet{{"process", component_},
                                   {"reason", ForcePointName(reason)}})
        .Increment();
  }
  if (group_commit_ && scheduler_ != nullptr && allow_park) {
    if (scheduler_->ParkUntilDurable(this, up_to_lsn)) {
      if (durable_lsn() >= up_to_lsn) return Status::OK();
      // Woken by OnCrash: the tail we were waiting on no longer exists.
      return Status::Crashed("process crashed before durability wait");
    }
    // Not on a parkable chain — flush inline like the non-group path.
  }
  FlushNow(reason);
  PHX_CHECK(durable_lsn() >= up_to_lsn);
  return Status::OK();
}

void CommitPipeline::FlushNow(ForcePoint reason) {
  if (!writer_->has_buffered()) return;
  clock_->AdvanceMs(costs_->force_dispatch_ms);
  writer_->Force(reason);
}

void CommitPipeline::GroupFlush(size_t batch_size) {
  uint64_t flushed_up_to = appended_lsn();
  FlushNow(ForcePoint::kGroupCommit);
  if (metrics_ != nullptr) {
    obs::LabelSet labels{{"process", component_}};
    metrics_
        ->GetHistogram("phoenix.wal.group_commit.batch_size", labels,
                       BatchBounds())
        .Record(static_cast<double>(batch_size));
    metrics_->GetCounter("phoenix.wal.group_commit.flushes", labels)
        .Increment();
    if (batch_size > 1) {
      // Forces that would have been issued separately without batching.
      metrics_->GetCounter("phoenix.wal.group_commit.coalesced", labels)
          .Increment(static_cast<uint64_t>(batch_size - 1));
    }
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->Instant("log", "group_flush", component_,
                     {obs::Arg("batch", static_cast<uint64_t>(batch_size)),
                      obs::Arg("durable_lsn", flushed_up_to)});
  }
}

}  // namespace phoenix
