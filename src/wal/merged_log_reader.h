#ifndef PHOENIX_WAL_MERGED_LOG_READER_H_
#define PHOENIX_WAL_MERGED_LOG_READER_H_

#include <cstdint>
#include <vector>

#include "wal/log_manager.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"

namespace phoenix {

// A record from one shard of a sharded WAL, positioned both physically
// (composite lsn) and in append order (gsn).
struct OrderedRecord {
  uint64_t lsn = 0;    // composite: shard id << 48 | shard-local offset
  uint64_t order = 0;  // global sequence number
  uint32_t shard = 0;
  LogRecord record;
};

// Salvage report for one shard of a merged scan. Offsets are composite, so
// a skipped range on shard j can never intersect a record extent on shard
// k != j — the invariant the replay planner's per-chain demotion rule
// relies on.
struct ShardDamage {
  uint32_t shard = 0;
  bool tail_torn = false;
  uint64_t torn_offset = 0;  // composite lsn of the first unreadable byte
  std::vector<SkippedRange> skipped;  // composite coordinates
};

// Result of scanning every shard's stable log and k-way merging the
// records by global sequence number. `inversions` counts adjacent pairs
// within one shard whose gsns were NOT ascending (a healthy log always
// yields 0; a nonzero count means frames were re-stamped or the storage
// reordered writes) — exported as phoenix.recovery.merge.inversions.
struct MergedLogScan {
  std::vector<OrderedRecord> records;  // ascending by order
  std::vector<ShardDamage> damage;     // only shards with salvage issues
  uint64_t inversions = 0;

  bool any_salvage() const { return !damage.empty(); }
};

// Scans all shards of `log` (stable images only — this is the
// process-crash recovery view) from each shard's head base, tolerating
// torn tails and mid-log corruption per shard, and merges by gsn.
MergedLogScan ScanShardedLog(const LogManager& log);

}  // namespace phoenix

#endif  // PHOENIX_WAL_MERGED_LOG_READER_H_
