#ifndef PHOENIX_WAL_SHARD_ROUTER_H_
#define PHOENIX_WAL_SHARD_ROUTER_H_

#include <cstdint>
#include <type_traits>
#include <variant>

#include "wal/log_record.h"

namespace phoenix {

// --- composite LSNs -------------------------------------------------------
//
// With one log per process (wal_shards = 1) an LSN is a plain byte offset.
// With N shard logs, an LSN is a composite: the shard id in the top 16 bits,
// the shard-local byte offset in the low 48. Shard 0's composites equal its
// local offsets, so the single-log encoding is the special case, not a
// different scheme. Two useful consequences:
//
//  - LSN comparisons between records of the SAME context stay meaningful
//    (a context's records all land on one shard, see ShardRouter below);
//  - an interval on shard j can never intersect an interval on shard k
//    (the shard bits dominate), which is what keeps the salvage planner's
//    gap/extent intersection test correct across shards.
//
// Cross-shard ORDER is never derived from LSNs: that is what the global
// sequence number (gsn) stamped into every sharded frame is for.

inline constexpr int kShardLsnShift = 48;
inline constexpr uint64_t kShardLocalMask =
    (uint64_t{1} << kShardLsnShift) - 1;

inline uint64_t MakeShardLsn(uint32_t shard, uint64_t local_offset) {
  return (static_cast<uint64_t>(shard) << kShardLsnShift) | local_offset;
}

// Callers must guard kInvalidLsn (its shard bits are 0xffff).
inline uint32_t ShardOfLsn(uint64_t lsn) {
  return static_cast<uint32_t>(lsn >> kShardLsnShift);
}

inline uint64_t LocalOfLsn(uint64_t lsn) { return lsn & kShardLocalMask; }

// --- context -> shard routing ---------------------------------------------
//
// Deterministic seeded router from the replay-plan chain key (the context
// id) to a shard. The replay planner's chains are per-context, so "a
// chain's records always land on one shard" reduces to "a context's records
// always land on one shard" — which this guarantees by hashing only the
// context id.
//
// Checkpoint-table records (BeginCheckpoint .. EndCheckpoint, types 8-12)
// all route to shard 0, the meta shard. The checkpoint publish rule
// ("IsStable(end_lsn) implies the whole bracket is stable") depends on the
// bracket living on ONE shard in append order; pinning it to shard 0 also
// gives the well-known file a single shard to validate against.
class ShardRouter {
 public:
  ShardRouter(uint32_t shards, uint64_t seed)
      : shards_(shards == 0 ? 1 : shards), seed_(seed) {}

  uint32_t shards() const { return shards_; }

  // Seeded FNV-1a of the context id, mod the shard count.
  uint32_t ShardForContext(uint64_t context_id) const {
    if (shards_ <= 1) return 0;
    uint64_t h = 1469598103934665603ull ^ seed_;
    for (int i = 0; i < 8; ++i) {
      h ^= (context_id >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
    return static_cast<uint32_t>(h % shards_);
  }

  uint32_t ShardForRecord(const LogRecord& record) const {
    if (shards_ <= 1) return 0;
    return std::visit(
        [&](const auto& rec) -> uint32_t {
          using T = std::decay_t<decltype(rec)>;
          // Checkpoint-table records go to the meta shard even though some
          // of them carry a context id.
          if constexpr (std::is_same_v<T, BeginCheckpointRecord> ||
                        std::is_same_v<T, CheckpointContextEntryRecord> ||
                        std::is_same_v<T, CheckpointLastCallRecord> ||
                        std::is_same_v<T, CheckpointRemoteTypeRecord> ||
                        std::is_same_v<T, EndCheckpointRecord>) {
            return 0;
          } else {
            return ShardForContext(rec.context_id);
          }
        },
        record);
  }

 private:
  uint32_t shards_;
  uint64_t seed_;
};

}  // namespace phoenix

#endif  // PHOENIX_WAL_SHARD_ROUTER_H_
