#ifndef PHOENIX_WAL_FORCE_POINT_H_
#define PHOENIX_WAL_FORCE_POINT_H_

namespace phoenix {

// Why the log had to become durable. The paper's Algorithms 1-5 are, at
// bottom, a table of *which sends must wait for which LSNs*; tagging every
// durability wait (and every resulting disk force) with its reason makes
// that table visible in metrics and log dumps, and lets a buffer-full
// force inside the writer be told apart from a policy force.
enum class ForcePoint {
  // Interceptor wait sites (Algorithms 1-5).
  kIncomingLogged,  // message 1 logged before dispatch (force-all / external)
  kReplySend,       // reply record durable before the reply externalizes
  kOutgoingSend,    // outgoing-call record durable before the send
  kReplyReceived,   // reply-received record durable (force-all discipline)
  // Non-interceptor durability points.
  kCheckpoint,       // checkpoint publish / well-known-file consistency
  kAsyncCheckpoint,  // background checkpoint session forcing its bracket
  kRecovery,         // recovery-time log repair
  kBufferFull,   // writer buffer overflow; not a policy decision
  kGroupCommit,  // batched flush issued by the commit pipeline scheduler
  kManual,       // tests, tools, direct Force() calls
};

inline const char* ForcePointName(ForcePoint point) {
  switch (point) {
    case ForcePoint::kIncomingLogged:
      return "incoming_logged";
    case ForcePoint::kReplySend:
      return "reply_send";
    case ForcePoint::kOutgoingSend:
      return "outgoing_send";
    case ForcePoint::kReplyReceived:
      return "reply_received";
    case ForcePoint::kCheckpoint:
      return "checkpoint";
    case ForcePoint::kAsyncCheckpoint:
      return "async_checkpoint";
    case ForcePoint::kRecovery:
      return "recovery";
    case ForcePoint::kBufferFull:
      return "buffer_full";
    case ForcePoint::kGroupCommit:
      return "group_commit";
    case ForcePoint::kManual:
      return "manual";
  }
  return "?";
}

}  // namespace phoenix

#endif  // PHOENIX_WAL_FORCE_POINT_H_
