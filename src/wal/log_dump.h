#ifndef PHOENIX_WAL_LOG_DUMP_H_
#define PHOENIX_WAL_LOG_DUMP_H_

#include <string>

#include "wal/log_reader.h"
#include "wal/log_record.h"

namespace phoenix {

// Canonical name of a record type ("IncomingCall", "ContextState", ...).
const char* LogRecordTypeName(LogRecordType type);

// One-line human-readable rendering of a record: type, context, call id,
// method and a bounded preview of the payload.
std::string DescribeRecord(const LogRecord& record);

// Multi-line dump of a whole log view: one "lsn <n> <description>" line per
// record, plus a torn-tail note when the scan stops early. For debugging
// and the trace tool.
std::string DumpLog(const LogView& view);

}  // namespace phoenix

#endif  // PHOENIX_WAL_LOG_DUMP_H_
