#ifndef PHOENIX_WAL_LOG_DUMP_H_
#define PHOENIX_WAL_LOG_DUMP_H_

#include <map>
#include <string>
#include <vector>

#include "wal/log_reader.h"
#include "wal/log_record.h"
#include "wal/log_writer.h"

namespace phoenix {

// Canonical name of a record type ("IncomingCall", "ContextState", ...).
const char* LogRecordTypeName(LogRecordType type);

// One-line human-readable rendering of a record: type, context, call id,
// method and a bounded preview of the payload.
std::string DescribeRecord(const LogRecord& record);

// Multi-line dump of a whole log view: one "lsn <n> <description>" line per
// record, plus a torn-tail note when the scan stops early. For debugging
// and the trace tool.
std::string DumpLog(const LogView& view);

// Same, interleaving the writer's force marks: after the last record each
// force covered, a "(forced up to lsn <n>: <reason>)" line shows where the
// durability boundary fell and which ForcePoint paid for it. Marks from a
// previous process incarnation (below the view's range) are elided.
std::string DumpLog(const LogView& view, const std::vector<ForceMark>& marks);

// Per-LSN notes appended after the matching record's line. Built by higher
// layers (e.g. the replay planner's chain/edge view in phoenix_trace's
// --plan mode); wal/ only renders them so it stays below recovery/.
using LogAnnotations = std::map<uint64_t, std::string>;
std::string DumpLog(const LogView& view, const std::vector<ForceMark>& marks,
                    const LogAnnotations& annotations);

// --- sharded WAL layouts ---

// One shard's inputs for a multi-shard dump. `view` and `marks` use
// shard-local offsets; record frames carry the gsn payload prefix.
struct ShardDumpInput {
  uint32_t shard = 0;
  std::string log_name;
  LogView view;
  const std::vector<ForceMark>* marks = nullptr;
};

// Multi-shard dump: a per-shard record listing (shard-local lsn plus gsn
// per line, ForceMark attribution lines carrying the shard id), followed
// by a global-sequence merge view ordering all shards' records by gsn.
// `annotations` is keyed by composite LSN (wal/shard_router.h) and is
// rendered in both the per-shard listing and the merge view.
std::string DumpShardedLogs(const std::vector<ShardDumpInput>& shards,
                            const LogAnnotations& annotations = {});

}  // namespace phoenix

#endif  // PHOENIX_WAL_LOG_DUMP_H_
