#ifndef PHOENIX_WAL_LOG_READER_H_
#define PHOENIX_WAL_LOG_READER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "wal/log_record.h"

namespace phoenix {

// A decoded record plus its position on the log.
struct ParsedRecord {
  uint64_t lsn = 0;
  LogRecord record;
};

// A log image with its logical base: byte i of *bytes is LSN base + i.
// Head truncation (garbage collection) raises the base; LSNs stay stable.
struct LogView {
  const std::vector<uint8_t>* bytes = nullptr;
  uint64_t base = 0;
};

// Sequential scanner over a stable log image. Stops cleanly at end-of-log;
// stops and sets tail_torn() at a truncated frame or CRC mismatch — a torn
// tail write from the crash, which recovery treats as the end of the log.
class LogReader {
 public:
  // `log` must outlive the reader. `start_lsn` is where scanning begins
  // (0 for the whole log). The vector overload assumes base 0 (untruncated
  // logs, unit tests); recovery uses the LogView overload.
  LogReader(const std::vector<uint8_t>& log, uint64_t start_lsn);
  LogReader(const LogView& view, uint64_t start_lsn);

  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  // Next record, or nullopt at (clean or torn) end.
  std::optional<ParsedRecord> Next();

  bool tail_torn() const { return tail_torn_; }

  // LSN one past the last successfully parsed record.
  uint64_t end_lsn() const { return pos_; }

  // Number of records returned so far.
  uint64_t records_read() const { return records_read_; }

 private:
  const std::vector<uint8_t>& log_;
  uint64_t base_;
  uint64_t pos_;  // logical LSN
  bool tail_torn_ = false;
  uint64_t records_read_ = 0;
};

// Reads the single record whose frame starts at `lsn`.
Result<LogRecord> ReadRecordAt(const std::vector<uint8_t>& log, uint64_t lsn);
Result<LogRecord> ReadRecordAt(const LogView& view, uint64_t lsn);

}  // namespace phoenix

#endif  // PHOENIX_WAL_LOG_READER_H_
