#ifndef PHOENIX_WAL_LOG_READER_H_
#define PHOENIX_WAL_LOG_READER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "wal/log_record.h"

namespace phoenix {

// A decoded record plus its position on the log. `order` is the global
// sequence number stamped into sharded frames (wal/shard_router.h); it is
// only populated when the reader runs with EnableGsnPrefix(), and stays 0
// on the single-log format.
struct ParsedRecord {
  uint64_t lsn = 0;
  uint64_t order = 0;
  LogRecord record;
};

// A log image with its logical base: byte i of *bytes is LSN base + i.
// Head truncation (garbage collection) raises the base; LSNs stay stable.
struct LogView {
  const std::vector<uint8_t>* bytes = nullptr;
  uint64_t base = 0;
};

// A half-open LSN range [from_lsn, to_lsn) the salvaging reader could not
// parse and skipped over.
struct SkippedRange {
  uint64_t from_lsn = 0;
  uint64_t to_lsn = 0;
};

// Sequential scanner over a stable log image. Stops cleanly at end-of-log;
// stops and sets tail_torn() at a truncated frame or CRC mismatch — a torn
// tail write from the crash, which recovery treats as the end of the log.
//
// In salvage mode (EnableSalvage) a bad frame mid-log does not end the scan:
// the reader searches forward for the next offset where a frame's length,
// CRC and decode all validate, records the unreadable bytes as a
// SkippedRange, and continues from there. Only when no later frame validates
// is the tail considered torn. Frames are CRC-protected, so a false resync
// requires a 32-bit CRC collision on decodable bytes.
class LogReader {
 public:
  // `log` must outlive the reader. `start_lsn` is where scanning begins
  // (0 for the whole log). The vector overload assumes base 0 (untruncated
  // logs, unit tests); recovery uses the LogView overload.
  LogReader(const std::vector<uint8_t>& log, uint64_t start_lsn);
  LogReader(const LogView& view, uint64_t start_lsn);

  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  // Skip unreadable mid-log regions instead of declaring a torn tail.
  void EnableSalvage() { salvage_ = true; }

  // Sharded-log frame format: every payload starts with an 8-byte global
  // sequence number (little endian) ahead of the encoded record. The
  // prefix is inside the CRC, so frame validation is unchanged; decoding
  // skips it and reports it as ParsedRecord::order.
  void EnableGsnPrefix() { gsn_prefix_ = true; }

  // Next record, or nullopt at (clean or torn) end.
  std::optional<ParsedRecord> Next();

  bool tail_torn() const { return tail_torn_; }

  // LSN of the first unreadable byte of the torn tail (valid iff
  // tail_torn()).
  uint64_t torn_offset() const { return torn_offset_; }

  // LSN one past the last successfully parsed record.
  uint64_t end_lsn() const { return pos_; }

  // Number of records returned so far.
  uint64_t records_read() const { return records_read_; }

  // Salvage-mode damage report.
  const std::vector<SkippedRange>& skipped_ranges() const {
    return skipped_ranges_;
  }
  uint64_t skipped_bytes() const { return skipped_bytes_; }

 private:
  // Validates the frame at `lsn` (length, CRC, decode) and parses it into
  // `out` on success.
  bool ValidFrameAt(uint64_t lsn, ParsedRecord* out) const;

  const std::vector<uint8_t>& log_;
  uint64_t base_;
  uint64_t pos_;  // logical LSN
  bool salvage_ = false;
  bool gsn_prefix_ = false;
  bool tail_torn_ = false;
  uint64_t torn_offset_ = 0;
  uint64_t records_read_ = 0;
  std::vector<SkippedRange> skipped_ranges_;
  uint64_t skipped_bytes_ = 0;
};

// Reads the single record whose frame starts at `lsn`.
Result<LogRecord> ReadRecordAt(const std::vector<uint8_t>& log, uint64_t lsn);
Result<LogRecord> ReadRecordAt(const LogView& view, uint64_t lsn);

// Same, for a sharded (gsn-prefixed) frame; `lsn` is the shard-local
// offset into `view`. On success *order_out (if non-null) receives the
// frame's global sequence number.
Result<LogRecord> ReadPrefixedRecordAt(const LogView& view, uint64_t lsn,
                                       uint64_t* order_out = nullptr);

}  // namespace phoenix

#endif  // PHOENIX_WAL_LOG_READER_H_
