#ifndef PHOENIX_WAL_LOG_MANAGER_H_
#define PHOENIX_WAL_LOG_MANAGER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/cost_model.h"
#include "sim/disk_model.h"
#include "sim/sim_clock.h"
#include "sim/stable_storage.h"
#include "wal/commit_pipeline.h"
#include "wal/force_point.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"
#include "wal/log_writer.h"
#include "wal/shard_router.h"

namespace phoenix {

// The per-process log manager (Figure 7): owns the process's recovery log
// and its well-known file, and is the single point through which message
// interceptors, the checkpoint manager, and recovery touch the log.
//
// Sharded mode (shard_count > 1): the manager multiplexes N shard logs,
// each with its own LogWriter and CommitPipeline (durable horizon). A
// deterministic seeded router sends every context's records to one shard
// (wal/shard_router.h), LSNs become composite (shard id in the top 16
// bits), and every frame payload carries a global sequence number so
// recovery can k-way merge the shards back into append order. Shard 0
// keeps the plain log name (and the well-known file); shard k > 0 lives
// in "<log_name>.s<k>". With shard_count == 1 every code path below is
// the pre-sharding single-log path, byte for byte.
class LogManager {
 public:
  // `log_name` is the durable name, e.g. "machineA/proc1.log"; the
  // well-known file is derived from it. The pointed-to simulation pieces
  // must outlive the manager.
  LogManager(std::string log_name, StableStorage* storage, DiskModel* disk,
             SimClock* clock, const CostModel* costs, uint32_t shard_count = 1,
             uint64_t shard_seed = 0);

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  // --- sharding surface ---
  uint32_t shard_count() const { return shard_count_; }
  bool sharded() const { return shard_count_ > 1; }
  const ShardRouter& router() const { return router_; }
  std::string shard_log_name(uint32_t shard) const;
  // Next global sequence number a sharded append will stamp.
  uint64_t next_gsn() const { return next_gsn_; }

  // Appends `record` to the owning shard's log buffer (charging the
  // buffer-copy CPU cost) and returns its LSN — composite in sharded mode.
  // Does NOT force.
  uint64_t Append(const LogRecord& record);

  // Called after every append with the owning shard id; Process uses it to
  // track which shards each chain has touched (so cross-shard sends force
  // only those). Only installed in sharded mode.
  void SetAppendObserver(std::function<void(uint32_t)> observer) {
    append_observer_ = std::move(observer);
  }

  // Durability wait: returns once everything below `up_to_lsn` is stable,
  // flushing inline or parking on the commit pipeline's group-commit path.
  // Callers pass next_lsn() to mean "everything appended so far" (single
  // log); sharded callers go through WaitDurableShard per touched shard.
  Status WaitDurable(uint64_t up_to_lsn, ForcePoint reason,
                     bool allow_park = true) {
    return pipeline_.WaitDurable(up_to_lsn, reason, allow_park);
  }

  // Waits until everything appended to `shard` so far is stable.
  Status WaitDurableShard(uint32_t shard, ForcePoint reason, bool allow_park);

  // Forces all buffered records to disk (no-op if none); all shards in
  // ascending order. Always inline — the manual escape hatch for tests and
  // tools; runtime code goes through WaitDurable so the wait can be
  // attributed and batched.
  void Force(ForcePoint reason = ForcePoint::kManual);

  // True if everything up to and including `lsn` is stable (`lsn` is
  // composite in sharded mode; kInvalidLsn is never stable).
  bool IsStable(uint64_t lsn) const;

  uint64_t next_lsn() const { return writer_.next_lsn(); }

  // First LSN not yet durable (== stable_end_lsn(); pipeline vocabulary).
  uint64_t durable_lsn() const { return writer_.stable_bytes(); }

  // The durability half of the log (group-commit wiring lives here).
  // The no-argument form is shard 0 — the whole log when shard_count == 1.
  CommitPipeline& pipeline() { return pipeline_; }
  CommitPipeline& pipeline(uint32_t shard) {
    return shard == 0 ? pipeline_ : extra_shards_[shard - 1]->pipeline;
  }

  // Crash: the unforced buffers are gone, and pipeline waiters abort.
  void DropBuffer();

  // Read-only image of the stable log (for recovery and tests). Shard 0 /
  // the whole log when shard_count == 1.
  const std::vector<uint8_t>& StableLog() const;

  // Stable log with its logical base (nonzero after head truncation).
  LogView StableView() const;
  // Per-shard equivalents; bases and offsets are shard-local.
  const std::vector<uint8_t>& ShardStableLog(uint32_t shard) const;
  LogView ShardStableView(uint32_t shard) const;

  // Stable log plus the still-buffered tail. A *context* failure (§4.4)
  // does not lose the process's buffer, so context recovery reads this
  // combined image; process-crash recovery must use StableLog().
  std::vector<uint8_t> FullLog() const;
  std::vector<uint8_t> ShardFullLog(uint32_t shard) const;

  // Logical offset of the first retained byte (the garbage-collection
  // point). Shard 0; per-shard bases are shard-local.
  uint64_t head_base() const;
  uint64_t shard_head_base(uint32_t shard) const;

  // Garbage collection: drops every record before `lsn`. Callers (the
  // checkpoint manager) must only pass LSNs no recovery can need — below
  // every context recovery LSN, every live last-call reply LSN, and the
  // published checkpoint. Sharded GC trims each shard at its own point.
  void TrimHead(uint64_t lsn);
  void TrimShardHead(uint32_t shard, uint64_t local_lsn);

  // Logical LSN one past the last stable byte (shard 0 / single log).
  uint64_t stable_end_lsn() const { return writer_.stable_bytes(); }
  uint64_t shard_stable_end(uint32_t shard) const {
    return shard_writer(shard).stable_bytes();
  }
  uint64_t shard_next_lsn(uint32_t shard) const {
    return shard_writer(shard).next_lsn();
  }

  // Torn-tail salvage: physically truncates the stable log at `end_lsn`
  // (the first unreadable byte; composite in sharded mode) and realigns
  // the owning shard's writer, so the partial frame cannot pollute future
  // appends. Recovery-time only; the buffer must be empty.
  void TruncateStableTail(uint64_t end_lsn);

  // Reads the single record whose frame starts at `lsn` on the stable log
  // (composite in sharded mode, where the gsn prefix is stripped). The
  // shard-aware replacement for ReadRecordAt(StableView(), lsn).
  Result<LogRecord> ReadRecordAtLsn(uint64_t lsn) const;
  // Global sequence number of the sharded record at composite `lsn`.
  Result<uint64_t> OrderOfRecordAt(uint64_t lsn) const;

  // --- well-known file (§4.3): LSN of the last flushed begin-checkpoint ---
  // Force-writes `lsn`; charged as one disk write.
  void WriteWellKnownLsn(uint64_t lsn);
  // kNotFound if no checkpoint has ever completed.
  Result<uint64_t> ReadWellKnownLsn() const;

  // Connects the log (and its writers) to the simulation-wide metrics
  // registry and tracer; `component` labels everything (e.g. "ma/1").
  void BindObs(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
               std::string component);

  // Per-chain causal stack (implemented by Simulation): lets WAL-layer
  // spans — appends, forces, durability waits — attach under the call
  // chain that caused them.
  void SetTraceScope(obs::TraceScope* scope);

  // --- statistics (summed across shards) ---
  uint64_t num_appends() const;
  uint64_t num_forces() const;
  uint64_t bytes_forced() const;

  // Per-force attribution (start/end LSN + ForcePoint), in issue order.
  // Shard 0 / the whole log when shard_count == 1; offsets shard-local.
  const std::vector<ForceMark>& force_marks() const {
    return writer_.force_marks();
  }
  const std::vector<ForceMark>& shard_force_marks(uint32_t shard) const {
    return shard_writer(shard).force_marks();
  }

  const std::string& log_name() const { return writer_.log_name(); }

 private:
  // Shards 1..N-1; shard 0 is the writer_/pipeline_ pair below so the
  // single-log configuration runs the exact pre-sharding code.
  struct ExtraShard {
    ExtraShard(std::string name, StableStorage* storage, DiskModel* disk,
               SimClock* clock, const CostModel* costs)
        : writer(std::move(name), storage, disk, clock),
          pipeline(&writer, clock, costs) {}
    LogWriter writer;
    CommitPipeline pipeline;
  };

  LogWriter& shard_writer(uint32_t shard) {
    return shard == 0 ? writer_ : extra_shards_[shard - 1]->writer;
  }
  const LogWriter& shard_writer(uint32_t shard) const {
    return shard == 0 ? writer_ : extra_shards_[shard - 1]->writer;
  }

  // Scans every shard's stable log for the largest stamped gsn, so a
  // restarted process resumes the global sequence where it left off.
  void RecoverNextGsn();

  StableStorage* storage_;
  DiskModel* disk_;
  SimClock* clock_;
  const CostModel* costs_;
  uint32_t shard_count_;
  ShardRouter router_;
  LogWriter writer_;
  CommitPipeline pipeline_;
  std::vector<std::unique_ptr<ExtraShard>> extra_shards_;
  std::string well_known_name_;
  uint64_t next_gsn_ = 1;
  std::function<void(uint32_t)> append_observer_;

  // Observability sinks (unowned; null until BindObs).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::string component_;
};

}  // namespace phoenix

#endif  // PHOENIX_WAL_LOG_MANAGER_H_
