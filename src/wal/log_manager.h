#ifndef PHOENIX_WAL_LOG_MANAGER_H_
#define PHOENIX_WAL_LOG_MANAGER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "sim/cost_model.h"
#include "sim/disk_model.h"
#include "sim/sim_clock.h"
#include "sim/stable_storage.h"
#include "wal/commit_pipeline.h"
#include "wal/force_point.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"
#include "wal/log_writer.h"

namespace phoenix {

// The per-process log manager (Figure 7): owns the process's recovery log
// and its well-known file, and is the single point through which message
// interceptors, the checkpoint manager, and recovery touch the log.
class LogManager {
 public:
  // `log_name` is the durable name, e.g. "machineA/proc1.log"; the
  // well-known file is derived from it. The pointed-to simulation pieces
  // must outlive the manager.
  LogManager(std::string log_name, StableStorage* storage, DiskModel* disk,
             SimClock* clock, const CostModel* costs);

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  // Appends `record` to the log buffer (charging the buffer-copy CPU cost)
  // and returns its LSN. Does NOT force.
  uint64_t Append(const LogRecord& record);

  // Durability wait: returns once everything below `up_to_lsn` is stable,
  // flushing inline or parking on the commit pipeline's group-commit path.
  // Callers pass next_lsn() to mean "everything appended so far".
  Status WaitDurable(uint64_t up_to_lsn, ForcePoint reason,
                     bool allow_park = true) {
    return pipeline_.WaitDurable(up_to_lsn, reason, allow_park);
  }

  // Forces all buffered records to disk (no-op if none). Always inline —
  // the manual escape hatch for tests and tools; runtime code goes
  // through WaitDurable so the wait can be attributed and batched.
  void Force(ForcePoint reason = ForcePoint::kManual);

  // True if everything up to and including `lsn` is stable.
  bool IsStable(uint64_t lsn) const { return writer_.IsStable(lsn); }

  uint64_t next_lsn() const { return writer_.next_lsn(); }

  // First LSN not yet durable (== stable_end_lsn(); pipeline vocabulary).
  uint64_t durable_lsn() const { return writer_.stable_bytes(); }

  // The durability half of the log (group-commit wiring lives here).
  CommitPipeline& pipeline() { return pipeline_; }

  // Crash: the unforced buffer is gone, and pipeline waiters abort.
  void DropBuffer() {
    writer_.DropBuffer();
    pipeline_.OnCrash();
  }

  // Read-only image of the stable log (for recovery and tests).
  const std::vector<uint8_t>& StableLog() const;

  // Stable log with its logical base (nonzero after head truncation).
  LogView StableView() const;

  // Stable log plus the still-buffered tail. A *context* failure (§4.4)
  // does not lose the process's buffer, so context recovery reads this
  // combined image; process-crash recovery must use StableLog().
  std::vector<uint8_t> FullLog() const;

  // Logical offset of the first retained byte (the garbage-collection
  // point).
  uint64_t head_base() const;

  // Garbage collection: drops every record before `lsn`. Callers (the
  // checkpoint manager) must only pass LSNs no recovery can need — below
  // every context recovery LSN, every live last-call reply LSN, and the
  // published checkpoint.
  void TrimHead(uint64_t lsn);

  // Logical LSN one past the last stable byte.
  uint64_t stable_end_lsn() const { return writer_.stable_bytes(); }

  // Torn-tail salvage: physically truncates the stable log at `end_lsn`
  // (the first unreadable byte) and realigns the writer, so the partial
  // frame cannot pollute future appends. Recovery-time only; the buffer
  // must be empty.
  void TruncateStableTail(uint64_t end_lsn);

  // --- well-known file (§4.3): LSN of the last flushed begin-checkpoint ---
  // Force-writes `lsn`; charged as one disk write.
  void WriteWellKnownLsn(uint64_t lsn);
  // kNotFound if no checkpoint has ever completed.
  Result<uint64_t> ReadWellKnownLsn() const;

  // Connects the log (and its writer) to the simulation-wide metrics
  // registry and tracer; `component` labels everything (e.g. "ma/1").
  void BindObs(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
               std::string component);

  // Per-chain causal stack (implemented by Simulation): lets WAL-layer
  // spans — appends, forces, durability waits — attach under the call
  // chain that caused them.
  void SetTraceScope(obs::TraceScope* scope) {
    writer_.SetTraceScope(scope);
    pipeline_.SetTraceScope(scope);
  }

  // --- statistics ---
  uint64_t num_appends() const { return writer_.num_appends(); }
  uint64_t num_forces() const { return writer_.num_forces(); }
  uint64_t bytes_forced() const { return writer_.bytes_forced(); }

  // Per-force attribution (start/end LSN + ForcePoint), in issue order.
  const std::vector<ForceMark>& force_marks() const {
    return writer_.force_marks();
  }

  const std::string& log_name() const { return writer_.log_name(); }

 private:
  StableStorage* storage_;
  DiskModel* disk_;
  SimClock* clock_;
  const CostModel* costs_;
  LogWriter writer_;
  CommitPipeline pipeline_;
  std::string well_known_name_;

  // Observability sinks (unowned; null until BindObs).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  std::string component_;
};

}  // namespace phoenix

#endif  // PHOENIX_WAL_LOG_MANAGER_H_
