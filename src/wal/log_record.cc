#include "wal/log_record.h"

namespace phoenix {
namespace {

void EncodeFieldSnapshot(const FieldSnapshot& f, Encoder& enc) {
  enc.PutString(f.name);
  enc.PutU8(f.is_component_ref ? 1 : 0);
  enc.PutValue(f.value);
}

Result<FieldSnapshot> DecodeFieldSnapshot(Decoder& dec) {
  FieldSnapshot f;
  PHX_ASSIGN_OR_RETURN(f.name, dec.GetString());
  PHX_ASSIGN_OR_RETURN(uint8_t ref, dec.GetU8());
  f.is_component_ref = ref != 0;
  PHX_ASSIGN_OR_RETURN(f.value, dec.GetValue());
  return f;
}

void EncodeComponentSnapshot(const ComponentSnapshot& s, Encoder& enc) {
  enc.PutVarint(s.component_id);
  enc.PutString(s.type_name);
  enc.PutString(s.name);
  enc.PutU8(static_cast<uint8_t>(s.kind));
  enc.PutVarint(s.fields.size());
  for (const FieldSnapshot& f : s.fields) EncodeFieldSnapshot(f, enc);
}

Result<ComponentSnapshot> DecodeComponentSnapshot(Decoder& dec) {
  ComponentSnapshot s;
  PHX_ASSIGN_OR_RETURN(s.component_id, dec.GetVarint());
  PHX_ASSIGN_OR_RETURN(s.type_name, dec.GetString());
  PHX_ASSIGN_OR_RETURN(s.name, dec.GetString());
  PHX_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
  s.kind = static_cast<ComponentKind>(kind);
  PHX_ASSIGN_OR_RETURN(uint64_t n, dec.GetVarint());
  s.fields.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PHX_ASSIGN_OR_RETURN(FieldSnapshot f, DecodeFieldSnapshot(dec));
    s.fields.push_back(std::move(f));
  }
  return s;
}

struct EncodeVisitor {
  Encoder& enc;

  void operator()(const IncomingCallRecord& r) {
    enc.PutVarint(r.context_id);
    r.call_id.EncodeTo(enc);
    enc.PutString(r.method);
    enc.PutArgList(r.args);
    enc.PutU8(static_cast<uint8_t>(r.client_kind));
  }
  void operator()(const ReplySentRecord& r) {
    enc.PutVarint(r.context_id);
    r.call_id.EncodeTo(enc);
    enc.PutU8(r.long_form ? 1 : 0);
    if (r.long_form) enc.PutValue(r.reply);
    enc.PutU8(r.status_code);
  }
  void operator()(const OutgoingCallRecord& r) {
    enc.PutVarint(r.context_id);
    r.call_id.EncodeTo(enc);
    enc.PutString(r.server_uri);
    enc.PutString(r.method);
    enc.PutArgList(r.args);
  }
  void operator()(const ReplyReceivedRecord& r) {
    enc.PutVarint(r.context_id);
    enc.PutVarint(r.seq);
    enc.PutValue(r.reply);
    enc.PutU8(r.status_code);
    enc.PutU8(static_cast<uint8_t>(r.server_kind));
  }
  void operator()(const CreationRecord& r) {
    enc.PutVarint(r.context_id);
    enc.PutString(r.type_name);
    enc.PutString(r.name);
    enc.PutU8(static_cast<uint8_t>(r.kind));
    enc.PutArgList(r.ctor_args);
    enc.PutVarint(r.creation_call_seq);
  }
  void operator()(const LastCallReplyRecord& r) {
    enc.PutVarint(r.context_id);
    r.call_id.EncodeTo(enc);
    enc.PutValue(r.reply);
    enc.PutU8(r.status_code);
  }
  void operator()(const ContextStateRecord& r) {
    enc.PutVarint(r.context_id);
    enc.PutVarint(r.last_outgoing_seq);
    enc.PutVarint(r.components.size());
    for (const ComponentSnapshot& s : r.components) {
      EncodeComponentSnapshot(s, enc);
    }
    enc.PutVarint(r.last_call_refs.size());
    for (const LastCallRef& ref : r.last_call_refs) {
      ref.call_id.EncodeTo(enc);
      enc.PutU64(ref.reply_lsn);
    }
  }
  void operator()(const BeginCheckpointRecord&) {}
  void operator()(const CheckpointContextEntryRecord& r) {
    enc.PutVarint(r.context_id);
    enc.PutU64(r.recovery_lsn);
    enc.PutVarint(r.last_outgoing_seq);
  }
  void operator()(const CheckpointLastCallRecord& r) {
    enc.PutVarint(r.context_id);
    r.call_id.EncodeTo(enc);
    enc.PutU64(r.reply_lsn);
  }
  void operator()(const CheckpointRemoteTypeRecord& r) {
    enc.PutString(r.uri);
    enc.PutU8(static_cast<uint8_t>(r.kind));
    enc.PutString(r.type_name);
  }
  void operator()(const EndCheckpointRecord& r) { enc.PutU64(r.begin_lsn); }
};

}  // namespace

LogRecordType RecordTypeOf(const LogRecord& record) {
  struct Visitor {
    LogRecordType operator()(const IncomingCallRecord&) {
      return LogRecordType::kIncomingCall;
    }
    LogRecordType operator()(const ReplySentRecord&) {
      return LogRecordType::kReplySent;
    }
    LogRecordType operator()(const OutgoingCallRecord&) {
      return LogRecordType::kOutgoingCall;
    }
    LogRecordType operator()(const ReplyReceivedRecord&) {
      return LogRecordType::kReplyReceived;
    }
    LogRecordType operator()(const CreationRecord&) {
      return LogRecordType::kCreation;
    }
    LogRecordType operator()(const LastCallReplyRecord&) {
      return LogRecordType::kLastCallReply;
    }
    LogRecordType operator()(const ContextStateRecord&) {
      return LogRecordType::kContextState;
    }
    LogRecordType operator()(const BeginCheckpointRecord&) {
      return LogRecordType::kBeginCheckpoint;
    }
    LogRecordType operator()(const CheckpointContextEntryRecord&) {
      return LogRecordType::kCheckpointContextEntry;
    }
    LogRecordType operator()(const CheckpointLastCallRecord&) {
      return LogRecordType::kCheckpointLastCall;
    }
    LogRecordType operator()(const CheckpointRemoteTypeRecord&) {
      return LogRecordType::kCheckpointRemoteType;
    }
    LogRecordType operator()(const EndCheckpointRecord&) {
      return LogRecordType::kEndCheckpoint;
    }
  };
  return std::visit(Visitor{}, record);
}

void EncodeLogRecord(const LogRecord& record, Encoder& enc) {
  enc.PutU8(static_cast<uint8_t>(RecordTypeOf(record)));
  std::visit(EncodeVisitor{enc}, record);
}

Result<LogRecord> DecodeLogRecord(const uint8_t* data, size_t n) {
  Decoder dec(data, n);
  PHX_ASSIGN_OR_RETURN(uint8_t tag, dec.GetU8());
  switch (static_cast<LogRecordType>(tag)) {
    case LogRecordType::kIncomingCall: {
      IncomingCallRecord r;
      PHX_ASSIGN_OR_RETURN(r.context_id, dec.GetVarint());
      PHX_ASSIGN_OR_RETURN(r.call_id, CallId::DecodeFrom(dec));
      PHX_ASSIGN_OR_RETURN(r.method, dec.GetString());
      PHX_ASSIGN_OR_RETURN(r.args, dec.GetArgList());
      PHX_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
      r.client_kind = static_cast<ComponentKind>(kind);
      return LogRecord(std::move(r));
    }
    case LogRecordType::kReplySent: {
      ReplySentRecord r;
      PHX_ASSIGN_OR_RETURN(r.context_id, dec.GetVarint());
      PHX_ASSIGN_OR_RETURN(r.call_id, CallId::DecodeFrom(dec));
      PHX_ASSIGN_OR_RETURN(uint8_t long_form, dec.GetU8());
      r.long_form = long_form != 0;
      if (r.long_form) {
        PHX_ASSIGN_OR_RETURN(r.reply, dec.GetValue());
      }
      PHX_ASSIGN_OR_RETURN(r.status_code, dec.GetU8());
      return LogRecord(std::move(r));
    }
    case LogRecordType::kOutgoingCall: {
      OutgoingCallRecord r;
      PHX_ASSIGN_OR_RETURN(r.context_id, dec.GetVarint());
      PHX_ASSIGN_OR_RETURN(r.call_id, CallId::DecodeFrom(dec));
      PHX_ASSIGN_OR_RETURN(r.server_uri, dec.GetString());
      PHX_ASSIGN_OR_RETURN(r.method, dec.GetString());
      PHX_ASSIGN_OR_RETURN(r.args, dec.GetArgList());
      return LogRecord(std::move(r));
    }
    case LogRecordType::kReplyReceived: {
      ReplyReceivedRecord r;
      PHX_ASSIGN_OR_RETURN(r.context_id, dec.GetVarint());
      PHX_ASSIGN_OR_RETURN(r.seq, dec.GetVarint());
      PHX_ASSIGN_OR_RETURN(r.reply, dec.GetValue());
      PHX_ASSIGN_OR_RETURN(r.status_code, dec.GetU8());
      PHX_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
      r.server_kind = static_cast<ComponentKind>(kind);
      return LogRecord(std::move(r));
    }
    case LogRecordType::kCreation: {
      CreationRecord r;
      PHX_ASSIGN_OR_RETURN(r.context_id, dec.GetVarint());
      PHX_ASSIGN_OR_RETURN(r.type_name, dec.GetString());
      PHX_ASSIGN_OR_RETURN(r.name, dec.GetString());
      PHX_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
      r.kind = static_cast<ComponentKind>(kind);
      PHX_ASSIGN_OR_RETURN(r.ctor_args, dec.GetArgList());
      PHX_ASSIGN_OR_RETURN(r.creation_call_seq, dec.GetVarint());
      return LogRecord(std::move(r));
    }
    case LogRecordType::kLastCallReply: {
      LastCallReplyRecord r;
      PHX_ASSIGN_OR_RETURN(r.context_id, dec.GetVarint());
      PHX_ASSIGN_OR_RETURN(r.call_id, CallId::DecodeFrom(dec));
      PHX_ASSIGN_OR_RETURN(r.reply, dec.GetValue());
      PHX_ASSIGN_OR_RETURN(r.status_code, dec.GetU8());
      return LogRecord(std::move(r));
    }
    case LogRecordType::kContextState: {
      ContextStateRecord r;
      PHX_ASSIGN_OR_RETURN(r.context_id, dec.GetVarint());
      PHX_ASSIGN_OR_RETURN(r.last_outgoing_seq, dec.GetVarint());
      PHX_ASSIGN_OR_RETURN(uint64_t ncomp, dec.GetVarint());
      r.components.reserve(ncomp);
      for (uint64_t i = 0; i < ncomp; ++i) {
        PHX_ASSIGN_OR_RETURN(ComponentSnapshot s, DecodeComponentSnapshot(dec));
        r.components.push_back(std::move(s));
      }
      PHX_ASSIGN_OR_RETURN(uint64_t nrefs, dec.GetVarint());
      r.last_call_refs.reserve(nrefs);
      for (uint64_t i = 0; i < nrefs; ++i) {
        LastCallRef ref;
        PHX_ASSIGN_OR_RETURN(ref.call_id, CallId::DecodeFrom(dec));
        PHX_ASSIGN_OR_RETURN(ref.reply_lsn, dec.GetU64());
        r.last_call_refs.push_back(std::move(ref));
      }
      return LogRecord(std::move(r));
    }
    case LogRecordType::kBeginCheckpoint:
      return LogRecord(BeginCheckpointRecord{});
    case LogRecordType::kCheckpointContextEntry: {
      CheckpointContextEntryRecord r;
      PHX_ASSIGN_OR_RETURN(r.context_id, dec.GetVarint());
      PHX_ASSIGN_OR_RETURN(r.recovery_lsn, dec.GetU64());
      PHX_ASSIGN_OR_RETURN(r.last_outgoing_seq, dec.GetVarint());
      return LogRecord(std::move(r));
    }
    case LogRecordType::kCheckpointLastCall: {
      CheckpointLastCallRecord r;
      PHX_ASSIGN_OR_RETURN(r.context_id, dec.GetVarint());
      PHX_ASSIGN_OR_RETURN(r.call_id, CallId::DecodeFrom(dec));
      PHX_ASSIGN_OR_RETURN(r.reply_lsn, dec.GetU64());
      return LogRecord(std::move(r));
    }
    case LogRecordType::kCheckpointRemoteType: {
      CheckpointRemoteTypeRecord r;
      PHX_ASSIGN_OR_RETURN(r.uri, dec.GetString());
      PHX_ASSIGN_OR_RETURN(uint8_t kind, dec.GetU8());
      r.kind = static_cast<ComponentKind>(kind);
      PHX_ASSIGN_OR_RETURN(r.type_name, dec.GetString());
      return LogRecord(std::move(r));
    }
    case LogRecordType::kEndCheckpoint: {
      EndCheckpointRecord r;
      PHX_ASSIGN_OR_RETURN(r.begin_lsn, dec.GetU64());
      return LogRecord(std::move(r));
    }
  }
  return Status::Corruption("bad log record tag");
}

}  // namespace phoenix
