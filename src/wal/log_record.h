#ifndef PHOENIX_WAL_LOG_RECORD_H_
#define PHOENIX_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "runtime/call_id.h"
#include "runtime/kinds.h"
#include "serde/codec.h"
#include "serde/value.h"

namespace phoenix {

// Record types on a process's recovery log. Records 1-4 mirror the four
// message kinds of Figure 1; the rest implement creation, context state
// saving (§4.2) and process checkpoints (§4.3).
enum class LogRecordType : uint8_t {
  kIncomingCall = 1,
  kReplySent = 2,
  kOutgoingCall = 3,
  kReplyReceived = 4,
  kCreation = 5,
  kLastCallReply = 6,
  kContextState = 7,
  kBeginCheckpoint = 8,
  kCheckpointContextEntry = 9,
  kCheckpointLastCall = 10,
  kCheckpointRemoteType = 11,
  kEndCheckpoint = 12,
};

// Sentinel LSN meaning "no record" (log offsets start at 0, so 0 is a valid
// LSN and cannot be the sentinel).
inline constexpr uint64_t kInvalidLsn = ~uint64_t{0};

// --- message records -------------------------------------------------------

// Message 1: an incoming method call delivered to a context's parent. Always
// a long record: method + arguments are what replay re-executes.
struct IncomingCallRecord {
  uint64_t context_id = 0;   // id of the parent component of the context
  CallId call_id;            // caller identity + caller-side sequence
  std::string method;
  ArgList args;
  ComponentKind client_kind = ComponentKind::kExternal;
};

// Message 2: the reply to an incoming call. Under Algorithm 2 this is never
// written (replay recreates it); under Algorithm 3 (external client) a
// *short* record — just the fact that the reply was sent — is forced.
struct ReplySentRecord {
  uint64_t context_id = 0;
  CallId call_id;          // the incoming call this replies to
  bool long_form = false;  // long records carry the reply value
  Value reply;
  uint8_t status_code = 0;
};

// Message 3: an outgoing method call. Only the baseline Algorithm 1 writes
// these; the optimized system recreates sends by replay.
struct OutgoingCallRecord {
  uint64_t context_id = 0;
  CallId call_id;  // our globally unique outgoing id
  std::string server_uri;
  std::string method;
  ArgList args;
};

// Message 4: the reply received for an outgoing call. Needed to remove the
// nondeterminism of reading another component's answer; replay feeds it back
// to the suppressed outgoing call.
struct ReplyReceivedRecord {
  uint64_t context_id = 0;
  uint64_t seq = 0;  // our outgoing-call sequence number
  Value reply;
  uint8_t status_code = 0;
  ComponentKind server_kind = ComponentKind::kPersistent;  // learned type
};

// --- creation / checkpoint records ------------------------------------------

// Creation of a context parent component (type name + constructor args let
// the factory re-instantiate it during recovery; the CLR did this through
// metadata, we do it through the ComponentFactoryRegistry).
struct CreationRecord {
  uint64_t context_id = 0;    // == component_id of the parent
  std::string type_name;
  std::string name;           // process-unique component name (URI leaf)
  ComponentKind kind = ComponentKind::kPersistent;
  ArgList ctor_args;
  uint64_t creation_call_seq = 0;  // dedup: Activator call seq that made it
};

// One component's saved fields inside a context state record. Fields that
// hold component references are stored as URIs and re-resolved on restore.
struct FieldSnapshot {
  std::string name;
  Value value;
  bool is_component_ref = false;  // value is then a kString URI
};

struct ComponentSnapshot {
  uint64_t component_id = 0;
  std::string type_name;
  std::string name;
  ComponentKind kind = ComponentKind::kPersistent;
  std::vector<FieldSnapshot> fields;
};

// A last-call reply forced ahead of a context state save (§4.2): after
// restoring from a state record, earlier replies cannot be recreated by
// replay, so the ones still referenced by the last-call table must be on the
// log.
struct LastCallReplyRecord {
  uint64_t context_id = 0;
  CallId call_id;
  Value reply;
  uint8_t status_code = 0;
};

// Reference from a context state record to a last-call entry: either the
// LSN of a LastCallReplyRecord holding the reply, or kInvalidLsn when the
// reply is inlined... (we always point at a LastCallReplyRecord).
struct LastCallRef {
  CallId call_id;
  uint64_t reply_lsn = kInvalidLsn;
};

// Application "checkpoint" of one context (§4.2): the fields of the parent
// and all subordinates, plus the context metadata needed to rebuild the
// global tables.
struct ContextStateRecord {
  uint64_t context_id = 0;
  uint64_t last_outgoing_seq = 0;  // context's outgoing-call counter
  std::vector<ComponentSnapshot> components;  // parent first
  std::vector<LastCallRef> last_call_refs;
};

// Process checkpoint (§4.3): bracketed global-table dump. Entries are
// individual records so the tables can be saved incrementally under
// sub-range locks, as the paper describes.
struct BeginCheckpointRecord {};

struct CheckpointContextEntryRecord {
  uint64_t context_id = 0;
  // Recovery LSN for this context: its newest state record, or its creation
  // record if no state has been saved (akin to ARIES page recovery LSNs).
  uint64_t recovery_lsn = kInvalidLsn;
  uint64_t last_outgoing_seq = 0;
};

struct CheckpointLastCallRecord {
  uint64_t context_id = 0;
  CallId call_id;
  uint64_t reply_lsn = kInvalidLsn;
};

struct CheckpointRemoteTypeRecord {
  std::string uri;
  ComponentKind kind = ComponentKind::kPersistent;
  std::string type_name;
};

struct EndCheckpointRecord {
  uint64_t begin_lsn = kInvalidLsn;
};

using LogRecord =
    std::variant<IncomingCallRecord, ReplySentRecord, OutgoingCallRecord,
                 ReplyReceivedRecord, CreationRecord, LastCallReplyRecord,
                 ContextStateRecord, BeginCheckpointRecord,
                 CheckpointContextEntryRecord, CheckpointLastCallRecord,
                 CheckpointRemoteTypeRecord, EndCheckpointRecord>;

// Type tag of a record held in the variant.
LogRecordType RecordTypeOf(const LogRecord& record);

// Serializes `record` (type tag + body) into `enc`.
void EncodeLogRecord(const LogRecord& record, Encoder& enc);

// Parses one record payload previously produced by EncodeLogRecord.
Result<LogRecord> DecodeLogRecord(const uint8_t* data, size_t n);

}  // namespace phoenix

#endif  // PHOENIX_WAL_LOG_RECORD_H_
