#ifndef PHOENIX_RUNTIME_SESSION_H_
#define PHOENIX_RUNTIME_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "obs/tracer.h"
#include "wal/commit_pipeline.h"

namespace phoenix {

class Context;

// Cooperative overlapping call chains ("sessions") for one simulation.
//
// The simulator's call model is depth-first C++ recursion: one chain of
// nested RouteCall frames. To give group commit concurrency to harvest
// without giving up determinism, the scheduler runs N session bodies on
// real threads but passes a single baton — exactly one thread executes at
// any instant, and the only yield points are explicit parks:
//
//  - ParkUntilDurable: a chain reached a durability wait (WaitDurable with
//    group commit on) and suspends until the pipeline's durable horizon
//    passes its LSN;
//  - ParkUntil: a chain hit a busy context (single-threaded contexts,
//    §3.2.1) and suspends until the predicate holds.
//
// When no session is runnable, every live chain is stalled on durability —
// that is the group-commit harvest point: the scheduler flushes the
// pipeline with the most parked waiters, satisfying the whole batch with
// one disk write, and wakes them.
//
// Determinism: one runnable thread at a time, parks only at fixed program
// points, and the choice among ready sessions drawn from a seeded PRNG —
// so a given (seed, workload) always produces the same interleaving, the
// same batches, and byte-identical metrics.
class SessionScheduler : public CommitPipeline::Scheduler {
 public:
  explicit SessionScheduler(uint64_t seed) : rng_(seed) {}
  ~SessionScheduler() override;

  SessionScheduler(const SessionScheduler&) = delete;
  SessionScheduler& operator=(const SessionScheduler&) = delete;

  // Runs every body to completion, interleaving at park points. Blocking;
  // must be called from the driver thread (not from inside a session).
  void Run(std::vector<std::function<void()>> bodies);

  // CommitPipeline::Scheduler. Returns false when the calling thread is
  // not one of this scheduler's sessions (the caller then flushes inline).
  bool ParkUntilDurable(CommitPipeline* pipeline, uint64_t lsn) override;

  // Sessions currently parked on `pipeline`'s durability — the max-batch
  // policy asks before parking one more.
  size_t ParkedWaiters(const CommitPipeline* pipeline) const override;

  // Suspends the calling session until `ready()` holds. Returns false (and
  // does nothing) off session threads. The predicate is evaluated by the
  // scheduler while all sessions are quiesced, so it may read any
  // simulation state without synchronization.
  bool ParkUntil(std::function<bool()> ready);

  // Index of the session the calling thread is running, or -1.
  int current_session() const;

  // The calling session's execution-context stack, or nullptr off session
  // threads. Simulation::PushContext/PopContext delegate here so each
  // chain tracks its own nesting.
  std::vector<Context*>* current_context_stack();

  // The calling session's trace-span stack (the chain's current causal
  // position, obs::SpanLink), or nullptr off session threads.
  std::vector<obs::SpanLink>* current_trace_stack();

  // Internal per-chain bookkeeping; public only so the thread-local
  // current-session pointer in session.cc can name the type.
  struct Session {
    int index = 0;
    SessionScheduler* owner = nullptr;
    std::function<void()> body;
    std::thread thread;
    std::condition_variable cv;
    enum class State { kReady, kRunning, kParked, kDone };
    State state = State::kReady;
    // Exactly one of these describes a park: a durability wait...
    CommitPipeline* wait_pipeline = nullptr;
    uint64_t wait_lsn = 0;
    uint64_t wait_epoch = 0;
    double wait_since_ms = 0.0;  // sim time the durability park began
    // ...or a generic predicate.
    std::function<bool()> ready_pred;
    std::vector<Context*> context_stack;
    std::vector<obs::SpanLink> trace_stack;
  };

 private:
  static bool ParkSatisfied(const Session& s);
  // Picks the pipeline with the most parked durability waiters and batch-
  // flushes it. Returns false when nobody is parked on durability.
  bool TryGroupFlush();
  void SessionMain(Session* s);
  // Parks the calling session (already holding mu_) until rescheduled.
  void ParkLocked(std::unique_lock<std::mutex>& lock, Session* s);

  Random rng_;
  mutable std::mutex mu_;
  std::condition_variable sched_cv_;
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace phoenix

#endif  // PHOENIX_RUNTIME_SESSION_H_
