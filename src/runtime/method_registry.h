#ifndef PHOENIX_RUNTIME_METHOD_REGISTRY_H_
#define PHOENIX_RUNTIME_METHOD_REGISTRY_H_

#include <functional>
#include <map>
#include <string>

#include "common/result.h"
#include "serde/value.h"

namespace phoenix {

// Declarative attributes on a method, the analogue of the paper's custom
// .NET attributes (§3.3: a read-only method neither changes any field nor
// makes a non-read-only outgoing call; callers need not force, servers need
// not log).
struct MethodTraits {
  bool read_only = false;
};

struct MethodEntry {
  std::function<Result<Value>(const ArgList&)> handler;
  MethodTraits traits;
};

// Dispatch table a component fills in from RegisterMethods(). This replaces
// CLR metadata/dynamic dispatch: cross-context calls name their method and
// are dispatched through this table after unmarshalling.
class MethodRegistry {
 public:
  MethodRegistry() = default;

  MethodRegistry(MethodRegistry&&) = default;
  MethodRegistry& operator=(MethodRegistry&&) = default;
  MethodRegistry(const MethodRegistry&) = delete;
  MethodRegistry& operator=(const MethodRegistry&) = delete;

  // Registers `handler` (typically a lambda capturing the component) under
  // `name`. Re-registering a name aborts: method sets are static per type.
  void Register(const std::string& name,
                std::function<Result<Value>(const ArgList&)> handler,
                MethodTraits traits = {});

  // nullptr when absent.
  const MethodEntry* Find(const std::string& name) const;

  const std::map<std::string, MethodEntry>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, MethodEntry> entries_;
};

}  // namespace phoenix

#endif  // PHOENIX_RUNTIME_METHOD_REGISTRY_H_
