#ifndef PHOENIX_RUNTIME_SIMULATION_H_
#define PHOENIX_RUNTIME_SIMULATION_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/options.h"
#include "obs/bench_reporter.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "runtime/component.h"
#include "runtime/machine.h"
#include "runtime/message.h"
#include "runtime/session.h"
#include "sim/cost_model.h"
#include "sim/failure_injector.h"
#include "sim/network_model.h"
#include "sim/sim_clock.h"
#include "sim/stable_storage.h"

namespace phoenix {

// Knobs for the simulated hardware.
struct SimulationParams {
  DiskParams disk;
  NetworkParams network;
  CostModel costs;
  uint64_t seed = 1;
  // Non-empty: mirror stable storage into this real directory (and load
  // what a previous run left there), so Phoenix state survives restarts of
  // the hosting OS process. See StableStorage::EnablePersistence.
  std::string persistence_dir;
  // Record structured trace events (src/obs/tracer.h). Metrics are always
  // collected; tracing is opt-in because events accumulate in memory.
  bool trace_enabled = false;
  // Flight recorder: keep the last N trace events per component in a
  // bounded ring even when full tracing is off (0 disables). Cheap enough
  // to leave on in chaos campaigns; dumped post-mortem on crash.
  size_t flight_recorder_events = 0;
  // Non-empty: every Process::Kill rewrites this file with the flight
  // recorder's merged ring contents, so the last pre-crash events survive
  // the run for triage.
  std::string flight_dump_path;
};

// The root object: the whole distributed system under test. Owns the clock,
// stable storage, failure injector, network, every machine, the component
// factory registry and the runtime option switches — and implements the
// transport that routes call messages between contexts. Also implements
// obs::TraceScope: the per-chain stack of causal span links that parents
// every span a chain creates (including WAL-layer forces and parks).
class Simulation : public obs::TraceScope {
 public:
  explicit Simulation(RuntimeOptions options = {},
                      SimulationParams params = {});
  ~Simulation() override;

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // --- topology ---
  Machine& AddMachine(const std::string& name);
  Machine* GetMachine(const std::string& name);

  // --- shared services ---
  SimClock& clock() { return clock_; }
  // Observability (src/obs/): the sim-time metrics registry and the
  // structured event tracer every subsystem reports into.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }
  StableStorage& storage() { return storage_; }
  FailureInjector& injector() { return injector_; }
  NetworkModel& network() { return network_; }
  const CostModel& costs() const { return params_.costs; }
  const DiskParams& params_disk() const { return params_.disk; }
  RuntimeOptions& options() { return options_; }
  const RuntimeOptions& options() const { return options_; }
  ComponentFactoryRegistry& factories() { return factories_; }
  uint64_t seed() const { return params_.seed; }
  // Seeded jitter stream for the capped-exponential retry backoff. Only
  // consumed when a retry actually sleeps, so fault-free runs never draw
  // from it.
  Random& retry_rng() { return retry_rng_; }

  // --- transport ---

  // Routes `msg` from `source_machine` ("" for a co-located driver) to its
  // target process, charging marshalling, interception, attachment and
  // network costs. One attempt: kUnavailable surfaces to the caller, whose
  // interceptor implements retry (condition 4).
  Result<ReplyMessage> RouteCall(const std::string& source_machine,
                                 const CallMessage& msg);

  // Resolves a URI to its hosting process (nullptr if machine/process
  // unknown).
  Process* ResolveProcess(const std::string& uri);

  // --- overlapping sessions ---

  // Runs `sessions` as overlapping cooperative call chains (see
  // runtime/session.h): deterministic seeded interleaving, yielding only
  // at durability waits and busy contexts. Blocks until all complete.
  // While active, processes route their durability waits through the
  // session scheduler, so group commit (RuntimeOptions.group_commit) has
  // concurrent waiters to coalesce.
  void RunSessions(std::vector<std::function<void()>> sessions);

  // Non-null only inside RunSessions.
  SessionScheduler* session_scheduler() const { return session_scheduler_; }

  // --- execution-context tracking (one call stack per chain) ---
  Context* current_context() const {
    const std::vector<Context*>& stack = CurrentContextStack();
    return stack.empty() ? nullptr : stack.back();
  }
  void PushContext(Context* ctx) { CurrentContextStack().push_back(ctx); }
  void PopContext() { CurrentContextStack().pop_back(); }

  // --- obs::TraceScope: the calling chain's causal span stack ---
  obs::SpanLink Current() const override {
    const std::vector<obs::SpanLink>& stack = CurrentTraceStack();
    return stack.empty() ? obs::SpanLink{} : stack.back();
  }
  void Push(obs::SpanLink link) override {
    CurrentTraceStack().push_back(link);
  }
  void Pop() override { CurrentTraceStack().pop_back(); }

  // Writes the flight-recorder rings to params.flight_dump_path (no-op when
  // either knob is unset). Process::Kill calls this so every crash —
  // injected or scripted — leaves a post-mortem file.
  void DumpFlightRecorderOnCrash();

  // --- aggregate statistics (benchmarks read deltas) ---
  uint64_t TotalForces() const;
  uint64_t TotalAppends() const;
  uint64_t TotalBytesForced() const;

  // Copies this run's aggregate log counters and per-call latency
  // distribution into a bench-report variant (obs/bench_reporter.h). The
  // Total*() counters sum the *live* writers — they reset when recovery
  // recreates a process — matching what the paper's tables charge to a
  // workload. Call after the workload, before the Simulation dies.
  void CaptureBench(obs::BenchVariant& variant) const;

 private:
  // The un-instrumented transport path; RouteCall wraps it with metrics and
  // trace spans.
  Result<ReplyMessage> RouteCallInner(const std::string& source_machine,
                                      const CallMessage& msg);

  void RecordNetworkDrop(const std::string& src, const std::string& dst,
                         const std::string& method, NetLeg leg,
                         obs::SpanLink link);

  // The calling chain's context stack: the session's own stack on session
  // threads, the driver stack otherwise.
  std::vector<Context*>& CurrentContextStack();
  const std::vector<Context*>& CurrentContextStack() const;
  std::vector<obs::SpanLink>& CurrentTraceStack();
  const std::vector<obs::SpanLink>& CurrentTraceStack() const;

  RuntimeOptions options_;
  SimulationParams params_;
  SimClock clock_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_{&clock_};
  StableStorage storage_;
  FailureInjector injector_;
  NetworkModel network_;
  ComponentFactoryRegistry factories_;
  std::map<std::string, std::unique_ptr<Machine>> machines_;
  std::vector<Context*> context_stack_;
  std::vector<obs::SpanLink> trace_stack_;
  Random retry_rng_{0};
  uint64_t next_disk_seed_ = 101;
  SessionScheduler* session_scheduler_ = nullptr;
};

// Pushes a span onto the chain's causal stack (Simulation::TraceScope) for
// the enclosing scope, so everything the scope does — nested calls, log
// appends/forces, durability parks — parents under the span. Inert when
// the span is inert (tracer disabled).
class TraceFrameScope {
 public:
  TraceFrameScope(Simulation* sim, const obs::Tracer::Span& span) {
    if (span.span_id() != 0) {
      sim_ = sim;
      sim_->Push(span.link());
    }
  }
  ~TraceFrameScope() {
    if (sim_ != nullptr) sim_->Pop();
  }
  TraceFrameScope(const TraceFrameScope&) = delete;
  TraceFrameScope& operator=(const TraceFrameScope&) = delete;

 private:
  Simulation* sim_ = nullptr;
};

}  // namespace phoenix

#endif  // PHOENIX_RUNTIME_SIMULATION_H_
