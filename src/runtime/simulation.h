#ifndef PHOENIX_RUNTIME_SIMULATION_H_
#define PHOENIX_RUNTIME_SIMULATION_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "core/options.h"
#include "obs/bench_reporter.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "runtime/component.h"
#include "runtime/machine.h"
#include "runtime/message.h"
#include "runtime/session.h"
#include "sim/cost_model.h"
#include "sim/failure_injector.h"
#include "sim/network_model.h"
#include "sim/sim_clock.h"
#include "sim/stable_storage.h"

namespace phoenix {

// Knobs for the simulated hardware.
struct SimulationParams {
  DiskParams disk;
  NetworkParams network;
  CostModel costs;
  uint64_t seed = 1;
  // Non-empty: mirror stable storage into this real directory (and load
  // what a previous run left there), so Phoenix state survives restarts of
  // the hosting OS process. See StableStorage::EnablePersistence.
  std::string persistence_dir;
  // Record structured trace events (src/obs/tracer.h). Metrics are always
  // collected; tracing is opt-in because events accumulate in memory.
  bool trace_enabled = false;
};

// The root object: the whole distributed system under test. Owns the clock,
// stable storage, failure injector, network, every machine, the component
// factory registry and the runtime option switches — and implements the
// transport that routes call messages between contexts.
class Simulation {
 public:
  explicit Simulation(RuntimeOptions options = {},
                      SimulationParams params = {});
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // --- topology ---
  Machine& AddMachine(const std::string& name);
  Machine* GetMachine(const std::string& name);

  // --- shared services ---
  SimClock& clock() { return clock_; }
  // Observability (src/obs/): the sim-time metrics registry and the
  // structured event tracer every subsystem reports into.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }
  StableStorage& storage() { return storage_; }
  FailureInjector& injector() { return injector_; }
  NetworkModel& network() { return network_; }
  const CostModel& costs() const { return params_.costs; }
  const DiskParams& params_disk() const { return params_.disk; }
  RuntimeOptions& options() { return options_; }
  const RuntimeOptions& options() const { return options_; }
  ComponentFactoryRegistry& factories() { return factories_; }
  uint64_t seed() const { return params_.seed; }
  // Seeded jitter stream for the capped-exponential retry backoff. Only
  // consumed when a retry actually sleeps, so fault-free runs never draw
  // from it.
  Random& retry_rng() { return retry_rng_; }

  // --- transport ---

  // Routes `msg` from `source_machine` ("" for a co-located driver) to its
  // target process, charging marshalling, interception, attachment and
  // network costs. One attempt: kUnavailable surfaces to the caller, whose
  // interceptor implements retry (condition 4).
  Result<ReplyMessage> RouteCall(const std::string& source_machine,
                                 const CallMessage& msg);

  // Resolves a URI to its hosting process (nullptr if machine/process
  // unknown).
  Process* ResolveProcess(const std::string& uri);

  // --- overlapping sessions ---

  // Runs `sessions` as overlapping cooperative call chains (see
  // runtime/session.h): deterministic seeded interleaving, yielding only
  // at durability waits and busy contexts. Blocks until all complete.
  // While active, processes route their durability waits through the
  // session scheduler, so group commit (RuntimeOptions.group_commit) has
  // concurrent waiters to coalesce.
  void RunSessions(std::vector<std::function<void()>> sessions);

  // Non-null only inside RunSessions.
  SessionScheduler* session_scheduler() const { return session_scheduler_; }

  // --- execution-context tracking (one call stack per chain) ---
  Context* current_context() const {
    const std::vector<Context*>& stack = CurrentContextStack();
    return stack.empty() ? nullptr : stack.back();
  }
  void PushContext(Context* ctx) { CurrentContextStack().push_back(ctx); }
  void PopContext() { CurrentContextStack().pop_back(); }

  // --- aggregate statistics (benchmarks read deltas) ---
  uint64_t TotalForces() const;
  uint64_t TotalAppends() const;
  uint64_t TotalBytesForced() const;

  // Copies this run's aggregate log counters and per-call latency
  // distribution into a bench-report variant (obs/bench_reporter.h). The
  // Total*() counters sum the *live* writers — they reset when recovery
  // recreates a process — matching what the paper's tables charge to a
  // workload. Call after the workload, before the Simulation dies.
  void CaptureBench(obs::BenchVariant& variant) const;

 private:
  // The un-instrumented transport path; RouteCall wraps it with metrics and
  // trace spans.
  Result<ReplyMessage> RouteCallInner(const std::string& source_machine,
                                      const CallMessage& msg);

  void RecordNetworkDrop(const std::string& src, const std::string& dst,
                         const std::string& method, NetLeg leg);

  // The calling chain's context stack: the session's own stack on session
  // threads, the driver stack otherwise.
  std::vector<Context*>& CurrentContextStack();
  const std::vector<Context*>& CurrentContextStack() const;

  RuntimeOptions options_;
  SimulationParams params_;
  SimClock clock_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_{&clock_};
  StableStorage storage_;
  FailureInjector injector_;
  NetworkModel network_;
  ComponentFactoryRegistry factories_;
  std::map<std::string, std::unique_ptr<Machine>> machines_;
  std::vector<Context*> context_stack_;
  Random retry_rng_{0};
  uint64_t next_disk_seed_ = 101;
  SessionScheduler* session_scheduler_ = nullptr;
};

}  // namespace phoenix

#endif  // PHOENIX_RUNTIME_SIMULATION_H_
