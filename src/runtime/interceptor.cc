// Message interceptors (Figures 3 and 5): the server-side incoming path and
// the client-side outgoing path of a context, implementing Algorithms 1-5,
// duplicate elimination, retry-until-response, and replay suppression.

#include "common/macros.h"
#include "common/strings.h"
#include "core/retry.h"
#include "recovery/checkpoint_manager.h"
#include "recovery/recovery_service.h"
#include "runtime/context.h"
#include "runtime/logging_policy.h"
#include "runtime/machine.h"
#include "runtime/process.h"
#include "runtime/simulation.h"
#include "wal/log_reader.h"

namespace phoenix {
namespace {

// Consults the failure injector; on a hit the hosting process dies on the
// spot.
bool CrashHook(Process* proc, FailurePoint point) {
  return proc->MaybeCrash(point);
}

// Metric/trace label of the hosting process, e.g. "ma/1".
std::string ProcLabel(Process* proc) {
  return StrCat(proc->machine_name(), "/", proc->pid());
}

ComponentKind EffectiveClientKind(const CallMessage& msg) {
  if (msg.has_sender_info) return msg.sender_kind;
  // No attachment: a call with an ID is from a persistent component (the
  // baseline system attaches IDs but no kind info); without an ID the
  // caller must be external (§2.3).
  return msg.has_call_id ? ComponentKind::kPersistent
                         : ComponentKind::kExternal;
}

}  // namespace

// --- server side -----------------------------------------------------------

Result<ReplyMessage> Context::HandleIncoming(const CallMessage& msg) {
  Process* proc = process_;
  Simulation* sim = proc->simulation();
  const RuntimeOptions& opts = sim->options();

  if (!proc->alive()) return Status::Unavailable("process is down");
  while (serving_ || busy_) {
    // PWD requirement: a context serves one incoming call at a time. A
    // session finding the context occupied by *another* session parks
    // until it frees up; a reentrant cross-context cycle within one chain
    // is still a programming error.
    SessionScheduler* sched = sim->session_scheduler();
    int cur = sched != nullptr ? sched->current_session() : -1;
    if (cur < 0 || !serving_ || serving_session_ == cur) {
      return Status::FailedPrecondition(
          StrCat("context ", id_, " is busy (single-threaded component)"));
    }
    sched->ParkUntil([this] { return !serving_ && !busy_; });
    if (!proc->alive() || proc->FindContext(id_) != this) {
      // The process died (and possibly recovered into fresh contexts)
      // while we waited; surface a retriable error so the caller's retry
      // re-resolves the target.
      return Status::Unavailable("process restarted while call waited");
    }
  }
  serving_ = true;
  {
    SessionScheduler* sched = sim->session_scheduler();
    serving_session_ = sched != nullptr ? sched->current_session() : -1;
  }
  // Local class so every return path below releases the context.
  struct ServingGuard {
    Context* ctx;
    ~ServingGuard() {
      ctx->serving_ = false;
      ctx->serving_session_ = -1;
    }
  } serving_guard{this};

  ComponentKind server_kind = parent_kind();
  ComponentKind client_kind = EffectiveClientKind(msg);

  std::string obs_label = ProcLabel(proc);
  sim->metrics()
      .GetCounter("phoenix.intercept.incoming",
                  obs::LabelSet{{"process", obs_label}})
      .Increment();
  std::vector<obs::TraceArg> in_args = {
      obs::Arg("target", msg.target_uri),
      obs::Arg("context", static_cast<uint64_t>(id_))};
  if (msg.has_call_id && sim->tracer().enabled()) {
    in_args.push_back(obs::Arg("call_id", msg.call_id.ToString()));
  }
  obs::Tracer::Span obs_span = sim->tracer().StartSpan(
      "intercept", StrCat("in:", msg.method), obs_label,
      obs::SpanLink{msg.trace_id, msg.parent_span}, std::move(in_args));
  TraceFrameScope trace_frame(sim, obs_span);

  ComponentSlot* slot = parent_slot();
  const MethodEntry* method_entry = slot->methods.Find(msg.method);
  if (method_entry == nullptr) {
    ReplyMessage reply;
    reply.status = Status::NotFound(
        StrCat("component ", parent()->name(), " has no method ", msg.method));
    return reply;
  }
  bool ro_method = method_entry->traits.read_only;

  LogDecision in_dec = DecideIncoming(opts, server_kind, client_kind, ro_method);

  if (CrashHook(proc, FailurePoint::kBeforeIncomingLogged)) {
    return Status::Crashed("crash before incoming logged");
  }

  // Duplicate elimination (condition 3).
  if (in_dec.dedupe && msg.has_call_id) {
    const LastCallEntry* last =
        proc->last_calls().Lookup(msg.call_id.caller, id_);
    if (last != nullptr) {
      if (last->seq == msg.call_id.seq) {
        // Condition 3 hit: the retried call is answered from the last-call
        // table without re-executing the method.
        sim->metrics()
            .GetCounter("phoenix.intercept.dedupe_hits",
                        obs::LabelSet{{"process", obs_label}})
            .Increment();
        obs_span.AddArg(obs::Arg("dedupe", "hit"));
        return AnswerDuplicate(msg);
      }
      if (last->seq > msg.call_id.seq) {
        // By condition 1 the client recovered past this call already; a
        // smaller seq can only be a protocol violation.
        ReplyMessage reply;
        reply.status = Status::FailedPrecondition(
            StrCat("stale call id ", msg.call_id.ToString()));
        return reply;
      }
    }
  }

  if (in_dec.write) {
    IncomingCallRecord rec;
    rec.context_id = id_;
    if (msg.has_call_id) rec.call_id = msg.call_id;
    rec.method = msg.method;
    rec.args = msg.args;
    rec.client_kind = client_kind;
    proc->log().Append(rec);
    if (in_dec.force) {
      // Algorithms 1/3: message 1 must be stable before the call executes.
      Status durable = proc->WaitDurable(ForcePoint::kIncomingLogged);
      if (!durable.ok()) return durable;
      proc->checkpoints().MaybePublishCheckpoint();
    }
  }

  if (CrashHook(proc, FailurePoint::kAfterIncomingLogged)) {
    return Status::Crashed("crash after incoming logged");
  }

  Result<ReplyMessage> dispatched = Dispatch(msg);
  if (!dispatched.ok()) return dispatched;
  ReplyMessage reply = std::move(dispatched).value();

  if (CrashHook(proc, FailurePoint::kBeforeReplySend)) {
    return Status::Crashed("crash before reply send");
  }

  LogDecision rep_dec =
      DecideReplySend(opts, server_kind, client_kind, ro_method);
  if (rep_dec.write) {
    ReplySentRecord rec;
    rec.context_id = id_;
    if (msg.has_call_id) rec.call_id = msg.call_id;
    rec.long_form = rep_dec.long_form;
    if (rep_dec.long_form) rec.reply = reply.value;
    rec.status_code = static_cast<uint8_t>(reply.status.code());
    proc->log().Append(rec);
  }
  if (rep_dec.force) {
    // The reply externalizes state: everything logged so far (including
    // the optimized discipline's unwritten-but-implied receive records)
    // must be stable before message 2 leaves.
    Status durable = proc->WaitDurable(ForcePoint::kReplySend);
    if (!durable.ok()) return durable;
    proc->checkpoints().MaybePublishCheckpoint();
  }

  // Last call table update (the entry replaces any earlier one from the
  // same client — older entries are never needed, §2.3).
  if (in_dec.dedupe && msg.has_call_id) {
    LastCallEntry entry;
    entry.seq = msg.call_id.seq;
    entry.reply_in_memory = true;
    entry.reply = reply.value;
    entry.status_code = static_cast<uint8_t>(reply.status.code());
    entry.context_id = id_;
    proc->last_calls().Update(msg.call_id.caller, entry);
  }

  // §3.4: tell the client our kind unless it said it already knows.
  if (opts.logging_mode == LoggingMode::kOptimized && msg.has_sender_info &&
      !msg.client_knows_server) {
    reply.has_server_info = true;
    reply.server_kind = server_kind;
    reply.server_type_name = parent()->type_name();
  }

  ++incoming_calls_handled_;
  proc->CountIncomingCall();
  // Checkpoint cadence counts only logged calls: a read-only interaction
  // left no record and changed no state, so re-saving after it buys nothing.
  // Under async checkpointing this only marks the context dirty — the
  // background session does the capture off this chain.
  if (in_dec.write) {
    proc->checkpoints().OnIncomingCallFinished(*this);
  }

  // The reply leaves the process now: everything stable so far is
  // externalized and off-limits for torn-tail injection — including at the
  // kAfterReplySend crash, whose whole point is that message 2 got out.
  proc->NoteExternalization();
  if (CrashHook(proc, FailurePoint::kAfterReplySend)) {
    // The reply is already on the wire: deliver it, then the process is
    // found dead by the next caller.
    return reply;
  }
  return reply;
}

Result<ReplyMessage> Context::AnswerDuplicate(const CallMessage& msg) {
  Process* proc = process_;
  LastCallEntry* entry =
      proc->last_calls().LookupMutable(msg.call_id.caller, id_);
  PHX_CHECK(entry != nullptr);

  if (!entry->reply_in_memory) {
    // Post-recovery entry known only by LSN: fetch the reply from the log.
    if (entry->reply_lsn == kInvalidLsn) {
      return Status::Internal(
          StrCat("no reply available for duplicate ", msg.call_id.ToString()));
    }
    PHX_ASSIGN_OR_RETURN(LogRecord record,
                         proc->log().ReadRecordAtLsn(entry->reply_lsn));
    if (const auto* lcr = std::get_if<LastCallReplyRecord>(&record)) {
      entry->reply = lcr->reply;
      entry->status_code = lcr->status_code;
    } else if (const auto* rs = std::get_if<ReplySentRecord>(&record);
               rs != nullptr && rs->long_form) {
      entry->reply = rs->reply;
      entry->status_code = rs->status_code;
    } else {
      return Status::Corruption("reply LSN does not hold a reply record");
    }
    entry->reply_in_memory = true;
  }

  ReplyMessage reply;
  reply.value = entry->reply;
  if (entry->status_code != 0) {
    reply.status = Status(static_cast<StatusCode>(entry->status_code),
                          "replayed failure reply");
  }
  const RuntimeOptions& opts = proc->simulation()->options();
  if (opts.logging_mode == LoggingMode::kOptimized && msg.has_sender_info &&
      !msg.client_knows_server) {
    reply.has_server_info = true;
    reply.server_kind = parent_kind();
    reply.server_type_name = parent()->type_name();
  }
  return reply;
}

Result<ReplyMessage> Context::Dispatch(const CallMessage& msg) {
  Process* proc = process_;
  Simulation* sim = proc->simulation();

  ComponentSlot* slot = parent_slot();
  const MethodEntry* entry = slot->methods.Find(msg.method);
  PHX_CHECK(entry != nullptr);  // checked by callers

  busy_ = true;
  multi_call_.Reset();
  sim->PushContext(this);
  Result<Value> result = entry->handler(msg.args);
  sim->PopContext();
  busy_ = false;

  if (!result.ok() && result.status().IsCrashed()) return result.status();
  if (!proc->alive()) return Status::Crashed("process died during dispatch");

  ReplyMessage reply;
  if (result.ok()) {
    reply.value = std::move(result).value();
  } else {
    reply.status = std::move(result).status();
  }
  return reply;
}

Result<Value> Context::LocalDispatch(ComponentSlot* slot,
                                     const std::string& method,
                                     const ArgList& args) {
  // Same-context call (parent <-> subordinate): an ordinary local call, not
  // intercepted, not logged (§3.2.1 / Figure 6).
  Simulation* sim = process_->simulation();
  sim->clock().AdvanceMs(sim->costs().local_call_ms);
  const MethodEntry* entry = slot->methods.Find(method);
  if (entry == nullptr) {
    return Status::NotFound(StrCat("component ", slot->instance->name(),
                                   " has no method ", method));
  }
  return entry->handler(args);
}

// --- client side -----------------------------------------------------------

Result<Value> Context::OutgoingCall(Component* from,
                                    const std::string& server_uri,
                                    const std::string& method, ArgList args) {
  Process* proc = process_;
  Simulation* sim = proc->simulation();
  const RuntimeOptions& opts = sim->options();

  if (!proc->alive()) return Status::Crashed("process is down");

  PHX_ASSIGN_OR_RETURN(ParsedUri target, ParseComponentUri(server_uri));

  // Same-context fast path: plain local call.
  if (target.machine == proc->machine_name() &&
      target.process_id == proc->pid()) {
    if (ComponentSlot* local = FindSlot(target.component_name)) {
      return LocalDispatch(local, method, args);
    }
  }

  // Subordinates act on behalf of their parent: the context is the logging
  // principal (its parent id + outgoing counter form the call IDs).
  ComponentKind client_kind = from->kind() == ComponentKind::kSubordinate
                                  ? parent_kind()
                                  : from->kind();

  std::string obs_label = ProcLabel(proc);
  sim->metrics()
      .GetCounter("phoenix.intercept.outgoing",
                  obs::LabelSet{{"process", obs_label}})
      .Increment();
  // Attach under the chain's current frame (the enclosing in:/call span);
  // a chain-less caller (a driver or background session) roots a new trace.
  obs::SpanLink out_parent = sim->Current();
  if (sim->tracer().enabled() && out_parent.trace_id == 0) {
    out_parent = obs::SpanLink{sim->tracer().NewTraceId(), 0};
  }
  obs::Tracer::Span obs_span = sim->tracer().StartSpan(
      "intercept", StrCat("out:", method), obs_label, out_parent,
      {obs::Arg("server", server_uri),
       obs::Arg("context", static_cast<uint64_t>(id_))});
  TraceFrameScope trace_frame(sim, obs_span);

  const RemoteTypeInfo* info = proc->remote_types().Lookup(server_uri);
  bool server_known = info != nullptr;
  ComponentKind server_kind =
      server_known ? info->kind : ComponentKind::kPersistent;
  bool ro_method = false;
  if (server_known) {
    const MethodTraits* traits =
        sim->factories().LookupMethodTraits(info->type_name, method);
    ro_method = traits != nullptr && traits->read_only;
  }

  OutgoingDecision dec =
      DecideOutgoing(opts, client_kind, server_known, server_kind, ro_method,
                     &multi_call_, server_uri);

  // Condition 2: deterministically derived ID. The sequence number is
  // consumed for every cross-context call so replay stays aligned however
  // much the remote-type knowledge differs between runs.
  uint64_t seq = ++last_outgoing_seq_;
  CallId call_id{ClientKey{proc->machine_name(), proc->pid(), parent_id_},
                 seq};
  if (obs_span.span_id() != 0) {
    obs_span.AddArg(obs::Arg("call_id", call_id.ToString()));
  }

  // Replay suppression (Figure 5): answer from the log when we have the
  // logged reply for this sequence number.
  if (replaying_ && replay_feed_ != nullptr) {
    auto it = replay_feed_->replies.find(seq);
    if (it != replay_feed_->replies.end()) {
      const ReplyReceivedRecord& rec = it->second;
      // Condition 5: the send is suppressed, the logged reply is returned.
      sim->metrics()
          .GetCounter("phoenix.intercept.replay_suppressed",
                      obs::LabelSet{{"process", obs_label}})
          .Increment();
      obs_span.AddArg(obs::Arg("replay", "suppressed"));
      if (rec.status_code != 0) {
        return Status(static_cast<StatusCode>(rec.status_code),
                      "replayed failure reply");
      }
      return rec.reply;
    }
    // No logged reply: replay has caught up; this call goes out for real
    // (same ID — the server eliminates the duplicate if it saw it before).
    replay_feed_->went_live = true;
  }

  if (dec.write) {
    OutgoingCallRecord rec;
    rec.context_id = id_;
    rec.call_id = call_id;
    rec.server_uri = server_uri;
    rec.method = method;
    rec.args = args;
    proc->log().Append(rec);
  }
  if (dec.force) {
    // The send commits our state: everything before it must be stable.
    Status durable = proc->WaitDurable(ForcePoint::kOutgoingSend);
    if (!durable.ok()) return durable;
    proc->checkpoints().MaybePublishCheckpoint();
  }

  if (CrashHook(proc, FailurePoint::kBeforeOutgoingSend)) {
    return Status::Crashed("crash before outgoing send");
  }

  CallMessage out;
  out.target_uri = server_uri;
  out.method = method;
  out.args = std::move(args);
  if (dec.attach_call_id) {
    out.has_call_id = true;
    out.call_id = call_id;
  }
  if (opts.logging_mode == LoggingMode::kOptimized &&
      IsPhoenixKind(client_kind)) {
    out.has_sender_info = true;
    out.sender_kind = client_kind;
    out.sender_type_name = parent()->type_name();
    out.client_knows_server = server_known;
  }
  if (obs_span.span_id() != 0) {
    // The receiver's spans (and each retry's call span) parent under this
    // out: span. Not part of the modeled wire size — see message.h.
    out.has_trace = true;
    out.trace_id = obs_span.trace_id();
    out.parent_span = obs_span.span_id();
  }

  Result<ReplyMessage> sent = SendWithRetry(std::move(out));
  if (!sent.ok()) return std::move(sent).status();
  if (!proc->alive()) return Status::Crashed("process died during call");
  ReplyMessage reply = std::move(sent).value();

  if (reply.has_server_info) {
    proc->remote_types().Learn(server_uri, reply.server_kind,
                               reply.server_type_name);
  }
  const RemoteTypeInfo* learned = proc->remote_types().Lookup(server_uri);
  ComponentKind reply_server_kind =
      learned != nullptr ? learned->kind : ComponentKind::kPersistent;

  LogDecision rdec =
      DecideReplyReceived(opts, client_kind, reply_server_kind,
                          learned != nullptr ? ro_method : false);
  if (rdec.write) {
    ReplyReceivedRecord rec;
    rec.context_id = id_;
    rec.seq = seq;
    rec.reply = reply.value;
    rec.status_code = static_cast<uint8_t>(reply.status.code());
    rec.server_kind = reply_server_kind;
    proc->log().Append(rec);
    if (rdec.force) {
      // Algorithm 1 forces message 4 too (the baseline's fourth force).
      Status durable = proc->WaitDurable(ForcePoint::kReplyReceived);
      if (!durable.ok()) return durable;
      proc->checkpoints().MaybePublishCheckpoint();
    }
  }

  if (CrashHook(proc, FailurePoint::kAfterOutgoingReply)) {
    return Status::Crashed("crash after outgoing reply");
  }

  if (!reply.status.ok()) return reply.status;
  return reply.value;
}

Result<ReplyMessage> Context::SendWithRetry(CallMessage msg) {
  Process* proc = process_;
  Simulation* sim = proc->simulation();
  const RuntimeOptions& opts = sim->options();

  RetryBackoff backoff(opts);
  for (int attempt = 0; attempt <= opts.max_call_retries; ++attempt) {
    // Every attempt may externalize state: once the message leaves this
    // process, the bytes forced so far are observable by the outside world
    // and a torn tail may no longer eat them.
    proc->NoteExternalization();
    Result<ReplyMessage> result = sim->RouteCall(proc->machine_name(), msg);
    if (result.ok()) return result;
    if (!result.status().IsUnavailable()) return result;
    if (!proc->alive()) return Status::Crashed("caller died while sending");

    // Condition 4 retry: same call ID, after backoff and a server restart
    // (§2.5). Backoff is capped-exponential with seeded jitter; when the
    // per-call budget runs out the caller gives up early.
    double delay = backoff.NextDelayMs(sim->retry_rng());
    if (delay < 0.0) {
      return Status::Unavailable(
          StrCat("no response from ", msg.target_uri, " within ",
                 "retry budget"));
    }
    sim->metrics()
        .GetCounter("phoenix.intercept.retries",
                    obs::LabelSet{{"process", ProcLabel(proc)}})
        .Increment();
    sim->tracer().Instant("intercept", "retry", ProcLabel(proc),
                          sim->Current(),
                          {obs::Arg("method", msg.method),
                           obs::Arg("attempt", attempt + 1),
                           obs::Arg("backoff_ms", delay)});
    sim->clock().AdvanceMs(delay);
    Process* target = sim->ResolveProcess(msg.target_uri);
    if (target != nullptr) {
      Status restart =
          target->machine()->recovery_service().EnsureProcessAlive(
              target->pid());
      if (!restart.ok()) return restart;
    }
  }
  return Status::Unavailable(
      StrCat("no response from ", msg.target_uri, " after retries"));
}

// --- replay ----------------------------------------------------------------

Result<ReplyMessage> Context::ReplayIncoming(const CallMessage& msg,
                                             ReplayFeed feed) {
  Process* proc = process_;
  Simulation* sim = proc->simulation();
  sim->clock().AdvanceMs(sim->costs().recovery_replay_call_ms);

  // Replayed calls join the causal tree under the recovery manager's
  // replay-phase span (pushed onto the chain stack by RecoveryManager).
  obs::Tracer::Span obs_span = sim->tracer().StartSpan(
      "intercept", StrCat("replay:", msg.method), ProcLabel(proc),
      sim->Current(), {obs::Arg("context", static_cast<uint64_t>(id_))});
  TraceFrameScope trace_frame(sim, obs_span);

  replaying_ = true;
  replay_feed_ = &feed;
  Result<ReplyMessage> reply = Dispatch(msg);
  replay_feed_ = nullptr;
  replaying_ = false;

  if (!reply.ok()) return reply;

  // Condition 5: the reply goes to the recovery manager, not to the client;
  // but the last call table must reflect it so a retry gets this answer.
  if (msg.has_call_id &&
      EffectiveClientKind(msg) == ComponentKind::kPersistent) {
    LastCallEntry entry;
    entry.seq = msg.call_id.seq;
    entry.reply_in_memory = true;
    entry.reply = reply->value;
    entry.status_code = static_cast<uint8_t>(reply->status.code());
    entry.context_id = id_;
    proc->last_calls().Update(msg.call_id.caller, entry);
  }
  ++incoming_calls_handled_;
  return reply;
}

Status Context::RunInitialize(const ArgList& ctor_args) {
  Simulation* sim = process_->simulation();
  busy_ = true;
  multi_call_.Reset();
  sim->PushContext(this);
  Status status = parent()->Initialize(ctor_args);
  sim->PopContext();
  busy_ = false;
  if (!process_->alive()) return Status::Crashed("process died in Initialize");
  if (status.ok()) parent_initialized_ = true;
  return status;
}

Status Context::ReplayCreation(const ArgList& ctor_args, ReplayFeed feed) {
  Simulation* sim = process_->simulation();
  sim->clock().AdvanceMs(sim->costs().recovery_replay_call_ms);
  replaying_ = true;
  replay_feed_ = &feed;
  Status status = RunInitialize(ctor_args);
  replay_feed_ = nullptr;
  replaying_ = false;
  return status;
}

}  // namespace phoenix
