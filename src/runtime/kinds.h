#ifndef PHOENIX_RUNTIME_KINDS_H_
#define PHOENIX_RUNTIME_KINDS_H_

#include <cstdint>

namespace phoenix {

// Component kinds (Sections 2.2 and 3.2). Programmers declare a kind per
// component — the analogue of the paper's declarative .NET attributes — and
// the interceptors pick a logging discipline from the (client kind, server
// kind, method traits) triple.
enum class ComponentKind : uint8_t {
  // Not managed by Phoenix: no logging, no guarantees (default for plain
  // callers such as a console program).
  kExternal = 0,
  // Stateful, persistent across crashes via logging + replay.
  kPersistent = 1,
  // Persistent, but only callable from its parent component (and the
  // parent's other subordinates); lives in the parent's context, so calls to
  // it are plain local calls — never intercepted, never logged (§3.2.1).
  kSubordinate = 2,
  // Stateless and purely functional: calls nothing (or only functional
  // components); same arguments always produce the same reply (§3.2.2).
  kFunctional = 3,
  // Stateless but may read persistent components, so replies are not
  // repeatable (§3.2.3).
  kReadOnly = 4,
};

// Returns the canonical name ("external", "persistent", ...).
const char* ComponentKindName(ComponentKind kind);

// True for kinds whose state must be recovered after a crash.
inline bool IsStatefulKind(ComponentKind kind) {
  return kind == ComponentKind::kPersistent ||
         kind == ComponentKind::kSubordinate;
}

// True for kinds managed by the Phoenix runtime (everything but external).
inline bool IsPhoenixKind(ComponentKind kind) {
  return kind != ComponentKind::kExternal;
}

}  // namespace phoenix

#endif  // PHOENIX_RUNTIME_KINDS_H_
