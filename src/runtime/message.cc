#include "runtime/message.h"

namespace phoenix {

size_t CallMessage::EncodedSizeHint() const {
  size_t n = 16 + target_uri.size() + method.size();
  for (const Value& v : args) n += v.EncodedSizeHint();
  if (has_call_id) n += 16 + call_id.caller.machine.size();
  if (has_sender_info) n += 4 + sender_type_name.size();
  return n;
}

size_t ReplyMessage::EncodedSizeHint() const {
  size_t n = 8 + value.EncodedSizeHint() + status.message().size();
  if (has_server_info) n += 4 + server_type_name.size();
  return n;
}

}  // namespace phoenix
