#ifndef PHOENIX_RUNTIME_CALL_ID_H_
#define PHOENIX_RUNTIME_CALL_ID_H_

#include <cstdint>
#include <string>
#include <tuple>

#include "common/result.h"
#include "serde/codec.h"

namespace phoenix {

// Identifies a *caller*: the first three parts of the paper's globally
// unique method-call ID (§2.3) — machine name, logical process ID assigned
// by the recovery service, and logical component ID assigned by the runtime.
// Logical IDs survive failures, which is what makes duplicate detection work
// across restarts.
struct ClientKey {
  std::string machine;
  uint32_t process_id = 0;
  uint64_t component_id = 0;

  friend bool operator==(const ClientKey&, const ClientKey&) = default;
  friend auto operator<=>(const ClientKey& a, const ClientKey& b) {
    return std::tie(a.machine, a.process_id, a.component_id) <=>
           std::tie(b.machine, b.process_id, b.component_id);
  }

  std::string ToString() const;
  void EncodeTo(Encoder& enc) const;
  static Result<ClientKey> DecodeFrom(Decoder& dec);
};

// The globally unique ID attached to every outgoing method call (§2.3):
// ClientKey plus the caller's local method-call sequence number, which is
// incremented for every outgoing call of a context and restored from the log
// after a crash — so a retried call after recovery carries the *same* ID and
// the server's last-call table can eliminate the duplicate.
struct CallId {
  ClientKey caller;
  uint64_t seq = 0;

  friend bool operator==(const CallId&, const CallId&) = default;

  std::string ToString() const;
  void EncodeTo(Encoder& enc) const;
  static Result<CallId> DecodeFrom(Decoder& dec);
};

// Component URI, e.g. "phx://machineA/1/Bookstore1". Component references
// held in fields are checkpointed as URIs and re-resolved on restore (§4.2).
std::string MakeComponentUri(const std::string& machine, uint32_t process_id,
                             const std::string& component_name);

// Splits a URI back into (machine, process_id, component_name).
struct ParsedUri {
  std::string machine;
  uint32_t process_id = 0;
  std::string component_name;
};
Result<ParsedUri> ParseComponentUri(const std::string& uri);

}  // namespace phoenix

#endif  // PHOENIX_RUNTIME_CALL_ID_H_
