#include "runtime/process.h"

#include <algorithm>

#include "common/macros.h"
#include "common/strings.h"
#include "recovery/checkpoint_manager.h"
#include "recovery/recovery_service.h"
#include "runtime/machine.h"
#include "runtime/simulation.h"

namespace phoenix {
namespace {

// The built-in activator (component id 0 of every process). Component
// creation is one of its persistent method calls, so creations ride on the
// ordinary logging / duplicate-elimination / replay machinery. Create is
// idempotent per component name, which is what makes replaying it safe.
class ActivatorComponent : public Component {
 public:
  explicit ActivatorComponent(Process* process) : process_(process) {}

  void RegisterMethods(MethodRegistry& methods) override {
    methods.Register("Create", [this](const ArgList& args) {
      return DoCreate(args);
    });
  }

 private:
  Result<Value> DoCreate(const ArgList& args) {
    // args: type_name, name, kind, ctor_args(list)
    if (args.size() != 4 || args[0].kind() != Value::Kind::kString ||
        args[1].kind() != Value::Kind::kString ||
        args[2].kind() != Value::Kind::kInt ||
        args[3].kind() != Value::Kind::kList) {
      return Status::InvalidArgument(
          "Create(type_name, name, kind, ctor_args)");
    }
    auto kind = static_cast<ComponentKind>(args[2].AsInt());
    PHX_ASSIGN_OR_RETURN(
        std::string uri,
        process_->CreateComponent(args[0].AsString(), args[1].AsString(),
                                  kind, args[3].AsList()));
    return Value(uri);
  }

  Process* process_;
};

}  // namespace

Process::Process(Machine* machine, uint32_t pid)
    : machine_(machine), pid_(pid) {
  Start();
}

Process::~Process() = default;

Simulation* Process::simulation() const { return machine_->simulation(); }

const std::string& Process::machine_name() const { return machine_->name(); }

std::string Process::log_name() const {
  return StrCat(machine_->name(), "/proc", pid_, ".log");
}

std::string Process::ActivatorUri() const {
  return MakeComponentUri(machine_name(), pid_, kActivatorName);
}

Status Process::WaitDurable(ForcePoint reason) {
  if (!alive_) return Status::Crashed("process is down");
  // Recovery must not yield: its replay is itself driven from a chain that
  // other sessions may be parked behind.
  if (!log_->sharded()) {
    return log_->WaitDurable(log_->next_lsn(), reason,
                             /*allow_park=*/!recovering_);
  }
  // Sharded WAL: force only the shards this chain has appended to since
  // its last wait (a cross-shard send must not pay for other chains'
  // shards), in ascending shard order so the interleaving is
  // deterministic. While the chain is parked only other chains run, and
  // their appends accrue to their own masks — so the mask read here is
  // stable across the loop.
  int key = CurrentChainKey();
  uint64_t mask = 0;
  if (auto it = chain_touched_shards_.find(key);
      it != chain_touched_shards_.end()) {
    mask = it->second;
  }
  for (uint32_t s = 0; mask != 0 && s < log_->shard_count(); ++s) {
    if ((mask & (uint64_t{1} << s)) == 0) continue;
    Status status =
        log_->WaitDurableShard(s, reason, /*allow_park=*/!recovering_);
    if (!status.ok()) return status;
    if (!alive_) return Status::Crashed("process is down");
  }
  chain_touched_shards_.erase(key);
  return Status::OK();
}

void Process::NoteShardAppend(uint32_t shard) {
  chain_touched_shards_[CurrentChainKey()] |= uint64_t{1} << shard;
}

int Process::CurrentChainKey() const {
  SessionScheduler* scheduler = simulation()->session_scheduler();
  return scheduler != nullptr ? scheduler->current_session() : -1;
}

bool Process::MaybeCrash(FailurePoint point) {
  Simulation* sim = simulation();
  if (recovering_ && !sim->options().inject_failures_during_recovery) {
    return false;
  }
  if (sim->injector().ShouldCrash(machine_name(), pid_, point)) {
    Kill();
    return true;
  }
  return false;
}

void Process::NoteExternalization() {
  uint64_t stable_end = log_->stable_end_lsn();
  if (stable_end > externalized_stable_lsn_) {
    externalized_stable_lsn_ = stable_end;
  }
  // Sharded WAL: the observable world may reflect records on any shard, so
  // every shard's floor conservatively rises to its current stable end.
  for (uint32_t s = 0; s < shard_externalized_floor_.size(); ++s) {
    uint64_t shard_end = log_->shard_stable_end(s);
    if (shard_end > shard_externalized_floor_[s]) {
      shard_externalized_floor_[s] = shard_end;
    }
  }
}

void Process::Kill() {
  if (!alive_) return;
  alive_ = false;
  ++crash_count_;
  pending_flusher_ = nullptr;
  chain_touched_shards_.clear();
  // Everything volatile dies with the process: unforced log records, the
  // contexts (component states), and the global tables of Table 1.
  // DropBuffer also aborts the commit pipeline so sessions parked on a
  // durability wait wake and unwind with Crashed.
  log_->DropBuffer();
  MaybeTearStableTail();
  // Contexts go to the graveyard, not straight to the destructor: a parked
  // session may still be executing inside one of them.
  if (!contexts_.empty()) {
    zombie_contexts_.push_back(std::move(contexts_));
  }
  contexts_.clear();
  component_to_context_.clear();
  last_calls_.Clear();
  remote_types_.Clear();
  next_parent_id_ = 1;
  Simulation* sim = simulation();
  std::string label = StrCat(machine_name(), "/", pid_);
  sim->metrics()
      .GetCounter("phoenix.process.crashes", obs::LabelSet{{"process", label}})
      .Increment();
  sim->tracer().Instant("process", "crash", label, sim->Current(),
                        {obs::Arg("crash_count", crash_count_)});
  // Post-mortem: the flight recorder's last events per component, written
  // out while they still exist (the rings survive in the tracer, but a
  // later crash would overwrite the file with fresher context anyway).
  sim->DumpFlightRecorderOnCrash();
  machine_->recovery_service().NotifyCrashed(pid_);
}

void Process::MaybeTearStableTail() {
  uint64_t tear = simulation()->injector().MaybeTearBytes();
  if (tear == 0) return;
  InjectTornTail(tear);
}

void Process::InjectTornTail(uint64_t tear) {
  Simulation* sim = simulation();
  if (tear == 0) return;
  // Sharded WAL: tear the shard with the largest un-externalized stable
  // span (ties to the lowest shard id); the other shards keep their tails,
  // which is exactly the case the per-shard salvage path must handle.
  uint32_t shard = 0;
  if (log_->sharded()) {
    uint64_t best_span = 0;
    for (uint32_t s = 0; s < log_->shard_count(); ++s) {
      uint64_t shard_end = log_->shard_stable_end(s);
      uint64_t shard_floor =
          std::max(shard_externalized_floor_.size() > s
                       ? shard_externalized_floor_[s]
                       : 0,
                   log_->shard_head_base(s));
      uint64_t span = shard_end > shard_floor ? shard_end - shard_floor : 0;
      if (span > best_span) {
        best_span = span;
        shard = s;
      }
    }
    if (best_span == 0) return;  // nothing un-externalized on any shard
  }
  uint64_t stable_end = log_->sharded() ? log_->shard_stable_end(shard)
                                        : log_->stable_end_lsn();
  uint64_t floor =
      log_->sharded()
          ? std::max(shard_externalized_floor_[shard],
                     log_->shard_head_base(shard))
          : std::max(externalized_stable_lsn_, log_->head_base());
  uint64_t target = stable_end > tear ? stable_end - tear : 0;
  if (target < floor) target = floor;
  if (target >= stable_end) return;  // nothing un-externalized to tear
  sim->storage().TruncateLog(log_->shard_log_name(shard), target);
  std::string label = StrCat(machine_name(), "/", pid_);
  sim->metrics()
      .GetCounter("phoenix.storage.torn_tail_injected",
                  obs::LabelSet{{"process", label}})
      .Increment();
  sim->tracer().Instant("storage", "torn_tail_injected", label,
                        {obs::Arg("torn_at_lsn", target),
                         obs::Arg("bytes_torn", stable_end - target)});
  // Start() recreates the LogWriter from the (now shorter) storage image,
  // so the writer realigns automatically at restart.
}

void Process::Start() {
  Simulation* sim = simulation();
  if (log_ != nullptr) {
    // Same zombie rule as the contexts in Kill(): a parked session may
    // resume inside the old manager's commit pipeline.
    zombie_logs_.push_back(std::move(log_));
  }
  uint32_t shards = std::min<uint32_t>(
      std::max<uint32_t>(sim->options().wal_shards, 1), 64);
  log_ = std::make_unique<LogManager>(log_name(), &sim->storage(),
                                      &machine_->disk(), &sim->clock(),
                                      &sim->costs(), shards,
                                      sim->options().wal_shard_seed);
  // The registry-backed log series survive this restart (the LogManager's
  // own per-instance stats do not).
  log_->BindObs(&sim->metrics(), &sim->tracer(),
                StrCat(machine_name(), "/", pid_));
  log_->SetTraceScope(sim);
  for (uint32_t s = 0; s < log_->shard_count(); ++s) {
    log_->pipeline(s).SetGroupCommit(sim->options().group_commit);
    log_->pipeline(s).SetScheduler(sim->session_scheduler());
    log_->pipeline(s).SetGroupCommitPolicy(
        sim->options().group_commit_max_wait_ms,
        sim->options().group_commit_max_batch);
    log_->pipeline(s).SetCrashHook(
        [this] { return MaybeCrash(FailurePoint::kDuringGroupFlush); });
  }
  // Everything stable at (re)start is conservatively treated as already
  // externalized: only bytes forced after this point without leaving the
  // process are candidates for a future torn tail.
  externalized_stable_lsn_ = log_->stable_end_lsn();
  shard_externalized_floor_.clear();
  chain_touched_shards_.clear();
  if (log_->sharded()) {
    shard_externalized_floor_.resize(log_->shard_count());
    for (uint32_t s = 0; s < log_->shard_count(); ++s) {
      shard_externalized_floor_[s] = log_->shard_stable_end(s);
    }
    log_->SetAppendObserver(
        [this](uint32_t shard) { NoteShardAppend(shard); });
  }
  checkpoints_ = std::make_unique<CheckpointManager>(this);
  contexts_.clear();
  component_to_context_.clear();
  last_calls_.Clear();
  remote_types_.Clear();
  next_parent_id_ = 1;
  alive_ = true;

  // The activator lives in context 0 and is never logged as created — it is
  // reconstructed identically at every start.
  Context* ctx = CreateRawContext(0);
  ctx->AddComponent(std::make_unique<ActivatorComponent>(this), "_Activator",
                    kActivatorName, ComponentKind::kPersistent, 0);
  component_to_context_[kActivatorName] = 0;
}

Result<std::string> Process::CreateComponent(const std::string& type_name,
                                             const std::string& name,
                                             ComponentKind kind,
                                             ArgList ctor_args) {
  if (!alive_) return Status::Unavailable("process is down");
  if (kind == ComponentKind::kExternal) {
    return Status::InvalidArgument(
        "external components are not created inside Phoenix processes");
  }
  if (kind == ComponentKind::kSubordinate) {
    return Status::InvalidArgument(
        "subordinates are created by their parent via CreateSubordinate");
  }
  // Idempotent per name: replayed/retried Create calls find the first one.
  if (auto it = component_to_context_.find(name);
      it != component_to_context_.end()) {
    Context* ctx = FindContext(it->second);
    ComponentSlot* slot = ctx->FindSlot(name);
    PHX_CHECK(slot != nullptr);
    return slot->instance->uri();
  }

  Simulation* sim = simulation();
  PHX_ASSIGN_OR_RETURN(std::unique_ptr<Component> instance,
                       sim->factories().Create(type_name));

  uint64_t id = next_parent_id_++;
  Context* ctx = CreateRawContext(id);
  Component* comp =
      ctx->AddComponent(std::move(instance), type_name, name, kind, id);
  component_to_context_[name] = id;

  // The creation record is the context's replay origin (§4.4 treats it like
  // an incoming call). Not forced: the activator's reply force covers it.
  CreationRecord rec;
  rec.context_id = id;
  rec.type_name = type_name;
  rec.name = name;
  rec.kind = kind;
  rec.ctor_args = ctor_args;
  uint64_t lsn = log_->Append(rec);
  ctx->set_creation_lsn(lsn);

  Status init = ctx->RunInitialize(ctor_args);
  if (init.IsCrashed()) return init;
  if (!init.ok()) return init;
  return comp->uri();
}

Context* Process::FindContext(uint64_t context_id) {
  auto it = contexts_.find(context_id);
  return it == contexts_.end() ? nullptr : it->second.get();
}

Context* Process::FindContextOfComponent(const std::string& name) {
  auto it = component_to_context_.find(name);
  return it == component_to_context_.end() ? nullptr
                                           : FindContext(it->second);
}

ComponentSlot* Process::FindComponent(const std::string& name) {
  Context* ctx = FindContextOfComponent(name);
  return ctx == nullptr ? nullptr : ctx->FindSlot(name);
}

void Process::IndexComponentName(const std::string& name,
                                 uint64_t context_id) {
  component_to_context_[name] = context_id;
}

Context* Process::CreateRawContext(uint64_t context_id) {
  auto [it, inserted] = contexts_.emplace(
      context_id, std::make_unique<Context>(this, context_id));
  PHX_CHECK(inserted);
  return it->second.get();
}

Result<ReplyMessage> Process::DeliverCall(const CallMessage& msg) {
  if (!alive_) return Status::Unavailable("process is down");
  PHX_ASSIGN_OR_RETURN(ParsedUri target, ParseComponentUri(msg.target_uri));
  Context* ctx = FindContextOfComponent(target.component_name);
  if (ctx == nullptr) {
    return Status::NotFound("no component " + target.component_name);
  }
  if (recovering_ && pending_flusher_ != nullptr) {
    // Finish recovering the target context before serving live traffic.
    pending_flusher_(ctx->id());
    if (!alive_) return Status::Unavailable("process is down");
    ctx = FindContextOfComponent(target.component_name);
    if (ctx == nullptr) {
      return Status::NotFound("no component " + target.component_name);
    }
  }
  ComponentSlot* slot = ctx->FindSlot(target.component_name);
  PHX_CHECK(slot != nullptr);
  if (slot->instance->kind() == ComponentKind::kSubordinate) {
    // §3.2.1: only the parent accepts calls from outside the context.
    return Status::FailedPrecondition(
        StrCat("subordinate ", target.component_name,
               " only serves calls from inside its context"));
  }
  return ctx->HandleIncoming(msg);
}

}  // namespace phoenix
