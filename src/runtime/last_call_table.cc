#include "runtime/last_call_table.h"

namespace phoenix {

const LastCallEntry* LastCallTable::Lookup(const ClientKey& client,
                                           uint64_t context_id) const {
  auto it = entries_.find(Key(client, context_id));
  return it == entries_.end() ? nullptr : &it->second;
}

LastCallEntry* LastCallTable::LookupMutable(const ClientKey& client,
                                            uint64_t context_id) {
  auto it = entries_.find(Key(client, context_id));
  return it == entries_.end() ? nullptr : &it->second;
}

void LastCallTable::Update(const ClientKey& client, LastCallEntry entry) {
  entries_[Key(client, entry.context_id)] = std::move(entry);
}

std::vector<std::pair<ClientKey, LastCallEntry*>>
LastCallTable::EntriesForContext(uint64_t context_id) {
  std::vector<std::pair<ClientKey, LastCallEntry*>> out;
  for (auto& [key, entry] : entries_) {
    if (entry.context_id == context_id) out.emplace_back(key.first, &entry);
  }
  return out;
}

}  // namespace phoenix
