#ifndef PHOENIX_RUNTIME_LAST_CALL_TABLE_H_
#define PHOENIX_RUNTIME_LAST_CALL_TABLE_H_

#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "runtime/call_id.h"
#include "serde/value.h"
#include "wal/log_record.h"

namespace phoenix {

// One entry of the last call table (Table 1): the last method call a given
// persistent client made to a given context, with its reply held in memory
// and/or as an LSN into the log. Earlier calls need no entries — by
// condition 1 the client recovers itself past them (§2.3).
//
// The paper keeps a single entry per client; we key by (client, serving
// context). The paper's keying relies on every send forcing the previous
// reply records, which the §3.5 multi-call optimization deliberately drops —
// its correctness argument ("the nondeterminism is already captured at the
// respective servers in their last call tables") needs the reply of the last
// call to EACH server component to survive, exactly what §3.5 alludes to
// with "remember not only the last call for each component". Per-(client,
// context) entries preserve every paper guarantee and make the optimization
// sound.
struct LastCallEntry {
  uint64_t seq = 0;  // last call_id.seq from this client to this context
  bool reply_in_memory = false;
  Value reply;
  uint8_t status_code = 0;
  uint64_t reply_lsn = kInvalidLsn;  // LastCallReplyRecord, if logged
  uint64_t context_id = 0;           // the context that served the call
};

// Process-wide duplicate-elimination table, shared by all contexts in the
// process (§4.1).
class LastCallTable {
 public:
  LastCallTable() = default;

  LastCallTable(const LastCallTable&) = delete;
  LastCallTable& operator=(const LastCallTable&) = delete;

  // nullptr when (client, context) has no entry.
  const LastCallEntry* Lookup(const ClientKey& client,
                              uint64_t context_id) const;
  LastCallEntry* LookupMutable(const ClientKey& client, uint64_t context_id);

  // Installs/overwrites the entry for (client, entry.context_id).
  void Update(const ClientKey& client, LastCallEntry entry);

  // Entries served by context `context_id`, for context state saving
  // (§4.1: "the last call table also keeps the list of last call entries
  // associated with every context").
  std::vector<std::pair<ClientKey, LastCallEntry*>> EntriesForContext(
      uint64_t context_id);

  // All entries, keyed by (client, context id) — checkpointing iterates.
  using Key = std::pair<ClientKey, uint64_t>;
  const std::map<Key, LastCallEntry>& entries() const { return entries_; }

  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }

 private:
  std::map<Key, LastCallEntry> entries_;
};

}  // namespace phoenix

#endif  // PHOENIX_RUNTIME_LAST_CALL_TABLE_H_
