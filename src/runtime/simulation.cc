#include "runtime/simulation.h"

#include <algorithm>
#include <fstream>
#include <memory>
#include <utility>

#include "common/macros.h"
#include "common/strings.h"
#include "recovery/checkpoint_manager.h"
#include "runtime/context.h"
#include "runtime/process.h"

namespace phoenix {

Simulation::Simulation(RuntimeOptions options, SimulationParams params)
    : options_(options),
      params_(params),
      injector_(),
      network_(params_.network) {
  network_.SeedFaults(params_.seed * 6271 + 17);
  retry_rng_ = Random(params_.seed * 9973 + 29);
  tracer_.set_enabled(params_.trace_enabled);
  if (params_.flight_recorder_events > 0) {
    tracer_.EnableFlightRecorder(params_.flight_recorder_events);
  }
  if (!params_.persistence_dir.empty()) {
    PHX_CHECK_OK(storage_.EnablePersistence(params_.persistence_dir));
  }
}

Simulation::~Simulation() = default;

Machine& Simulation::AddMachine(const std::string& name) {
  auto [it, inserted] = machines_.emplace(
      name,
      std::make_unique<Machine>(this, name,
                                params_.seed * 7919 + next_disk_seed_++));
  PHX_CHECK(inserted);
  return *it->second;
}

Machine* Simulation::GetMachine(const std::string& name) {
  auto it = machines_.find(name);
  return it == machines_.end() ? nullptr : it->second.get();
}

Process* Simulation::ResolveProcess(const std::string& uri) {
  Result<ParsedUri> parsed = ParseComponentUri(uri);
  if (!parsed.ok()) return nullptr;
  Machine* machine = GetMachine(parsed->machine);
  if (machine == nullptr) return nullptr;
  return machine->GetProcess(parsed->process_id);
}

Result<ReplyMessage> Simulation::RouteCall(const std::string& source_machine,
                                           const CallMessage& msg) {
  // Message interception point: every cross-context call passes through
  // here, so this is where per-call latency is attributed.
  Process* target = ResolveProcess(msg.target_uri);
  std::string label =
      target != nullptr
          ? StrCat(target->machine_name(), "/", target->pid())
          : "unroutable";

  double t0 = clock_.NowMs();
  Result<ReplyMessage> result = [&]() -> Result<ReplyMessage> {
    if (!tracer_.enabled()) return RouteCallInner(source_machine, msg);
    // Causal identity: join the sender's chain when the message carries
    // one, otherwise this is a root call entering the system and gets a
    // fresh trace id. The span's own id rides on the message so the
    // receiving interceptor parents under it across the process boundary.
    obs::SpanLink parent = msg.has_trace
                               ? obs::SpanLink{msg.trace_id, msg.parent_span}
                               : obs::SpanLink{tracer_.NewTraceId(), 0};
    std::vector<obs::TraceArg> begin_args = {
        obs::Arg("target", msg.target_uri),
        obs::Arg("source",
                 source_machine.empty() ? "external" : source_machine)};
    if (msg.has_call_id) {
      begin_args.push_back(obs::Arg("call_id", msg.call_id.ToString()));
    }
    obs::Tracer::Span span = tracer_.StartSpan("call", msg.method, label,
                                               parent, std::move(begin_args));
    CallMessage traced = msg;
    traced.has_trace = true;
    traced.trace_id = span.trace_id();
    traced.parent_span = span.span_id();
    Push(span.link());
    Result<ReplyMessage> inner = RouteCallInner(source_machine, traced);
    Pop();
    span.AddArg(obs::Arg("elapsed_ms", clock_.NowMs() - t0));
    span.AddArg(obs::Arg("ok", inner.ok() ? "true" : "false"));
    return inner;
  }();
  double elapsed = clock_.NowMs() - t0;

  obs::LabelSet labels{{"process", label}};
  metrics_.GetCounter("phoenix.call.routed", labels).Increment();
  if (!result.ok()) {
    metrics_.GetCounter("phoenix.call.errors", labels).Increment();
  }
  metrics_.GetHistogram("phoenix.call.latency_ms", labels).Record(elapsed);
  return result;
}

Result<ReplyMessage> Simulation::RouteCallInner(
    const std::string& source_machine, const CallMessage& msg) {
  Process* target = ResolveProcess(msg.target_uri);
  if (target == nullptr) {
    return Status::NotFound("unroutable target: " + msg.target_uri);
  }

  // Software path: marshalling at both ends plus the interceptor hooks; the
  // optimized system's kind attachments add their parse/compose cost.
  clock_.AdvanceMs(params_.costs.marshal_roundtrip_local_ms +
                   params_.costs.interception_ms);
  if (msg.has_sender_info) {
    clock_.AdvanceMs(params_.costs.type_attachment_ms);
  }

  bool cross_machine =
      !source_machine.empty() && source_machine != target->machine_name();
  bool duplicate_call = false;
  // The chain position the message carries; net legs and fault instants
  // attach under the sender's call span.
  obs::SpanLink chain{msg.trace_id, msg.parent_span};
  if (cross_machine) {
    obs::Tracer::Span net_span;
    if (tracer_.enabled()) {
      net_span = tracer_.StartSpan(
          "net", "xfer", "network", chain,
          {obs::Arg("leg", "call"), obs::Arg("method", msg.method),
           obs::Arg("bytes",
                    static_cast<uint64_t>(msg.EncodedSizeHint()))});
    }
    clock_.AdvanceMs(network_.TransferLatencyMs(msg.EncodedSizeHint()));
    network_.CountMessage();
    if (network_.faults_enabled()) {
      NetworkDelivery d = network_.DecideDelivery(
          source_machine, target->machine_name(), msg.method, NetLeg::kCall);
      if (d.extra_delay_ms > 0.0) {
        clock_.AdvanceMs(d.extra_delay_ms);
        metrics_.GetGauge("phoenix.net.jitter_delay_ms").Add(d.extra_delay_ms);
        net_span.AddArg(obs::Arg("jitter_ms", d.extra_delay_ms));
      }
      if (d.drop) {
        net_span.AddArg(obs::Arg("outcome", "dropped"));
        RecordNetworkDrop(source_machine, target->machine_name(), msg.method,
                          NetLeg::kCall, chain);
        return Status::Unavailable("network dropped call " + msg.method +
                                   " to " + msg.target_uri);
      }
      duplicate_call = d.duplicate;
    }
  }

  if (!target->alive()) {
    return Status::Unavailable("process " + target->machine_name() + "/" +
                               std::to_string(target->pid()) + " is down");
  }

  Result<ReplyMessage> reply = target->DeliverCall(msg);
  if (!reply.ok()) {
    if (reply.status().IsCrashed()) {
      // The server process died mid-call; to the caller that is simply an
      // unavailable server (a .NET remoting channel exception, §2.4).
      return Status::Unavailable("server crashed during call");
    }
    return reply;
  }

  if (duplicate_call && target->alive()) {
    // The network delivered a second copy of the call message. The server's
    // interceptor must eliminate it via the last-call table (same call ID);
    // the duplicate's reply is discarded — the caller already has one in
    // flight.
    metrics_.GetCounter("phoenix.net.duplicated").Increment();
    tracer_.Instant("net", "duplicate", "network", chain,
                    {obs::Arg("method", msg.method),
                     obs::Arg("target", msg.target_uri)});
    clock_.AdvanceMs(network_.TransferLatencyMs(msg.EncodedSizeHint()));
    network_.CountMessage();
    Result<ReplyMessage> dup_reply = target->DeliverCall(msg);
    (void)dup_reply;
  }

  if (cross_machine) {
    obs::Tracer::Span net_span;
    if (tracer_.enabled()) {
      net_span = tracer_.StartSpan(
          "net", "xfer", "network", chain,
          {obs::Arg("leg", "reply"), obs::Arg("method", msg.method),
           obs::Arg("bytes",
                    static_cast<uint64_t>(reply->EncodedSizeHint()))});
    }
    clock_.AdvanceMs(network_.TransferLatencyMs(reply->EncodedSizeHint()));
    network_.CountMessage();
    if (network_.faults_enabled()) {
      NetworkDelivery d =
          network_.DecideDelivery(target->machine_name(), source_machine,
                                  msg.method, NetLeg::kReply);
      if (d.extra_delay_ms > 0.0) {
        clock_.AdvanceMs(d.extra_delay_ms);
        metrics_.GetGauge("phoenix.net.jitter_delay_ms").Add(d.extra_delay_ms);
        net_span.AddArg(obs::Arg("jitter_ms", d.extra_delay_ms));
      }
      if (d.drop) {
        // The server already executed and logged the call; losing the reply
        // forces the caller to retry with the same call ID, exercising the
        // duplicate-elimination path end to end.
        net_span.AddArg(obs::Arg("outcome", "dropped"));
        RecordNetworkDrop(target->machine_name(), source_machine, msg.method,
                          NetLeg::kReply, chain);
        return Status::Unavailable("network dropped reply for " + msg.method +
                                   " from " + msg.target_uri);
      }
    }
  }
  return reply;
}

void Simulation::RecordNetworkDrop(const std::string& src,
                                   const std::string& dst,
                                   const std::string& method, NetLeg leg,
                                   obs::SpanLink link) {
  metrics_.GetCounter("phoenix.net.dropped", {{"leg", NetLegName(leg)}})
      .Increment();
  tracer_.Instant("net", "drop", "network", link,
                  {obs::Arg("leg", NetLegName(leg)),
                   obs::Arg("method", method), obs::Arg("src", src),
                   obs::Arg("dst", dst)});
}

std::vector<Context*>& Simulation::CurrentContextStack() {
  if (session_scheduler_ != nullptr) {
    if (std::vector<Context*>* stack =
            session_scheduler_->current_context_stack()) {
      return *stack;
    }
  }
  return context_stack_;
}

const std::vector<Context*>& Simulation::CurrentContextStack() const {
  return const_cast<Simulation*>(this)->CurrentContextStack();
}

std::vector<obs::SpanLink>& Simulation::CurrentTraceStack() {
  if (session_scheduler_ != nullptr) {
    if (std::vector<obs::SpanLink>* stack =
            session_scheduler_->current_trace_stack()) {
      return *stack;
    }
  }
  return trace_stack_;
}

const std::vector<obs::SpanLink>& Simulation::CurrentTraceStack() const {
  return const_cast<Simulation*>(this)->CurrentTraceStack();
}

void Simulation::DumpFlightRecorderOnCrash() {
  if (params_.flight_dump_path.empty() ||
      tracer_.flight_recorder_capacity() == 0) {
    return;
  }
  std::ofstream out(params_.flight_dump_path,
                    std::ios::binary | std::ios::trunc);
  if (!out) return;
  out << tracer_.ExportFlightRecorder();
}

void Simulation::RunSessions(std::vector<std::function<void()>> sessions) {
  PHX_CHECK(session_scheduler_ == nullptr);  // no nesting
  // A distinct stream from the network/retry/disk seeds so adding
  // sessions never perturbs their draws.
  SessionScheduler scheduler(params_.seed * 77003 + 13);
  session_scheduler_ = &scheduler;
  // Processes started (or restarted by recovery) while the scheduler is
  // active pick it up in Process::Start; wire the ones already running.
  for (const auto& [name, machine] : machines_) {
    for (const auto& [pid, process] : machine->processes()) {
      for (uint32_t s = 0; s < process->log().shard_count(); ++s) {
        process->log().pipeline(s).SetScheduler(&scheduler);
      }
    }
  }
  std::vector<Process*> async_checkpoint_procs;
  if (options_.async_checkpoint) {
    // One background checkpoint session per live process. The foreground
    // bodies are wrapped with a completion latch: the checkpoint sessions
    // must outlive every caller chain (a late bracket still publishes) but
    // exit once all of them are done — otherwise Run() would never return.
    auto remaining = std::make_shared<int>(static_cast<int>(sessions.size()));
    for (std::function<void()>& body : sessions) {
      body = [body = std::move(body), remaining] {
        body();
        --*remaining;
      };
    }
    uint32_t interval = std::max<uint32_t>(1, options_.async_checkpoint_interval);
    for (const auto& [name, machine] : machines_) {
      for (const auto& [pid, process] : machine->processes()) {
        Process* proc = process.get();
        if (!proc->alive()) continue;
        async_checkpoint_procs.push_back(proc);
        proc->set_async_checkpoint_active(true);
        sessions.push_back([proc, remaining, interval, &scheduler] {
          while (true) {
            bool sweep = false;
            // Evaluated while every chain is quiesced, so reading process
            // state here is race-free. Exit wins over a due sweep: once
            // the workload is drained there is nothing left to protect.
            scheduler.ParkUntil([proc, remaining, interval, &sweep] {
              if (*remaining == 0) return true;
              if (proc->checkpoints().AsyncSweepDue(interval)) {
                sweep = true;
                return true;
              }
              return false;
            });
            if (!sweep) break;
            // A crash mid-sweep surfaces as Crashed; the session simply
            // re-parks and resumes sweeping after recovery restarts the
            // process. checkpoints() is re-fetched every iteration —
            // Process::Start rebuilds the manager.
            (void)proc->checkpoints().RunAsyncSweep();
          }
        });
      }
    }
  }
  scheduler.Run(std::move(sessions));
  for (Process* proc : async_checkpoint_procs) {
    proc->set_async_checkpoint_active(false);
  }
  session_scheduler_ = nullptr;
  for (const auto& [name, machine] : machines_) {
    for (const auto& [pid, process] : machine->processes()) {
      for (uint32_t s = 0; s < process->log().shard_count(); ++s) {
        process->log().pipeline(s).SetScheduler(nullptr);
      }
    }
  }
}

uint64_t Simulation::TotalForces() const {
  uint64_t total = 0;
  for (const auto& [name, machine] : machines_) {
    for (const auto& [pid, process] : machine->processes()) {
      total += process->log().num_forces();
    }
  }
  return total;
}

uint64_t Simulation::TotalAppends() const {
  uint64_t total = 0;
  for (const auto& [name, machine] : machines_) {
    for (const auto& [pid, process] : machine->processes()) {
      total += process->log().num_appends();
    }
  }
  return total;
}

uint64_t Simulation::TotalBytesForced() const {
  uint64_t total = 0;
  for (const auto& [name, machine] : machines_) {
    for (const auto& [pid, process] : machine->processes()) {
      total += process->log().bytes_forced();
    }
  }
  return total;
}

void Simulation::CaptureBench(obs::BenchVariant& variant) const {
  variant.SetMetric("forces", TotalForces());
  variant.SetMetric("appends", TotalAppends());
  variant.SetMetric("bytes_forced", TotalBytesForced());
  variant.SetMetric("sim_time_ms", clock_.NowMs());
  variant.SetMetric("calls_routed",
                    metrics_.CounterTotal("phoenix.call.routed"));
  variant.SetLatency(metrics_.MergedHistogram("phoenix.call.latency_ms"));
}

}  // namespace phoenix
