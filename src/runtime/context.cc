#include "runtime/context.h"

#include "common/macros.h"
#include "common/strings.h"
#include "runtime/machine.h"
#include "runtime/process.h"
#include "runtime/simulation.h"

namespace phoenix {

Context::Context(Process* process, uint64_t id)
    : process_(process), id_(id) {}

Component* Context::AddComponent(std::unique_ptr<Component> instance,
                                 const std::string& type_name,
                                 const std::string& name, ComponentKind kind,
                                 uint64_t component_id) {
  PHX_CHECK(slots_.count(component_id) == 0);
  PHX_CHECK(by_name_.count(name) == 0);

  Component* comp = instance.get();
  comp->id_ = component_id;
  comp->name_ = name;
  comp->type_name_ = type_name;
  comp->kind_ = kind;
  comp->context_ = this;

  ComponentSlot slot;
  slot.instance = std::move(instance);
  comp->RegisterMethods(slot.methods);
  comp->RegisterFields(slot.fields);

  slots_.emplace(component_id, std::move(slot));
  by_name_.emplace(name, component_id);
  member_ids_.push_back(component_id);
  if (member_ids_.size() == 1) parent_id_ = component_id;
  return comp;
}

uint64_t Context::NextSubordinateId() {
  PHX_CHECK(next_sub_index_ < kMaxSubordinates);
  return kSubordinateIdBase + id_ * kMaxSubordinates + next_sub_index_++;
}

Component* Context::parent() const {
  auto it = slots_.find(parent_id_);
  return it == slots_.end() ? nullptr : it->second.instance.get();
}

ComponentSlot* Context::parent_slot() { return FindSlotById(parent_id_); }

ComponentSlot* Context::FindSlot(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : FindSlotById(it->second);
}

ComponentSlot* Context::FindSlotById(uint64_t component_id) {
  auto it = slots_.find(component_id);
  return it == slots_.end() ? nullptr : &it->second;
}

ComponentKind Context::parent_kind() const {
  const Component* p = parent();
  return p == nullptr ? ComponentKind::kPersistent : p->kind();
}

void Context::ClearMembers() {
  slots_.clear();
  by_name_.clear();
  member_ids_.clear();
  parent_id_ = 0;
  next_sub_index_ = 1;
  parent_initialized_ = false;
  busy_ = false;
  replaying_ = false;
  replay_feed_ = nullptr;
}

std::vector<ComponentSnapshot> Context::SnapshotComponents() {
  std::vector<ComponentSnapshot> out;
  out.reserve(member_ids_.size());
  for (uint64_t member_id : member_ids_) {
    ComponentSlot& slot = slots_.at(member_id);
    ComponentSnapshot snap;
    snap.component_id = member_id;
    snap.type_name = slot.instance->type_name();
    snap.name = slot.instance->name();
    snap.kind = slot.instance->kind();
    snap.fields = slot.fields.Snapshot();
    out.push_back(std::move(snap));
  }
  return out;
}

Status Context::RestoreComponent(const ComponentSnapshot& snap) {
  Simulation* sim = process_->simulation();
  PHX_ASSIGN_OR_RETURN(std::unique_ptr<Component> instance,
                       sim->factories().Create(snap.type_name));
  Component* comp = AddComponent(std::move(instance), snap.type_name,
                                 snap.name, snap.kind, snap.component_id);
  process_->IndexComponentName(snap.name, id_);
  ComponentSlot* slot = FindSlotById(snap.component_id);
  PHX_RETURN_IF_ERROR(slot->fields.Restore(snap.fields));
  // Keep the deterministic subordinate-id allocator ahead of every restored
  // member.
  uint64_t sub_base = kSubordinateIdBase + id_ * kMaxSubordinates;
  if (snap.component_id >= sub_base + next_sub_index_ &&
      snap.component_id < sub_base + kMaxSubordinates) {
    next_sub_index_ = snap.component_id - sub_base + 1;
  }
  if (snap.component_id == parent_id_) parent_initialized_ = true;
  (void)comp;
  return Status::OK();
}

size_t Context::StateSizeHint() {
  size_t total = 64;
  for (uint64_t member_id : member_ids_) {
    total += slots_.at(member_id).fields.StateSizeHint() + 32;
  }
  return total;
}

}  // namespace phoenix
