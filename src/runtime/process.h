#ifndef PHOENIX_RUNTIME_PROCESS_H_
#define PHOENIX_RUNTIME_PROCESS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "runtime/context.h"
#include "sim/failure_injector.h"
#include "runtime/last_call_table.h"
#include "runtime/message.h"
#include "runtime/remote_type_table.h"
#include "wal/log_manager.h"

namespace phoenix {

class Machine;
class Simulation;
class CheckpointManager;

// Name of the built-in activator component present in every process
// (context/component id 0). Component creation is a normal persistent
// method call to it, so creations are logged, deduplicated and replayed by
// exactly the same machinery as any other call.
inline constexpr char kActivatorName[] = "_activator";

// A simulated OS process hosting Phoenix contexts (Figure 7): the log
// manager, the global tables of Table 1 (context table = the Context
// objects themselves, component name table, remote component table, shared
// last-call table), and the crash/restart surface the recovery service
// drives.
class Process {
 public:
  Process(Machine* machine, uint32_t pid);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  // --- identity ---
  uint32_t pid() const { return pid_; }
  Machine* machine() const { return machine_; }
  Simulation* simulation() const;
  const std::string& machine_name() const;
  std::string log_name() const;
  std::string ActivatorUri() const;

  // --- subsystems ---
  LogManager& log() { return *log_; }

  // Durability wait for everything this process has appended so far: the
  // single API behind every interceptor force site (wal/force_point.h
  // names them). Parks the calling session under group commit; flushes
  // inline otherwise. Returns Crashed when the process died before the
  // wait was satisfied.
  Status WaitDurable(ForcePoint reason);
  LastCallTable& last_calls() { return last_calls_; }
  RemoteTypeTable& remote_types() { return remote_types_; }
  CheckpointManager& checkpoints() { return *checkpoints_; }

  // --- liveness ---
  bool alive() const { return alive_; }
  bool recovering() const { return recovering_; }
  void set_recovering(bool r) { recovering_ = r; }

  // Crash: all volatile state is dropped — contexts, tables, and the
  // unforced log buffer. The stable log and well-known file survive.
  void Kill();

  // Re-initializes the volatile runtime structures (empty tables, fresh
  // activator) after a crash; the recovery manager then repopulates them
  // from the log. Also used for the initial start.
  void Start();

  // --- components / contexts ---

  // Creates a component in a fresh context, writing its creation record and
  // running Initialize(). Idempotent per name (a re-created name returns
  // the existing URI). This is the internal path; remote callers go through
  // the activator's "Create" method.
  Result<std::string> CreateComponent(const std::string& type_name,
                                      const std::string& name,
                                      ComponentKind kind, ArgList ctor_args);

  Context* FindContext(uint64_t context_id);
  // Context owning component `name` (parents and subordinates).
  Context* FindContextOfComponent(const std::string& name);
  ComponentSlot* FindComponent(const std::string& name);
  const std::map<uint64_t, std::unique_ptr<Context>>& contexts() const {
    return contexts_;
  }

  // Registers component `name` as living in context `context_id`
  // (recovery uses this when rebuilding contexts from snapshots).
  void IndexComponentName(const std::string& name, uint64_t context_id);

  // Creates an empty context shell with a fixed id (recovery restore path).
  Context* CreateRawContext(uint64_t context_id);

  uint64_t next_parent_id() const { return next_parent_id_; }
  void set_next_parent_id(uint64_t id) { next_parent_id_ = id; }

  // --- transport entry point ---
  // Delivers `msg` to the context of its target component. Fails with
  // kUnavailable if this process is dead, kNotFound for unknown targets,
  // kFailedPrecondition for remote calls to subordinates.
  Result<ReplyMessage> DeliverCall(const CallMessage& msg);

  // Consults the failure injector at `point`; if a crash is due, kills this
  // process and returns true. Silent while recovering unless
  // options.inject_failures_during_recovery is set.
  bool MaybeCrash(FailurePoint point);

  // While recovering, DeliverCall flushes the target context's pending
  // replay through this hook before handling a live call — a context must
  // be recovered to its last send before serving anyone (condition 1).
  using PendingFlusher = std::function<void(uint64_t context_id)>;
  void SetPendingFlusher(PendingFlusher flusher) {
    pending_flusher_ = std::move(flusher);
  }

  // Called whenever this process's effects become visible outside it (a
  // message leaves, a reply returns, a checkpoint publishes). Raises the
  // externalized floor to the current stable end: bytes below it are
  // observable by the outside world, so an injected torn tail may never eat
  // them — tearing an acknowledged record would genuinely break
  // exactly-once, which is a storage contract violation, not a crash.
  // Sharded WAL: every shard's floor rises to that shard's stable end
  // (conservative — the outside world may have observed any of them).
  void NoteExternalization();
  uint64_t externalized_stable_lsn() const { return externalized_stable_lsn_; }

  // Shears up to `bytes` off this process's *stable* log tail, clamped to
  // the externalized floor and the garbage-collected head base (the same
  // contract as crash-time torn tails). Used by the recovery supervisor's
  // between-attempt storage attacks; safe on a dead process.
  void InjectTornTail(uint64_t bytes);

  // --- asynchronous checkpointing ---
  // True while a dedicated background checkpoint session is sweeping this
  // process (Simulation::RunSessions with RuntimeOptions.async_checkpoint
  // set): the inline capture cadence in OnIncomingCallFinished stands down
  // and foreground chains only mark contexts dirty. Deliberately *not*
  // reset by Kill/Start — the background session outlives crashes and
  // resumes sweeping once recovery brings the process back.
  bool async_checkpoint_active() const { return async_checkpoint_active_; }
  void set_async_checkpoint_active(bool active) {
    async_checkpoint_active_ = active;
  }

  // --- statistics ---
  uint64_t incoming_calls() const { return incoming_calls_; }
  void CountIncomingCall() { ++incoming_calls_; }
  uint64_t crash_count() const { return crash_count_; }

 private:
  // Torn-tail injection: consults the failure injector when this process
  // dies and may rip bytes off the stable log tail, clamped to the
  // externalized floor and the garbage-collected head base.
  void MaybeTearStableTail();

  // Sharded WAL bookkeeping: records that the executing chain appended to
  // `shard`, so its next WaitDurable only forces the shards it touched.
  void NoteShardAppend(uint32_t shard);
  // Key of the executing chain in chain_touched_shards_: the session index
  // under a scheduler, -1 on the driver thread.
  int CurrentChainKey() const;

  Machine* machine_;
  uint32_t pid_;
  bool alive_ = false;
  bool recovering_ = false;
  bool async_checkpoint_active_ = false;

  std::unique_ptr<LogManager> log_;
  std::unique_ptr<CheckpointManager> checkpoints_;
  std::map<uint64_t, std::unique_ptr<Context>> contexts_;  // the context table
  std::map<std::string, uint64_t> component_to_context_;   // component table
  LastCallTable last_calls_;
  RemoteTypeTable remote_types_;
  uint64_t next_parent_id_ = 1;  // id 0 is the activator
  uint64_t externalized_stable_lsn_ = 0;
  // Sharded WAL only (both empty/unused when wal_shards == 1): per-shard
  // externalized floors (shard-local offsets), and per-chain bitmasks of
  // shards appended to since the chain's last successful durability wait.
  std::vector<uint64_t> shard_externalized_floor_;
  std::map<int, uint64_t> chain_touched_shards_;
  uint64_t incoming_calls_ = 0;
  uint64_t crash_count_ = 0;
  PendingFlusher pending_flusher_;

  // Crash graveyard: sessions parked inside a context's or log manager's
  // member functions when the process dies resume on the old objects (and
  // immediately unwind with Crashed). Keeping the corpses alive until the
  // process itself is destroyed makes that resume memory-safe.
  std::vector<std::map<uint64_t, std::unique_ptr<Context>>> zombie_contexts_;
  std::vector<std::unique_ptr<LogManager>> zombie_logs_;
};

}  // namespace phoenix

#endif  // PHOENIX_RUNTIME_PROCESS_H_
