#include "runtime/component.h"

#include "common/macros.h"
#include "runtime/context.h"
#include "runtime/machine.h"
#include "runtime/process.h"
#include "runtime/simulation.h"

namespace phoenix {

const char* ComponentKindName(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kExternal:
      return "external";
    case ComponentKind::kPersistent:
      return "persistent";
    case ComponentKind::kSubordinate:
      return "subordinate";
    case ComponentKind::kFunctional:
      return "functional";
    case ComponentKind::kReadOnly:
      return "read_only";
  }
  return "unknown";
}

std::string Component::uri() const {
  PHX_CHECK(context_ != nullptr);
  Process* process = context_->process();
  return MakeComponentUri(process->machine_name(), process->pid(), name_);
}

Result<Value> Component::Call(const std::string& server_uri,
                              const std::string& method, ArgList args) {
  PHX_CHECK(context_ != nullptr);
  return context_->OutgoingCall(this, server_uri, method, std::move(args));
}

Result<std::string> Component::CreateSubordinate(const std::string& type_name,
                                                 const std::string& name,
                                                 ArgList ctor_args) {
  PHX_CHECK(context_ != nullptr);
  Context& ctx = *context_;
  Process* process = ctx.process();
  Simulation* sim = process->simulation();

  if (ctx.FindSlot(name) != nullptr || process->FindComponent(name) != nullptr) {
    // Deterministic re-execution (replay) re-creates subordinates; the
    // second creation finds the first.
    ComponentSlot* slot = ctx.FindSlot(name);
    if (slot == nullptr) {
      return Status::AlreadyExists("component name in use: " + name);
    }
    return slot->instance->uri();
  }

  PHX_ASSIGN_OR_RETURN(std::unique_ptr<Component> instance,
                       sim->factories().Create(type_name));
  uint64_t sub_id = ctx.NextSubordinateId();
  Component* sub = ctx.AddComponent(std::move(instance), type_name, name,
                                    ComponentKind::kSubordinate, sub_id);
  process->IndexComponentName(name, ctx.id());
  PHX_RETURN_IF_ERROR(sub->Initialize(ctor_args));
  return sub->uri();
}

void Component::Work(double ms) {
  PHX_CHECK(context_ != nullptr);
  context_->process()->simulation()->clock().AdvanceMs(ms);
}

void ComponentFactoryRegistry::RegisterFactory(const std::string& type_name,
                                               Factory factory) {
  auto [it, inserted] = factories_.emplace(type_name, std::move(factory));
  (void)it;
  PHX_CHECK(inserted);
}

Result<std::unique_ptr<Component>> ComponentFactoryRegistry::Create(
    const std::string& type_name) const {
  auto it = factories_.find(type_name);
  if (it == factories_.end()) {
    return Status::NotFound("no factory for component type: " + type_name);
  }
  return it->second();
}

const MethodTraits* ComponentFactoryRegistry::LookupMethodTraits(
    const std::string& type_name, const std::string& method) const {
  auto cached = traits_.find(type_name);
  if (cached == traits_.end()) {
    auto factory = factories_.find(type_name);
    if (factory == factories_.end()) return nullptr;
    // Build the trait map once from a throwaway blank instance.
    std::unique_ptr<Component> probe = factory->second();
    MethodRegistry methods;
    probe->RegisterMethods(methods);
    std::map<std::string, MethodTraits> traits;
    for (const auto& [name, entry] : methods.entries()) {
      traits[name] = entry.traits;
    }
    cached = traits_.emplace(type_name, std::move(traits)).first;
  }
  auto it = cached->second.find(method);
  return it == cached->second.end() ? nullptr : &it->second;
}

}  // namespace phoenix
