#ifndef PHOENIX_RUNTIME_COMPONENT_H_
#define PHOENIX_RUNTIME_COMPONENT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "runtime/field_registry.h"
#include "runtime/kinds.h"
#include "runtime/method_registry.h"
#include "serde/value.h"

namespace phoenix {

class Context;

// Base class of every Phoenix component — the analogue of the paper's
// PersistentObject (itself derived from ContextBoundObject). Derived classes:
//
//  - MUST register their callable methods in RegisterMethods();
//  - MUST register their durable fields in RegisterFields() if stateful
//    (persistent/subordinate) — this is the reflection substitute used by
//    context state saving (§4.2);
//  - MAY override Initialize(), the logged "creation call" run once at
//    creation and re-run during replay-from-creation. Like any method body
//    it must be deterministic; outgoing calls it makes are intercepted and
//    logged normally.
//
// Method handlers run single-threaded per context (the paper's PWD
// requirement) and make outgoing calls through Call()/CallRef().
class Component {
 public:
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  virtual void RegisterMethods(MethodRegistry& methods) = 0;
  virtual void RegisterFields(FieldRegistry& fields) { (void)fields; }
  virtual Status Initialize(const ArgList& args) {
    (void)args;
    return Status::OK();
  }

  // --- identity, filled in by the runtime at creation ---
  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  ComponentKind kind() const { return kind_; }
  const std::string& type_name() const { return type_name_; }
  Context* context() const { return context_; }

  // Full URI of this component ("phx://machine/pid/name").
  std::string uri() const;

 protected:
  Component() = default;

  // Outgoing method call to `server_uri`, routed through this component's
  // context interceptor (or dispatched directly when the target lives in
  // the same context — the subordinate fast path of §3.2.1).
  Result<Value> Call(const std::string& server_uri, const std::string& method,
                     ArgList args);
  Result<Value> CallRef(const ComponentRefField& ref, const std::string& method,
                        ArgList args) {
    return Call(ref.uri, method, std::move(args));
  }

  // Creates a subordinate component inside this component's context.
  // Returns its URI. Not logged: subordinate creation is deterministic
  // given the parent's incoming calls, so replay recreates it.
  Result<std::string> CreateSubordinate(const std::string& type_name,
                                        const std::string& name,
                                        ArgList ctor_args);

  // Charges `ms` of simulated CPU work to the clock (used by applications
  // to model non-trivial method bodies).
  void Work(double ms);

 private:
  friend class Context;

  uint64_t id_ = 0;
  std::string name_;
  std::string type_name_;
  ComponentKind kind_ = ComponentKind::kPersistent;
  Context* context_ = nullptr;
};

// Runtime metadata wrapper pairing a component instance with its dispatch
// and field tables (populated right after construction).
struct ComponentSlot {
  std::unique_ptr<Component> instance;
  MethodRegistry methods;
  FieldRegistry fields;
};

// Type-name -> factory map, per Simulation: the substitute for CLR metadata
// that lets recovery re-instantiate components from creation records and
// context state records. Also caches per-type method traits so a *client*
// can know a remote method is read-only once it has learned the server's
// type (§3.3/§3.4 — in .NET this came from the shared interface metadata).
class ComponentFactoryRegistry {
 public:
  ComponentFactoryRegistry() = default;

  ComponentFactoryRegistry(const ComponentFactoryRegistry&) = delete;
  ComponentFactoryRegistry& operator=(const ComponentFactoryRegistry&) =
      delete;

  using Factory = std::function<std::unique_ptr<Component>()>;

  // Registers `type_name`; T must be default-constructible.
  template <typename T>
  void Register(const std::string& type_name) {
    RegisterFactory(type_name, [] { return std::make_unique<T>(); });
  }

  void RegisterFactory(const std::string& type_name, Factory factory);

  bool Has(const std::string& type_name) const {
    return factories_.count(type_name) > 0;
  }

  // Instantiates a blank (not yet initialized) component of `type_name`.
  Result<std::unique_ptr<Component>> Create(const std::string& type_name) const;

  // Traits of `method` on `type_name`; nullptr when the type or method is
  // unknown (callers then use the most conservative logging).
  const MethodTraits* LookupMethodTraits(const std::string& type_name,
                                         const std::string& method) const;

 private:
  std::map<std::string, Factory> factories_;
  // Lazily built: type name -> (method name -> traits).
  mutable std::map<std::string, std::map<std::string, MethodTraits>> traits_;
};

}  // namespace phoenix

#endif  // PHOENIX_RUNTIME_COMPONENT_H_
