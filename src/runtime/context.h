#ifndef PHOENIX_RUNTIME_CONTEXT_H_
#define PHOENIX_RUNTIME_CONTEXT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "runtime/component.h"
#include "runtime/kinds.h"
#include "runtime/message.h"
#include "wal/log_record.h"

namespace phoenix {

class Process;

// Outgoing replies fed to a context while one of its logged calls is being
// replayed: reply value per outgoing-call sequence number, harvested from
// the log by the recovery manager.
struct ReplayFeed {
  std::map<uint64_t, ReplyReceivedRecord> replies;
  // Set once a needed reply is missing: replay has caught up with the crash
  // point and execution continues live (outgoing calls really go out, with
  // the same deterministically derived IDs).
  bool went_live = false;
};

// §3.5 multi-call bookkeeping: which servers the current method execution
// has already called, so repeat calls to the same server force again.
struct MultiCallTracker {
  bool forced_once = false;
  std::set<std::string> servers_called;
  void Reset() {
    forced_once = false;
    servers_called.clear();
  }
};

// A .NET remoting "context": the unit of interception, logging and state
// saving. Holds a parent component plus its subordinates (Figure 6); all
// calls crossing the context boundary pass through HandleIncoming /
// OutgoingCall, which implement the message interceptors of Figure 3 and
// the logging algorithms of Section 3. Calls between members of the same
// context are plain local calls.
//
// The fields kept here are exactly the paper's context table entry
// (Table 1): member list, parent id/URI, latest state record LSN, and the
// last outgoing method call ID of the context.
class Context {
 public:
  Context(Process* process, uint64_t id);

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- construction / membership ---

  // Installs `instance` as a member. The first added component is the
  // parent. Fills the component's runtime identity and populates its
  // method/field registries.
  Component* AddComponent(std::unique_ptr<Component> instance,
                          const std::string& type_name,
                          const std::string& name, ComponentKind kind,
                          uint64_t component_id);

  // Component ids: context parents draw from the process's sequential
  // counter; subordinates get kSubordinateIdBase + parent_id * kMaxSubs + k.
  // The spaces are disjoint, and both allocations are deterministic so that
  // replayed creations recompute the same ids (call IDs embed them).
  static constexpr uint64_t kSubordinateIdBase = uint64_t{1} << 40;
  static constexpr uint64_t kMaxSubordinates = 4096;

  // Allocates the next subordinate id. Subordinate creation is not logged
  // (it is deterministic given the parent's calls), so replay recomputes
  // identical ids.
  uint64_t NextSubordinateId();

  uint64_t id() const { return id_; }
  Process* process() const { return process_; }
  Component* parent() const;
  ComponentSlot* parent_slot();
  ComponentSlot* FindSlot(const std::string& name);
  ComponentSlot* FindSlotById(uint64_t component_id);
  ComponentKind parent_kind() const;
  const std::vector<uint64_t>& member_ids() const { return member_ids_; }

  // --- normal execution (implemented in interceptor.cc) ---

  // Server-side interceptor: duplicate detection, message-1 logging,
  // dispatch, message-2 logging/forcing, last-call update, state saving.
  // A non-OK *Result* means the hosting process crashed mid-call; app-level
  // failures travel inside the ReplyMessage.
  Result<ReplyMessage> HandleIncoming(const CallMessage& msg);

  // Client-side interceptor for a call made by member `from`: ID
  // assignment, message-3 forcing, transport, retry-until-response,
  // message-4 logging, remote-type learning. Local (same-context) targets
  // dispatch directly.
  Result<Value> OutgoingCall(Component* from, const std::string& server_uri,
                             const std::string& method, ArgList args);

  // --- replay (driven by recovery; implemented in interceptor.cc) ---

  // Re-executes a logged incoming call with outgoing calls answered from
  // `feed`. The reply is returned to the recovery manager, never sent
  // (condition 5). The last-call table is updated as in normal execution.
  Result<ReplyMessage> ReplayIncoming(const CallMessage& msg, ReplayFeed feed);

  // Re-runs the creation call (Initialize) the same way.
  Status ReplayCreation(const ArgList& ctor_args, ReplayFeed feed);

  // Runs the parent's Initialize() inside this context (busy flag set,
  // context pushed on the execution stack) — the "creation call".
  Status RunInitialize(const ArgList& ctor_args);

  bool replaying() const { return replaying_; }
  bool busy() const { return busy_; }
  // True while an interceptor is dispatching an incoming call into this
  // context (the ServingGuard window). The async checkpoint sweep uses it —
  // together with busy() — to honor §4.2's "not active" rule: a context
  // with a call in flight is deferred, not captured.
  bool serving() const { return serving_; }

  // True once the parent's creation call (Initialize) has run — either
  // live, by replay, or implicitly via a state-record restore. Lets
  // recovery skip re-running a creation that a replayed activator call
  // already performed.
  bool parent_initialized() const { return parent_initialized_; }
  void set_parent_initialized(bool v) { parent_initialized_ = v; }

  // --- context table entry state ---
  uint64_t last_outgoing_seq() const { return last_outgoing_seq_; }
  void set_last_outgoing_seq(uint64_t seq) { last_outgoing_seq_ = seq; }
  uint64_t state_record_lsn() const { return state_record_lsn_; }
  void set_state_record_lsn(uint64_t lsn) { state_record_lsn_ = lsn; }
  uint64_t creation_lsn() const { return creation_lsn_; }
  void set_creation_lsn(uint64_t lsn) { creation_lsn_ = lsn; }
  // The LSN recovery restarts this context from: newest state record if
  // any, else the creation record.
  uint64_t recovery_lsn() const {
    return state_record_lsn_ != kInvalidLsn ? state_record_lsn_
                                            : creation_lsn_;
  }
  uint64_t incoming_calls_handled() const { return incoming_calls_handled_; }

  // Destroys all member component instances (a *context* failure, §4.4 —
  // cheaper than a process crash: the process's tables, log buffer and the
  // other contexts survive). RecoverContextFailure() rebuilds the members.
  void ClearMembers();

  // --- checkpoint support (§4.2) ---
  std::vector<ComponentSnapshot> SnapshotComponents();
  // Instantiates a blank component from `snap` and restores its fields.
  Status RestoreComponent(const ComponentSnapshot& snap);
  size_t StateSizeHint();

 private:
  friend class Component;

  // interceptor.cc internals
  Result<ReplyMessage> Dispatch(const CallMessage& msg);
  Result<Value> LocalDispatch(ComponentSlot* slot, const std::string& method,
                              const ArgList& args);
  Result<ReplyMessage> AnswerDuplicate(const CallMessage& msg);
  Result<ReplyMessage> SendWithRetry(CallMessage msg);

  Process* process_;
  uint64_t id_;
  uint64_t parent_id_ = 0;
  std::vector<uint64_t> member_ids_;  // parent first
  std::map<uint64_t, ComponentSlot> slots_;
  std::map<std::string, uint64_t> by_name_;
  uint64_t next_sub_index_ = 1;

  uint64_t last_outgoing_seq_ = 0;
  uint64_t state_record_lsn_ = kInvalidLsn;
  uint64_t creation_lsn_ = kInvalidLsn;
  uint64_t incoming_calls_handled_ = 0;

  bool busy_ = false;       // single-threaded check (PWD requirement)
  // Whole-HandleIncoming occupancy: which session (if any) is serving this
  // context. Other sessions park on it instead of failing the busy check;
  // within one chain busy_ keeps catching reentrant cycles.
  bool serving_ = false;
  int serving_session_ = -1;
  bool parent_initialized_ = false;
  bool replaying_ = false;
  ReplayFeed* replay_feed_ = nullptr;
  MultiCallTracker multi_call_;
};

}  // namespace phoenix

#endif  // PHOENIX_RUNTIME_CONTEXT_H_
