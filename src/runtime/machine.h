#ifndef PHOENIX_RUNTIME_MACHINE_H_
#define PHOENIX_RUNTIME_MACHINE_H_

#include <map>
#include <memory>
#include <string>

#include "recovery/recovery_service.h"
#include "runtime/process.h"
#include "sim/disk_model.h"

namespace phoenix {

class Simulation;

// A simulated machine: a name, one log disk shared by all processes on it,
// and the machine-wide recovery service that monitors and restarts
// registered processes (Figure 4).
class Machine {
 public:
  Machine(Simulation* simulation, std::string name, uint64_t disk_seed);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  const std::string& name() const { return name_; }
  Simulation* simulation() const { return simulation_; }
  DiskModel& disk() { return disk_; }
  RecoveryService& recovery_service() { return recovery_service_; }

  // Creates and starts a process; the recovery service assigns its logical
  // pid and durably registers it.
  Process& CreateProcess();

  Process* GetProcess(uint32_t pid);

  const std::map<uint32_t, std::unique_ptr<Process>>& processes() const {
    return processes_;
  }

 private:
  friend class RecoveryService;

  Simulation* simulation_;
  std::string name_;
  DiskModel disk_;
  RecoveryService recovery_service_;
  std::map<uint32_t, std::unique_ptr<Process>> processes_;
};

}  // namespace phoenix

#endif  // PHOENIX_RUNTIME_MACHINE_H_
