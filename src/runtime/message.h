#ifndef PHOENIX_RUNTIME_MESSAGE_H_
#define PHOENIX_RUNTIME_MESSAGE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "runtime/call_id.h"
#include "runtime/kinds.h"
#include "serde/value.h"

namespace phoenix {

// A method-call message crossing a context boundary (message 1/3 of
// Figure 1). Carries the globally unique call ID (absent for external
// callers) and, in the optimized system, the sender's component-kind
// attachment used for type detection (§3.4).
struct CallMessage {
  std::string target_uri;
  std::string method;
  ArgList args;

  // Globally unique ID (condition 2). External callers attach none, which
  // is exactly how the server recognizes them (§2.3).
  bool has_call_id = false;
  CallId call_id;

  // §3.4 sender attachment: the (parent) component kind and type of the
  // calling context. Only the optimized system sends these.
  bool has_sender_info = false;
  ComponentKind sender_kind = ComponentKind::kExternal;
  std::string sender_type_name;
  // Client tells the server it already knows the server's kind, letting the
  // server omit its own attachment in the reply (§5.2.3's optimization).
  bool client_knows_server = false;

  // Causal trace identity (obs/tracer.h): the call chain this message
  // belongs to and the sender-side span that emitted it, so the receiver's
  // spans attach under the right parent across the process boundary.
  // Deliberately excluded from EncodedSizeHint: instrumentation must not
  // change the modeled wire cost, or tracing would perturb the paper's
  // numbers and the pinned bench goldens.
  bool has_trace = false;
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;

  // Approximate wire size, for network-transfer costs.
  size_t EncodedSizeHint() const;
};

// A reply message (message 2/4 of Figure 1).
struct ReplyMessage {
  // Application-level outcome of the method. A non-OK status here is a
  // *normal* reply (e.g. invalid argument — the remote component is alive,
  // §2.4); transport/crash failures are signalled via the Result wrapper
  // instead.
  Status status;
  Value value;

  // §3.4 server attachment (omitted when client_knows_server was set).
  bool has_server_info = false;
  ComponentKind server_kind = ComponentKind::kPersistent;
  std::string server_type_name;

  size_t EncodedSizeHint() const;
};

}  // namespace phoenix

#endif  // PHOENIX_RUNTIME_MESSAGE_H_
