#ifndef PHOENIX_RUNTIME_REMOTE_TYPE_TABLE_H_
#define PHOENIX_RUNTIME_REMOTE_TYPE_TABLE_H_

#include <map>
#include <string>

#include "runtime/kinds.h"

namespace phoenix {

// What a process has learned about a remote component (§3.4): its kind and
// its type name (the latter lets clients look up read-only method traits
// through the factory registry, standing in for shared interface metadata).
struct RemoteTypeInfo {
  ComponentKind kind = ComponentKind::kPersistent;
  std::string type_name;
};

// Remote component table (Table 1): server types start out unknown — the
// most conservative logging is used — and are learned gradually from reply
// attachments.
class RemoteTypeTable {
 public:
  RemoteTypeTable() = default;

  RemoteTypeTable(const RemoteTypeTable&) = delete;
  RemoteTypeTable& operator=(const RemoteTypeTable&) = delete;

  // nullptr when `uri` has not been learned yet.
  const RemoteTypeInfo* Lookup(const std::string& uri) const;

  void Learn(const std::string& uri, ComponentKind kind,
             const std::string& type_name);

  const std::map<std::string, RemoteTypeInfo>& entries() const {
    return entries_;
  }

  void Clear() { entries_.clear(); }

 private:
  std::map<std::string, RemoteTypeInfo> entries_;
};

}  // namespace phoenix

#endif  // PHOENIX_RUNTIME_REMOTE_TYPE_TABLE_H_
