#include "runtime/remote_type_table.h"

namespace phoenix {

const RemoteTypeInfo* RemoteTypeTable::Lookup(const std::string& uri) const {
  auto it = entries_.find(uri);
  return it == entries_.end() ? nullptr : &it->second;
}

void RemoteTypeTable::Learn(const std::string& uri, ComponentKind kind,
                            const std::string& type_name) {
  entries_[uri] = RemoteTypeInfo{kind, type_name};
}

}  // namespace phoenix
