#include "runtime/session.h"

#include <algorithm>

#include "common/macros.h"

namespace phoenix {
namespace {

// The session the calling thread is executing, if any. Session bodies run
// strictly one at a time, so this is only ever read by its own thread or
// while that thread is parked.
thread_local SessionScheduler::Session* tls_session = nullptr;

}  // namespace

SessionScheduler::~SessionScheduler() {
  // Run() joins everything; nothing to do unless Run was never called.
  PHX_CHECK(sessions_.empty());
}

bool SessionScheduler::ParkSatisfied(const Session& s) {
  if (s.wait_pipeline != nullptr) {
    return s.wait_pipeline->durable_lsn() >= s.wait_lsn ||
           s.wait_pipeline->abort_epoch() != s.wait_epoch;
  }
  PHX_CHECK(s.ready_pred != nullptr);
  return s.ready_pred();
}

bool SessionScheduler::TryGroupFlush() {
  // Group parked durability waiters by pipeline, in session-index order so
  // ties resolve deterministically.
  std::vector<std::pair<CommitPipeline*, size_t>> groups;
  for (const auto& up : sessions_) {
    const Session& s = *up;
    if (s.state != Session::State::kParked || s.wait_pipeline == nullptr) {
      continue;
    }
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == s.wait_pipeline; });
    if (it == groups.end()) {
      groups.emplace_back(s.wait_pipeline, 1);
    } else {
      ++it->second;
    }
  }
  if (groups.empty()) return false;
  auto best = groups.begin();
  for (auto it = groups.begin(); it != groups.end(); ++it) {
    // Most parked waiters wins; equal counts prefer the lower shard id
    // (sharded WALs have N pipelines per process, so "most parked" alone
    // is ambiguous). Remaining ties keep the first-encountered group,
    // i.e. session-index order — which is also the complete rule when
    // every pipeline is shard 0 (the single-log layout).
    if (it->second > best->second ||
        (it->second == best->second &&
         it->first->shard_id() < best->first->shard_id())) {
      best = it;
    }
  }
  best->first->GroupFlush(best->second);
  return true;
}

void SessionScheduler::SessionMain(Session* s) {
  tls_session = s;
  {
    std::unique_lock<std::mutex> lock(mu_);
    s->cv.wait(lock, [s] { return s->state == Session::State::kRunning; });
  }
  s->body();
  {
    std::unique_lock<std::mutex> lock(mu_);
    s->state = Session::State::kDone;
  }
  sched_cv_.notify_one();
}

void SessionScheduler::Run(std::vector<std::function<void()>> bodies) {
  PHX_CHECK(tls_session == nullptr);  // no nesting
  PHX_CHECK(sessions_.empty());
  if (bodies.empty()) return;
  sessions_.reserve(bodies.size());
  for (size_t i = 0; i < bodies.size(); ++i) {
    auto s = std::make_unique<Session>();
    s->index = static_cast<int>(i);
    s->owner = this;
    s->body = std::move(bodies[i]);
    sessions_.push_back(std::move(s));
  }
  for (auto& s : sessions_) {
    s->thread = std::thread([this, sp = s.get()] { SessionMain(sp); });
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      std::vector<Session*> ready;
      size_t done = 0;
      for (auto& up : sessions_) {
        Session* s = up.get();
        switch (s->state) {
          case Session::State::kDone:
            ++done;
            break;
          case Session::State::kReady:
            ready.push_back(s);
            break;
          case Session::State::kParked:
            if (ParkSatisfied(*s)) ready.push_back(s);
            break;
          case Session::State::kRunning:
            PHX_CHECK(false && "scheduler saw a running session");
        }
      }
      if (done == sessions_.size()) break;
      if (ready.empty()) {
        // Everyone is stalled. If any chain is stalled on durability this
        // is the group-commit harvest point; otherwise the workload
        // deadlocked (e.g. two sessions parked on each other's contexts).
        PHX_CHECK(TryGroupFlush() && "session deadlock: no runnable session");
        continue;
      }
      // Max-wait policy: a pipeline whose oldest parked waiter has sat past
      // its bound is flushed now, even though runnable sessions remain —
      // bounding the latency a chain trades for a bigger batch. First
      // overdue waiter in session-index order picks the pipeline, so ties
      // resolve deterministically.
      CommitPipeline* overdue = nullptr;
      for (auto& up : sessions_) {
        Session* s = up.get();
        if (s->state != Session::State::kParked ||
            s->wait_pipeline == nullptr || ParkSatisfied(*s)) {
          continue;
        }
        double bound = s->wait_pipeline->group_commit_max_wait_ms();
        if (bound > 0.0 &&
            s->wait_pipeline->NowMs() - s->wait_since_ms >= bound) {
          overdue = s->wait_pipeline;
          break;
        }
      }
      if (overdue != nullptr) {
        size_t batch = 0;
        for (auto& up : sessions_) {
          Session* s = up.get();
          if (s->state == Session::State::kParked &&
              s->wait_pipeline == overdue && !ParkSatisfied(*s)) {
            ++batch;
          }
        }
        overdue->GroupFlush(batch);
        continue;
      }
      Session* next =
          ready.size() == 1
              ? ready.front()
              : ready[static_cast<size_t>(rng_.Uniform(ready.size()))];
      next->state = Session::State::kRunning;
      next->wait_pipeline = nullptr;
      next->ready_pred = nullptr;
      next->cv.notify_one();
      sched_cv_.wait(lock, [next] {
        return next->state != Session::State::kRunning;
      });
    }
  }

  for (auto& s : sessions_) s->thread.join();
  sessions_.clear();
}

void SessionScheduler::ParkLocked(std::unique_lock<std::mutex>& lock,
                                  Session* s) {
  s->state = Session::State::kParked;
  sched_cv_.notify_one();
  s->cv.wait(lock, [s] { return s->state == Session::State::kRunning; });
}

bool SessionScheduler::ParkUntilDurable(CommitPipeline* pipeline,
                                        uint64_t lsn) {
  Session* s = tls_session;
  if (s == nullptr || s->owner != this) return false;
  std::unique_lock<std::mutex> lock(mu_);
  s->wait_pipeline = pipeline;
  s->wait_lsn = lsn;
  s->wait_epoch = pipeline->abort_epoch();
  s->wait_since_ms = pipeline->NowMs();
  ParkLocked(lock, s);
  return true;
}

size_t SessionScheduler::ParkedWaiters(const CommitPipeline* pipeline) const {
  // Called from a running session (inside WaitDurable); every other session
  // is quiesced, so their park records are stable under the lock.
  std::unique_lock<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& up : sessions_) {
    const Session& s = *up;
    if (s.state == Session::State::kParked && s.wait_pipeline == pipeline) {
      ++n;
    }
  }
  return n;
}

bool SessionScheduler::ParkUntil(std::function<bool()> ready) {
  Session* s = tls_session;
  if (s == nullptr || s->owner != this) return false;
  std::unique_lock<std::mutex> lock(mu_);
  s->ready_pred = std::move(ready);
  ParkLocked(lock, s);
  return true;
}

int SessionScheduler::current_session() const {
  Session* s = tls_session;
  return (s != nullptr && s->owner == this) ? s->index : -1;
}

std::vector<Context*>* SessionScheduler::current_context_stack() {
  Session* s = tls_session;
  return (s != nullptr && s->owner == this) ? &s->context_stack : nullptr;
}

std::vector<obs::SpanLink>* SessionScheduler::current_trace_stack() {
  Session* s = tls_session;
  return (s != nullptr && s->owner == this) ? &s->trace_stack : nullptr;
}

}  // namespace phoenix
