#ifndef PHOENIX_RUNTIME_LOGGING_POLICY_H_
#define PHOENIX_RUNTIME_LOGGING_POLICY_H_

#include <string>

#include "core/options.h"
#include "runtime/kinds.h"

namespace phoenix {

struct MultiCallTracker;

// What the interceptor does with one message event. These four decision
// functions are the paper's Algorithms 1-5 as a single table, keyed by the
// optimization switches and the (client kind, server kind, method traits)
// triple. They are pure (except the §3.5 tracker) and unit-tested directly
// against the algorithm boxes in the paper.
struct LogDecision {
  bool write = false;      // append a record for this message
  bool force = false;      // force the log at this event
  bool long_form = true;   // long (full content) vs short (identity only)
  bool dedupe = false;     // incoming only: check/update the last-call table
};

// Message 1 arriving at a component of kind `server_kind`.
LogDecision DecideIncoming(const RuntimeOptions& opts,
                           ComponentKind server_kind, ComponentKind client_kind,
                           bool method_read_only);

// Message 2 leaving a component of kind `server_kind`.
LogDecision DecideReplySend(const RuntimeOptions& opts,
                            ComponentKind server_kind,
                            ComponentKind client_kind, bool method_read_only);

// Message 3 leaving a component of kind `client_kind` toward a server whose
// kind may not be known yet (`server_known` false => most conservative).
// Note on replay: every cross-context outgoing call consumes one sequence
// number regardless of these decisions, so call IDs stay deterministic no
// matter what the client has learned about server kinds. Replay suppresses
// a call iff a logged reply exists for its sequence number; calls whose
// replies were never logged (functional servers) or were lost with the
// buffer simply re-execute live — server-side duplicate elimination makes
// that safe.
struct OutgoingDecision {
  bool write = false;           // baseline writes message 3; optimized never
  bool force = false;           // force previous records before the send
  bool attach_call_id = false;  // carry the globally unique ID
};
OutgoingDecision DecideOutgoing(const RuntimeOptions& opts,
                                ComponentKind client_kind, bool server_known,
                                ComponentKind server_kind,
                                bool method_read_only,
                                MultiCallTracker* tracker,
                                const std::string& server_uri);

// Message 4 arriving back at a component of kind `client_kind`.
LogDecision DecideReplyReceived(const RuntimeOptions& opts,
                                ComponentKind client_kind,
                                ComponentKind server_kind,
                                bool method_read_only);

}  // namespace phoenix

#endif  // PHOENIX_RUNTIME_LOGGING_POLICY_H_
