#include "runtime/machine.h"

#include "runtime/simulation.h"

namespace phoenix {

Machine::Machine(Simulation* simulation, std::string name, uint64_t disk_seed)
    : simulation_(simulation),
      name_(std::move(name)),
      disk_(simulation->params_disk(), disk_seed),
      recovery_service_(this) {}

Process& Machine::CreateProcess() {
  uint32_t pid = recovery_service_.RegisterProcess();
  auto [it, inserted] = processes_.emplace(
      pid, std::make_unique<Process>(this, pid));
  (void)inserted;
  return *it->second;
}

Process* Machine::GetProcess(uint32_t pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

}  // namespace phoenix
