#include "runtime/field_registry.h"

#include "common/macros.h"
#include "common/strings.h"

namespace phoenix {

void FieldRegistry::RegisterBool(const std::string& name, bool* field) {
  fields_.push_back({name, FieldType::kBool, field});
}
void FieldRegistry::RegisterInt(const std::string& name, int64_t* field) {
  fields_.push_back({name, FieldType::kInt, field});
}
void FieldRegistry::RegisterDouble(const std::string& name, double* field) {
  fields_.push_back({name, FieldType::kDouble, field});
}
void FieldRegistry::RegisterString(const std::string& name,
                                   std::string* field) {
  fields_.push_back({name, FieldType::kString, field});
}
void FieldRegistry::RegisterValue(const std::string& name, Value* field) {
  fields_.push_back({name, FieldType::kValue, field});
}
void FieldRegistry::RegisterComponentRef(const std::string& name,
                                         ComponentRefField* field) {
  fields_.push_back({name, FieldType::kRef, field});
}

std::vector<FieldSnapshot> FieldRegistry::Snapshot() const {
  std::vector<FieldSnapshot> out;
  out.reserve(fields_.size());
  for (const Entry& e : fields_) {
    FieldSnapshot snap;
    snap.name = e.name;
    switch (e.type) {
      case FieldType::kBool:
        snap.value = Value(*static_cast<bool*>(e.ptr));
        break;
      case FieldType::kInt:
        snap.value = Value(*static_cast<int64_t*>(e.ptr));
        break;
      case FieldType::kDouble:
        snap.value = Value(*static_cast<double*>(e.ptr));
        break;
      case FieldType::kString:
        snap.value = Value(*static_cast<std::string*>(e.ptr));
        break;
      case FieldType::kValue:
        snap.value = *static_cast<Value*>(e.ptr);
        break;
      case FieldType::kRef:
        snap.value = Value(static_cast<ComponentRefField*>(e.ptr)->uri);
        snap.is_component_ref = true;
        break;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

const FieldRegistry::Entry* FieldRegistry::FindEntry(
    const std::string& name) const {
  for (const Entry& e : fields_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Status FieldRegistry::Restore(const std::vector<FieldSnapshot>& snapshot) {
  for (const FieldSnapshot& snap : snapshot) {
    const Entry* e = FindEntry(snap.name);
    if (e == nullptr) {
      return Status::Corruption(
          StrCat("state record has unknown field '", snap.name, "'"));
    }
    switch (e->type) {
      case FieldType::kBool:
        if (snap.value.kind() != Value::Kind::kBool) {
          return Status::Corruption(StrCat("field '", snap.name,
                                           "' expected bool"));
        }
        *static_cast<bool*>(e->ptr) = snap.value.AsBool();
        break;
      case FieldType::kInt:
        if (snap.value.kind() != Value::Kind::kInt) {
          return Status::Corruption(StrCat("field '", snap.name,
                                           "' expected int"));
        }
        *static_cast<int64_t*>(e->ptr) = snap.value.AsInt();
        break;
      case FieldType::kDouble:
        if (snap.value.kind() != Value::Kind::kDouble &&
            snap.value.kind() != Value::Kind::kInt) {
          return Status::Corruption(StrCat("field '", snap.name,
                                           "' expected double"));
        }
        *static_cast<double*>(e->ptr) = snap.value.AsDouble();
        break;
      case FieldType::kString:
        if (snap.value.kind() != Value::Kind::kString) {
          return Status::Corruption(StrCat("field '", snap.name,
                                           "' expected string"));
        }
        *static_cast<std::string*>(e->ptr) = snap.value.AsString();
        break;
      case FieldType::kValue:
        *static_cast<Value*>(e->ptr) = snap.value;
        break;
      case FieldType::kRef:
        if (!snap.is_component_ref ||
            snap.value.kind() != Value::Kind::kString) {
          return Status::Corruption(StrCat("field '", snap.name,
                                           "' expected component ref"));
        }
        static_cast<ComponentRefField*>(e->ptr)->uri = snap.value.AsString();
        break;
    }
  }
  // Registered fields missing from the snapshot keep their constructed
  // defaults; this permits adding fields to a component between releases.
  return Status::OK();
}

size_t FieldRegistry::StateSizeHint() const {
  size_t total = 0;
  for (const FieldSnapshot& snap : Snapshot()) {
    total += snap.name.size() + 2 + snap.value.EncodedSizeHint();
  }
  return total;
}

}  // namespace phoenix
