#include "runtime/method_registry.h"

#include "common/macros.h"

namespace phoenix {

void MethodRegistry::Register(
    const std::string& name,
    std::function<Result<Value>(const ArgList&)> handler,
    MethodTraits traits) {
  auto [it, inserted] =
      entries_.emplace(name, MethodEntry{std::move(handler), traits});
  (void)it;
  PHX_CHECK(inserted);
}

const MethodEntry* MethodRegistry::Find(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace phoenix
