#ifndef PHOENIX_RUNTIME_FIELD_REGISTRY_H_
#define PHOENIX_RUNTIME_FIELD_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "serde/value.h"
#include "wal/log_record.h"

namespace phoenix {

// A field holding a reference to another Phoenix component. Checkpoints save
// the URI; restore re-resolves it (§4.2). Components call through it with
// Component::Call(ref.uri, ...).
struct ComponentRefField {
  std::string uri;
  bool empty() const { return uri.empty(); }
};

// Explicit substitute for .NET reflection (§4.2): every stateful component
// enumerates its fields once in RegisterFields(), giving the checkpoint
// machinery named, typed accessors to the private state of a derived class —
// the role the paper's "persistent base class + reflection" played.
//
// Registered pointers alias the component's members and must outlive the
// registry (the registry is owned by the component's runtime metadata).
class FieldRegistry {
 public:
  FieldRegistry() = default;

  FieldRegistry(FieldRegistry&&) = default;
  FieldRegistry& operator=(FieldRegistry&&) = default;
  FieldRegistry(const FieldRegistry&) = delete;
  FieldRegistry& operator=(const FieldRegistry&) = delete;

  void RegisterBool(const std::string& name, bool* field);
  void RegisterInt(const std::string& name, int64_t* field);
  void RegisterDouble(const std::string& name, double* field);
  void RegisterString(const std::string& name, std::string* field);
  // Arbitrary structured state (lists, nested lists, ...).
  void RegisterValue(const std::string& name, Value* field);
  void RegisterComponentRef(const std::string& name, ComponentRefField* field);

  // Serializes current field values for a context state record.
  std::vector<FieldSnapshot> Snapshot() const;

  // Overwrites fields from `snapshot`. Unknown or type-mismatched fields
  // fail with kCorruption (schema drift between save and restore).
  Status Restore(const std::vector<FieldSnapshot>& snapshot);

  // Approximate serialized size, for checkpoint cost accounting.
  size_t StateSizeHint() const;

  size_t field_count() const { return fields_.size(); }

 private:
  enum class FieldType { kBool, kInt, kDouble, kString, kValue, kRef };
  struct Entry {
    std::string name;
    FieldType type;
    void* ptr;
  };
  const Entry* FindEntry(const std::string& name) const;

  std::vector<Entry> fields_;
};

}  // namespace phoenix

#endif  // PHOENIX_RUNTIME_FIELD_REGISTRY_H_
