#include "runtime/call_id.h"

#include <cstdlib>

#include "common/strings.h"

namespace phoenix {

std::string ClientKey::ToString() const {
  return StrCat(machine, "/", process_id, "/", component_id);
}

void ClientKey::EncodeTo(Encoder& enc) const {
  enc.PutString(machine);
  enc.PutVarint(process_id);
  enc.PutVarint(component_id);
}

Result<ClientKey> ClientKey::DecodeFrom(Decoder& dec) {
  ClientKey key;
  PHX_ASSIGN_OR_RETURN(key.machine, dec.GetString());
  PHX_ASSIGN_OR_RETURN(uint64_t pid, dec.GetVarint());
  key.process_id = static_cast<uint32_t>(pid);
  PHX_ASSIGN_OR_RETURN(key.component_id, dec.GetVarint());
  return key;
}

std::string CallId::ToString() const {
  return StrCat(caller.ToString(), "#", seq);
}

void CallId::EncodeTo(Encoder& enc) const {
  caller.EncodeTo(enc);
  enc.PutVarint(seq);
}

Result<CallId> CallId::DecodeFrom(Decoder& dec) {
  CallId id;
  PHX_ASSIGN_OR_RETURN(id.caller, ClientKey::DecodeFrom(dec));
  PHX_ASSIGN_OR_RETURN(id.seq, dec.GetVarint());
  return id;
}

std::string MakeComponentUri(const std::string& machine, uint32_t process_id,
                             const std::string& component_name) {
  return StrCat("phx://", machine, "/", process_id, "/", component_name);
}

Result<ParsedUri> ParseComponentUri(const std::string& uri) {
  constexpr std::string_view kScheme = "phx://";
  if (!StartsWith(uri, kScheme)) {
    return Status::InvalidArgument("bad uri scheme: " + uri);
  }
  std::vector<std::string> parts =
      StrSplit(std::string_view(uri).substr(kScheme.size()), '/');
  if (parts.size() != 3 || parts[0].empty() || parts[2].empty()) {
    return Status::InvalidArgument("bad uri: " + uri);
  }
  ParsedUri parsed;
  parsed.machine = parts[0];
  char* end = nullptr;
  parsed.process_id =
      static_cast<uint32_t>(std::strtoul(parts[1].c_str(), &end, 10));
  if (end == parts[1].c_str() || *end != '\0') {
    return Status::InvalidArgument("bad uri process id: " + uri);
  }
  parsed.component_name = parts[2];
  return parsed;
}

}  // namespace phoenix
