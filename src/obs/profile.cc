#include "obs/profile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "obs/json.h"

namespace phoenix::obs {
namespace {

const TraceArg* FindArg(const std::vector<TraceArg>& args,
                        std::string_view key) {
  for (const TraceArg& a : args) {
    if (a.key == key) return &a;
  }
  return nullptr;
}

// Numeric arg lookup; returns `fallback` when absent or non-numeric.
double ArgNumber(const std::vector<TraceArg>& args, std::string_view key,
                 double fallback = 0) {
  const TraceArg* a = FindArg(args, key);
  if (a == nullptr) return fallback;
  char* end = nullptr;
  double v = std::strtod(a->value.c_str(), &end);
  if (end == a->value.c_str()) return fallback;
  return v;
}

std::string ArgString(const std::vector<TraceArg>& args, std::string_view key) {
  const TraceArg* a = FindArg(args, key);
  return a == nullptr ? std::string() : a->value;
}

// End args override begin args of the same key (e.g. a span that refines an
// estimate at close).
void MergeArgs(std::vector<TraceArg>& into, const std::vector<TraceArg>& more) {
  for (const TraceArg& a : more) {
    bool replaced = false;
    for (TraceArg& existing : into) {
      if (existing.key == a.key) {
        existing = a;
        replaced = true;
        break;
      }
    }
    if (!replaced) into.push_back(a);
  }
}

// Charges `node`'s self time into `phases`, splitting disk force spans by
// their recorded seek/rotational/transfer breakdown.
void ChargeSelf(const ProfileNode& node, std::map<std::string, double>* phases) {
  std::string bucket = PhaseBucket(node);
  if (bucket != "disk") {
    (*phases)[bucket] += node.self_ms;
    return;
  }
  double seek = ArgNumber(node.args, "seek_ms");
  double rot = ArgNumber(node.args, "rotational_wait_ms");
  double xfer = ArgNumber(node.args, "transfer_ms");
  // The residual keeps the invariant that phases sum to the chain's wall
  // clock even when a force span reports a partial breakdown (truncated by
  // a crash) — it may then go negative, flagging the truncation. Subtraction
  // residue below a picosecond is noise, not signal.
  double residual = node.self_ms - seek - rot - xfer;
  if (std::fabs(residual) < 1e-9) residual = 0;
  (*phases)["disk.seek"] += seek;
  (*phases)["disk.rotational"] += rot;
  (*phases)["disk.transfer"] += xfer;
  (*phases)["disk.other"] += residual;
}

void AccumulateSubtree(const ProfileReport& report, size_t index,
                       std::map<std::string, double>* phases,
                       size_t* span_count, size_t* annotation_count) {
  const ProfileNode& node = report.nodes[index];
  ChargeSelf(node, phases);
  ++*span_count;
  *annotation_count += node.annotations.size();
  for (size_t child : node.children) {
    AccumulateSubtree(report, child, phases, span_count, annotation_count);
  }
}

std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

std::string PadLeft(std::string s, size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

std::string PadRight(std::string s, size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

// One-line label for a node in tree/critical-path rendering.
std::string NodeLabel(const ProfileNode& node) {
  std::string out = node.category;
  out += "/";
  out += node.name;
  out += " @";
  out += node.component.empty() ? "?" : node.component;
  return out;
}

void RenderTree(const ProfileReport& report, size_t index, int depth,
                const std::vector<bool>& on_critical_path, std::string* out) {
  const ProfileNode& node = report.nodes[index];
  out->append("    ");
  out->append(on_critical_path[index] ? "* " : "  ");
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(Fmt("[%.3f] ", node.start_ms));
  out->append(NodeLabel(node));
  out->append(Fmt(" dur=%.3f", node.dur_ms));
  out->append(Fmt(" self=%.3f", node.self_ms));
  std::string outcome = ArgString(node.args, "outcome");
  if (!outcome.empty()) {
    out->append(" outcome=");
    out->append(outcome);
  }
  if (!ArgString(node.args, "dedupe").empty()) out->append(" dedupe=hit");
  if (!ArgString(node.args, "replay").empty()) out->append(" replay=suppressed");
  if (node.truncated) out->append(" [truncated]");
  out->append("\n");
  for (size_t ann : node.annotations) {
    const TraceEvent& instant = report.instants[ann];
    out->append("      ");
    out->append(static_cast<size_t>(depth) * 2 + 2, ' ');
    out->append(Fmt("· [%.3f] ", instant.ts_ms));
    out->append(instant.category);
    out->append("/");
    out->append(instant.name);
    out->append("\n");
  }
  for (size_t child : node.children) {
    RenderTree(report, child, depth + 1, on_critical_path, out);
  }
}

}  // namespace

std::string PhaseBucket(const ProfileNode& node) {
  if (node.category == "call" || node.category == "intercept") {
    return "execution";
  }
  if (node.category == "net") return "network";
  if (node.category == "log" && node.name == "force") return "disk";
  if (node.category == "wal" && node.name == "wait") {
    return ArgString(node.args, "outcome") == "inline" ? "durability.dispatch"
                                                       : "durability.park";
  }
  if (node.category == "checkpoint") return "checkpoint";
  if (node.category == "recovery") {
    // Replay-phase spans (sequential pass-two, the parallel engine and its
    // per-chain spans) get their own bucket so recovery time splits into
    // analysis/redo vs replay work.
    if (node.name == "replay" || node.name == "parallel_replay" ||
        node.name == "replay_chain") {
      return "recovery.replay";
    }
    return "recovery";
  }
  return "other";
}

ProfileReport BuildProfile(const std::vector<TraceEvent>& events) {
  ProfileReport report;
  report.event_count = events.size();
  if (!events.empty()) {
    report.trace_start_ms = events.front().ts_ms;
    report.trace_end_ms = events.front().ts_ms;
  }
  double max_ts = 0;
  for (const TraceEvent& e : events) {
    report.trace_start_ms = std::min(report.trace_start_ms, e.ts_ms);
    report.trace_end_ms = std::max(report.trace_end_ms, e.ts_ms);
    max_ts = std::max(max_ts, e.ts_ms);
  }

  // Pair begin/end events by span id.
  std::unordered_map<uint64_t, size_t> by_span;
  for (const TraceEvent& e : events) {
    if (e.phase == TracePhase::kBegin && e.span_id != 0) {
      ProfileNode node;
      node.category = e.category;
      node.name = e.name;
      node.component = e.component;
      node.trace_id = e.trace_id;
      node.span_id = e.span_id;
      node.parent_span_id = e.parent_span_id;
      node.start_ms = e.ts_ms;
      node.end_ms = e.ts_ms;
      node.truncated = true;  // until the end event shows up
      node.args = e.args;
      by_span.emplace(e.span_id, report.nodes.size());
      report.nodes.push_back(std::move(node));
      ++report.span_count;
    } else if (e.phase == TracePhase::kEnd && e.span_id != 0) {
      auto it = by_span.find(e.span_id);
      if (it != by_span.end()) {
        ProfileNode& node = report.nodes[it->second];
        node.end_ms = e.ts_ms;
        node.truncated = false;
        MergeArgs(node.args, e.args);
      } else {
        // Begin evicted from a flight-recorder ring: surface the span with
        // zero extent rather than dropping the evidence.
        ProfileNode node;
        node.category = e.category;
        node.name = e.name;
        node.component = e.component;
        node.trace_id = e.trace_id;
        node.span_id = e.span_id;
        node.parent_span_id = e.parent_span_id;
        node.start_ms = e.ts_ms;
        node.end_ms = e.ts_ms;
        node.truncated = true;
        node.args = e.args;
        by_span.emplace(e.span_id, report.nodes.size());
        report.nodes.push_back(std::move(node));
        ++report.span_count;
      }
    } else if (e.phase == TracePhase::kInstant) {
      ++report.instant_count;
    }
  }
  // Spans still open at the end of the trace (crash mid-span) extend to the
  // last observed timestamp.
  for (ProfileNode& node : report.nodes) {
    if (node.truncated && node.end_ms == node.start_ms) node.end_ms = max_ts;
    node.dur_ms = node.end_ms - node.start_ms;
  }

  // Attach chain-linked instants as annotations on their parent span.
  for (const TraceEvent& e : events) {
    if (e.phase != TracePhase::kInstant || e.parent_span_id == 0) continue;
    auto it = by_span.find(e.parent_span_id);
    if (it == by_span.end()) continue;
    report.nodes[it->second].annotations.push_back(report.instants.size());
    report.instants.push_back(e);
  }

  // Wire up parent -> children edges; everything else is a root.
  std::vector<size_t> roots;
  for (size_t i = 0; i < report.nodes.size(); ++i) {
    const ProfileNode& node = report.nodes[i];
    auto it = node.parent_span_id != 0 ? by_span.find(node.parent_span_id)
                                       : by_span.end();
    if (it != by_span.end()) {
      report.nodes[it->second].children.push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  for (ProfileNode& node : report.nodes) {
    std::sort(node.children.begin(), node.children.end(),
              [&](size_t a, size_t b) {
                const ProfileNode& na = report.nodes[a];
                const ProfileNode& nb = report.nodes[b];
                if (na.start_ms != nb.start_ms) return na.start_ms < nb.start_ms;
                return na.span_id < nb.span_id;
              });
    double child_ms = 0;
    for (size_t child : node.children) child_ms += report.nodes[child].dur_ms;
    node.self_ms = node.dur_ms - child_ms;
  }

  // Chains: one per chain-identified root; chainless roots aggregate apart.
  for (size_t root : roots) {
    const ProfileNode& node = report.nodes[root];
    if (node.trace_id == 0) {
      size_t spans = 0, annotations = 0;
      AccumulateSubtree(report, root, &report.unchained_phase_ms, &spans,
                        &annotations);
      continue;
    }
    ChainProfile chain;
    chain.trace_id = node.trace_id;
    chain.root = root;
    chain.method = node.name;
    chain.component = node.component;
    chain.start_ms = node.start_ms;
    chain.dur_ms = node.dur_ms;
    AccumulateSubtree(report, root, &chain.phase_ms, &chain.span_count,
                      &chain.annotation_count);
    // Critical path: descend into the longest child at each level.
    size_t at = root;
    chain.critical_path.push_back(at);
    while (!report.nodes[at].children.empty()) {
      size_t best = report.nodes[at].children.front();
      for (size_t child : report.nodes[at].children) {
        if (report.nodes[child].dur_ms > report.nodes[best].dur_ms) {
          best = child;
        }
      }
      chain.critical_path.push_back(best);
      at = best;
    }
    report.chains.push_back(std::move(chain));
  }
  std::sort(report.chains.begin(), report.chains.end(),
            [](const ChainProfile& a, const ChainProfile& b) {
              if (a.dur_ms != b.dur_ms) return a.dur_ms > b.dur_ms;
              return a.trace_id < b.trace_id;
            });
  for (const ChainProfile& chain : report.chains) {
    for (const auto& [phase, ms] : chain.phase_ms) {
      report.total_phase_ms[phase] += ms;
    }
  }
  return report;
}

std::string RenderProfileText(const ProfileReport& report, size_t top_n) {
  std::string out;
  out += "phoenix_prof: ";
  out += std::to_string(report.event_count) + " events (";
  out += std::to_string(report.span_count) + " spans, ";
  out += std::to_string(report.instant_count) + " instants), ";
  out += std::to_string(report.chains.size()) + " chains, ";
  out += Fmt("%.3f", report.trace_start_ms) + " - " +
         Fmt("%.3f ms\n", report.trace_end_ms);

  double chain_total = 0;
  for (const ChainProfile& chain : report.chains) chain_total += chain.dur_ms;

  out += "\n-- phase breakdown (all chains) --\n";
  out += PadRight("phase", 22) + PadLeft("total_ms", 12) + PadLeft("%", 8) +
         "\n";
  double attributed = 0;
  for (const auto& [phase, ms] : report.total_phase_ms) {
    attributed += ms;
    double pct = chain_total > 0 ? 100.0 * ms / chain_total : 0;
    out += PadRight(phase, 22) + PadLeft(Fmt("%.3f", ms), 12) +
           PadLeft(Fmt("%.1f", pct), 8) + "\n";
  }
  out += PadRight("total", 22) + PadLeft(Fmt("%.3f", attributed), 12) +
         PadLeft(chain_total > 0 ? "100.0" : "0.0", 8) + "\n";
  if (!report.unchained_phase_ms.empty()) {
    out += "\n-- outside any chain (scheduler-issued work) --\n";
    for (const auto& [phase, ms] : report.unchained_phase_ms) {
      out += PadRight(phase, 22) + PadLeft(Fmt("%.3f", ms), 12) + "\n";
    }
  }

  // Per-root-method aggregation.
  struct MethodAgg {
    size_t chains = 0;
    double total_ms = 0;
    double slowest_ms = 0;
  };
  std::map<std::string, MethodAgg> by_method;
  for (const ChainProfile& chain : report.chains) {
    MethodAgg& agg = by_method[chain.method];
    ++agg.chains;
    agg.total_ms += chain.dur_ms;
    agg.slowest_ms = std::max(agg.slowest_ms, chain.dur_ms);
  }
  out += "\n-- per-method --\n";
  out += PadRight("method", 26) + PadLeft("chains", 8) +
         PadLeft("total_ms", 12) + PadLeft("mean_ms", 10) +
         PadLeft("slowest_ms", 12) + "\n";
  for (const auto& [method, agg] : by_method) {
    out += PadRight(method, 26) + PadLeft(std::to_string(agg.chains), 8) +
           PadLeft(Fmt("%.3f", agg.total_ms), 12) +
           PadLeft(Fmt("%.3f", agg.total_ms / static_cast<double>(agg.chains)),
                   10) +
           PadLeft(Fmt("%.3f", agg.slowest_ms), 12) + "\n";
  }

  size_t shown = std::min(top_n, report.chains.size());
  out += "\n-- slowest chains (top " + std::to_string(shown) +
         ", * = critical path) --\n";
  for (size_t i = 0; i < shown; ++i) {
    const ChainProfile& chain = report.chains[i];
    out += "\n#" + std::to_string(i + 1) + " trace " +
           std::to_string(chain.trace_id) + "  " + chain.method + " @" +
           chain.component + Fmt("  dur=%.3f ms", chain.dur_ms) + "  (" +
           std::to_string(chain.span_count) + " spans, " +
           std::to_string(chain.annotation_count) + " annotations)\n";
    out += "    phases:";
    // Largest buckets first so the dominant phase reads off the front.
    std::vector<std::pair<std::string, double>> phases(chain.phase_ms.begin(),
                                                       chain.phase_ms.end());
    std::sort(phases.begin(), phases.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    for (const auto& [phase, ms] : phases) {
      out += " " + phase + "=" + Fmt("%.3f", ms);
    }
    out += "\n";
    std::vector<bool> on_path(report.nodes.size(), false);
    for (size_t index : chain.critical_path) on_path[index] = true;
    RenderTree(report, chain.root, 0, on_path, &out);
  }
  return out;
}

std::string ProfileToJson(const ProfileReport& report) {
  JsonWriter w(2);
  w.BeginObject();
  w.Key("schema").String("phoenix.prof.v1");
  w.Key("events").Number(static_cast<uint64_t>(report.event_count));
  w.Key("spans").Number(static_cast<uint64_t>(report.span_count));
  w.Key("instants").Number(static_cast<uint64_t>(report.instant_count));
  w.Key("trace_start_ms").Number(report.trace_start_ms);
  w.Key("trace_end_ms").Number(report.trace_end_ms);
  w.Key("phase_totals_ms").BeginObject();
  for (const auto& [phase, ms] : report.total_phase_ms) {
    w.Key(phase).Number(ms);
  }
  w.EndObject();
  w.Key("unchained_phase_ms").BeginObject();
  for (const auto& [phase, ms] : report.unchained_phase_ms) {
    w.Key(phase).Number(ms);
  }
  w.EndObject();
  w.Key("chains").BeginArray();
  for (const ChainProfile& chain : report.chains) {
    w.BeginObject();
    w.Key("trace").Number(chain.trace_id);
    w.Key("method").String(chain.method);
    w.Key("component").String(chain.component);
    w.Key("start_ms").Number(chain.start_ms);
    w.Key("dur_ms").Number(chain.dur_ms);
    w.Key("spans").Number(static_cast<uint64_t>(chain.span_count));
    w.Key("annotations").Number(static_cast<uint64_t>(chain.annotation_count));
    w.Key("phases_ms").BeginObject();
    for (const auto& [phase, ms] : chain.phase_ms) {
      w.Key(phase).Number(ms);
    }
    w.EndObject();
    w.Key("critical_path").BeginArray();
    for (size_t index : chain.critical_path) {
      const ProfileNode& node = report.nodes[index];
      w.BeginObject();
      w.Key("cat").String(node.category);
      w.Key("name").String(node.name);
      w.Key("comp").String(node.component);
      w.Key("dur_ms").Number(node.dur_ms);
      w.Key("self_ms").Number(node.self_ms);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace phoenix::obs
