#ifndef PHOENIX_OBS_BENCH_REPORTER_H_
#define PHOENIX_OBS_BENCH_REPORTER_H_

// Machine-readable benchmark reporting. Every bench binary serializes its
// run into BENCH_<name>.json with a stable schema ("phoenix.bench.v1"):
//
//   {
//     "schema": "phoenix.bench.v1",
//     "bench": "table4_log_optimizations",
//     "variants": [
//       {
//         "name": "persistent_persistent_optimized_remote",
//         "metrics": {"forces": 928, "appends": 1392, "bytes_forced": ...},
//         "latency_ms": {"count":..., "mean":..., "p50":..., "p95":...,
//                        "p99":..., "min":..., "max":...}
//       }, ...
//     ]
//   }
//
// Variants appear in insertion order; metrics are sorted by name; all
// numbers are deterministic sim-time values, so a same-seed rerun emits a
// byte-identical file.
//
// Reports additionally carry an additive "meta" block after "variants"
// describing every metric that appears in the report — its unit and its
// direction of improvement:
//
//   "meta": {
//     "metrics": {
//       "forces": {"direction": "lower_is_better", "unit": "count"},
//       "recovery_ms": {"direction": "lower_is_better", "unit": "ms"},
//       ...
//     }
//   }
//
// The block is derived metadata only (no measured values live there), so
// adding it never perturbs the pinned goldens; tools/phoenix_benchdiff uses
// it to classify cross-run deltas as improvements or regressions.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/metrics.h"

namespace phoenix::obs {

inline constexpr char kBenchSchema[] = "phoenix.bench.v1";

// Which way a metric improves: smaller (times, forced writes), larger
// (speedups, contract booleans like state_matches_sequential), or neither —
// workload descriptors and injected-fault counters are "informational" and
// never classify as a regression.
enum class MetricDirection {
  kLowerIsBetter,
  kHigherIsBetter,
  kInformational,
};

// JSON spelling used in the report meta block ("lower_is_better", ...).
const char* MetricDirectionName(MetricDirection direction);

// Inverse of MetricDirectionName. Returns false on unknown spellings.
bool ParseMetricDirection(std::string_view name, MetricDirection* out);

// Unit + direction for one metric.
struct MetricMeta {
  std::string unit;  // "ms", "count", "bytes", "ratio", "bool", "" unknown
  MetricDirection direction = MetricDirection::kInformational;
};

// Built-in metadata for the metric names the benches and report producers
// emit (forces, recovery_ms, ms_per_call, ...). nullptr when unknown.
const MetricMeta* DefaultMetricMeta(const std::string& metric);

// Metadata for an arbitrary metric name: the default table when the name is
// known, otherwise a suffix heuristic (`*_ms*` counts as milliseconds) with
// direction informational.
MetricMeta ResolveMetricMeta(const std::string& metric);

// One measured configuration of a bench (an "algorithm variant").
class BenchVariant {
 public:
  explicit BenchVariant(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  BenchVariant& SetMetric(const std::string& metric, double value);
  BenchVariant& SetMetric(const std::string& metric, uint64_t value);
  BenchVariant& SetMetric(const std::string& metric, int64_t value);

  // Non-numeric annotation (e.g. the flight-recorder dump attached to a
  // violating chaos run). Emitted as an "info" object, sorted by key.
  BenchVariant& SetInfo(const std::string& key, std::string value);

  // Per-call latency distribution for this variant.
  BenchVariant& SetLatency(const Histogram& histogram);
  BenchVariant& SetLatency(const LatencySummary& summary);

  // Metric name -> deterministically formatted number, sorted by name.
  const std::map<std::string, std::string>& metrics() const {
    return metrics_;
  }

  void WriteJson(JsonWriter& w) const;

 private:
  std::string name_;
  std::map<std::string, std::string> metrics_;  // name -> formatted number
  std::map<std::string, std::string> info_;     // key -> free-form string
  bool has_latency_ = false;
  LatencySummary latency_;
};

class BenchReporter {
 public:
  // `schema` tags the report format; benches use the default, other report
  // producers (e.g. the chaos-campaign harness, "phoenix.chaos.v1") pass
  // their own.
  explicit BenchReporter(std::string bench_name,
                         std::string schema = kBenchSchema)
      : bench_name_(std::move(bench_name)), schema_(std::move(schema)) {}

  BenchReporter(const BenchReporter&) = delete;
  BenchReporter& operator=(const BenchReporter&) = delete;

  const std::string& bench_name() const { return bench_name_; }
  const std::string& schema() const { return schema_; }

  BenchVariant& AddVariant(const std::string& name);
  const std::vector<BenchVariant>& variants() const { return variants_; }

  // Overrides (or supplies, for names the default table doesn't know) the
  // meta-block entry for `metric`. Bench mains only need this for bench-local
  // metrics; everything in CaptureBench and the common sweeps is covered by
  // DefaultMetricMeta.
  BenchReporter& DescribeMetric(const std::string& metric, std::string unit,
                                MetricDirection direction);

  // The meta-block entry that ToJson will emit for `metric`: the DescribeMetric
  // override when present, else ResolveMetricMeta.
  MetricMeta MetaFor(const std::string& metric) const;

  std::string ToJson() const;

  // Writes ToJson() to `path`; empty path means "BENCH_<bench_name>.json"
  // in the current directory. Returns the path written.
  Result<std::string> WriteFile(const std::string& path = "") const;

 private:
  std::string bench_name_;
  std::string schema_;
  std::vector<BenchVariant> variants_;
  std::map<std::string, MetricMeta> metric_meta_;  // DescribeMetric overrides
};

// --- artifact placement ---
//
// Bench binaries historically wrote BENCH_<name>.json into whatever the
// current directory happened to be. Relative artifact paths now resolve
// against an output directory chosen in this order: SetBenchOutDir (the
// --out-dir flag), the PHOENIX_BENCH_DIR environment variable, the current
// directory. Absolute paths pass through untouched.

// Explicit override; wins over PHOENIX_BENCH_DIR. Empty resets to the
// environment/cwd default.
void SetBenchOutDir(std::string dir);

// Resolves a report/trace/flight-dump filename against the output
// directory, creating the directory on first use.
std::string ResolveBenchPath(const std::string& filename);

// Standard bench prologue: consumes --out-dir=DIR from the command line,
// removing it from argv (other arguments are left for the bench — or a
// wrapped framework like google-benchmark — to parse).
void InitBenchMain(int& argc, char** argv);

// Writes the report (WriteFile) and names the artifact on stdout so the
// human-readable table and the JSON stay associated. The single exit path
// every bench binary and report producer goes through.
void AnnounceReport(const BenchReporter& reporter, const std::string& path = "");

}  // namespace phoenix::obs

#endif  // PHOENIX_OBS_BENCH_REPORTER_H_
