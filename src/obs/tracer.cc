#include "obs/tracer.h"

#include <algorithm>
#include <limits>
#include <map>

#include "obs/json.h"

namespace phoenix::obs {

TraceArg Arg(std::string key, std::string value) {
  return TraceArg{std::move(key), std::move(value), false};
}
TraceArg Arg(std::string key, const char* value) {
  return TraceArg{std::move(key), value, false};
}
TraceArg Arg(std::string key, double value) {
  return TraceArg{std::move(key), JsonNumber(value), true};
}
TraceArg Arg(std::string key, uint64_t value) {
  return TraceArg{std::move(key), JsonNumber(value), true};
}
TraceArg Arg(std::string key, int64_t value) {
  return TraceArg{std::move(key), JsonNumber(value), true};
}
TraceArg Arg(std::string key, int value) {
  return TraceArg{std::move(key), JsonNumber(static_cast<int64_t>(value)),
                  true};
}

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kBegin:
      return "B";
    case TracePhase::kEnd:
      return "E";
    case TracePhase::kInstant:
      return "I";
  }
  return "?";
}

void Tracer::Record(TraceEvent event) {
  if (events_.size() >= kMaxEvents) {
    ++dropped_events_;
    return;
  }
  events_.push_back(std::move(event));
}

void Tracer::Instant(std::string_view category, std::string_view name,
                     std::string_view component, std::vector<TraceArg> args) {
  if (!enabled_) return;
  TraceEvent event;
  event.ts_ms = clock_->NowMs();
  event.phase = TracePhase::kInstant;
  event.category = category;
  event.name = name;
  event.component = component;
  event.args = std::move(args);
  Record(std::move(event));
}

Tracer::Span::Span(Tracer* tracer, std::string category, std::string name,
                   std::string component)
    : tracer_(tracer),
      category_(std::move(category)),
      name_(std::move(name)),
      component_(std::move(component)) {}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    category_ = std::move(other.category_);
    name_ = std::move(other.name_);
    component_ = std::move(other.component_);
    end_args_ = std::move(other.end_args_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Tracer::Span::AddArg(TraceArg arg) {
  if (tracer_ == nullptr) return;
  end_args_.push_back(std::move(arg));
}

void Tracer::Span::End() {
  if (tracer_ == nullptr) return;
  TraceEvent event;
  event.ts_ms = tracer_->clock_->NowMs();
  event.phase = TracePhase::kEnd;
  event.category = std::move(category_);
  event.name = std::move(name_);
  event.component = std::move(component_);
  event.args = std::move(end_args_);
  tracer_->Record(std::move(event));
  tracer_ = nullptr;
}

Tracer::Span Tracer::StartSpan(std::string_view category,
                               std::string_view name,
                               std::string_view component,
                               std::vector<TraceArg> args) {
  if (!enabled_) return Span();
  TraceEvent event;
  event.ts_ms = clock_->NowMs();
  event.phase = TracePhase::kBegin;
  event.category = category;
  event.name = name;
  event.component = component;
  event.args = std::move(args);
  Record(std::move(event));
  return Span(this, std::string(category), std::string(name),
              std::string(component));
}

void Tracer::Clear() {
  events_.clear();
  dropped_events_ = 0;
}

namespace {

void WriteArgsObject(JsonWriter& w, const std::vector<TraceArg>& args) {
  w.Key("args").BeginObject();
  for (const TraceArg& arg : args) {
    w.Key(arg.key);
    if (arg.numeric) {
      w.Raw(arg.value);
    } else {
      w.String(arg.value);
    }
  }
  w.EndObject();
}

}  // namespace

std::string Tracer::ExportJsonl() const {
  std::string out;
  for (const TraceEvent& event : events_) {
    JsonWriter w;
    w.BeginObject();
    w.Key("ts_ms").Number(event.ts_ms);
    w.Key("ph").String(TracePhaseName(event.phase));
    w.Key("cat").String(event.category);
    w.Key("name").String(event.name);
    w.Key("comp").String(event.component);
    WriteArgsObject(w, event.args);
    w.EndObject();
    out += w.str();
    out.push_back('\n');
  }
  return out;
}

std::string Tracer::ExportChromeTrace() const {
  // Stable component -> pid mapping in first-appearance order.
  std::map<std::string, int> pids;
  std::vector<std::string> order;
  for (const TraceEvent& event : events_) {
    if (pids.emplace(event.component, 0).second) {
      order.push_back(event.component);
    }
  }
  int next = 1;
  std::map<std::string, int> assigned;
  for (const std::string& comp : order) assigned[comp] = next++;

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  for (const std::string& comp : order) {
    w.BeginObject();
    w.Key("ph").String("M");
    w.Key("name").String("process_name");
    w.Key("pid").Number(static_cast<int64_t>(assigned[comp]));
    w.Key("tid").Number(0);
    w.Key("args").BeginObject().Key("name").String(comp).EndObject();
    w.EndObject();
  }
  for (const TraceEvent& event : events_) {
    w.BeginObject();
    // Chrome wants "i" for instants; B/E pass through.
    w.Key("ph").String(event.phase == TracePhase::kInstant
                           ? "i"
                           : TracePhaseName(event.phase));
    w.Key("ts").Number(event.ts_ms * 1000.0);  // microseconds
    w.Key("pid").Number(static_cast<int64_t>(assigned[event.component]));
    w.Key("tid").Number(0);
    w.Key("cat").String(event.category);
    w.Key("name").String(event.name);
    if (event.phase == TracePhase::kInstant) w.Key("s").String("p");
    WriteArgsObject(w, event.args);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Result<std::vector<TraceEvent>> ParseTraceJsonl(std::string_view text) {
  std::vector<TraceEvent> events;
  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    Result<JsonValue> parsed = ParseJson(line);
    if (!parsed.ok()) {
      return Status::InvalidArgument("trace line " + std::to_string(line_no) +
                                     ": " + parsed.status().message());
    }
    const JsonValue& v = *parsed;
    TraceEvent event;
    if (const JsonValue* ts = v.Find("ts_ms")) event.ts_ms = ts->AsNumber();
    if (const JsonValue* ph = v.Find("ph")) {
      const std::string& p = ph->AsString();
      event.phase = p == "B"   ? TracePhase::kBegin
                    : p == "E" ? TracePhase::kEnd
                               : TracePhase::kInstant;
    }
    if (const JsonValue* cat = v.Find("cat")) event.category = cat->AsString();
    if (const JsonValue* name = v.Find("name")) event.name = name->AsString();
    if (const JsonValue* comp = v.Find("comp")) {
      event.component = comp->AsString();
    }
    if (const JsonValue* args = v.Find("args");
        args != nullptr && args->kind() == JsonValue::Kind::kObject) {
      for (const auto& [key, value] : args->AsObject()) {
        TraceArg arg;
        arg.key = key;
        if (value.kind() == JsonValue::Kind::kNumber) {
          arg.numeric = true;
          arg.value = JsonNumber(value.AsNumber());
        } else if (value.kind() == JsonValue::Kind::kString) {
          arg.value = value.AsString();
        }
        event.args.push_back(std::move(arg));
      }
    }
    events.push_back(std::move(event));
  }
  return events;
}

std::vector<TraceEvent> FilterTrace(const std::vector<TraceEvent>& events,
                                    std::string_view component,
                                    double from_ms, double to_ms) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events) {
    if (!component.empty() &&
        event.component.find(component) == std::string::npos) {
      continue;
    }
    if (event.ts_ms < from_ms || event.ts_ms >= to_ms) continue;
    out.push_back(event);
  }
  return out;
}

}  // namespace phoenix::obs
