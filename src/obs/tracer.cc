#include "obs/tracer.h"

#include <algorithm>
#include <limits>
#include <map>

#include "obs/json.h"

namespace phoenix::obs {

TraceArg Arg(std::string key, std::string value) {
  return TraceArg{std::move(key), std::move(value), false};
}
TraceArg Arg(std::string key, const char* value) {
  return TraceArg{std::move(key), value, false};
}
TraceArg Arg(std::string key, double value) {
  return TraceArg{std::move(key), JsonNumber(value), true};
}
TraceArg Arg(std::string key, uint64_t value) {
  return TraceArg{std::move(key), JsonNumber(value), true};
}
TraceArg Arg(std::string key, int64_t value) {
  return TraceArg{std::move(key), JsonNumber(value), true};
}
TraceArg Arg(std::string key, int value) {
  return TraceArg{std::move(key), JsonNumber(static_cast<int64_t>(value)),
                  true};
}

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kBegin:
      return "B";
    case TracePhase::kEnd:
      return "E";
    case TracePhase::kInstant:
      return "I";
  }
  return "?";
}

void Tracer::EnableFlightRecorder(size_t events_per_component) {
  flight_capacity_ = events_per_component;
  if (flight_capacity_ == 0) flight_.clear();
}

void Tracer::Record(TraceEvent event) {
  if (flight_capacity_ > 0) {
    auto& ring = flight_[event.component];
    ring.emplace_back(flight_seq_++, event);
    if (ring.size() > flight_capacity_) ring.pop_front();
  }
  if (!enabled_) return;
  if (events_.size() >= kMaxEvents) {
    ++dropped_events_;
    return;
  }
  events_.push_back(std::move(event));
}

void Tracer::Instant(std::string_view category, std::string_view name,
                     std::string_view component, std::vector<TraceArg> args) {
  Instant(category, name, component, SpanLink{}, std::move(args));
}

void Tracer::Instant(std::string_view category, std::string_view name,
                     std::string_view component, SpanLink link,
                     std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.ts_ms = clock_->NowMs();
  event.phase = TracePhase::kInstant;
  event.category = category;
  event.name = name;
  event.component = component;
  event.trace_id = link.trace_id;
  event.parent_span_id = link.parent_id;
  event.args = std::move(args);
  Record(std::move(event));
}

Tracer::Span::Span(Tracer* tracer, std::string category, std::string name,
                   std::string component, uint64_t trace_id, uint64_t span_id)
    : tracer_(tracer),
      category_(std::move(category)),
      name_(std::move(name)),
      component_(std::move(component)),
      trace_id_(trace_id),
      span_id_(span_id) {}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    category_ = std::move(other.category_);
    name_ = std::move(other.name_);
    component_ = std::move(other.component_);
    trace_id_ = other.trace_id_;
    span_id_ = other.span_id_;
    end_args_ = std::move(other.end_args_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Tracer::Span::AddArg(TraceArg arg) {
  if (tracer_ == nullptr) return;
  end_args_.push_back(std::move(arg));
}

void Tracer::Span::End() {
  if (tracer_ == nullptr) return;
  TraceEvent event;
  event.ts_ms = tracer_->clock_->NowMs();
  event.phase = TracePhase::kEnd;
  event.category = std::move(category_);
  event.name = std::move(name_);
  event.component = std::move(component_);
  event.trace_id = trace_id_;
  event.span_id = span_id_;
  event.args = std::move(end_args_);
  tracer_->Record(std::move(event));
  tracer_ = nullptr;
}

Tracer::Span Tracer::StartSpan(std::string_view category,
                               std::string_view name,
                               std::string_view component,
                               std::vector<TraceArg> args) {
  return StartSpan(category, name, component, SpanLink{}, std::move(args));
}

Tracer::Span Tracer::StartSpan(std::string_view category,
                               std::string_view name,
                               std::string_view component, SpanLink link,
                               std::vector<TraceArg> args) {
  if (!enabled()) return Span();
  uint64_t span_id = next_span_id_++;
  TraceEvent event;
  event.ts_ms = clock_->NowMs();
  event.phase = TracePhase::kBegin;
  event.category = category;
  event.name = name;
  event.component = component;
  event.trace_id = link.trace_id;
  event.span_id = span_id;
  event.parent_span_id = link.parent_id;
  event.args = std::move(args);
  Record(std::move(event));
  return Span(this, std::string(category), std::string(name),
              std::string(component), link.trace_id, span_id);
}

void Tracer::Clear() {
  events_.clear();
  dropped_events_ = 0;
  flight_.clear();
  flight_seq_ = 0;
  next_trace_id_ = 1;
  next_span_id_ = 1;
}

namespace {

void WriteArgsObject(JsonWriter& w, const std::vector<TraceArg>& args) {
  w.Key("args").BeginObject();
  for (const TraceArg& arg : args) {
    w.Key(arg.key);
    if (arg.numeric) {
      w.Raw(arg.value);
    } else {
      w.String(arg.value);
    }
  }
  w.EndObject();
}

void AppendJsonlLine(std::string& out, const TraceEvent& event) {
  JsonWriter w;
  w.BeginObject();
  w.Key("ts_ms").Number(event.ts_ms);
  w.Key("ph").String(TracePhaseName(event.phase));
  w.Key("cat").String(event.category);
  w.Key("name").String(event.name);
  w.Key("comp").String(event.component);
  if (event.trace_id != 0) w.Key("trace").Number(event.trace_id);
  if (event.span_id != 0) w.Key("span").Number(event.span_id);
  if (event.parent_span_id != 0) w.Key("parent").Number(event.parent_span_id);
  WriteArgsObject(w, event.args);
  w.EndObject();
  out += w.str();
  out.push_back('\n');
}

}  // namespace

std::string Tracer::ExportJsonl() const {
  std::string out;
  for (const TraceEvent& event : events_) AppendJsonlLine(out, event);
  return out;
}

std::string Tracer::ExportFlightRecorder() const {
  // Merge the per-component rings back into global record order. The
  // sequence numbers are allocated deterministically, so the dump is
  // byte-identical across same-seed runs.
  std::vector<const std::pair<uint64_t, TraceEvent>*> merged;
  for (const auto& [comp, ring] : flight_) {
    for (const auto& entry : ring) merged.push_back(&entry);
  }
  std::sort(merged.begin(), merged.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  std::string out;
  for (const auto* entry : merged) AppendJsonlLine(out, entry->second);
  return out;
}

std::string Tracer::ExportChromeTrace() const {
  // Stable component -> pid mapping in first-appearance order, and a
  // per-chain tid so overlapping sessions (parked chains) render as
  // separate tracks instead of corrupting each other's B/E nesting.
  // tid 0 is reserved for chain-less (component-scoped) events.
  std::map<std::string, int> pids;
  std::vector<std::string> order;
  std::map<uint64_t, int> tids;
  for (const TraceEvent& event : events_) {
    if (pids.emplace(event.component, 0).second) {
      order.push_back(event.component);
    }
    if (event.trace_id != 0 && tids.find(event.trace_id) == tids.end()) {
      int next_tid = static_cast<int>(tids.size()) + 1;
      tids[event.trace_id] = next_tid;
    }
  }
  int next = 1;
  std::map<std::string, int> assigned;
  for (const std::string& comp : order) assigned[comp] = next++;
  auto tid_of = [&tids](const TraceEvent& event) {
    if (event.trace_id == 0) return 0;
    return tids.at(event.trace_id);
  };

  // Where each span begins, for flow arrows between processes.
  struct SpanSite {
    int pid = 0;
    int tid = 0;
    double ts_ms = 0;
  };
  std::map<uint64_t, SpanSite> begin_site;
  for (const TraceEvent& event : events_) {
    if (event.phase == TracePhase::kBegin && event.span_id != 0) {
      begin_site.emplace(
          event.span_id,
          SpanSite{assigned[event.component], tid_of(event), event.ts_ms});
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  for (const std::string& comp : order) {
    w.BeginObject();
    w.Key("ph").String("M");
    w.Key("name").String("process_name");
    w.Key("pid").Number(static_cast<int64_t>(assigned[comp]));
    w.Key("tid").Number(0);
    w.Key("args").BeginObject().Key("name").String(comp).EndObject();
    w.EndObject();
  }
  for (const TraceEvent& event : events_) {
    const int pid = assigned[event.component];
    const int tid = tid_of(event);
    w.BeginObject();
    // Chrome wants "i" for instants; B/E pass through.
    w.Key("ph").String(event.phase == TracePhase::kInstant
                           ? "i"
                           : TracePhaseName(event.phase));
    w.Key("ts").Number(event.ts_ms * 1000.0);  // microseconds
    w.Key("pid").Number(static_cast<int64_t>(pid));
    w.Key("tid").Number(static_cast<int64_t>(tid));
    w.Key("cat").String(event.category);
    w.Key("name").String(event.name);
    if (event.phase == TracePhase::kInstant) w.Key("s").String("p");
    WriteArgsObject(w, event.args);
    w.EndObject();
    // A span beginning under a parent on another track gets a flow arrow
    // from the parent's begin to this begin, so Perfetto draws the
    // cross-process (or cross-chain-track) call chain.
    if (event.phase == TracePhase::kBegin && event.parent_span_id != 0) {
      auto parent = begin_site.find(event.parent_span_id);
      if (parent == begin_site.end()) continue;
      if (parent->second.pid == pid && parent->second.tid == tid) continue;
      w.BeginObject();
      w.Key("ph").String("s");
      w.Key("id").Number(static_cast<int64_t>(event.span_id));
      w.Key("ts").Number(parent->second.ts_ms * 1000.0);
      w.Key("pid").Number(static_cast<int64_t>(parent->second.pid));
      w.Key("tid").Number(static_cast<int64_t>(parent->second.tid));
      w.Key("cat").String("flow");
      w.Key("name").String(event.name);
      w.EndObject();
      w.BeginObject();
      w.Key("ph").String("f");
      w.Key("bp").String("e");
      w.Key("id").Number(static_cast<int64_t>(event.span_id));
      w.Key("ts").Number(event.ts_ms * 1000.0);
      w.Key("pid").Number(static_cast<int64_t>(pid));
      w.Key("tid").Number(static_cast<int64_t>(tid));
      w.Key("cat").String("flow");
      w.Key("name").String(event.name);
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Result<std::vector<TraceEvent>> ParseTraceJsonl(std::string_view text) {
  std::vector<TraceEvent> events;
  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    Result<JsonValue> parsed = ParseJson(line);
    if (!parsed.ok()) {
      return Status::InvalidArgument("trace line " + std::to_string(line_no) +
                                     ": " + parsed.status().message());
    }
    const JsonValue& v = *parsed;
    TraceEvent event;
    if (const JsonValue* ts = v.Find("ts_ms")) event.ts_ms = ts->AsNumber();
    if (const JsonValue* ph = v.Find("ph")) {
      const std::string& p = ph->AsString();
      event.phase = p == "B"   ? TracePhase::kBegin
                    : p == "E" ? TracePhase::kEnd
                               : TracePhase::kInstant;
    }
    if (const JsonValue* cat = v.Find("cat")) event.category = cat->AsString();
    if (const JsonValue* name = v.Find("name")) event.name = name->AsString();
    if (const JsonValue* comp = v.Find("comp")) {
      event.component = comp->AsString();
    }
    if (const JsonValue* trace = v.Find("trace")) {
      event.trace_id = static_cast<uint64_t>(trace->AsNumber());
    }
    if (const JsonValue* span = v.Find("span")) {
      event.span_id = static_cast<uint64_t>(span->AsNumber());
    }
    if (const JsonValue* parent = v.Find("parent")) {
      event.parent_span_id = static_cast<uint64_t>(parent->AsNumber());
    }
    if (const JsonValue* args = v.Find("args");
        args != nullptr && args->kind() == JsonValue::Kind::kObject) {
      for (const auto& [key, value] : args->AsObject()) {
        TraceArg arg;
        arg.key = key;
        if (value.kind() == JsonValue::Kind::kNumber) {
          arg.numeric = true;
          arg.value = JsonNumber(value.AsNumber());
        } else if (value.kind() == JsonValue::Kind::kString) {
          arg.value = value.AsString();
        }
        event.args.push_back(std::move(arg));
      }
    }
    events.push_back(std::move(event));
  }
  return events;
}

std::vector<TraceEvent> FilterTrace(const std::vector<TraceEvent>& events,
                                    std::string_view component,
                                    std::string_view category, double from_ms,
                                    double to_ms) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events) {
    if (!component.empty() &&
        event.component.find(component) == std::string::npos) {
      continue;
    }
    if (!category.empty() && event.category != category) continue;
    if (event.ts_ms < from_ms || event.ts_ms >= to_ms) continue;
    out.push_back(event);
  }
  return out;
}

}  // namespace phoenix::obs
