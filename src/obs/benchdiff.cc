#include "obs/benchdiff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "common/strings.h"
#include "obs/json.h"

namespace phoenix::obs {
namespace {

Result<std::string> ReadTextFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);
  return content;
}

// Resolution order for a metric's meta: the candidate report's meta block
// (authoritative — it came from the code under test), the baseline's (still
// present after a metric is removed), then the built-in table.
MetricMeta MetaForMetric(const ParsedReport* baseline,
                         const ParsedReport* candidate,
                         const std::string& metric) {
  if (candidate != nullptr) {
    auto it = candidate->meta.find(metric);
    if (it != candidate->meta.end()) return it->second;
  }
  if (baseline != nullptr) {
    auto it = baseline->meta.find(metric);
    if (it != baseline->meta.end()) return it->second;
  }
  return ResolveMetricMeta(metric);
}

const ToleranceBand& BandFor(const DiffOptions& options,
                             const std::string& metric) {
  auto it = options.metric_band.find(metric);
  return it == options.metric_band.end() ? options.default_band : it->second;
}

// One-sided metric entry (new or removed): still carries its value so the
// report shows what appeared/disappeared.
MetricDelta OneSidedDelta(const std::string& metric, const MetricMeta& meta,
                          double value, bool in_candidate) {
  MetricDelta d;
  d.metric = metric;
  d.meta = meta;
  d.cls = in_candidate ? DeltaClass::kNew : DeltaClass::kRemoved;
  d.in_baseline = !in_candidate;
  d.in_candidate = in_candidate;
  (in_candidate ? d.candidate : d.baseline) = value;
  return d;
}

VariantDiff OneSidedVariant(const ParsedReport* baseline,
                            const ParsedReport* candidate,
                            const ParsedVariant& variant, bool in_candidate) {
  VariantDiff vd;
  vd.name = variant.name;
  vd.cls = in_candidate ? DeltaClass::kNew : DeltaClass::kRemoved;
  for (const auto& [metric, value] : variant.metrics) {
    vd.metrics.push_back(OneSidedDelta(
        metric, MetaForMetric(baseline, candidate, metric), value,
        in_candidate));
  }
  return vd;
}

VariantDiff DiffVariant(const ParsedReport* base_report,
                        const ParsedReport* cand_report,
                        const ParsedVariant& base, const ParsedVariant& cand,
                        const DiffOptions& options) {
  VariantDiff vd;
  vd.name = base.name;
  auto bi = base.metrics.begin();
  auto ci = cand.metrics.begin();
  while (bi != base.metrics.end() || ci != cand.metrics.end()) {
    int order = bi == base.metrics.end()   ? 1
                : ci == cand.metrics.end() ? -1
                : bi->first.compare(ci->first) < 0 ? -1
                : bi->first == ci->first           ? 0
                                                   : 1;
    if (order < 0) {
      vd.metrics.push_back(OneSidedDelta(
          bi->first, MetaForMetric(base_report, cand_report, bi->first),
          bi->second, /*in_candidate=*/false));
      ++bi;
    } else if (order > 0) {
      vd.metrics.push_back(OneSidedDelta(
          ci->first, MetaForMetric(base_report, cand_report, ci->first),
          ci->second, /*in_candidate=*/true));
      ++ci;
    } else {
      MetricDelta d;
      d.metric = bi->first;
      d.meta = MetaForMetric(base_report, cand_report, d.metric);
      d.in_baseline = d.in_candidate = true;
      d.baseline = bi->second;
      d.candidate = ci->second;
      d.delta = d.candidate - d.baseline;
      d.delta_rel = d.baseline == 0 ? 0 : d.delta / std::fabs(d.baseline);
      d.cls = ClassifyDelta(d.baseline, d.candidate, d.meta.direction,
                            BandFor(options, d.metric));
      vd.metrics.push_back(std::move(d));
      ++bi;
      ++ci;
    }
  }
  return vd;
}

BenchDiffEntry DiffBench(const ParsedReport* base, const ParsedReport* cand,
                         const DiffOptions& options) {
  BenchDiffEntry entry;
  entry.bench = base != nullptr ? base->bench : cand->bench;
  if (base == nullptr || cand == nullptr) {
    entry.cls = cand != nullptr ? DeltaClass::kNew : DeltaClass::kRemoved;
    const ParsedReport* present = base != nullptr ? base : cand;
    for (const ParsedVariant& v : present->variants) {
      entry.variants.push_back(
          OneSidedVariant(base, cand, v, /*in_candidate=*/cand != nullptr));
    }
    return entry;
  }
  std::map<std::string, const ParsedVariant*> cand_by_name;
  for (const ParsedVariant& v : cand->variants) cand_by_name[v.name] = &v;
  std::set<std::string> matched;
  // Baseline order first (matched + removed), then candidate-only variants
  // in candidate order: stable under re-runs, natural to read.
  for (const ParsedVariant& v : base->variants) {
    auto it = cand_by_name.find(v.name);
    if (it == cand_by_name.end()) {
      entry.variants.push_back(
          OneSidedVariant(base, cand, v, /*in_candidate=*/false));
    } else {
      matched.insert(v.name);
      entry.variants.push_back(DiffVariant(base, cand, v, *it->second,
                                           options));
    }
  }
  for (const ParsedVariant& v : cand->variants) {
    if (matched.count(v.name) == 0 &&
        std::none_of(base->variants.begin(), base->variants.end(),
                     [&](const ParsedVariant& b) { return b.name == v.name; })) {
      entry.variants.push_back(
          OneSidedVariant(base, cand, v, /*in_candidate=*/true));
    }
  }
  return entry;
}

void CountDeltas(const BenchDiffEntry& entry, BenchDiff* diff) {
  for (const VariantDiff& vd : entry.variants) {
    for (const MetricDelta& d : vd.metrics) {
      switch (d.cls) {
        case DeltaClass::kImprovement:
          ++diff->improvements;
          break;
        case DeltaClass::kRegression:
          ++diff->regressions;
          break;
        case DeltaClass::kNeutral:
          ++diff->neutral;
          break;
        case DeltaClass::kNew:
          ++diff->added;
          break;
        case DeltaClass::kRemoved:
          ++diff->removed;
          break;
      }
    }
  }
}

Result<ToleranceBand> ParseBand(const JsonValue& value) {
  ToleranceBand band;
  if (const JsonValue* abs = value.Find("abs")) band.abs = abs->AsNumber();
  if (const JsonValue* rel = value.Find("rel_pct")) {
    band.rel = rel->AsNumber() / 100.0;
  }
  if (band.abs < 0 || band.rel < 0) {
    return Status::InvalidArgument("negative tolerance band");
  }
  return band;
}

}  // namespace

const char* DeltaClassName(DeltaClass cls) {
  switch (cls) {
    case DeltaClass::kImprovement:
      return "improvement";
    case DeltaClass::kRegression:
      return "regression";
    case DeltaClass::kNeutral:
      return "neutral";
    case DeltaClass::kNew:
      return "new";
    case DeltaClass::kRemoved:
      return "removed";
  }
  return "neutral";
}

Result<ParsedReport> ParseBenchReport(std::string_view text) {
  Result<JsonValue> parsed = ParseJson(text);
  if (!parsed.ok()) return parsed.status();
  ParsedReport report;
  const JsonValue* bench = parsed->Find("bench");
  if (bench == nullptr || bench->kind() != JsonValue::Kind::kString) {
    return Status::InvalidArgument("bench report missing \"bench\" name");
  }
  report.bench = bench->AsString();
  if (const JsonValue* schema = parsed->Find("schema")) {
    report.schema = schema->AsString();
  }
  const JsonValue* variants = parsed->Find("variants");
  if (variants == nullptr || variants->kind() != JsonValue::Kind::kArray) {
    return Status::InvalidArgument("bench report missing \"variants\"");
  }
  for (const JsonValue& v : variants->AsArray()) {
    const JsonValue* name = v.Find("name");
    if (name == nullptr) {
      return Status::InvalidArgument("variant missing \"name\"");
    }
    ParsedVariant variant;
    variant.name = name->AsString();
    if (const JsonValue* metrics = v.Find("metrics")) {
      for (const auto& [metric, value] : metrics->AsObject()) {
        if (value.kind() != JsonValue::Kind::kNumber) continue;
        variant.metrics[metric] = value.AsNumber();
      }
    }
    report.variants.push_back(std::move(variant));
  }
  if (const JsonValue* meta = parsed->Find("meta")) {
    if (const JsonValue* metrics = meta->Find("metrics")) {
      for (const auto& [metric, entry] : metrics->AsObject()) {
        MetricMeta mm;
        if (const JsonValue* unit = entry.Find("unit")) {
          mm.unit = unit->AsString();
        }
        if (const JsonValue* dir = entry.Find("direction")) {
          (void)ParseMetricDirection(dir->AsString(), &mm.direction);
        }
        report.meta[metric] = std::move(mm);
      }
    }
  }
  return report;
}

Result<std::vector<ParsedReport>> LoadBenchReportDir(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::NotFound("bench report dir missing: " + dir);
  }
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    if (StartsWith(name, "BENCH_") && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json") {
      names.push_back(name);
    }
  }
  if (ec) return Status::Internal("cannot list " + dir);
  std::sort(names.begin(), names.end());
  if (names.empty()) {
    return Status::NotFound("no BENCH_*.json reports in " + dir);
  }
  std::vector<ParsedReport> reports;
  for (const std::string& name : names) {
    Result<std::string> text = ReadTextFile(dir + "/" + name);
    if (!text.ok()) return text.status();
    Result<ParsedReport> report = ParseBenchReport(*text);
    if (!report.ok()) {
      return Status::InvalidArgument(name + ": " +
                                     report.status().ToString());
    }
    reports.push_back(*std::move(report));
  }
  return reports;
}

DeltaClass ClassifyDelta(double baseline, double candidate,
                         MetricDirection direction,
                         const ToleranceBand& band) {
  double delta = candidate - baseline;
  double allowance = std::max(band.abs, band.rel * std::fabs(baseline));
  if (std::fabs(delta) <= allowance) return DeltaClass::kNeutral;
  if (direction == MetricDirection::kInformational) return DeltaClass::kNeutral;
  bool better = direction == MetricDirection::kLowerIsBetter ? delta < 0
                                                             : delta > 0;
  return better ? DeltaClass::kImprovement : DeltaClass::kRegression;
}

std::vector<BudgetOutcome> CheckBudgets(
    const std::map<std::string, double>& values,
    const std::vector<Budget>& budgets) {
  std::vector<BudgetOutcome> outcomes;
  outcomes.reserve(budgets.size());
  for (const Budget& budget : budgets) {
    BudgetOutcome outcome;
    outcome.budget = budget;
    auto it = values.find(budget.key);
    if (it != values.end()) {
      outcome.present = true;
      outcome.value = it->second;
      outcome.violated = outcome.value > budget.max;
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

Result<SloConfig> ParseSloConfig(std::string_view text) {
  Result<JsonValue> parsed = ParseJson(text);
  if (!parsed.ok()) return parsed.status();
  SloConfig config;
  if (const JsonValue* budgets = parsed->Find("budgets")) {
    for (const JsonValue& row : budgets->AsArray()) {
      const JsonValue* bench = row.Find("bench");
      const JsonValue* variant = row.Find("variant");
      const JsonValue* metric = row.Find("metric");
      const JsonValue* max = row.Find("max");
      if (bench == nullptr || variant == nullptr || metric == nullptr ||
          max == nullptr) {
        return Status::InvalidArgument(
            "slo budget rows need bench/variant/metric/max");
      }
      config.budgets.push_back(Budget{
          bench->AsString() + "/" + variant->AsString() + "." +
              metric->AsString(),
          max->AsNumber()});
    }
  }
  if (const JsonValue* tolerances = parsed->Find("tolerances")) {
    for (const auto& [metric, value] : tolerances->AsObject()) {
      Result<ToleranceBand> band = ParseBand(value);
      if (!band.ok()) return band.status();
      config.tolerances[metric] = *band;
    }
  }
  if (const JsonValue* headlines = parsed->Find("headlines")) {
    for (const JsonValue& row : headlines->AsArray()) {
      const JsonValue* bench = row.Find("bench");
      const JsonValue* variant = row.Find("variant");
      const JsonValue* metric = row.Find("metric");
      if (bench == nullptr || variant == nullptr || metric == nullptr) {
        return Status::InvalidArgument(
            "slo headline rows need bench/variant/metric");
      }
      config.headlines.push_back(bench->AsString() + "/" +
                                 variant->AsString() + "." +
                                 metric->AsString());
    }
  }
  return config;
}

std::map<std::string, double> FlattenMetrics(
    const std::vector<ParsedReport>& reports) {
  std::map<std::string, double> values;
  for (const ParsedReport& report : reports) {
    for (const ParsedVariant& variant : report.variants) {
      for (const auto& [metric, value] : variant.metrics) {
        values[report.bench + "/" + variant.name + "." + metric] = value;
      }
    }
  }
  return values;
}

BenchDiff DiffBenchReports(const std::vector<ParsedReport>& baseline,
                           const std::vector<ParsedReport>& candidate,
                           const DiffOptions& options) {
  BenchDiff diff;
  std::map<std::string, const ParsedReport*> base_by_name;
  std::map<std::string, const ParsedReport*> cand_by_name;
  for (const ParsedReport& r : baseline) base_by_name[r.bench] = &r;
  for (const ParsedReport& r : candidate) cand_by_name[r.bench] = &r;
  std::set<std::string> names;
  for (const auto& [name, r] : base_by_name) names.insert(name);
  for (const auto& [name, r] : cand_by_name) names.insert(name);
  for (const std::string& name : names) {
    auto bi = base_by_name.find(name);
    auto ci = cand_by_name.find(name);
    BenchDiffEntry entry =
        DiffBench(bi == base_by_name.end() ? nullptr : bi->second,
                  ci == cand_by_name.end() ? nullptr : ci->second, options);
    CountDeltas(entry, &diff);
    diff.benches.push_back(std::move(entry));
  }
  return diff;
}

void CheckSlo(const SloConfig& config,
              const std::vector<ParsedReport>& candidate, BenchDiff* diff) {
  diff->slo = CheckBudgets(FlattenMetrics(candidate), config.budgets);
  diff->slo_checked = diff->slo.size();
  diff->slo_violations = 0;
  for (const BudgetOutcome& outcome : diff->slo) {
    if (outcome.violated || !outcome.present) ++diff->slo_violations;
  }
}

std::string BenchDiffToJson(const BenchDiff& diff,
                            const std::string& baseline_label,
                            const std::string& candidate_label) {
  JsonWriter w(/*indent=*/2);
  w.BeginObject();
  w.Key("schema").String(kBenchDiffSchema);
  w.Key("baseline").String(baseline_label);
  w.Key("candidate").String(candidate_label);
  w.Key("summary").BeginObject();
  w.Key("improvements").Number(diff.improvements);
  w.Key("regressions").Number(diff.regressions);
  w.Key("neutral").Number(diff.neutral);
  w.Key("new").Number(diff.added);
  w.Key("removed").Number(diff.removed);
  w.Key("phoenix.slo.checked").Number(diff.slo_checked);
  w.Key("phoenix.slo.violations").Number(diff.slo_violations);
  w.Key("gate").String(diff.GateFails() ? "fail" : "pass");
  w.EndObject();
  w.Key("slo").BeginArray();
  for (const BudgetOutcome& outcome : diff.slo) {
    w.BeginObject();
    w.Key("key").String(outcome.budget.key);
    w.Key("max").Raw(JsonNumber(outcome.budget.max));
    if (outcome.present) {
      w.Key("value").Raw(JsonNumber(outcome.value));
    } else {
      w.Key("value").Null();
    }
    w.Key("status").String(!outcome.present ? "missing"
                           : outcome.violated ? "violation"
                                              : "ok");
    w.EndObject();
  }
  w.EndArray();
  w.Key("benches").BeginArray();
  for (const BenchDiffEntry& entry : diff.benches) {
    w.BeginObject();
    w.Key("bench").String(entry.bench);
    w.Key("status").String(DeltaClassName(entry.cls));
    w.Key("variants").BeginArray();
    for (const VariantDiff& vd : entry.variants) {
      w.BeginObject();
      w.Key("name").String(vd.name);
      w.Key("status").String(DeltaClassName(vd.cls));
      w.Key("metrics").BeginArray();
      for (const MetricDelta& d : vd.metrics) {
        w.BeginObject();
        w.Key("metric").String(d.metric);
        w.Key("direction").String(MetricDirectionName(d.meta.direction));
        w.Key("unit").String(d.meta.unit);
        if (d.in_baseline) w.Key("baseline").Raw(JsonNumber(d.baseline));
        if (d.in_candidate) w.Key("candidate").Raw(JsonNumber(d.candidate));
        if (d.in_baseline && d.in_candidate) {
          w.Key("delta").Raw(JsonNumber(d.delta));
          w.Key("delta_rel").Raw(JsonNumber(d.delta_rel));
        }
        w.Key("class").String(DeltaClassName(d.cls));
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str() + "\n";
}

std::string BenchDiffToMarkdown(const BenchDiff& diff,
                                const std::string& baseline_label,
                                const std::string& candidate_label) {
  std::string out;
  out += "# phoenix benchdiff\n\n";
  out += StrCat("- baseline: `", baseline_label, "`\n");
  out += StrCat("- candidate: `", candidate_label, "`\n");
  out += StrCat("- metrics: ", diff.improvements, " improvement(s), ",
                diff.regressions, " regression(s), ", diff.neutral,
                " neutral, ", diff.added, " new, ", diff.removed,
                " removed\n");
  out += StrCat("- SLO budgets: ", diff.slo_checked, " checked, ",
                diff.slo_violations, " violation(s)\n");
  out += StrCat("- gate: ", diff.GateFails() ? "**FAIL**" : "PASS", "\n");

  out += "\n## SLO budgets\n\n";
  if (diff.slo.empty()) {
    out += "(no SLO config)\n";
  } else {
    out += "| budget | limit | value | status |\n";
    out += "|---|---:|---:|---|\n";
    for (const BudgetOutcome& outcome : diff.slo) {
      out += StrCat("| `", outcome.budget.key, "` | <= ",
                    JsonNumber(outcome.budget.max), " | ",
                    outcome.present ? JsonNumber(outcome.value) : "-", " | ",
                    !outcome.present   ? "**missing**"
                    : outcome.violated ? "**violation**"
                                       : "ok",
                    " |\n");
    }
  }

  out += "\n## Non-neutral deltas\n\n";
  std::string rows;
  for (const BenchDiffEntry& entry : diff.benches) {
    if (entry.cls != DeltaClass::kNeutral) {
      rows += StrCat("| ", entry.bench, " | *(whole bench, ",
                     entry.variants.size(), " variant(s))* | | | | | | ",
                     DeltaClassName(entry.cls), " |\n");
      continue;
    }
    for (const VariantDiff& vd : entry.variants) {
      if (vd.cls != DeltaClass::kNeutral) {
        rows += StrCat("| ", entry.bench, " | ", vd.name, " | *(whole "
                       "variant, ", vd.metrics.size(), " metric(s))* | | | | "
                       "| ", DeltaClassName(vd.cls), " |\n");
        continue;
      }
      for (const MetricDelta& d : vd.metrics) {
        if (d.cls == DeltaClass::kNeutral) continue;
        rows += StrCat(
            "| ", entry.bench, " | ", vd.name, " | ", d.metric, " | ",
            MetricDirectionName(d.meta.direction), " | ",
            d.in_baseline ? JsonNumber(d.baseline) : "-", " | ",
            d.in_candidate ? JsonNumber(d.candidate) : "-", " | ",
            d.in_baseline && d.in_candidate
                ? StrCat(JsonNumber(d.delta), " (",
                         FormatDouble(d.delta_rel * 100.0, 2), "%)")
                : "-",
            " | ", d.cls == DeltaClass::kRegression
                       ? StrCat("**", DeltaClassName(d.cls), "**")
                       : DeltaClassName(d.cls),
            " |\n");
      }
    }
  }
  if (rows.empty()) {
    out += "(none — candidate matches baseline everywhere)\n";
  } else {
    out +=
        "| bench | variant | metric | direction | baseline | candidate | "
        "delta | class |\n";
    out += "|---|---|---|---|---:|---:|---:|---|\n";
    out += rows;
  }
  return out;
}

Result<std::string> UpdateHistory(std::string_view history_text,
                                  const std::string& label,
                                  const std::vector<std::string>& headlines,
                                  const std::vector<ParsedReport>& candidate) {
  // Existing rows, kept verbatim in order: label -> (notes, metrics).
  struct Row {
    std::string label;
    std::string notes;
    std::map<std::string, double> metrics;
  };
  std::vector<Row> rows;
  if (!history_text.empty()) {
    Result<JsonValue> parsed = ParseJson(history_text);
    if (!parsed.ok()) return parsed.status();
    if (const JsonValue* existing = parsed->Find("rows")) {
      for (const JsonValue& row : existing->AsArray()) {
        Row r;
        const JsonValue* row_label = row.Find("label");
        if (row_label == nullptr) {
          return Status::InvalidArgument("history row missing \"label\"");
        }
        r.label = row_label->AsString();
        if (const JsonValue* notes = row.Find("notes")) {
          r.notes = notes->AsString();
        }
        if (const JsonValue* metrics = row.Find("metrics")) {
          for (const auto& [key, value] : metrics->AsObject()) {
            if (value.kind() == JsonValue::Kind::kNumber) {
              r.metrics[key] = value.AsNumber();
            }
          }
        }
        rows.push_back(std::move(r));
      }
    }
  }

  Row fresh;
  fresh.label = label;
  std::map<std::string, double> values = FlattenMetrics(candidate);
  for (const std::string& key : headlines) {
    auto it = values.find(key);
    if (it != values.end()) fresh.metrics[key] = it->second;
  }
  bool replaced = false;
  for (Row& row : rows) {
    if (row.label == label) {
      // Idempotent re-pin: keep the row's slot (and notes), refresh values.
      fresh.notes = row.notes;
      row = fresh;
      replaced = true;
      break;
    }
  }
  if (!replaced) rows.push_back(std::move(fresh));

  JsonWriter w(/*indent=*/2);
  w.BeginObject();
  w.Key("schema").String(kHistorySchema);
  w.Key("rows").BeginArray();
  for (const Row& row : rows) {
    w.BeginObject();
    w.Key("label").String(row.label);
    if (!row.notes.empty()) w.Key("notes").String(row.notes);
    w.Key("metrics").BeginObject();
    for (const auto& [key, value] : row.metrics) {
      w.Key(key).Raw(JsonNumber(value));
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str() + "\n";
}

}  // namespace phoenix::obs
