#ifndef PHOENIX_OBS_BENCHDIFF_H_
#define PHOENIX_OBS_BENCHDIFF_H_

// Cross-run performance sentinel. Loads two trees of phoenix.bench.v1
// reports — a committed baseline (bench/baselines/) and a fresh candidate
// run — aligns benches, variants and metrics, and classifies every delta as
// improvement / regression / neutral / new / removed using each metric's
// direction metadata (the report meta block, falling back to the built-in
// table) and a per-metric tolerance band. On top of the diff it evaluates
// declarative SLO budgets (bench/slo.json) and maintains the bench history
// ledger (bench/history.json): one row of headline metrics per PR.
//
// Everything here is a pure function of its inputs: same report trees, same
// phoenix.benchdiff.v1 bytes, so CI can cmp two runs of the sentinel.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/bench_reporter.h"

namespace phoenix::obs {

inline constexpr char kBenchDiffSchema[] = "phoenix.benchdiff.v1";
inline constexpr char kSloSchema[] = "phoenix.slo.v1";
inline constexpr char kHistorySchema[] = "phoenix.history.v1";

// --- parsed bench reports ------------------------------------------------

struct ParsedVariant {
  std::string name;
  std::map<std::string, double> metrics;  // sorted by name, parsed values
};

struct ParsedReport {
  std::string bench;
  std::string schema;
  std::vector<ParsedVariant> variants;          // file order
  std::map<std::string, MetricMeta> meta;       // from the report meta block
};

// Parses one phoenix.bench.v1 (or schema-compatible) document.
Result<ParsedReport> ParseBenchReport(std::string_view text);

// Loads every BENCH_*.json directly inside `dir`, sorted by filename so the
// result (and everything derived from it) is deterministic. A missing or
// empty directory is an error: a sentinel silently diffing against nothing
// would pass every gate.
Result<std::vector<ParsedReport>> LoadBenchReportDir(const std::string& dir);

// --- delta classification ------------------------------------------------

enum class DeltaClass { kImprovement, kRegression, kNeutral, kNew, kRemoved };

const char* DeltaClassName(DeltaClass cls);

// A delta with |candidate - baseline| <= max(abs, rel * |baseline|) is
// neutral; only deltas beyond the band classify by direction.
struct ToleranceBand {
  double abs = 0;
  double rel = 0;  // fraction of |baseline|, not percent
};

struct DiffOptions {
  ToleranceBand default_band;                        // exact by default
  std::map<std::string, ToleranceBand> metric_band;  // per metric name
};

DeltaClass ClassifyDelta(double baseline, double candidate,
                         MetricDirection direction, const ToleranceBand& band);

struct MetricDelta {
  std::string metric;
  MetricMeta meta;
  DeltaClass cls = DeltaClass::kNeutral;
  bool in_baseline = false;
  bool in_candidate = false;
  double baseline = 0;
  double candidate = 0;
  double delta = 0;      // candidate - baseline (both present)
  double delta_rel = 0;  // delta / |baseline| (0 when baseline == 0)
};

struct VariantDiff {
  std::string name;
  DeltaClass cls = DeltaClass::kNeutral;  // kNew / kRemoved when unmatched
  std::vector<MetricDelta> metrics;
};

struct BenchDiffEntry {
  std::string bench;
  DeltaClass cls = DeltaClass::kNeutral;  // kNew / kRemoved when unmatched
  std::vector<VariantDiff> variants;
};

// --- budgets (shared by the SLO table and phoenix_prof --budget-ms) ------

struct Budget {
  std::string key;  // "bench/variant.metric" for SLOs, a phase for prof
  double max = 0;
};

struct BudgetOutcome {
  Budget budget;
  double value = 0;
  bool present = false;   // key found in `values`
  bool violated = false;  // present && value > max
};

// Evaluates each budget against `values`; outcomes keep budget order.
// Missing keys report present=false, violated=false — the caller decides
// whether absence is a failure (the SLO gate: yes; prof phase budgets: an
// absent phase spent 0 ms and trivially passes).
std::vector<BudgetOutcome> CheckBudgets(
    const std::map<std::string, double>& values,
    const std::vector<Budget>& budgets);

// --- SLO config (bench/slo.json, schema phoenix.slo.v1) ------------------

struct SloConfig {
  // Budget keys are "bench/variant.metric"; max is the inclusive ceiling.
  std::vector<Budget> budgets;
  // Extra tolerance per metric name, merged into DiffOptions::metric_band.
  std::map<std::string, ToleranceBand> tolerances;
  // "bench/variant.metric" keys recorded per PR in the history ledger.
  std::vector<std::string> headlines;
};

Result<SloConfig> ParseSloConfig(std::string_view text);

// Flattens candidate reports to "bench/variant.metric" -> value.
std::map<std::string, double> FlattenMetrics(
    const std::vector<ParsedReport>& reports);

// --- the diff itself -----------------------------------------------------

struct BenchDiff {
  std::vector<BenchDiffEntry> benches;  // sorted by bench name
  std::vector<BudgetOutcome> slo;       // budget order; empty without config
  // Metric-level tallies (metrics of new/removed variants and benches count
  // under added/removed).
  uint64_t improvements = 0;
  uint64_t regressions = 0;
  uint64_t neutral = 0;
  uint64_t added = 0;
  uint64_t removed = 0;
  uint64_t slo_checked = 0;
  uint64_t slo_violations = 0;  // violated or required metric missing

  // The CI gate: any out-of-band regression or SLO violation.
  bool GateFails() const { return regressions > 0 || slo_violations > 0; }
};

BenchDiff DiffBenchReports(const std::vector<ParsedReport>& baseline,
                           const std::vector<ParsedReport>& candidate,
                           const DiffOptions& options);

// Evaluates `config` budgets against `candidate` and fills diff->slo /
// slo_checked / slo_violations. A budget whose metric is absent from the
// candidate counts as a violation.
void CheckSlo(const SloConfig& config,
              const std::vector<ParsedReport>& candidate, BenchDiff* diff);

// Machine-readable report (schema phoenix.benchdiff.v1), pretty-printed,
// deterministic. Labels name the two trees (typically the directories).
std::string BenchDiffToJson(const BenchDiff& diff,
                            const std::string& baseline_label,
                            const std::string& candidate_label);

// Human-readable markdown: summary counts, the SLO table, and every
// non-neutral delta.
std::string BenchDiffToMarkdown(const BenchDiff& diff,
                                const std::string& baseline_label,
                                const std::string& candidate_label);

// --- history ledger (bench/history.json, schema phoenix.history.v1) ------

// Returns `history_text` (or a fresh ledger when empty) with the row labeled
// `label` appended — or replaced in place, so re-running the sentinel for
// the same PR is idempotent. The row holds every headline key present in
// `candidate`, sorted.
Result<std::string> UpdateHistory(std::string_view history_text,
                                  const std::string& label,
                                  const std::vector<std::string>& headlines,
                                  const std::vector<ParsedReport>& candidate);

}  // namespace phoenix::obs

#endif  // PHOENIX_OBS_BENCHDIFF_H_
