#ifndef PHOENIX_OBS_PROFILE_H_
#define PHOENIX_OBS_PROFILE_H_

// Call-tree reconstruction and latency attribution over a recorded trace.
//
// The runtime threads a causal identity (trace id / span id / parent span)
// through every message, so the per-process spans in a JSONL trace form one
// tree per end-to-end call chain. This module rebuilds those trees, charges
// every span's *self time* (duration minus direct children) to a phase
// bucket — execution, network, disk seek/rotational/transfer, durability
// wait split into parked-in-group-commit vs own-force dispatch — and
// computes the critical path of the slowest chains. Because self times
// partition a chain's wall clock exactly, each chain's phase breakdown sums
// to its end-to-end latency (within floating-point rounding).
//
// Everything here is deterministic: same trace bytes in, same report out.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/tracer.h"

namespace phoenix::obs {

// One begin/end span pair reconstructed from the trace.
struct ProfileNode {
  std::string category;
  std::string name;
  std::string component;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  double start_ms = 0;
  double end_ms = 0;
  double dur_ms = 0;
  // Duration minus the durations of direct children: the time this span
  // spent doing its own work. The attribution unit.
  double self_ms = 0;
  // Merged begin+end arguments (end wins on duplicate keys).
  std::vector<TraceArg> args;
  std::vector<size_t> children;  // indices into ProfileReport::nodes
  // Linked instants (retries, drops, dedupe hits) whose parent is this span.
  std::vector<size_t> annotations;  // indices into ProfileReport::instants
  // True when the end (or begin) event is missing — crash mid-span or a
  // flight-recorder ring that evicted it. Durations are best-effort.
  bool truncated = false;
};

// One end-to-end call chain: a root span (no parent) and its subtree.
struct ChainProfile {
  uint64_t trace_id = 0;
  size_t root = 0;  // index into ProfileReport::nodes
  std::string method;
  std::string component;
  double start_ms = 0;
  double dur_ms = 0;
  size_t span_count = 0;
  size_t annotation_count = 0;
  // Phase bucket -> milliseconds. Sums to dur_ms (within rounding).
  std::map<std::string, double> phase_ms;
  // Root-to-leaf walk taking the longest child at each step.
  std::vector<size_t> critical_path;  // indices into ProfileReport::nodes
};

struct ProfileReport {
  std::vector<ProfileNode> nodes;
  // Chain-linked instants, kept for annotation rendering.
  std::vector<TraceEvent> instants;
  // Sorted by dur_ms descending (ties: trace_id ascending).
  std::vector<ChainProfile> chains;
  // Phase totals across every chain.
  std::map<std::string, double> total_phase_ms;
  // Self time of spans outside any chain (trace_id 0): group-commit flushes
  // issued from the scheduler, component-scoped maintenance.
  std::map<std::string, double> unchained_phase_ms;
  size_t event_count = 0;
  size_t span_count = 0;
  size_t instant_count = 0;
  double trace_start_ms = 0;
  double trace_end_ms = 0;
};

// Phase bucket a node's self time belongs to: "execution", "network",
// "disk.seek" / "disk.rotational" / "disk.transfer" / "disk.other" (force
// spans split by their recorded breakdown args), "durability.park",
// "durability.dispatch", "checkpoint", "recovery", "recovery.replay"
// (replay-phase spans: pass two, the parallel engine, per-chain spans),
// "other". Disk force spans return "disk" here; BuildProfile does the
// arg-driven sub-split.
std::string PhaseBucket(const ProfileNode& node);

// Rebuilds the call forest and attributes every span's self time.
ProfileReport BuildProfile(const std::vector<TraceEvent>& events);

// Human-readable report: phase breakdown table, per-method aggregation and
// the top `top_n` slowest chains with their trees and critical paths.
std::string RenderProfileText(const ProfileReport& report, size_t top_n);

// Machine-readable report (schema "phoenix.prof.v1"), pretty-printed,
// deterministic member order.
std::string ProfileToJson(const ProfileReport& report);

}  // namespace phoenix::obs

#endif  // PHOENIX_OBS_PROFILE_H_
