#ifndef PHOENIX_OBS_TRACER_H_
#define PHOENIX_OBS_TRACER_H_

// Structured event tracing on simulated time. The Tracer records
// begin/end/instant events (message interception, log appends, forces with
// rotational-wait breakdown, checkpoints, recovery phases) and exports two
// formats: our JSONL schema (one event per line, easy to grep and diff) and
// the Chrome trace_event JSON that chrome://tracing / Perfetto load.
//
// Timestamps come exclusively from the SimClock, so two runs with the same
// seed produce byte-identical traces.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "sim/sim_clock.h"

namespace phoenix::obs {

// One argument on an event. Values are pre-formatted at record time;
// `numeric` controls whether the JSON export quotes them.
struct TraceArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

TraceArg Arg(std::string key, std::string value);
TraceArg Arg(std::string key, const char* value);
TraceArg Arg(std::string key, double value);
TraceArg Arg(std::string key, uint64_t value);
TraceArg Arg(std::string key, int64_t value);
TraceArg Arg(std::string key, int value);

enum class TracePhase : uint8_t { kBegin, kEnd, kInstant };

// "B" / "E" / "I".
const char* TracePhaseName(TracePhase phase);

struct TraceEvent {
  double ts_ms = 0;
  TracePhase phase = TracePhase::kInstant;
  std::string category;  // "call", "log", "disk", "checkpoint", "recovery"...
  std::string name;
  std::string component;  // the acting process/component, e.g. "ma/1"
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  explicit Tracer(const SimClock* clock) : clock_(clock) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Disabled by default: recording is a no-op so the hot paths stay cheap
  // and long test workloads do not accumulate memory.
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  void Instant(std::string_view category, std::string_view name,
               std::string_view component, std::vector<TraceArg> args = {});

  // RAII span: records a begin event now and the matching end event when the
  // handle dies (including on early error returns). End-time arguments can
  // be attached along the way.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    ~Span() { End(); }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    // Attaches an argument to the end event.
    void AddArg(TraceArg arg);
    // Ends the span now (idempotent).
    void End();

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::string category, std::string name,
         std::string component);

    Tracer* tracer_ = nullptr;
    std::string category_;
    std::string name_;
    std::string component_;
    std::vector<TraceArg> end_args_;
  };

  // Starts a span; `args` go on the begin event. On a disabled tracer the
  // returned handle is inert.
  Span StartSpan(std::string_view category, std::string_view name,
                 std::string_view component, std::vector<TraceArg> args = {});

  const std::vector<TraceEvent>& events() const { return events_; }
  // Events discarded after the in-memory cap was reached.
  uint64_t dropped_events() const { return dropped_events_; }
  void Clear();

  // One JSON object per line:
  //   {"ts_ms":3.25,"ph":"B","cat":"log","name":"force","comp":"ma/1",
  //    "args":{"bytes":512}}
  std::string ExportJsonl() const;

  // Chrome trace_event format ({"traceEvents":[...]}), loadable in
  // chrome://tracing and Perfetto. Components map to pids via metadata
  // events; timestamps are microseconds.
  std::string ExportChromeTrace() const;

 private:
  void Record(TraceEvent event);

  const SimClock* clock_;
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  uint64_t dropped_events_ = 0;
  // Keeps a runaway workload from exhausting memory; generous for every
  // bench/tool run we ship.
  static constexpr size_t kMaxEvents = 4u << 20;  // ~4M events
};

// Parses a JSONL trace produced by ExportJsonl (phoenix_trace dump mode).
Result<std::vector<TraceEvent>> ParseTraceJsonl(std::string_view text);

// Dump-mode filter: keeps events whose component contains `component`
// (empty matches all) with from_ms <= ts < to_ms.
std::vector<TraceEvent> FilterTrace(const std::vector<TraceEvent>& events,
                                    std::string_view component,
                                    double from_ms, double to_ms);

}  // namespace phoenix::obs

#endif  // PHOENIX_OBS_TRACER_H_
