#ifndef PHOENIX_OBS_TRACER_H_
#define PHOENIX_OBS_TRACER_H_

// Structured event tracing on simulated time. The Tracer records
// begin/end/instant events (message interception, log appends, forces with
// rotational-wait breakdown, checkpoints, recovery phases) and exports two
// formats: our JSONL schema (one event per line, easy to grep and diff) and
// the Chrome trace_event JSON that chrome://tracing / Perfetto load.
//
// Events carry an optional causal identity: a trace id (one per end-to-end
// call chain), a span id (one per begin/end pair) and a parent span id.
// The runtime threads these across process boundaries on every Message, so
// the per-process spans join into one call tree that phoenix_prof can
// reconstruct and the Chrome export can draw flow arrows between.
//
// Timestamps come exclusively from the SimClock, so two runs with the same
// seed produce byte-identical traces.

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "sim/sim_clock.h"

namespace phoenix::obs {

// One argument on an event. Values are pre-formatted at record time;
// `numeric` controls whether the JSON export quotes them.
struct TraceArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

TraceArg Arg(std::string key, std::string value);
TraceArg Arg(std::string key, const char* value);
TraceArg Arg(std::string key, double value);
TraceArg Arg(std::string key, uint64_t value);
TraceArg Arg(std::string key, int64_t value);
TraceArg Arg(std::string key, int value);

enum class TracePhase : uint8_t { kBegin, kEnd, kInstant };

// "B" / "E" / "I".
const char* TracePhaseName(TracePhase phase);

// The causal position a new span or instant attaches under: which call
// chain it belongs to and which span is its parent. A zero trace_id means
// "not part of any chain" (component-scoped events like group flushes).
struct SpanLink {
  uint64_t trace_id = 0;
  uint64_t parent_id = 0;
};

// A stack of span links per execution chain. The Simulation implements this
// over its per-session stacks; the WAL layer consumes it abstractly so
// `wal/` never depends on `runtime/` (same pattern as
// CommitPipeline::Scheduler).
class TraceScope {
 public:
  virtual ~TraceScope() = default;
  // The link new child spans of the running chain should attach under.
  virtual SpanLink Current() const = 0;
  virtual void Push(SpanLink link) = 0;
  virtual void Pop() = 0;
};

struct TraceEvent {
  double ts_ms = 0;
  TracePhase phase = TracePhase::kInstant;
  std::string category;  // "call", "log", "disk", "checkpoint", "recovery"...
  std::string name;
  std::string component;  // the acting process/component, e.g. "ma/1"
  uint64_t trace_id = 0;        // call chain this event belongs to (0 = none)
  uint64_t span_id = 0;         // begin/end pairing id (0 = legacy/untracked)
  uint64_t parent_span_id = 0;  // causal parent span (0 = root / none)
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  explicit Tracer(const SimClock* clock) : clock_(clock) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // True when events are being recorded anywhere: the full in-memory trace
  // and/or the bounded flight-recorder rings. Call sites use this to skip
  // building args on the hot path.
  bool enabled() const { return enabled_ || flight_capacity_ > 0; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // Flight recorder: always-on-cheap post-mortem buffer. Keeps the last
  // `events_per_component` events per component in a ring; a crash dump
  // (ExportFlightRecorder) then shows what each process was doing right
  // before the failure, even when full tracing is off. 0 disables.
  void EnableFlightRecorder(size_t events_per_component);
  size_t flight_recorder_capacity() const { return flight_capacity_; }

  void Instant(std::string_view category, std::string_view name,
               std::string_view component, std::vector<TraceArg> args = {});
  // Instant attached to a chain: carries the link's trace id and records
  // the linked span as its causal parent.
  void Instant(std::string_view category, std::string_view name,
               std::string_view component, SpanLink link,
               std::vector<TraceArg> args = {});

  // Fresh chain identity for a root call entering the system.
  uint64_t NewTraceId() { return next_trace_id_++; }

  // RAII span: records a begin event now and the matching end event when the
  // handle dies (including on early error returns). End-time arguments can
  // be attached along the way.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    ~Span() { End(); }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    // Attaches an argument to the end event.
    void AddArg(TraceArg arg);
    // Ends the span now (idempotent).
    void End();

    // Identity handed to children of this span. Inert spans return {0,0}.
    SpanLink link() const { return SpanLink{trace_id_, span_id_}; }
    uint64_t span_id() const { return span_id_; }
    uint64_t trace_id() const { return trace_id_; }

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::string category, std::string name,
         std::string component, uint64_t trace_id, uint64_t span_id);

    Tracer* tracer_ = nullptr;
    std::string category_;
    std::string name_;
    std::string component_;
    uint64_t trace_id_ = 0;
    uint64_t span_id_ = 0;
    std::vector<TraceArg> end_args_;
  };

  // Starts a span; `args` go on the begin event. On a disabled tracer the
  // returned handle is inert. The link-taking overload attaches the span
  // under a chain (trace id + parent span).
  Span StartSpan(std::string_view category, std::string_view name,
                 std::string_view component, std::vector<TraceArg> args = {});
  Span StartSpan(std::string_view category, std::string_view name,
                 std::string_view component, SpanLink link,
                 std::vector<TraceArg> args = {});

  const std::vector<TraceEvent>& events() const { return events_; }
  // Events discarded after the in-memory cap was reached.
  uint64_t dropped_events() const { return dropped_events_; }
  void Clear();

  // One JSON object per line:
  //   {"ts_ms":3.25,"ph":"B","cat":"log","name":"force","comp":"ma/1",
  //    "trace":7,"span":12,"parent":9,"args":{"bytes":512}}
  // The trace/span/parent keys appear only when nonzero.
  std::string ExportJsonl() const;

  // Chrome trace_event format ({"traceEvents":[...]}), loadable in
  // chrome://tracing and Perfetto. Components map to pids via metadata
  // events; each call chain gets its own tid so interleaved (parked)
  // chains nest correctly, and cross-process parent->child edges are
  // emitted as flow arrows ("s"/"f" events). Timestamps are microseconds.
  std::string ExportChromeTrace() const;

  // The flight-recorder rings merged back into one deterministic JSONL
  // stream (global record order, same schema as ExportJsonl). Empty when
  // the recorder is disabled.
  std::string ExportFlightRecorder() const;

 private:
  void Record(TraceEvent event);

  const SimClock* clock_;
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  uint64_t dropped_events_ = 0;
  uint64_t next_trace_id_ = 1;
  uint64_t next_span_id_ = 1;
  // Flight recorder: per-component rings of (global sequence, event).
  size_t flight_capacity_ = 0;
  uint64_t flight_seq_ = 0;
  std::map<std::string, std::deque<std::pair<uint64_t, TraceEvent>>> flight_;
  // Keeps a runaway workload from exhausting memory; generous for every
  // bench/tool run we ship.
  static constexpr size_t kMaxEvents = 4u << 20;  // ~4M events
};

// Parses a JSONL trace produced by ExportJsonl (phoenix_trace dump mode,
// phoenix_prof).
Result<std::vector<TraceEvent>> ParseTraceJsonl(std::string_view text);

// Dump-mode filter: keeps events whose component contains `component` and
// whose category equals `category` (empty matches all for both) with
// from_ms <= ts < to_ms.
std::vector<TraceEvent> FilterTrace(const std::vector<TraceEvent>& events,
                                    std::string_view component,
                                    std::string_view category, double from_ms,
                                    double to_ms);

}  // namespace phoenix::obs

#endif  // PHOENIX_OBS_TRACER_H_
