#ifndef PHOENIX_OBS_JSON_H_
#define PHOENIX_OBS_JSON_H_

// Minimal JSON support for the observability subsystem: a streaming writer
// with deterministic number formatting (metrics snapshots and traces must be
// byte-identical across same-seed runs) and a small recursive-descent parser
// used by schema round-trip tests and the phoenix_trace dump mode.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace phoenix::obs {

// Escapes `s` into a JSON string literal (including the quotes).
std::string JsonEscape(std::string_view s);

// Deterministic textual form of a double: integers up to 2^53 print without
// a decimal point, everything else through "%.12g". NaN/inf (never produced
// by the simulator, but defensively) print as null.
std::string JsonNumber(double value);
std::string JsonNumber(uint64_t value);
std::string JsonNumber(int64_t value);

// Streaming JSON writer. Handles commas and (optional) indentation; callers
// are responsible for well-formed nesting, which the writer checks.
class JsonWriter {
 public:
  // `indent` > 0 pretty-prints with that many spaces per level; 0 emits the
  // compact single-line form.
  explicit JsonWriter(int indent = 0) : indent_(indent) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Object key; must be followed by exactly one value.
  JsonWriter& Key(std::string_view key);

  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Number(uint64_t value);
  JsonWriter& Number(int64_t value);
  JsonWriter& Number(int value) { return Number(static_cast<int64_t>(value)); }
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // Pre-formatted value (e.g. a JsonNumber result) inserted verbatim.
  JsonWriter& Raw(std::string_view raw);

  // Finished document. Checks that every container was closed.
  const std::string& str() const;

 private:
  void BeforeValue();
  void NewlineAndIndent();

  std::string out_;
  int indent_;
  // One entry per open container: 'o' / 'a', plus whether a value has been
  // emitted at this level (comma handling) and whether a key is pending.
  struct Level {
    char kind;
    bool has_value = false;
  };
  std::vector<Level> stack_;
  bool key_pending_ = false;
  bool done_ = false;
};

// Parsed JSON value. Object member order is preserved as written.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const {
    return object_;
  }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double n);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

// Parses one JSON document (trailing whitespace allowed, nothing else).
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace phoenix::obs

#endif  // PHOENIX_OBS_JSON_H_
