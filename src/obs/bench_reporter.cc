#include "obs/bench_reporter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

namespace phoenix::obs {
namespace {

// "" means unset; resolution falls through to PHOENIX_BENCH_DIR, then cwd.
std::string& OutDirOverride() {
  static std::string dir;
  return dir;
}

}  // namespace

void SetBenchOutDir(std::string dir) { OutDirOverride() = std::move(dir); }

std::string ResolveBenchPath(const std::string& filename) {
  if (!filename.empty() && filename.front() == '/') return filename;
  std::string dir = OutDirOverride();
  if (dir.empty()) {
    const char* env = std::getenv("PHOENIX_BENCH_DIR");
    if (env != nullptr) dir = env;
  }
  if (dir.empty()) return filename;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; open reports
  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  return dir + "/" + filename;
}

void InitBenchMain(int& argc, char** argv) {
  constexpr char kPrefix[] = "--out-dir=";
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kPrefix, sizeof(kPrefix) - 1) == 0) {
      SetBenchOutDir(argv[i] + sizeof(kPrefix) - 1);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  argv[argc] = nullptr;
}

BenchVariant& BenchVariant::SetMetric(const std::string& metric,
                                      double value) {
  metrics_[metric] = JsonNumber(value);
  return *this;
}

BenchVariant& BenchVariant::SetMetric(const std::string& metric,
                                      uint64_t value) {
  metrics_[metric] = JsonNumber(value);
  return *this;
}

BenchVariant& BenchVariant::SetMetric(const std::string& metric,
                                      int64_t value) {
  metrics_[metric] = JsonNumber(value);
  return *this;
}

BenchVariant& BenchVariant::SetInfo(const std::string& key,
                                    std::string value) {
  info_[key] = std::move(value);
  return *this;
}

BenchVariant& BenchVariant::SetLatency(const Histogram& histogram) {
  return SetLatency(Summarize(histogram));
}

BenchVariant& BenchVariant::SetLatency(const LatencySummary& summary) {
  has_latency_ = true;
  latency_ = summary;
  return *this;
}

void BenchVariant::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("name").String(name_);
  w.Key("metrics").BeginObject();
  for (const auto& [metric, value] : metrics_) {
    w.Key(metric).Raw(value);
  }
  w.EndObject();
  if (!info_.empty()) {
    w.Key("info").BeginObject();
    for (const auto& [key, value] : info_) {
      w.Key(key).String(value);
    }
    w.EndObject();
  }
  if (has_latency_) {
    w.Key("latency_ms").BeginObject();
    WriteLatencySummaryJson(w, latency_);
    w.EndObject();
  }
  w.EndObject();
}

BenchVariant& BenchReporter::AddVariant(const std::string& name) {
  variants_.emplace_back(name);
  return variants_.back();
}

std::string BenchReporter::ToJson() const {
  JsonWriter w(/*indent=*/2);
  w.BeginObject();
  w.Key("schema").String(schema_);
  w.Key("bench").String(bench_name_);
  w.Key("variants").BeginArray();
  for (const BenchVariant& variant : variants_) {
    variant.WriteJson(w);
  }
  w.EndArray();
  w.EndObject();
  return w.str() + "\n";
}

Result<std::string> BenchReporter::WriteFile(const std::string& path) const {
  std::string target =
      ResolveBenchPath(path.empty() ? "BENCH_" + bench_name_ + ".json" : path);
  std::FILE* f = std::fopen(target.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + target + " for writing");
  }
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to " + target);
  }
  return target;
}

void AnnounceReport(const BenchReporter& reporter, const std::string& path) {
  Result<std::string> written = reporter.WriteFile(path);
  if (written.ok()) {
    std::printf("\nbench report: %s\n", written->c_str());
  } else {
    std::printf("\nbench report FAILED: %s\n",
                written.status().ToString().c_str());
  }
}

}  // namespace phoenix::obs
