#include "obs/bench_reporter.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <unordered_map>

namespace phoenix::obs {
namespace {

// "" means unset; resolution falls through to PHOENIX_BENCH_DIR, then cwd.
std::string& OutDirOverride() {
  static std::string dir;
  return dir;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

const char* MetricDirectionName(MetricDirection direction) {
  switch (direction) {
    case MetricDirection::kLowerIsBetter:
      return "lower_is_better";
    case MetricDirection::kHigherIsBetter:
      return "higher_is_better";
    case MetricDirection::kInformational:
      return "informational";
  }
  return "informational";
}

bool ParseMetricDirection(std::string_view name, MetricDirection* out) {
  if (name == "lower_is_better") {
    *out = MetricDirection::kLowerIsBetter;
  } else if (name == "higher_is_better") {
    *out = MetricDirection::kHigherIsBetter;
  } else if (name == "informational") {
    *out = MetricDirection::kInformational;
  } else {
    return false;
  }
  return true;
}

const MetricMeta* DefaultMetricMeta(const std::string& metric) {
  // Direction calls follow the paper's economics: forced log writes and
  // per-call / recovery latencies shrink as the optimizations land, contract
  // booleans (state_matches_*) and speedups grow, and workload descriptors
  // (sessions, pairs, seeds) or injected-fault tallies carry no direction.
  static const std::unordered_map<std::string, MetricMeta> kTable = {
      // Forced-write economics (Tables 4-6, figure 9).
      {"forces", {"count", MetricDirection::kLowerIsBetter}},
      {"appends", {"count", MetricDirection::kLowerIsBetter}},
      {"bytes_forced", {"bytes", MetricDirection::kLowerIsBetter}},
      {"forced_bytes_per_call", {"bytes", MetricDirection::kLowerIsBetter}},
      {"forces_per_call", {"ratio", MetricDirection::kLowerIsBetter}},
      {"grabber_forces", {"count", MetricDirection::kLowerIsBetter}},
      {"session_forces", {"count", MetricDirection::kLowerIsBetter}},
      {"state_saves", {"count", MetricDirection::kInformational}},
      // Latencies.
      {"per_call_ms", {"ms", MetricDirection::kLowerIsBetter}},
      {"per_iteration_ms", {"ms", MetricDirection::kLowerIsBetter}},
      {"ms_per_call", {"ms", MetricDirection::kLowerIsBetter}},
      {"session_ms", {"ms", MetricDirection::kLowerIsBetter}},
      {"workload_ms", {"ms", MetricDirection::kLowerIsBetter}},
      {"search_ms", {"ms", MetricDirection::kLowerIsBetter}},
      {"delay_ms", {"ms", MetricDirection::kLowerIsBetter}},
      {"sim_time_ms", {"ms", MetricDirection::kLowerIsBetter}},
      {"rotational_wait_ms", {"ms", MetricDirection::kLowerIsBetter}},
      // Durability-wait attribution.
      {"park_ms_total", {"ms", MetricDirection::kLowerIsBetter}},
      {"park_ms_per_call", {"ms", MetricDirection::kLowerIsBetter}},
      {"own_force_wait_ms_total", {"ms", MetricDirection::kLowerIsBetter}},
      {"own_force_wait_ms_per_call", {"ms", MetricDirection::kLowerIsBetter}},
      {"park_waits", {"count", MetricDirection::kInformational}},
      // Group commit: batch shape is a policy trade-off, not a score.
      {"group_flushes", {"count", MetricDirection::kInformational}},
      {"group_coalesced", {"count", MetricDirection::kInformational}},
      {"group_commit_flushes", {"count", MetricDirection::kInformational}},
      {"group_commit_coalesced", {"count", MetricDirection::kInformational}},
      {"group_commit_runs", {"count", MetricDirection::kInformational}},
      {"group_batch_mean", {"count", MetricDirection::kInformational}},
      {"group_batch_max", {"count", MetricDirection::kInformational}},
      // Recovery (Table 7) and the replay planner/engine.
      {"recovery_ms", {"ms", MetricDirection::kLowerIsBetter}},
      {"recoveries", {"count", MetricDirection::kInformational}},
      {"records_scanned", {"count", MetricDirection::kInformational}},
      {"calls_replayed", {"count", MetricDirection::kInformational}},
      {"replay_chains", {"count", MetricDirection::kInformational}},
      {"replay_edges", {"count", MetricDirection::kInformational}},
      {"replay_sessions", {"count", MetricDirection::kInformational}},
      {"replay_fallbacks", {"count", MetricDirection::kLowerIsBetter}},
      {"replay_chains_demoted", {"count", MetricDirection::kLowerIsBetter}},
      {"salvaged_parallel_replays",
       {"count", MetricDirection::kHigherIsBetter}},
      {"speedup_vs_sequential", {"ratio", MetricDirection::kHigherIsBetter}},
      {"ratio_vs_unsalvaged_parallel",
       {"ratio", MetricDirection::kLowerIsBetter}},
      // Correctness contracts: 1 means the invariant held.
      {"state_matches_sequential", {"bool", MetricDirection::kHigherIsBetter}},
      {"state_matches_single_log", {"bool", MetricDirection::kHigherIsBetter}},
      {"divergences", {"count", MetricDirection::kLowerIsBetter}},
      {"pinned_divergences", {"count", MetricDirection::kLowerIsBetter}},
      {"state_hash_divergences", {"count", MetricDirection::kLowerIsBetter}},
      {"violations", {"count", MetricDirection::kLowerIsBetter}},
      {"merge_inversions", {"count", MetricDirection::kLowerIsBetter}},
      {"merge_records", {"count", MetricDirection::kInformational}},
      // Supervisor / degradation ladder: giving up or cold-starting loses
      // data, so fewer is strictly better.
      {"supervisor_attempts", {"count", MetricDirection::kInformational}},
      {"supervisor_gave_up", {"count", MetricDirection::kLowerIsBetter}},
      {"cold_starts", {"count", MetricDirection::kLowerIsBetter}},
      {"degraded_mode_attempts", {"count", MetricDirection::kInformational}},
      // Workload descriptors and sweep coordinates.
      {"sessions", {"count", MetricDirection::kInformational}},
      {"sessions_per_run", {"count", MetricDirection::kInformational}},
      {"sessions_total", {"count", MetricDirection::kInformational}},
      {"calls", {"count", MetricDirection::kInformational}},
      {"calls_routed", {"count", MetricDirection::kInformational}},
      {"pairs", {"count", MetricDirection::kInformational}},
      {"runs", {"count", MetricDirection::kInformational}},
      {"run", {"id", MetricDirection::kInformational}},
      {"seed", {"id", MetricDirection::kInformational}},
      {"interval", {"count", MetricDirection::kInformational}},
      {"stores", {"count", MetricDirection::kInformational}},
      {"reply_bytes", {"bytes", MetricDirection::kInformational}},
      {"max_batch", {"count", MetricDirection::kInformational}},
      {"max_wait_ms", {"ms", MetricDirection::kInformational}},
      {"max_overlap", {"count", MetricDirection::kInformational}},
      {"wal_shards", {"count", MetricDirection::kInformational}},
      {"concurrent_runs", {"count", MetricDirection::kInformational}},
      {"parallel_replay_runs", {"count", MetricDirection::kInformational}},
      {"depth1_runs", {"count", MetricDirection::kInformational}},
      {"depth2_runs", {"count", MetricDirection::kInformational}},
      {"depth3_runs", {"count", MetricDirection::kInformational}},
      // Injected-fault tallies: the campaign chooses these, the system
      // doesn't earn them.
      {"crashes_fired", {"count", MetricDirection::kInformational}},
      {"recovery_crashes_fired", {"count", MetricDirection::kInformational}},
      {"crashes_at_analysis", {"count", MetricDirection::kInformational}},
      {"crashes_at_restore", {"count", MetricDirection::kInformational}},
      {"crashes_between_units", {"count", MetricDirection::kInformational}},
      {"crashes_at_endlog_flush", {"count", MetricDirection::kInformational}},
      {"storage_attack_runs", {"count", MetricDirection::kInformational}},
      {"storage_attacks_applied", {"count", MetricDirection::kInformational}},
      {"net_messages_dropped", {"count", MetricDirection::kInformational}},
      {"net_messages_duplicated", {"count", MetricDirection::kInformational}},
      {"torn_tails_injected", {"count", MetricDirection::kInformational}},
      {"torn_tails_salvaged", {"count", MetricDirection::kInformational}},
      {"salvage_ranges_skipped", {"count", MetricDirection::kInformational}},
      {"salvage_full_scan_fallbacks",
       {"count", MetricDirection::kInformational}},
      {"salvage_state_record_fallbacks",
       {"count", MetricDirection::kInformational}},
      {"salvage_wkf_fallbacks", {"count", MetricDirection::kInformational}},
      {"interceptor_retries", {"count", MetricDirection::kInformational}},
      {"dedupe_hits", {"count", MetricDirection::kInformational}},
      {"wov_duplicate_executions", {"count", MetricDirection::kInformational}},
  };
  auto it = kTable.find(metric);
  return it == kTable.end() ? nullptr : &it->second;
}

MetricMeta ResolveMetricMeta(const std::string& metric) {
  if (const MetricMeta* meta = DefaultMetricMeta(metric)) return *meta;
  MetricMeta meta;
  if (EndsWith(metric, "_ms") || EndsWith(metric, "_ms_total") ||
      EndsWith(metric, "_ms_per_call")) {
    meta.unit = "ms";
  }
  return meta;
}

void SetBenchOutDir(std::string dir) { OutDirOverride() = std::move(dir); }

std::string ResolveBenchPath(const std::string& filename) {
  if (!filename.empty() && filename.front() == '/') return filename;
  std::string dir = OutDirOverride();
  if (dir.empty()) {
    const char* env = std::getenv("PHOENIX_BENCH_DIR");
    if (env != nullptr) dir = env;
  }
  if (dir.empty()) {
    // Never litter a source checkout: when a bench (or chaos/trace tool) is
    // launched from a repo root with no --out-dir / PHOENIX_BENCH_DIR, its
    // artifacts land in bench_out/ instead of the repo root.
    std::error_code ec;
    if (std::filesystem::exists(".git", ec)) dir = "bench_out";
  }
  if (dir.empty()) return filename;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best effort; open reports
  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  return dir + "/" + filename;
}

void InitBenchMain(int& argc, char** argv) {
  constexpr char kPrefix[] = "--out-dir=";
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kPrefix, sizeof(kPrefix) - 1) == 0) {
      SetBenchOutDir(argv[i] + sizeof(kPrefix) - 1);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  argv[argc] = nullptr;
}

BenchVariant& BenchVariant::SetMetric(const std::string& metric,
                                      double value) {
  metrics_[metric] = JsonNumber(value);
  return *this;
}

BenchVariant& BenchVariant::SetMetric(const std::string& metric,
                                      uint64_t value) {
  metrics_[metric] = JsonNumber(value);
  return *this;
}

BenchVariant& BenchVariant::SetMetric(const std::string& metric,
                                      int64_t value) {
  metrics_[metric] = JsonNumber(value);
  return *this;
}

BenchVariant& BenchVariant::SetInfo(const std::string& key,
                                    std::string value) {
  info_[key] = std::move(value);
  return *this;
}

BenchVariant& BenchVariant::SetLatency(const Histogram& histogram) {
  return SetLatency(Summarize(histogram));
}

BenchVariant& BenchVariant::SetLatency(const LatencySummary& summary) {
  has_latency_ = true;
  latency_ = summary;
  return *this;
}

void BenchVariant::WriteJson(JsonWriter& w) const {
  w.BeginObject();
  w.Key("name").String(name_);
  w.Key("metrics").BeginObject();
  for (const auto& [metric, value] : metrics_) {
    w.Key(metric).Raw(value);
  }
  w.EndObject();
  if (!info_.empty()) {
    w.Key("info").BeginObject();
    for (const auto& [key, value] : info_) {
      w.Key(key).String(value);
    }
    w.EndObject();
  }
  if (has_latency_) {
    w.Key("latency_ms").BeginObject();
    WriteLatencySummaryJson(w, latency_);
    w.EndObject();
  }
  w.EndObject();
}

BenchVariant& BenchReporter::AddVariant(const std::string& name) {
  variants_.emplace_back(name);
  return variants_.back();
}

BenchReporter& BenchReporter::DescribeMetric(const std::string& metric,
                                             std::string unit,
                                             MetricDirection direction) {
  metric_meta_[metric] = MetricMeta{std::move(unit), direction};
  return *this;
}

MetricMeta BenchReporter::MetaFor(const std::string& metric) const {
  auto it = metric_meta_.find(metric);
  if (it != metric_meta_.end()) return it->second;
  return ResolveMetricMeta(metric);
}

std::string BenchReporter::ToJson() const {
  JsonWriter w(/*indent=*/2);
  w.BeginObject();
  w.Key("schema").String(schema_);
  w.Key("bench").String(bench_name_);
  w.Key("variants").BeginArray();
  for (const BenchVariant& variant : variants_) {
    variant.WriteJson(w);
  }
  w.EndArray();
  // Additive meta block: unit + direction for the union of metric names
  // across all variants, sorted. Derived metadata only — goldens pin the
  // measured values above, which this block never touches.
  std::set<std::string> names;
  for (const BenchVariant& variant : variants_) {
    for (const auto& [metric, value] : variant.metrics()) names.insert(metric);
  }
  if (!names.empty()) {
    w.Key("meta").BeginObject();
    w.Key("metrics").BeginObject();
    for (const std::string& metric : names) {
      MetricMeta meta = MetaFor(metric);
      w.Key(metric).BeginObject();
      w.Key("direction").String(MetricDirectionName(meta.direction));
      w.Key("unit").String(meta.unit);
      w.EndObject();
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndObject();
  return w.str() + "\n";
}

Result<std::string> BenchReporter::WriteFile(const std::string& path) const {
  std::string target =
      ResolveBenchPath(path.empty() ? "BENCH_" + bench_name_ + ".json" : path);
  std::FILE* f = std::fopen(target.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + target + " for writing");
  }
  std::string json = ToJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to " + target);
  }
  return target;
}

void AnnounceReport(const BenchReporter& reporter, const std::string& path) {
  Result<std::string> written = reporter.WriteFile(path);
  if (written.ok()) {
    std::printf("\nbench report: %s\n", written->c_str());
  } else {
    std::printf("\nbench report FAILED: %s\n",
                written.status().ToString().c_str());
  }
}

}  // namespace phoenix::obs
