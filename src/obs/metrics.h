#ifndef PHOENIX_OBS_METRICS_H_
#define PHOENIX_OBS_METRICS_H_

// Sim-time metrics: named counters, gauges and fixed-bucket histograms keyed
// by (name, labels). Everything is deterministic — values are driven by the
// simulated clock and workload, iteration order is lexicographic — so a
// metrics snapshot of a seeded run is byte-identical across executions.

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace phoenix::obs {

// Sorted (key, value) label pairs, e.g. {{"process", "ma/1"}}.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing integer.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Last-write-wins double, with an accumulate helper for attribution sums
// (e.g. total rotational wait milliseconds).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double v) { value_ += v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// Fixed-bucket histogram with percentile extraction. Bucket i counts samples
// in [bounds[i-1], bounds[i]); an implicit overflow bucket catches the rest.
class Histogram {
 public:
  // Log-spaced latency bounds: 8 buckets per decade from 1 microsecond to
  // 10^7 ms, which covers everything the simulator produces.
  static const std::vector<double>& DefaultLatencyBoundsMs();

  explicit Histogram(std::vector<double> bounds = DefaultLatencyBoundsMs());

  void Record(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // Percentile in [0, 100], linearly interpolated inside the bucket and
  // clamped to the observed [min, max]. Returns 0 with no samples.
  double Percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  // bucket_counts().size() == bounds().size() + 1 (overflow last).
  const std::vector<uint64_t>& bucket_counts() const { return buckets_; }

  // Adds another histogram with identical bounds into this one.
  void Merge(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// The p50/p95/p99 summary the bench reports embed.
struct LatencySummary {
  uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double min = 0;
  double max = 0;
};

LatencySummary Summarize(const Histogram& h);

// Emits the summary's fields (count/mean/p50/p95/p99/min/max) into the
// currently open JSON object.
void WriteLatencySummaryJson(JsonWriter& w, const LatencySummary& s);

// The process-wide registry. Owned by the Simulation; components reach it
// through their process. Lookups create on first use.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name, const LabelSet& labels = {});
  Gauge& GetGauge(const std::string& name, const LabelSet& labels = {});
  Histogram& GetHistogram(const std::string& name, const LabelSet& labels = {},
                          const std::vector<double>& bounds =
                              Histogram::DefaultLatencyBoundsMs());

  // Read-only lookups; nullptr when the metric does not exist.
  const Counter* FindCounter(const std::string& name,
                             const LabelSet& labels = {}) const;
  const Histogram* FindHistogram(const std::string& name,
                                 const LabelSet& labels = {}) const;

  // Sum of a counter across all label sets sharing `name`.
  uint64_t CounterTotal(const std::string& name) const;

  // Sum of a gauge across all label sets sharing `name` (0 when none
  // exist). Meaningful for accumulating gauges like attribution sums.
  double GaugeTotal(const std::string& name) const;

  // Merge of every histogram registered under `name` (all label sets).
  // Returns an empty histogram when none exist.
  Histogram MergedHistogram(const std::string& name) const;

  // Serializes every metric, sorted by (name, labels), into `w` as one JSON
  // object: {"counters": [...], "gauges": [...], "histograms": [...]}.
  // Histograms are emitted as their summary (count/mean/percentiles), not
  // raw buckets.
  void WriteJson(JsonWriter& w) const;

  void Clear();

 private:
  // Full key: name + '\0'-joined labels; lexicographic == deterministic.
  static std::string MakeKey(const std::string& name, const LabelSet& labels);

  struct Entry {
    std::string name;
    LabelSet labels;
  };
  template <typename T>
  struct Slot {
    Entry entry;
    T metric;
  };

  std::map<std::string, Slot<Counter>> counters_;
  std::map<std::string, Slot<Gauge>> gauges_;
  std::map<std::string, Slot<Histogram>> histograms_;
};

}  // namespace phoenix::obs

#endif  // PHOENIX_OBS_METRICS_H_
